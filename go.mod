module osprof

go 1.22
