// Command oscmp compares two serialized OSprof profile sets with the
// paper's three-phase automated analysis (§3.2) and prints the pairs a
// person should look at.
//
// Usage:
//
//	oscmp [-method emd|chi-square|total-ops|total-latency] a.osprof b.osprof
package main

import (
	"flag"
	"fmt"
	"os"

	"osprof"
	"osprof/internal/analysis"
	"osprof/internal/report"
)

func main() {
	method := flag.String("method", "emd", "comparison method")
	threshold := flag.Float64("threshold", 0.10, "interesting-score threshold")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: oscmp [-method m] a.osprof b.osprof")
		os.Exit(2)
	}

	var m osprof.Method
	switch *method {
	case "emd":
		m = osprof.EMD
	case "chi-square":
		m = osprof.ChiSquare
	case "total-ops":
		m = osprof.TotalOps
	case "total-latency":
		m = osprof.TotalLatency
	case "intersection":
		m = osprof.Intersection
	case "minkowski":
		m = osprof.Minkowski
	case "jeffrey":
		m = osprof.Jeffrey
	default:
		fmt.Fprintf(os.Stderr, "oscmp: unknown method %q\n", *method)
		os.Exit(2)
	}

	sets := make([]*osprof.Set, 2)
	for i, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oscmp: %v\n", err)
			os.Exit(1)
		}
		sets[i], err = osprof.ReadSet(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oscmp: %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	sel := analysis.Selector{Method: m, Threshold: *threshold}
	reports := sel.Compare(sets[0], sets[1])
	report.Comparison(os.Stdout, reports)
}
