package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/experiments"
	"osprof/internal/fault"
	"osprof/internal/report"
	"osprof/internal/runner"
	"osprof/internal/store"
)

// This file implements the archive-backed subcommands: `record`
// persists runs of the recordable scenarios (matrix + kernel-config
// variants) into the content-addressed archive, `baseline` blesses
// the recorded runs as the per-fingerprint reference, and `diff`
// performs differential analysis — pairwise between two run
// references, or as a matrix-wide regression gate that re-records the
// scenarios and holds each fresh run against its baseline.

// cmdRecord implements `osprof record` (and, with markBaseline, the
// recording half of `osprof baseline`). A non-empty inject names a
// fault preset applied to every selected scenario before recording:
// the degraded twin keeps the scenario's name — the watch layer
// matches ingests to baselines by name — but fingerprints as its own
// world, so healthy baselines are never overwritten. traceOn records
// each scenario with layer tracing enabled (internal/trace): the
// traced twin also keeps its name but fingerprints as its own world,
// so untraced baselines and their byte-identical envelopes survive.
// loadOn does the same for load-conditioned profiling (internal/load):
// the load-profiled twin fingerprints as its own world too.
func cmdRecord(rest []string, seed int64, archiveDir string, opt runner.Options,
	jsonOut, markBaseline bool, inject string, traceOn, loadOn bool, stdout, stderr io.Writer) int {
	if inject == "list" {
		for _, name := range fault.PresetNames() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if inject != "" && markBaseline {
		fmt.Fprintln(stderr, "osprof: refusing to bless fault-injected runs as baselines (drop -inject)")
		return 2
	}
	reg, fps, ids := experiments.Recordables(seed)
	if inject != "" || traceOn || loadOn {
		if inject != "" {
			if _, ok := fault.Preset(inject); !ok {
				fmt.Fprintf(stderr, "osprof: unknown fault preset %q (try `osprof record -inject list`)\n", inject)
				return 2
			}
		}
		reg = make(map[string]func() experiments.Result, len(ids))
		fps = make(map[string]string, len(ids))
		ids = ids[:0]
		for _, spec := range experiments.RecordableSpecs(seed) {
			spec := spec
			if inject != "" {
				// A fresh preset per spec: scenarios must not share
				// fault state even by accident.
				spec.Injections, _ = fault.Preset(inject)
			}
			spec.Trace = traceOn
			if loadOn {
				// OR, not assign: the load cells are load-profiled by
				// construction and must stay so under -trace/-inject.
				spec.LoadProfile = true
			}
			reg[spec.Name] = func() experiments.Result { return experiments.RecordScenario(spec) }
			fps[spec.Name] = spec.Fingerprint()
			ids = append(ids, spec.Name)
		}
	}
	if len(rest) == 1 && rest[0] == "list" {
		for _, id := range ids {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	ids = expand(rest, ids)
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		ctor := reg[id]
		if ctor == nil {
			fmt.Fprintf(stderr, "osprof: unknown scenario %q (try `osprof record list`)\n", id)
			return 2
		}
		jobs = append(jobs, runner.Job{ID: id, New: ctor, Fingerprint: fps[id]})
	}
	var post func(*runner.RunResult)
	if markBaseline {
		post = func(rr *runner.RunResult) {
			if err := arch.SetBaseline(rr.Fingerprint, rr.RunID); err != nil {
				rr.ArchiveErr = err.Error()
				rr.Failed++
			}
		}
	}
	verb := "recorded"
	if markBaseline {
		verb = "baseline"
	}
	if inject != "" {
		verb = "injected"
	}
	if traceOn {
		verb = "traced"
	}
	if loadOn {
		verb = "loaded"
	}
	return runArchived(arch, jobs, opt, jsonOut, stdout, stderr, post,
		func(w io.Writer, rr *runner.RunResult) {
			fmt.Fprintf(w, "%-8s %-28s fingerprint=%.12s run=%.12s %s\n",
				verb, rr.ID, rr.Fingerprint, rr.RunID, dedupNote(rr))
		})
}

// runArchived is the shared tail of the recording subcommands
// (`record`, `baseline`, `corpus build`): run the jobs against the
// archive, apply the optional post-run hook to each successfully
// archived result (baseline blessing; the hook may mark the result
// failed), emit JSON or one text row per result, and map failures to
// exit code 1.
func runArchived(arch *store.Archive, jobs []runner.Job, opt runner.Options,
	jsonOut bool, stdout, stderr io.Writer, post func(*runner.RunResult),
	row func(io.Writer, *runner.RunResult)) int {
	opt.Archive = arch
	results := runner.Run(jobs, opt)
	if post != nil {
		for i := range results {
			if rr := &results[i]; rr.RunID != "" && rr.OK() {
				post(rr)
			}
		}
	}
	if jsonOut {
		if err := runner.WriteJSON(stdout, results); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	} else {
		for i := range results {
			rr := &results[i]
			if !rr.OK() {
				fmt.Fprintf(stdout, "FAILED   %-28s %s%s\n", rr.ID,
					firstFailure(rr), rr.Panic)
				continue
			}
			row(stdout, rr)
		}
	}
	if failed := runner.FailedChecks(results); failed > 0 {
		fmt.Fprintf(stderr, "osprof: %d failed checks\n", failed)
		return 1
	}
	return 0
}

// dedupNote labels a result as a fresh or deduplicated archive write.
func dedupNote(rr *runner.RunResult) string {
	if rr.Dedup {
		return "dedup"
	}
	return "new"
}

// firstFailure summarizes the first failed check for the text output.
func firstFailure(rr *runner.RunResult) string {
	for _, c := range rr.Checks {
		if !c.OK {
			return c.Name + ": " + c.Detail
		}
	}
	return rr.ArchiveErr
}

// cmdBaselineList implements `osprof baseline list`.
func cmdBaselineList(archiveDir string, stdout, stderr io.Writer) int {
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	entries, err := arch.List()
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	baselines, err := arch.Baselines()
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	for _, e := range entries { // stable record order
		if baselines[e.Fingerprint] == e.ID {
			fmt.Fprintf(stdout, "baseline %-22s fingerprint=%.12s run=%.12s\n",
				e.Name, e.Fingerprint, e.ID)
			delete(baselines, e.Fingerprint)
		}
	}
	return 0
}

// cmdDiff implements `osprof diff`: with two run references it renders
// the pairwise differential report; with scenario ids (or nothing =
// all) it runs the regression gate. Exit codes: 0 no differences, 1
// differences found, 2 usage/archive errors.
func cmdDiff(rest []string, seed int64, archiveDir string, opt runner.Options,
	jsonOut, layers, loadFlag bool, stdout, stderr io.Writer) int {
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	// Scenario ids (and the literal "all") always mean the gate: a
	// stray same-named file in the working directory must not flip the
	// documented `osprof diff all` into file-reference mode.
	_, fps, ids := experiments.Recordables(seed)
	scenarioID := map[string]bool{"all": true}
	for _, id := range ids {
		scenarioID[id] = true
	}
	isRef := func(s string) bool { return !scenarioID[s] && isRunRef(s) }
	if len(rest) == 2 && isRef(rest[0]) && isRef(rest[1]) {
		return diffPair(arch, rest[0], rest[1], jsonOut, layers, loadFlag, stdout, stderr)
	}
	for _, r := range rest {
		if isRef(r) {
			fmt.Fprintf(stderr, "osprof: diff takes exactly two run references (or scenario ids for the gate), got %q\n", r)
			return 2
		}
	}
	if layers || loadFlag {
		fmt.Fprintln(stderr, "osprof: -layers/-load apply to the pairwise diff, not the regression gate")
		return 2
	}
	return diffGate(arch, rest, seed, fps, opt, jsonOut, stdout, stderr)
}

// isRunRef reports whether the argument names a concrete run — a
// latest:/baseline: reference, an existing file, or a hex run-ID
// prefix — as opposed to a scenario id (which contains '/', never
// all-hex). Known scenario ids are excluded by the caller before this
// is consulted.
func isRunRef(s string) bool {
	if strings.HasPrefix(s, "latest:") || strings.HasPrefix(s, "baseline:") {
		return true
	}
	if st, err := os.Stat(s); err == nil && !st.IsDir() {
		return true
	}
	if len(s) >= 6 {
		hex := true
		for _, c := range s {
			if !strings.ContainsRune("0123456789abcdef", c) {
				hex = false
				break
			}
		}
		return hex
	}
	return false
}

// resolveRun loads the run a reference names: a local envelope file,
// or anything store.Archive.ResolveRef understands (latest:<name>,
// baseline:<name>, a run-ID prefix — the same resolver `osprof serve`
// uses).
func resolveRun(arch *store.Archive, ref string) (*core.Run, error) {
	if st, err := os.Stat(ref); err == nil && !st.IsDir() &&
		!strings.HasPrefix(ref, "latest:") && !strings.HasPrefix(ref, "baseline:") {
		f, err := os.Open(ref)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.ReadRun(f)
	}
	id, err := arch.ResolveRef(ref)
	if err != nil {
		return nil, fmt.Errorf("%w (try `osprof record list` and `osprof record <id>`)", err)
	}
	return arch.Get(id)
}

// diffPair renders the differential analysis of two referenced runs.
// layers renders only the layer attribution (`osprof diff -layers`):
// which layer each changed traced operation moved in, without the
// per-operation verdict table or histograms. loadFlag renders only
// the load attribution (`osprof diff -load`): which load band each
// changed load-profiled operation moved at.
func diffPair(arch *store.Archive, refA, refB string, jsonOut, layers, loadFlag bool, stdout, stderr io.Writer) int {
	a, err := resolveRun(arch, refA)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", refA, err)
		return 2
	}
	b, err := resolveRun(arch, refB)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", refB, err)
		return 2
	}
	rep := diff.New().Runs(a, b)
	switch {
	case jsonOut:
		if err := report.JSON(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	case layers:
		fmt.Fprintf(stdout, "=== diff -layers %q -> %q ===\n", rep.NameA, rep.NameB)
		fmt.Fprintf(stdout, "%d operations compared, %d changed\n", len(rep.Ops), rep.Changed)
		if len(rep.Layers) == 0 {
			fmt.Fprintln(stdout, "no layer attribution (untraced runs, or nothing moved); record with -trace")
		}
		for _, mv := range rep.Layers {
			fmt.Fprintf(stdout, "%-18s moved in %-10s %-14s score=%.3g  %s\n",
				mv.Op, mv.Layer, mv.Verdict, mv.Score, mv.Detail)
		}
	case loadFlag:
		fmt.Fprintf(stdout, "=== diff -load %q -> %q ===\n", rep.NameA, rep.NameB)
		fmt.Fprintf(stdout, "%d operations compared, %d changed\n", len(rep.Ops), rep.Changed)
		if len(rep.Loads) == 0 {
			fmt.Fprintln(stdout, "no load attribution (unconditioned runs, or nothing moved); record with -load")
		}
		for _, mv := range rep.Loads {
			fmt.Fprintf(stdout, "%-18s moved at load:%-5s %-14s score=%.3g  %s\n",
				mv.Op, mv.Band, mv.Verdict, mv.Score, mv.Detail)
		}
	default:
		report.Diff(stdout, rep, a.Set, b.Set, report.Options{})
	}
	if rep.Regression() {
		return 1
	}
	return 0
}

// diffGate is the matrix-wide regression gate: re-record the selected
// scenarios (archiving the fresh runs) and hold each against its
// blessed baseline.
func diffGate(arch *store.Archive, rest []string, seed int64, fps map[string]string,
	opt runner.Options, jsonOut bool, stdout, stderr io.Writer) int {
	reg, _, ids := experiments.Recordables(seed)
	ids = expand(rest, ids)

	// Collect the baselines first so a missing one fails fast, before
	// any simulation time is spent.
	baselines := make([]*core.Run, 0, len(ids))
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		ctor := reg[id]
		if ctor == nil {
			fmt.Fprintf(stderr, "osprof: unknown scenario %q (try `osprof record list`)\n", id)
			return 2
		}
		e, ok, err := arch.Baseline(fps[id])
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		if !ok {
			fmt.Fprintf(stderr, "osprof: no baseline for %s at this configuration (run `osprof baseline %s` first)\n", id, id)
			return 2
		}
		base, err := arch.Get(e.ID)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		baselines = append(baselines, base)
		jobs = append(jobs, runner.Job{ID: id, New: ctor, Fingerprint: fps[id]})
	}

	opt.Archive = arch
	results := runner.Run(jobs, opt)
	if failed := runner.FailedChecks(results); failed > 0 {
		for i := range results {
			if !results[i].OK() {
				fmt.Fprintf(stderr, "osprof: %s failed: %s%s\n",
					results[i].ID, firstFailure(&results[i]), results[i].Panic)
			}
		}
		fmt.Fprintf(stderr, "osprof: %d failed checks\n", failed)
		return 1
	}
	fresh := make([]*core.Run, 0, len(results))
	for i := range results {
		run, err := arch.Get(results[i].RunID)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		fresh = append(fresh, run)
	}

	m := diff.New().Matrix(baselines, fresh)
	if jsonOut {
		if err := report.JSON(stdout, m); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	} else {
		report.MatrixDiff(stdout, m)
	}
	if m.Regression() {
		fmt.Fprintf(stderr, "osprof: %d regressions against the baseline archive\n", m.Changed)
		return 1
	}
	return 0
}
