package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"osprof/internal/live"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// This file implements `osprof bench ingest`: the fleet-scale load
// generator. It stands up the serve stack (or targets a running one),
// drives N concurrent recorders that ship delta-envelope batches over
// real HTTP, and reports sustained envelopes/sec plus allocation
// footprint as an osprof-bench-ingest/v1 document — the measurement
// behind the "10k envelopes/sec on one core" ingest budget. After the
// timed window it verifies parity: every recorder's full export must
// dedup against its server-side coalesced accumulation, proving the
// batched/coalesced path archived exactly the state serial ingest
// would have.

// benchIngestSchema versions the bench report document.
const benchIngestSchema = "osprof-bench-ingest/v1"

// benchIngestDoc is the `osprof bench ingest` report.
type benchIngestDoc struct {
	Schema          string  `json:"schema"`
	Recorders       int     `json:"recorders"`
	Batch           int     `json:"batch"`
	DurationSec     float64 `json:"duration_sec"`
	Envelopes       int64   `json:"envelopes"`
	EnvelopesPerSec float64 `json:"envelopes_per_sec"`
	Requests        int64   `json:"requests"`
	HTTPErrors      int64   `json:"http_errors"`
	Flushed         int     `json:"flushed"`
	Parity          string  `json:"parity"` // "ok" or a failure description

	// Allocation footprint over the timed window (runtime.MemStats
	// deltas: flat TotalAlloc growth per envelope is the "no O(history)
	// work per report" property).
	AllocBytesPerEnvelope float64 `json:"alloc_bytes_per_envelope"`
	HeapAllocBytes        uint64  `json:"heap_alloc_bytes"`
	SysBytes              uint64  `json:"sys_bytes"`
}

// benchWorker drives one recorder: observe, export a delta, batch, and
// ship until the deadline. Latencies follow a deterministic formula so
// reruns generate identical profile shapes.
func benchWorker(id int, base string, batch int, deadline time.Time,
	envelopes, requests, httpErrors *atomic.Int64) *live.Session {
	rec := live.New()
	sess := rec.Session(nil, fmt.Sprintf("bench/worker-%d", id))
	var buf bytes.Buffer
	pending := 0
	ship := func() {
		if pending == 0 {
			return
		}
		requests.Add(1)
		resp, err := http.Post(base+"/v1/ingest", "text/plain", bytes.NewReader(buf.Bytes()))
		if err != nil {
			httpErrors.Add(1)
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				httpErrors.Add(1)
			} else {
				envelopes.Add(int64(pending))
			}
		}
		buf.Reset()
		pending = 0
	}
	for i := 0; time.Now().Before(deadline); i++ {
		for j := 0; j < 4; j++ {
			rec.Observe("read", uint64(i*4+j)*2654435761%(1<<24)+1)
		}
		if err := sess.ExportDelta(&buf); err != nil {
			httpErrors.Add(1)
			continue
		}
		pending++
		if pending >= batch {
			ship()
		}
	}
	ship()
	return sess
}

// benchParity verifies the coalesced server state: after a full flush,
// each recorder's full export must dedup (created=false) against the
// accumulation the server archived from its delta chain.
func benchParity(base string, sessions []*live.Session) string {
	for _, sess := range sessions {
		var full bytes.Buffer
		if err := sess.Export(&full); err != nil {
			return fmt.Sprintf("export %s: %v", sess.Name(), err)
		}
		resp, err := http.Post(base+"/v1/ingest", "text/plain", bytes.NewReader(full.Bytes()))
		if err != nil {
			return fmt.Sprintf("parity ingest %s: %v", sess.Name(), err)
		}
		var doc serve.IngestDoc
		err = json.NewDecoder(resp.Body).Decode(&doc)
		resp.Body.Close()
		if err != nil {
			return fmt.Sprintf("parity decode %s: %v", sess.Name(), err)
		}
		if doc.Created {
			return fmt.Sprintf("%s: coalesced state diverged from the full export (no dedup)", sess.Name())
		}
	}
	return "ok"
}

// cmdBench dispatches the bench subcommands: `ingest` (fleet-scale
// load generator, this file), `analysis` (summary-tier read-path
// latency, bench_analysis.go), and `load` (load-profiling overhead
// budget, bench_load.go).
func cmdBench(rest []string, recorders, batch int, duration time.Duration,
	target, out string, benchRuns, benchRequests int, stdout, stderr io.Writer) int {
	if len(rest) == 1 && rest[0] == "analysis" {
		return cmdBenchAnalysis(benchRuns, benchRequests, out, stdout, stderr)
	}
	if len(rest) == 1 && rest[0] == "load" {
		return cmdBenchLoad(out, stdout, stderr)
	}
	if len(rest) != 1 || rest[0] != "ingest" {
		fmt.Fprintln(stderr, "osprof: usage: osprof bench ingest [-recorders N] [-batch N] [-duration D] [-target URL] [-out FILE]")
		fmt.Fprintln(stderr, "              osprof bench analysis [-runs N] [-requests N] [-out FILE]")
		fmt.Fprintln(stderr, "              osprof bench load [-out FILE]")
		return 2
	}
	if recorders < 1 || batch < 1 || duration <= 0 {
		fmt.Fprintln(stderr, "osprof: bench ingest needs -recorders >= 1, -batch >= 1, -duration > 0")
		return 2
	}

	base := target
	if base == "" {
		// Self-hosted: the full serve stack over a throwaway archive,
		// on a loopback port — real HTTP, real store, no fixtures.
		dir, err := os.MkdirTemp("", "osprof-bench-*")
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		defer os.RemoveAll(dir)
		arch, err := store.Open(dir)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		sv := serve.New(arch, serve.Options{})
		defer sv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		defer ln.Close()
		go http.Serve(ln, sv.Handler())
		base = "http://" + ln.Addr().String()
	}

	var envelopes, requests, httpErrors atomic.Int64
	sessions := make([]*live.Session, recorders)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for i := 0; i < recorders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sessions[i] = benchWorker(i, base, batch, deadline, &envelopes, &requests, &httpErrors)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	// Drain the coalescer, then verify parity against the full exports.
	flushed := 0
	resp, err := http.Post(base+"/v1/flush", "application/json", nil)
	if err != nil {
		httpErrors.Add(1)
	} else {
		var fl serve.FlushDoc
		if err := json.NewDecoder(resp.Body).Decode(&fl); err == nil {
			flushed = fl.Flushed
		}
		resp.Body.Close()
	}
	parity := benchParity(base, sessions)

	doc := benchIngestDoc{
		Schema:          benchIngestSchema,
		Recorders:       recorders,
		Batch:           batch,
		DurationSec:     elapsed.Seconds(),
		Envelopes:       envelopes.Load(),
		EnvelopesPerSec: float64(envelopes.Load()) / elapsed.Seconds(),
		Requests:        requests.Load(),
		HTTPErrors:      httpErrors.Load(),
		Flushed:         flushed,
		Parity:          parity,
		HeapAllocBytes:  ms1.HeapAlloc,
		SysBytes:        ms1.Sys,
	}
	if n := envelopes.Load(); n > 0 {
		doc.AllocBytesPerEnvelope = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	if out != "" {
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	}
	if doc.HTTPErrors > 0 || doc.Parity != "ok" {
		fmt.Fprintf(stderr, "osprof: bench ingest failed: %d http errors, parity %s\n",
			doc.HTTPErrors, doc.Parity)
		return 1
	}
	return 0
}
