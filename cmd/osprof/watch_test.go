package main

import (
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/fault"
	"osprof/internal/runner"
)

// injectJSON runs `osprof record -inject <preset>` with -json and
// parses the results (the fault-injected sibling of recordJSON).
func injectJSON(t *testing.T, archive, preset string, ids ...string) []runner.RunResult {
	t.Helper()
	args := append([]string{"record", "-json", "-inject", preset, "-archive", archive}, ids...)
	code, out, errOut := exec(t, args...)
	if code != 0 {
		t.Fatalf("record -inject exit=%d stderr=%s", code, errOut)
	}
	var results []runner.RunResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("record -inject JSON: %v\n%s", err, out)
	}
	return results
}

// The watch verdict lifecycle over the CLI: no baseline is a usage
// error, a healthy re-record is ok, an injected twin (same scenario
// name, its own fingerprint) turns the verdict anomalous, and -expect
// maps verdicts onto exit codes for CI gating.
func TestWatchExitCodes(t *testing.T) {
	archive := t.TempDir()

	// Recorded but never blessed: watch has nothing to hold it against.
	recordJSON(t, archive, "ext2/randomread")
	code, _, errOut := exec(t, "watch", "latest:ext2/randomread", "-archive", archive)
	if code != 2 || !strings.Contains(errOut, "no blessed baseline") {
		t.Fatalf("unblessed watch: exit=%d stderr=%s", code, errOut)
	}

	if code, _, errOut := exec(t, "baseline", "ext2/randomread", "-archive", archive); code != 0 {
		t.Fatalf("baseline: exit=%d stderr=%s", code, errOut)
	}

	// Healthy: verdict ok, exit 0.
	code, out, errOut := exec(t, "watch", "latest:ext2/randomread", "-archive", archive)
	if code != 0 || !strings.Contains(out, "verdict: OK") {
		t.Fatalf("healthy watch: exit=%d stderr=%s out:\n%s", code, errOut, out)
	}
	// -expect turns a non-matching verdict into exit 1.
	if code, _, _ := exec(t, "watch", "latest:ext2/randomread",
		"-archive", archive, "-expect", "anomaly"); code != 1 {
		t.Errorf("-expect anomaly on a healthy run: exit=%d, want 1", code)
	}

	// The injected twin keeps the scenario name but fingerprints as its
	// own world: the healthy baseline must survive untouched.
	healthy := recordJSON(t, archive, "ext2/randomread")
	injected := injectJSON(t, archive, "disk-flaky", "ext2/randomread")
	if healthy[0].Fingerprint == injected[0].Fingerprint {
		t.Fatalf("injected twin shares the healthy fingerprint %s", healthy[0].Fingerprint)
	}

	// Injected, no labeled corpus in the archive: anomaly, exit 1.
	code, out, _ = exec(t, "watch", "latest:ext2/randomread", "-archive", archive)
	if code != 1 || !strings.Contains(out, "verdict: ANOMALY") ||
		!strings.Contains(out, "no labeled corpus") {
		t.Fatalf("injected watch: exit=%d out:\n%s", code, out)
	}
	if code, _, _ := exec(t, "watch", "latest:ext2/randomread",
		"-archive", archive, "-expect", "anomaly"); code != 0 {
		t.Errorf("-expect anomaly on an anomalous run: exit=%d, want 0", code)
	}

	// Usage and reference errors.
	for _, args := range [][]string{
		{"watch", "-archive", archive},                       // no reference
		{"watch", "a", "b", "-archive", archive},             // two references
		{"watch", "latest:no/such/run", "-archive", archive}, // unknown ref
	} {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Errorf("%v: exit=%d, want 2", args, code)
		}
	}
}

// An injected corpus cell attributes: its flaky twin IS a labeled
// corpus member, so the verdict ladder lands on degraded with the
// label — and deterministically so (the injected record reproduces
// the corpus variant's profile exactly).
func TestWatchAttributesDegradedOverCLI(t *testing.T) {
	archive := t.TempDir()
	buildCorpus(t, archive)
	if code, _, errOut := exec(t, "baseline", "corpus/ext2-preempt-c256", "-archive", archive); code != 0 {
		t.Fatalf("baseline: exit=%d stderr=%s", code, errOut)
	}
	injectJSON(t, archive, "disk-flaky", "corpus/ext2-preempt-c256")

	code, out, _ := exec(t, "watch", "latest:corpus/ext2-preempt-c256",
		"-archive", archive, "-expect", "degraded")
	if code != 0 || !strings.Contains(out, "DEGRADED ext2-preempt-c256-disk-flaky") {
		t.Fatalf("degraded watch: exit=%d out:\n%s", code, out)
	}
}

// -inject flag validation: preset listing, unknown presets, and the
// refusal to bless degraded runs as baselines.
func TestRecordInjectValidation(t *testing.T) {
	code, out, _ := exec(t, "record", "-inject", "list")
	if code != 0 {
		t.Fatalf("record -inject list: exit=%d", code)
	}
	for _, name := range fault.PresetNames() {
		if !strings.Contains(out, name) {
			t.Errorf("preset listing missing %q:\n%s", name, out)
		}
	}

	code, _, errOut := exec(t, "record", "ext2/readzero", "-inject", "no-such-preset", "-archive", t.TempDir())
	if code != 2 || !strings.Contains(errOut, "unknown fault preset") {
		t.Errorf("unknown preset: exit=%d stderr=%s", code, errOut)
	}

	code, _, errOut = exec(t, "baseline", "ext2/readzero", "-inject", "disk-flaky", "-archive", t.TempDir())
	if code != 2 || !strings.Contains(errOut, "refusing to bless") {
		t.Errorf("baseline -inject: exit=%d stderr=%s", code, errOut)
	}

	// The injected registry covers exactly the recordable scenarios.
	_, healthyList, _ := exec(t, "record", "list")
	_, injectedList, _ := exec(t, "record", "list", "-inject", "disk-flaky")
	if healthyList != injectedList {
		t.Errorf("injected scenario list diverged from the recordable list:\n%s\nvs\n%s",
			injectedList, healthyList)
	}
}
