package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/runner"
)

// exec runs the CLI and returns exit code, stdout and stderr.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListContainsAllExperiments(t *testing.T) {
	code, out, _ := exec(t, "list")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	for _, id := range []string{"fig1", "fig11", "eval-locking"} {
		if !strings.Contains(out, id) {
			t.Errorf("list output missing %q:\n%s", id, out)
		}
	}
}

func TestChecksLightExperiments(t *testing.T) {
	code, out, errOut := exec(t, "checks", "eval-memory", "eval-locking")
	if code != 0 {
		t.Fatalf("exit=%d, want 0; stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "### eval-memory") || !strings.Contains(out, "### eval-locking") {
		t.Errorf("missing experiment headers:\n%s", out)
	}
	if !strings.Contains(out, "[PASS]") {
		t.Errorf("no passing checks rendered:\n%s", out)
	}
	if strings.Contains(out, "[FAIL]") {
		t.Errorf("unexpected failed check:\n%s", out)
	}
}

func TestRunPrintsReport(t *testing.T) {
	code, out, _ := exec(t, "run", "eval-memory")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	if !strings.Contains(out, "memory usage") {
		t.Errorf("run did not print the report:\n%s", out)
	}
}

func TestUnknownExperimentExitsUsage(t *testing.T) {
	code, _, errOut := exec(t, "checks", "fig99")
	if code != 2 {
		t.Fatalf("exit=%d, want 2", code)
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("stderr missing diagnosis: %s", errOut)
	}
}

func TestNoArgsUsage(t *testing.T) {
	if code, _, _ := exec(t); code != 2 {
		t.Errorf("exit=%d, want 2", code)
	}
	if code, _, _ := exec(t, "frobnicate"); code != 2 {
		t.Errorf("unknown subcommand exit=%d, want 2", code)
	}
}

// `run all fig1` used to treat "all" as an unknown experiment because
// the expansion only fired when it was the sole argument; it must
// expand anywhere and duplicates must collapse.
func TestAllExpandsAnywhereAndDedupes(t *testing.T) {
	if got := expand([]string{"all", "fig1"}, []string{"fig1", "fig3"}); len(got) != 2 {
		t.Errorf("expand(all, fig1) = %v, want [fig1 fig3]", got)
	}
	if got := expand([]string{"fig3", "fig3", "fig1"}, []string{"fig1", "fig3"}); len(got) != 2 {
		t.Errorf("expand dedup = %v, want [fig3 fig1]", got)
	}
	if got := expand(nil, []string{"a", "b"}); len(got) != 2 {
		t.Errorf("expand(nil) = %v, want all", got)
	}
	// End-to-end: the duplicated id runs once.
	_, out, _ := exec(t, "checks", "eval-locking", "eval-locking")
	if n := strings.Count(out, "### eval-locking"); n != 1 {
		t.Errorf("duplicated id ran %d times, want 1", n)
	}
}

func TestFlagsAfterPositionals(t *testing.T) {
	code, out, _ := exec(t, "checks", "eval-memory", "-parallel", "2")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	if !strings.Contains(out, "### eval-memory") {
		t.Errorf("trailing -parallel flag not honored:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	code, out, _ := exec(t, "checks", "eval-memory", "-json")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	var results []runner.RunResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(results) != 1 || results[0].ID != "eval-memory" || results[0].Failed != 0 {
		t.Errorf("unexpected results: %+v", results)
	}
	if len(results[0].Checks) == 0 {
		t.Error("JSON results carry no checks")
	}
}

func TestScenariosListAndSubset(t *testing.T) {
	code, out, _ := exec(t, "scenarios", "list")
	if code != 0 {
		t.Fatalf("exit=%d, want 0", code)
	}
	if !strings.Contains(out, "ext2/grep") || !strings.Contains(out, "cifs/readzero") {
		t.Errorf("scenario list incomplete:\n%s", out)
	}

	code, out, errOut := exec(t, "scenarios", "ext2/walk", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit=%d, want 0; stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "### ext2/walk") || strings.Contains(out, "[FAIL]") {
		t.Errorf("scenario run broken:\n%s", out)
	}

	if code, _, _ = exec(t, "scenarios", "ext9/grep"); code != 2 {
		t.Errorf("unknown scenario exit=%d, want 2", code)
	}
}

// Parallel and serial runs must produce identical check verdicts: each
// experiment is an isolated deterministic simulation.
func TestParallelVerdictsMatchSerial(t *testing.T) {
	ids := []string{"eval-memory", "eval-locking", "fig7", "fig8"}
	serial := append([]string{"checks", "-json"}, ids...)
	parallel := append([]string{"checks", "-json", "-parallel", "4"}, ids...)

	codeS, outS, _ := exec(t, serial...)
	codeP, outP, _ := exec(t, parallel...)
	if codeS != codeP {
		t.Fatalf("exit codes differ: serial=%d parallel=%d", codeS, codeP)
	}
	var rs, rp []runner.RunResult
	if err := json.Unmarshal([]byte(outS), &rs); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(outP), &rp); err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(rp) {
		t.Fatalf("result counts differ: %d vs %d", len(rs), len(rp))
	}
	for i := range rs {
		if rs[i].ID != rp[i].ID {
			t.Errorf("order differs at %d: %s vs %s", i, rs[i].ID, rp[i].ID)
		}
		if len(rs[i].Checks) != len(rp[i].Checks) {
			t.Errorf("%s: check counts differ", rs[i].ID)
			continue
		}
		for j := range rs[i].Checks {
			a, b := rs[i].Checks[j], rp[i].Checks[j]
			if a.Name != b.Name || a.OK != b.OK || a.Detail != b.Detail {
				t.Errorf("%s: check %d differs: %+v vs %+v", rs[i].ID, j, a, b)
			}
		}
	}
}
