// Command osprof runs the paper's experiments against the simulated OS
// substrate and prints paper-style profiles, checks, and tables.
//
// Usage:
//
//	osprof list               list available experiments
//	osprof run <id>...        run experiments (or "all")
//	osprof checks <id>...     run and print only the invariant verdicts
package main

import (
	"fmt"
	"os"

	"osprof/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
	case "run", "checks":
		ids := os.Args[2:]
		if len(ids) == 1 && ids[0] == "all" || len(ids) == 0 {
			ids = experiments.IDs()
		}
		failed := 0
		for _, id := range ids {
			ctor := experiments.Registry[id]
			if ctor == nil {
				fmt.Fprintf(os.Stderr, "osprof: unknown experiment %q\n", id)
				os.Exit(2)
			}
			fmt.Printf("### %s\n", id)
			r := ctor()
			if os.Args[1] == "run" {
				r.Report(os.Stdout)
			}
			experiments.WriteChecks(os.Stdout, r)
			failed += len(experiments.Failures(r))
			fmt.Println()
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "osprof: %d failed checks\n", failed)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  osprof list               list available experiments
  osprof run <id>|all       run experiments and print reports + checks
  osprof checks <id>|all    run experiments and print only checks`)
}
