// Command osprof runs the paper's experiments and the backend×workload
// scenario matrix against the simulated OS substrate, printing
// paper-style profiles, invariant checks, and tables.
//
// Usage:
//
//	osprof [flags] list                   list available experiments
//	osprof [flags] run <id>...|all        run experiments (reports + checks)
//	osprof [flags] checks <id>...|all     run and print only the verdicts
//	osprof [flags] scenarios [<id>...]    run the scenario matrix
//	osprof scenarios list                 list the matrix scenarios
//	osprof [flags] record [<id>...]       archive scenario runs (-inject
//	                                      applies a fault preset first)
//	osprof [flags] watch <ref>            verdict a run against its
//	                                      baseline and the labeled corpus
//	osprof [flags] serve                  HTTP/JSON service (graceful
//	                                      shutdown on SIGINT/SIGTERM)
//
// Flags (accepted anywhere on the command line):
//
//	-parallel N   run N experiments concurrently (default 1; each
//	              experiment is an isolated deterministic simulation,
//	              so verdicts are identical to a serial run)
//	-json         emit structured results as JSON
//	-seed S       base seed for the scenario matrix (default 1)
//	-inject P     fault preset `osprof record` degrades scenarios with
//	-expect V     verdict/label watch and identify must produce
//	-drain D      serve shutdown drain timeout (default 5s)
//	-pprof        expose /debug/pprof/ on the serve listener
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"osprof/internal/experiments"
	"osprof/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it executes the command line and
// returns the process exit code (0 ok, 1 failed checks, 2 usage
// error).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("osprof", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() { usage(stderr) }
	parallel := fs.Int("parallel", 1, "experiments run concurrently")
	jsonOut := fs.Bool("json", false, "emit JSON results")
	seed := fs.Int64("seed", 1, "base seed for the scenario matrix")
	archiveDir := fs.String("archive", "osprof-archive", "profile archive directory")
	addr := fs.String("addr", "127.0.0.1:7971", "listen address for `osprof serve`")
	keep := fs.Int("keep", 5, "runs kept per fingerprint by `osprof archive gc`")
	expect := fs.String("expect", "", "label `osprof identify` / verdict `osprof watch` must produce (exit 1 otherwise)")
	inject := fs.String("inject", "", "fault preset `osprof record` applies to every recorded scenario")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout for `osprof serve`")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on `osprof serve`")
	recorders := fs.Int("recorders", 8, "concurrent recorders driven by `osprof bench ingest`")
	benchBatch := fs.Int("batch", 16, "delta envelopes per request in `osprof bench ingest`")
	benchDur := fs.Duration("duration", 2*time.Second, "timed window of `osprof bench ingest`")
	target := fs.String("target", "", "existing service URL for `osprof bench ingest` (default: self-hosted)")
	out := fs.String("out", "", "also write the `osprof bench ingest` report to this file")

	pos, err := parseInterleaved(fs, args)
	if err != nil {
		return 2
	}
	if len(pos) == 0 {
		usage(stderr)
		return 2
	}
	opt := runner.Options{Parallel: *parallel}

	cmd, rest := pos[0], pos[1:]
	switch cmd {
	case "list":
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0

	case "run", "checks":
		ids := expand(rest, experiments.IDs())
		jobs := make([]runner.Job, 0, len(ids))
		for _, id := range ids {
			ctor := experiments.Registry[id]
			if ctor == nil {
				fmt.Fprintf(stderr, "osprof: unknown experiment %q\n", id)
				return 2
			}
			jobs = append(jobs, runner.Job{ID: id, New: ctor})
		}
		opt.CaptureReport = cmd == "run"
		return emit(stdout, stderr, runner.Run(jobs, opt), *jsonOut)

	case "scenarios":
		reg, ids := experiments.Scenarios(*seed)
		if len(rest) == 1 && rest[0] == "list" {
			for _, id := range ids {
				fmt.Fprintln(stdout, id)
			}
			return 0
		}
		ids = expand(rest, ids)
		jobs := make([]runner.Job, 0, len(ids))
		for _, id := range ids {
			ctor := reg[id]
			if ctor == nil {
				fmt.Fprintf(stderr, "osprof: unknown scenario %q (try `osprof scenarios list`)\n", id)
				return 2
			}
			jobs = append(jobs, runner.Job{ID: id, New: ctor})
		}
		return emit(stdout, stderr, runner.Run(jobs, opt), *jsonOut)

	case "record":
		return cmdRecord(rest, *seed, *archiveDir, opt, *jsonOut, false, *inject, stdout, stderr)

	case "baseline":
		if len(rest) == 1 && rest[0] == "list" {
			return cmdBaselineList(*archiveDir, stdout, stderr)
		}
		return cmdRecord(rest, *seed, *archiveDir, opt, *jsonOut, true, *inject, stdout, stderr)

	case "diff":
		return cmdDiff(rest, *seed, *archiveDir, opt, *jsonOut, stdout, stderr)

	case "corpus":
		return cmdCorpus(rest, *seed, *archiveDir, opt, *jsonOut, stdout, stderr)

	case "identify":
		return cmdIdentify(rest, *archiveDir, *expect, *jsonOut, stdout, stderr)

	case "watch":
		return cmdWatch(rest, *archiveDir, *expect, *jsonOut, stdout, stderr)

	case "serve":
		return cmdServe(rest, *archiveDir, *addr, *drain, *pprofOn, stdout, stderr)

	case "archive":
		return cmdArchive(rest, *archiveDir, *keep, *jsonOut, stdout, stderr)

	case "bench":
		return cmdBench(rest, *recorders, *benchBatch, *benchDur, *target, *out, stdout, stderr)

	default:
		usage(stderr)
		return 2
	}
}

// parseInterleaved parses flags that may appear before, between, or
// after positional arguments (the flag package stops at the first
// non-flag argument on its own).
func parseInterleaved(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	for {
		if err := fs.Parse(args); err != nil {
			return nil, err
		}
		if fs.NArg() == 0 {
			return pos, nil
		}
		pos = append(pos, fs.Arg(0))
		args = fs.Args()[1:]
	}
}

// expand resolves an id list against the full set: an empty list or
// the word "all" (in any position) selects everything, and repeated
// ids run once, keeping first-occurrence order.
func expand(ids, all []string) []string {
	if len(ids) == 0 {
		return all
	}
	seen := make(map[string]bool, len(ids))
	var out []string
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range ids {
		if id == "all" {
			for _, a := range all {
				add(a)
			}
			continue
		}
		add(id)
	}
	return out
}

// emit renders the results and returns the exit code.
func emit(stdout, stderr io.Writer, results []runner.RunResult, jsonOut bool) int {
	if jsonOut {
		if err := runner.WriteJSON(stdout, results); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	} else {
		for i := range results {
			writeResult(stdout, &results[i])
		}
	}
	if failed := runner.FailedChecks(results); failed > 0 {
		fmt.Fprintf(stderr, "osprof: %d failed checks\n", failed)
		return 1
	}
	return 0
}

// writeResult prints one experiment's report (when captured) and its
// check verdicts in the historical format.
func writeResult(w io.Writer, rr *runner.RunResult) {
	fmt.Fprintf(w, "### %s\n", rr.ID)
	if rr.Report != "" {
		io.WriteString(w, rr.Report)
	}
	experiments.WriteCheckList(w, rr.Checks)
	if rr.Panic != "" {
		fmt.Fprintf(w, "  [FAIL] %-40s %s\n", "experiment panicked", rr.Panic)
	}
	// Wall time is reported only in -json output: the text output
	// stays byte-identical across reruns (the determinism invariant).
	fmt.Fprintln(w)
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  osprof [flags] list                 list available experiments
  osprof [flags] run <id>...|all      run experiments and print reports + checks
  osprof [flags] checks <id>...|all   run experiments and print only checks
  osprof [flags] scenarios [<id>...]  run the backend x workload scenario matrix
  osprof scenarios list               list the matrix scenarios
  osprof [flags] record [<id>...]     run scenarios once and archive the runs
                                      (-inject <preset> degrades each
                                      scenario with a fault program first)
  osprof record list                  list the recordable scenarios
  osprof [flags] baseline [<id>...]   record runs and bless them as baselines
  osprof baseline list                list the blessed baselines
  osprof [flags] diff <refA> <refB>   differential analysis of two runs
  osprof [flags] diff [<id>...]       regression gate: re-record and diff
                                      each scenario against its baseline
  osprof [flags] corpus build         record the labeled reference corpus
                                      (scenario variants) into the archive
  osprof corpus list                  list the corpus scenarios and labels
  osprof [flags] identify <ref>       attribute an unknown run to the
                                      nearest corpus label, or abstain
  osprof [flags] watch <ref>          verdict a run against its blessed
                                      baseline: ok, degraded (attributed
                                      to a corpus label), or anomaly
  osprof [flags] serve                HTTP/JSON service over the archive
                                      (batched POST /v1/ingest with
                                      server-side delta coalescing,
                                      POST /v1/flush, paged GET /v1/runs,
                                      GET /v1/diff/{a}/{b}, /v1/baseline,
                                      POST /v1/identify, /v1/watch);
                                      SIGINT/SIGTERM shut down gracefully
  osprof [flags] archive list         list the archived runs
  osprof [flags] archive gc           trim the archive (keep -keep runs
                                      per fingerprint, baselines pinned)
  osprof [flags] bench ingest         fleet-ingest load generator: N
                                      concurrent recorders ship delta
                                      batches over HTTP and report
                                      envelopes/sec + allocation
                                      footprint (exit 1 on any HTTP
                                      error or coalescing divergence)
run references: latest:<scenario>, baseline:<scenario>, a run-ID prefix
from the archive, or a path to an osprof-run/osprof-set file.
flags:
  -parallel N   run N experiments concurrently (default 1)
  -json         emit structured results as JSON
  -seed S       base seed for the scenario matrix (default 1)
  -archive DIR  profile archive directory (default osprof-archive)
  -addr A       serve listen address (default 127.0.0.1:7971; use :0
                for a random port, printed on startup)
  -keep N       runs kept per fingerprint by archive gc (default 5)
  -expect V     label identify / verdict watch must produce (exit 1
                on mismatch; watch verdicts: ok, degraded, anomaly)
  -inject P     fault preset record applies to every scenario (run
                "osprof record -inject list" for the presets); the
                degraded twin keeps the scenario name but fingerprints
                as its own world, so baselines are never overwritten
  -drain D      serve drain timeout after SIGINT/SIGTERM (default 5s)
  -pprof        expose net/http/pprof under /debug/pprof/ on the serve
                listener (off by default)
  -recorders N  concurrent recorders in bench ingest (default 8)
  -batch N      delta envelopes per bench ingest request (default 16)
  -duration D   bench ingest timed window (default 2s)
  -target URL   bench ingest against a running service (default:
                self-hosted stack on a loopback port)
  -out FILE     also write the bench report JSON to FILE
exit codes: 0 ok / no differences / confident identification, 1 failed
checks, differences found, identify abstained/mismatched, or a watch
verdict other than ok/-expect, 2 usage or archive errors.`)
}
