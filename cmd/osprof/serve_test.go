package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/live"
	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// TestServeSubcommandEndToEnd binds the serve stack on a random port
// (exactly what cmdServe does, minus the blocking accept loop on the
// test goroutine), then drives the ingest -> list -> self-diff
// workflow over real HTTP.
func TestServeSubcommandEndToEnd(t *testing.T) {
	ln, handler, sv, err := listenArchive(t.TempDir(), "127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer sv.Close()
	go http.Serve(ln, handler)
	base := "http://" + ln.Addr().String()

	// A live-session envelope, as a self-profiling program exports it.
	rec := live.New()
	rec.Observe("handler", 1_000)
	rec.Observe("handler", 1_100)
	var env bytes.Buffer
	if err := rec.Session(nil, "cli-app").Export(&env); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(base+"/v1/ingest", "text/plain", bytes.NewReader(env.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ing serve.IngestDoc
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ing.Created || ing.Name != "cli-app" {
		t.Fatalf("ingest over HTTP: status=%d doc=%+v", resp.StatusCode, ing)
	}

	listResp, err := http.Get(base + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var runs report.RunListDoc
	if err := json.NewDecoder(listResp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || runs.Runs[0].ID != ing.ID {
		t.Fatalf("runs listing: %+v", runs)
	}

	diffResp, err := http.Get(base + "/v1/diff/" + ing.ID + "/latest:cli-app")
	if err != nil {
		t.Fatal(err)
	}
	defer diffResp.Body.Close()
	var rep diff.Report
	if err := json.NewDecoder(diffResp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Changed != 0 || len(rep.Ops) == 0 {
		t.Fatalf("self-diff over HTTP: %+v", rep)
	}
}

// The pprof endpoints only exist when the flag asks for them: a
// profiling surface on a fleet-facing listener must be deliberate.
func TestServePprofOptIn(t *testing.T) {
	for _, on := range []bool{false, true} {
		ln, handler, sv, err := listenArchive(t.TempDir(), "127.0.0.1:0", on)
		if err != nil {
			t.Fatal(err)
		}
		go http.Serve(ln, handler)
		resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if on && resp.StatusCode != http.StatusOK {
			t.Errorf("-pprof: /debug/pprof/cmdline status %d", resp.StatusCode)
		}
		if !on && resp.StatusCode != http.StatusNotFound {
			t.Errorf("default: /debug/pprof/cmdline status %d, want 404", resp.StatusCode)
		}
		// The service endpoints work either way.
		resp, err = http.Get("http://" + ln.Addr().String() + "/v1/runs")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("pprof=%v: /v1/runs status %d", on, resp.StatusCode)
		}
		sv.Close()
		ln.Close()
	}
}

func TestServeUsageErrors(t *testing.T) {
	if code, _, errOut := exec(t, "serve", "extra"); code != 2 || errOut == "" {
		t.Errorf("positional arg: exit=%d stderr=%q", code, errOut)
	}
	if code, _, _ := exec(t, "serve", "-addr", "definitely:not:an:addr", "-archive", t.TempDir()); code != 2 {
		t.Errorf("bad addr: exit=%d", code)
	}
}

// populateArchive stores n distinct runs under one live fingerprint
// (same configuration, different collected data) and returns the
// archive and the run IDs in record order.
func populateArchive(t *testing.T, dir string, n int) (*store.Archive, []string) {
	t.Helper()
	arch, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < n; i++ {
		rec := live.New()
		for j := 0; j <= i; j++ {
			rec.Observe("op", uint64(1000*(j+1)))
		}
		id, created, err := rec.Session(nil, "gc-app").Commit(arch)
		if err != nil || !created {
			t.Fatalf("populate %d: id=%q created=%v err=%v", i, id, created, err)
		}
		ids = append(ids, id)
	}
	return arch, ids
}

func TestArchiveGCKeepsNewestAndPinnedBaselines(t *testing.T) {
	dir := t.TempDir()
	arch, ids := populateArchive(t, dir, 4)
	// Pin the oldest run as the baseline: GC must not remove it.
	if err := arch.SetBaseline(mustRun(t, arch, ids[0]).Fingerprint, ids[0]); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := exec(t, "archive", "gc", "-keep", "1", "-archive", dir)
	if code != 0 {
		t.Fatalf("gc exit=%d stderr=%s", code, errOut)
	}
	// ids[3] is newest (kept), ids[0] is the baseline (pinned); 1 and 2
	// must be reported removed.
	for _, id := range ids[1:3] {
		if !strings.Contains(out, fmt.Sprintf("removed %.12s", id)) {
			t.Errorf("run %.12s not reported removed:\n%s", id, out)
		}
	}
	// The CLI ran in its own archive handle; reopen to observe its
	// writes (an open Archive serves its own in-memory index).
	arch, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := arch.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("after gc: %d entries, want 2\n%s", len(entries), out)
	}
	for _, keep := range []string{ids[0], ids[3]} {
		if _, err := arch.Get(keep); err != nil {
			t.Errorf("kept run %.12s unreadable after gc: %v", keep, err)
		}
	}
	for _, gone := range ids[1:3] {
		if _, err := arch.Get(gone); err == nil {
			t.Errorf("run %.12s still readable after gc", gone)
		}
	}
}

func TestArchiveGCJSON(t *testing.T) {
	dir := t.TempDir()
	_, ids := populateArchive(t, dir, 3)
	code, out, errOut := exec(t, "archive", "gc", "-keep", "1", "-json", "-archive", dir)
	if code != 0 {
		t.Fatalf("gc -json exit=%d stderr=%s", code, errOut)
	}
	var doc struct {
		Schema  string   `json:"schema"`
		Keep    int      `json:"keep"`
		Removed []string `json:"removed"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("gc -json: %v\n%s", err, out)
	}
	if doc.Schema != "osprof-gc/v1" || doc.Keep != 1 || len(doc.Removed) != 2 ||
		doc.Removed[0] != ids[0] || doc.Removed[1] != ids[1] {
		t.Fatalf("gc doc: %+v (ids %v)", doc, ids)
	}
}

func TestArchiveListTextAndJSON(t *testing.T) {
	dir := t.TempDir()
	_, ids := populateArchive(t, dir, 2)

	code, out, _ := exec(t, "archive", "list", "-archive", dir)
	if code != 0 {
		t.Fatalf("list exit=%d", code)
	}
	for _, id := range ids {
		if !strings.Contains(out, id[:12]) || !strings.Contains(out, "gc-app") {
			t.Errorf("listing misses %.12s:\n%s", id, out)
		}
	}

	code, out, _ = exec(t, "archive", "list", "-json", "-archive", dir)
	if code != 0 {
		t.Fatalf("list -json exit=%d", code)
	}
	var doc report.RunListDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("list -json: %v\n%s", err, out)
	}
	if doc.Schema != report.RunsSchema || len(doc.Runs) != 2 || doc.Runs[1].ID != ids[1] {
		t.Fatalf("list -json doc: %+v", doc)
	}
}

func TestArchiveUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"archive"},
		{"archive", "frobnicate"},
		{"archive", "gc", "extra"},
	} {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Errorf("%v: exit=%d, want 2", args, code)
		}
	}
}

// mustRun loads an archived run by ID.
func mustRun(t *testing.T, arch *store.Archive, id string) *core.Run {
	t.Helper()
	run, err := arch.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// Closing the shutdown channel makes serveUntil stop accepting, finish
// the requests already in flight, and return cleanly — the testable
// core of the SIGINT/SIGTERM handling in cmdServe.
func TestServeUntilDrainsInFlightRequests(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained")
	})

	shutdown := make(chan struct{})
	var msg bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- serveUntil(ln, handler, shutdown, 5*time.Second, &msg) }()

	body := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String())
		if err != nil {
			body <- "request failed: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		body <- string(b)
	}()

	<-started
	close(shutdown) // SIGINT arrives mid-request
	// Shutdown must wait for the handler, not kill it.
	select {
	case err := <-done:
		t.Fatalf("serveUntil returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("serveUntil: %v", err)
	}
	if got := <-body; got != "drained" {
		t.Fatalf("in-flight response = %q, want %q", got, "drained")
	}
	if !strings.Contains(msg.String(), "shutting down") {
		t.Errorf("missing shutdown message, got %q", msg.String())
	}
}

// A handler that outlives the drain timeout must not hang shutdown
// forever: serveUntil gives up after the timeout and reports the error.
func TestServeUntilDrainTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	})

	shutdown := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- serveUntil(ln, handler, shutdown, 10*time.Millisecond, io.Discard) }()
	go http.Get("http://" + ln.Addr().String())

	<-started
	close(shutdown)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("drain timeout with a stuck handler reported no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntil hung past the drain timeout")
	}
}

// With no shutdown signal, a listener failure still surfaces as an
// error (the pre-graceful-shutdown behavior).
func TestServeUntilListenerFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- serveUntil(ln, http.NotFoundHandler(), nil, time.Second, io.Discard) }()
	ln.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("closed listener reported no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntil did not notice the dead listener")
	}
}
