package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/store"
)

// This file implements `osprof bench analysis`: the summary-tier
// read-path benchmark. It generates a large synthetic archive (default
// 10k runs, deterministic shapes) plus a labeled corpus, then measures
// the two analysis requests the service answers hottest — identify
// (classifier with summary pre-filtering) and diff (summary-first
// engine) — end to end including the archive load, reporting p50/p99
// latencies as an osprof-bench-analysis/v1 document. Out of band it
// re-checks parity on a sample: the prefiltered and summary-first
// answers must agree with the exhaustive paths, so a speedup that
// changed a verdict fails the bench (exit 1), not just a test.

// benchAnalysisSchema versions the bench report document.
const benchAnalysisSchema = "osprof-bench-analysis/v1"

// benchAnalysisDoc is the `osprof bench analysis` report.
type benchAnalysisDoc struct {
	Schema       string `json:"schema"`
	Runs         int    `json:"runs"`
	CorpusLabels int    `json:"corpus_labels"`
	Requests     int    `json:"requests"`

	IdentifyP50Ms float64 `json:"identify_p50_ms"`
	IdentifyP99Ms float64 `json:"identify_p99_ms"`
	DiffP50Ms     float64 `json:"diff_p50_ms"`
	DiffP99Ms     float64 `json:"diff_p99_ms"`

	Parity string `json:"parity"` // "ok" or a failure description
}

// benchAnalysisRun synthesizes one archive filler run. Shapes are
// deterministic in i and pairwise distinct (the latency formula mixes
// i into every observation), so reruns generate the identical archive.
func benchAnalysisRun(i int) *core.Run {
	s := core.NewSet(fmt.Sprintf("bench/app-%02d", i%50))
	ops := [...]string{"read", "write", "lookup", "readdir", "unlink"}
	for oi, op := range ops {
		n := 120 + (i*31+oi*17)%120
		for j := 0; j < n; j++ {
			// A base mode per op plus a heavy tail: multi-peak profiles
			// like the real scenarios produce.
			lat := uint64(1) << uint(6+oi*2+(j%3))
			lat += uint64((i*2654435761 + j*40503 + oi*9176) % int(lat/2+1))
			if j%37 == 0 {
				lat <<= 8 // the slow-path peak
			}
			s.Record(op, lat)
		}
	}
	return &core.Run{
		Fingerprint: fmt.Sprintf("bench-app-%02d", i%50),
		Set:         s,
	}
}

// benchCorpusRun synthesizes one labeled corpus member: label li gets
// its own modal structure (modes shift with li) and the seed perturbs
// counts so two seeds of a label are distinct but close.
func benchCorpusRun(li, seed int) *core.Run {
	label := fmt.Sprintf("bench-label-%02d", li)
	s := core.NewSet("bench/corpus/" + label)
	ops := [...]string{"read", "write", "lookup", "readdir", "unlink"}
	for oi, op := range ops {
		n := 200 + seed*3 + oi*11
		for j := 0; j < n; j++ {
			lat := uint64(1) << uint(5+(oi+li)%12)
			lat += uint64((li*7919 + seed*104729 + j*31) % int(lat/2+1))
			if j%(29+li%7) == 0 {
				lat <<= 6
			}
			s.Record(op, lat)
		}
	}
	return &core.Run{
		Fingerprint: "bench-corpus-" + label,
		Meta:        map[string]string{store.LabelMetaKey: label},
		Set:         s,
	}
}

// quantileMs picks the q-quantile (by rank) of sorted durations, in
// milliseconds.
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// cmdBenchAnalysis implements `osprof bench analysis`.
func cmdBenchAnalysis(runs, requests int, out string, stdout, stderr io.Writer) int {
	if runs < 100 || requests < 10 {
		fmt.Fprintln(stderr, "osprof: bench analysis needs -runs >= 100, -requests >= 10")
		return 2
	}
	const corpusLabels = 20
	dir, err := os.MkdirTemp("", "osprof-bench-analysis-*")
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	defer os.RemoveAll(dir)
	arch, err := store.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}

	// Populate: the filler archive in batches, then the labeled corpus
	// (two seeds per label, so centroids genuinely fold runs).
	ids := make([]string, 0, runs)
	const batch = 256
	for lo := 0; lo < runs; lo += batch {
		hi := lo + batch
		if hi > runs {
			hi = runs
		}
		put := make([]*core.Run, 0, hi-lo)
		for i := lo; i < hi; i++ {
			put = append(put, benchAnalysisRun(i))
		}
		res, err := arch.PutBatch(put)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: populate archive: %v\n", err)
			return 2
		}
		for _, r := range res {
			ids = append(ids, r.ID)
		}
	}
	var corpusRuns []*core.Run
	for li := 0; li < corpusLabels; li++ {
		corpusRuns = append(corpusRuns, benchCorpusRun(li, 1), benchCorpusRun(li, 2))
	}
	if _, err := arch.PutBatch(corpusRuns); err != nil {
		fmt.Fprintf(stderr, "osprof: populate corpus: %v\n", err)
		return 2
	}

	// The corpus builds once and is reused — exactly the service's
	// memoization (it rebuilds only when the index changes).
	corpus, _, err := classify.FromArchive(arch)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: corpus: %v\n", err)
		return 2
	}

	// Identify: classifier with summary pre-filtering, timed end to end
	// including the archive load of the unknown run.
	fast := classify.New()
	fast.Prefilter = classify.DefaultPrefilter
	identifyMs := make([]time.Duration, 0, requests)
	for k := 0; k < requests; k++ {
		id := ids[(k*librarianPrime)%len(ids)]
		t0 := time.Now()
		run, err := arch.Get(id)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: get %s: %v\n", id, err)
			return 2
		}
		fast.Identify(corpus, run)
		identifyMs = append(identifyMs, time.Since(t0))
	}

	// Diff: the summary-first engine, timed end to end over a mix of
	// identical pairs (the fleet's healthy-re-ingest steady state, fast
	// path) and distinct pairs (escalation to the full analysis).
	engine := diff.NewSummaryFirst()
	diffMs := make([]time.Duration, 0, requests)
	for k := 0; k < requests; k++ {
		ia := (k * librarianPrime) % len(ids)
		ib := ia
		if k%2 == 1 {
			ib = (ia + 1) % len(ids)
		}
		t0 := time.Now()
		a, err := arch.Get(ids[ia])
		if err == nil {
			var b *core.Run
			if b, err = arch.Get(ids[ib]); err == nil {
				engine.Runs(a, b)
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "osprof: get pair: %v\n", err)
			return 2
		}
		diffMs = append(diffMs, time.Since(t0))
	}

	parity := benchAnalysisParity(arch, corpus, ids)

	sort.Slice(identifyMs, func(i, j int) bool { return identifyMs[i] < identifyMs[j] })
	sort.Slice(diffMs, func(i, j int) bool { return diffMs[i] < diffMs[j] })
	doc := benchAnalysisDoc{
		Schema:        benchAnalysisSchema,
		Runs:          runs,
		CorpusLabels:  corpusLabels,
		Requests:      requests,
		IdentifyP50Ms: quantileMs(identifyMs, 0.50),
		IdentifyP99Ms: quantileMs(identifyMs, 0.99),
		DiffP50Ms:     quantileMs(diffMs, 0.50),
		DiffP99Ms:     quantileMs(diffMs, 0.99),
		Parity:        parity,
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	if out != "" {
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	}
	if doc.Parity != "ok" {
		fmt.Fprintf(stderr, "osprof: bench analysis failed: parity %s\n", doc.Parity)
		return 1
	}
	return 0
}

// librarianPrime strides the id list so timed requests spread across
// the archive instead of hammering one hot segment.
const librarianPrime = 7919

// benchAnalysisParity spot-checks the fast paths against the exhaustive
// ones on a sample: prefiltered identify must agree on label and
// abstention, summary-first diff must agree on every verdict.
func benchAnalysisParity(arch *store.Archive, corpus *classify.Corpus, ids []string) string {
	fast := classify.New()
	fast.Prefilter = classify.DefaultPrefilter
	full := classify.New()
	fastDiff := diff.NewSummaryFirst()
	fullDiff := diff.New()
	for k := 0; k < 10; k++ {
		ia := (k * 997) % len(ids)
		a, err := arch.Get(ids[ia])
		if err != nil {
			return fmt.Sprintf("get %s: %v", ids[ia], err)
		}
		fr, xr := fast.Identify(corpus, a), full.Identify(corpus, a)
		if fr.Matched != xr.Matched || fr.Label != xr.Label || fr.Distance != xr.Distance {
			return fmt.Sprintf("identify parity: %s prefiltered %v/%q, full %v/%q",
				ids[ia], fr.Matched, fr.Label, xr.Matched, xr.Label)
		}
		b, err := arch.Get(ids[(ia+k)%len(ids)])
		if err != nil {
			return fmt.Sprintf("get pair: %v", err)
		}
		fd, xd := fastDiff.Runs(a, b), fullDiff.Runs(a, b)
		if fd.Changed != xd.Changed || len(fd.Ops) != len(xd.Ops) {
			return fmt.Sprintf("diff parity: %s vs %s fast Changed=%d, full Changed=%d",
				ids[ia], ids[(ia+k)%len(ids)], fd.Changed, xd.Changed)
		}
		verdicts := make(map[string]diff.Verdict, len(xd.Ops))
		for _, d := range xd.Ops {
			verdicts[d.Op] = d.Verdict
		}
		for _, d := range fd.Ops {
			if v, ok := verdicts[d.Op]; !ok || v != d.Verdict {
				return fmt.Sprintf("diff parity: op %s fast %q, full %q", d.Op, d.Verdict, v)
			}
		}
	}
	return "ok"
}
