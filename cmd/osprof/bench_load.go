package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"osprof/internal/core"
	"osprof/internal/experiments"
	"osprof/internal/load"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// This file implements `osprof bench load`: the overhead budget for
// load-conditioned profiling. It runs the same contended readzero
// workload at NumCPUs 1/2/4 with load profiling off and on, compares
// simulated-ops-per-wall-second, and fails if conditioning ever costs
// more than the 5% budget — the probe must stay a pure observer on the
// hot path.

// benchLoadSchema versions the bench report document.
const benchLoadSchema = "osprof-bench-load/v1"

// benchLoadGatePct is the maximum profiling overhead the gate accepts.
const benchLoadGatePct = 5.0

// benchLoadDoc is the `osprof bench load` report.
type benchLoadDoc struct {
	Schema  string          `json:"schema"`
	GatePct float64         `json:"gate_pct"`
	Cells   []benchLoadCell `json:"cells"`

	// MaxOverheadPct is the worst cell's overhead; the gate fails when
	// it exceeds GatePct.
	MaxOverheadPct float64 `json:"max_overhead_pct"`
}

// benchLoadCell is one NumCPUs configuration's measurement.
type benchLoadCell struct {
	CPUs  int `json:"cpus"`
	Procs int `json:"procs"`

	// Simulated operations completed per wall-clock second, best of
	// the measurement repetitions.
	OpsPerSecOff float64 `json:"ops_per_sec_off"`
	OpsPerSecOn  float64 `json:"ops_per_sec_on"`

	// OverheadPct is the throughput lost to load profiling; negative
	// values (noise) are clamped to 0.
	OverheadPct float64 `json:"overhead_pct"`
}

// benchLoadSpec builds the measured workload: 2*cpus readzero
// processes hammering one cached page, the LoadCells shape at a fixed
// fan-out ratio so every cell spends real time contended.
func benchLoadSpec(cpus int, loadOn bool) scenario.Spec {
	return scenario.Spec{
		Name:    fmt.Sprintf("bench/load-%dcpu", cpus),
		Backend: scenario.Ext2,
		Kernel: sim.Config{
			NumCPUs:       cpus,
			Quantum:       1 << 14,
			TickPeriod:    1 << 12,
			TickCost:      800,
			Preemptive:    true,
			WakePreempt:   true,
			ContextSwitch: 9_350,
			Seed:          int64(cpus),
		},
		CachePages:  1 << 10,
		Files:       []scenario.FileSpec{{Name: "zero", Size: vfs.PageSize}},
		Instrument:  scenario.Instrument{Point: scenario.FSLevel},
		LoadProfile: loadOn,
		Workloads: []scenario.Workload{
			{Kind: scenario.ReadZero, ProcName: "reader", Procs: 2 * cpus, Amount: 8_000, Path: "/zero"},
		},
	}
}

// benchLoadBaseOps counts the base-op samples only: a conditioned run
// records every sample twice (base profile + banded companion), so
// TotalOps would credit the conditioned side with double the work and
// the off/on comparison would be meaningless.
func benchLoadBaseOps(set *core.Set) uint64 {
	var n uint64
	for _, op := range set.Ops() {
		if _, _, ok := load.SplitOp(op); ok {
			continue
		}
		n += set.Get(op).Count
	}
	return n
}

// benchLoadRate runs the spec once and returns its
// simulated-ops-per-wall-second.
func benchLoadRate(spec scenario.Spec) (float64, error) {
	start := time.Now()
	r := experiments.RecordScenario(spec)
	elapsed := time.Since(start).Seconds()
	if r.Err != nil {
		return 0, r.Err
	}
	set := r.ProfileSet()
	if set == nil || elapsed <= 0 {
		return 0, fmt.Errorf("%s: no profile set", spec.Name)
	}
	return float64(benchLoadBaseOps(set)) / elapsed, nil
}

// benchLoadPair measures the off and on rates back to back, reps
// times, interleaved so machine drift hits both sides equally, and
// returns the best of each (best-of minimizes scheduler noise).
func benchLoadPair(cpus, reps int) (off, on float64, err error) {
	for i := 0; i < reps; i++ {
		o, err := benchLoadRate(benchLoadSpec(cpus, false))
		if err != nil {
			return 0, 0, err
		}
		n, err := benchLoadRate(benchLoadSpec(cpus, true))
		if err != nil {
			return 0, 0, err
		}
		if o > off {
			off = o
		}
		if n > on {
			on = n
		}
	}
	return off, on, nil
}

// cmdBenchLoad implements `osprof bench load`.
func cmdBenchLoad(out string, stdout, stderr io.Writer) int {
	const reps = 5
	doc := benchLoadDoc{Schema: benchLoadSchema, GatePct: benchLoadGatePct}
	for _, cpus := range []int{1, 2, 4} {
		off, on, err := benchLoadPair(cpus, reps)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		cell := benchLoadCell{CPUs: cpus, Procs: 2 * cpus, OpsPerSecOff: off, OpsPerSecOn: on}
		if on < off {
			cell.OverheadPct = 100 * (off - on) / off
		}
		if cell.OverheadPct > doc.MaxOverheadPct {
			doc.MaxOverheadPct = cell.OverheadPct
		}
		doc.Cells = append(doc.Cells, cell)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	if out != "" {
		data, _ := json.MarshalIndent(doc, "", "  ")
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	}
	if doc.MaxOverheadPct > benchLoadGatePct {
		fmt.Fprintf(stderr, "osprof: bench load failed: %.1f%% overhead exceeds the %.0f%% budget\n",
			doc.MaxOverheadPct, benchLoadGatePct)
		return 1
	}
	return 0
}
