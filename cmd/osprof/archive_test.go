package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/runner"
)

// recordJSON runs `osprof record` with -json and parses the results.
func recordJSON(t *testing.T, archive string, ids ...string) []runner.RunResult {
	t.Helper()
	args := append([]string{"record", "-json", "-archive", archive}, ids...)
	code, out, errOut := exec(t, args...)
	if code != 0 {
		t.Fatalf("record exit=%d stderr=%s", code, errOut)
	}
	var results []runner.RunResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("record JSON: %v\n%s", err, out)
	}
	return results
}

// Recording the same Spec+seed twice must produce byte-identical
// archived runs: the content address (run ID) is the same and the
// second recording dedups (the acceptance criterion of the archive).
func TestRecordTwiceIsByteIdentical(t *testing.T) {
	archive := t.TempDir()
	first := recordJSON(t, archive, "ext2/readzero")
	second := recordJSON(t, archive, "ext2/readzero")
	if len(first) != 1 || len(second) != 1 {
		t.Fatalf("results: %d/%d", len(first), len(second))
	}
	if first[0].RunID == "" || first[0].RunID != second[0].RunID {
		t.Fatalf("run ids differ across identical recordings: %q vs %q",
			first[0].RunID, second[0].RunID)
	}
	if first[0].Dedup || !second[0].Dedup {
		t.Errorf("dedup flags: first=%v second=%v", first[0].Dedup, second[0].Dedup)
	}
	if first[0].Fingerprint == "" || first[0].Schema != runner.Schema {
		t.Errorf("result missing fingerprint/schema: %+v", first[0])
	}

	// Diffing the run against itself reports every operation unchanged.
	code, out, _ := exec(t, "diff", "-archive", archive, "-json",
		"latest:ext2/readzero", first[0].RunID)
	if code != 0 {
		t.Fatalf("self-diff exit=%d:\n%s", code, out)
	}
	var rep diff.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Changed != 0 || len(rep.Ops) == 0 {
		t.Errorf("self-diff: %+v", rep)
	}
	for _, op := range rep.Ops {
		if op.Verdict != diff.Unchanged {
			t.Errorf("%s: verdict %s on identical runs", op.Op, op.Verdict)
		}
	}
}

// The §5-style kernel-configuration comparison: two kernel builds
// (preemption on/off) must diff with the read operation flagged at a
// nonzero EMD — the preemptive kernel adds a latency peak near
// log2(quantum) where preempted requests wait out their quantum.
func TestDiffFlagsPreemptionConfigChange(t *testing.T) {
	archive := t.TempDir()
	recordJSON(t, archive, "fig3/nopreempt", "fig3/preempt")

	code, out, errOut := exec(t, "diff", "-archive", archive, "-json",
		"latest:fig3/nopreempt", "latest:fig3/preempt")
	if code != 1 {
		t.Fatalf("config-change diff exit=%d, want 1; stderr=%s\n%s", code, errOut, out)
	}
	var rep diff.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Changed == 0 {
		t.Fatalf("preemption change not flagged: %+v", rep)
	}
	var read *diff.OpDiff
	for i := range rep.Ops {
		if rep.Ops[i].Op == "read" {
			read = &rep.Ops[i]
		}
	}
	if read == nil {
		t.Fatal("read operation missing from the report")
	}
	if !read.Verdict.Changed() {
		t.Errorf("read verdict %s, want a change", read.Verdict)
	}
	if read.Score <= 0 {
		t.Errorf("read EMD = %v, want nonzero", read.Score)
	}
	if read.PeaksB <= read.PeaksA {
		t.Errorf("preemptive kernel should add a peak: %d -> %d",
			read.PeaksA, read.PeaksB)
	}
	if rep.FingerprintA == rep.FingerprintB || rep.FingerprintA == "" {
		t.Errorf("fingerprints must witness the config change: %q vs %q",
			rep.FingerprintA, rep.FingerprintB)
	}

	// Text mode renders the verdict table and side-by-side plots.
	code, out, _ = exec(t, "diff", "-archive", archive,
		"latest:fig3/nopreempt", "latest:fig3/preempt")
	if code != 1 {
		t.Errorf("text diff exit=%d, want 1", code)
	}
	for _, want := range []string{"VERDICT", "read", "   |   "} {
		if !strings.Contains(out, want) {
			t.Errorf("text diff missing %q:\n%s", want, out)
		}
	}
}

// baseline + gate: blessing a baseline and re-running the same
// deterministic scenario must report zero regressions (exit 0); a
// different seed is a different fingerprint, so the gate refuses to
// compare against a mismatched baseline.
func TestBaselineGate(t *testing.T) {
	archive := t.TempDir()
	code, out, errOut := exec(t, "baseline", "-archive", archive, "ext2/readzero")
	if code != 0 {
		t.Fatalf("baseline exit=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "baseline") || !strings.Contains(out, "ext2/readzero") {
		t.Errorf("baseline output:\n%s", out)
	}

	code, out, errOut = exec(t, "baseline", "list", "-archive", archive)
	if code != 0 || !strings.Contains(out, "ext2/readzero") {
		t.Errorf("baseline list exit=%d:\n%s%s", code, out, errOut)
	}

	code, out, errOut = exec(t, "diff", "-archive", archive, "ext2/readzero")
	if code != 0 {
		t.Fatalf("gate exit=%d, want 0\nstdout:%s\nstderr:%s", code, out, errOut)
	}
	if !strings.Contains(out, "ok   ext2/readzero") ||
		!strings.Contains(out, "total: 0 changed") {
		t.Errorf("gate output:\n%s", out)
	}

	// JSON gate output is a MatrixReport.
	code, out, _ = exec(t, "diff", "-archive", archive, "-json", "ext2/readzero")
	if code != 0 {
		t.Fatalf("json gate exit=%d", code)
	}
	var m diff.MatrixReport
	if err := json.Unmarshal([]byte(out), &m); err != nil {
		t.Fatal(err)
	}
	if m.Changed != 0 || len(m.Pairs) != 1 || m.Pairs[0].Name != "ext2/readzero" {
		t.Errorf("json gate: %+v", m)
	}

	// A different seed produces a different fingerprint: no baseline.
	code, _, errOut = exec(t, "diff", "-archive", archive, "-seed", "9", "ext2/readzero")
	if code != 2 || !strings.Contains(errOut, "no baseline") {
		t.Errorf("mismatched-seed gate exit=%d stderr=%s, want 2 + diagnosis", code, errOut)
	}

	// The blessed baseline stays addressable by name even after the
	// scenario is re-recorded under a different seed (fingerprint):
	// the reference must resolve to the blessed run, not fail because
	// the latest run's fingerprint has no baseline.
	code, out, errOut = exec(t, "record", "-archive", archive, "-seed", "9", "ext2/readzero")
	if code != 0 {
		t.Fatalf("re-record exit=%d stderr=%s", code, errOut)
	}
	code, out, errOut = exec(t, "diff", "-archive", archive, "-json",
		"baseline:ext2/readzero", "latest:ext2/readzero")
	if code == 2 {
		t.Fatalf("baseline ref unresolvable after re-seed: stderr=%s", errOut)
	}
	var rep diff.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	// The A side must be the blessed seed-1 run (its fingerprint, not
	// the re-seeded latest one).
	if rep.FingerprintA != rep.FingerprintB {
		// readzero is seed-insensitive in behavior, but the envelopes
		// must still witness the two distinct configurations.
		if rep.FingerprintA == "" || rep.FingerprintB == "" {
			t.Errorf("fingerprints missing: %+v", rep)
		}
	} else {
		t.Errorf("baseline: resolved to the re-seeded run, not the blessed one: %+v", rep)
	}
}

// diff accepts file paths as run references.
func TestDiffFileReferences(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, latency uint64, n int) string {
		s := core.NewSet(name)
		for i := 0; i < n; i++ {
			s.Record("read", latency)
		}
		var buf bytes.Buffer
		if err := core.WriteRun(&buf, &core.Run{Set: s}); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".run")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("before", 100, 1000)
	b := write("after", 100<<4, 1000) // shifted four buckets

	code, out, errOut := exec(t, "diff", "-archive", filepath.Join(dir, "arch"), a, b)
	if code != 1 {
		t.Fatalf("file diff exit=%d stderr=%s", code, errOut)
	}
	if !strings.Contains(out, "shifted-peak") {
		t.Errorf("shifted peak not flagged:\n%s", out)
	}
}

func TestRecordListAndUnknown(t *testing.T) {
	code, out, _ := exec(t, "record", "list")
	if code != 0 {
		t.Fatalf("record list exit=%d", code)
	}
	for _, want := range []string{"ext2/grep", "cifs/readzero", "fig3/preempt", "fig3/nopreempt"} {
		if !strings.Contains(out, want) {
			t.Errorf("record list missing %q:\n%s", want, out)
		}
	}
	code, _, errOut := exec(t, "record", "-archive", t.TempDir(), "nope/nope")
	if code != 2 || !strings.Contains(errOut, "unknown scenario") {
		t.Errorf("unknown scenario exit=%d stderr=%s", code, errOut)
	}
}

// A stray file named like a scenario id (or "all") in the working
// directory must not hijack the documented gate commands into
// file-reference mode.
func TestDiffScenarioIdsBeatStrayFiles(t *testing.T) {
	archive := t.TempDir()
	dir := t.TempDir()
	for _, name := range []string{"all", "ext2-readzero"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	// With a ./all file present, `diff all` must still run the gate
	// (which fails with "no baseline", exit 2 + diagnosis — not the
	// "takes exactly two run references" usage error, and not an
	// attempt to parse ./all as a run envelope).
	code, _, errOut := exec(t, "diff", "-archive", archive, "all")
	if code != 2 || !strings.Contains(errOut, "no baseline") {
		t.Errorf("gate hijacked by stray file: exit=%d stderr=%s", code, errOut)
	}
}

func TestDiffUsageErrors(t *testing.T) {
	archive := t.TempDir()
	// A ref mixed into gate ids is a usage error.
	code, _, errOut := exec(t, "diff", "-archive", archive, "latest:ext2/grep", "ext2/grep", "deadbeef")
	if code != 2 {
		t.Errorf("mixed diff args exit=%d stderr=%s", code, errOut)
	}
	// Unknown reference.
	code, _, errOut = exec(t, "diff", "-archive", archive, "latest:ext2/grep", "latest:ext2/walk")
	if code != 2 || !strings.Contains(errOut, "no recorded run") {
		t.Errorf("unrecorded ref exit=%d stderr=%s", code, errOut)
	}
}
