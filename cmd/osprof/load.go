package main

import (
	"fmt"
	"io"
	"strconv"

	"osprof/internal/report"
	"osprof/internal/sim"
	"osprof/internal/store"
)

// cmdLoad implements `osprof load <ref>`: the run's load-conditioned
// latency decomposition — each operation's samples split by the
// run-queue load band they were taken at. -realtime re-weights the
// band shares by the band occupancy the run recorded in its metadata
// (perf-load's -realtime), turning sample shares into wall-clock
// expectations.
func cmdLoad(rest []string, archiveDir string, realtime, jsonOut bool, stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintln(stderr, "osprof: usage: osprof load <ref> [-realtime] [-json]")
		return 2
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	ref := rest[0]
	run, err := resolveRun(arch, ref)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", ref, err)
		return 2
	}
	doc := report.LoadOf(run.Set)
	if realtime {
		var occ [sim.LoadBands]uint64
		found := false
		for b := 0; b < sim.LoadBands; b++ {
			v, ok := run.Meta["loadocc:"+sim.LoadBandName(b)]
			if !ok {
				continue
			}
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				fmt.Fprintf(stderr, "osprof: %s: bad load occupancy %q in run metadata\n", ref, v)
				return 2
			}
			occ[b] = n
			found = true
		}
		if !found {
			fmt.Fprintf(stderr, "osprof: %s: no load occupancy in run metadata (record with -load)\n", ref)
			return 2
		}
		report.LoadApplyRealtime(doc, occ)
	}
	if jsonOut {
		if err := report.JSON(stdout, doc); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		return 0
	}
	report.Load(stdout, doc)
	return 0
}
