package main

import (
	"fmt"
	"io"

	"osprof/internal/experiments"
	"osprof/internal/fault"
	"osprof/internal/report"
	"osprof/internal/scenario"
)

// cmdTrace implements `osprof trace`: run the selected recordable
// scenarios with layer tracing enabled and print each run's per-layer
// latency decomposition — which layer a request spends its time in,
// and which layer dominates its critical path. -inject composes: the
// traced run of a degraded scenario shows the fault's layer signature
// directly (`osprof trace -inject cpu-hog fig3/preempt` attributes the
// flusher-lock stall to the fs layer). Runs are not archived; use
// `osprof record -trace` for archival traced runs.
func cmdTrace(rest []string, seed int64, inject string, jsonOut bool,
	stdout, stderr io.Writer) int {
	specs := experiments.RecordableSpecs(seed)
	byID := make(map[string]scenario.Spec, len(specs))
	ids := make([]string, 0, len(specs))
	for _, sp := range specs {
		byID[sp.Name] = sp
		ids = append(ids, sp.Name)
	}
	if len(rest) == 1 && rest[0] == "list" {
		for _, id := range ids {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if inject != "" {
		if _, ok := fault.Preset(inject); !ok {
			fmt.Fprintf(stderr, "osprof: unknown fault preset %q (try `osprof record -inject list`)\n", inject)
			return 2
		}
	}
	ids = expand(rest, ids)
	failed := 0
	var docs []*report.LayersDoc
	for _, id := range ids {
		spec, ok := byID[id]
		if !ok {
			fmt.Fprintf(stderr, "osprof: unknown scenario %q (try `osprof trace list`)\n", id)
			return 2
		}
		if inject != "" {
			// A fresh preset per spec, as in cmdRecord: scenarios must
			// not share fault state.
			spec.Injections, _ = fault.Preset(inject)
		}
		spec.Trace = true
		r := experiments.RecordScenario(spec)
		checks := r.Checks()
		for _, c := range checks {
			if !c.OK {
				failed++
			}
		}
		if jsonOut {
			if r.Err == nil {
				docs = append(docs, report.LayersOf(r.Stack.Set))
			}
			continue
		}
		fmt.Fprintf(stdout, "### %s\n", id)
		if r.Err != nil {
			fmt.Fprintf(stdout, "error: %v\n", r.Err)
		} else {
			report.Layers(stdout, r.Stack.Set)
		}
		experiments.WriteCheckList(stdout, checks)
		fmt.Fprintln(stdout)
	}
	if jsonOut {
		if err := report.JSON(stdout, docs); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "osprof: %d failed checks\n", failed)
		return 1
	}
	return 0
}
