package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"osprof/internal/report"
	"osprof/internal/store"
	"osprof/internal/summary"
)

// cmdSummary implements `osprof summary <ref>`: the run's streaming
// set digest — per-operation quantiles, peak counts, and the hottest
// operations — as a text table or the osprof-summary/v1 document. The
// CLI twin of GET /v1/summary: triage a run's latency surface without
// rendering every histogram.
func cmdSummary(rest []string, archiveDir string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintln(stderr, "osprof: usage: osprof summary <ref> [-json]")
		return 2
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	ref := rest[0]
	run, err := resolveRun(arch, ref)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", ref, err)
		return 2
	}
	doc := report.SummaryOf(summary.OfSet(run.Set, summary.DefaultTopK))
	doc.Fingerprint = run.Fingerprint
	// Archive references carry their content address; a local envelope
	// file has none.
	if st, err := os.Stat(ref); err != nil || st.IsDir() ||
		strings.HasPrefix(ref, "latest:") || strings.HasPrefix(ref, "baseline:") {
		doc.ID, _ = arch.ResolveRef(ref)
	}
	if jsonOut {
		if err := report.JSON(stdout, doc); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		return 0
	}
	report.RenderSummary(stdout, doc)
	return 0
}
