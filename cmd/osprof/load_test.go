package main

import (
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/diff"
	"osprof/internal/report"
)

// TestLoadWorkflowEndToEnd drives the whole surface through the real
// CLI: record the contention cells, render the load decomposition
// (plain, realtime, JSON), and diff the solo cell against the packed
// one — the load-aware diff must attribute the change to the contended
// band and exit 1.
func TestLoadWorkflowEndToEnd(t *testing.T) {
	archive := t.TempDir()
	results := recordJSON(t, archive, "load/readzero-1x2", "load/readzero-4x2")
	if len(results) != 2 {
		t.Fatalf("recorded %d runs", len(results))
	}

	// Plain decomposition of the packed cell.
	code, out, errOut := exec(t, "load", "-archive", archive, "latest:load/readzero-4x2")
	if code != 0 {
		t.Fatalf("load exit=%d stderr=%s", code, errOut)
	}
	for _, want := range []string{"read", "2-4", "SHARE"} {
		if !strings.Contains(out, want) {
			t.Errorf("load table misses %q:\n%s", want, out)
		}
	}

	// Realtime: the recorded occupancy is in the run metadata.
	code, out, errOut = exec(t, "load", "-realtime", "-json", "-archive", archive,
		"latest:load/readzero-4x2")
	if code != 0 {
		t.Fatalf("load -realtime exit=%d stderr=%s", code, errOut)
	}
	var doc report.LoadDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != report.LoadSchema || !doc.Realtime {
		t.Fatalf("doc header: %+v", doc)
	}
	if len(doc.Ops) == 0 || len(doc.Occupancy) == 0 {
		t.Fatalf("empty realtime doc: %+v", doc)
	}

	// An unconditioned run has no occupancy to weight by.
	recordJSON(t, archive, "ext2/readzero")
	code, _, errOut = exec(t, "load", "-realtime", "-archive", archive, "latest:ext2/readzero")
	if code != 2 || !strings.Contains(errOut, "no load occupancy") {
		t.Fatalf("unconditioned -realtime: exit=%d stderr=%s", code, errOut)
	}

	// The load-aware diff attributes the contention pair to the
	// contended band and exits 1 (a difference was found).
	code, out, errOut = exec(t, "diff", "-load", "-archive", archive,
		"latest:load/readzero-1x2", "latest:load/readzero-4x2")
	if code != 1 {
		t.Fatalf("diff -load exit=%d, want 1; stderr=%s\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "load:2-4") {
		t.Errorf("diff -load did not attribute the contended band:\n%s", out)
	}

	// The structured report carries the same attribution for /v1/diff.
	code, out, _ = exec(t, "diff", "-json", "-archive", archive,
		"latest:load/readzero-1x2", "latest:load/readzero-4x2")
	if code != 1 {
		t.Fatalf("diff -json exit=%d, want 1", code)
	}
	var rep diff.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, mv := range rep.Loads {
		if mv.Op == "read" && mv.Band == "2-4" {
			found = true
		}
	}
	if !found {
		t.Errorf("JSON report loads: %+v", rep.Loads)
	}
}

// -load on the gate form is a usage error, like -layers.
func TestDiffLoadRejectsGateForm(t *testing.T) {
	code, _, errOut := exec(t, "diff", "-load", "-archive", t.TempDir(), "all")
	if code != 2 || !strings.Contains(errOut, "-load") {
		t.Fatalf("exit=%d stderr=%s", code, errOut)
	}
}

// `osprof record -load` conditions every recordable and fingerprints
// as its own world: the loaded twin must not collide with the plain
// recording of the same scenario.
func TestRecordLoadFingerprintsOwnWorld(t *testing.T) {
	archive := t.TempDir()
	plain := recordJSON(t, archive, "ext2/readzero")
	code, out, errOut := exec(t, "record", "-load", "-json", "-archive", archive, "ext2/readzero")
	if code != 0 {
		t.Fatalf("record -load exit=%d stderr=%s", code, errOut)
	}
	var loaded []struct {
		Fingerprint string `json:"fingerprint"`
		RunID       string `json:"run_id"`
	}
	if err := json.Unmarshal([]byte(out), &loaded); err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if len(loaded) != 1 || loaded[0].Fingerprint == plain[0].Fingerprint {
		t.Fatalf("loaded twin shares the plain fingerprint: %+v vs %+v", loaded, plain[0])
	}
	if loaded[0].RunID == plain[0].RunID {
		t.Error("loaded twin deduped against the plain run")
	}
}
