package main

import (
	"fmt"
	"io"

	"osprof/internal/classify"
	"osprof/internal/report"
	"osprof/internal/store"
	"osprof/internal/watch"
)

// This file implements `osprof watch <ref|file>`: the offline half of
// the continuous anomaly watch. The referenced run is diffed against
// its blessed baseline (matched by run name first, then by
// fingerprint) and, when drifted, attributed against the labeled
// corpus — the same verdict ladder the service applies to watched
// ingests. Exit codes follow the gate convention: 0 the verdict is ok
// (or matches -expect), 1 any other verdict, 2 usage/archive errors.

// cmdWatch implements `osprof watch <ref|file>`.
func cmdWatch(rest []string, archiveDir, expect string, jsonOut bool,
	stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintf(stderr, "osprof: watch takes exactly one run reference, got %d\n", len(rest))
		return 2
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	run, err := resolveRun(arch, rest[0])
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", rest[0], err)
		return 2
	}
	entry, ok, err := arch.BaselineByName(run.Name())
	if err == nil && !ok && run.Fingerprint != "" {
		entry, ok, err = arch.Baseline(run.Fingerprint)
	}
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	if !ok {
		fmt.Fprintf(stderr, "osprof: no blessed baseline for %q (run `osprof baseline %s` first)\n",
			run.Name(), run.Name())
		return 2
	}
	baseline, err := arch.Get(entry.ID)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: baseline %.12s: %v\n", entry.ID, err)
		return 2
	}
	// Attribution is best-effort: an archive with no labeled corpus
	// still yields an ok/anomaly verdict.
	corpus, _, err := classify.FromArchive(arch)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	rep := watch.New().Evaluate(baseline, run, corpus)
	rep.BaselineID = entry.ID
	if jsonOut {
		if err := report.JSON(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	} else {
		report.Watch(stdout, rep)
	}
	if expect != "" {
		if string(rep.Verdict) != expect {
			fmt.Fprintf(stderr, "osprof: verdict %q, expected %q\n", rep.Verdict, expect)
			return 1
		}
		return 0
	}
	if rep.Verdict != watch.OK {
		return 1
	}
	return 0
}
