package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// A short self-hosted run must ship envelopes, pass the coalescing
// parity check, and write the same report to -out.
func TestBenchIngestSelfHosted(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "bench.json")
	code, out, errOut := exec(t, "bench", "ingest",
		"-recorders", "2", "-batch", "4", "-duration", "200ms", "-out", outFile)
	if code != 0 {
		t.Fatalf("bench ingest exit=%d stderr=%s", code, errOut)
	}
	var doc struct {
		Schema          string  `json:"schema"`
		Envelopes       int64   `json:"envelopes"`
		EnvelopesPerSec float64 `json:"envelopes_per_sec"`
		HTTPErrors      int64   `json:"http_errors"`
		Parity          string  `json:"parity"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("report: %v\n%s", err, out)
	}
	if doc.Schema != "osprof-bench-ingest/v1" || doc.Envelopes == 0 ||
		doc.EnvelopesPerSec <= 0 || doc.HTTPErrors != 0 || doc.Parity != "ok" {
		t.Fatalf("report: %+v", doc)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != out {
		t.Fatalf("-out file differs from stdout:\n%s\nvs\n%s", data, out)
	}
}

func TestBenchUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"bench"},
		{"bench", "frobnicate"},
		{"bench", "ingest", "extra"},
		{"bench", "ingest", "-recorders", "0"},
		{"bench", "ingest", "-duration", "0s"},
	} {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Errorf("%v: exit=%d, want 2", args, code)
		}
	}
}
