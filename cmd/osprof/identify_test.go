package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/experiments"
	"osprof/internal/report"
	"osprof/internal/runner"
)

// buildCorpus records the full labeled corpus into archive and returns
// the parsed -json results.
func buildCorpus(t *testing.T, archive string) []runner.RunResult {
	t.Helper()
	code, out, errOut := exec(t, "corpus", "build", "-json", "-archive", archive, "-parallel", "2")
	if code != 0 {
		t.Fatalf("corpus build exit=%d stderr=%s", code, errOut)
	}
	var results []runner.RunResult
	if err := json.Unmarshal([]byte(out), &results); err != nil {
		t.Fatalf("corpus build JSON: %v\n%s", err, out)
	}
	return results
}

// The identification lifecycle and its exit codes: 0 for a confident
// (and, with -expect, correct) match, 1 for abstentions and -expect
// mismatches, 2 for usage and archive errors.
func TestIdentifyExitCodes(t *testing.T) {
	archive := t.TempDir()
	results := buildCorpus(t, archive)
	_, _, labels, ids := experiments.Corpus(1)
	if len(results) != len(ids) {
		t.Fatalf("corpus build recorded %d of %d scenarios", len(results), len(ids))
	}

	// Exit 0: every corpus member self-identifies to its own label.
	for _, id := range ids {
		code, _, errOut := exec(t, "identify", "latest:"+id,
			"-archive", archive, "-expect", labels[id])
		if code != 0 {
			t.Errorf("self-identify %s: exit=%d stderr=%s", id, code, errOut)
		}
	}

	// Exit 0 and a MATCH verdict line without -expect.
	code, out, _ := exec(t, "identify", "latest:corpus/cifs-c256", "-archive", archive)
	if code != 0 || !strings.Contains(out, "verdict: MATCH cifs-c256") {
		t.Errorf("exit=%d out:\n%s", code, out)
	}

	// Exit 1: a confident match that is not the -expect'ed label.
	code, _, errOut := exec(t, "identify", "latest:corpus/cifs-c256",
		"-archive", archive, "-expect", "cifs-c8192")
	if code != 1 || !strings.Contains(errOut, "expected") {
		t.Errorf("expect mismatch: exit=%d stderr=%s", code, errOut)
	}

	// Exit 1: a configuration absent from the corpus abstains.
	if code, _, errOut := exec(t, "record", "ext2/readzero", "-archive", archive); code != 0 {
		t.Fatalf("record foreign: exit=%d stderr=%s", code, errOut)
	}
	code, out, _ = exec(t, "identify", "latest:ext2/readzero", "-archive", archive)
	if code != 1 || !strings.Contains(out, "ABSTAIN") {
		t.Errorf("foreign profile: exit=%d out:\n%s", code, out)
	}

	// Exit 2: usage and reference errors.
	for _, args := range [][]string{
		{"identify", "-archive", archive},                            // no reference
		{"identify", "a", "b", "-archive", archive},                  // two references
		{"identify", "latest:no/such/run", "-archive", archive},      // unknown ref
		{"identify", "latest:fig3/preempt", "-archive", t.TempDir()}, // empty archive: no corpus
		{"corpus", "-archive", archive},                              // missing subcommand
		{"corpus", "prune", "-archive", archive},                     // unknown subcommand
	} {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Errorf("%v: exit=%d, want 2", args, code)
		}
	}
}

// `corpus list` honors the global -json flag like every other listing
// subcommand, emitting the versioned osprof-corpus/v1 document.
func TestCorpusListJSON(t *testing.T) {
	_, _, labels, ids := experiments.Corpus(1)
	code, out, errOut := exec(t, "corpus", "list", "-json")
	if code != 0 {
		t.Fatalf("corpus list -json exit=%d stderr=%s", code, errOut)
	}
	var doc report.CorpusListDoc
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("corpus list -json: %v\n%s", err, out)
	}
	if doc.Schema != report.CorpusSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, report.CorpusSchema)
	}
	if len(doc.Scenarios) != len(ids) {
		t.Fatalf("listed %d scenarios, want %d", len(doc.Scenarios), len(ids))
	}
	for i, sc := range doc.Scenarios {
		if sc.ID != ids[i] || sc.Label != labels[ids[i]] {
			t.Errorf("scenario %d = %+v, want id %q label %q", i, sc, ids[i], labels[ids[i]])
		}
	}
}

// Two identifications of the same reference against the same corpus
// must emit byte-identical -json documents (the schema promise behind
// piping verdicts into CI).
func TestIdentifyJSONByteStable(t *testing.T) {
	archive := t.TempDir()
	buildCorpus(t, archive)
	run := func() string {
		code, out, errOut := exec(t, "identify", "-json",
			"latest:corpus/reiser-preempt-c256", "-archive", archive)
		if code != 0 {
			t.Fatalf("identify exit=%d stderr=%s", code, errOut)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("-json output differs across identical runs:\n%s\nvs\n%s", a, b)
	}
	var rep classify.Report
	if err := json.Unmarshal([]byte(a), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != classify.Schema || !rep.Matched || rep.Label != "reiser-preempt-c256" {
		t.Errorf("verdict: %+v", rep)
	}
}

// identify also accepts an envelope file, the no-archive-access path a
// profile collected elsewhere arrives through.
func TestIdentifyFileReference(t *testing.T) {
	archive := t.TempDir()
	buildCorpus(t, archive)

	// Export one labeled run's envelope to a file: the archive object
	// IS the serialized envelope (content addressing), so recording
	// again and reading the object would be equivalent; going through
	// `corpus build`'s dedup keeps this cheap.
	results := buildCorpus(t, archive) // dedups, returns the same run IDs
	var fig3 runner.RunResult
	for _, rr := range results {
		if rr.ID == "fig3/preempt" {
			fig3 = rr
		}
	}
	if fig3.RunID == "" || !fig3.Dedup {
		t.Fatalf("fig3/preempt rerun did not dedup: %+v", fig3)
	}
	obj := filepath.Join(archive, "objects", fig3.RunID[:2], fig3.RunID[2:])
	data, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "unknown.run")
	if err := os.WriteFile(file, data, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := exec(t, "identify", file, "-archive", archive, "-expect", "fig3-preempt")
	if code != 0 {
		t.Fatalf("identify file: exit=%d stderr=%s out=%s", code, errOut, out)
	}
	if !strings.Contains(out, "verdict: MATCH fig3-preempt") {
		t.Errorf("out:\n%s", out)
	}
}
