package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

// This file implements the service and archive-maintenance
// subcommands: `osprof serve` exposes the run archive over HTTP/JSON
// (ingest, list, diff, baselines) so the record/diff workflow works
// over the network, and `osprof archive` wires the store's
// housekeeping (list, gc) that previously had no CLI reach.

// listenArchive opens the archive, builds the service, and binds the
// listener: the testable half of cmdServe. Using addr ":0" (or
// "127.0.0.1:0") picks a free port; the chosen address is printed
// before serving starts so scripts can scrape it. The returned Server
// owns the delta coalescer: the caller drives FlushOverdue
// periodically and Close on shutdown so coalesced state cannot be
// stranded. withPprof adds the net/http/pprof profiling endpoints
// under /debug/pprof/ — off by default; the profiler profiled is
// opt-in, never ambient.
func listenArchive(archiveDir, addr string, withPprof bool) (net.Listener, http.Handler, *serve.Server, error) {
	arch, err := store.Open(archiveDir)
	if err != nil {
		return nil, nil, nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	sv := serve.New(arch, serve.Options{})
	handler := sv.Handler()
	if withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	return ln, handler, sv, nil
}

// serveUntil serves handler on ln until shutdown closes, then drains
// in-flight requests for at most the drain timeout before returning.
// It is the testable half of cmdServe: the caller owns the shutdown
// signal, so tests can trigger it without delivering real signals.
func serveUntil(ln net.Listener, handler http.Handler, shutdown <-chan struct{},
	drain time.Duration, stdout io.Writer) error {
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	case <-shutdown:
		fmt.Fprintf(stdout, "osprof: shutting down (draining up to %s)\n", drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(ctx)
		<-errc // Serve has returned ErrServerClosed
		return err
	}
}

// cmdServe implements `osprof serve`: a long-running HTTP/JSON service
// over the archive. It blocks until the listener fails or the process
// receives SIGINT/SIGTERM, then shuts down gracefully, draining
// in-flight requests for up to the -drain timeout.
func cmdServe(rest []string, archiveDir, addr string, drain time.Duration,
	withPprof bool, stdout, stderr io.Writer) int {
	if len(rest) != 0 {
		fmt.Fprintf(stderr, "osprof: serve takes no positional arguments, got %q\n", rest)
		return 2
	}
	ln, handler, sv, err := listenArchive(archiveDir, addr, withPprof)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Age-based flushing bounds how long a coalesced delta can sit
	// unarchived while its chain goes quiet.
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if _, err := sv.FlushOverdue(); err != nil {
					fmt.Fprintf(stderr, "osprof: flush: %v\n", err)
				}
			}
		}
	}()

	fmt.Fprintf(stdout, "osprof: serving archive %q at http://%s\n", archiveDir, ln.Addr())
	serveErr := serveUntil(ln, handler, ctx.Done(), drain, stdout)
	<-flusherDone
	// Drained: archive whatever the coalescer still holds.
	if err := sv.Close(); err != nil {
		fmt.Fprintf(stderr, "osprof: final flush: %v\n", err)
		if serveErr == nil {
			serveErr = err
		}
	}
	if serveErr != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", serveErr)
		return 2
	}
	return 0
}

// cmdArchive implements `osprof archive list|gc`. The list subcommand
// mirrors GET /v1/runs' cursor paging: -limit bounds the page, -after
// resumes past a previous page's last sequence number, and -label
// restricts the listing to runs carrying that corpus label (the Seq
// cursor then pages the filtered sequence, as GET /v1/runs?label=
// does). Without any flag the full listing (and its JSON document) is
// byte-identical to before paging existed.
func cmdArchive(rest []string, archiveDir string, keep, limit, after int,
	label string, jsonOut bool, stdout, stderr io.Writer) int {
	if len(rest) != 1 || (rest[0] != "list" && rest[0] != "gc") {
		fmt.Fprintln(stderr, "osprof: usage: osprof archive list [-limit N] [-after SEQ] [-label L] | osprof archive gc [-keep N]")
		return 2
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	switch rest[0] {
	case "list":
		if limit < 0 || after < 0 {
			fmt.Fprintln(stderr, "osprof: archive list needs -limit >= 0 and -after >= 0")
			return 2
		}
		row := func(e store.Entry) {
			labelCol := ""
			if e.Label != "" {
				labelCol = " label=" + e.Label
			}
			fmt.Fprintf(stdout, "run %-4d %.12s fingerprint=%.12s %s%s\n",
				e.Seq, e.ID, orDash(e.Fingerprint), e.Name, labelCol)
		}
		if limit > 0 || after > 0 || label != "" {
			entries, more, labelAware, err := arch.ListPageLabel(label, after, limit)
			if err != nil {
				fmt.Fprintf(stderr, "osprof: %v\n", err)
				return 2
			}
			if label != "" && !labelAware {
				fmt.Fprintln(stderr, "osprof: archive index predates label mirroring; re-record to rebuild it")
				return 2
			}
			if jsonOut {
				if err := report.JSON(stdout, report.RunPage(entries, more)); err != nil {
					fmt.Fprintf(stderr, "osprof: %v\n", err)
					return 2
				}
				return 0
			}
			for _, e := range entries {
				row(e)
			}
			if more && len(entries) > 0 {
				fmt.Fprintf(stdout, "more runs follow: resume with -after %d\n",
					entries[len(entries)-1].Seq)
			}
			return 0
		}
		entries, err := arch.List()
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		if jsonOut {
			if err := report.JSON(stdout, report.RunList(entries)); err != nil {
				fmt.Fprintf(stderr, "osprof: %v\n", err)
				return 2
			}
			return 0
		}
		for _, e := range entries {
			row(e)
		}
		return 0

	case "gc":
		removed, err := arch.GC(keep)
		if err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
		if jsonOut {
			doc := struct {
				Schema  string   `json:"schema"`
				Keep    int      `json:"keep"`
				Removed []string `json:"removed"`
			}{Schema: "osprof-gc/v1", Keep: keep, Removed: removed}
			if doc.Removed == nil {
				doc.Removed = []string{}
			}
			if err := report.JSON(stdout, doc); err != nil {
				fmt.Fprintf(stderr, "osprof: %v\n", err)
				return 2
			}
			return 0
		}
		for _, id := range removed {
			fmt.Fprintf(stdout, "removed %.12s\n", id)
		}
		fmt.Fprintf(stdout, "gc: kept newest %d per fingerprint (baselines pinned), removed %d runs\n",
			keep, len(removed))
		return 0
	}
	return 2
}

// orDash substitutes "-" for an empty fingerprint in listings.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
