package main

import (
	"fmt"
	"io"

	"osprof/internal/classify"
	"osprof/internal/experiments"
	"osprof/internal/report"
	"osprof/internal/runner"
	"osprof/internal/store"
)

// This file implements the identification subcommands: `osprof corpus
// build` records the labeled reference corpus (the scenario variants)
// into the archive, and `osprof identify` attributes an unknown run —
// an archive reference or an envelope file — to the nearest corpus
// label, or abstains. Exit codes follow the regression-gate
// convention: 0 a confident match (and, with -expect, the expected
// label), 1 an abstention or an -expect mismatch, 2 usage or archive
// errors.

// cmdCorpus implements `osprof corpus build|list`.
func cmdCorpus(rest []string, seed int64, archiveDir string, opt runner.Options,
	jsonOut bool, stdout, stderr io.Writer) int {
	if len(rest) != 1 || (rest[0] != "build" && rest[0] != "list") {
		fmt.Fprintln(stderr, "osprof: usage: osprof corpus build | osprof corpus list")
		return 2
	}
	reg, fps, labels, ids := experiments.Corpus(seed)
	if rest[0] == "list" {
		if jsonOut {
			if err := report.JSON(stdout, report.CorpusList(ids, labels)); err != nil {
				fmt.Fprintf(stderr, "osprof: %v\n", err)
				return 2
			}
			return 0
		}
		for _, id := range ids {
			fmt.Fprintf(stdout, "%-28s %s\n", id, labels[id])
		}
		return 0
	}

	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, runner.Job{ID: id, New: reg[id], Fingerprint: fps[id]})
	}
	return runArchived(arch, jobs, opt, jsonOut, stdout, stderr, nil,
		func(w io.Writer, rr *runner.RunResult) {
			fmt.Fprintf(w, "labeled  %-28s label=%-24s run=%.12s %s\n",
				rr.ID, labels[rr.ID], rr.RunID, dedupNote(rr))
		})
}

// cmdIdentify implements `osprof identify <ref|file>`.
func cmdIdentify(rest []string, archiveDir, expect string, jsonOut bool,
	stdout, stderr io.Writer) int {
	if len(rest) != 1 {
		fmt.Fprintf(stderr, "osprof: identify takes exactly one run reference, got %d\n", len(rest))
		return 2
	}
	arch, err := store.Open(archiveDir)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	corpus, labeled, err := classify.FromArchive(arch)
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %v\n", err)
		return 2
	}
	if labeled == 0 {
		fmt.Fprintf(stderr, "osprof: archive %q holds no labeled corpus (run `osprof corpus build` first)\n", archiveDir)
		return 2
	}
	run, err := resolveRun(arch, rest[0])
	if err != nil {
		fmt.Fprintf(stderr, "osprof: %s: %v\n", rest[0], err)
		return 2
	}
	rep := classify.New().Identify(corpus, run)
	if jsonOut {
		if err := report.JSON(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "osprof: %v\n", err)
			return 2
		}
	} else {
		report.Identify(stdout, rep)
	}
	if !rep.Matched {
		return 1
	}
	if expect != "" && rep.Label != expect {
		fmt.Fprintf(stderr, "osprof: identified %q, expected %q\n", rep.Label, expect)
		return 1
	}
	return 0
}
