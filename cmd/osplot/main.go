// Command osplot renders a serialized OSprof profile set (the format
// written by osprof.WriteSet) as paper-style ASCII histograms or a
// gnuplot script.
//
// Usage:
//
//	osplot [-g] [-op name] < profiles.osprof
//
//	-g        emit a gnuplot script instead of ASCII
//	-op NAME  render only the named operation
package main

import (
	"flag"
	"fmt"
	"os"

	"osprof"
)

func main() {
	gnuplot := flag.Bool("g", false, "emit gnuplot script")
	op := flag.String("op", "", "render only this operation")
	flag.Parse()

	set, err := osprof.ReadSet(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osplot: %v\n", err)
		os.Exit(1)
	}
	if *op != "" {
		p := set.Lookup(*op)
		if p == nil {
			fmt.Fprintf(os.Stderr, "osplot: no profile for %q (have %v)\n",
				*op, set.Ops())
			os.Exit(1)
		}
		if *gnuplot {
			osprof.RenderGnuplot(os.Stdout, p)
		} else {
			osprof.Render(os.Stdout, p)
		}
		return
	}
	if *gnuplot {
		for _, p := range set.ByTotalLatency() {
			osprof.RenderGnuplot(os.Stdout, p)
		}
		return
	}
	osprof.RenderSet(os.Stdout, set)
}
