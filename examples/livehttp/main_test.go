package main

// The end-to-end acceptance test of the live profiling story: the
// example server profiles its own handlers while serving real
// httptest-driven requests, exports its run envelope, and the envelope
// round-trips through an `osprof serve` instance — ingested, listed,
// and self-diffed back as an all-unchanged JSON report.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"osprof"
	"osprof/internal/diff"
	"osprof/internal/report"
	"osprof/internal/serve"
	"osprof/internal/store"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return body
}

func TestLivehttpProfilesItselfAndRoundTripsThroughServe(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a := newApp(ctx)
	app := httptest.NewServer(a.mux)
	defer app.Close()

	// Drive real traffic through the instrumented routes.
	for i := 0; i < 25; i++ {
		get(t, app.URL+"/hello")
		if i%5 == 0 {
			get(t, app.URL+"/work?n=50")
		}
	}

	// The server's own profile reflects the traffic just served.
	snap := a.session.Snapshot()
	if n := snap.Lookup("GET /hello").Count; n != 25 {
		t.Errorf("GET /hello count = %d, want 25", n)
	}
	if n := snap.Lookup("GET /work").Count; n != 5 {
		t.Errorf("GET /work count = %d, want 5", n)
	}
	if p := snap.Lookup("work.write"); p == nil || p.Count == 0 {
		t.Error("instrumented writer recorded nothing")
	}
	profileText := string(get(t, app.URL+"/profile"))
	if !strings.Contains(profileText, "GET /HELLO") {
		t.Errorf("/profile rendering misses the route histogram:\n%.400s", profileText)
	}

	// Export the envelope and ingest it into an osprof serve instance.
	envelope := get(t, app.URL+"/profile/run")
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	svc := httptest.NewServer(serve.Handler(arch))
	defer svc.Close()

	resp, err := http.Post(svc.URL+"/v1/ingest", "text/plain", bytes.NewReader(envelope))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ing serve.IngestDoc
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !ing.Created || ing.Name != "livehttp" {
		t.Fatalf("ingest: status=%d doc=%+v", resp.StatusCode, ing)
	}

	// The service lists the run...
	var runs report.RunListDoc
	if err := json.Unmarshal(get(t, svc.URL+"/v1/runs"), &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || runs.Runs[0].ID != ing.ID || runs.Runs[0].Name != "livehttp" {
		t.Fatalf("runs listing: %+v", runs)
	}

	// ...and an all-unchanged self-diff comes back as JSON.
	var rep diff.Report
	if err := json.Unmarshal(get(t, svc.URL+"/v1/diff/"+ing.ID+"/latest:livehttp"), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != diff.Schema || rep.Changed != 0 || len(rep.Ops) == 0 {
		t.Fatalf("self-diff: %+v", rep)
	}
	for _, op := range rep.Ops {
		if op.Verdict != osprof.Unchanged {
			t.Errorf("op %s: verdict %s, want unchanged", op.Op, op.Verdict)
		}
	}
}
