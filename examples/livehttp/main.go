// Livehttp: a self-profiling HTTP server built on the live Recorder
// API. Every route is wrapped in ProfileHandler, so the server buckets
// the latency of each request it serves — the paper's "profile a
// running system with negligible overhead" deployment (§3.1) — and the
// profile is itself served back over HTTP: as paper-style histograms
// on /profile, and as a versioned run envelope on /profile/run that
// can be POSTed straight into `osprof serve` for archiving and
// differential analysis:
//
//	go run ./examples/livehttp -addr 127.0.0.1:8080 &
//	curl -s 127.0.0.1:8080/work?n=200
//	curl -s 127.0.0.1:8080/profile            # ASCII histograms
//	curl -s 127.0.0.1:8080/profile/run |
//	  curl -s --data-binary @- 127.0.0.1:7971/v1/ingest
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"

	"osprof"
)

// app bundles the server's mux with the recorder and session that
// profile it.
type app struct {
	mux     *http.ServeMux
	session *osprof.Session
}

// newApp builds the self-profiling server. Handlers run concurrently,
// so the recorder uses Locked mode: atomic bucket updates that never
// lose a count (§3.4).
func newApp(ctx context.Context) *app {
	rec := osprof.NewRecorder(osprof.WithLockingMode(osprof.Locked))
	session := osprof.NewSession(ctx, rec, "livehttp")
	session.SetMeta("service", "livehttp-example")

	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, osprof.ProfileHandler(rec, pattern, h))
	}

	// /hello answers immediately: its profile is a single cheap peak.
	route("/hello", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "hello")
	})

	// /work streams n lines through an instrumented writer, so each
	// Write is additionally profiled as its own operation class — the
	// response-write latency separates from the handler latency the
	// way the paper separates I/O classes by peak.
	route("/work", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil || n < 1 || n > 1_000_000 {
			n = 100
		}
		out := osprof.WrapWriter(session.Recorder(), "work.write", w)
		sum := 0
		for i := 0; i < n; i++ {
			for j := 0; j < 1_000; j++ {
				sum += i * j
			}
			fmt.Fprintf(out, "unit %d sum %d\n", i, sum)
		}
	})

	// /profile renders the server's own latency profiles, largest
	// contributor first — the live /proc-style export.
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		osprof.RenderSet(w, session.Snapshot())
	})

	// /profile/run exports the versioned run envelope for `osprof
	// serve` ingestion (or `osprof diff` against an earlier export).
	mux.HandleFunc("/profile/run", func(w http.ResponseWriter, r *http.Request) {
		if err := session.Export(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	return &app{mux: mux, session: session}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()
	a := newApp(context.Background())
	defer a.session.Close()
	fmt.Printf("livehttp: serving on http://%s (profiles at /profile, envelope at /profile/run)\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, a.mux))
}
