// Quickstart: use the osprof library to profile latencies of ordinary
// Go code, find the peaks, and compare two runs — the OSprof method on
// a real (non-simulated) workload.
package main

import (
	"fmt"
	"os"
	"time"

	"osprof"
)

// workUnit does a little real work whose latency is bimodal: most calls
// are cheap, every 16th call walks a much larger array (a "cache miss"
// path, standing in for the paper's lock-contention path).
func workUnit(i int, small, large []int) int {
	sum := 0
	data := small
	if i%16 == 0 {
		data = large
	}
	for _, v := range data {
		sum += v
	}
	return sum
}

func main() {
	small := make([]int, 1<<8)
	large := make([]int, 1<<16)

	// Collect a latency profile: one Record per operation, bucketed
	// logarithmically — the paper's §3 method, with nanoseconds in
	// place of TSC cycles.
	profile := osprof.NewProfile("workUnit")
	sink := 0
	for i := 0; i < 50_000; i++ {
		start := time.Now()
		sink += workUnit(i, small, large)
		profile.Record(uint64(time.Since(start).Nanoseconds()) + 1)
	}

	// Render the histogram the way the paper's figures do.
	osprof.Render(os.Stdout, profile)

	// Identify the peaks: the slow path shows up as a separate mode.
	peaks := osprof.FindPeaks(profile)
	fmt.Printf("\n%d peaks found:\n", len(peaks))
	for i, pk := range peaks {
		fmt.Printf("  peak %d: buckets %d..%d, %d ops\n",
			i+1, pk.Range.Lo, pk.Range.Hi, pk.Count)
	}

	// Differential analysis (§3.1): rerun with the slow path disabled
	// and let the Earth Mover's Distance rate the difference.
	control := osprof.NewProfile("workUnit")
	for i := 0; i < 50_000; i++ {
		start := time.Now()
		sink += workUnit(1, small, large) // never takes the slow path
		control.Record(uint64(time.Since(start).Nanoseconds()) + 1)
	}
	fmt.Printf("\nEMD(run, control) = %.4f\n", osprof.Score(osprof.EMD, profile, control))
	fmt.Printf("EMD(run, run)     = %.4f\n", osprof.Score(osprof.EMD, profile, profile))
	_ = sink
}
