// Diskpeaks: regenerate the paper's Figure 7 — the four-peak readdir
// latency profile of a grep -r over an Ext2 source tree — and use the
// §3.1 "prior knowledge" method to attribute each peak to an internal
// OS activity.
package main

import (
	"fmt"
	"os"

	"osprof"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

func main() {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 9_350, WakePreempt: true, Seed: 7})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 1<<16)
	fs := ext2.New(k, d, pc, "ext2", ext2.Config{FileSpread: 24})
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	tree := workload.BuildTree(fs, workload.TreeSpec{
		Seed: 13, Dirs: 60, FilesPerDirMin: 12, FilesPerDirMax: 40, BigDirEvery: 5,
	})
	fmt.Printf("tree: %d dirs, %d files, %d KB\n", tree.Dirs, tree.Files, tree.Bytes/1024)

	set := core.NewSet("ext2-grep")
	fsprof.InstrumentSet(fs, set)
	k.Spawn("grep", func(p *sim.Proc) {
		(&workload.Grep{Sys: v}).Run(p)
	})
	k.Run()

	readdir := set.Lookup("readdir")
	osprof.Render(os.Stdout, readdir)
	fmt.Println()
	osprof.Render(os.Stdout, set.Lookup("readpage"))

	// Attribute the peaks with the characteristic times of §3.1.
	fmt.Println("\npeak attribution:")
	names := []string{
		"past end-of-directory return",
		"directory block in the page cache",
		"disk-cache hit (drive readahead)",
		"mechanical I/O (seek + rotation)",
	}
	for i, pk := range osprof.FindPeaks(readdir) {
		label := "?"
		if i < len(names) {
			label = names[i]
		}
		fmt.Printf("  peak %d: buckets %2d..%2d (~%s), %5d ops — %s\n",
			i+1, pk.Range.Lo, pk.Range.Hi,
			cycles.Format(core.BucketMean(pk.ModeBucket)), pk.Count, label)
	}

	// The paper's checksum-style cross-check: peaks 3+4 equal the
	// readpage count (readdir's cache misses).
	fmt.Printf("\nreaddir I/O ops (buckets 15..26): %d; readpage ops: %d\n",
		readdir.CountIn(15, 26), set.Lookup("readpage").Count)
}
