// Lockhunt: reproduce the paper's §6.1 methodology end to end on the
// simulated OS — capture file-system-level profiles of a random-read
// workload with one and with two processes, let the automated analysis
// flag the operation whose profile changed, and confirm the llseek
// i_sem contention by differential analysis against the patched kernel.
package main

import (
	"fmt"
	"os"

	"osprof"
	"osprof/internal/core"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/report"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// capture runs the random-read workload and returns the FS-level
// profile set.
func capture(procs int, buggyLlseek bool) *core.Set {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 9_350, WakePreempt: true, Seed: 42})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 4096)
	fs := ext2.New(k, d, pc, "ext2", ext2.Config{BuggyLlseek: buggyLlseek})
	fs.MustAddFile(fs.Root(), "bigfile", 4096*vfs.PageSize)
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	set := core.NewSet(fmt.Sprintf("%dproc", procs))
	fsprof.InstrumentSet(fs, set)
	for i := 0; i < procs; i++ {
		seed := int64(i)
		k.Spawn("reader", func(p *sim.Proc) {
			(&workload.RandomRead{
				Sys: v, Requests: 1_500, Seed: seed, ThinkTime: 14_000_000,
			}).Run(p)
		})
	}
	k.Run()
	return set
}

func main() {
	fmt.Println("capturing profiles: 1 process vs 2 processes, stock llseek...")
	one := capture(1, true)
	two := capture(2, true)

	// Step 1: the automated analysis selects the interesting pairs.
	fmt.Println("\nautomated selection (the paper's §3.2 three-phase procedure):")
	sel := osprof.DefaultSelector()
	selected := sel.SelectInteresting(one, two)
	report.Comparison(os.Stdout, selected)

	// Step 2: inspect the flagged profile.
	fmt.Println("\nthe flagged llseek profile (2 processes):")
	osprof.Render(os.Stdout, two.Lookup("llseek"))
	fmt.Println("\nsame operation with 1 process (no contention):")
	osprof.Render(os.Stdout, one.Lookup("llseek"))

	// Step 3: differential verification with the fixed kernel.
	fmt.Println("\napplying the paper's fix (llseek without i_sem) and re-running...")
	patched := capture(2, false)
	fmt.Printf("mean llseek latency: stock=%d cycles, patched=%d cycles (%.0f%% less)\n",
		two.Lookup("llseek").Mean(),
		patched.Lookup("llseek").Mean(),
		100*(1-float64(patched.Lookup("llseek").Mean())/float64(two.Lookup("llseek").Mean())))
}
