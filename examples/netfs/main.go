// Netfs: reproduce the paper's §6.4 CIFS investigation — grep over a
// network file system with a Windows-style client, spot the
// FindFirst/FindNext delayed-ACK peaks, inspect the packet timeline
// (Figure 11), and measure the improvement from disabling delayed ACKs.
package main

import (
	"fmt"
	"os"

	"osprof"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/fs/cifs"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// run greps a CIFS share; delayedAck controls the client's TCP stack.
func run(delayedAck bool, sniffer *netsim.Sniffer) (*core.Set, uint64) {
	k := sim.New(sim.Config{NumCPUs: 2, ContextSwitch: 9_350, WakePreempt: true, Seed: 10})
	conn := netsim.NewConn(k, netsim.Config{}, "client", "server", sniffer)
	conn.Side(0).SetDelayedAck(delayedAck)

	sd := disk.New(k, disk.Config{})
	sfs := ext2.New(k, sd, mem.NewCache(k, 1<<15), "ntfs", ext2.Config{})
	workload.BuildTree(sfs, workload.TreeSpec{
		Seed: 17, Dirs: 14, FilesPerDirMin: 8, FilesPerDirMax: 24, BigDirEvery: 4,
	})
	cifs.NewServer(k, sfs, conn.Side(1), cifs.ServerConfig{}).Start()

	cl := cifs.NewClient(k, conn.Side(0), mem.NewCache(k, 1<<15), "cifs",
		cifs.WindowsClientConfig())
	v := vfs.New(k)
	if err := v.Mount("/", cl); err != nil {
		panic(err)
	}
	set := core.NewSet("cifs-grep")
	fsprof.InstrumentSet(cl, set)
	cl.RPCSink = fsprof.SetSink{Set: set}

	k.Spawn("grep", func(p *sim.Proc) {
		(&workload.Grep{Sys: v, Root: "/src"}).Run(p)
	})
	k.Run()
	return set, k.Now()
}

func main() {
	sniffer := &netsim.Sniffer{}
	set, elapsedOn := run(true, sniffer)

	fmt.Println("FindFirst over CIFS (Windows client, delayed ACKs on):")
	osprof.Render(os.Stdout, set.Lookup("FindFirst"))
	fmt.Printf("\nworst FindFirst: %s (bucket %d) — the 200ms delayed-ACK stall\n",
		cycles.Format(set.Lookup("FindFirst").Max),
		osprof.BucketFor(set.Lookup("FindFirst").Max, 1))

	// The packet timeline around the first big listing (Figure 11).
	fmt.Println("\nfirst 14 packets on the wire:")
	for _, pkt := range sniffer.Packets[:14] {
		extra := ""
		if pkt.Piggyback {
			extra = " +ACK"
		}
		fmt.Printf("  %8.3fms  %-7s %-5s %-28s %5dB%s\n",
			cycles.ToMilliseconds(pkt.Time), pkt.From, pkt.Kind, pkt.Label,
			pkt.Bytes, extra)
	}

	// The paper's registry change: turn delayed ACKs off.
	_, elapsedOff := run(false, nil)
	fmt.Printf("\nelapsed: delayed ACKs on=%s off=%s (%.1f%% improvement; paper: ~20%%)\n",
		cycles.Format(elapsedOn), cycles.Format(elapsedOff),
		100*float64(elapsedOn-elapsedOff)/float64(elapsedOn))
}
