// Package osprof is a Go implementation of the OSprof operating-system
// profiling method from "Operating System Profiling via Latency
// Analysis" (Joukov, Traeger, Iyer, Wright, Zadok — OSDI 2006).
//
// OSprof captures the latency of every OS request, sorts latencies into
// logarithmic buckets at run time, and analyzes the resulting
// multi-modal distributions: different internal OS activities (lock
// contention, I/O classes, preemption, interrupts) create different
// peaks.
//
// This package is the stable public facade over the implementation:
//
//   - live collection: Recorder, Session, Span, and the stdlib
//     instrumentation wrappers (WrapReader, WrapConn, ProfileHandler)
//     that let any Go program profile itself in production (live.go);
//   - profile collection: Profile, Set, Sampled, Correlation and the
//     concurrent-update strategies of §3.4;
//   - automated analysis: peak detection, Earth Mover's Distance and
//     the other §3.2 comparison metrics, and the three-phase selection
//     of interesting profile pairs;
//   - rendering: paper-style ASCII histograms, Figure 9-style
//     timelines, and gnuplot scripts.
//
// The simulated OS substrate (kernel scheduler, disk, page cache, VFS,
// file systems, network) used to regenerate the paper's figures lives
// in internal/ packages; the cmd/osprof tool runs those experiments.
// The declarative scenario layer (Scenario, BuildScenario, RunScenario,
// ScenarioMatrix) composes that substrate into complete instrumented
// stacks from a single spec.
package osprof

import (
	"io"

	"osprof/internal/analysis"
	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/fault"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/store"
	"osprof/internal/summary"
	"osprof/internal/watch"
)

// Re-exported collection types (see internal/core).
type (
	// Profile is a logarithmic latency histogram for one operation.
	Profile = core.Profile

	// Set is a complete profile: one Profile per operation.
	Set = core.Set

	// Sampled is a time-segmented ("3D") profile (§3.1, Figure 9).
	Sampled = core.Sampled

	// Correlation splits an auxiliary variable's histogram by latency
	// peak (§3.1, Figure 8).
	Correlation = core.Correlation

	// BucketRange is an inclusive range of bucket indices.
	BucketRange = core.BucketRange

	// ConcurrentProfile is a histogram safe for concurrent recording.
	ConcurrentProfile = core.ConcurrentProfile

	// LockingMode selects the §3.4 bucket-update strategy.
	LockingMode = core.LockingMode
)

// Locking modes (§3.4).
const (
	Unsync  = core.Unsync
	Locked  = core.Locked
	Sharded = core.Sharded
)

// Re-exported analysis types (see internal/analysis).
type (
	// Peak is one mode of a latency distribution.
	Peak = analysis.Peak

	// Method identifies a profile-comparison algorithm.
	Method = analysis.Method

	// Selector is the three-phase automated pair selection (§3.2).
	Selector = analysis.Selector

	// PairReport is one operation's comparison outcome.
	PairReport = analysis.PairReport
)

// Comparison methods (§3.2, §5.3).
const (
	EMD          = analysis.EMD
	ChiSquare    = analysis.ChiSquare
	TotalOps     = analysis.TotalOps
	TotalLatency = analysis.TotalLatency
	Intersection = analysis.Intersection
	Minkowski    = analysis.Minkowski
	Jeffrey      = analysis.Jeffrey
)

// NewProfile creates an empty profile for an operation (resolution 1).
func NewProfile(op string) *Profile { return core.NewProfile(op) }

// NewProfileR creates a profile with resolution r buckets per doubling.
func NewProfileR(op string, r int) *Profile { return core.NewProfileR(op, r) }

// NewSet creates an empty profile set.
func NewSet(name string) *Set { return core.NewSet(name) }

// NewSampled creates a time-segmented profile.
func NewSampled(op string, start, interval uint64) *Sampled {
	return core.NewSampled(op, start, interval)
}

// NewCorrelation creates a peak-correlation profile.
func NewCorrelation(op string, peaks []BucketRange) *Correlation {
	return core.NewCorrelation(op, peaks)
}

// NewConcurrentProfile creates a goroutine-safe histogram.
//
// Deprecated: construct live collectors through NewRecorder's
// functional options (WithLockingMode, WithShards, WithResolution,
// WithClock), which compose the same §3.4 update strategies with the
// allocation-free Record/Span hot path, session snapshots, and
// envelope export. This thin shim remains for low-level direct use.
func NewConcurrentProfile(op string, mode LockingMode, shards int) *ConcurrentProfile {
	return core.NewConcurrentProfile(op, mode, shards)
}

// BucketFor returns the bucket index of a latency at resolution r.
func BucketFor(latency uint64, r int) int { return core.BucketFor(latency, r) }

// FindPeaks identifies the peaks of a profile.
func FindPeaks(p *Profile) []Peak { return analysis.FindPeaks(p) }

// Score rates the difference of two profiles under a method.
func Score(m Method, a, b *Profile) float64 { return analysis.Score(m, a, b) }

// DefaultSelector returns the standard automated-analysis parameters.
func DefaultSelector() *Selector { return analysis.DefaultSelector() }

// WriteSet serializes a profile set in the text exchange format.
func WriteSet(w io.Writer, s *Set) error { return core.WriteSet(w, s) }

// ReadSet parses a serialized profile set.
func ReadSet(r io.Reader) (*Set, error) { return core.ReadSet(r) }

// Re-exported run-archive and differential-analysis types (see
// internal/core, internal/store, internal/diff).
type (
	// Run is a recorded profiling run: a profile set wrapped with the
	// fingerprint of the configuration that produced it and metadata.
	Run = core.Run

	// Archive is the content-addressed on-disk run archive.
	Archive = store.Archive

	// ArchiveEntry describes one recorded run in the archive index.
	ArchiveEntry = store.Entry

	// DiffEngine classifies per-operation changes between two runs.
	DiffEngine = diff.Engine

	// DiffReport is the pairwise differential analysis of two runs.
	DiffReport = diff.Report

	// OpDiff is the differential verdict for one operation.
	OpDiff = diff.OpDiff

	// Verdict classifies one operation's change between two runs.
	Verdict = diff.Verdict
)

// Differential verdicts.
const (
	Unchanged   = diff.Unchanged
	ShiftedPeak = diff.ShiftedPeak
	NewPeak     = diff.NewPeak
	LostPeak    = diff.LostPeak
	Reshaped    = diff.Reshaped
	NewOp       = diff.NewOp
	MissingOp   = diff.MissingOp
)

// WriteRun serializes a run envelope (fingerprint + metadata + set).
func WriteRun(w io.Writer, r *Run) error { return core.WriteRun(w, r) }

// ReadRun parses a run envelope; bare profile sets are accepted too.
func ReadRun(r io.Reader) (*Run, error) { return core.ReadRun(r) }

// OpenArchive opens (creating if needed) the run archive at dir.
func OpenArchive(dir string) (*Archive, error) { return store.Open(dir) }

// Re-exported incremental-export types (see internal/core,
// internal/store): a long-lived recorder ships Delta envelopes — only
// the buckets that changed since its last export — and the batched
// ingest service coalesces them; replaying a delta chain in order
// rebuilds the full run byte-identically.
type (
	// Delta is one incremental run envelope of a delta chain.
	Delta = core.Delta

	// RunEnvelope is one envelope of a concatenated stream: a full run
	// or a delta.
	RunEnvelope = core.Envelope

	// RunEnvelopeReader iterates a stream of concatenated envelopes.
	RunEnvelopeReader = core.EnvelopeReader

	// PutResult is one run's outcome in a batched archive write.
	PutResult = store.PutResult
)

// ErrCounterOverflow reports that merging or applying a delta would
// overflow a histogram counter; the receiver is left untouched.
var ErrCounterOverflow = core.ErrCounterOverflow

// DeltaOf computes the incremental envelope that advances prev to cur
// (prev nil means the whole of cur), stamped with chain position seq.
func DeltaOf(prev, cur *Run, seq int) (*Delta, error) { return core.DeltaOf(prev, cur, seq) }

// MergeRun folds src's histograms into dst transactionally: on any
// error (mismatched fingerprints, counter overflow) dst is unchanged.
func MergeRun(dst, src *Run) error { return core.MergeRun(dst, src) }

// WriteDelta serializes a delta envelope.
func WriteDelta(w io.Writer, d *Delta) error { return core.WriteDelta(w, d) }

// ReadDelta parses a delta envelope serialized by WriteDelta.
func ReadDelta(r io.Reader) (*Delta, error) { return core.ReadDelta(r) }

// NewRunEnvelopeReader reads a stream of concatenated run and delta
// envelopes (the batched /v1/ingest wire format).
func NewRunEnvelopeReader(r io.Reader) *RunEnvelopeReader { return core.NewEnvelopeReader(r) }

// NewSummaryFirstDiff returns a differential engine that screens every
// pair with the alloc-free summary digests first, escalating to the
// full peak/EMD analysis only when the digests cannot witness the
// verdict — identical answers, a fraction of the cost on unchanged
// pairs.
func NewSummaryFirstDiff() *DiffEngine { return diff.NewSummaryFirst() }

// NewDiff returns a differential-analysis engine with the standard
// selector (EMD scoring, the paper's recommended metric).
func NewDiff() *DiffEngine { return diff.New() }

// RenderDiff writes the differential report with side-by-side
// histograms of the changed operations.
func RenderDiff(w io.Writer, d *DiffReport, a, b *Set) {
	report.Diff(w, d, a, b, report.Options{})
}

// Render writes a paper-style ASCII histogram of a profile.
func Render(w io.Writer, p *Profile) { report.Profile(w, p, report.Options{}) }

// RenderSet renders every profile of a set, largest contributor first.
func RenderSet(w io.Writer, s *Set) { report.Set(w, s, report.Options{}) }

// RenderTimeline renders a sampled profile as a Figure 9-style plot.
func RenderTimeline(w io.Writer, s *Sampled) { report.Timeline(w, s) }

// RenderGnuplot writes a gnuplot script for a profile.
func RenderGnuplot(w io.Writer, p *Profile) { report.Gnuplot(w, p) }

// Re-exported scenario types (see internal/scenario): a Scenario
// declares a complete simulated stack — kernel build, disk, page
// cache, file-system backend, files, instrumentation point, and
// workloads — and Build/Run wire and execute it deterministically.
type (
	// Scenario declares one complete experiment stack.
	Scenario = scenario.Spec

	// ScenarioStack is a wired scenario ready to run.
	ScenarioStack = scenario.Stack

	// ScenarioWorkload declares one simulated workload of a scenario.
	ScenarioWorkload = scenario.Workload

	// ScenarioInstrument selects the profiling point and mode.
	ScenarioInstrument = scenario.Instrument

	// ScenarioBackend selects the file-system implementation.
	ScenarioBackend = scenario.Backend

	// ScenarioPoint is a Figure 2 instrumentation layer.
	ScenarioPoint = scenario.Point

	// ScenarioKind names a workload generator.
	ScenarioKind = scenario.Kind

	// ScenarioFile pre-creates one file in the scenario's root.
	ScenarioFile = scenario.FileSpec
)

// Scenario backends.
const (
	NoFS      = scenario.NoFS
	Ext2FS    = scenario.Ext2
	ReiserFS  = scenario.Reiser
	CIFSMount = scenario.CIFS
)

// Scenario instrumentation points (the paper's Figure 2 layers).
const (
	NoProfiler  = scenario.NoProfiler
	FSLevel     = scenario.FSLevel
	UserLevel   = scenario.UserLevel
	DriverLevel = scenario.DriverLevel
)

// Scenario workload kinds.
const (
	CustomWorkload     = scenario.Custom
	GrepWorkload       = scenario.Grep
	PostmarkWorkload   = scenario.Postmark
	RandomReadWorkload = scenario.RandomRead
	ReadZeroWorkload   = scenario.ReadZero
	CloneWorkload      = scenario.Clone
	WalkWorkload       = scenario.Walk
)

// BuildScenario wires the stack a Scenario describes.
func BuildScenario(spec Scenario) (*ScenarioStack, error) { return scenario.Build(spec) }

// RunScenario builds a Scenario and runs its workloads to completion.
func RunScenario(spec Scenario) (*ScenarioStack, error) { return scenario.RunSpec(spec) }

// ScenarioVariants returns the named kernel-configuration variant
// scenarios — the labeled identification corpus (kernel preemption
// build × backend × page-cache size), for record/diff/identify
// workflows.
func ScenarioVariants(seed int64) []Scenario { return scenario.Variants(seed) }

// Re-exported fingerprint-classification types (see internal/classify):
// the OS fingerprint classifier attributes an unknown recorded run to
// the nearest label of a reference corpus by per-operation EMD, or
// abstains.
type (
	// Classifier identifies unknown runs against a corpus.
	Classifier = classify.Classifier

	// Corpus is a labeled reference corpus ready for classification.
	Corpus = classify.Corpus

	// Centroid is one corpus label's merged reference runs.
	Centroid = classify.Centroid

	// IdentifyReport is the classification verdict for one run.
	IdentifyReport = classify.Report

	// LabelDistance is one ranked corpus label of a verdict.
	LabelDistance = classify.LabelDistance

	// OpEvidence names one operation's contribution to a verdict.
	OpEvidence = classify.OpEvidence
)

// NewClassifier returns a classifier with the default abstention
// thresholds (maximum distance and minimum relative margin).
func NewClassifier() *Classifier { return classify.New() }

// BuildCorpus groups labeled runs (run metadata key "label") into
// per-label centroids.
func BuildCorpus(runs []*Run) (*Corpus, error) { return classify.BuildCorpus(runs) }

// CorpusFromArchive builds the reference corpus from every labeled run
// in the archive, also reporting how many labeled runs it found.
func CorpusFromArchive(arch *Archive) (*Corpus, int, error) { return classify.FromArchive(arch) }

// RenderIdentify writes a classification verdict as a ranked label
// table with per-operation evidence.
func RenderIdentify(w io.Writer, rep *IdentifyReport) { report.Identify(w, rep) }

// ScenarioMatrix returns the standard backend×workload scenario
// matrix, seeded with seed.
func ScenarioMatrix(seed int64) []Scenario { return scenario.Matrix(seed) }

// Re-exported fault-injection types (see internal/fault): a FaultSpec
// declaratively degrades a Scenario (Scenario.Injections) with
// deterministic disk errors, latency spikes, cache thrash, or a
// misbehaving daemon, producing a reproducibly degraded world under
// the same scenario name.
type (
	// FaultSpec is a declarative fault-injection program.
	FaultSpec = fault.Spec

	// DiskFaults injects disk read errors, latency spikes, and slow
	// writes.
	DiskFaults = fault.DiskFaults

	// CacheThrash forcibly evicts the page cache on a fixed period.
	CacheThrash = fault.CacheThrash

	// HogDaemon is a misbehaving daemon that burns CPU and optionally
	// camps on a file's inode lock.
	HogDaemon = fault.HogDaemon
)

// FaultPreset returns the named canned fault program (false for an
// unknown name); FaultPresets lists the available names.
func FaultPreset(name string) (*FaultSpec, bool) { return fault.Preset(name) }

// FaultPresets lists the canned fault-program names in sorted order.
func FaultPresets() []string { return fault.PresetNames() }

// Re-exported anomaly-watch types (see internal/watch): the watch
// engine turns differential analysis into a continuous verdict —
// ok, degraded (attributed to a corpus label), or anomaly.
type (
	// WatchEngine evaluates runs against baselines and the corpus.
	WatchEngine = watch.Engine

	// WatchReport is one watch evaluation's verdict with evidence.
	WatchReport = watch.Report

	// WatchVerdict is the outcome ladder: ok, degraded, anomaly.
	WatchVerdict = watch.Verdict
)

// Watch verdicts.
const (
	WatchOK       = watch.OK
	WatchDegraded = watch.Degraded
	WatchAnomaly  = watch.Anomaly
)

// NewWatch returns a watch engine with the default differential and
// classification parameters.
func NewWatch() *WatchEngine { return watch.New() }

// RenderWatch writes a watch verdict with its drifted operations and
// nearest corpus labels.
func RenderWatch(w io.Writer, rep *WatchReport) { report.Watch(w, rep) }

// Re-exported streaming-summary types (see internal/summary): the
// alloc-free digest tier — per-profile quantiles (p50→p999), peak
// structure, and set-level hottest operations — that the diff engine,
// the classifier, and the service consult before any exact analysis.
type (
	// ProfileSummary is one profile's fixed-size digest.
	ProfileSummary = summary.Summary

	// ProfileSetSummary digests a whole set, with its hottest
	// operations by count and by total latency.
	ProfileSetSummary = summary.SetSummary
)

// Summarize digests one profile: quantiles, peak structure, mode
// bucket, and rate, without walking the set twice or allocating.
func Summarize(p *Profile) ProfileSummary { return summary.Of(p) }

// SummarizeSet digests every operation of s plus the k hottest
// operations (the package default when k is negative).
func SummarizeSet(s *Set, k int) *ProfileSetSummary { return summary.OfSet(s, k) }

// RenderSummary writes the digest as a per-operation quantile table
// with the hottest operations.
func RenderSummary(w io.Writer, ss *ProfileSetSummary) { report.RenderSummary(w, report.SummaryOf(ss)) }
