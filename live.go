package osprof

// This file is the live-profiling half of the public facade: the
// Recorder/Session API (internal/live) that lets a running Go program
// profile its own OS-request latencies — the paper's "negligible
// overhead, leave it on in production" deployment (§3.1, §3.4, §5.2) —
// and feed them into the same analysis, archive, and differential
// machinery the simulated experiments use. Collected runs export as
// versioned envelopes that `osprof serve` ingests over HTTP, so the
// record/baseline/diff regression gate works across the network.

import (
	"context"
	"io"
	"net"
	"net/http"

	"osprof/internal/cycles"
	"osprof/internal/live"
)

// Re-exported live-collection types (see internal/live).
type (
	// Recorder collects latency profiles from a running program; its
	// Record hot path is allocation-free.
	Recorder = live.Recorder

	// RecorderOption configures a Recorder (resolution, locking mode,
	// shard count, sampling interval, clock source).
	RecorderOption = live.Option

	// Session is one named collection window over a Recorder: it
	// snapshots into a Set and exports versioned run envelopes.
	Session = live.Session

	// Span is an in-flight operation that records its latency on End.
	Span = live.Span
)

// NewRecorder creates a live Recorder. The zero-option default matches
// the paper's production configuration: resolution 1, unsynchronized
// (lossy but cheapest, §3.4) updates, no sampling, wall-clock cycles.
func NewRecorder(opts ...RecorderOption) *Recorder { return live.New(opts...) }

// WithResolution sets the bucket resolution (buckets per doubling of
// latency); the default is 1, the paper's choice for efficiency.
func WithResolution(r int) RecorderOption { return live.WithResolution(r) }

// WithLockingMode selects the §3.4 concurrent bucket-update strategy
// (Unsync, Locked, or Sharded).
func WithLockingMode(m LockingMode) RecorderOption { return live.WithLockingMode(m) }

// WithShards sets the per-thread bucket array count for Sharded mode.
func WithShards(n int) RecorderOption { return live.WithShards(n) }

// WithSampling additionally maintains a Figure 9-style time-segmented
// profile per operation, with the given segment interval in cycles.
// Timelines are bounded to 8192 segments (the tail accumulates
// overflow), so size the interval to the window of interest.
func WithSampling(interval uint64) RecorderOption { return live.WithSampling(interval) }

// WithClock replaces the latency clock (cycles since an arbitrary
// epoch). The default measures wall time with the process-monotonic
// clock, scaled to the repository's 1.7 GHz cycle time base; plug in a
// hardware TSC reader to match the paper's time metric exactly.
func WithClock(clock func() uint64) RecorderOption { return live.WithClock(clock) }

// CyclesPerMillisecond converts the repository's cycle time base: one
// millisecond of the simulated 1.7 GHz clock, handy for choosing
// WithSampling intervals.
const CyclesPerMillisecond = cycles.PerMillisecond

// NewSession opens a collection window named name on rec; canceling
// ctx (or calling Close) deactivates session-scoped recording while
// keeping the collected data exportable. A nil ctx means the session
// only ends on Close.
func NewSession(ctx context.Context, rec *Recorder, name string) *Session {
	return rec.Session(ctx, name)
}

// WrapReader instruments an io.Reader: every Read records its latency
// into op's profile on rec.
func WrapReader(rec *Recorder, op string, r io.Reader) io.Reader {
	return live.WrapReader(rec, op, r)
}

// WrapWriter instruments an io.Writer: every Write records its latency
// into op's profile on rec.
func WrapWriter(rec *Recorder, op string, w io.Writer) io.Writer {
	return live.WrapWriter(rec, op, w)
}

// WrapConn instruments a net.Conn: Reads record into "<prefix>.read",
// Writes into "<prefix>.write" (the network I/O classes of §6.4).
func WrapConn(rec *Recorder, prefix string, c net.Conn) net.Conn {
	return live.WrapConn(rec, prefix, c)
}

// ProfileHandler wraps an http.Handler so every request's latency is
// bucketed into a per-route, per-method operation named
// "<METHOD> <route>". Wrap each route separately so one route's
// latency modes are not averaged away by another's.
func ProfileHandler(rec *Recorder, route string, next http.Handler) http.Handler {
	return live.Handler(rec, route, next)
}
