package osprof_test

// Integration tests of the public facade: the full pipeline from
// collection through serialization, analysis and rendering, as a
// downstream user of the library would drive it.

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"osprof"
)

func TestFacadeCollectAnalyzeRender(t *testing.T) {
	set := osprof.NewSet("integration")
	for i := 0; i < 2000; i++ {
		lat := uint64(100)
		if i%10 == 0 {
			lat = 1 << 20 // a slow mode
		}
		set.Record("op", lat)
	}

	peaks := osprof.FindPeaks(set.Lookup("op"))
	if len(peaks) != 2 {
		t.Fatalf("peaks = %d, want 2", len(peaks))
	}

	var buf bytes.Buffer
	if err := osprof.WriteSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	back, err := osprof.ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalOps() != set.TotalOps() {
		t.Errorf("round trip lost ops: %d vs %d", back.TotalOps(), set.TotalOps())
	}

	var render bytes.Buffer
	osprof.RenderSet(&render, back)
	if !strings.Contains(render.String(), "OP") {
		t.Error("render missing op title")
	}
	var gp bytes.Buffer
	osprof.RenderGnuplot(&gp, back.Lookup("op"))
	if !strings.Contains(gp.String(), "plot") {
		t.Error("gnuplot script incomplete")
	}
}

func TestFacadeSelectorFindsInjectedChange(t *testing.T) {
	before, after := osprof.NewSet("before"), osprof.NewSet("after")
	for i := 0; i < 5000; i++ {
		before.Record("read", 4000)
		after.Record("read", 4000)
		before.Record("llseek", 400)
		if i%4 == 0 {
			after.Record("llseek", 6_000_000) // injected contention
		} else {
			after.Record("llseek", 400)
		}
	}
	interesting := osprof.DefaultSelector().SelectInteresting(before, after)
	if len(interesting) != 1 || interesting[0].Op != "llseek" {
		t.Fatalf("selection = %+v", interesting)
	}
}

func TestFacadeRealTimeProfiling(t *testing.T) {
	// The library against real wall-clock latencies.
	p := osprof.NewProfile("sleep")
	for i := 0; i < 20; i++ {
		start := time.Now()
		time.Sleep(100 * time.Microsecond)
		p.Record(uint64(time.Since(start).Nanoseconds()))
	}
	if p.Count != 20 {
		t.Fatal("records lost")
	}
	// 100us = 1e5 ns: bucket ~17; allow generous scheduler slop.
	lo, hi, ok := p.Range()
	if !ok || lo < 15 || hi > 28 {
		t.Errorf("sleep latencies landed in buckets [%d,%d]", lo, hi)
	}
}

func TestFacadeSampledAndCorrelation(t *testing.T) {
	s := osprof.NewSampled("op", 0, 1000)
	s.Record(100, 50)
	s.Record(2500, 60)
	if s.Len() != 3 {
		t.Errorf("segments = %d", s.Len())
	}

	c := osprof.NewCorrelation("op", []osprof.BucketRange{{Lo: 4, Hi: 8}})
	c.Record(100, 1024) // latency bucket 6: first peak
	c.Record(1<<20, 0)  // outside
	if c.Peak(0).Count != 1 || c.Other().Count != 1 {
		t.Error("correlation classification broken")
	}
}

func TestFacadeMethodsDisagreeOnShiftOnly(t *testing.T) {
	// A pure shape shift: counts identical, EMD sees it, TotalOps
	// does not — the §3.2 rationale, via the public API.
	a, b := osprof.NewProfile("a"), osprof.NewProfile("b")
	for i := 0; i < 1000; i++ {
		a.Record(1 << 10)
		b.Record(1 << 14)
	}
	if osprof.Score(osprof.TotalOps, a, b) != 0 {
		t.Error("TotalOps should be blind to pure shifts")
	}
	if osprof.Score(osprof.EMD, a, b) == 0 {
		t.Error("EMD should see the shift")
	}
}

func TestFacadeScenarioAPI(t *testing.T) {
	// Declare, build and run a complete instrumented stack through the
	// public facade, as a downstream user composing a new scenario
	// would.
	st, err := osprof.RunScenario(osprof.Scenario{
		Name:       "facade",
		Backend:    osprof.Ext2FS,
		CachePages: 256,
		Files:      []osprof.ScenarioFile{{Name: "zero", Size: 4096}},
		Instrument: osprof.ScenarioInstrument{Point: osprof.FSLevel},
		Workloads: []osprof.ScenarioWorkload{
			{Kind: osprof.ReadZeroWorkload, Amount: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Set.TotalOps() == 0 {
		t.Error("facade scenario recorded nothing")
	}
	if prof := st.Set.Lookup("read"); prof == nil || prof.Count < 100 {
		t.Errorf("read profile incomplete: %+v", prof)
	}

	if len(osprof.ScenarioMatrix(1)) < 12 {
		t.Errorf("scenario matrix too small: %d", len(osprof.ScenarioMatrix(1)))
	}
}

func TestFacadeLiveRecorderSessionWorkflow(t *testing.T) {
	// The live workflow end to end through the facade alone: record
	// real wall-clock latencies, snapshot mid-flight, export the
	// envelope, read it back, and archive it.
	rec := osprof.NewRecorder(osprof.WithLockingMode(osprof.Locked))
	session := osprof.NewSession(nil, rec, "facade-live")
	defer session.Close()

	for i := 0; i < 200; i++ {
		span := rec.Start("spin")
		for j := 0; j < 100; j++ {
			_ = j * j
		}
		span.End()
		start := rec.Now()
		time.Sleep(10 * time.Microsecond)
		rec.Record("sleep", start)
	}
	set := session.Snapshot()
	if set.Name != "facade-live" || set.Lookup("spin").Count != 200 ||
		set.Lookup("sleep").Count != 200 {
		t.Fatalf("snapshot incomplete: %v", set.Ops())
	}
	// A 10us sleep is ~17,000 simulated cycles: far above bucket 5,
	// proving latencies flow through the cycle clock, not raw counts.
	if mean := set.Lookup("sleep").Mean(); mean < 1_000 {
		t.Errorf("sleep mean %d cycles: clock not scaling", mean)
	}

	var buf bytes.Buffer
	if err := session.Export(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := osprof.ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if run.Name() != "facade-live" || run.Fingerprint == "" {
		t.Errorf("exported run: name=%q fp=%q", run.Name(), run.Fingerprint)
	}

	arch, err := osprof.OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, created, err := session.Commit(arch)
	if err != nil || !created {
		t.Fatalf("commit: id=%q created=%v err=%v", id, created, err)
	}
	got, err := arch.Get(id)
	if err != nil || got.Name() != "facade-live" {
		t.Fatalf("archived run: %v err=%v", got, err)
	}
}

func TestFacadeFaultInjectionAndWatch(t *testing.T) {
	// Degrade a scenario through the facade and hold it against its
	// healthy twin with the watch verdict ladder — the downstream
	// "inject, record, watch" workflow without the CLI.
	// The file dwarfs the cache so the workload stays disk-bound:
	// injected read errors and seek spikes must reach the profile.
	healthySpec := osprof.Scenario{
		Name:       "facade-watch",
		Backend:    osprof.Ext2FS,
		CachePages: 64,
		Files:      []osprof.ScenarioFile{{Name: "data", Size: 512 * 4096}},
		Instrument: osprof.ScenarioInstrument{Point: osprof.FSLevel},
		Workloads: []osprof.ScenarioWorkload{
			{Kind: osprof.RandomReadWorkload, Amount: 500, Path: "/data"},
		},
	}
	if _, ok := osprof.FaultPreset("disk-flaky"); !ok {
		t.Fatalf("disk-flaky missing from presets %v", osprof.FaultPresets())
	}
	// A dying drive, declared through the facade types: every other
	// media read suffers a recovered-error retry storm.
	degradedSpec := healthySpec
	degradedSpec.Injections = &osprof.FaultSpec{Disk: &osprof.DiskFaults{
		ReadErrorEvery: 2,
		ErrorRetries:   8,
		SpikeEvery:     3,
	}}

	healthy, err := osprof.RunScenario(healthySpec)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := osprof.RunScenario(degradedSpec)
	if err != nil {
		t.Fatal(err)
	}
	baseline := &osprof.Run{Fingerprint: healthySpec.Fingerprint(), Set: healthy.Set}

	rep := osprof.NewWatch().Evaluate(baseline,
		&osprof.Run{Fingerprint: healthySpec.Fingerprint(), Set: healthy.Set}, nil)
	if rep.Verdict != osprof.WatchOK {
		t.Fatalf("healthy self-watch: %+v", rep)
	}
	rep = osprof.NewWatch().Evaluate(baseline,
		&osprof.Run{Fingerprint: degradedSpec.Fingerprint(), Set: degraded.Set}, nil)
	if rep.Verdict != osprof.WatchAnomaly {
		t.Fatalf("degraded watch without a corpus: %+v", rep)
	}
	var render bytes.Buffer
	osprof.RenderWatch(&render, rep)
	if !strings.Contains(render.String(), "ANOMALY") {
		t.Errorf("render: %s", render.String())
	}
	if healthySpec.Fingerprint() == degradedSpec.Fingerprint() {
		t.Error("injection did not change the scenario fingerprint")
	}
}

func TestFacadeWrappersRecord(t *testing.T) {
	rec := osprof.NewRecorder()
	r := osprof.WrapReader(rec, "r", strings.NewReader("data"))
	w := osprof.WrapWriter(rec, "w", &bytes.Buffer{})
	buf := make([]byte, 2)
	r.Read(buf)
	w.Write(buf)
	set := rec.Snapshot("io")
	if set.Lookup("r").Count != 1 || set.Lookup("w").Count != 1 {
		t.Errorf("wrapper ops: %v", set.Ops())
	}
}

func TestFacadeSummaryAndSummaryFirstDiff(t *testing.T) {
	set := osprof.NewSet("summary-facade")
	for i := 0; i < 1000; i++ {
		lat := uint64(1 << 10)
		if i%50 == 0 {
			lat = 1 << 20 // a slow mode
		}
		set.Record("read", lat)
	}
	set.Record("unlink", 1<<8)

	ps := osprof.Summarize(set.Lookup("read"))
	if ps.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", ps.Count)
	}
	if p50, p999 := ps.QLatency[0], ps.QLatency[len(ps.QLatency)-1]; p50 >= p999 {
		t.Fatalf("p50 %d not below p999 %d", p50, p999)
	}

	ss := osprof.SummarizeSet(set, -1)
	if len(ss.Ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(ss.Ops))
	}
	if len(ss.TopByCount) == 0 || ss.Ops[ss.TopByCount[0]].Op != "read" {
		t.Fatalf("TopByCount = %v, want read first", ss.TopByCount)
	}
	var buf bytes.Buffer
	osprof.RenderSummary(&buf, ss)
	for _, want := range []string{"READ", "P999", "hottest by count"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q:\n%s", want, buf.String())
		}
	}

	// The summary-first engine must agree with the exhaustive one.
	a := &osprof.Run{Set: set}
	twin := *set
	b := &osprof.Run{Set: &twin}
	fast, full := osprof.NewSummaryFirstDiff().Runs(a, b), osprof.NewDiff().Runs(a, b)
	if fast.Changed != 0 || fast.Changed != full.Changed {
		t.Fatalf("self-diff changed: fast %d, full %d, want 0", fast.Changed, full.Changed)
	}
}
