package osprof_test

// The facade parity test: the public facade is a hand-maintained
// re-export layer, so two kinds of silent drift are possible — an
// exported symbol landing without documentation, and a re-exported
// constant diverging from its internal/ value (the PR 3 Labels
// inversion was exactly such a drift). Both are asserted here: the
// doc check walks the parsed AST of every non-test file in the root
// package, the const check compares facade and internal values by
// reflection.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"reflect"
	"strings"
	"testing"

	"osprof"
	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/diff"
	"osprof/internal/scenario"
)

func TestFacadeEveryExportedSymbolDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := pkgs["osprof"]
	if pkg == nil {
		t.Fatal("root package not parsed")
	}

	var checked int
	undocumented := func(name string, pos token.Pos) {
		t.Errorf("%s: exported facade symbol %q has no doc comment",
			fset.Position(pos), name)
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				checked++
				if d.Doc == nil {
					undocumented(d.Name.Name, d.Pos())
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						checked++
						// Inside a grouped `type (...)` the spec carries its
						// own doc; a lone decl carries the group doc.
						if s.Doc == nil && d.Doc == nil {
							undocumented(s.Name.Name, s.Pos())
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if !n.IsExported() {
								continue
							}
							checked++
							// Grouped consts are documented by the group doc
							// (the historical style of the locking-mode and
							// method blocks) or per-spec.
							if s.Doc == nil && s.Comment == nil && d.Doc == nil {
								undocumented(n.Name, n.Pos())
							}
						}
					}
				}
			}
		}
	}
	// Guard against the walk silently matching nothing: the facade
	// exports well over 50 symbols across osprof.go and live.go.
	if len(pkg.Files) < 2 || checked < 50 {
		t.Fatalf("parity walk too small: %d files, %d exported symbols",
			len(pkg.Files), checked)
	}
}

func TestFacadeConstsInSyncWithInternal(t *testing.T) {
	pairs := []struct {
		name             string
		facade, internal any
	}{
		// Locking modes (§3.4).
		{"Unsync", osprof.Unsync, core.Unsync},
		{"Locked", osprof.Locked, core.Locked},
		{"Sharded", osprof.Sharded, core.Sharded},
		// Comparison methods (§3.2, §5.3).
		{"EMD", osprof.EMD, analysis.EMD},
		{"ChiSquare", osprof.ChiSquare, analysis.ChiSquare},
		{"TotalOps", osprof.TotalOps, analysis.TotalOps},
		{"TotalLatency", osprof.TotalLatency, analysis.TotalLatency},
		{"Intersection", osprof.Intersection, analysis.Intersection},
		{"Minkowski", osprof.Minkowski, analysis.Minkowski},
		{"Jeffrey", osprof.Jeffrey, analysis.Jeffrey},
		// Differential verdicts.
		{"Unchanged", osprof.Unchanged, diff.Unchanged},
		{"ShiftedPeak", osprof.ShiftedPeak, diff.ShiftedPeak},
		{"NewPeak", osprof.NewPeak, diff.NewPeak},
		{"LostPeak", osprof.LostPeak, diff.LostPeak},
		{"Reshaped", osprof.Reshaped, diff.Reshaped},
		{"NewOp", osprof.NewOp, diff.NewOp},
		{"MissingOp", osprof.MissingOp, diff.MissingOp},
		// Scenario backends.
		{"NoFS", osprof.NoFS, scenario.NoFS},
		{"Ext2FS", osprof.Ext2FS, scenario.Ext2},
		{"ReiserFS", osprof.ReiserFS, scenario.Reiser},
		{"CIFSMount", osprof.CIFSMount, scenario.CIFS},
		// Instrumentation points (Figure 2).
		{"NoProfiler", osprof.NoProfiler, scenario.NoProfiler},
		{"FSLevel", osprof.FSLevel, scenario.FSLevel},
		{"UserLevel", osprof.UserLevel, scenario.UserLevel},
		{"DriverLevel", osprof.DriverLevel, scenario.DriverLevel},
		// Workload kinds.
		{"CustomWorkload", osprof.CustomWorkload, scenario.Custom},
		{"GrepWorkload", osprof.GrepWorkload, scenario.Grep},
		{"PostmarkWorkload", osprof.PostmarkWorkload, scenario.Postmark},
		{"RandomReadWorkload", osprof.RandomReadWorkload, scenario.RandomRead},
		{"ReadZeroWorkload", osprof.ReadZeroWorkload, scenario.ReadZero},
		{"CloneWorkload", osprof.CloneWorkload, scenario.Clone},
		{"WalkWorkload", osprof.WalkWorkload, scenario.Walk},
		// Time base.
		{"CyclesPerMillisecond", uint64(osprof.CyclesPerMillisecond), uint64(cycles.PerMillisecond)},
	}
	for _, p := range pairs {
		if ft, it := reflect.TypeOf(p.facade), reflect.TypeOf(p.internal); ft != it {
			t.Errorf("%s: facade type %v != internal type %v", p.name, ft, it)
			continue
		}
		if !reflect.DeepEqual(p.facade, p.internal) {
			t.Errorf("%s: facade value %#v drifted from internal %#v",
				p.name, p.facade, p.internal)
		}
	}
}
