package osprof_test

// The benchmark harness: one benchmark per paper figure/table
// (regenerating the experiment and reporting its headline numbers as
// custom metrics), plus micro-benchmarks of the aggregate statistics
// library itself — the real-world costs that correspond to the paper's
// §5.2 per-operation overheads.
//
// Run with: go test -bench=. -benchmem

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"osprof"
	"osprof/internal/analysis"
	"osprof/internal/experiments"
	"osprof/internal/live"
	"osprof/internal/runner"
	"osprof/internal/serve"
	"osprof/internal/sim"
	"osprof/internal/store"
)

// runExperiment executes an experiment once per benchmark iteration and
// fails the benchmark if any paper invariant breaks.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := experiments.Registry[id]()
		if fails := experiments.Failures(r); len(fails) > 0 {
			for _, c := range fails {
				b.Errorf("%s: %s — %s", id, c.Name, c.Detail)
			}
		}
		r.Report(io.Discard)
	}
}

func BenchmarkFig1CloneContention(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig3PreemptionEffects(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkEq3PreemptionModel(b *testing.B)        { benchEq3(b) }
func BenchmarkFig6LlseekContention(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkFig7ReaddirPeaks(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkFig8ValueCorrelation(b *testing.B)      { runExperiment(b, "fig8") }
func BenchmarkFig9TimelineProfiles(b *testing.B)      { runExperiment(b, "fig9") }
func BenchmarkFig10CIFSProfiles(b *testing.B)         { runExperiment(b, "fig10") }
func BenchmarkFig11DelayedAck(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkEvalMemoryUsage(b *testing.B)           { runExperiment(b, "eval-memory") }
func BenchmarkEvalOverheadDecomposition(b *testing.B) { runExperiment(b, "eval-overhead") }
func BenchmarkEvalAnalysisAccuracy(b *testing.B)      { runExperiment(b, "eval-accuracy") }
func BenchmarkEvalBucketLocking(b *testing.B)         { runExperiment(b, "eval-locking") }

// --- Runner benchmarks -----------------------------------------------
//
// Every experiment is an isolated deterministic simulation, so the
// full suite is embarrassingly parallel; the pair below measures the
// wall-clock speedup of the worker-pool runner over a serial sweep.

// benchRunnerAll executes every registered experiment once per
// iteration through the runner with the given worker count.
func benchRunnerAll(b *testing.B, parallel int) {
	ids := experiments.IDs()
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, runner.Job{ID: id, New: experiments.Registry[id]})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := runner.Run(jobs, runner.Options{Parallel: parallel})
		if failed := runner.FailedChecks(results); failed > 0 {
			b.Fatalf("%d failed checks", failed)
		}
	}
}

func BenchmarkRunnerAllExperimentsSerial(b *testing.B) { benchRunnerAll(b, 1) }

func BenchmarkRunnerAllExperimentsParallel(b *testing.B) {
	benchRunnerAll(b, runtime.GOMAXPROCS(0))
}

// benchEq3 reports the paper's Equation 3 example values.
func benchEq3(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += experiments.Eq3(1<<10, 1<<11, 1<<26, 0.01)
	}
	b.ReportMetric(sink/float64(b.N), "Pr(fp)")
}

// --- Aggregate statistics library micro-benchmarks -------------------
//
// These measure the REAL cost of the Go implementation on the host CPU
// (not simulated cycles): the paper's equivalents are the ~200-cycle
// full profiling cost and the 40-cycle in-window overhead.

func BenchmarkProfileRecord(b *testing.B) {
	p := osprof.NewProfile("op")
	for i := 0; i < b.N; i++ {
		p.Record(uint64(i)*2654435761 + 1)
	}
	if p.Count != uint64(b.N) {
		b.Fatal("lost updates")
	}
}

func BenchmarkProfileRecordR2(b *testing.B) {
	p := osprof.NewProfileR("op", 2)
	for i := 0; i < b.N; i++ {
		p.Record(uint64(i)*2654435761 + 1)
	}
}

func BenchmarkBucketFor(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += osprof.BucketFor(uint64(i)|1, 1)
	}
	_ = sink
}

func BenchmarkConcurrentRecordLocked(b *testing.B) {
	p := osprof.NewConcurrentProfile("op", osprof.Locked, 0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Record(0, 100)
		}
	})
}

func BenchmarkConcurrentRecordUnsync(b *testing.B) {
	p := osprof.NewConcurrentProfile("op", osprof.Unsync, 0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p.Record(0, 100)
		}
	})
	loss := float64(p.Lost()) / float64(p.Attempts())
	b.ReportMetric(100*loss, "%lost")
}

func BenchmarkConcurrentRecordSharded(b *testing.B) {
	p := osprof.NewConcurrentProfile("op", osprof.Sharded, 64)
	var nextShard atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		// Each worker gets its own shard — the §3.4 per-thread design.
		shard := int(nextShard.Add(1))
		for pb.Next() {
			p.Record(shard, 100)
		}
	})
	if p.Lost() != 0 {
		b.Fatal("sharded mode lost updates")
	}
}

// --- Live Recorder hot path ------------------------------------------
//
// The live API's promise is that an always-on Recorder costs a map
// read plus an atomic histogram update per operation — and zero
// allocations, the property that makes it deployable in production
// (the paper's ~200-cycle budget, §5.2).

// benchRecorderHot measures one Record through the given recorder.
func benchRecorderHot(b *testing.B, rec *osprof.Recorder) {
	rec.Record("op", 0) // materialize the collector outside the loop
	start := rec.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Record("op", start)
	}
}

func BenchmarkRecorderHotUnsync(b *testing.B) {
	benchRecorderHot(b, osprof.NewRecorder())
}

func BenchmarkRecorderHotLocked(b *testing.B) {
	benchRecorderHot(b, osprof.NewRecorder(osprof.WithLockingMode(osprof.Locked)))
}

func BenchmarkRecorderHotSharded(b *testing.B) {
	benchRecorderHot(b, osprof.NewRecorder(
		osprof.WithLockingMode(osprof.Sharded), osprof.WithShards(8)))
}

// BenchmarkRecorderHot is the headline number: the default (Unsync)
// configuration, plus an AllocsPerRun assertion so an allocation
// sneaking into the hot path fails the benchmark run, not just a
// separate test.
func BenchmarkRecorderHot(b *testing.B) {
	rec := osprof.NewRecorder()
	if allocs := testing.AllocsPerRun(100, func() { rec.Record("op", 0) }); allocs != 0 {
		b.Fatalf("Record allocates %v objects/op, want 0", allocs)
	}
	benchRecorderHot(b, rec)
}

func TestRecorderRecordAllocationFree(t *testing.T) {
	// The ISSUE 4 acceptance bar: 0 allocs/op for Record in Unsync and
	// Sharded modes (Locked is asserted too — same code shape).
	for name, rec := range map[string]*osprof.Recorder{
		"unsync":  osprof.NewRecorder(),
		"sharded": osprof.NewRecorder(osprof.WithLockingMode(osprof.Sharded), osprof.WithShards(8)),
		"locked":  osprof.NewRecorder(osprof.WithLockingMode(osprof.Locked)),
	} {
		rec.Record("op", 0)
		if allocs := testing.AllocsPerRun(100, func() { rec.Record("op", 0) }); allocs != 0 {
			t.Errorf("%s: Record allocates %v objects/op, want 0", name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() { rec.Start("op").End() }); allocs != 0 {
			t.Errorf("%s: Start/End allocates %v objects/op, want 0", name, allocs)
		}
	}
}

// --- Analysis micro-benchmarks ---------------------------------------

func benchProfilePair() (*osprof.Profile, *osprof.Profile) {
	a, bb := osprof.NewProfile("a"), osprof.NewProfile("b")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		a.Record(uint64(rng.Int63n(1 << 24)))
		bb.Record(uint64(rng.Int63n(1 << 26)))
	}
	return a, bb
}

func BenchmarkEarthMoversDistance(b *testing.B) {
	x, y := benchProfilePair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.EarthMovers(x, y)
	}
}

func BenchmarkChiSquare(b *testing.B) {
	x, y := benchProfilePair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.ChiSquareScore(x, y)
	}
}

func BenchmarkFindPeaks(b *testing.B) {
	x, _ := benchProfilePair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analysis.FindPeaks(x)
	}
}

func benchSetPair() (*osprof.Set, *osprof.Set) {
	s1, s2 := osprof.NewSet("a"), osprof.NewSet("b")
	rng := rand.New(rand.NewSource(2))
	for op := 0; op < 30; op++ {
		name := string(rune('a' + op))
		for i := 0; i < 500; i++ {
			s1.Record(name, uint64(rng.Int63n(1<<20)))
			s2.Record(name, uint64(rng.Int63n(1<<22)))
		}
	}
	return s1, s2
}

func BenchmarkSelectorCompare(b *testing.B) {
	s1, s2 := benchSetPair()
	sel := osprof.DefaultSelector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel.Compare(s1, s2)
	}
}

// --- Zero-allocation fast-path assertions -----------------------------
//
// The simulator's steady-state scheduling path (event pool, pre-bound
// callbacks, ring run queue, inline slice completion) and the analysis
// scorers must not allocate per operation; these tests fail loudly if a
// regression reintroduces per-call garbage.

// simExecAllocsPerOp measures the marginal allocations of one Exec by
// differencing a long run against a short one, which cancels the fixed
// setup cost (kernel, goroutine, channels, event-pool warmup).
func simExecAllocsPerOp(tickPeriod, execLen uint64, iters int) float64 {
	run := func(n int) float64 {
		return testing.AllocsPerRun(3, func() {
			// TickCost must stay below TickPeriod or slices never finish.
			k := sim.New(sim.Config{TickPeriod: tickPeriod, TickCost: 100})
			k.Spawn("w", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					p.Exec(execLen)
				}
			})
			k.Run()
		})
	}
	return (run(100+iters) - run(100)) / float64(iters)
}

func TestSimExecInlineFastPathAllocationFree(t *testing.T) {
	// Short slices between distant ticks: almost every Exec completes
	// inline, with no event push and no channel round-trip.
	if per := simExecAllocsPerOp(1<<20, 1_000, 20_000); per > 0.01 {
		t.Errorf("inline Exec fast path allocates %.4f objects/op, want 0", per)
	}
}

func TestSimStartSliceSteadyStateAllocationFree(t *testing.T) {
	// Slices longer than the tick period: every Exec crosses a pending
	// tick, so each takes the slow path through startSlice and the
	// event heap; the event pool and pre-bound callbacks must make that
	// allocation-free too.
	if per := simExecAllocsPerOp(2_048, 4_096, 5_000); per > 0.01 {
		t.Errorf("startSlice slow path allocates %.4f objects/op, want 0", per)
	}
}

func TestScoreMethodsAllocationFree(t *testing.T) {
	x, y := benchProfilePair()
	for _, m := range analysis.Methods {
		if allocs := testing.AllocsPerRun(10, func() { analysis.Score(m, x, y) }); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", m, allocs)
		}
	}
}

func TestSelectorCompareSteadyStateAllocationFree(t *testing.T) {
	s1, s2 := benchSetPair()
	sel := osprof.DefaultSelector()
	sel.Compare(s1, s2) // warm up the scratch buffers
	if allocs := testing.AllocsPerRun(10, func() { sel.Compare(s1, s2) }); allocs != 0 {
		t.Errorf("Selector.Compare: %v allocs/op in steady state, want 0", allocs)
	}
}

// --- Fleet-ingest hot paths -------------------------------------------
//
// The batched-ingest pipeline has three per-report costs: the recorder
// computes a delta (DeltaOf), the server folds it into its accumulator
// (Run.Apply), and flushes merge envelopes (Profile.Merge). Merge and
// steady-state Apply must be allocation-free — the server does one per
// report per recorder at fleet rate — and DeltaOf must stay bounded by
// the changed-op count, not history.

// deltaFixture builds a fixed one-op delta and a warm receiver.
func deltaFixture(t testing.TB) (*osprof.Run, *osprof.Delta) {
	t.Helper()
	prev := &osprof.Run{Fingerprint: "fp", Set: osprof.NewSet("s")}
	cur := &osprof.Run{Fingerprint: "fp", Set: osprof.NewSet("s")}
	prev.Set.Record("read", 1_000)
	cur.Set.Record("read", 1_000)
	cur.Set.Record("read", 2_000)
	d, err := osprof.DeltaOf(prev, cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	recv := &osprof.Run{Fingerprint: "fp", Set: osprof.NewSet("s")}
	recv.Set.Record("read", 1_000)
	if err := recv.Apply(d); err != nil {
		t.Fatal(err)
	}
	return recv, d
}

func TestMergeAndApplyAllocationFree(t *testing.T) {
	a, b := osprof.NewProfile("op"), osprof.NewProfile("op")
	for i := 0; i < 100; i++ {
		a.Record(uint64(i*1_000 + 1))
		b.Record(uint64(i*2_000 + 1))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Profile.Merge allocates %v objects/op, want 0", allocs)
	}

	recv, d := deltaFixture(t)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := recv.Apply(d); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Run.Apply allocates %v objects/op in steady state, want 0", allocs)
	}
}

func TestDeltaOfAllocationsBounded(t *testing.T) {
	// DeltaOf allocates the delta envelope and one sparse profile per
	// CHANGED op — never per historical op. A generous fixed bound
	// catches an O(history) regression without tracking exact counts.
	prev := &osprof.Run{Fingerprint: "fp", Set: osprof.NewSet("s")}
	cur := &osprof.Run{Fingerprint: "fp", Set: osprof.NewSet("s")}
	for op := 0; op < 50; op++ {
		name := string(rune('a'+op%26)) + string(rune('0'+op/26))
		prev.Set.Record(name, 1_000)
		cur.Set.Record(name, 1_000)
	}
	cur.Set.Record("a0", 2_000) // exactly one op changed
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := osprof.DeltaOf(prev, cur, 2); err != nil {
			t.Fatal(err)
		}
	}); allocs > 16 {
		t.Errorf("DeltaOf allocates %v objects for a 1-op change over 50 ops, want <= 16", allocs)
	}
}

func BenchmarkRunApplyDelta(b *testing.B) {
	recv, d := deltaFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := recv.Apply(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestDeltaBatches measures the full server-side cost per
// shipped envelope: one recorder exports a delta chain in batches of
// 64 through the real /v1/ingest handler (parse, seq check, coalesce,
// threshold flushes into the archive). ns/op is per envelope.
func BenchmarkIngestDeltaBatches(b *testing.B) {
	arch, err := store.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	sv := serve.New(arch, serve.Options{})
	defer sv.Close()
	h := sv.Handler()
	rec := live.New()
	sess := rec.Session(nil, "bench/ingest")
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Observe("read", uint64(i)*2654435761%(1<<24)+1)
		if err := sess.ExportDelta(&buf); err != nil {
			b.Fatal(err)
		}
		if i%64 == 63 || i == b.N-1 {
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(buf.Bytes()))
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				b.Fatalf("ingest: %d\n%s", rw.Code, rw.Body)
			}
			buf.Reset()
		}
	}
}

// --- Simulator micro-benchmarks ---------------------------------------

// BenchmarkSimExecInline measures one inline (fast-path) Exec.
func BenchmarkSimExecInline(b *testing.B) {
	k := sim.New(sim.Config{})
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Exec(1_000)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkSimExecSlowPath measures one slow-path Exec (pending tick
// forces the event heap and the kernel-loop handoff).
func BenchmarkSimExecSlowPath(b *testing.B) {
	k := sim.New(sim.Config{TickPeriod: 2_048, TickCost: 100})
	k.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Exec(4_096)
		}
	})
	b.ResetTimer()
	k.Run()
}
