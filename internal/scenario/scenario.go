// Package scenario is the declarative experiment-harness layer of the
// repository: a Spec describes a complete simulated stack — the kernel
// build, the disk, the page cache, a file-system backend (Ext2-like,
// Reiserfs-like, or CIFS over the simulated network), the files or
// synthetic source tree populating it, the OSprof instrumentation point
// (file-system level, user level, driver level, or a sampled sink — the
// paper's Figure 2 layers), and the workloads exercising it — while
// Build wires the stack together and Run executes it to completion.
//
// Every paper experiment (internal/experiments) and every entry of the
// backend×workload scenario matrix builds its stack through this
// package instead of hand-wiring sim.New → disk → cache → fs → vfs →
// instrument → spawn, so new scenarios cost a Spec literal rather than
// a page of plumbing. Each built stack is a fully isolated
// deterministic world: two stacks never share state, which is what
// makes internal/runner's parallel execution safe.
package scenario

import (
	"fmt"

	"osprof/internal/core"
	"osprof/internal/disk"
	"osprof/internal/fault"
	"osprof/internal/fs/cifs"
	"osprof/internal/fs/ext2"
	"osprof/internal/fs/reiser"
	"osprof/internal/fsprof"
	"osprof/internal/load"
	"osprof/internal/mem"
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/trace"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// Backend selects the file-system implementation under test.
type Backend int

const (
	// NoFS runs kernel-only scenarios (the Figure 1 clone storm needs
	// no file system at all).
	NoFS Backend = iota

	// Ext2 is the Ext2-like local file system (internal/fs/ext2).
	Ext2

	// Reiser is the journaling Reiserfs-like file system
	// (internal/fs/reiser). Its namespace is flat: Files are created
	// in the root and Tree is rejected.
	Reiser

	// CIFS mounts a CIFS client over the simulated network against a
	// server exporting an Ext2-backed share. Files and Tree populate
	// the server's backing store.
	CIFS
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case NoFS:
		return "nofs"
	case Ext2:
		return "ext2"
	case Reiser:
		return "reiser"
	case CIFS:
		return "cifs"
	}
	return "unknown"
}

// Point selects where the OSprof probes sit (the paper's Figure 2).
type Point int

const (
	// NoProfiler builds the stack without instrumentation.
	NoProfiler Point = iota

	// FSLevel instruments the mounted file system's operation vectors
	// in place (FoSgen-style, §4). On the CIFS backend the client's
	// wire operations (FindFirst, FindNext, SMBRead, SMBLookup) are
	// recorded into the same sink.
	FSLevel

	// UserLevel wraps the system-call surface; workloads reach the
	// stack through the wrapped Syscalls (Stack.Sys).
	UserLevel

	// DriverLevel observes disk-request lifecycles below the file
	// system (disk_read/disk_write profiles).
	DriverLevel
)

// String implements fmt.Stringer.
func (p Point) String() string {
	switch p {
	case NoProfiler:
		return "none"
	case FSLevel:
		return "fs"
	case UserLevel:
		return "user"
	case DriverLevel:
		return "driver"
	}
	return "unknown"
}

// Instrument describes the profiling configuration of a scenario.
type Instrument struct {
	// Point is where the probes sit.
	Point Point

	// Mode selects how much of the profiling work runs (fsprof.Full
	// by default; the partial modes reproduce §5.2).
	Mode fsprof.Mode

	// Costs overrides the per-operation instrumentation CPU costs.
	Costs *fsprof.Costs

	// Sampled records into time-segmented profiles (§3.1, Figure 9)
	// instead of the accumulated Set. SampleStart/SampleInterval give
	// the time base and segment length in cycles.
	Sampled                     bool
	SampleStart, SampleInterval uint64
}

// FileSpec pre-creates one file in the backend's root directory
// (offline, before the simulation starts, with a cold cache).
type FileSpec struct {
	Name string
	Size uint64
}

// FlusherSpec starts a buffer-flushing daemon (bdflush/kupdate) that
// periodically writes dirty pages back through the backend's WritePage
// operation. Requires the Ext2 backend.
type FlusherSpec struct {
	// Interval is the wakeup period in cycles.
	Interval uint64

	// Age is the dirty-age threshold in cycles.
	Age uint64
}

// CIFSSpec configures the two-machine CIFS testbed.
type CIFSSpec struct {
	// Client selects the redirector behavior (Windows-style large
	// listing batches by default; cifs.LinuxClientConfig for smbfs).
	Client cifs.ClientConfig

	// Server configures the SMB server.
	Server cifs.ServerConfig

	// Net configures the simulated link.
	Net netsim.Config

	// NoDelayedAck disables the client's delayed ACKs (the §6.4
	// registry change); the zero value keeps them on, the stock
	// behavior the paper profiles.
	NoDelayedAck bool

	// Sniffer, when set, captures the packet trace (Figure 11).
	Sniffer *netsim.Sniffer
}

// Spec declares one complete scenario.
type Spec struct {
	// Name identifies the scenario ("fig7", "ext2/grep", ...).
	Name string

	// Kernel is the simulated machine and kernel build.
	Kernel sim.Config

	// Disk configures the (server-side, for CIFS) drive.
	Disk disk.Config

	// CachePages sizes the page cache (default 16384 pages = 64 MB).
	// For CIFS it sizes both the server and the client cache.
	CachePages int

	// Backend selects the file system.
	Backend Backend

	// Ext2 configures the Ext2 backend (and the CIFS server's backing
	// store).
	Ext2 ext2.Config

	// Reiser configures the Reiser backend.
	Reiser reiser.Config

	// SuperDaemon starts the Reiser backend's periodic write_super
	// daemon (§6.3).
	SuperDaemon bool

	// CIFS configures the CIFS backend.
	CIFS CIFSSpec

	// Files pre-creates flat files in the backend root.
	Files []FileSpec

	// Tree builds a synthetic source tree under /src (Ext2 and CIFS
	// backends).
	Tree *workload.TreeSpec

	// Flusher starts a dirty-page writeback daemon (Ext2 backend).
	Flusher *FlusherSpec

	// Instrument is the profiling configuration.
	Instrument Instrument

	// SetName names the profile set (default Name).
	SetName string

	// Label, when set, marks the Spec as a member of the labeled
	// identification corpus: archived runs carry it as `label` metadata
	// (experiments.ScenarioResult.RunMeta), and the classifier
	// (internal/classify) folds every archived run sharing a label into
	// one reference centroid. Specs without a label (the plain
	// backend×workload matrix) never enter the corpus. The label names
	// the *configuration family* an unknown run should be attributed to
	// ("ext2-preempt-c256"), independent of seeds: re-recording a
	// labeled Spec under a new seed changes its fingerprint but not its
	// label.
	Label string

	// Injections, when set, degrades the stack with the fault program
	// it describes (internal/fault): disk service-time faults, forced
	// page-cache eviction, and/or a misbehaving daemon. Like Label it
	// is canonical-encoded only when present, so every healthy Spec
	// keeps its pre-fault fingerprint; an injected Spec keeps its Name
	// (the anomaly watcher matches ingests to baselines by name) but
	// fingerprints differently, because it builds a different world.
	Injections *fault.Spec

	// Trace, when set, threads the layer tracer (internal/trace)
	// through the built stack: every VFS syscall becomes a span-tree
	// root and the fs / page-cache / driver / disk / net hooks
	// decompose its latency into per-layer self-times, folded into the
	// Set as op@layer histograms plus an op@crit:layer critical-path
	// profile. Like Label it is canonical-encoded only when present,
	// so every untraced Spec keeps its pre-trace fingerprint and its
	// archived envelopes stay byte-identical.
	Trace bool

	// LoadProfile, when set, conditions the captured profiles on
	// run-queue load (internal/load): the kernel tracks per-band load
	// occupancy and the installed profiler records every sample a
	// second time under op@load:<band> companion names, keyed by the
	// instantaneous load at post time. Requires fs/user-level probes
	// or tracing. Like Trace it is canonical-encoded only when
	// present, so every unconditioned Spec keeps its fingerprint and
	// its archived envelopes stay byte-identical.
	LoadProfile bool

	// Workloads are the simulated processes; Run spawns them in
	// order.
	Workloads []Workload
}

// Stack is a wired scenario: the simulated machine plus every layer
// Build constructed from the Spec, ready to Run.
type Stack struct {
	Spec Spec

	K     *sim.Kernel
	Disk  *disk.Disk
	Cache *mem.Cache

	// FS is the mounted file system (nil for NoFS); Ext2, Reiser and
	// Client are the typed views, one of which is non-nil per backend.
	FS     vfs.FileSystem
	Ext2   *ext2.FS
	Reiser *reiser.FS
	Client *cifs.Client

	// CIFS-backend extras: the server, its backing store, the
	// connection, and the optional packet trace.
	Server   *cifs.Server
	ServerFS *ext2.FS
	Conn     *netsim.Conn
	Sniffer  *netsim.Sniffer

	VFS *vfs.VFS

	// Sys is the system-call surface workloads run against — the VFS,
	// or the user-level profiler wrapping it when Instrument.Point is
	// UserLevel.
	Sys vfs.Syscalls

	// Set accumulates the captured profiles (always created; filled
	// by whichever profiler the Spec installs).
	Set *core.Set

	// Sampled is the time-segmented sink when Instrument.Sampled.
	Sampled *fsprof.SampledSink

	// Instrumented is the installed FS-level instrumentation, nil
	// otherwise.
	Instrumented *fsprof.Instrumented

	// Driver is the driver-level profiler, nil otherwise.
	Driver *fsprof.DriverProfiler

	// Flusher is the started writeback daemon, nil otherwise.
	Flusher *mem.Flusher

	// DiskFaults is the installed disk fault injector when
	// Spec.Injections.Disk is set, nil otherwise (its Stats report what
	// the injection program actually did).
	DiskFaults *fault.DiskInjector

	// Tracer is the layer tracer when Spec.Trace, nil otherwise.
	Tracer *trace.Tracer

	// User is the installed user-level profiler when Instrument.Point
	// is UserLevel, nil otherwise (Sys is its interface view).
	User *fsprof.UserProfiler

	// Loads is the load-conditioned recorder when Spec.LoadProfile,
	// nil otherwise.
	Loads *load.Recorder

	// Tree reports the built synthetic tree (zero when Spec.Tree is
	// nil).
	Tree workload.TreeStats
}

// MustBuild is Build for specs known to be valid; it panics on error.
func MustBuild(spec Spec) *Stack {
	st, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return st
}

// Build wires the stack a Spec describes. The construction order is
// fixed (disk, cache, file system, files, flusher, VFS, profilers,
// daemons) so that a given Spec always produces the same deterministic
// simulated world.
func Build(spec Spec) (*Stack, error) {
	st := &Stack{Spec: spec}
	st.K = sim.New(spec.Kernel)
	cachePages := spec.CachePages
	if cachePages == 0 {
		cachePages = 1 << 14
	}

	switch spec.Backend {
	case NoFS:
		if len(spec.Files) > 0 || spec.Tree != nil {
			return nil, fmt.Errorf("scenario %q: files require a file-system backend", spec.Name)
		}
	case Ext2:
		st.Disk = disk.New(st.K, spec.Disk)
		st.Cache = mem.NewCache(st.K, cachePages)
		st.Ext2 = ext2.New(st.K, st.Disk, st.Cache, "ext2", spec.Ext2)
		st.FS = st.Ext2
		populateExt2(st, st.Ext2, spec)
	case Reiser:
		if spec.Tree != nil {
			return nil, fmt.Errorf("scenario %q: the reiser backend has a flat namespace; use Files", spec.Name)
		}
		st.Disk = disk.New(st.K, spec.Disk)
		st.Cache = mem.NewCache(st.K, cachePages)
		st.Reiser = reiser.New(st.K, st.Disk, st.Cache, "reiserfs", spec.Reiser)
		st.FS = st.Reiser
		for _, f := range spec.Files {
			st.Reiser.MustAddFile(f.Name, f.Size)
		}
	case CIFS:
		st.Sniffer = spec.CIFS.Sniffer
		st.Conn = netsim.NewConn(st.K, spec.CIFS.Net, "client", "server", st.Sniffer)
		st.Conn.Side(0).SetDelayedAck(!spec.CIFS.NoDelayedAck)
		st.Disk = disk.New(st.K, spec.Disk)
		serverCache := mem.NewCache(st.K, cachePages)
		st.ServerFS = ext2.New(st.K, st.Disk, serverCache, "ntfs", spec.Ext2)
		populateExt2(st, st.ServerFS, spec)
		st.Server = cifs.NewServer(st.K, st.ServerFS, st.Conn.Side(1), spec.CIFS.Server)
		st.Server.Start()
		st.Cache = mem.NewCache(st.K, cachePages)
		st.Client = cifs.NewClient(st.K, st.Conn.Side(0), st.Cache, "cifs", spec.CIFS.Client)
		st.FS = st.Client
	default:
		return nil, fmt.Errorf("scenario %q: unknown backend %d", spec.Name, spec.Backend)
	}

	if spec.Flusher != nil {
		if st.Ext2 == nil {
			return nil, fmt.Errorf("scenario %q: Flusher requires the ext2 backend", spec.Name)
		}
		fs, pc := st.Ext2, st.Cache
		st.Flusher = &mem.Flusher{
			Interval: spec.Flusher.Interval,
			Age:      spec.Flusher.Age,
			WritePage: func(proc *sim.Proc, pg *mem.Page) {
				if ino := fs.InodeByID(pg.Key.Ino); ino != nil {
					fs.Ops().Address.WritePage(proc, ino, pg.Key.Index, false)
				} else {
					pc.MarkClean(pg) // file already unlinked
				}
			},
		}
		st.Flusher.Start(st.K, pc)
	}

	if st.FS != nil {
		st.VFS = vfs.New(st.K)
		if err := st.VFS.Mount("/", st.FS); err != nil {
			return nil, err
		}
		st.Sys = st.VFS
	}

	if err := st.instrument(spec.Instrument); err != nil {
		return nil, err
	}

	if err := st.installTracer(spec.Trace); err != nil {
		return nil, err
	}

	if err := st.installLoadProfile(spec.LoadProfile); err != nil {
		return nil, err
	}

	if spec.SuperDaemon {
		if st.Reiser == nil {
			return nil, fmt.Errorf("scenario %q: SuperDaemon requires the reiser backend", spec.Name)
		}
		st.Reiser.StartSuperDaemon()
	}

	if err := st.injectFaults(spec.Injections); err != nil {
		return nil, err
	}
	return st, nil
}

// installTracer threads the layer tracer through the built stack. It
// runs after instrument so the fs-layer wrapper brackets the profiled
// operation vectors (probe overhead lands inside the fs span, and the
// decomposition explains the recorded profile rather than an idealized
// one). The tracer's hooks are pure observers — no simulated CPU, no
// scheduled events — so an untraced Build is byte-for-byte what it was
// before tracing existed.
func (st *Stack) installTracer(on bool) error {
	if !on {
		return nil
	}
	if st.FS == nil {
		return fmt.Errorf("scenario %q: tracing needs a mounted backend", st.Spec.Name)
	}
	st.Tracer = trace.New(st.Set)
	st.VFS.SetTracer(st.Tracer)
	st.Cache.SetTracer(st.Tracer)
	if st.Disk != nil {
		st.Disk.SetTracer(st.Tracer)
	}
	if st.Conn != nil {
		// Only the client endpoint: the server side's waits run on
		// daemon procs, which the tracer skips anyway.
		st.Conn.Side(0).SetTracer(st.Tracer)
	}
	fsprof.TraceFS(st.FS, st.Tracer)
	return nil
}

// installLoadProfile enables load-occupancy tracking and attaches the
// load-conditioned recorder to the installed profiler. The probe owns
// the load dimension when one is installed (per-operation latencies);
// on a probe-less traced run the tracer records each request's
// inclusive latency instead — never both, so samples are not counted
// twice. Load reads are pure observations, so a Spec without the knob
// builds a byte-identical world.
func (st *Stack) installLoadProfile(on bool) error {
	if !on {
		return nil
	}
	st.K.TrackLoad()
	st.Loads = load.NewRecorder(st.Set)
	switch {
	case st.Instrumented != nil:
		st.Instrumented.SetLoadRecorder(st.Loads)
	case st.User != nil:
		st.User.SetLoadRecorder(st.Loads)
	case st.Tracer != nil:
		st.Tracer.SetLoadRecorder(st.Loads)
	default:
		return fmt.Errorf("scenario %q: load profiling needs fs/user-level probes or tracing", st.Spec.Name)
	}
	return nil
}

// injectFaults wires the Spec's fault program into the built stack.
// It runs last in Build, so the injection daemons spawn at a fixed
// point in construction order and the healthy construction sequence is
// byte-for-byte what it was without injections.
func (st *Stack) injectFaults(inj *fault.Spec) error {
	if inj.Empty() {
		return nil
	}
	if d := inj.Disk; d != nil {
		if st.Disk == nil {
			return fmt.Errorf("scenario %q: disk fault injection needs a disk-backed backend", st.Spec.Name)
		}
		st.DiskFaults = fault.NewDiskInjector(*d, st.Disk.Config().FullRotation, st.Spec.Kernel.Seed)
		st.Disk.SetInjector(st.DiskFaults)
	}
	if t := inj.Thrash; t != nil {
		if st.Cache == nil {
			return fmt.Errorf("scenario %q: cache-thrash injection needs a page cache", st.Spec.Name)
		}
		fault.StartThrash(st.K, st.Cache, *t)
	}
	if h := inj.Hog; h != nil {
		if h.LockPath != "" && st.VFS == nil {
			return fmt.Errorf("scenario %q: hog lock injection needs a mounted backend", st.Spec.Name)
		}
		// The hog bypasses instrumentation (st.VFS, not st.Sys): a
		// rogue daemon's own syscalls are not the profiled workload.
		fault.StartHog(st.K, st.VFS, *h)
	}
	return nil
}

// populateExt2 creates the Spec's flat files and synthetic tree on fs.
func populateExt2(st *Stack, fs *ext2.FS, spec Spec) {
	for _, f := range spec.Files {
		fs.MustAddFile(fs.Root(), f.Name, f.Size)
	}
	if spec.Tree != nil {
		st.Tree = workload.BuildTree(fs, *spec.Tree)
	}
}

// instrument installs the Spec's profiler.
func (st *Stack) instrument(ins Instrument) error {
	name := st.Spec.SetName
	if name == "" {
		name = st.Spec.Name
	}
	if name == "" {
		name = "scenario"
	}
	st.Set = core.NewSet(name)

	var sink fsprof.Sink = fsprof.SetSink{Set: st.Set}
	if ins.Sampled {
		st.Sampled = fsprof.NewSampledSink(ins.SampleStart, ins.SampleInterval)
		sink = st.Sampled
	}
	costs := fsprof.DefaultCosts()
	if ins.Costs != nil {
		costs = *ins.Costs
	}

	switch ins.Point {
	case NoProfiler:
	case FSLevel:
		if st.FS == nil {
			return fmt.Errorf("scenario %q: FS-level instrumentation needs a backend", st.Spec.Name)
		}
		st.Instrumented = fsprof.Instrument(st.FS, sink, ins.Mode, costs)
		if st.Client != nil {
			// The client's wire operations are the IRPs a Windows
			// filter driver sees (§4); record them into the same sink.
			st.Client.RPCSink = sink
		}
	case UserLevel:
		if st.VFS == nil {
			return fmt.Errorf("scenario %q: user-level instrumentation needs a backend", st.Spec.Name)
		}
		st.User = fsprof.NewUserProfilerSink(st.VFS, sink, ins.Mode, costs)
		st.Sys = st.User
	case DriverLevel:
		if st.Disk == nil {
			return fmt.Errorf("scenario %q: driver-level instrumentation needs a disk", st.Spec.Name)
		}
		if ins.Sampled {
			return fmt.Errorf("scenario %q: driver-level instrumentation records into the accumulated set", st.Spec.Name)
		}
		st.Driver = fsprof.NewDriverProfiler(st.Set)
		st.Disk.SetProbe(st.Driver)
	default:
		return fmt.Errorf("scenario %q: unknown instrumentation point %d", st.Spec.Name, ins.Point)
	}
	return nil
}

// Run spawns the Spec's workloads in order and drives the simulation
// to completion. It returns the stack for chaining.
func (st *Stack) Run() *Stack {
	for i := range st.Spec.Workloads {
		st.spawn(&st.Spec.Workloads[i])
	}
	st.K.Run()
	return st
}

// RunSpec is the common path: Build the spec and Run it.
func RunSpec(spec Spec) (*Stack, error) {
	st, err := Build(spec)
	if err != nil {
		return nil, err
	}
	return st.Run(), nil
}
