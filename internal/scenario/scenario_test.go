package scenario

import (
	"bytes"
	"testing"

	"osprof/internal/core"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// kernel1 is the minimal machine used across tests.
func kernel1(seed int64) sim.Config {
	return sim.Config{NumCPUs: 1, ContextSwitch: 9_350, WakePreempt: true, Seed: seed}
}

func TestBuildExt2StackWiring(t *testing.T) {
	st, err := Build(Spec{
		Name:       "t",
		Kernel:     kernel1(1),
		Backend:    Ext2,
		CachePages: 512,
		Files:      []FileSpec{{Name: "f", Size: 2 * vfs.PageSize}},
		Tree:       &workload.TreeSpec{Seed: 3, Dirs: 4},
		Instrument: Instrument{Point: FSLevel},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Ext2 == nil || st.FS != vfs.FileSystem(st.Ext2) || st.VFS == nil || st.Sys == nil {
		t.Fatal("ext2 stack not wired")
	}
	if st.Instrumented == nil || st.Set == nil {
		t.Fatal("FS-level instrumentation missing")
	}
	if st.Tree.Dirs == 0 || st.Tree.Files == 0 {
		t.Errorf("tree not built: %+v", st.Tree)
	}
}

func TestRunRecordsProfiles(t *testing.T) {
	st, err := RunSpec(Spec{
		Name:       "t",
		Kernel:     kernel1(2),
		Backend:    Ext2,
		CachePages: 512,
		Tree:       &workload.TreeSpec{Seed: 3, Dirs: 4},
		Instrument: Instrument{Point: FSLevel},
		Workloads:  []Workload{{Kind: Grep}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.K.Now() == 0 {
		t.Error("simulation did not advance")
	}
	if st.Set.TotalOps() == 0 {
		t.Error("no operations recorded")
	}
	if st.Set.Lookup("readdir") == nil {
		t.Error("readdir profile missing")
	}
}

func TestUserLevelInstrumentationWrapsSyscalls(t *testing.T) {
	st, err := RunSpec(Spec{
		Name:       "t",
		Kernel:     kernel1(3),
		Backend:    Ext2,
		Files:      []FileSpec{{Name: "zero", Size: vfs.PageSize}},
		Instrument: Instrument{Point: UserLevel},
		Workloads:  []Workload{{Kind: ReadZero, Amount: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sys == vfs.Syscalls(st.VFS) {
		t.Error("user-level point left Sys unwrapped")
	}
	// The user profiler observes whole system calls: open/read/close.
	for _, op := range []string{"open", "read", "close"} {
		if st.Set.Lookup(op) == nil {
			t.Errorf("user-level profile missing %q", op)
		}
	}
}

func TestDriverLevelInstrumentation(t *testing.T) {
	st, err := RunSpec(Spec{
		Name:       "t",
		Kernel:     kernel1(4),
		Backend:    Ext2,
		CachePages: 64,
		Files:      []FileSpec{{Name: "big", Size: 256 * vfs.PageSize}},
		Instrument: Instrument{Point: DriverLevel},
		Workloads: []Workload{{
			Kind: Custom,
			Body: func(p *sim.Proc, _ int, st *Stack) {
				f, err := st.Sys.Open(p, "/big", false)
				if err != nil {
					return
				}
				for st.Sys.Read(p, f, vfs.PageSize) > 0 {
				}
				st.Sys.Close(p, f)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof := st.Set.Lookup("disk_read"); prof == nil || prof.Count == 0 {
		t.Error("driver-level profiler captured no disk reads")
	}
}

func TestReiserBackend(t *testing.T) {
	st, err := RunSpec(Spec{
		Name:       "t",
		Kernel:     kernel1(5),
		Backend:    Reiser,
		Files:      []FileSpec{{Name: "a", Size: 4 * vfs.PageSize}},
		Instrument: Instrument{Point: FSLevel},
		Workloads:  []Workload{{Kind: Grep, Path: "/"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Reiser == nil {
		t.Fatal("reiser backend not built")
	}
	if prof := st.Set.Lookup("read"); prof == nil || prof.Count == 0 {
		t.Error("no reads recorded on reiser")
	}
}

func TestCIFSBackend(t *testing.T) {
	spec := Spec{
		Name:       "t",
		Kernel:     sim.Config{NumCPUs: 2, ContextSwitch: 9_350, WakePreempt: true, Seed: 6},
		Backend:    CIFS,
		CachePages: 1 << 12,
		Tree:       &workload.TreeSpec{Seed: 7, Dirs: 4},
		Instrument: Instrument{Point: FSLevel},
		Workloads:  []Workload{{Kind: Grep}},
	}
	st, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Client == nil || st.Server == nil || st.ServerFS == nil {
		t.Fatal("cifs testbed not wired")
	}
	// The client's wire operations record into the same sink.
	if prof := st.Set.Lookup("FindFirst"); prof == nil || prof.Count == 0 {
		t.Error("RPC profiles not captured")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Name: "files-need-fs", Files: []FileSpec{{Name: "x", Size: 1}}},
		{Name: "reiser-flat", Backend: Reiser, Tree: &workload.TreeSpec{}},
		{Name: "flusher-ext2", Backend: Reiser, Flusher: &FlusherSpec{}},
		{Name: "fs-instrument", Instrument: Instrument{Point: FSLevel}},
		{Name: "daemon-reiser", Backend: Ext2, SuperDaemon: true},
		{Name: "bad-backend", Backend: Backend(99)},
	}
	for _, spec := range cases {
		if _, err := Build(spec); err == nil {
			t.Errorf("%s: Build accepted an invalid spec", spec.Name)
		}
	}
}

// Two stacks built from one spec are isolated deterministic worlds:
// their profiles must be byte-identical, which is the property the
// parallel runner relies on.
func TestIdenticalSpecsReproduceExactly(t *testing.T) {
	for _, spec := range Matrix(11) {
		a, err := RunSpec(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		b, err := RunSpec(spec)
		if err != nil {
			t.Fatalf("%s rerun: %v", spec.Name, err)
		}
		if a.K.Now() != b.K.Now() {
			t.Errorf("%s: clocks differ: %d vs %d", spec.Name, a.K.Now(), b.K.Now())
		}
		var ba, bb bytes.Buffer
		if err := core.WriteSet(&ba, a.Set); err != nil {
			t.Fatal(err)
		}
		if err := core.WriteSet(&bb, b.Set); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Errorf("%s: profiles differ between identical runs", spec.Name)
		}
	}
}

func TestMatrixCoversBackendsAndWorkloads(t *testing.T) {
	specs := Matrix(0)
	byBackend := map[Backend]map[Kind]bool{}
	for _, s := range specs {
		if len(s.Workloads) != 1 {
			t.Errorf("%s: matrix cells carry one workload, got %d", s.Name, len(s.Workloads))
			continue
		}
		if byBackend[s.Backend] == nil {
			byBackend[s.Backend] = map[Kind]bool{}
		}
		byBackend[s.Backend][s.Workloads[0].Kind] = true
	}
	for _, b := range []Backend{Ext2, Reiser, CIFS} {
		if len(byBackend[b]) < 4 {
			t.Errorf("%s covers %d workloads, want >= 4", b, len(byBackend[b]))
		}
	}
	if !byBackend[Ext2][Postmark] {
		t.Error("ext2 matrix misses postmark")
	}
	if len(MatrixIDs()) != len(specs) {
		t.Error("MatrixIDs out of sync with Matrix")
	}
}

// Different seeds must produce different worlds — the -seed flag is
// not a no-op.
func TestSeedChangesTheWorld(t *testing.T) {
	spec1 := Matrix(1)[0]
	spec2 := Matrix(2)[0]
	a, err := RunSpec(spec1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(spec2)
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := core.WriteSet(&ba, a.Set); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteSet(&bb, b.Set); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("different seeds produced identical profiles")
	}
}

func TestCloneKindNeedsNoFS(t *testing.T) {
	var prof *core.Profile
	st, err := RunSpec(Spec{
		Name:   "t",
		Kernel: sim.Config{NumCPUs: 2, ContextSwitch: 9_350, WakePreempt: true, Seed: 8},
		Workloads: []Workload{{
			Kind:    Clone,
			Procs:   2,
			Amount:  200,
			Collect: func(stats any) { prof = stats.(*core.Profile) },
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FS != nil || st.VFS != nil {
		t.Error("NoFS backend built a file system")
	}
	if prof == nil || prof.Count != 400 {
		t.Errorf("clone profile incomplete: %+v", prof)
	}
}
