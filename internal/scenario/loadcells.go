package scenario

import (
	"fmt"

	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// LoadCells returns the contention scenarios for load-conditioned
// profiling: the same readzero workload run at increasing process
// fan-out on SMP machines, with LoadProfile enabled. The cells hold
// everything fixed except contention, so diffing them isolates what
// load alone does to an operation's latency — the steady load sits in
// band "1" (1 proc), "2-4" (4 procs on 2 CPUs) and "5+" (8 procs on
// 4 CPUs). seed offsets the kernel seeds, as in Matrix.
// LoadCellIDs lists the load-cell scenario names in cell order.
func LoadCellIDs() []string {
	specs := LoadCells(0)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

func LoadCells(seed int64) []Spec {
	cells := []struct{ procs, cpus int }{
		{1, 2},
		{4, 2},
		{8, 4},
	}
	specs := make([]Spec, 0, len(cells))
	for _, c := range cells {
		specs = append(specs, Spec{
			Name:    fmt.Sprintf("load/readzero-%dx%d", c.procs, c.cpus),
			Backend: Ext2,
			Kernel: sim.Config{
				NumCPUs: c.cpus,
				// The short quantum and fast tick make mid-operation
				// preemption common under contention, so the contended
				// bands develop the wait peaks the load diff attributes.
				Quantum:       1 << 14,
				TickPeriod:    1 << 12,
				TickCost:      800,
				Preemptive:    true,
				WakePreempt:   true,
				ContextSwitch: 9_350,
				Seed:          seed + int64(c.procs)*7 + int64(c.cpus),
			},
			CachePages:  1 << 10,
			Files:       []FileSpec{{Name: "zero", Size: vfs.PageSize}},
			Instrument:  Instrument{Point: FSLevel},
			LoadProfile: true,
			Workloads: []Workload{
				{Kind: ReadZero, ProcName: "reader", Procs: c.procs, Amount: 2_000, Path: "/zero"},
			},
		})
	}
	return specs
}
