package scenario

import (
	"reflect"
	"strings"
	"testing"

	"osprof/internal/load"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// TestSkewMigrationNoUnderflow is the regression test for the
// cross-CPU TSC underflow: two CPUs with opposing skews, a contended
// preemptive schedule migrating readers between them, so operations
// routinely start on one clock and finish on the other. The custom
// reader proves the hazard is actually exercised (raw end < start at
// least once); the probe's profiles must stay clamp-sane — before the
// fix the wrapped ~2^64 latencies landed in the top bucket.
func TestSkewMigrationNoUnderflow(t *testing.T) {
	underflows := 0
	st, err := RunSpec(Spec{
		Name:    "t",
		Backend: Ext2,
		Kernel: sim.Config{
			NumCPUs:       2,
			ContextSwitch: 100,
			TickPeriod:    1 << 9,
			TickCost:      50,
			Quantum:       1 << 10,
			Preemptive:    true,
			WakePreempt:   true,
			TSCSkew:       []int64{5_000_000, -5_000_000},
			Seed:          3,
		},
		CachePages: 256,
		Files:      []FileSpec{{Name: "zero", Size: vfs.PageSize}},
		Instrument: Instrument{Point: FSLevel},
		Workloads: []Workload{{
			Kind:  Custom,
			Procs: 3,
			Body: func(p *sim.Proc, _ int, st *Stack) {
				f, err := st.Sys.Open(p, "/zero", false)
				if err != nil {
					return
				}
				for j := 0; j < 2_000; j++ {
					start := p.ReadTSC()
					st.Sys.Llseek(p, f, 0, vfs.SeekSet)
					st.Sys.Read(p, f, vfs.PageSize)
					if p.ReadTSC() < start {
						underflows++
					}
				}
				st.Sys.Close(p, f)
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if underflows == 0 {
		t.Fatal("no cross-CPU TSC underflow occurred; the regression is not exercised")
	}
	if err := st.Set.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, op := range st.Set.Ops() {
		p := st.Set.Lookup(op)
		if p.Count == 0 {
			continue
		}
		// A wrapped subtraction lands near 2^64; every honest latency in
		// this world is far below 2^40 cycles.
		if p.Max >= 1<<40 {
			t.Errorf("%s: max latency %d smells of unsigned wrap", op, p.Max)
		}
	}
	if rd := st.Set.Lookup("read"); rd == nil || rd.Count == 0 {
		t.Error("probe recorded no reads")
	}
}

// TestLoadProfileRecordsBandedCompanions runs the first two load cells
// and checks the tentpole wiring end to end: a lone reader's samples
// land in the load:1 companion, four readers on two CPUs land in
// load:2-4, and neither cell leaks into bands it never reached.
func TestLoadProfileRecordsBandedCompanions(t *testing.T) {
	cells := LoadCells(1)

	solo, err := RunSpec(cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if p := solo.Set.Lookup("read@load:1"); p == nil || p.Count == 0 {
		t.Error("solo cell missing read@load:1 samples")
	}
	for _, op := range []string{"read@load:2-4", "read@load:5+"} {
		if p := solo.Set.Lookup(op); p != nil && p.Count > 0 {
			t.Errorf("solo cell recorded %s (%d samples)", op, p.Count)
		}
	}

	packed, err := RunSpec(cells[1])
	if err != nil {
		t.Fatal(err)
	}
	hot := packed.Set.Lookup("read@load:2-4")
	if hot == nil || hot.Count == 0 {
		t.Fatal("contended cell missing read@load:2-4 samples")
	}
	// The steady state is 4 runnable readers; band 2-4 must dominate.
	if cold := packed.Set.Lookup("read@load:1"); cold != nil && cold.Count > hot.Count {
		t.Errorf("contended cell sampled load:1 (%d) more than load:2-4 (%d)",
			cold.Count, hot.Count)
	}
	// The companions account for exactly the probe's base samples.
	var banded uint64
	for _, op := range packed.Set.Ops() {
		if _, _, ok := load.SplitOp(op); ok && strings.HasPrefix(op, "read@load:") {
			banded += packed.Set.Lookup(op).Count
		}
	}
	if base := packed.Set.Lookup("read"); base == nil || banded != base.Count {
		t.Errorf("banded read samples = %d, want base count %v", banded, base)
	}
	if packed.Loads == nil || !packed.K.LoadTracked() {
		t.Error("stack did not retain the load recorder / tracking")
	}
}

// TestLoadProfileIsPureObserver pins the compatibility guarantee: the
// same spec with LoadProfile toggled must produce byte-identical
// profiles for every non-load operation — conditioning adds companion
// profiles without disturbing the world.
func TestLoadProfileIsPureObserver(t *testing.T) {
	spec := LoadCells(1)[1]
	on, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.LoadProfile = false
	off, err := RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if onT, offT := on.K.Now(), off.K.Now(); onT != offT {
		t.Fatalf("clocks diverged: on=%d off=%d", onT, offT)
	}
	for _, op := range off.Set.Ops() {
		a, b := off.Set.Lookup(op), on.Set.Lookup(op)
		if b == nil {
			t.Errorf("conditioned run lost op %s", op)
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: profile disturbed by load conditioning:\n  off %+v\n  on  %+v", op, a, b)
		}
	}
	for _, op := range on.Set.Ops() {
		if _, _, ok := load.SplitOp(op); !ok && off.Set.Lookup(op) == nil {
			t.Errorf("conditioned run grew non-load op %s", op)
		}
	}
}

// LoadProfile needs a probe (or the tracer) to sample from.
func TestLoadProfileRequiresProbe(t *testing.T) {
	_, err := Build(Spec{
		Name:        "bare",
		Backend:     Ext2,
		Files:       []FileSpec{{Name: "zero", Size: vfs.PageSize}},
		LoadProfile: true,
	})
	if err == nil || !strings.Contains(err.Error(), "load profiling") {
		t.Errorf("bare LoadProfile spec built: %v", err)
	}
}

// The load cells are a stable registry: names, shape, and conditioning.
func TestLoadCellsShape(t *testing.T) {
	specs := LoadCells(0)
	ids := LoadCellIDs()
	if len(specs) != len(ids) {
		t.Fatalf("%d specs, %d ids", len(specs), len(ids))
	}
	for i, s := range specs {
		if s.Name != ids[i] {
			t.Errorf("cell %d: name %q vs id %q", i, s.Name, ids[i])
		}
		if !s.LoadProfile {
			t.Errorf("%s: load cell without LoadProfile", s.Name)
		}
		if !strings.Contains(s.Canonical(), "loadprofile=true") {
			t.Errorf("%s: canonical encoding misses the conditioning", s.Name)
		}
		if s.Kernel.NumCPUs < 2 {
			t.Errorf("%s: load cells are SMP scenarios, got %d CPUs", s.Name, s.Kernel.NumCPUs)
		}
	}
	if specs[0].Workloads[0].Procs >= specs[1].Workloads[0].Procs {
		t.Error("cells must increase contention")
	}
}
