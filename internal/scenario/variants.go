package scenario

import (
	"fmt"

	"osprof/internal/fault"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// Variants returns the named kernel-configuration variant scenarios
// beyond the base backend×workload matrix — the labeled reference
// corpus of the OS fingerprint classifier. Where the matrix asks "how
// does this backend behave under this workload?", a variant asks the
// paper's headline question in reverse: each Spec carries a Label
// naming the OS configuration family that produced it (kernel
// preemption build, file-system backend, page-cache size), archived
// runs carry the label as metadata, and `osprof identify` attributes an
// unknown profile to one of these labels by per-operation EMD distance
// (the §5 cross-OS comparisons turned into automatic identification).
//
// The first pair reproduces Figure 3's fixture (two processes reading
// zero bytes back to back on one CPU, scaled quantum and timer tick,
// user-level instrumentation): `fig3/preempt` builds the kernel with
// in-kernel preemption, `fig3/nopreempt` without. Diffing the two runs
// flags the read operation — the preemptive kernel adds a latency peak
// near bucket log2(Q) where preempted requests wait out a quantum.
//
// The corpus/* cells cross the discriminable configuration axes so
// classification is non-trivial: local backends (ext2, reiser) ×
// kernel preemption × page-cache size, plus cache-size variants of the
// CIFS client (which multiplexes one connection, so it runs the
// single-process cell). Every cell layers three probe workloads whose
// signatures separate the axes:
//
//   - readzero, two processes: the Figure 3 forcible-preemption probe.
//     A preemptive kernel moves ~mean-window/Q of the reads into a
//     runqueue-wait peak near log2(procs·Q); a non-preemptive one
//     leaves that region empty.
//   - randomread through the page cache (Cached): the hit/miss balance
//     of the read and llseek profiles tracks CachePages against the
//     512-page target file.
//   - walk: the metadata signature (lookup/getdents/stat shapes) that
//     separates the backends, including ext2's tree namespace from
//     reiser's flat one.
//
// The corpus quantum is 2^14 (not Figure 3's 2^20): the preemption-peak
// population scales with profiled-time/Q (§3.3 Equation 3), and the
// smaller quantum lifts it to ~0.5% of the reads so the preempt/
// nopreempt centroid gap stands clear of cross-seed noise.
func Variants(seed int64) []Spec {
	preemption := func(name, label string, preemptive bool) Spec {
		return Spec{
			Name:  name,
			Label: label,
			Kernel: sim.Config{
				NumCPUs:       1,
				ContextSwitch: 9_350,
				Quantum:       1 << 20,
				TickPeriod:    1 << 18,
				TickCost:      10_000,
				Preemptive:    preemptive,
				Seed:          seed,
			},
			Backend:    Ext2,
			CachePages: 1024,
			Files:      []FileSpec{{Name: "zero", Size: vfs.PageSize}},
			Instrument: Instrument{Point: UserLevel},
			Workloads: []Workload{{
				Kind:     ReadZero,
				ProcName: "reader",
				Procs:    2,
				Amount:   100_000,
			}},
		}
	}
	specs := []Spec{
		preemption("fig3/preempt", "fig3-preempt", true),
		preemption("fig3/nopreempt", "fig3-nopreempt", false),
	}
	for _, backend := range []Backend{Ext2, Reiser} {
		for _, preemptive := range []bool{true, false} {
			for _, cache := range []int{corpusSmallCache, corpusLargeCache} {
				specs = append(specs, corpusCell(backend, preemptive, cache, seed))
			}
		}
	}
	for _, cache := range []int{corpusSmallCache, corpusLargeCache} {
		specs = append(specs, corpusCIFSCell(cache, seed))
	}
	return append(specs, degradedCells(seed)...)
}

// degradedCells are the labeled degraded corpus members: healthy corpus
// cells with a fault-injection preset applied (internal/fault.Preset)
// and the preset name appended to the cell's name and label. Training
// on them is what lets `osprof identify` and the anomaly watcher say
// not just "this changed" but "this looks like a flaky disk": the
// label's family component (first '-' token) stays the backend, so the
// cross-validation family gate covers degraded members too.
//
// The preset-to-cell pairing targets where each fault's signature is
// loudest: disk faults on the small cache (more media reads to
// perturb) plus the CIFS cell (the *server's* drive degrades, and the
// client's SMBRead profile gives it away across the network); cache
// thrash on the large cache (hit-dominated behavior collapses to
// miss-dominated — the starkest contrast); and the CPU hog on the
// preemptive builds only. A kernel-mode hog is profile-invisible
// through a non-preemptive kernel — victims are only descheduled
// between syscalls, so no profiled operation absorbs the burst (the
// paper's Figure 3 physics in reverse) — and a degraded cell
// indistinguishable from its healthy twin would only poison both.
func degradedCells(seed int64) []Spec {
	type cell struct {
		backend    Backend
		preemptive bool
		cache      int
		preset     string
	}
	cells := []cell{
		{Ext2, true, corpusSmallCache, "disk-flaky"},
		{Ext2, false, corpusSmallCache, "disk-flaky"},
		{Reiser, true, corpusSmallCache, "disk-flaky"},
		{Ext2, true, corpusLargeCache, "cache-thrash"},
		{Ext2, false, corpusLargeCache, "cache-thrash"},
		{Reiser, true, corpusLargeCache, "cache-thrash"},
		{Ext2, true, corpusSmallCache, "cpu-hog"},
		{Reiser, true, corpusSmallCache, "cpu-hog"},
	}
	degrade := func(spec Spec, preset string) Spec {
		inj, ok := fault.Preset(preset)
		if !ok {
			panic("scenario: unknown fault preset " + preset)
		}
		spec.Injections = inj
		spec.Name += "-" + preset
		spec.Label += "-" + preset
		return spec
	}
	out := make([]Spec, 0, len(cells)+1)
	for _, c := range cells {
		out = append(out, degrade(corpusCell(c.backend, c.preemptive, c.cache, seed), c.preset))
	}
	return append(out, degrade(corpusCIFSCell(corpusSmallCache, seed), "disk-flaky"))
}

// Corpus cache sizes in pages: the small cache holds half the 512-page
// randomread target, the large one holds it many times over.
const (
	corpusSmallCache = 256
	corpusLargeCache = 8192
)

// corpusKernel is the shared kernel build of the corpus cells; only
// Preemptive (and the CIFS CPU count) varies across the corpus, so the
// preemption axis is isolated exactly as the paper's §5 comparisons
// hold everything but one configuration bit fixed.
func corpusKernel(preemptive bool, seed int64) sim.Config {
	return sim.Config{
		NumCPUs:       1,
		ContextSwitch: 9_350,
		Quantum:       1 << 14,
		TickPeriod:    1 << 12,
		TickCost:      800,
		Preemptive:    preemptive,
		Seed:          seed,
	}
}

// corpusFiles are the shared probe targets: the 512-page randomread
// file and the zero-byte-read file.
func corpusFiles() []FileSpec {
	return []FileSpec{
		{Name: "bigfile", Size: 512 * vfs.PageSize},
		{Name: "zero", Size: vfs.PageSize},
	}
}

// corpusProbes are the three probe workloads of a local-backend corpus
// cell; walkRoot is the backend's traversal root.
func corpusProbes(walkRoot string, seed int64) []Workload {
	return []Workload{
		{Kind: ReadZero, Procs: 2, Amount: 50_000},
		{Kind: RandomRead, Procs: 2, Amount: 400, Seed: seed + 1,
			Think: 2_000, Cached: true},
		{Kind: Walk, Path: walkRoot},
	}
}

// corpusCell builds one labeled local-backend corpus cell.
func corpusCell(backend Backend, preemptive bool, cache int, seed int64) Spec {
	pre := "preempt"
	if !preemptive {
		pre = "nopreempt"
	}
	label := fmt.Sprintf("%s-%s-c%d", backend, pre, cache)
	spec := Spec{
		Name:       "corpus/" + label,
		Label:      label,
		Kernel:     corpusKernel(preemptive, seed),
		Backend:    backend,
		CachePages: cache,
		Files:      corpusFiles(),
		Instrument: Instrument{Point: UserLevel},
	}
	switch backend {
	case Ext2:
		spec.Tree = &workload.TreeSpec{
			Seed:           seed + 300,
			Dirs:           10,
			FilesPerDirMin: 4,
			FilesPerDirMax: 10,
			BigDirEvery:    4,
		}
		spec.Workloads = corpusProbes("/src", seed)
	case Reiser:
		// Flat namespace: the walk traverses the root's file pool.
		for i := 0; i < 20; i++ {
			spec.Files = append(spec.Files,
				FileSpec{Name: fmt.Sprintf("f%03d", i), Size: 4 * vfs.PageSize})
		}
		spec.Workloads = corpusProbes("/", seed)
	}
	return spec
}

// corpusCIFSCell builds one labeled CIFS corpus cell. The client
// multiplexes a single connection, so the cell runs only the cached
// randomread probe with one process (no preemption axis: forcible
// preemption needs two CPU-bound processes contending for one CPU).
func corpusCIFSCell(cache int, seed int64) Spec {
	label := fmt.Sprintf("cifs-c%d", cache)
	kernel := corpusKernel(false, seed)
	kernel.NumCPUs = 2 // one client CPU, one server CPU
	return Spec{
		Name:       "corpus/" + label,
		Label:      label,
		Kernel:     kernel,
		Backend:    CIFS,
		CachePages: cache,
		Files:      corpusFiles(),
		Instrument: Instrument{Point: UserLevel},
		Workloads: []Workload{
			{Kind: RandomRead, Procs: 1, Amount: 400, Seed: seed + 1,
				Think: 2_000, Cached: true},
		},
	}
}

// VariantIDs lists the variant scenario names in order.
func VariantIDs() []string {
	specs := Variants(0)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
