package scenario

import (
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Variants returns named kernel-configuration variant scenarios beyond
// the base backend×workload matrix: pairs of Specs that differ only in
// how the kernel is built, mirroring the paper's §5 comparisons of OS
// versions and configurations. They exist so `osprof record` can
// archive both sides of a configuration change and `osprof diff` can
// localize its latency effect — the Figure 3 preemption study as a
// regression-detection workflow instead of a one-shot figure.
//
// The first pair reproduces Figure 3's fixture (two processes reading
// zero bytes back to back on one CPU, scaled quantum and timer tick,
// user-level instrumentation): `fig3/preempt` builds the kernel with
// in-kernel preemption, `fig3/nopreempt` without. Diffing the two runs
// flags the read operation — the preemptive kernel adds a latency peak
// near bucket log2(Q) where preempted requests wait out a quantum.
func Variants(seed int64) []Spec {
	preemption := func(name string, preemptive bool) Spec {
		return Spec{
			Name: name,
			Kernel: sim.Config{
				NumCPUs:       1,
				ContextSwitch: 9_350,
				Quantum:       1 << 20,
				TickPeriod:    1 << 18,
				TickCost:      10_000,
				Preemptive:    preemptive,
				Seed:          seed,
			},
			Backend:    Ext2,
			CachePages: 1024,
			Files:      []FileSpec{{Name: "zero", Size: vfs.PageSize}},
			Instrument: Instrument{Point: UserLevel},
			Workloads: []Workload{{
				Kind:     ReadZero,
				ProcName: "reader",
				Procs:    2,
				Amount:   100_000,
			}},
		}
	}
	return []Spec{
		preemption("fig3/preempt", true),
		preemption("fig3/nopreempt", false),
	}
}

// VariantIDs lists the variant scenario names in order.
func VariantIDs() []string {
	specs := Variants(0)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}
