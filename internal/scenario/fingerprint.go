package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Fingerprint returns the canonical identity of the Spec: a sha256 over
// Canonical()'s field-by-field encoding of everything that shapes the
// simulated world — kernel build, disk geometry, cache size, backend
// configuration, file population, instrumentation point, and workloads
// with their seeds. Two Specs with equal fingerprints build identical
// deterministic worlds, so the profile archive (internal/store) keys
// runs by it: recording the same Spec again reproduces the same
// artifact, and diffing runs with different fingerprints localizes the
// configuration change that caused a latency shift (the paper's §5
// cross-OS comparisons).
//
// Function-valued fields are excluded: Workload.Observe and
// Workload.Collect only observe the run, and CIFSSpec.Sniffer only
// captures packets, none of which perturbs the simulation. A Custom
// workload's Body does change behavior but cannot be serialized; it is
// encoded only by presence, so archival recording should stick to the
// declarative workload kinds.
func (s Spec) Fingerprint() string {
	h := sha256.Sum256([]byte(s.Canonical()))
	return hex.EncodeToString(h[:])
}

// Canonical returns the deterministic text encoding hashed by
// Fingerprint, one field per line in a fixed order. It is exported so
// tests can pin it with goldens (catching accidental canonicalization
// drift) and so mismatching fingerprints can be diffed by hand.
//
// Every serializable field of Spec and its nested configuration structs
// must appear here; TestFingerprintCoversEveryField pins the field
// counts so that adding a field without extending this encoding fails
// the build's tests.
func (s Spec) Canonical() string {
	var b strings.Builder
	b.WriteString("osprof-spec v1\n")
	fmt.Fprintf(&b, "name=%q\n", s.Name)
	fmt.Fprintf(&b, "setname=%q\n", s.SetName)
	// Encoded only when set, so pre-label archives keep their keys
	// (the same conditional-presence idiom as Tree and Flusher below).
	if s.Label != "" {
		fmt.Fprintf(&b, "label=%q\n", s.Label)
	}
	// Same presence idiom: untraced Specs (the entire pre-trace
	// archive) keep their fingerprints.
	if s.Trace {
		fmt.Fprintf(&b, "trace=%t\n", s.Trace)
	}
	// Same presence idiom: unconditioned Specs keep their pre-load
	// fingerprints.
	if s.LoadProfile {
		fmt.Fprintf(&b, "loadprofile=%t\n", s.LoadProfile)
	}
	fmt.Fprintf(&b, "backend=%s\n", s.Backend)
	fmt.Fprintf(&b, "cachepages=%d\n", s.CachePages)
	fmt.Fprintf(&b, "superdaemon=%t\n", s.SuperDaemon)

	k := s.Kernel
	fmt.Fprintf(&b, "kernel cpus=%d quantum=%d preemptive=%t ctxswitch=%d tickperiod=%d tickcost=%d wakepreempt=%t tscskew=%v seed=%d\n",
		k.NumCPUs, k.Quantum, k.Preemptive, k.ContextSwitch,
		k.TickPeriod, k.TickCost, k.WakePreempt, k.TSCSkew, k.Seed)

	d := s.Disk
	fmt.Fprintf(&b, "disk blocks=%d percyl=%d pertrack=%d t2t=%d stroke=%d rot=%d cmd=%d xfer=%d segs=%d readahead=%d\n",
		d.Blocks, d.BlocksPerCylinder, d.BlocksPerTrack, d.TrackToTrackSeek,
		d.FullStrokeSeek, d.FullRotation, d.CommandOverhead, d.TransferPerBlock,
		d.CacheSegments, d.ReadaheadBlocks)

	e := s.Ext2
	fmt.Fprintf(&b, "ext2 buggyllseek=%t spread=%d dirtylimit=%d lookup=%d pasteof=%d parsedir=%d readpage=%d readbatch=%d direct=%d writesetup=%d writepage=%d create=%d unlink=%d open=%d release=%d\n",
		e.BuggyLlseek, e.FileSpread, e.DirtyPageLimit, e.LookupCost,
		e.PastEOFCost, e.ParseDirCost, e.ReadPageInit, e.ReadBatchInit,
		e.DirectSetup, e.WriteSetup, e.WritePageCost, e.CreateCost,
		e.UnlinkCost, e.OpenCost, e.ReleaseCost)

	r := s.Reiser
	fmt.Fprintf(&b, "reiser journal=%d superinterval=%d readlock=%d\n",
		r.JournalBlocks, r.SuperInterval, r.ReadLockCost)

	c := s.CIFS
	fmt.Fprintf(&b, "cifs client batch=%d chunk=%d local=%d server window=%d cpu=%d net oneway=%d perbyte=%d mss=%d ackto=%d sendcpu=%d nodelack=%t sniffer=%t\n",
		c.Client.BatchEntries, c.Client.ReadChunk, c.Client.LocalCost,
		c.Server.Window, c.Server.ProcessCPU,
		c.Net.OneWayLatency, c.Net.CyclesPerByte, c.Net.MSS,
		c.Net.DelayedAckTimeout, c.Net.SendCPU,
		c.NoDelayedAck, c.Sniffer != nil)

	for i, f := range s.Files {
		fmt.Fprintf(&b, "file %d name=%q size=%d\n", i, f.Name, f.Size)
	}
	if t := s.Tree; t != nil {
		fmt.Fprintf(&b, "tree seed=%d dirs=%d filesmin=%d filesmax=%d sizemin=%d sizemax=%d bigevery=%d\n",
			t.Seed, t.Dirs, t.FilesPerDirMin, t.FilesPerDirMax,
			t.FileSizeMin, t.FileSizeMax, t.BigDirEvery)
	}
	if f := s.Flusher; f != nil {
		fmt.Fprintf(&b, "flusher interval=%d age=%d\n", f.Interval, f.Age)
	}
	// The fault program encodes by presence (empty Spec and nil alike
	// add nothing): every pre-fault Spec keeps its fingerprint key.
	b.WriteString(s.Injections.Canonical())

	ins := s.Instrument
	fmt.Fprintf(&b, "instrument point=%s mode=%d sampled=%t start=%d interval=%d",
		ins.Point, ins.Mode, ins.Sampled, ins.SampleStart, ins.SampleInterval)
	if ins.Costs != nil {
		fmt.Fprintf(&b, " costs=%d/%d/%d",
			ins.Costs.CallPair, ins.Costs.TSCWindow, ins.Costs.SortStore)
	}
	b.WriteString("\n")

	for i, w := range s.Workloads {
		fmt.Fprintf(&b, "workload %d kind=%s procname=%q procs=%d amount=%d files=%d seed=%d think=%d path=%q",
			i, w.Kind, w.ProcName, w.Procs, w.Amount, w.Files,
			w.Seed, w.Think, w.Path)
		// Conditional for the same reason as label above: direct I/O
		// (the zero value) stays encoded by absence.
		if w.Cached {
			fmt.Fprintf(&b, " cached=%t", w.Cached)
		}
		fmt.Fprintf(&b, " custom=%t\n", w.Body != nil)
	}
	return b.String()
}
