package scenario

import (
	"reflect"
	"strings"
	"testing"

	"osprof/internal/fault"
	"osprof/internal/fs/cifs"
	"osprof/internal/fsprof"
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"

	diskpkg "osprof/internal/disk"
	ext2pkg "osprof/internal/fs/ext2"
	reiserpkg "osprof/internal/fs/reiser"
)

// fingerprintFixture is a spec exercising most fields.
func fingerprintFixture() Spec {
	return Spec{
		Name:       "fixture",
		Kernel:     sim.Config{NumCPUs: 2, Preemptive: true, Seed: 7},
		CachePages: 512,
		Backend:    Ext2,
		Files:      []FileSpec{{Name: "zero", Size: vfs.PageSize}},
		Tree:       &workload.TreeSpec{Seed: 3, Dirs: 4},
		Instrument: Instrument{Point: FSLevel},
		Workloads: []Workload{
			{Kind: Grep, Path: "/src"},
			{Kind: RandomRead, Procs: 2, Amount: 100, Seed: 9},
		},
	}
}

func TestFingerprintStable(t *testing.T) {
	a, b := fingerprintFixture(), fingerprintFixture()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal specs produced different fingerprints:\n%s\nvs\n%s",
			a.Canonical(), b.Canonical())
	}
	if got := a.Fingerprint(); len(got) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex", got)
	}
}

// Any field change must change the fingerprint: runs are keyed by what
// produced them, so a collision between different configurations would
// silently merge unrelated archive histories.
func TestFingerprintSensitivity(t *testing.T) {
	mutations := map[string]func(*Spec){
		"name":            func(s *Spec) { s.Name = "other" },
		"setname":         func(s *Spec) { s.SetName = "other" },
		"label":           func(s *Spec) { s.Label = "corpus-label" },
		"trace":           func(s *Spec) { s.Trace = true },
		"loadprofile":     func(s *Spec) { s.LoadProfile = true },
		"backend":         func(s *Spec) { s.Backend = Reiser },
		"cachepages":      func(s *Spec) { s.CachePages = 513 },
		"superdaemon":     func(s *Spec) { s.SuperDaemon = true },
		"kernel.cpus":     func(s *Spec) { s.Kernel.NumCPUs = 4 },
		"kernel.quantum":  func(s *Spec) { s.Kernel.Quantum = 1 << 20 },
		"kernel.preempt":  func(s *Spec) { s.Kernel.Preemptive = false },
		"kernel.seed":     func(s *Spec) { s.Kernel.Seed = 8 },
		"kernel.tscskew":  func(s *Spec) { s.Kernel.TSCSkew = []int64{5} },
		"disk.blocks":     func(s *Spec) { s.Disk.Blocks = 99 },
		"disk.seek":       func(s *Spec) { s.Disk.TrackToTrackSeek = 1 },
		"ext2.llseek":     func(s *Spec) { s.Ext2.BuggyLlseek = true },
		"ext2.spread":     func(s *Spec) { s.Ext2.FileSpread = 2 },
		"reiser.journal":  func(s *Spec) { s.Reiser.JournalBlocks = 5 },
		"cifs.batch":      func(s *Spec) { s.CIFS.Client.BatchEntries = 32 },
		"cifs.window":     func(s *Spec) { s.CIFS.Server.Window = 9 },
		"cifs.net":        func(s *Spec) { s.CIFS.Net.MSS = 500 },
		"cifs.nodelack":   func(s *Spec) { s.CIFS.NoDelayedAck = true },
		"files.size":      func(s *Spec) { s.Files[0].Size = 8192 },
		"files.name":      func(s *Spec) { s.Files[0].Name = "one" },
		"files.extra":     func(s *Spec) { s.Files = append(s.Files, FileSpec{Name: "x"}) },
		"tree.seed":       func(s *Spec) { s.Tree.Seed = 4 },
		"tree.nil":        func(s *Spec) { s.Tree = nil },
		"flusher":         func(s *Spec) { s.Flusher = &FlusherSpec{Interval: 10} },
		"instr.point":     func(s *Spec) { s.Instrument.Point = UserLevel },
		"instr.mode":      func(s *Spec) { s.Instrument.Mode = fsprof.TSCOnly },
		"instr.costs":     func(s *Spec) { s.Instrument.Costs = &fsprof.Costs{CallPair: 1} },
		"instr.sampled":   func(s *Spec) { s.Instrument.Sampled = true; s.Instrument.SampleInterval = 5 },
		"workload.kind":   func(s *Spec) { s.Workloads[0].Kind = Walk },
		"workload.procs":  func(s *Spec) { s.Workloads[1].Procs = 3 },
		"workload.amount": func(s *Spec) { s.Workloads[1].Amount = 101 },
		"workload.seed":   func(s *Spec) { s.Workloads[1].Seed = 10 },
		"workload.think":  func(s *Spec) { s.Workloads[1].Think = 100 },
		"workload.cached": func(s *Spec) { s.Workloads[1].Cached = true },
		"workload.path":   func(s *Spec) { s.Workloads[0].Path = "/other" },
		"workload.name":   func(s *Spec) { s.Workloads[0].ProcName = "p" },
		"workload.drop":   func(s *Spec) { s.Workloads = s.Workloads[:1] },
		"workload.body":   func(s *Spec) { s.Workloads[0].Body = func(*sim.Proc, int, *Stack) {} },
		"inject.disk":     func(s *Spec) { s.Injections = &fault.Spec{Disk: &fault.DiskFaults{ReadErrorEvery: 3}} },
		"inject.diskrate": func(s *Spec) { s.Injections = &fault.Spec{Disk: &fault.DiskFaults{ReadErrorRate: 0.1}} },
		"inject.thrash":   func(s *Spec) { s.Injections = &fault.Spec{Thrash: &fault.CacheThrash{Interval: 1 << 18}} },
		"inject.hog":      func(s *Spec) { s.Injections = &fault.Spec{Hog: &fault.HogDaemon{Busy: 1 << 16}} },
	}
	base := fingerprintFixture().Fingerprint()
	for name, mutate := range mutations {
		spec := fingerprintFixture()
		mutate(&spec)
		if spec.Fingerprint() == base {
			t.Errorf("%s: mutation did not change the fingerprint", name)
		}
	}
}

// The pinned golden catches accidental canonicalization drift: any
// change to Canonical's encoding silently re-keys every archived run,
// so it must be deliberate (and documented as an archive migration).
func TestFingerprintGolden(t *testing.T) {
	spec := Matrix(1)[0] // ext2/grep at seed 1
	const want = "5f31d6b71d74f0a2f7732341a7696927c352333125c94c461498b46e26cf325a"
	if got := spec.Fingerprint(); got != want {
		t.Errorf("ext2/grep fingerprint drifted:\n got %s\nwant %s\ncanonical:\n%s",
			got, want, spec.Canonical())
	}
	if !strings.Contains(spec.Canonical(), `name="ext2/grep"`) {
		t.Error("canonical encoding lost the scenario name")
	}
	// Healthy specs must encode no fault lines at all: the Injections
	// field is presence-encoded precisely so that pre-fault archives
	// keep their keys.
	for _, s := range append(Matrix(1), Variants(1)...) {
		if s.Injections == nil && strings.Contains(s.Canonical(), "inject ") {
			t.Errorf("%s: healthy spec canonical encodes an inject line", s.Name)
		}
		// Likewise LoadProfile: unconditioned specs must not encode it.
		if !s.LoadProfile && strings.Contains(s.Canonical(), "loadprofile") {
			t.Errorf("%s: unconditioned spec canonical encodes a loadprofile line", s.Name)
		}
	}
}

// Canonical must cover every field of Spec and its nested config
// structs. The pinned field counts force whoever adds a field to
// extend the encoding (or consciously exclude the field here).
func TestFingerprintCoversEveryField(t *testing.T) {
	counts := map[string]struct {
		typ  reflect.Type
		want int
	}{
		"scenario.Spec":        {reflect.TypeOf(Spec{}), 19},
		"fault.Spec":           {reflect.TypeOf(fault.Spec{}), 3},
		"fault.DiskFaults":     {reflect.TypeOf(fault.DiskFaults{}), 7},
		"fault.CacheThrash":    {reflect.TypeOf(fault.CacheThrash{}), 2},
		"fault.HogDaemon":      {reflect.TypeOf(fault.HogDaemon{}), 4},
		"scenario.Instrument":  {reflect.TypeOf(Instrument{}), 6},
		"scenario.Workload":    {reflect.TypeOf(Workload{}), 12},
		"scenario.FileSpec":    {reflect.TypeOf(FileSpec{}), 2},
		"scenario.FlusherSpec": {reflect.TypeOf(FlusherSpec{}), 2},
		"scenario.CIFSSpec":    {reflect.TypeOf(CIFSSpec{}), 5},
		"sim.Config":           {reflect.TypeOf(sim.Config{}), 9},
		"disk.Config":          {reflect.TypeOf(diskpkg.Config{}), 10},
		"ext2.Config":          {reflect.TypeOf(ext2pkg.Config{}), 15},
		"reiser.Config":        {reflect.TypeOf(reiserpkg.Config{}), 3},
		"cifs.ClientConfig":    {reflect.TypeOf(cifs.ClientConfig{}), 3},
		"cifs.ServerConfig":    {reflect.TypeOf(cifs.ServerConfig{}), 2},
		"netsim.Config":        {reflect.TypeOf(netsim.Config{}), 5},
		"workload.TreeSpec":    {reflect.TypeOf(workload.TreeSpec{}), 7},
		"fsprof.Costs":         {reflect.TypeOf(fsprof.Costs{}), 3},
	}
	for name, c := range counts {
		if got := c.typ.NumField(); got != c.want {
			t.Errorf("%s now has %d fields (canonicalized: %d): extend Spec.Canonical for the new field(s), then update this count",
				name, got, c.want)
		}
	}
}

func TestVariantsArePreemptionPair(t *testing.T) {
	specs := Variants(1)
	on, off := specs[0], specs[1]
	if on.Name != "fig3/preempt" || off.Name != "fig3/nopreempt" {
		t.Fatalf("the Figure 3 pair must stay first: %q, %q", on.Name, off.Name)
	}
	if !on.Kernel.Preemptive || off.Kernel.Preemptive {
		t.Error("preemption pair misconfigured")
	}
	if on.Fingerprint() == off.Fingerprint() {
		t.Error("preemption variants share a fingerprint")
	}
	// Same variant at a different seed is a different world.
	if Variants(2)[0].Fingerprint() == on.Fingerprint() {
		t.Error("seed does not enter the fingerprint")
	}
}

// The variants form the labeled identification corpus: at least ten
// distinct labels, unique per spec, with unique fingerprints, and the
// corpus cells hold everything but the axis named by their label fixed.
func TestVariantsAreALabeledCorpus(t *testing.T) {
	specs := Variants(1)
	labels := make(map[string]bool, len(specs))
	fps := make(map[string]bool, len(specs))
	byLabel := make(map[string]Spec, len(specs))
	for _, s := range specs {
		if s.Label == "" {
			t.Errorf("%s: corpus variant without a label", s.Name)
		}
		if labels[s.Label] {
			t.Errorf("duplicate label %q", s.Label)
		}
		labels[s.Label] = true
		if fp := s.Fingerprint(); fps[fp] {
			t.Errorf("%s: duplicate fingerprint", s.Name)
		} else {
			fps[fp] = true
		}
		byLabel[s.Label] = s
	}
	if len(labels) < 10 {
		t.Fatalf("corpus has %d labels, need >= 10 for non-trivial classification", len(labels))
	}

	// The preemption axis is isolated: a preempt/nopreempt cell pair
	// differs only in the kernel's Preemptive bit (plus its name/label).
	pre, ok1 := byLabel["ext2-preempt-c256"]
	non, ok2 := byLabel["ext2-nopreempt-c256"]
	if !ok1 || !ok2 {
		t.Fatal("missing the ext2 c256 preemption pair")
	}
	if !pre.Kernel.Preemptive || non.Kernel.Preemptive {
		t.Error("corpus preemption pair misconfigured")
	}
	pre.Name, pre.Label, pre.Kernel.Preemptive = non.Name, non.Label, non.Kernel.Preemptive
	if pre.Fingerprint() != non.Fingerprint() {
		t.Error("corpus preemption pair differs in more than the preemption bit")
	}

	// The cache axis likewise: same cell at the two cache sizes.
	small, big := byLabel["reiser-preempt-c256"], byLabel["reiser-preempt-c8192"]
	if small.CachePages != 256 || big.CachePages != 8192 {
		t.Fatalf("cache pair sizes: %d, %d", small.CachePages, big.CachePages)
	}
	small.Name, small.Label, small.CachePages = big.Name, big.Label, big.CachePages
	if small.Fingerprint() != big.Fingerprint() {
		t.Error("corpus cache pair differs in more than the cache size")
	}
}
