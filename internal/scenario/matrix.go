package scenario

import (
	"fmt"

	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// Matrix returns the backend×workload scenario matrix: every
// file-system backend (ext2, reiser, cifs) crossed with the workload
// generators it supports, each as a self-contained Spec runnable
// outside the paper figures (`osprof scenarios`). seed offsets every
// kernel and workload seed, so `-seed` reruns the whole matrix in a
// different deterministic world.
//
// Backends expose different capability sets: Postmark needs create and
// unlink, which only the Ext2 backend implements; the Reiser backend's
// namespace is flat, so its grep and walk traverse the root instead of
// a tree. Every backend supports at least grep, walk, randomread, and
// readzero.
func Matrix(seed int64) []Spec {
	var specs []Spec
	for _, backend := range []Backend{Ext2, Reiser, CIFS} {
		for _, wl := range matrixWorkloads(backend, seed) {
			specs = append(specs, matrixSpec(backend, wl, seed))
		}
	}
	return specs
}

// MatrixIDs lists the matrix scenario names in matrix order.
func MatrixIDs() []string {
	specs := Matrix(0)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// matrixWorkloads returns the workloads a backend supports, one Spec
// per backend×workload cell.
func matrixWorkloads(backend Backend, seed int64) []Workload {
	root := "/src"
	if backend == Reiser {
		root = "/" // flat namespace
	}
	// The CIFS client multiplexes a single connection, so only one
	// process may issue RPCs at a time; the local backends contend two
	// random readers against each other (the §6.1 setup).
	rrProcs := 2
	if backend == CIFS {
		rrProcs = 1
	}
	wls := []Workload{
		{Kind: Grep, Path: root},
		{Kind: Walk, Path: root},
		{Kind: RandomRead, Procs: rrProcs, Amount: 250, Seed: seed + 1, Think: 300_000},
		{Kind: ReadZero, Amount: 1_500, Path: "/zero"},
	}
	if backend == Ext2 {
		// Postmark needs create/unlink, which the other backends do
		// not implement.
		wls = append(wls, Workload{Kind: Postmark, Files: 60, Amount: 300, Seed: seed + 2})
	}
	return wls
}

// matrixSpec builds the standard fixture for one backend×workload
// cell: a modest machine, a populated file system, and full FS-level
// profiling.
func matrixSpec(backend Backend, wl Workload, seed int64) Spec {
	spec := Spec{
		Name:    fmt.Sprintf("%s/%s", backend, wl.Kind),
		Backend: backend,
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          seed + int64(backend)*101 + int64(wl.Kind),
		},
		CachePages: 1 << 13,
		Instrument: Instrument{Point: FSLevel},
		Workloads:  []Workload{wl},
	}
	switch backend {
	case Ext2:
		spec.Tree = &workload.TreeSpec{
			Seed:           seed + 100,
			Dirs:           18,
			FilesPerDirMin: 6,
			FilesPerDirMax: 18,
			BigDirEvery:    4,
		}
	case Reiser:
		for i := 0; i < 20; i++ {
			spec.Files = append(spec.Files,
				FileSpec{Name: fmt.Sprintf("f%03d", i), Size: 4 * vfs.PageSize})
		}
	case CIFS:
		spec.Kernel.NumCPUs = 2 // one client CPU, one server CPU
		spec.Tree = &workload.TreeSpec{
			Seed:           seed + 200,
			Dirs:           8,
			FilesPerDirMin: 4,
			FilesPerDirMax: 12,
			BigDirEvery:    3,
		}
	}
	// Every backend carries the shared target files of the randomread
	// and readzero workloads.
	spec.Files = append(spec.Files,
		FileSpec{Name: "bigfile", Size: 512 * vfs.PageSize},
		FileSpec{Name: "zero", Size: vfs.PageSize},
	)
	return spec
}
