package scenario

import (
	"fmt"

	"osprof/internal/sim"
	"osprof/internal/workload"
)

// Kind names a workload generator from internal/workload.
type Kind int

const (
	// Custom runs the Workload's Body function.
	Custom Kind = iota

	// Grep recursively reads every directory and file under Path
	// (default /src).
	Grep

	// Postmark runs the mail-server benchmark: Files pool files,
	// Amount transactions, under Path (default /postmark).
	Postmark

	// RandomRead issues Amount llseek+read pairs over Path (default
	// /bigfile) with think time Think.
	RandomRead

	// ReadZero issues Amount zero-byte reads of Path (default /zero).
	ReadZero

	// Clone runs the Figure 1 clone storm: every process performs
	// Amount clone calls against a shared process-table semaphore,
	// captured from user level. Needs no file system.
	Clone

	// Walk recursively lists directories and stats every entry under
	// Path without reading data (a `find`-style metadata workload).
	Walk
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Custom:
		return "custom"
	case Grep:
		return "grep"
	case Postmark:
		return "postmark"
	case RandomRead:
		return "randomread"
	case ReadZero:
		return "readzero"
	case Clone:
		return "clone"
	case Walk:
		return "walk"
	}
	return "unknown"
}

// Workload declares one simulated workload: Procs processes all
// running the same generator. The scalar knobs (Amount, Seed, Think,
// Path, Files) map onto the generator's parameters; zero values take
// the generator's defaults.
type Workload struct {
	// Kind selects the generator; Custom runs Body.
	Kind Kind

	// ProcName overrides the simulated process name (default: the
	// kind name; experiments keep their historical names, e.g. fig3's
	// "reader", to preserve determinism).
	ProcName string

	// Procs is the process fan-out (default 1).
	Procs int

	// Amount is the kind's primary count: requests (RandomRead,
	// ReadZero), transactions (Postmark), or clone calls (Clone).
	Amount int

	// Files is Postmark's initial file-pool size.
	Files int

	// Seed is the base seed; process i uses Seed + i.
	Seed int64

	// Think is the user-CPU think/work time between requests in
	// cycles (RandomRead's ThinkTime, ReadZero's UserWork).
	Think uint64

	// Cached routes RandomRead through the page cache instead of
	// direct I/O (workload.RandomRead.Cached), making the profile's
	// cache-hit/disk peak balance track the configured cache size.
	Cached bool

	// Path is the workload's target (root directory or file).
	Path string

	// Observe receives every request's latency and preemption flag
	// (ReadZero only; used by the Figure 3 validation).
	Observe func(latency uint64, preempted bool)

	// Collect, when set, receives the generator's stats value as each
	// process finishes: workload.GrepStats, workload.PostmarkStats,
	// workload.RandomReadStats, workload.ReadZeroStats,
	// workload.WalkStats, or (for Clone, once per process) the shared
	// *core.Profile.
	Collect func(stats any)

	// Body is the Custom kind's process body.
	Body func(p *sim.Proc, idx int, st *Stack)
}

// spawn prepares the kind's shared state and spawns the processes.
func (st *Stack) spawn(w *Workload) {
	procs := w.Procs
	if procs == 0 {
		procs = 1
	}
	name := w.ProcName
	if name == "" {
		name = w.Kind.String()
	}
	body := st.body(w, procs)
	for i := 0; i < procs; i++ {
		idx := i
		st.K.Spawn(name, func(p *sim.Proc) { body(p, idx) })
	}
}

// body builds the per-process function for a workload, creating any
// state the processes share (the clone storm's semaphore and profile).
func (st *Stack) body(w *Workload, procs int) func(p *sim.Proc, idx int) {
	collect := func(stats any) {
		if w.Collect != nil {
			w.Collect(stats)
		}
	}
	switch w.Kind {
	case Custom:
		if w.Body == nil {
			panic(fmt.Sprintf("scenario %q: custom workload without Body", st.Spec.Name))
		}
		return func(p *sim.Proc, idx int) { w.Body(p, idx, st) }
	case Grep:
		g := &workload.Grep{Sys: st.Sys, Root: w.Path}
		return func(p *sim.Proc, idx int) { collect(g.Run(p)) }
	case Postmark:
		return func(p *sim.Proc, idx int) {
			dir := w.Path
			if procs > 1 {
				// Separate working directories keep concurrent
				// instances from colliding on file names.
				if dir == "" {
					dir = "/postmark"
				}
				dir = fmt.Sprintf("%s%d", dir, idx)
			}
			pm := &workload.Postmark{
				Sys:          st.Sys,
				Dir:          dir,
				Files:        w.Files,
				Transactions: w.Amount,
				Seed:         w.Seed + int64(idx),
			}
			collect(pm.Run(p))
		}
	case RandomRead:
		return func(p *sim.Proc, idx int) {
			rr := &workload.RandomRead{
				Sys:       st.Sys,
				Path:      w.Path,
				Requests:  w.Amount,
				Seed:      w.Seed + int64(idx),
				ThinkTime: w.Think,
				Cached:    w.Cached,
			}
			collect(rr.Run(p))
		}
	case ReadZero:
		return func(p *sim.Proc, idx int) {
			rz := &workload.ReadZero{
				Sys:      st.Sys,
				Path:     w.Path,
				Requests: w.Amount,
				UserWork: w.Think,
				Observe:  w.Observe,
			}
			collect(rz.Run(p))
		}
	case Clone:
		cs := &workload.CloneStorm{
			K:             st.K,
			Procs:         procs,
			ClonesPerProc: w.Amount,
			ThinkTime:     w.Think,
		}
		cs.Prepare()
		return func(p *sim.Proc, idx int) {
			cs.RunProc(p, idx)
			collect(cs.Profile)
		}
	case Walk:
		wk := &workload.Walk{Sys: st.Sys, Root: w.Path, Think: w.Think}
		return func(p *sim.Proc, idx int) { collect(wk.Run(p)) }
	}
	panic(fmt.Sprintf("scenario %q: unknown workload kind %d", st.Spec.Name, w.Kind))
}
