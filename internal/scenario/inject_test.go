package scenario

import (
	"bytes"
	"testing"

	"osprof/internal/core"
	"osprof/internal/fault"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// degradedFixture is a small ext2 cell with every fault source active,
// rate-based disk triggers included so the seeded fault RNG is on the
// hot path.
func degradedFixture(seed int64) Spec {
	spec := corpusCell(Ext2, true, 256, seed)
	spec.Injections = &fault.Spec{
		Disk:   &fault.DiskFaults{ReadErrorEvery: 3, ReadErrorRate: 0.1, SpikeRate: 0.1},
		Thrash: &fault.CacheThrash{Interval: 1 << 19},
		Hog:    &fault.HogDaemon{Busy: 1 << 16, Sleep: 1 << 18},
	}
	return spec
}

func setBytes(t *testing.T, set *core.Set) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := core.WriteSet(&b, set); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// Same seed + same injection spec => byte-identical profiles and
// simulated clock: injected worlds are as deterministic as healthy
// ones (rate faults draw from a seeded RNG, not wall-clock entropy).
func TestInjectedRunDeterministic(t *testing.T) {
	a, err := RunSpec(degradedFixture(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(degradedFixture(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.K.Now() != b.K.Now() {
		t.Errorf("injected reruns diverged: clock %d vs %d", a.K.Now(), b.K.Now())
	}
	if !bytes.Equal(setBytes(t, a.Set), setBytes(t, b.Set)) {
		t.Error("injected reruns produced different profile sets")
	}
	if a.DiskFaults == nil || a.DiskFaults.Stats().RecoveredErrors == 0 {
		t.Errorf("disk injector idle: %+v", a.DiskFaults.Stats())
	}
	if a.Cache.Stats().ForcedEvictions == 0 {
		t.Error("thrash daemon evicted nothing")
	}
	// A different seed is a different degraded world.
	c, err := RunSpec(degradedFixture(8))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(setBytes(t, a.Set), setBytes(t, c.Set)) {
		t.Error("different seeds produced identical injected profiles")
	}
}

// An injected spec keeps its name (the watch layer matches ingests to
// baselines by name) but fingerprints as a different world, and its
// profiles actually differ from the healthy twin's.
func TestInjectedTwinKeepsNameChangesWorld(t *testing.T) {
	healthy := corpusCell(Ext2, true, 256, 3)
	degraded := healthy
	degraded.Injections, _ = fault.Preset("disk-flaky")

	if healthy.Name != degraded.Name {
		t.Fatalf("injection changed the name: %q vs %q", healthy.Name, degraded.Name)
	}
	if healthy.Fingerprint() == degraded.Fingerprint() {
		t.Fatal("injected twin shares the healthy fingerprint")
	}
	h, err := RunSpec(healthy)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunSpec(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(setBytes(t, h.Set), setBytes(t, d.Set)) {
		t.Error("disk-flaky injection left the profiles untouched")
	}
	if d.K.Now() <= h.K.Now() {
		t.Errorf("degraded run finished no later than healthy: %d vs %d", d.K.Now(), h.K.Now())
	}
}

// The hog's LockPath resolves through the raw VFS and holds the inode
// semaphore during bursts. On a second CPU the hog steals no victim
// CPU time, so the lock is the only channel through which it can
// stretch a profiled operation: buggy llseek takes i_sem (§6.1) and
// blocks mid-syscall until the burst ends.
func TestInjectedHogLockContention(t *testing.T) {
	maxLlseek := func(lockPath string) uint64 {
		var max uint64
		kernel := corpusKernel(false, 5)
		kernel.NumCPUs = 2 // hog burns its own CPU; only i_sem couples
		spec := Spec{
			Name:       "inject/lockhog",
			Kernel:     kernel,
			Backend:    Ext2,
			CachePages: 256,
			Files:      []FileSpec{{Name: "bigfile", Size: 4 * vfs.PageSize}},
			Workloads: []Workload{{Kind: Custom, Procs: 1,
				Body: func(p *sim.Proc, _ int, st *Stack) {
					f, err := st.VFS.Open(p, "/bigfile", false)
					if err != nil {
						t.Errorf("open victim file: %v", err)
						return
					}
					defer st.VFS.Close(p, f)
					for i := 0; i < 500; i++ {
						t0 := p.Now()
						st.VFS.Llseek(p, f, 0, vfs.SeekSet)
						if d := p.Now() - t0; d > max {
							max = d
						}
						p.ExecUser(100)
					}
				}}},
		}
		spec.Ext2.BuggyLlseek = true
		if lockPath != "" {
			spec.Injections = &fault.Spec{Hog: &fault.HogDaemon{
				Busy: 1 << 16, Sleep: 1 << 18, LockPath: lockPath,
			}}
		}
		if _, err := RunSpec(spec); err != nil {
			t.Fatal(err)
		}
		return max
	}
	free, locked := maxLlseek(""), maxLlseek("/bigfile")
	if locked < free+1<<15 {
		t.Errorf("max llseek latency %d cycles with the lock-holding hog, %d without: i_sem was never contended", locked, free)
	}
}

// Fault programs that need stack layers the backend doesn't provide
// are Build-time errors, not silent no-ops.
func TestInjectedBuildValidation(t *testing.T) {
	cases := map[string]*fault.Spec{
		"disk":    {Disk: &fault.DiskFaults{ReadErrorEvery: 2}},
		"thrash":  {Thrash: &fault.CacheThrash{Interval: 1 << 19}},
		"hoglock": {Hog: &fault.HogDaemon{Busy: 1 << 16, LockPath: "/zero"}},
	}
	for name, inj := range cases {
		spec := Spec{Name: "inject/" + name, Backend: NoFS, Injections: inj}
		if _, err := Build(spec); err == nil {
			t.Errorf("%s injection on NoFS built without error", name)
		}
	}
	// A lockless hog needs no backend at all: it only burns CPU.
	spec := Spec{
		Name:       "inject/hogfree",
		Backend:    NoFS,
		Injections: &fault.Spec{Hog: &fault.HogDaemon{Busy: 1 << 16, Sleep: 1 << 18}},
		Workloads: []Workload{{Kind: Custom, Procs: 1,
			Body: func(p *sim.Proc, _ int, _ *Stack) { p.Sleep(1 << 20) }}},
	}
	if _, err := RunSpec(spec); err != nil {
		t.Errorf("lockless hog on NoFS: %v", err)
	}
}
