package report

import (
	"fmt"
	"io"

	"osprof/internal/watch"
)

// Watch renders a watch verdict in the repository's text style: the
// verdict line, the drifted operations (strongest first), and — when
// the classifier attributed the drift — the attribution line.
func Watch(w io.Writer, rep *watch.Report) {
	name := rep.Name
	if name == "" {
		name = "(unnamed run)"
	}
	fmt.Fprintf(w, "watch %s", name)
	if rep.BaselineID != "" {
		fmt.Fprintf(w, " baseline=%.12s", rep.BaselineID)
	}
	fmt.Fprintln(w)
	switch rep.Verdict {
	case watch.OK:
		fmt.Fprintf(w, "verdict: OK — %s\n", rep.Detail)
	case watch.Degraded:
		fmt.Fprintf(w, "verdict: DEGRADED %s — %s\n", rep.Label, rep.Detail)
	default:
		fmt.Fprintf(w, "verdict: ANOMALY — %s\n", rep.Detail)
	}
	if rep.Diff != nil {
		if changed := rep.Diff.ChangedOps(); len(changed) > 0 {
			fmt.Fprintln(w, "drifted operations:")
			fmt.Fprintf(w, "  %-16s %-14s %8s %10s %10s\n",
				"op", "verdict", "score", "count(A)", "count(B)")
			for _, d := range changed {
				fmt.Fprintf(w, "  %-16s %-14s %8.3g %10d %10d\n",
					d.Op, d.Verdict, d.Score, d.CountA, d.CountB)
			}
		}
	}
	if id := rep.Identify; id != nil && len(id.Ranking) > 0 {
		fmt.Fprintln(w, "nearest corpus labels:")
		for i, ld := range id.Ranking {
			if i == 3 {
				break
			}
			fmt.Fprintf(w, "  %2d. %-32s distance %.4g\n", i+1, ld.Label, ld.Distance)
		}
	}
}
