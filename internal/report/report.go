// Package report renders OSprof profiles for human analysis: ASCII
// histograms in the style of the paper's figures (logarithmic x axis of
// bucket numbers, logarithmic y axis of operation counts, latency
// labels above the plot), time-sampled "3D" profiles like Figure 9, and
// gnuplot scripts like the ones that generated the paper's figures
// automatically (§4 "Representing results").
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/summary"
)

// Options controls histogram rendering.
type Options struct {
	// Height is the number of body rows (default 8).
	Height int

	// MinBucket and MaxBucket clip the x axis; with MaxBucket 0 the
	// range is fitted to the data (padded to multiples of 5 like the
	// paper's plots).
	MinBucket, MaxBucket int

	// NoLabels suppresses the average-bucket-latency labels printed
	// above the plot. (The zero value keeps labels on, the historical
	// default; a positive `Labels bool` could never be disabled
	// because withDefaults forced it back to true.)
	NoLabels bool

	// Quantiles adds the streaming-summary quantile line (p50..p999,
	// interpolated latencies) under each histogram header.
	Quantiles bool
}

func (o Options) withDefaults() Options {
	if o.Height == 0 {
		o.Height = 8
	}
	return o
}

// axisRange fits [lo,hi] to the populated buckets, padded outward to
// multiples of 5 (mirroring the paper's 5..30 axes).
func axisRange(p *core.Profile, o Options) (int, int) {
	lo, hi := o.MinBucket, o.MaxBucket
	if hi == 0 {
		plo, phi, ok := p.Range()
		if !ok {
			return 5, 30
		}
		lo = plo / 5 * 5
		hi = (phi/5 + 1) * 5
	}
	if hi <= lo {
		hi = lo + 5
	}
	return lo, hi
}

// Profile renders one profile as an ASCII histogram.
//
//	READDIR                            n=18231 mean=24815
//	        28ns      903ns      28us     925us
//	10^4 |       #
//	10^3 |       ##        #
//	...
//	     +----5----10---15---20---25---30
func Profile(w io.Writer, p *core.Profile, o Options) {
	o = o.withDefaults()
	lo, hi := axisRange(p, o)

	fmt.Fprintf(w, "%s  n=%d mean=%s\n", strings.ToUpper(p.Op), p.Count,
		cycles.Format(p.Mean()))
	if o.Quantiles && p.Count > 0 {
		s := summary.Of(p)
		fmt.Fprint(w, "     ")
		for i, name := range summary.LevelNames {
			fmt.Fprintf(w, " %s=%s", name, cycles.Format(s.QLatency[i]))
		}
		fmt.Fprintln(w)
	}
	if !o.NoLabels {
		fmt.Fprint(w, "      ")
		for b := lo; b <= hi; b++ {
			if b%5 == 0 {
				label := cycles.Format(core.BucketMean(b))
				fmt.Fprintf(w, "%-5s", label)
			} else if (b-lo)%5 != 0 && b%5 > 0 && (b%5) >= 1 {
				// label columns already consumed by %-5s
			}
		}
		fmt.Fprintln(w)
	}

	// Bar heights on a log10 scale: row r is filled if
	// log10(count)+1 > r * maxLog/height.
	maxLog := 0.0
	for b := lo; b <= hi && b < len(p.Buckets); b++ {
		if c := p.Buckets[b]; c > 0 {
			if l := math.Log10(float64(c)) + 1; l > maxLog {
				maxLog = l
			}
		}
	}
	if maxLog == 0 {
		maxLog = 1
	}
	for row := o.Height; row >= 1; row-- {
		cut := float64(row-1) * maxLog / float64(o.Height)
		// y-axis tick: power of 10 at this row.
		fmt.Fprintf(w, "10^%d |", int(cut))
		for b := lo; b <= hi; b++ {
			c := uint64(0)
			if b >= 0 && b < len(p.Buckets) {
				c = p.Buckets[b]
			}
			if c > 0 && math.Log10(float64(c))+1 > cut {
				fmt.Fprint(w, "#")
			} else {
				fmt.Fprint(w, " ")
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "     +")
	for b := lo; b <= hi; b++ {
		if b%5 == 0 {
			fmt.Fprintf(w, "%-5d", b)
		} else if (b%5) != 0 && (b-1)%5 >= 4 {
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "      bucket: floor(log2(latency in CPU cycles))\n")
}

// Set renders every profile of a set ordered by total latency.
func Set(w io.Writer, s *core.Set, o Options) {
	fmt.Fprintf(w, "=== profile set %q: %d ops, %d operations, total latency %s ===\n",
		s.Name, s.Len(), s.TotalOps(), cycles.Format(s.TotalLatency()))
	for _, p := range s.ByTotalLatency() {
		if p.Count == 0 {
			continue
		}
		Profile(w, p, o)
		fmt.Fprintln(w)
	}
}

// timelineGlyph buckets a cell population the way Figure 9's legend
// does: 1-10 operations, 11-100, and more than 100.
func timelineGlyph(c uint64) byte {
	switch {
	case c == 0:
		return ' '
	case c <= 10:
		return '.'
	case c <= 100:
		return 'o'
	default:
		return '#'
	}
}

// Timeline renders a sampled profile as the paper's Figure 9: x axis is
// the bucket number, y axis is elapsed time (one row per segment), and
// the cell glyph encodes the operation count (' ' none, '.' 1-10,
// 'o' 11-100, '#' >100).
func Timeline(w io.Writer, s *core.Sampled) {
	fmt.Fprintf(w, "%s  sampled every %s\n", strings.ToUpper(s.Op),
		cycles.Format(s.Interval))
	lo, hi := 64, 0
	for _, seg := range s.Segments() {
		if slo, shi, ok := seg.Range(); ok {
			if slo < lo {
				lo = slo
			}
			if shi > hi {
				hi = shi
			}
		}
	}
	if hi == 0 && lo == 64 {
		fmt.Fprintln(w, "(empty)")
		return
	}
	lo = lo / 5 * 5
	hi = (hi/5 + 1) * 5
	for i, seg := range s.Segments() {
		fmt.Fprintf(w, "%7.2fs |", cycles.ToSeconds(s.Interval)*float64(i))
		for b := lo; b <= hi && b < len(seg.Buckets); b++ {
			fmt.Fprintf(w, "%c", timelineGlyph(seg.Buckets[b]))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "         +")
	for b := lo; b <= hi; b += 5 {
		fmt.Fprintf(w, "%-5d", b)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "          legend: '.' 1-10 ops, 'o' 11-100, '#' >100")
}

// Comparison renders selector pair reports as a table.
func Comparison(w io.Writer, reports []analysis.PairReport) {
	fmt.Fprintf(w, "%-18s %8s %8s %7s %7s %8s  %s\n",
		"OP", "OPS-A", "OPS-B", "PEAKS-A", "PEAKS-B", "SCORE", "VERDICT")
	for _, r := range reports {
		verdict := "-"
		switch {
		case r.Skipped:
			verdict = "skipped: " + r.Reason
		case r.Interesting:
			verdict = "INTERESTING"
		}
		fmt.Fprintf(w, "%-18s %8d %8d %7d %7d %8.3f  %s\n",
			r.Op, r.A.Count, r.B.Count, len(r.PeaksA), len(r.PeaksB),
			r.Score, verdict)
	}
}

// Gnuplot writes a self-contained gnuplot script reproducing the
// paper's bar-plot style for one profile (log2 x buckets, log10 y).
func Gnuplot(w io.Writer, p *core.Profile) {
	fmt.Fprintf(w, "# OSprof profile %q: gnuplot script\n", p.Op)
	fmt.Fprintf(w, "set title %q\n", strings.ToUpper(p.Op))
	fmt.Fprintln(w, `set xlabel "Bucket number: floor(log2(latency in CPU cycles))"`)
	fmt.Fprintln(w, `set ylabel "Number of operations"`)
	fmt.Fprintln(w, "set logscale y 10")
	fmt.Fprintln(w, "set boxwidth 0.9")
	fmt.Fprintln(w, "set style fill solid 0.6")
	fmt.Fprintln(w, `plot "-" using 1:2 with boxes notitle`)
	for b, c := range p.Buckets {
		if c > 0 {
			fmt.Fprintf(w, "%d %d\n", b, c)
		}
	}
	fmt.Fprintln(w, "e")
}
