package report

import (
	"encoding/json"
	"io"
	"sort"

	"osprof/internal/store"
)

// This file renders archive state as versioned JSON documents: the
// machine-readable counterpart of the ASCII histograms, shared by the
// CLI's -json paths and the `osprof serve` HTTP service so both speak
// the same schema.

// JSON schema identifiers for the archive listing documents.
const (
	RunsSchema      = "osprof-runs/v1"
	BaselinesSchema = "osprof-baselines/v1"
	CorpusSchema    = "osprof-corpus/v1"
)

// JSON writes v as indented JSON with a trailing newline — the one
// encoder shape used by every -json CLI path and service response.
func JSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// RunEntry is the JSON shape of one archived run. Summary is the
// opt-in triage column (GET /v1/runs?summary=1); plain listings omit
// it, so existing documents are byte-identical.
type RunEntry struct {
	Seq         int    `json:"seq"`
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Name        string `json:"name"`

	// Label is the corpus label mirrored in the archive index (absent
	// for unlabeled runs, keeping their documents byte-identical).
	Label string `json:"label,omitempty"`

	Summary *RunSummary `json:"summary,omitempty"`
}

// RunListDoc is the archive listing document. A paged listing (the
// service's GET /v1/runs) marks truncation and carries the cursor for
// the next page; a complete listing omits both fields, so existing
// documents are byte-identical.
type RunListDoc struct {
	Schema string     `json:"schema"`
	Runs   []RunEntry `json:"runs"`

	// Truncated is set when more entries follow this page; pass
	// NextAfter as ?after= to fetch them.
	Truncated bool `json:"truncated,omitempty"`
	NextAfter int  `json:"next_after,omitempty"`
}

// RunList converts archive index entries into the versioned listing
// document, preserving record order.
func RunList(entries []store.Entry) RunListDoc {
	doc := RunListDoc{Schema: RunsSchema, Runs: []RunEntry{}}
	for _, e := range entries {
		doc.Runs = append(doc.Runs, RunEntry{
			Seq: e.Seq, ID: e.ID, Fingerprint: e.Fingerprint, Name: e.Name,
			Label: e.Label,
		})
	}
	return doc
}

// RunPage converts one page of archive index entries into the listing
// document, recording the truncation marker and next cursor when more
// entries follow.
func RunPage(entries []store.Entry, more bool) RunListDoc {
	doc := RunList(entries)
	if more && len(entries) > 0 {
		doc.Truncated = true
		doc.NextAfter = entries[len(entries)-1].Seq
	}
	return doc
}

// CorpusEntry is the JSON shape of one labeled corpus scenario.
type CorpusEntry struct {
	ID    string `json:"id"`
	Label string `json:"label"`
}

// CorpusListDoc is the `osprof corpus list -json` document.
type CorpusListDoc struct {
	Schema    string        `json:"schema"`
	Scenarios []CorpusEntry `json:"scenarios"`
}

// CorpusList converts the corpus registry's scenario ids and labels
// into the versioned listing document, preserving registry order.
func CorpusList(ids []string, labels map[string]string) CorpusListDoc {
	doc := CorpusListDoc{Schema: CorpusSchema, Scenarios: []CorpusEntry{}}
	for _, id := range ids {
		doc.Scenarios = append(doc.Scenarios, CorpusEntry{ID: id, Label: labels[id]})
	}
	return doc
}

// BaselineEntry is the JSON shape of one blessed baseline pointer.
type BaselineEntry struct {
	Fingerprint string `json:"fingerprint"`
	Run         string `json:"run"`
}

// BaselineListDoc is the baseline listing document.
type BaselineListDoc struct {
	Schema    string          `json:"schema"`
	Baselines []BaselineEntry `json:"baselines"`
}

// BaselineList converts the archive's fingerprint -> run ID baseline
// map into the versioned listing document, sorted by fingerprint so
// the rendering is deterministic.
func BaselineList(baselines map[string]string) BaselineListDoc {
	doc := BaselineListDoc{Schema: BaselinesSchema, Baselines: []BaselineEntry{}}
	fps := make([]string, 0, len(baselines))
	for fp := range baselines {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		doc.Baselines = append(doc.Baselines, BaselineEntry{Fingerprint: fp, Run: baselines[fp]})
	}
	return doc
}
