package report

import (
	"bytes"
	"strings"
	"testing"

	"osprof/internal/core"
	"osprof/internal/diff"
)

// Labels could historically never be disabled: withDefaults forced the
// flag back on. NoLabels must actually suppress the label row while
// the zero value keeps the historical default rendering.
func TestNoLabelsDisablesLabelRow(t *testing.T) {
	var withLabels, without bytes.Buffer
	Profile(&withLabels, sample(), Options{})
	Profile(&without, sample(), Options{NoLabels: true})

	if !strings.Contains(withLabels.String(), "ns") {
		t.Errorf("default rendering lost the latency labels:\n%s", withLabels.String())
	}
	// The label row (latency units above the plot) must be gone; the
	// x-axis caption at the bottom still mentions cycles.
	lines := strings.Split(without.String(), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[1], "10^") {
		t.Errorf("NoLabels did not suppress the label row:\n%s", without.String())
	}
	if len(without.String()) >= len(withLabels.String()) {
		t.Error("NoLabels output not smaller than labeled output")
	}
}

func twoSets() (*core.Set, *core.Set) {
	a, b := core.NewSet("before"), core.NewSet("after")
	for i := 0; i < 1000; i++ {
		a.Record("read", 100)
		b.Record("read", 100)
	}
	for i := 0; i < 40; i++ {
		b.Record("read", 1<<20) // new peak in B
	}
	for i := 0; i < 500; i++ {
		a.Record("write", 4_000)
		b.Record("write", 4_000)
	}
	return a, b
}

func TestSideBySideAligned(t *testing.T) {
	a, b := twoSets()
	var buf bytes.Buffer
	SideBySide(&buf, a.Lookup("read"), b.Lookup("read"), Options{})
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few rows:\n%s", out)
	}
	gutter := strings.Index(lines[0], "   |   ")
	if gutter < 0 {
		t.Fatalf("no gutter in %q", lines[0])
	}
	for _, l := range lines {
		if strings.Index(l, "   |   ") != gutter {
			t.Errorf("gutter misaligned: %q", l)
		}
	}
	if strings.Count(out, "READ") != 2 {
		t.Errorf("both columns must carry the op title:\n%s", out)
	}
}

func TestDiffRendering(t *testing.T) {
	a, b := twoSets()
	rep := diff.New().Sets(a, b)
	rep.FingerprintA, rep.FingerprintB = strings.Repeat("a", 64), strings.Repeat("b", 64)
	var buf bytes.Buffer
	Diff(&buf, rep, a, b, Options{})
	out := buf.String()
	for _, want := range []string{
		`diff "before" -> "after"`,
		"aaaaaaaaaaaa -> bbbbbbbbbbbb", // abbreviated fingerprints
		"VERDICT",
		"new-peak",
		"unchanged",
		"   |   ", // side-by-side gutter for the changed op
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff rendering missing %q:\n%s", want, out)
		}
	}
	// Table-only mode renders no histograms.
	var table bytes.Buffer
	Diff(&table, rep, nil, nil, Options{})
	if strings.Contains(table.String(), "   |   ") {
		t.Error("table-only mode rendered histograms")
	}
}

func TestMatrixDiffRendering(t *testing.T) {
	a, b := twoSets()
	eng := diff.New()
	m := eng.Matrix(
		[]*core.Run{{Set: a}},
		[]*core.Run{{Set: func() *core.Set { s := b.Clone(); s.Name = "before"; return s }()}},
	)
	var buf bytes.Buffer
	MatrixDiff(&buf, m)
	out := buf.String()
	if !strings.Contains(out, "DIFF before") && !strings.Contains(out, "DIFF") {
		t.Errorf("changed pair not flagged:\n%s", out)
	}
	if !strings.Contains(out, "total: 1 changed") {
		t.Errorf("missing total:\n%s", out)
	}

	// All-clean matrix.
	clean := eng.Matrix([]*core.Run{{Set: a}}, []*core.Run{{Set: a.Clone()}})
	buf.Reset()
	MatrixDiff(&buf, clean)
	if !strings.Contains(buf.String(), "ok   before") ||
		!strings.Contains(buf.String(), "total: 0 changed") {
		t.Errorf("clean matrix rendering:\n%s", buf.String())
	}
}
