package report

import (
	"fmt"
	"io"
	"strings"

	"osprof/internal/cycles"
	"osprof/internal/summary"
)

// This file renders the streaming summary tier (internal/summary) for
// humans and machines: the osprof-summary/v1 JSON document served by
// GET /v1/summary and `osprof summary -json`, its text rendering, and
// the compact per-run summary column the archive listing can carry.

// SummarySchema versions the summary document.
const SummarySchema = "osprof-summary/v1"

// SummaryOpDoc is one operation's digest on the wire: the quantile
// surface in cycles plus the structural features. The whole-set rollup
// uses the operation name "*".
type SummaryOpDoc struct {
	Op    string `json:"op"`
	Count uint64 `json:"count"`
	Total uint64 `json:"total"`
	Min   uint64 `json:"min,omitempty"`
	Max   uint64 `json:"max,omitempty"`

	// ModeBucket is the most populated bucket (-1 when empty), Buckets
	// the populated-bucket count, Peaks the distribution's mode count
	// under the analysis package's default segmentation.
	ModeBucket int `json:"mode_bucket"`
	Buckets    int `json:"buckets"`
	Peaks      int `json:"peaks"`

	// The sampled quantiles, interpolated to latencies in cycles.
	P50  uint64 `json:"p50"`
	P90  uint64 `json:"p90"`
	P95  uint64 `json:"p95"`
	P99  uint64 `json:"p99"`
	P999 uint64 `json:"p999"`
}

// SummaryDoc is the osprof-summary/v1 document: one run's set digest.
type SummaryDoc struct {
	Schema      string `json:"schema"`
	ID          string `json:"id,omitempty"` // run content address
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint,omitempty"`
	R           int    `json:"r"`

	Overall SummaryOpDoc   `json:"overall"`
	Ops     []SummaryOpDoc `json:"ops"`

	// The hottest operations by count and by total latency, hottest
	// first.
	HotByCount   []string `json:"hot_by_count,omitempty"`
	HotByLatency []string `json:"hot_by_latency,omitempty"`
}

// summaryOp converts one digest to its wire shape.
func summaryOp(s *summary.Summary) SummaryOpDoc {
	return SummaryOpDoc{
		Op: s.Op, Count: s.Count, Total: s.Total, Min: s.Min, Max: s.Max,
		ModeBucket: s.Mode, Buckets: s.Filled, Peaks: s.Peaks,
		P50: s.QLatency[0], P90: s.QLatency[1], P95: s.QLatency[2],
		P99: s.QLatency[3], P999: s.QLatency[4],
	}
}

// SummaryOf converts a set digest to the versioned document. The
// caller fills ID and Fingerprint (the digest does not know them).
func SummaryOf(ss *summary.SetSummary) SummaryDoc {
	doc := SummaryDoc{
		Schema: SummarySchema, Name: ss.Name, R: ss.R,
		Overall: summaryOp(&ss.Overall), Ops: []SummaryOpDoc{},
	}
	for i := range ss.Ops {
		doc.Ops = append(doc.Ops, summaryOp(&ss.Ops[i]))
	}
	for _, i := range ss.TopByCount {
		doc.HotByCount = append(doc.HotByCount, ss.Ops[i].Op)
	}
	for _, i := range ss.TopByLatency {
		doc.HotByLatency = append(doc.HotByLatency, ss.Ops[i].Op)
	}
	return doc
}

// RenderSummary writes the document as the text table `osprof summary`
// prints: one row per operation plus the whole-set rollup.
func RenderSummary(w io.Writer, doc SummaryDoc) {
	fmt.Fprintf(w, "=== summary %q: %d ops, %d operations, total latency %s ===\n",
		doc.Name, len(doc.Ops), doc.Overall.Count, cycles.Format(doc.Overall.Total))
	fmt.Fprintf(w, "%-18s %9s %8s %7s %7s %7s %7s %7s %5s %5s\n",
		"OP", "COUNT", "TOTAL", "P50", "P90", "P95", "P99", "P999", "MODE", "PEAKS")
	row := func(op SummaryOpDoc) {
		if op.Count == 0 {
			fmt.Fprintf(w, "%-18s %9d %8s %7s %7s %7s %7s %7s %5s %5d\n",
				strings.ToUpper(op.Op), 0, "-", "-", "-", "-", "-", "-", "-", 0)
			return
		}
		fmt.Fprintf(w, "%-18s %9d %8s %7s %7s %7s %7s %7s %5d %5d\n",
			strings.ToUpper(op.Op), op.Count, cycles.Format(op.Total),
			cycles.Format(op.P50), cycles.Format(op.P90), cycles.Format(op.P95),
			cycles.Format(op.P99), cycles.Format(op.P999), op.ModeBucket, op.Peaks)
	}
	row(doc.Overall)
	for _, op := range doc.Ops {
		row(op)
	}
	if len(doc.HotByLatency) > 0 {
		fmt.Fprintf(w, "hottest by latency: %s\n", strings.Join(doc.HotByLatency, ", "))
	}
	if len(doc.HotByCount) > 0 {
		fmt.Fprintf(w, "hottest by count:   %s\n", strings.Join(doc.HotByCount, ", "))
	}
}

// RunSummary is the compact per-run summary column an archive listing
// can carry (GET /v1/runs?summary=1, `osprof archive list` with
// summaries): just enough to triage a run without fetching it.
type RunSummary struct {
	Ops          int    `json:"ops"`
	TotalOps     uint64 `json:"total_ops"`
	TotalLatency uint64 `json:"total_latency"`
	P50          uint64 `json:"p50"`
	P99          uint64 `json:"p99"`
	P999         uint64 `json:"p999"`

	// HotOp is the operation with the largest total latency.
	HotOp string `json:"hot_op,omitempty"`
}

// RunSummaryOf condenses a set digest into the listing column.
func RunSummaryOf(ss *summary.SetSummary) *RunSummary {
	rs := &RunSummary{
		Ops:          len(ss.Ops),
		TotalOps:     ss.Overall.Count,
		TotalLatency: ss.Overall.Total,
		P50:          ss.Overall.QLatency[0],
		P99:          ss.Overall.QLatency[3],
		P999:         ss.Overall.QLatency[4],
	}
	if len(ss.TopByLatency) > 0 {
		rs.HotOp = ss.Ops[ss.TopByLatency[0]].Op
	}
	return rs
}
