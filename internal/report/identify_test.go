package report_test

import (
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/report"
)

func TestIdentifyRendering(t *testing.T) {
	rep := &classify.Report{
		Schema: classify.Schema, Name: "unknown", Fingerprint: "abcdef0123456789",
		Matched: true, Label: "ext2-preempt-c256", Distance: 0.0001, Margin: 0.7,
		Ranking: []classify.LabelDistance{
			{Label: "ext2-preempt-c256", Distance: 0.0001, Runs: 2},
			{Label: "ext2-nopreempt-c256", Distance: 0.004, Runs: 1},
		},
		Evidence: []classify.OpEvidence{{
			Op: "read", EMDBest: 0.0001, EMDRunnerUp: 0.004, Weight: 0.9,
			Contribution: 0.0035, Mode: 7, ModeBest: 7, ModeRunnerUp: 7,
		}},
	}
	var b strings.Builder
	report.Identify(&b, rep)
	out := b.String()
	for _, want := range []string{
		"identify unknown fingerprint=abcdef012345",
		"verdict: MATCH ext2-preempt-c256",
		"1. ext2-preempt-c256",
		"(2 runs)", "(1 run)",
		"evidence (ops separating ext2-preempt-c256 from ext2-nopreempt-c256):",
		"read",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}

	rep.Matched = false
	rep.Reason = "nearest label too far"
	b.Reset()
	report.Identify(&b, rep)
	if !strings.Contains(b.String(), "verdict: ABSTAIN — nearest label too far") {
		t.Errorf("abstention rendering:\n%s", b.String())
	}
}
