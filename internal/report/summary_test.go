package report

import (
	"bytes"
	"strings"
	"testing"

	"osprof/internal/core"
	"osprof/internal/summary"
)

func summarySet() *core.Set {
	s := core.NewSet("render-me")
	for i := 0; i < 100; i++ {
		s.Record("read", 2_000)
	}
	for i := 0; i < 10; i++ {
		s.Record("read", 2_000_000)
	}
	for i := 0; i < 5; i++ {
		s.Record("unlink", 900)
	}
	s.Get("never") // recorded zero times: the empty-row case
	return s
}

func TestSummaryDoc(t *testing.T) {
	doc := SummaryOf(summary.OfSet(summarySet(), -1))
	if doc.Schema != SummarySchema || doc.Name != "render-me" || doc.R != 1 {
		t.Fatalf("doc header: %+v", doc)
	}
	if len(doc.Ops) != 3 {
		t.Fatalf("ops: %+v", doc.Ops)
	}
	if doc.Overall.Op != "*" || doc.Overall.Count != 115 {
		t.Fatalf("overall: %+v", doc.Overall)
	}
	var read SummaryOpDoc
	for _, op := range doc.Ops {
		if op.Op == "read" {
			read = op
		}
	}
	if read.Count != 110 || read.Peaks != 2 || read.P50 == 0 || read.P999 < read.P50 {
		t.Fatalf("read digest: %+v", read)
	}
	// read dominates both hottest lists; the empty op appears in
	// neither.
	if len(doc.HotByLatency) != 2 || doc.HotByLatency[0] != "read" {
		t.Fatalf("hottest by latency: %+v", doc.HotByLatency)
	}
	if len(doc.HotByCount) != 2 || doc.HotByCount[0] != "read" {
		t.Fatalf("hottest by count: %+v", doc.HotByCount)
	}
}

func TestRenderSummary(t *testing.T) {
	var buf bytes.Buffer
	RenderSummary(&buf, SummaryOf(summary.OfSet(summarySet(), -1)))
	out := buf.String()
	for _, want := range []string{
		`=== summary "render-me": 3 ops, 115 operations`,
		"P50", "P999", "PEAKS",
		"READ", "UNLINK", "NEVER",
		"hottest by latency: read",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q; got:\n%s", want, out)
		}
	}
}

func TestRunSummaryOf(t *testing.T) {
	rs := RunSummaryOf(summary.OfSet(summarySet(), -1))
	if rs.Ops != 3 || rs.TotalOps != 115 || rs.HotOp != "read" {
		t.Fatalf("run summary: %+v", rs)
	}
	if rs.P50 == 0 || rs.P99 < rs.P50 || rs.P999 < rs.P99 {
		t.Fatalf("quantile columns: %+v", rs)
	}
}

func TestProfileQuantileLine(t *testing.T) {
	var buf bytes.Buffer
	Profile(&buf, sample(), Options{Quantiles: true})
	out := buf.String()
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p999=") {
		t.Errorf("missing quantile line; got:\n%s", out)
	}
	// The option is strictly additive: everything else renders as
	// before, and the default stays quantile-free.
	buf.Reset()
	Profile(&buf, sample(), Options{})
	if strings.Contains(buf.String(), "p50=") {
		t.Error("default rendering grew a quantile line")
	}
}
