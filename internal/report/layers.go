package report

import (
	"fmt"
	"io"
	"sort"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/trace"
)

// LayersSchema versions the `osprof trace -json` document.
const LayersSchema = "osprof-layers/v1"

// LayersDoc is the per-layer latency decomposition of one traced run,
// the structured form of the `osprof trace` table.
type LayersDoc struct {
	Schema string       `json:"schema"`
	Set    string       `json:"set"`
	Ops    []LayerOpDoc `json:"ops"`
}

// LayerOpDoc decomposes one operation across layers.
type LayerOpDoc struct {
	Op string `json:"op"`

	// Total is the operation's summed self-time across all layers.
	Total uint64 `json:"total"`

	// Layers holds one entry per layer that recorded self-time, in
	// stack order (vfs outermost).
	Layers []LayerEntry `json:"layers"`

	// Crit attributes requests to their dominant layer (the
	// op@crit:layer profiles), in stack order.
	Crit []CritEntry `json:"critical_path,omitempty"`
}

// LayerEntry is one layer's share of an operation.
type LayerEntry struct {
	Layer string  `json:"layer"`
	Count uint64  `json:"count"`
	Total uint64  `json:"total"`
	Mean  uint64  `json:"mean"`
	Share float64 `json:"share"`
}

// CritEntry counts the requests a layer dominated.
type CritEntry struct {
	Layer string `json:"layer"`
	Count uint64 `json:"count"`
}

// LayersOf extracts the layer decomposition from a traced run's set:
// every internal/trace op@layer profile grouped under its base
// operation, heaviest operation first. An untraced set yields a doc
// with no ops.
func LayersOf(set *core.Set) *LayersDoc {
	type opAgg struct {
		doc    LayerOpDoc
		layers map[string]*core.Profile
		crits  map[string]*core.Profile
	}
	byOp := make(map[string]*opAgg)
	var order []string
	for _, name := range set.Ops() {
		base, layer, crit, ok := trace.SplitOp(name)
		if !ok {
			continue
		}
		prof := set.Lookup(name)
		if prof == nil || prof.Count == 0 {
			continue
		}
		a, seen := byOp[base]
		if !seen {
			a = &opAgg{
				doc:    LayerOpDoc{Op: base},
				layers: make(map[string]*core.Profile),
				crits:  make(map[string]*core.Profile),
			}
			byOp[base] = a
			order = append(order, base)
		}
		if crit {
			a.crits[layer] = prof
		} else {
			a.layers[layer] = prof
			a.doc.Total += prof.Total
		}
	}

	doc := &LayersDoc{Schema: LayersSchema, Set: set.Name}
	if len(order) == 0 {
		return doc
	}
	sort.SliceStable(order, func(i, j int) bool {
		x, y := byOp[order[i]], byOp[order[j]]
		if x.doc.Total != y.doc.Total {
			return x.doc.Total > y.doc.Total
		}
		return x.doc.Op < y.doc.Op
	})
	for _, op := range order {
		a := byOp[op]
		for _, layer := range trace.LayerNames() {
			if prof, ok := a.layers[layer]; ok {
				share := 0.0
				if a.doc.Total > 0 {
					share = float64(prof.Total) / float64(a.doc.Total)
				}
				a.doc.Layers = append(a.doc.Layers, LayerEntry{
					Layer: layer, Count: prof.Count, Total: prof.Total,
					Mean: prof.Total / prof.Count, Share: share,
				})
			}
			if prof, ok := a.crits[layer]; ok {
				a.doc.Crit = append(a.doc.Crit, CritEntry{Layer: layer, Count: prof.Count})
			}
		}
		doc.Ops = append(doc.Ops, a.doc)
	}
	return doc
}

// Layers renders the decomposition as a table: one row per layer with
// its self-time share of the operation, then the critical-path
// attribution (how many requests each layer dominated). Returns the
// number of traced operations rendered — zero means the set carries no
// layer profiles (an untraced run).
func Layers(w io.Writer, set *core.Set) int {
	doc := LayersOf(set)
	fmt.Fprintf(w, "=== layer decomposition: %s ===\n", doc.Set)
	if len(doc.Ops) == 0 {
		fmt.Fprintln(w, "no layer profiles (untraced run; record with tracing enabled)")
		return 0
	}
	fmt.Fprintf(w, "%-14s %-10s %10s %14s %10s %7s\n",
		"OP", "LAYER", "COUNT", "SELF-TOTAL", "MEAN", "SHARE")
	for _, op := range doc.Ops {
		name := op.Op
		for _, e := range op.Layers {
			fmt.Fprintf(w, "%-14s %-10s %10d %14s %10d %6.1f%%\n",
				name, e.Layer, e.Count, cycles.Format(e.Total), e.Mean, 100*e.Share)
			name = ""
		}
		var critTotal uint64
		for _, c := range op.Crit {
			critTotal += c.Count
		}
		for _, c := range op.Crit {
			fmt.Fprintf(w, "%-14s   critical path: %-10s %d of %d requests (%.1f%%)\n",
				"", c.Layer, c.Count, critTotal, 100*float64(c.Count)/float64(critTotal))
		}
	}
	return len(doc.Ops)
}
