package report

import (
	"fmt"
	"io"

	"osprof/internal/classify"
)

// Identify renders a classification verdict in the repository's text
// style: the verdict line, the ranked label table, and the
// per-operation evidence explaining what separated the top two labels
// (the §5 "which OS internals does this profile reveal" reading, as a
// table instead of eyeballed histograms).
func Identify(w io.Writer, rep *classify.Report) {
	name := rep.Name
	if name == "" {
		name = "(unnamed run)"
	}
	fmt.Fprintf(w, "identify %s", name)
	if rep.Fingerprint != "" {
		fmt.Fprintf(w, " fingerprint=%.12s", rep.Fingerprint)
	}
	fmt.Fprintln(w)
	if rep.Matched {
		fmt.Fprintf(w, "verdict: MATCH %s (distance %.4g, margin %.4g)\n",
			rep.Label, rep.Distance, rep.Margin)
	} else {
		fmt.Fprintf(w, "verdict: ABSTAIN — %s\n", rep.Reason)
	}
	if len(rep.Ranking) > 0 {
		fmt.Fprintln(w, "ranking:")
		for i, ld := range rep.Ranking {
			runs := "run"
			if ld.Runs != 1 {
				runs = "runs"
			}
			fmt.Fprintf(w, "  %2d. %-26s distance %-12.4g (%d %s)\n",
				i+1, ld.Label, ld.Distance, ld.Runs, runs)
		}
	}
	if len(rep.Evidence) > 0 && len(rep.Ranking) > 1 {
		fmt.Fprintf(w, "evidence (ops separating %s from %s):\n",
			rep.Ranking[0].Label, rep.Ranking[1].Label)
		fmt.Fprintf(w, "  %-16s %12s %12s %8s  %s\n",
			"op", "emd(best)", "emd(2nd)", "weight", "modes run/best/2nd")
		for _, ev := range rep.Evidence {
			fmt.Fprintf(w, "  %-16s %12.4g %12.4g %8.3f  %d/%d/%d\n",
				ev.Op, ev.EMDBest, ev.EMDRunnerUp, ev.Weight,
				ev.Mode, ev.ModeBest, ev.ModeRunnerUp)
		}
	}
}
