package report

import (
	"fmt"
	"io"
	"strings"

	"osprof/internal/core"
	"osprof/internal/diff"
)

// This file renders differential analyses (internal/diff): a verdict
// table in the style of the selector comparison table, and side-by-side
// histograms of the changed operations — the paper's §5 figures that
// put the same operation's profile under two OS configurations next to
// each other.

// SideBySide renders two profiles of the same operation as adjacent
// ASCII histograms (A left, B right), row-aligned so peaks can be
// compared visually across the gutter.
func SideBySide(w io.Writer, a, b *core.Profile, o Options) {
	var la, lb strings.Builder
	Profile(&la, a, o)
	Profile(&lb, b, o)
	linesA := strings.Split(strings.TrimRight(la.String(), "\n"), "\n")
	linesB := strings.Split(strings.TrimRight(lb.String(), "\n"), "\n")

	width := 0
	for _, l := range linesA {
		if len(l) > width {
			width = len(l)
		}
	}
	n := len(linesA)
	if len(linesB) > n {
		n = len(linesB)
	}
	for i := 0; i < n; i++ {
		var left, right string
		if i < len(linesA) {
			left = linesA[i]
		}
		if i < len(linesB) {
			right = linesB[i]
		}
		fmt.Fprintf(w, "%-*s   |   %s\n", width, left, right)
	}
}

// Diff renders a differential report: header, verdict table, and
// side-by-side histograms for every changed operation. a and b are the
// compared sets (for the histograms); pass nil to render the table
// only.
func Diff(w io.Writer, d *diff.Report, a, b *core.Set, o Options) {
	fmt.Fprintf(w, "=== diff %q -> %q ===\n", d.NameA, d.NameB)
	if d.FingerprintA != "" || d.FingerprintB != "" {
		fmt.Fprintf(w, "fingerprints %s -> %s\n",
			shortFP(d.FingerprintA), shortFP(d.FingerprintB))
	}
	fmt.Fprintf(w, "%d operations compared, %d changed\n\n", len(d.Ops), d.Changed)

	fmt.Fprintf(w, "%-18s %-14s %8s %8s %8s %7s %7s  %s\n",
		"OP", "VERDICT", "SCORE", "OPS-A", "OPS-B", "PEAKS-A", "PEAKS-B", "DETAIL")
	for _, op := range d.Ops {
		// %.3g, not %.3f: the interesting EMDs of a localized shift
		// (e.g. fig3's preemption peak) are legitimately tiny.
		fmt.Fprintf(w, "%-18s %-14s %8.3g %8d %8d %7d %7d  %s\n",
			op.Op, op.Verdict, op.Score, op.CountA, op.CountB,
			op.PeaksA, op.PeaksB, op.Detail)
	}

	if len(d.Layers) > 0 {
		fmt.Fprintf(w, "\nlayer attribution (which layer moved):\n")
		fmt.Fprintf(w, "%-18s %-10s %-14s %8s %12s %12s  %s\n",
			"OP", "LAYER", "VERDICT", "SCORE", "MEAN-A", "MEAN-B", "CRITICAL-PATH")
		for _, mv := range d.Layers {
			crit := "-"
			switch {
			case mv.CritA != "" && mv.CritB != "" && mv.CritA != mv.CritB:
				crit = mv.CritA + " -> " + mv.CritB
			case mv.CritB != "":
				crit = mv.CritB
			case mv.CritA != "":
				crit = mv.CritA
			}
			fmt.Fprintf(w, "%-18s %-10s %-14s %8.3g %12d %12d  %s\n",
				mv.Op, mv.Layer, mv.Verdict, mv.Score, mv.MeanA, mv.MeanB, crit)
		}
	}

	if a == nil || b == nil {
		return
	}
	for _, op := range d.ChangedOps() {
		fmt.Fprintln(w)
		pa, pb := a.Lookup(op.Op), b.Lookup(op.Op)
		switch {
		case pa != nil && pb != nil:
			SideBySide(w, pa, pb, o)
		case pa != nil:
			fmt.Fprintf(w, "(only in A)\n")
			Profile(w, pa, o)
		case pb != nil:
			fmt.Fprintf(w, "(only in B)\n")
			Profile(w, pb, o)
		}
	}
}

// MatrixDiff renders a matrix-wide differential report as one summary
// line per pair, with verdict tables for the pairs that changed.
func MatrixDiff(w io.Writer, m *diff.MatrixReport) {
	for _, p := range m.Pairs {
		if p.Changed == 0 {
			fmt.Fprintf(w, "ok   %-24s unchanged (%d operations)\n",
				p.Name, len(p.Ops))
			continue
		}
		fmt.Fprintf(w, "DIFF %-24s %d of %d operations changed\n",
			p.Name, p.Changed, len(p.Ops))
		for _, op := range p.ChangedOps() {
			fmt.Fprintf(w, "       %-18s %-14s score=%.3g %s\n",
				op.Op, op.Verdict, op.Score, op.Detail)
		}
	}
	for _, name := range m.OnlyA {
		fmt.Fprintf(w, "DIFF %-24s present only in A\n", name)
	}
	for _, name := range m.OnlyB {
		fmt.Fprintf(w, "DIFF %-24s present only in B\n", name)
	}
	fmt.Fprintf(w, "total: %d changed\n", m.Changed)
}

// shortFP abbreviates a fingerprint for display.
func shortFP(fp string) string {
	if fp == "" {
		return "-"
	}
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
