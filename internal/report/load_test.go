package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"osprof/internal/core"
	"osprof/internal/sim"
)

// loadSet builds a conditioned set: read in bands 1 and 5+, write in
// band 2-4, plus a base op the doc must ignore.
func loadSet() *core.Set {
	s := core.NewSet("t")
	rec := func(op string, lat uint64, n int) {
		p := s.Get(op)
		for i := 0; i < n; i++ {
			p.Record(lat)
		}
	}
	rec("read", 1<<6, 300) // base op: not part of the decomposition
	rec("read@load:1", 1<<6, 200)
	rec("read@load:5+", 1<<12, 100)
	rec("write@load:2-4", 1<<8, 50)
	return s
}

func TestLoadOfGroupsAndSorts(t *testing.T) {
	doc := LoadOf(loadSet())
	if doc.Schema != LoadSchema || doc.Set != "t" {
		t.Fatalf("doc header: %+v", doc)
	}
	if len(doc.Ops) != 2 || doc.Ops[0].Op != "read" || doc.Ops[1].Op != "write" {
		t.Fatalf("ops: %+v", doc.Ops)
	}
	read := doc.Ops[0]
	if len(read.Bands) != 2 || read.Bands[0].Band != "1" || read.Bands[1].Band != "5+" {
		t.Fatalf("read bands out of order: %+v", read.Bands)
	}
	if read.Bands[0].Count != 200 || read.Bands[1].Count != 100 {
		t.Errorf("band counts: %+v", read.Bands)
	}
	var share float64
	for _, e := range read.Bands {
		share += e.Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("read band shares sum to %v", share)
	}
	if read.Bands[1].Mean != 1<<12 {
		t.Errorf("band mean = %d", read.Bands[1].Mean)
	}
}

func TestLoadOfEmptyForUnconditionedSet(t *testing.T) {
	s := core.NewSet("plain")
	s.Record("read", 100)
	doc := LoadOf(s)
	if len(doc.Ops) != 0 {
		t.Fatalf("unconditioned set produced ops: %+v", doc.Ops)
	}
	var buf bytes.Buffer
	if n := Load(&buf, doc); n != 0 {
		t.Errorf("rendered %d ops", n)
	}
	if !strings.Contains(buf.String(), "no load profiles") {
		t.Errorf("missing empty notice: %q", buf.String())
	}
}

func TestLoadApplyRealtimeWeights(t *testing.T) {
	doc := LoadOf(loadSet())
	// The machine spent 90% of its cycles in band 1 and 10% in 5+, but
	// read sampled them 200/100: band 1 is underrepresented and must be
	// up-weighted.
	occ := [sim.LoadBands]uint64{900, 0, 100}
	LoadApplyRealtime(doc, occ)
	if !doc.Realtime || len(doc.Occupancy) != sim.LoadBands {
		t.Fatalf("realtime header: %+v", doc)
	}
	if doc.Occupancy[0].Share != 0.9 || doc.Occupancy[2].Share != 0.1 {
		t.Errorf("occupancy shares: %+v", doc.Occupancy)
	}
	read := doc.Ops[0]
	// w1 = (900/1000)/(200/300) = 1.35; w5 = (100/1000)/(100/300) = 0.3
	if math.Abs(read.Bands[0].Weight-1.35) > 1e-9 {
		t.Errorf("w[1] = %v, want 1.35", read.Bands[0].Weight)
	}
	if math.Abs(read.Bands[1].Weight-0.3) > 1e-9 {
		t.Errorf("w[5+] = %v, want 0.3", read.Bands[1].Weight)
	}
	var wshare float64
	for _, e := range read.Bands {
		wshare += e.WeightedShare
	}
	if math.Abs(wshare-1) > 1e-9 {
		t.Errorf("weighted shares sum to %v", wshare)
	}
	// Re-weighting must shrink the contended band's share: it was
	// sampled often relative to how rarely the machine was that loaded.
	if read.Bands[1].WeightedShare >= read.Bands[1].Share {
		t.Errorf("load:5+ share %v did not shrink under realtime (%v)",
			read.Bands[1].Share, read.Bands[1].WeightedShare)
	}
}

func TestLoadRenderTables(t *testing.T) {
	doc := LoadOf(loadSet())
	var buf bytes.Buffer
	if n := Load(&buf, doc); n != 2 {
		t.Fatalf("rendered %d ops, want 2", n)
	}
	out := buf.String()
	for _, want := range []string{"read", "write", "2-4", "5+", "SHARE"} {
		if !strings.Contains(out, want) {
			t.Errorf("plain table misses %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "RTSHARE") {
		t.Error("plain table shows realtime columns")
	}

	LoadApplyRealtime(doc, [sim.LoadBands]uint64{900, 50, 50})
	buf.Reset()
	Load(&buf, doc)
	out = buf.String()
	for _, want := range []string{"occupancy:", "WEIGHT", "RTSHARE"} {
		if !strings.Contains(out, want) {
			t.Errorf("realtime table misses %q:\n%s", want, out)
		}
	}
}
