package report

import (
	"bytes"
	"strings"
	"testing"

	"osprof/internal/analysis"
	"osprof/internal/core"
)

func sample() *core.Profile {
	p := core.NewProfile("readdir")
	for i := 0; i < 5000; i++ {
		p.Record(100) // bucket 6
	}
	for i := 0; i < 300; i++ {
		p.Record(5_000) // bucket 12
	}
	for i := 0; i < 12; i++ {
		p.Record(2_000_000) // bucket 20
	}
	return p
}

func TestProfileRendering(t *testing.T) {
	var buf bytes.Buffer
	Profile(&buf, sample(), Options{})
	out := buf.String()
	if !strings.Contains(out, "READDIR") {
		t.Error("missing op title")
	}
	if !strings.Contains(out, "n=5312") {
		t.Errorf("missing count; got:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	if !strings.Contains(out, "bucket: floor(log2(latency in CPU cycles))") {
		t.Error("missing x-axis caption")
	}
	// Three peaks must be visibly separated: the bottom row must
	// contain at least two gaps between bar groups.
	lines := strings.Split(out, "\n")
	var bottom string
	for i := len(lines) - 1; i >= 0; i-- {
		if strings.Contains(lines[i], "10^0") {
			bottom = lines[i]
			break
		}
	}
	if bottom == "" {
		t.Fatalf("no bottom row; got:\n%s", out)
	}
	if groups := len(strings.Fields(strings.TrimPrefix(bottom, "10^0 |"))); groups < 3 {
		t.Errorf("bottom row %q has %d bar groups, want >= 3", bottom, groups)
	}
}

func TestProfileRenderingEmpty(t *testing.T) {
	var buf bytes.Buffer
	Profile(&buf, core.NewProfile("empty"), Options{})
	if !strings.Contains(buf.String(), "EMPTY") {
		t.Error("empty profile render broken")
	}
}

func TestSetRendering(t *testing.T) {
	s := core.NewSet("run")
	s.Record("read", 100)
	s.Record("write", 1_000_000)
	var buf bytes.Buffer
	Set(&buf, s, Options{})
	out := buf.String()
	if !strings.Contains(out, "profile set") {
		t.Error("missing set header")
	}
	// write has larger total latency: must come first.
	if strings.Index(out, "WRITE") > strings.Index(out, "READ") {
		t.Error("profiles not ordered by total latency")
	}
}

func TestTimelineRendering(t *testing.T) {
	s := core.NewSampled("read", 0, 1_000_000)
	for seg := uint64(0); seg < 4; seg++ {
		now := seg * 1_000_000
		for i := 0; i < 500; i++ {
			s.Record(now, 4_000) // '#' cells
		}
		s.Record(now, 50) // '.' cell
	}
	var buf bytes.Buffer
	Timeline(&buf, s)
	out := buf.String()
	if !strings.Contains(out, "#") || !strings.Contains(out, ".") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "legend") {
		t.Error("missing legend")
	}
	if got := strings.Count(out, "s |"); got != 4 {
		t.Errorf("segments rendered = %d, want 4", got)
	}
}

func TestTimelineEmpty(t *testing.T) {
	var buf bytes.Buffer
	Timeline(&buf, core.NewSampled("x", 0, 100))
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty timeline should say so")
	}
}

func TestTimelineGlyphThresholds(t *testing.T) {
	for c, want := range map[uint64]byte{0: ' ', 1: '.', 10: '.', 11: 'o', 100: 'o', 101: '#'} {
		if got := timelineGlyph(c); got != want {
			t.Errorf("glyph(%d) = %c, want %c", c, got, want)
		}
	}
}

func TestComparisonTable(t *testing.T) {
	a, b := core.NewSet("a"), core.NewSet("b")
	a.Record("op", 100)
	b.Record("op", 1<<20)
	sel := analysis.DefaultSelector()
	reports := sel.Compare(a, b)
	var buf bytes.Buffer
	Comparison(&buf, reports)
	if !strings.Contains(buf.String(), "op") {
		t.Error("comparison table missing op row")
	}
	if !strings.Contains(buf.String(), "VERDICT") {
		t.Error("comparison table missing header")
	}
}

func TestGnuplotScript(t *testing.T) {
	var buf bytes.Buffer
	Gnuplot(&buf, sample())
	out := buf.String()
	for _, want := range []string{"set logscale y", "plot", "e\n", "6 5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot output missing %q", want)
		}
	}
}
