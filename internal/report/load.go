package report

import (
	"fmt"
	"io"
	"sort"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/load"
	"osprof/internal/sim"
)

// LoadSchema versions the `osprof load -json` document.
const LoadSchema = "osprof-load/v1"

// LoadDoc is the load-conditioned decomposition of one run: every
// operation's latency split by the run-queue load band its samples
// were taken at, the structured form of the `osprof load` table.
type LoadDoc struct {
	Schema string `json:"schema"`
	Set    string `json:"set"`

	// Realtime reports whether band shares were re-weighted by the
	// observed band occupancy (perf-load's -realtime).
	Realtime bool `json:"realtime,omitempty"`

	// Occupancy gives each band's share of the run's cycles, present
	// only on realtime docs.
	Occupancy []LoadOccEntry `json:"occupancy,omitempty"`

	Ops []LoadOpDoc `json:"ops"`
}

// LoadOccEntry is one band's observed occupancy.
type LoadOccEntry struct {
	Band   string  `json:"band"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

// LoadOpDoc decomposes one operation across load bands.
type LoadOpDoc struct {
	Op string `json:"op"`

	// Total is the operation's summed latency across all bands.
	Total uint64 `json:"total"`

	// Bands holds one entry per band that recorded samples, in band
	// order.
	Bands []LoadBandEntry `json:"bands"`
}

// LoadBandEntry is one band's share of an operation.
type LoadBandEntry struct {
	Band  string  `json:"band"`
	Count uint64  `json:"count"`
	Total uint64  `json:"total"`
	Mean  uint64  `json:"mean"`
	Share float64 `json:"share"`

	// Weight and WeightedShare are the perf-load realtime weighting
	// (band occupancy share over sample share), present only on
	// realtime docs.
	Weight        float64 `json:"weight,omitempty"`
	WeightedShare float64 `json:"weighted_share,omitempty"`
}

// LoadOf extracts the load decomposition from a run's set: every
// internal/load op@load:band profile grouped under its base operation,
// heaviest operation first. An unconditioned set yields a doc with no
// ops.
func LoadOf(set *core.Set) *LoadDoc {
	type opAgg struct {
		doc   LoadOpDoc
		bands map[string]*core.Profile
	}
	byOp := make(map[string]*opAgg)
	var order []string
	for _, name := range set.Ops() {
		base, band, ok := load.SplitOp(name)
		if !ok {
			continue
		}
		prof := set.Lookup(name)
		if prof == nil || prof.Count == 0 {
			continue
		}
		a, seen := byOp[base]
		if !seen {
			a = &opAgg{
				doc:   LoadOpDoc{Op: base},
				bands: make(map[string]*core.Profile),
			}
			byOp[base] = a
			order = append(order, base)
		}
		a.bands[band] = prof
		a.doc.Total += prof.Total
	}

	doc := &LoadDoc{Schema: LoadSchema, Set: set.Name}
	if len(order) == 0 {
		return doc
	}
	sort.SliceStable(order, func(i, j int) bool {
		x, y := byOp[order[i]], byOp[order[j]]
		if x.doc.Total != y.doc.Total {
			return x.doc.Total > y.doc.Total
		}
		return x.doc.Op < y.doc.Op
	})
	for _, op := range order {
		a := byOp[op]
		for _, band := range load.BandNames() {
			prof, ok := a.bands[band]
			if !ok {
				continue
			}
			share := 0.0
			if a.doc.Total > 0 {
				share = float64(prof.Total) / float64(a.doc.Total)
			}
			a.doc.Bands = append(a.doc.Bands, LoadBandEntry{
				Band: band, Count: prof.Count, Total: prof.Total,
				Mean: prof.Total / prof.Count, Share: share,
			})
		}
		doc.Ops = append(doc.Ops, a.doc)
	}
	return doc
}

// LoadApplyRealtime re-weights the doc's band shares by the observed
// band occupancy (perf-load's -realtime): each band's latency mass is
// scaled by w = (occupancy share) / (sample share), so a band the
// machine lived in but rarely sampled stops being underrepresented
// and shares read as wall-clock expectations.
func LoadApplyRealtime(doc *LoadDoc, occ [sim.LoadBands]uint64) {
	doc.Realtime = true
	var totOcc uint64
	for _, c := range occ {
		totOcc += c
	}
	doc.Occupancy = doc.Occupancy[:0]
	for b := 0; b < sim.LoadBands; b++ {
		share := 0.0
		if totOcc > 0 {
			share = float64(occ[b]) / float64(totOcc)
		}
		doc.Occupancy = append(doc.Occupancy, LoadOccEntry{
			Band: sim.LoadBandName(b), Cycles: occ[b], Share: share,
		})
	}
	for i := range doc.Ops {
		op := &doc.Ops[i]
		var counts [sim.LoadBands]uint64
		for _, e := range op.Bands {
			counts[load.BandIndex(e.Band)] = e.Count
		}
		w := load.Weights(occ, counts)
		var wTotal float64
		for j := range op.Bands {
			e := &op.Bands[j]
			e.Weight = w[load.BandIndex(e.Band)]
			wTotal += float64(e.Total) * e.Weight
		}
		for j := range op.Bands {
			e := &op.Bands[j]
			if wTotal > 0 {
				e.WeightedShare = float64(e.Total) * e.Weight / wTotal
			}
		}
	}
}

// Load renders the decomposition as a table: one row per band with its
// sample count, latency mass and share of the operation — plus the
// realtime weight and weighted share when the doc was re-weighted.
// Returns the number of load-profiled operations rendered — zero means
// the set carries no load profiles (an unconditioned run).
func Load(w io.Writer, doc *LoadDoc) int {
	fmt.Fprintf(w, "=== load decomposition: %s ===\n", doc.Set)
	if len(doc.Ops) == 0 {
		fmt.Fprintln(w, "no load profiles (unconditioned run; record with LoadProfile enabled)")
		return 0
	}
	if doc.Realtime {
		fmt.Fprintf(w, "occupancy:")
		for _, o := range doc.Occupancy {
			fmt.Fprintf(w, " load:%s %.1f%%", o.Band, 100*o.Share)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-14s %-6s %10s %14s %10s %7s %7s %7s\n",
			"OP", "LOAD", "COUNT", "TOTAL", "MEAN", "SHARE", "WEIGHT", "RTSHARE")
	} else {
		fmt.Fprintf(w, "%-14s %-6s %10s %14s %10s %7s\n",
			"OP", "LOAD", "COUNT", "TOTAL", "MEAN", "SHARE")
	}
	for _, op := range doc.Ops {
		name := op.Op
		for _, e := range op.Bands {
			if doc.Realtime {
				fmt.Fprintf(w, "%-14s %-6s %10d %14s %10d %6.1f%% %7.2f %6.1f%%\n",
					name, e.Band, e.Count, cycles.Format(e.Total), e.Mean,
					100*e.Share, e.Weight, 100*e.WeightedShare)
			} else {
				fmt.Fprintf(w, "%-14s %-6s %10d %14s %10d %6.1f%%\n",
					name, e.Band, e.Count, cycles.Format(e.Total), e.Mean, 100*e.Share)
			}
			name = ""
		}
	}
	return len(doc.Ops)
}
