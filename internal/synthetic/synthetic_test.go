package synthetic

import (
	"testing"

	"osprof/internal/analysis"
)

func TestGenerateCountsAndLabels(t *testing.T) {
	pairs := Generate(Spec{Pairs: 100, ImportantFraction: 0.4, Seed: 1})
	if len(pairs) != 100 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	important := 0
	for _, p := range pairs {
		if p.Important {
			important++
			if p.Mutation == "" {
				t.Error("important pair without a mutation label")
			}
		} else if p.Mutation != "" {
			t.Error("unimportant pair carries a mutation label")
		}
		if p.A.Count == 0 || p.B.Count == 0 {
			t.Error("empty profile generated")
		}
		if p.A.Validate() != nil || p.B.Validate() != nil {
			t.Error("generated profile fails checksum")
		}
	}
	if important != 40 {
		t.Errorf("important = %d, want 40", important)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Pairs: 50, Seed: 7})
	b := Generate(Spec{Pairs: 50, Seed: 7})
	for i := range a {
		if a[i].Important != b[i].Important || a[i].A.Count != b[i].A.Count {
			t.Fatalf("pair %d differs between identical seeds", i)
		}
	}
}

func TestMutationsCoverAllKinds(t *testing.T) {
	pairs := Generate(Spec{Pairs: 300, Seed: 3})
	kinds := map[string]int{}
	for _, p := range pairs {
		if p.Important {
			kinds[p.Mutation]++
		}
	}
	for _, kind := range []string{"new-peak", "shifted-peak", "reweighted-peak"} {
		if kinds[kind] == 0 {
			t.Errorf("mutation %q never generated (have %v)", kind, kinds)
		}
	}
}

func TestImportantPairsScoreHigherOnAverage(t *testing.T) {
	pairs := Generate(Spec{Pairs: 200, Seed: 11})
	var impSum, noiseSum float64
	var imp, noise int
	for _, p := range pairs {
		s := analysis.EarthMovers(p.A, p.B)
		if p.Important {
			impSum += s
			imp++
		} else {
			noiseSum += s
			noise++
		}
	}
	if impSum/float64(imp) <= 2*noiseSum/float64(noise) {
		t.Errorf("important pairs not separable: imp=%.4f noise=%.4f",
			impSum/float64(imp), noiseSum/float64(noise))
	}
}
