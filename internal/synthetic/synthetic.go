// Package synthetic generates labeled profile pairs for the §5.3
// evaluation of the automated analysis methods. The paper had three
// graduate students label over 250 real profile pairs as important or
// not; here the labels come from construction:
//
//   - an UNIMPORTANT pair is two independent samples of the same
//     underlying multi-peak latency distribution (sampling noise only,
//     including the ±1-bucket jitter that real runs exhibit),
//   - an IMPORTANT pair additionally applies a structural mutation of
//     the kind the paper's case studies uncovered: a new contention
//     peak, a shifted peak, a re-weighted peak, or a workload-scale
//     change.
package synthetic

import (
	"fmt"
	"math/rand"

	"osprof/internal/core"
)

// Pair is one labeled comparison case.
type Pair struct {
	A, B      *core.Profile
	Important bool
	Mutation  string // which mutation produced B ("" if none)
}

// Spec tunes the generator.
type Spec struct {
	// Pairs is the number of pairs to generate (default 250, §5.3).
	Pairs int

	// ImportantFraction is the fraction of pairs with a real change
	// (default 0.4).
	ImportantFraction float64

	// Seed drives all randomness.
	Seed int64
}

func (s *Spec) applyDefaults() {
	if s.Pairs == 0 {
		s.Pairs = 250
	}
	if s.ImportantFraction == 0 {
		s.ImportantFraction = 0.4
	}
}

// peak describes one mode of the synthetic distribution.
type peak struct {
	center int     // bucket
	width  int     // buckets of spread to each side
	mass   float64 // expected operations
}

// model is an underlying latency distribution.
type model struct {
	peaks []peak
}

// Generate produces the labeled corpus.
func Generate(spec Spec) []Pair {
	spec.applyDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	nImportant := int(float64(spec.Pairs) * spec.ImportantFraction)
	var out []Pair
	for i := 0; i < spec.Pairs; i++ {
		m := randomModel(rng)
		a := m.sample(rng, fmt.Sprintf("pair%d/a", i))
		important := i < nImportant
		var b *core.Profile
		mutation := ""
		if important {
			m2 := m.clone()
			mutation = m2.mutate(rng)
			b = m2.sample(rng, fmt.Sprintf("pair%d/b", i))
		} else {
			b = m.sample(rng, fmt.Sprintf("pair%d/b", i))
		}
		out = append(out, Pair{A: a, B: b, Important: important, Mutation: mutation})
	}
	// Shuffle so importance is not positional.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func randomModel(rng *rand.Rand) *model {
	n := 1 + rng.Intn(3)
	m := &model{}
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		c := 6 + rng.Intn(20)
		for used[c] || used[c-1] || used[c+1] {
			c = 6 + rng.Intn(20)
		}
		used[c] = true
		m.peaks = append(m.peaks, peak{
			center: c,
			width:  1 + rng.Intn(2),
			mass:   float64(uint64(100) << rng.Intn(7)), // 100..6400
		})
	}
	return m
}

func (m *model) clone() *model {
	c := &model{peaks: append([]peak(nil), m.peaks...)}
	return c
}

// mutate applies one structural change and reports its kind. The
// mutations mirror the paper's case studies: a contention peak appears
// (§6.1 llseek, §6.4 delayed ACKs), an I/O pattern moves a peak (§6.2),
// or a code path's frequency changes. They always target the largest
// peak so the change is structural rather than a tail effect.
func (m *model) mutate(rng *rand.Rand) string {
	i := 0
	for j := range m.peaks {
		if m.peaks[j].mass > m.peaks[i].mass {
			i = j
		}
	}
	switch rng.Intn(3) {
	case 0:
		// A new peak appears, fed by requests that used to be fast:
		// part of the dominant peak's mass moves far to the right
		// (lock contention). Operation counts stay the same — only
		// shape and total latency change.
		moved := m.peaks[i].mass * (0.15 + 0.35*rng.Float64())
		m.peaks[i].mass -= moved
		m.peaks = append(m.peaks, peak{
			center: min(m.peaks[i].center+4+rng.Intn(7), 30),
			width:  1,
			mass:   moved,
		})
		return "new-peak"
	case 1: // a peak moves (I/O pattern change)
		shift := 2 + rng.Intn(3)
		if rng.Intn(2) == 0 && m.peaks[i].center > 10 {
			shift = -shift
		}
		m.peaks[i].center += shift
		return "shifted-peak"
	default: // a code path's frequency changes substantially
		if rng.Intn(2) == 0 {
			m.peaks[i].mass *= 2 + 2*rng.Float64()
		} else {
			m.peaks[i].mass *= 0.15 + 0.2*rng.Float64()
		}
		return "reweighted-peak"
	}
}

// sample draws one profile from the model with realistic noise: peak
// masses fluctuate a few percent, individual samples jitter by one
// bucket occasionally (cache state), and a sparse background of
// low-frequency events (interrupts, background daemons — the small
// stray peaks of Figure 3) lands in random buckets. The background is
// what penalizes bin-by-bin comparison: two runs scatter it into
// different sparse bins.
func (m *model) sample(rng *rand.Rand, op string) *core.Profile {
	p := core.NewProfile(op)
	var total float64
	for _, pk := range m.peaks {
		total += pk.mass
	}
	background := int(total * 0.015)
	for i := 0; i < background; i++ {
		b := 5 + rng.Intn(26)
		lo := core.BucketLow(b, 1)
		span := core.BucketHigh(b, 1) - lo
		p.Record(lo + uint64(rng.Int63n(int64(span+1))))
	}
	for _, pk := range m.peaks {
		mass := pk.mass * (0.95 + 0.1*rng.Float64())
		n := int(mass)
		for i := 0; i < n; i++ {
			b := pk.center
			if pk.width > 0 {
				b += rng.Intn(2*pk.width+1) - pk.width
			}
			if rng.Float64() < 0.15 { // per-sample jitter
				if rng.Intn(2) == 0 {
					b++
				} else {
					b--
				}
			}
			if b < 0 {
				b = 0
			}
			if b > 33 {
				b = 33
			}
			// A latency uniformly inside the bucket.
			lo := core.BucketLow(b, 1)
			span := core.BucketHigh(b, 1) - lo
			p.Record(lo + uint64(rng.Int63n(int64(span+1))))
		}
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
