// Package vfs implements the virtual file system layer of the simulated
// kernel: inodes, open files, mounts, and the operation vectors that
// file systems fill in (the paper's Figure 4 shows Ext2's
// file_operations vector; FoSgen instruments exactly these vectors).
//
// The profiling wrapper in internal/fsprof replaces the function fields
// of a file system's Ops structure in place, so every call — whether
// from the system-call layer or from one file-system operation invoking
// another (readdir calling readpage, §6.2) — passes through the
// instrumentation, matching the paper's source-level FoSgen behavior.
package vfs

import (
	"errors"

	"osprof/internal/sim"
)

// PageSize is the page and file-system block size (4 KB).
const PageSize = 4096

// Errors returned by VFS operations.
var (
	ErrNotFound = errors.New("vfs: no such file or directory")
	ErrExists   = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
)

// Whence selects the llseek base.
type Whence int

const (
	SeekSet Whence = iota
	SeekCur
	SeekEnd
)

// Inode is an in-core inode.
type Inode struct {
	ID   uint64
	Dir  bool
	Size uint64

	// Sem is the inode semaphore (Linux's i_sem), taken by
	// generic_file_llseek and the direct-I/O read path — the shared
	// lock behind the paper's §6.1 contention.
	Sem *sim.Semaphore

	// FS owns this inode.
	FS FileSystem

	// Data points at file-system-private state.
	Data any
}

// Pages returns the number of pages covering the inode's data.
func (i *Inode) Pages() uint64 { return (i.Size + PageSize - 1) / PageSize }

// File is an open file description: a per-open position over an inode.
type File struct {
	Inode *Inode

	// Pos is the current file offset. Note that Pos is per-File
	// (per process, usually) while Inode.Sem is shared — which is
	// exactly why the paper flags generic_file_llseek's locking as
	// unnecessary for regular files (§6.1).
	Pos uint64

	// DirectIO bypasses the page cache (O_DIRECT).
	DirectIO bool
}

// DirEntry is one directory entry as returned by readdir.
type DirEntry struct {
	Name string
	Ino  uint64
	Dir  bool
}

// DirentSize is the on-disk size of one directory entry; 64 entries
// fit a 4 KB directory block.
const DirentSize = 64

// FileOps is the file operation vector (struct file_operations).
type FileOps struct {
	Read    func(p *sim.Proc, f *File, n uint64) uint64
	Write   func(p *sim.Proc, f *File, n uint64) uint64
	Llseek  func(p *sim.Proc, f *File, off int64, whence Whence) uint64
	Readdir func(p *sim.Proc, f *File) []DirEntry
	Fsync   func(p *sim.Proc, f *File)
	Open    func(p *sim.Proc, ino *Inode, directIO bool) *File
	Release func(p *sim.Proc, f *File)
}

// InodeOps is the inode operation vector (struct inode_operations).
type InodeOps struct {
	Lookup func(p *sim.Proc, dir *Inode, name string) (*Inode, bool)
	Create func(p *sim.Proc, dir *Inode, name string) (*Inode, error)
	Unlink func(p *sim.Proc, dir *Inode, name string) error
	Mkdir  func(p *sim.Proc, dir *Inode, name string) (*Inode, error)
}

// AddressOps is the address-space operation vector (struct
// address_space_operations): page-granular I/O initiation. ReadPage
// starts I/O for a single page (the readdir path); ReadPages starts a
// batched readahead (the file-data path). Both return after initiating
// the I/O — waiting happens at the caller via Page.WaitUptodate, which
// is why readpage's own latency profile stays small (§6.2).
type AddressOps struct {
	ReadPage  func(p *sim.Proc, ino *Inode, idx uint64)
	ReadPages func(p *sim.Proc, ino *Inode, idx, n uint64)
	WritePage func(p *sim.Proc, ino *Inode, idx uint64, sync bool)
}

// SuperOps is the superblock operation vector.
type SuperOps struct {
	WriteSuper func(p *sim.Proc)
	SyncFS     func(p *sim.Proc)
}

// Ops bundles a file system's operation vectors. Instrumentation
// replaces the function fields in place (FoSgen-style).
type Ops struct {
	File    FileOps
	Inode   InodeOps
	Address AddressOps
	Super   SuperOps
}

// FileSystem is a mounted file system.
type FileSystem interface {
	Name() string
	Root() *Inode
	Ops() *Ops
}
