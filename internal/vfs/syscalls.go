package vfs

import (
	"fmt"
	"sort"
	"strings"

	"osprof/internal/sim"
	"osprof/internal/trace"
)

// Syscalls is the system-call surface workloads run against. The
// user-level profiler (internal/fsprof) wraps any Syscalls
// implementation, mirroring how the paper's user-level profilers
// replace system calls with latency-measuring macros (§4).
type Syscalls interface {
	Open(p *sim.Proc, path string, directIO bool) (*File, error)
	Close(p *sim.Proc, f *File)
	Read(p *sim.Proc, f *File, n uint64) uint64
	Write(p *sim.Proc, f *File, n uint64) uint64
	Llseek(p *sim.Proc, f *File, off int64, whence Whence) uint64
	Getdents(p *sim.Proc, f *File) []DirEntry
	Fsync(p *sim.Proc, f *File)
	Create(p *sim.Proc, path string) (*File, error)
	Unlink(p *sim.Proc, path string) error
	Mkdir(p *sim.Proc, path string) error
	Stat(p *sim.Proc, path string) (*Inode, error)
}

// mount binds a path prefix to a file system.
type mount struct {
	path string
	fs   FileSystem
}

// VFS is the system-call layer: it resolves paths across mounts and
// dispatches to file-system operation vectors.
type VFS struct {
	K *sim.Kernel

	// SyscallEntry is the user/kernel crossing cost in cycles charged
	// once per system call.
	SyscallEntry uint64

	// LookupCost is the per-path-component dcache lookup cost.
	LookupCost uint64

	mounts []mount

	// tr, when set, opens a root layer span around every system call
	// (internal/trace). Nil means tracing off: the hooks are nil-safe
	// no-ops and the simulated timeline is unchanged either way —
	// spans consume no simulated CPU.
	tr *trace.Tracer
}

var _ Syscalls = (*VFS)(nil)

// New creates a VFS on kernel k with default costs.
func New(k *sim.Kernel) *VFS {
	return &VFS{K: k, SyscallEntry: 64, LookupCost: 300}
}

// SetTracer installs (or, with nil, removes) the layer tracer whose
// root spans bracket every system call.
func (v *VFS) SetTracer(tr *trace.Tracer) { v.tr = tr }

// Mount attaches fs at path ("/" for the root).
func (v *VFS) Mount(path string, fs FileSystem) error {
	path = strings.TrimRight(path, "/")
	for _, m := range v.mounts {
		if m.path == path {
			return fmt.Errorf("vfs: %q already mounted", path)
		}
	}
	v.mounts = append(v.mounts, mount{path: path, fs: fs})
	// Longest prefix first for resolution.
	sort.SliceStable(v.mounts, func(i, j int) bool {
		return len(v.mounts[i].path) > len(v.mounts[j].path)
	})
	return nil
}

// resolveDir walks path to its parent directory, returning the owning
// fs, the parent inode and the final component.
func (v *VFS) resolveDir(p *sim.Proc, path string) (FileSystem, *Inode, string, error) {
	fs, rest, err := v.pick(path)
	if err != nil {
		return nil, nil, "", err
	}
	parts := split(rest)
	if len(parts) == 0 {
		return fs, nil, "", nil // the mount root itself
	}
	dir := fs.Root()
	for _, comp := range parts[:len(parts)-1] {
		p.Exec(v.LookupCost)
		next, ok := fs.Ops().Inode.Lookup(p, dir, comp)
		if !ok {
			return nil, nil, "", fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		if !next.Dir {
			return nil, nil, "", fmt.Errorf("%w: %s", ErrNotDir, comp)
		}
		dir = next
	}
	return fs, dir, parts[len(parts)-1], nil
}

// resolve walks path to its inode.
func (v *VFS) resolve(p *sim.Proc, path string) (FileSystem, *Inode, error) {
	fs, dir, last, err := v.resolveDir(p, path)
	if err != nil {
		return nil, nil, err
	}
	if dir == nil {
		return fs, fs.Root(), nil
	}
	p.Exec(v.LookupCost)
	ino, ok := fs.Ops().Inode.Lookup(p, dir, last)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return fs, ino, nil
}

// pick selects the mount owning path and returns the path remainder.
func (v *VFS) pick(path string) (FileSystem, string, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, "", fmt.Errorf("vfs: path %q not absolute", path)
	}
	for _, m := range v.mounts {
		if m.path == "" || path == m.path || strings.HasPrefix(path, m.path+"/") {
			return m.fs, strings.TrimPrefix(path, m.path), nil
		}
	}
	return nil, "", fmt.Errorf("vfs: nothing mounted for %q", path)
}

func split(rest string) []string {
	rest = strings.Trim(rest, "/")
	if rest == "" {
		return nil
	}
	return strings.Split(rest, "/")
}

// Open resolves path and opens it through the file system's Open op.
func (v *VFS) Open(p *sim.Proc, path string, directIO bool) (*File, error) {
	v.tr.BeginRoot(p, "open")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	fs, ino, err := v.resolve(p, path)
	if err != nil {
		return nil, err
	}
	return fs.Ops().File.Open(p, ino, directIO), nil
}

// Close releases an open file.
func (v *VFS) Close(p *sim.Proc, f *File) {
	v.tr.BeginRoot(p, "close")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	if rel := f.Inode.FS.Ops().File.Release; rel != nil {
		rel(p, f)
	}
}

// Read reads up to n bytes at the current position.
func (v *VFS) Read(p *sim.Proc, f *File, n uint64) uint64 {
	v.tr.BeginRoot(p, "read")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	return f.Inode.FS.Ops().File.Read(p, f, n)
}

// Write writes n bytes at the current position.
func (v *VFS) Write(p *sim.Proc, f *File, n uint64) uint64 {
	v.tr.BeginRoot(p, "write")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	return f.Inode.FS.Ops().File.Write(p, f, n)
}

// Llseek repositions the file offset.
func (v *VFS) Llseek(p *sim.Proc, f *File, off int64, whence Whence) uint64 {
	v.tr.BeginRoot(p, "llseek")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	return f.Inode.FS.Ops().File.Llseek(p, f, off, whence)
}

// Getdents returns the next batch of directory entries (empty at EOF).
func (v *VFS) Getdents(p *sim.Proc, f *File) []DirEntry {
	v.tr.BeginRoot(p, "readdir")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	return f.Inode.FS.Ops().File.Readdir(p, f)
}

// Fsync flushes a file's dirty state to disk.
func (v *VFS) Fsync(p *sim.Proc, f *File) {
	v.tr.BeginRoot(p, "fsync")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	f.Inode.FS.Ops().File.Fsync(p, f)
}

// Create makes a new regular file and opens it.
func (v *VFS) Create(p *sim.Proc, path string) (*File, error) {
	v.tr.BeginRoot(p, "create")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	fs, dir, name, err := v.resolveDir(p, path)
	if err != nil {
		return nil, err
	}
	if dir == nil {
		return nil, ErrExists
	}
	ino, err := fs.Ops().Inode.Create(p, dir, name)
	if err != nil {
		return nil, err
	}
	return fs.Ops().File.Open(p, ino, false), nil
}

// Unlink removes a file.
func (v *VFS) Unlink(p *sim.Proc, path string) error {
	v.tr.BeginRoot(p, "unlink")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	fs, dir, name, err := v.resolveDir(p, path)
	if err != nil {
		return err
	}
	if dir == nil {
		return ErrIsDir
	}
	return fs.Ops().Inode.Unlink(p, dir, name)
}

// Mkdir creates a directory.
func (v *VFS) Mkdir(p *sim.Proc, path string) error {
	v.tr.BeginRoot(p, "mkdir")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	fs, dir, name, err := v.resolveDir(p, path)
	if err != nil {
		return err
	}
	if dir == nil {
		return ErrExists
	}
	_, err = fs.Ops().Inode.Mkdir(p, dir, name)
	return err
}

// Stat resolves path and returns its inode.
func (v *VFS) Stat(p *sim.Proc, path string) (*Inode, error) {
	v.tr.BeginRoot(p, "stat")
	defer v.tr.EndRoot(p)
	p.Exec(v.SyscallEntry)
	_, ino, err := v.resolve(p, path)
	return ino, err
}
