package vfs

import (
	"osprof/internal/mem"
	"osprof/internal/sim"
)

// This file provides the generic file-operation helpers that the kernel
// exports for use by many file systems, like generic_read_dir and
// generic_file_llseek in the paper's Figure 4. Concrete file systems
// install these into their operation vectors.

// Costs of the llseek paths, calibrated to the paper's §6.1
// measurements: the unpatched generic_file_llseek averaged ~400 cycles
// (two ~100-cycle semaphore operations plus the locked body), the
// patched version ~120 cycles — a 70% reduction.
const (
	llseekLockedBody  = 200
	llseekUnlockedTot = 120
)

// GenericFileLlseek returns the llseek implementation used by most
// Linux file systems including Ext2 and Ext3 (§6.1).
//
// With buggy=true it reproduces Linux 2.6.11: the per-process file
// position update is protected by the *shared* inode semaphore i_sem,
// so an llseek can block behind another process's direct-I/O read of
// the same file. With buggy=false it applies the paper's fix: only
// directory objects need the semaphore.
func GenericFileLlseek(buggy bool) func(p *sim.Proc, f *File, off int64, whence Whence) uint64 {
	return func(p *sim.Proc, f *File, off int64, whence Whence) uint64 {
		if buggy || f.Inode.Dir {
			f.Inode.Sem.Down(p)
			p.Exec(llseekLockedBody)
			f.Pos = seekTarget(f, off, whence)
			f.Inode.Sem.Up(p)
			return f.Pos
		}
		p.Exec(llseekUnlockedTot)
		f.Pos = seekTarget(f, off, whence)
		return f.Pos
	}
}

func seekTarget(f *File, off int64, whence Whence) uint64 {
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = int64(f.Pos)
	case SeekEnd:
		base = int64(f.Inode.Size)
	}
	t := base + off
	if t < 0 {
		t = 0
	}
	return uint64(t)
}

// ReadParams tunes GenericFileRead.
type ReadParams struct {
	// Cache is the page cache holding this file system's pages.
	Cache *mem.Cache

	// SetupCost is charged on every read, even a zero-byte one; it
	// sets the position of the paper's Figure 3 "read of zero bytes"
	// peak (bucket 6 at ~100 cycles).
	SetupCost uint64

	// CopyPageCost is the cost of copying one cached page to user
	// space (plus lookup), producing the cached-read peak.
	CopyPageCost uint64

	// Readahead is the batch size (in pages) for ReadPages when a
	// read misses the cache.
	Readahead uint64
}

func (rp *ReadParams) applyDefaults() {
	if rp.SetupCost == 0 {
		rp.SetupCost = 60
	}
	if rp.CopyPageCost == 0 {
		rp.CopyPageCost = 1_500
	}
	if rp.Readahead == 0 {
		rp.Readahead = 16
	}
}

// GenericFileRead returns the buffered read implementation
// (generic_file_read): per page, hit the page cache or initiate a
// batched ReadPages and wait for the page to become up to date. The
// wait is charged to the read operation, not to readpages, matching the
// paper's observation that readpage "just initiates the I/O" (§6.2).
func GenericFileRead(rp ReadParams) func(p *sim.Proc, f *File, n uint64) uint64 {
	rp.applyDefaults()
	return func(p *sim.Proc, f *File, n uint64) uint64 {
		p.Exec(rp.SetupCost)
		if n == 0 || f.Pos >= f.Inode.Size {
			return 0
		}
		if f.Pos+n > f.Inode.Size {
			n = f.Inode.Size - f.Pos
		}
		ino := f.Inode
		ops := ino.FS.Ops()
		first := f.Pos / PageSize
		last := (f.Pos + n - 1) / PageSize
		filePages := ino.Pages()
		for idx := first; idx <= last; idx++ {
			key := mem.Key{Ino: ino.ID, Index: idx}
			pg := rp.Cache.Lookup(key)
			if pg == nil || !pg.Uptodate {
				count := rp.Readahead
				if idx+count > filePages {
					count = filePages - idx
				}
				ops.Address.ReadPages(p, ino, idx, count)
				pg = rp.Cache.Peek(key)
				if pg == nil {
					// The file system failed to create the page;
					// treat as a short read.
					n = idx*PageSize - f.Pos
					break
				}
			}
			pg.WaitUptodate(p)
			p.Exec(rp.CopyPageCost)
		}
		f.Pos += n
		return n
	}
}

// GenericOpen returns a trivial Open implementation charging cost
// cycles for file-object allocation.
func GenericOpen(cost uint64) func(p *sim.Proc, ino *Inode, directIO bool) *File {
	return func(p *sim.Proc, ino *Inode, directIO bool) *File {
		p.Exec(cost)
		return &File{Inode: ino, DirectIO: directIO}
	}
}

// GenericRelease returns a trivial Release implementation.
func GenericRelease(cost uint64) func(p *sim.Proc, f *File) {
	return func(p *sim.Proc, f *File) { p.Exec(cost) }
}
