package vfs

import (
	"errors"
	"testing"

	"osprof/internal/sim"
)

// fakeFS is a minimal in-memory FileSystem for exercising the VFS
// layer and generic helpers without a disk.
type fakeFS struct {
	ops  Ops
	root *Inode
	k    *sim.Kernel
}

func newFakeFS(k *sim.Kernel) *fakeFS {
	fs := &fakeFS{k: k}
	fs.root = &Inode{ID: 1, Dir: true, Sem: sim.NewSemaphore(k, "root"), FS: fs}
	children := map[string]*Inode{}
	mk := func(name string, dir bool, size uint64) *Inode {
		ino := &Inode{
			ID:   uint64(len(children) + 2),
			Dir:  dir,
			Size: size,
			Sem:  sim.NewSemaphore(k, name),
			FS:   fs,
		}
		children[name] = ino
		return ino
	}
	sub := mk("sub", true, 0)
	mk("file", false, 3*PageSize)
	subChildren := map[string]*Inode{"inner": {
		ID: 99, Size: 10, Sem: sim.NewSemaphore(k, "inner"), FS: fs,
	}}
	fs.ops = Ops{
		File: FileOps{
			Open:    GenericOpen(100),
			Release: GenericRelease(50),
			Llseek:  GenericFileLlseek(false),
			Read: func(p *sim.Proc, f *File, n uint64) uint64 {
				p.Exec(10)
				if f.Pos >= f.Inode.Size {
					return 0
				}
				if f.Pos+n > f.Inode.Size {
					n = f.Inode.Size - f.Pos
				}
				f.Pos += n
				return n
			},
		},
		Inode: InodeOps{
			Lookup: func(p *sim.Proc, dir *Inode, name string) (*Inode, bool) {
				p.Exec(10)
				var m map[string]*Inode
				switch dir {
				case fs.root:
					m = children
				case sub:
					m = subChildren
				default:
					return nil, false
				}
				ino, ok := m[name]
				return ino, ok
			},
		},
	}
	return fs
}

func (f *fakeFS) Name() string { return "fake" }
func (f *fakeFS) Root() *Inode { return f.root }
func (f *fakeFS) Ops() *Ops    { return &f.ops }

func run(t *testing.T, body func(p *sim.Proc, v *VFS)) {
	t.Helper()
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 10})
	v := New(k)
	if err := v.Mount("/", newFakeFS(k)); err != nil {
		t.Fatal(err)
	}
	k.Spawn("t", func(p *sim.Proc) { body(p, v) })
	k.Run()
}

func TestResolveNested(t *testing.T) {
	run(t, func(p *sim.Proc, v *VFS) {
		if _, err := v.Stat(p, "/sub/inner"); err != nil {
			t.Errorf("stat nested: %v", err)
		}
		if _, err := v.Stat(p, "/sub/ghost"); !errors.Is(err, ErrNotFound) {
			t.Errorf("ghost: %v", err)
		}
		if _, err := v.Stat(p, "/file/impossible"); !errors.Is(err, ErrNotDir) {
			t.Errorf("file as dir: %v", err)
		}
	})
}

func TestResolveRoot(t *testing.T) {
	run(t, func(p *sim.Proc, v *VFS) {
		ino, err := v.Stat(p, "/")
		if err != nil || !ino.Dir {
			t.Errorf("root stat: %v %+v", err, ino)
		}
	})
}

func TestRelativePathRejected(t *testing.T) {
	run(t, func(p *sim.Proc, v *VFS) {
		if _, err := v.Open(p, "no-slash", false); err == nil {
			t.Error("relative path accepted")
		}
	})
}

func TestMountLongestPrefixWins(t *testing.T) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 10})
	v := New(k)
	outer, inner := newFakeFS(k), newFakeFS(k)
	if err := v.Mount("/", outer); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/mnt", inner); err != nil {
		t.Fatal(err)
	}
	if err := v.Mount("/mnt", inner); err == nil {
		t.Error("double mount accepted")
	}
	k.Spawn("t", func(p *sim.Proc) {
		ino, err := v.Stat(p, "/mnt/file")
		if err != nil {
			t.Errorf("stat through mount: %v", err)
			return
		}
		if ino.FS != inner {
			t.Error("resolution crossed the wrong mount")
		}
	})
	k.Run()
}

func TestGenericLlseekWhence(t *testing.T) {
	run(t, func(p *sim.Proc, v *VFS) {
		f, err := v.Open(p, "/file", false)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Llseek(p, f, 100, SeekSet); got != 100 {
			t.Errorf("SeekSet = %d", got)
		}
		if got := v.Llseek(p, f, 50, SeekCur); got != 150 {
			t.Errorf("SeekCur = %d", got)
		}
		if got := v.Llseek(p, f, -PageSize, SeekEnd); got != 2*PageSize {
			t.Errorf("SeekEnd = %d", got)
		}
		if got := v.Llseek(p, f, -1<<40, SeekSet); got != 0 {
			t.Errorf("negative seek clamps to 0, got %d", got)
		}
	})
}

func TestBuggyLlseekTakesSem(t *testing.T) {
	k := sim.New(sim.Config{NumCPUs: 2, ContextSwitch: 10})
	fs := newFakeFS(k)
	fs.ops.File.Llseek = GenericFileLlseek(true)
	v := New(k)
	if err := v.Mount("/", fs); err != nil {
		t.Fatal(err)
	}
	var ino *Inode
	k.Spawn("holder", func(p *sim.Proc) {
		f, _ := v.Open(p, "/file", false)
		ino = f.Inode
		ino.Sem.Down(p)
		p.Exec(100_000)
		ino.Sem.Up(p)
	})
	var waited uint64
	k.Spawn("seeker", func(p *sim.Proc) {
		p.Exec(1_000)
		f, _ := v.Open(p, "/file", false)
		start := p.Now()
		v.Llseek(p, f, 0, SeekSet)
		waited = p.Now() - start
	})
	k.Run()
	if waited < 50_000 {
		t.Errorf("buggy llseek did not wait on the held i_sem: %d", waited)
	}
	if ino.Sem.Stats().Contentions == 0 {
		t.Error("no contention recorded")
	}
}

func TestInodePages(t *testing.T) {
	for size, want := range map[uint64]uint64{
		0: 0, 1: 1, PageSize: 1, PageSize + 1: 2, 3 * PageSize: 3,
	} {
		i := Inode{Size: size}
		if got := i.Pages(); got != want {
			t.Errorf("Pages(size=%d) = %d, want %d", size, got, want)
		}
	}
}

func TestSyscallEntryCostCharged(t *testing.T) {
	run(t, func(p *sim.Proc, v *VFS) {
		f, _ := v.Open(p, "/file", false)
		start := p.Now()
		v.Read(p, f, 0)
		el := p.Now() - start
		// Syscall entry (64) + read body (10).
		if el != v.SyscallEntry+10 {
			t.Errorf("read(0) cost %d, want %d", el, v.SyscallEntry+10)
		}
	})
}

func TestNothingMounted(t *testing.T) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 10})
	v := New(k)
	k.Spawn("t", func(p *sim.Proc) {
		if _, err := v.Open(p, "/x", false); err == nil {
			t.Error("open with no mounts succeeded")
		}
	})
	k.Run()
}
