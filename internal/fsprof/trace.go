package fsprof

import (
	"osprof/internal/sim"
	"osprof/internal/trace"
	"osprof/internal/vfs"
)

// TracedOps is a file system whose operation vectors have been wrapped
// in file-system layer spans (internal/trace), using the same in-place
// FoSgen-style replacement as Instrumented: nested operations (readdir
// calling readpage) open nested fs-layer spans, whose self-times sum
// without double counting.
//
// Install the trace wrapper AFTER the profiling wrapper, so the span
// brackets everything the profiler sees — probe overhead included —
// and the layer decomposition explains the recorded fs-level profile
// rather than an idealized one.
type TracedOps struct {
	FS   vfs.FileSystem
	orig vfs.Ops
}

// TraceFS wraps every installed operation of fs in an fs-layer span on
// tr. Call Restore to undo.
func TraceFS(fs vfs.FileSystem, tr *trace.Tracer) *TracedOps {
	to := &TracedOps{FS: fs, orig: *fs.Ops()}
	to.install(tr)
	return to
}

// Restore reinstates the operation vectors as they were before TraceFS.
func (to *TracedOps) Restore() { *to.FS.Ops() = to.orig }

func (to *TracedOps) install(tr *trace.Tracer) {
	ops := to.FS.Ops()
	o := &to.orig

	if fn := o.File.Read; fn != nil {
		ops.File.Read = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			tr.Enter(p, trace.LayerFS)
			r := fn(p, f, n)
			tr.Exit(p, trace.LayerFS)
			return r
		}
	}
	if fn := o.File.Write; fn != nil {
		ops.File.Write = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			tr.Enter(p, trace.LayerFS)
			r := fn(p, f, n)
			tr.Exit(p, trace.LayerFS)
			return r
		}
	}
	if fn := o.File.Llseek; fn != nil {
		ops.File.Llseek = func(p *sim.Proc, f *vfs.File, off int64, w vfs.Whence) uint64 {
			tr.Enter(p, trace.LayerFS)
			r := fn(p, f, off, w)
			tr.Exit(p, trace.LayerFS)
			return r
		}
	}
	if fn := o.File.Readdir; fn != nil {
		ops.File.Readdir = func(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
			tr.Enter(p, trace.LayerFS)
			r := fn(p, f)
			tr.Exit(p, trace.LayerFS)
			return r
		}
	}
	if fn := o.File.Fsync; fn != nil {
		ops.File.Fsync = func(p *sim.Proc, f *vfs.File) {
			tr.Enter(p, trace.LayerFS)
			fn(p, f)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.File.Open; fn != nil {
		ops.File.Open = func(p *sim.Proc, ino *vfs.Inode, dio bool) *vfs.File {
			tr.Enter(p, trace.LayerFS)
			r := fn(p, ino, dio)
			tr.Exit(p, trace.LayerFS)
			return r
		}
	}
	if fn := o.File.Release; fn != nil {
		ops.File.Release = func(p *sim.Proc, f *vfs.File) {
			tr.Enter(p, trace.LayerFS)
			fn(p, f)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.Inode.Lookup; fn != nil {
		ops.Inode.Lookup = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
			tr.Enter(p, trace.LayerFS)
			ino, ok := fn(p, dir, name)
			tr.Exit(p, trace.LayerFS)
			return ino, ok
		}
	}
	if fn := o.Inode.Create; fn != nil {
		ops.Inode.Create = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			tr.Enter(p, trace.LayerFS)
			ino, err := fn(p, dir, name)
			tr.Exit(p, trace.LayerFS)
			return ino, err
		}
	}
	if fn := o.Inode.Unlink; fn != nil {
		ops.Inode.Unlink = func(p *sim.Proc, dir *vfs.Inode, name string) error {
			tr.Enter(p, trace.LayerFS)
			err := fn(p, dir, name)
			tr.Exit(p, trace.LayerFS)
			return err
		}
	}
	if fn := o.Inode.Mkdir; fn != nil {
		ops.Inode.Mkdir = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			tr.Enter(p, trace.LayerFS)
			ino, err := fn(p, dir, name)
			tr.Exit(p, trace.LayerFS)
			return ino, err
		}
	}
	if fn := o.Address.ReadPage; fn != nil {
		ops.Address.ReadPage = func(p *sim.Proc, ino *vfs.Inode, idx uint64) {
			tr.Enter(p, trace.LayerFS)
			fn(p, ino, idx)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.Address.ReadPages; fn != nil {
		ops.Address.ReadPages = func(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
			tr.Enter(p, trace.LayerFS)
			fn(p, ino, idx, n)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.Address.WritePage; fn != nil {
		ops.Address.WritePage = func(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {
			tr.Enter(p, trace.LayerFS)
			fn(p, ino, idx, sync)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.Super.WriteSuper; fn != nil {
		ops.Super.WriteSuper = func(p *sim.Proc) {
			tr.Enter(p, trace.LayerFS)
			fn(p)
			tr.Exit(p, trace.LayerFS)
		}
	}
	if fn := o.Super.SyncFS; fn != nil {
		ops.Super.SyncFS = func(p *sim.Proc) {
			tr.Enter(p, trace.LayerFS)
			fn(p)
			tr.Exit(p, trace.LayerFS)
		}
	}
}
