// Package fsprof implements the OSprof profilers of the paper's
// Figure 2: the user-level profiler (wrapping the system-call surface),
// the file-system-level profiler (instrumenting VFS operation vectors in
// place, like the FoSgen source instrumentation of §4), and the
// driver-level profiler (observing disk requests).
//
// The instrumentation cost model follows §5.2: each profiled operation
// pays for calling the profiling functions, reading the TSC register
// twice, and sorting/storing the result — about 200 cycles total, of
// which only the ~40 cycles between the two TSC reads appear inside the
// measured latency (hence the smallest values in any profile land in
// bucket 5).
package fsprof

import (
	"osprof/internal/core"
	"osprof/internal/load"
	"osprof/internal/sim"
)

// Mode selects how much of the profiling work runs; the partial modes
// exist to reproduce the §5.2 overhead decomposition.
type Mode int

const (
	// Full performs complete profiling: hooks, TSC reads, and bucket
	// sort/store.
	Full Mode = iota

	// EmptyHooks calls empty profiling function bodies (measures call
	// overhead only).
	EmptyHooks

	// TSCOnly reads the TSC but does not sort or store.
	TSCOnly
)

// Costs models the per-operation instrumentation CPU costs in cycles.
type Costs struct {
	// CallPair is the cost of calling the pre- and post-operation
	// profiling functions (outside the measured window).
	CallPair uint64

	// TSCWindow is the instrumentation time inside the measured
	// window: the tail of the first TSC read plus the head of the
	// second (~40 cycles, §5.2) — the floor of every profile.
	TSCWindow uint64

	// SortStore is the bucket computation and store cost (outside the
	// measured window).
	SortStore uint64
}

// DefaultCosts matches the paper's measured decomposition: 1.5% calls /
// 0.5% TSC / 2.0% sort+store of Postmark system time, ~215 cycles per
// operation in total.
func DefaultCosts() Costs {
	return Costs{CallPair: 75, TSCWindow: 40, SortStore: 100}
}

// Sink receives one measurement per profiled operation invocation.
type Sink interface {
	Record(op string, now, latency uint64)
}

// SetSink records into a core.Set (the standard accumulated profile).
type SetSink struct{ Set *core.Set }

// Record implements Sink.
func (s SetSink) Record(op string, _ uint64, latency uint64) {
	s.Set.Record(op, latency)
}

// SampledSink records into per-operation time-segmented profiles
// (§3.1 "Profile sampling", Figure 9).
type SampledSink struct {
	Start    uint64
	Interval uint64
	profiles map[string]*core.Sampled
}

// NewSampledSink creates a sampled sink with segment length interval
// cycles, starting the time base at start.
func NewSampledSink(start, interval uint64) *SampledSink {
	return &SampledSink{
		Start:    start,
		Interval: interval,
		profiles: make(map[string]*core.Sampled),
	}
}

// Record implements Sink.
func (s *SampledSink) Record(op string, now, latency uint64) {
	sp := s.profiles[op]
	if sp == nil {
		sp = core.NewSampled(op, s.Start, s.Interval)
		s.profiles[op] = sp
	}
	sp.Record(now, latency)
}

// Profile returns the sampled profile for op, or nil.
func (s *SampledSink) Profile(op string) *core.Sampled { return s.profiles[op] }

// Ops lists the operations recorded so far.
func (s *SampledSink) Ops() []string {
	out := make([]string, 0, len(s.profiles))
	for op := range s.profiles {
		out = append(out, op)
	}
	return out
}

// probe carries the shared instrumentation state.
type probe struct {
	sink  Sink
	mode  Mode
	costs Costs

	// loads, when set, receives every Full-mode sample a second time,
	// keyed by the run-queue load at post time (load-conditioned
	// profiles). The load read is a pure observation with no simulated
	// cost, so enabling it never perturbs the event timeline.
	loads *load.Recorder
}

// opRef binds one operation name to its lazily-bound load-companion
// handle, created once per wrapped operation at instrumentation time
// (the tracer's opHandles pattern): the post hook records conditioned
// samples through the handle instead of paying a map lookup on every
// sample, which would cost more than the measurement itself on cached
// fast-path operations.
type opRef struct {
	op string

	// lh is the load handle; from tracks which recorder it was bound
	// against. SetLoadRecorder runs after installation (Instrument
	// first, condition later), so binding happens on the first sample,
	// and a re-targeted recorder rebinds instead of recording into a
	// stale set.
	lh   *load.Handle
	from *load.Recorder
}

// ref creates the per-operation ref a wrapper closure captures.
func ref(op string) *opRef { return &opRef{op: op} }

// pre runs the pre-operation hook; it returns the start TSC.
func (pr *probe) pre(p *sim.Proc) uint64 {
	p.Exec(pr.costs.CallPair / 2)
	if pr.mode == EmptyHooks {
		return 0
	}
	start := p.ReadTSC()
	p.Exec(pr.costs.TSCWindow / 2)
	return start
}

// post runs the post-operation hook, recording the latency. The
// subtraction goes through sim.TSCDelta: a process that migrated CPUs
// mid-operation can read a smaller (skewed) counter at exit than at
// entry, and the raw uint64 difference would wrap to a ~2^64
// top-bucket garbage sample (§3.4).
func (pr *probe) post(p *sim.Proc, r *opRef, start uint64) {
	if pr.mode != EmptyHooks {
		p.Exec(pr.costs.TSCWindow - pr.costs.TSCWindow/2)
		end := p.ReadTSC()
		if pr.mode == Full {
			p.Exec(pr.costs.SortStore)
			lat := sim.TSCDelta(end, start)
			pr.sink.Record(r.op, p.Now(), lat)
			if pr.loads != nil {
				if r.from != pr.loads {
					r.lh, r.from = pr.loads.Handle(r.op), pr.loads
				}
				// The load read is a pure observation with no simulated
				// cost, so conditioning never perturbs the timeline.
				r.lh.Record(sim.LoadBand(p.Kernel().Load()), lat)
			}
		}
	}
	p.Exec(pr.costs.CallPair - pr.costs.CallPair/2)
}
