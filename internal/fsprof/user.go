package fsprof

import (
	"osprof/internal/core"
	"osprof/internal/load"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// UserProfiler wraps the system-call surface, the analog of the paper's
// POSIX user-level profilers that replace system calls with
// latency-measuring macros (§4). Unlike the file-system-level profiler,
// it observes whole system calls: VFS entry costs and path resolution
// are inside its measurement window.
type UserProfiler struct {
	inner vfs.Syscalls
	pr    *probe
	refs  userRefs
}

// userRefs holds one pre-bound opRef per wrapped system call.
type userRefs struct {
	open, close, read, write, llseek, getdents,
	fsync, create, unlink, mkdir, stat *opRef
}

func newUserRefs() userRefs {
	return userRefs{
		open: ref("open"), close: ref("close"), read: ref("read"),
		write: ref("write"), llseek: ref("llseek"), getdents: ref("getdents"),
		fsync: ref("fsync"), create: ref("create"), unlink: ref("unlink"),
		mkdir: ref("mkdir"), stat: ref("stat"),
	}
}

var _ vfs.Syscalls = (*UserProfiler)(nil)

// NewUserProfiler wraps sc, recording full profiles into set.
func NewUserProfiler(sc vfs.Syscalls, set *core.Set) *UserProfiler {
	return &UserProfiler{
		inner: sc,
		pr:    &probe{sink: SetSink{Set: set}, mode: Full, costs: DefaultCosts()},
		refs:  newUserRefs(),
	}
}

// NewUserProfilerSink wraps sc with an explicit sink, mode and costs.
func NewUserProfilerSink(sc vfs.Syscalls, sink Sink, mode Mode, costs Costs) *UserProfiler {
	return &UserProfiler{
		inner: sc,
		pr:    &probe{sink: sink, mode: mode, costs: costs},
		refs:  newUserRefs(),
	}
}

// SetLoadRecorder makes the probe also record every sample into
// load-keyed companion profiles (load-conditioned profiling).
func (u *UserProfiler) SetLoadRecorder(r *load.Recorder) { u.pr.loads = r }

// Open implements vfs.Syscalls.
func (u *UserProfiler) Open(p *sim.Proc, path string, directIO bool) (*vfs.File, error) {
	t := u.pr.pre(p)
	f, err := u.inner.Open(p, path, directIO)
	u.pr.post(p, u.refs.open, t)
	return f, err
}

// Close implements vfs.Syscalls.
func (u *UserProfiler) Close(p *sim.Proc, f *vfs.File) {
	t := u.pr.pre(p)
	u.inner.Close(p, f)
	u.pr.post(p, u.refs.close, t)
}

// Read implements vfs.Syscalls.
func (u *UserProfiler) Read(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	t := u.pr.pre(p)
	r := u.inner.Read(p, f, n)
	u.pr.post(p, u.refs.read, t)
	return r
}

// Write implements vfs.Syscalls.
func (u *UserProfiler) Write(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	t := u.pr.pre(p)
	r := u.inner.Write(p, f, n)
	u.pr.post(p, u.refs.write, t)
	return r
}

// Llseek implements vfs.Syscalls.
func (u *UserProfiler) Llseek(p *sim.Proc, f *vfs.File, off int64, w vfs.Whence) uint64 {
	t := u.pr.pre(p)
	r := u.inner.Llseek(p, f, off, w)
	u.pr.post(p, u.refs.llseek, t)
	return r
}

// Getdents implements vfs.Syscalls.
func (u *UserProfiler) Getdents(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
	t := u.pr.pre(p)
	r := u.inner.Getdents(p, f)
	u.pr.post(p, u.refs.getdents, t)
	return r
}

// Fsync implements vfs.Syscalls.
func (u *UserProfiler) Fsync(p *sim.Proc, f *vfs.File) {
	t := u.pr.pre(p)
	u.inner.Fsync(p, f)
	u.pr.post(p, u.refs.fsync, t)
}

// Create implements vfs.Syscalls.
func (u *UserProfiler) Create(p *sim.Proc, path string) (*vfs.File, error) {
	t := u.pr.pre(p)
	f, err := u.inner.Create(p, path)
	u.pr.post(p, u.refs.create, t)
	return f, err
}

// Unlink implements vfs.Syscalls.
func (u *UserProfiler) Unlink(p *sim.Proc, path string) error {
	t := u.pr.pre(p)
	err := u.inner.Unlink(p, path)
	u.pr.post(p, u.refs.unlink, t)
	return err
}

// Mkdir implements vfs.Syscalls.
func (u *UserProfiler) Mkdir(p *sim.Proc, path string) error {
	t := u.pr.pre(p)
	err := u.inner.Mkdir(p, path)
	u.pr.post(p, u.refs.mkdir, t)
	return err
}

// Stat implements vfs.Syscalls.
func (u *UserProfiler) Stat(p *sim.Proc, path string) (*vfs.Inode, error) {
	t := u.pr.pre(p)
	ino, err := u.inner.Stat(p, path)
	u.pr.post(p, u.refs.stat, t)
	return ino, err
}
