package fsprof

import (
	"testing"

	"osprof/internal/core"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

func rig() (*sim.Kernel, *ext2.FS, *vfs.VFS) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 4096)
	fs := ext2.New(k, d, pc, "ext2", ext2.Config{})
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	return k, fs, v
}

func TestInstrumentRecordsFSOps(t *testing.T) {
	k, fs, v := rig()
	fs.MustAddFile(fs.Root(), "f", 2*vfs.PageSize)
	set := core.NewSet("fs-level")
	ins := InstrumentSet(fs, set)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		v.Read(p, f, vfs.PageSize)
		v.Close(p, f)
	})
	k.Run()
	ins.Restore()
	for _, op := range []string{"open", "read", "release", "lookup"} {
		prof := set.Lookup(op)
		if prof == nil || prof.Count == 0 {
			t.Errorf("op %q not recorded", op)
		}
	}
	if err := set.Validate(); err != nil {
		t.Error(err)
	}
}

func TestInstrumentSeesNestedCalls(t *testing.T) {
	// The paper's Figure 7 depends on readdir's internal readpage
	// calls being profiled: FoSgen-style in-place wrapping must catch
	// calls made from one FS operation into another.
	k, fs, v := rig()
	dir := fs.MustAddDir(fs.Root(), "d")
	for i := 0; i < 70; i++ { // 2 directory blocks
		fs.MustAddFile(dir, names(i), 100)
	}
	set := core.NewSet("fs-level")
	InstrumentSet(fs, set)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/d", false)
		for len(v.Getdents(p, f)) > 0 {
		}
	})
	k.Run()
	rp := set.Lookup("readpage")
	if rp == nil || rp.Count != 2 {
		t.Fatalf("readpage profile missing or wrong: %+v", rp)
	}
	// 70 entries at 16 per call: 4 calls for block 0, 1 for block 1,
	// plus the final past-EOF call.
	rd := set.Lookup("readdir")
	if rd == nil || rd.Count != 6 {
		t.Fatalf("readdir count = %+v, want 6", rd)
	}
}

func names(i int) string { return string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func TestMeasurementFloorIsBucket5(t *testing.T) {
	// §5.2: "the smallest values we observed in any profile were
	// always in the 5th bucket" — the ~40 cycles between TSC reads.
	k, fs, v := rig()
	fs.MustAddFile(fs.Root(), "f", vfs.PageSize)
	set := core.NewSet("fs-level")
	InstrumentSet(fs, set)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		for i := 0; i < 50; i++ {
			v.Read(p, f, 0) // zero-byte read: fastest possible op
		}
	})
	k.Run()
	read := set.Lookup("read")
	lo, _, ok := read.Range()
	if !ok {
		t.Fatal("no read profile")
	}
	if lo < 5 {
		t.Errorf("fastest recorded op in bucket %d, floor should be 5", lo)
	}
	if read.Min < 40 {
		t.Errorf("min latency %d < TSC window 40", read.Min)
	}
}

func TestRestoreRemovesOverhead(t *testing.T) {
	k, fs, v := rig()
	fs.MustAddFile(fs.Root(), "f", vfs.PageSize)
	set := core.NewSet("x")
	ins := InstrumentSet(fs, set)
	ins.Restore()
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		v.Read(p, f, 0)
	})
	k.Run()
	if set.TotalOps() != 0 {
		t.Errorf("restored FS still recorded %d ops", set.TotalOps())
	}
}

func TestModesCostOrdering(t *testing.T) {
	// §5.2 decomposition: empty hooks < TSC only < full profiling.
	sysTime := func(mode Mode, instrument bool) uint64 {
		k, fs, v := rig()
		fs.MustAddFile(fs.Root(), "f", vfs.PageSize)
		if instrument {
			Instrument(fs, SetSink{Set: core.NewSet("x")}, mode, DefaultCosts())
		}
		var st sim.ProcStats
		k.Spawn("w", func(p *sim.Proc) {
			f, _ := v.Open(p, "/f", false)
			for i := 0; i < 1000; i++ {
				v.Read(p, f, 0)
			}
			st = p.Stats()
		})
		k.Run()
		return st.SysCPU
	}
	base := sysTime(Full, false)
	empty := sysTime(EmptyHooks, true)
	tsc := sysTime(TSCOnly, true)
	full := sysTime(Full, true)
	if !(base < empty && empty < tsc && tsc < full) {
		t.Errorf("cost ordering broken: base=%d empty=%d tsc=%d full=%d",
			base, empty, tsc, full)
	}
}

func TestUserProfilerWrapsSyscalls(t *testing.T) {
	k, fs, v := rig()
	fs.MustAddFile(fs.Root(), "f", vfs.PageSize)
	set := core.NewSet("user-level")
	sys := NewUserProfiler(v, set)
	k.Spawn("w", func(p *sim.Proc) {
		f, err := sys.Open(p, "/f", false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		sys.Read(p, f, 100)
		sys.Llseek(p, f, 0, vfs.SeekSet)
		sys.Getdents(p, f)
		sys.Stat(p, "/f")
		sys.Close(p, f)
	})
	k.Run()
	for _, op := range []string{"open", "read", "llseek", "getdents", "stat", "close"} {
		if prof := set.Lookup(op); prof == nil || prof.Count != 1 {
			t.Errorf("user-level op %q not recorded once", op)
		}
	}
	// The user-level read includes the syscall entry: it must be
	// slower than the pure FS-level body.
	if set.Lookup("read").Min < 64 {
		t.Errorf("user-level read min %d should include syscall entry", set.Lookup("read").Min)
	}
}

func TestDriverProfilerRecordsRequests(t *testing.T) {
	k, fs, v := rig()
	fs.MustAddFile(fs.Root(), "f", 4*vfs.PageSize)
	set := core.NewSet("driver-level")
	fs.Disk().SetProbe(NewDriverProfiler(set))
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		v.Read(p, f, 4*vfs.PageSize)
		f2, _ := v.Create(p, "/out")
		v.Write(p, f2, vfs.PageSize)
		v.Fsync(p, f2)
	})
	k.Run()
	if prof := set.Lookup("disk_read"); prof == nil || prof.Count == 0 {
		t.Error("no disk_read profile")
	}
	if prof := set.Lookup("disk_write"); prof == nil || prof.Count == 0 {
		t.Error("no disk_write profile")
	}
}

func TestSampledSinkSegments(t *testing.T) {
	s := NewSampledSink(0, 1000)
	s.Record("read", 100, 7)
	s.Record("read", 2_500, 9)
	sp := s.Profile("read")
	if sp == nil || sp.Len() != 3 {
		t.Fatalf("sampled profile segments = %v", sp)
	}
	if len(s.Ops()) != 1 {
		t.Errorf("ops = %v", s.Ops())
	}
	if s.Profile("nope") != nil {
		t.Error("profile invented")
	}
}
