package fsprof

import (
	"osprof/internal/core"
	"osprof/internal/disk"
)

// DriverProfiler is the driver-level profiler of Figure 2: it observes
// disk-request lifecycles below the file system. Because Linux file
// system writes return right after scheduling the I/O, only this layer
// sees asynchronous write latencies (§4 "Driver-level prolers").
type DriverProfiler struct {
	// Set accumulates request latency profiles under the operations
	// "disk_read" (split into cache-hit and media categories too) and
	// "disk_write".
	Set *core.Set
}

var _ disk.Probe = (*DriverProfiler)(nil)

// NewDriverProfiler creates a driver-level profiler recording into set.
func NewDriverProfiler(set *core.Set) *DriverProfiler {
	return &DriverProfiler{Set: set}
}

// Submitted implements disk.Probe.
func (d *DriverProfiler) Submitted(*disk.Request) {}

// Completed implements disk.Probe.
func (d *DriverProfiler) Completed(r *disk.Request) {
	lat := r.EndTime - r.SubmitTime
	if r.Write {
		d.Set.Record("disk_write", lat)
		return
	}
	d.Set.Record("disk_read", lat)
	if r.CacheHit {
		d.Set.Record("disk_read_cached", lat)
	} else {
		d.Set.Record("disk_read_media", lat)
	}
}
