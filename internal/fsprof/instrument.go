package fsprof

import (
	"osprof/internal/core"
	"osprof/internal/load"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Instrumented is a file system whose operation vectors have been
// replaced in place with latency-measuring wrappers, the way FoSgen
// rewrites file-system sources (§4): because both the VFS layer and the
// file system's own internal calls dispatch through fs.Ops() at call
// time, nested operations (readdir calling readpage) are measured too.
type Instrumented struct {
	FS   vfs.FileSystem
	orig vfs.Ops
	pr   *probe
}

// Instrument wraps every installed operation of fs, recording into
// sink. Call Restore to undo.
func Instrument(fs vfs.FileSystem, sink Sink, mode Mode, costs Costs) *Instrumented {
	ins := &Instrumented{
		FS:   fs,
		orig: *fs.Ops(),
		pr:   &probe{sink: sink, mode: mode, costs: costs},
	}
	ins.install()
	return ins
}

// InstrumentSet is the common case: full profiling into a Set with
// default costs.
func InstrumentSet(fs vfs.FileSystem, set *core.Set) *Instrumented {
	return Instrument(fs, SetSink{Set: set}, Full, DefaultCosts())
}

// Restore reinstates the original operation vectors.
func (ins *Instrumented) Restore() { *ins.FS.Ops() = ins.orig }

// SetLoadRecorder makes the probe also record every sample into
// load-keyed companion profiles (load-conditioned profiling).
func (ins *Instrumented) SetLoadRecorder(r *load.Recorder) { ins.pr.loads = r }

func (ins *Instrumented) install() {
	ops := ins.FS.Ops()
	pr := ins.pr
	o := &ins.orig

	if fn := o.File.Read; fn != nil {
		opRead := ref("read")
		ops.File.Read = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			t := pr.pre(p)
			r := fn(p, f, n)
			pr.post(p, opRead, t)
			return r
		}
	}
	if fn := o.File.Write; fn != nil {
		opWrite := ref("write")
		ops.File.Write = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			t := pr.pre(p)
			r := fn(p, f, n)
			pr.post(p, opWrite, t)
			return r
		}
	}
	if fn := o.File.Llseek; fn != nil {
		opLlseek := ref("llseek")
		ops.File.Llseek = func(p *sim.Proc, f *vfs.File, off int64, w vfs.Whence) uint64 {
			t := pr.pre(p)
			r := fn(p, f, off, w)
			pr.post(p, opLlseek, t)
			return r
		}
	}
	if fn := o.File.Readdir; fn != nil {
		opReaddir := ref("readdir")
		ops.File.Readdir = func(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
			t := pr.pre(p)
			r := fn(p, f)
			pr.post(p, opReaddir, t)
			return r
		}
	}
	if fn := o.File.Fsync; fn != nil {
		opFsync := ref("fsync")
		ops.File.Fsync = func(p *sim.Proc, f *vfs.File) {
			t := pr.pre(p)
			fn(p, f)
			pr.post(p, opFsync, t)
		}
	}
	if fn := o.File.Open; fn != nil {
		opOpen := ref("open")
		ops.File.Open = func(p *sim.Proc, ino *vfs.Inode, dio bool) *vfs.File {
			t := pr.pre(p)
			r := fn(p, ino, dio)
			pr.post(p, opOpen, t)
			return r
		}
	}
	if fn := o.File.Release; fn != nil {
		opRelease := ref("release")
		ops.File.Release = func(p *sim.Proc, f *vfs.File) {
			t := pr.pre(p)
			fn(p, f)
			pr.post(p, opRelease, t)
		}
	}
	if fn := o.Inode.Lookup; fn != nil {
		opLookup := ref("lookup")
		ops.Inode.Lookup = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
			t := pr.pre(p)
			ino, ok := fn(p, dir, name)
			pr.post(p, opLookup, t)
			return ino, ok
		}
	}
	if fn := o.Inode.Create; fn != nil {
		opCreate := ref("create")
		ops.Inode.Create = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			t := pr.pre(p)
			ino, err := fn(p, dir, name)
			pr.post(p, opCreate, t)
			return ino, err
		}
	}
	if fn := o.Inode.Unlink; fn != nil {
		opUnlink := ref("unlink")
		ops.Inode.Unlink = func(p *sim.Proc, dir *vfs.Inode, name string) error {
			t := pr.pre(p)
			err := fn(p, dir, name)
			pr.post(p, opUnlink, t)
			return err
		}
	}
	if fn := o.Inode.Mkdir; fn != nil {
		opMkdir := ref("mkdir")
		ops.Inode.Mkdir = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			t := pr.pre(p)
			ino, err := fn(p, dir, name)
			pr.post(p, opMkdir, t)
			return ino, err
		}
	}
	if fn := o.Address.ReadPage; fn != nil {
		opReadpage := ref("readpage")
		ops.Address.ReadPage = func(p *sim.Proc, ino *vfs.Inode, idx uint64) {
			t := pr.pre(p)
			fn(p, ino, idx)
			pr.post(p, opReadpage, t)
		}
	}
	if fn := o.Address.ReadPages; fn != nil {
		opReadpages := ref("readpages")
		ops.Address.ReadPages = func(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
			t := pr.pre(p)
			fn(p, ino, idx, n)
			pr.post(p, opReadpages, t)
		}
	}
	if fn := o.Address.WritePage; fn != nil {
		opWritepage := ref("writepage")
		ops.Address.WritePage = func(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {
			t := pr.pre(p)
			fn(p, ino, idx, sync)
			pr.post(p, opWritepage, t)
		}
	}
	if fn := o.Super.WriteSuper; fn != nil {
		opWriteSuper := ref("write_super")
		ops.Super.WriteSuper = func(p *sim.Proc) {
			t := pr.pre(p)
			fn(p)
			pr.post(p, opWriteSuper, t)
		}
	}
	if fn := o.Super.SyncFS; fn != nil {
		opSyncFs := ref("sync_fs")
		ops.Super.SyncFS = func(p *sim.Proc) {
			t := pr.pre(p)
			fn(p)
			pr.post(p, opSyncFs, t)
		}
	}
}
