package fsprof

import (
	"osprof/internal/core"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Instrumented is a file system whose operation vectors have been
// replaced in place with latency-measuring wrappers, the way FoSgen
// rewrites file-system sources (§4): because both the VFS layer and the
// file system's own internal calls dispatch through fs.Ops() at call
// time, nested operations (readdir calling readpage) are measured too.
type Instrumented struct {
	FS   vfs.FileSystem
	orig vfs.Ops
	pr   *probe
}

// Instrument wraps every installed operation of fs, recording into
// sink. Call Restore to undo.
func Instrument(fs vfs.FileSystem, sink Sink, mode Mode, costs Costs) *Instrumented {
	ins := &Instrumented{
		FS:   fs,
		orig: *fs.Ops(),
		pr:   &probe{sink: sink, mode: mode, costs: costs},
	}
	ins.install()
	return ins
}

// InstrumentSet is the common case: full profiling into a Set with
// default costs.
func InstrumentSet(fs vfs.FileSystem, set *core.Set) *Instrumented {
	return Instrument(fs, SetSink{Set: set}, Full, DefaultCosts())
}

// Restore reinstates the original operation vectors.
func (ins *Instrumented) Restore() { *ins.FS.Ops() = ins.orig }

func (ins *Instrumented) install() {
	ops := ins.FS.Ops()
	pr := ins.pr
	o := &ins.orig

	if fn := o.File.Read; fn != nil {
		ops.File.Read = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			t := pr.pre(p)
			r := fn(p, f, n)
			pr.post(p, "read", t)
			return r
		}
	}
	if fn := o.File.Write; fn != nil {
		ops.File.Write = func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
			t := pr.pre(p)
			r := fn(p, f, n)
			pr.post(p, "write", t)
			return r
		}
	}
	if fn := o.File.Llseek; fn != nil {
		ops.File.Llseek = func(p *sim.Proc, f *vfs.File, off int64, w vfs.Whence) uint64 {
			t := pr.pre(p)
			r := fn(p, f, off, w)
			pr.post(p, "llseek", t)
			return r
		}
	}
	if fn := o.File.Readdir; fn != nil {
		ops.File.Readdir = func(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
			t := pr.pre(p)
			r := fn(p, f)
			pr.post(p, "readdir", t)
			return r
		}
	}
	if fn := o.File.Fsync; fn != nil {
		ops.File.Fsync = func(p *sim.Proc, f *vfs.File) {
			t := pr.pre(p)
			fn(p, f)
			pr.post(p, "fsync", t)
		}
	}
	if fn := o.File.Open; fn != nil {
		ops.File.Open = func(p *sim.Proc, ino *vfs.Inode, dio bool) *vfs.File {
			t := pr.pre(p)
			r := fn(p, ino, dio)
			pr.post(p, "open", t)
			return r
		}
	}
	if fn := o.File.Release; fn != nil {
		ops.File.Release = func(p *sim.Proc, f *vfs.File) {
			t := pr.pre(p)
			fn(p, f)
			pr.post(p, "release", t)
		}
	}
	if fn := o.Inode.Lookup; fn != nil {
		ops.Inode.Lookup = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
			t := pr.pre(p)
			ino, ok := fn(p, dir, name)
			pr.post(p, "lookup", t)
			return ino, ok
		}
	}
	if fn := o.Inode.Create; fn != nil {
		ops.Inode.Create = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			t := pr.pre(p)
			ino, err := fn(p, dir, name)
			pr.post(p, "create", t)
			return ino, err
		}
	}
	if fn := o.Inode.Unlink; fn != nil {
		ops.Inode.Unlink = func(p *sim.Proc, dir *vfs.Inode, name string) error {
			t := pr.pre(p)
			err := fn(p, dir, name)
			pr.post(p, "unlink", t)
			return err
		}
	}
	if fn := o.Inode.Mkdir; fn != nil {
		ops.Inode.Mkdir = func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
			t := pr.pre(p)
			ino, err := fn(p, dir, name)
			pr.post(p, "mkdir", t)
			return ino, err
		}
	}
	if fn := o.Address.ReadPage; fn != nil {
		ops.Address.ReadPage = func(p *sim.Proc, ino *vfs.Inode, idx uint64) {
			t := pr.pre(p)
			fn(p, ino, idx)
			pr.post(p, "readpage", t)
		}
	}
	if fn := o.Address.ReadPages; fn != nil {
		ops.Address.ReadPages = func(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
			t := pr.pre(p)
			fn(p, ino, idx, n)
			pr.post(p, "readpages", t)
		}
	}
	if fn := o.Address.WritePage; fn != nil {
		ops.Address.WritePage = func(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {
			t := pr.pre(p)
			fn(p, ino, idx, sync)
			pr.post(p, "writepage", t)
		}
	}
	if fn := o.Super.WriteSuper; fn != nil {
		ops.Super.WriteSuper = func(p *sim.Proc) {
			t := pr.pre(p)
			fn(p)
			pr.post(p, "write_super", t)
		}
	}
	if fn := o.Super.SyncFS; fn != nil {
		ops.Super.SyncFS = func(p *sim.Proc) {
			t := pr.pre(p)
			fn(p)
			pr.post(p, "sync_fs", t)
		}
	}
}
