package summary

import (
	"slices"

	"osprof/internal/core"
)

// DefaultTopK is the default length of the hottest-operation lists.
const DefaultTopK = 5

// SetSummary is the digest of a whole profile set: one Summary per
// operation (sorted by name), a whole-set rollup over the combined
// histogram, and the top-k hottest operations by count and by
// total-latency share. The value owns reusable scratch: call From
// repeatedly on one SetSummary and the steady state allocates nothing.
type SetSummary struct {
	// Name and R mirror the summarized set.
	Name string
	R    int

	// Overall digests the combined histogram of every operation (Op
	// "*"): the run-wide latency surface.
	Overall Summary

	// Ops holds one digest per operation, sorted by operation name.
	Ops []Summary

	// TopByCount and TopByLatency index into Ops: the hottest
	// operations by operation count and by total-latency share,
	// descending, ties broken by name.
	TopByCount   []int
	TopByLatency []int

	// scratch, reused across From calls.
	names []string
	comb  []uint64
}

// OfSet is the allocating convenience: a fresh SetSummary of s.
func OfSet(s *core.Set, k int) *SetSummary {
	ss := &SetSummary{}
	ss.From(s, k)
	return ss
}

// From extracts the digest of s into ss, reusing ss's storage. k caps
// the hottest-operation lists (DefaultTopK when negative, empty when
// 0). A nil set yields an empty digest.
func (ss *SetSummary) From(s *core.Set, k int) {
	if k < 0 {
		k = DefaultTopK
	}
	ss.Name, ss.R = "", 0
	ss.Ops = ss.Ops[:0]
	ss.TopByCount = ss.TopByCount[:0]
	ss.TopByLatency = ss.TopByLatency[:0]
	ss.Overall = Summary{Op: "*", Mode: -1, Lo: -1, Hi: -1}
	if s == nil {
		return
	}
	ss.Name, ss.R = s.Name, s.R

	ss.names = s.AppendOps(ss.names[:0])
	slices.Sort(ss.names)

	nb := core.NumBuckets(s.R)
	if cap(ss.comb) < nb {
		ss.comb = make([]uint64, nb)
	}
	ss.comb = ss.comb[:nb]
	clear(ss.comb)

	var count, total, min, max uint64
	for _, op := range ss.names {
		p := s.Lookup(op)
		ss.Ops = append(ss.Ops, Of(p))
		if p == nil {
			continue
		}
		for b, n := range p.Buckets {
			ss.comb[b] += n
		}
		if p.Count > 0 {
			if count == 0 || p.Min < min {
				min = p.Min
			}
			if p.Max > max {
				max = p.Max
			}
			count += p.Count
			total += p.Total
		}
	}
	ss.Overall = ofBuckets("*", s.R, ss.comb, count, total, min, max)

	for i := range ss.Ops {
		if ss.Ops[i].Count == 0 {
			continue
		}
		ss.TopByCount = ss.insertTop(ss.TopByCount, i, k, false)
		ss.TopByLatency = ss.insertTop(ss.TopByLatency, i, k, true)
	}
}

// insertTop inserts op index idx into the descending top-k list dst
// (manual insertion: sort.Slice would allocate its closure).
func (ss *SetSummary) insertTop(dst []int, idx, k int, byTotal bool) []int {
	if k <= 0 {
		return dst
	}
	pos := 0
	for pos < len(dst) && !ss.outranks(idx, dst[pos], byTotal) {
		pos++
	}
	if pos == len(dst) {
		if len(dst) < k {
			dst = append(dst, idx)
		}
		return dst
	}
	if len(dst) < k {
		dst = append(dst, 0)
	}
	copy(dst[pos+1:], dst[pos:len(dst)-1])
	dst[pos] = idx
	return dst
}

// outranks reports whether op i sorts before op j in a hottest list.
func (ss *SetSummary) outranks(i, j int, byTotal bool) bool {
	a, b := &ss.Ops[i], &ss.Ops[j]
	x, y := a.Count, b.Count
	if byTotal {
		x, y = a.Total, b.Total
	}
	if x != y {
		return x > y
	}
	return a.Op < b.Op
}

// Lookup returns the digest for op, or nil when the set never
// recorded it (binary search over the sorted Ops).
func (ss *SetSummary) Lookup(op string) *Summary {
	lo, hi := 0, len(ss.Ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if ss.Ops[mid].Op < op {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ss.Ops) && ss.Ops[lo].Op == op {
		return &ss.Ops[lo]
	}
	return nil
}

// SetsIdentical reports whether two set digests witness byte-identical
// profile sets: same resolution, same operations, and every histogram
// (per-op and combined) identical. A fast path keyed on it skips the
// full differential analysis exactly when that analysis would verdict
// every operation unchanged — equal histograms mean equal totals, so
// every pair lands in the selector's "similar total latency, same
// peak structure" skip.
func SetsIdentical(a, b *SetSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.R != b.R || len(a.Ops) != len(b.Ops) || !a.Overall.Identical(b.Overall) {
		return false
	}
	for i := range a.Ops {
		if a.Ops[i].Op != b.Ops[i].Op || !a.Ops[i].Identical(b.Ops[i]) {
			return false
		}
	}
	return true
}

// SetDistance is the cheap set-level distance: the count-share-
// weighted mean of per-operation summary distances over the union of
// operations — the same weighting ((share_a + share_b)/2) and
// one-sided conventions as the classifier's EMD distance, so ranking
// corpus centroids by it predicts the expensive ranking. Alloc-free:
// one two-pointer walk over the sorted per-op digests.
func SetDistance(a, b *SetSummary) float64 {
	if a == nil || b == nil {
		return 1
	}
	totalA := float64(a.Overall.Count)
	totalB := float64(b.Overall.Count)
	var sum, wsum float64
	accumulate := func(sa, sb *Summary) {
		var shareA, shareB float64
		if sa != nil && totalA > 0 {
			shareA = float64(sa.Count) / totalA
		}
		if sb != nil && totalB > 0 {
			shareB = float64(sb.Count) / totalB
		}
		w := (shareA + shareB) / 2
		var d float64
		switch {
		case sa == nil || sa.Count == 0:
			if sb == nil || sb.Count == 0 {
				d = 0 // recorded zero times on both sides
			} else {
				d = 1 // all mass vs no mass: maximal difference
			}
		case sb == nil || sb.Count == 0:
			d = 1
		default:
			d = Distance(*sa, *sb)
		}
		sum += w * d
		wsum += w
	}
	i, j := 0, 0
	for i < len(a.Ops) || j < len(b.Ops) {
		switch {
		case j >= len(b.Ops) || (i < len(a.Ops) && a.Ops[i].Op < b.Ops[j].Op):
			accumulate(&a.Ops[i], nil)
			i++
		case i >= len(a.Ops) || b.Ops[j].Op < a.Ops[i].Op:
			accumulate(nil, &b.Ops[j])
			j++
		default:
			accumulate(&a.Ops[i], &b.Ops[j])
			i++
			j++
		}
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}
