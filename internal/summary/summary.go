// Package summary is the streaming summary tier over OSprof log-bucket
// histograms: a fixed-size, alloc-free digest (quantiles, count, total,
// min/max, mode bucket, populated-bucket span) extracted once per
// profile, cheap enough to compute on every ingest and small enough to
// memoize per archived run. The expensive analyses — per-operation
// Earth Mover's Distance in diff and classify — then run only where
// summaries say something moved: the same low-overhead-first philosophy
// that makes OSprof itself viable on production workloads (paper §3.1),
// applied one layer up to the analysis stack.
//
// A Summary is NOT a substitute for the full comparison metrics: 1-D
// EMD is the integral of quantile displacement over all levels, so a
// handful of sampled quantiles can under-estimate it (mass can move
// between the sampled levels). The fast paths built on this package
// therefore only ever skip work in the conservative direction — an
// identical-summary pair is provably identical (the digest carries an
// FNV-1a hash of the bucket array as a witness), and the guard-band
// comparison (WithinGuard) escalates to the full analysis whenever any
// structural feature moves; the calibration is pinned by parity tests
// against the always-full paths across the whole scenario matrix.
package summary

import (
	"osprof/internal/core"
	"osprof/internal/cycles"
)

// NumLevels is the number of sampled quantile levels.
const NumLevels = 5

// Levels are the sampled quantile levels: the p50/p90/p95/p99/p999
// surface of a streaming latency dashboard.
var Levels = [NumLevels]float64{0.50, 0.90, 0.95, 0.99, 0.999}

// LevelNames labels the sampled levels for rendering.
var LevelNames = [NumLevels]string{"p50", "p90", "p95", "p99", "p999"}

// FNV-1a 64-bit parameters (hash/fnv, restated so the hot path stays
// free of the stdlib's allocating hasher interface).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Summary is the fixed-size digest of one profile's histogram. It is a
// plain value: extracting one allocates nothing, and copying one is a
// few cache lines.
type Summary struct {
	// Op names the summarized operation ("*" for a whole-set rollup).
	Op string

	// R and NB are the bucket resolution and bucket-array length; two
	// summaries are only comparable when both match.
	R  int
	NB int

	// Count, Total, Min and Max mirror the profile's checksums.
	Count uint64
	Total uint64
	Min   uint64
	Max   uint64

	// Mode is the most populated bucket; Lo and Hi are the smallest
	// and largest non-empty buckets; Filled counts non-empty buckets.
	// All are -1 for an empty profile. Together they pin the peak
	// structure coarsely: a new latency mode in a previously empty
	// region changes Filled (and usually Lo/Hi) even when it is too
	// small to move any sampled quantile.
	Mode   int
	Lo     int
	Hi     int
	Filled int

	// Hash is the FNV-1a digest of the raw bucket array: the
	// zero-distance witness. Identical returns true only when the
	// hash and every checksum agree, so a fast path keyed on it skips
	// work exactly when the full analysis would find nothing.
	Hash uint64

	// Peaks counts the distribution's modes and PeakHash digests their
	// mode-bucket sequence, using exactly the segmentation of the
	// analysis package's default peak detection (a peak is a maximal
	// run of populated buckets, one empty pinhole tolerated). Two
	// summaries with equal Peaks and PeakHash have the same peak
	// structure under the differential selector's phase 2 — so the
	// guard band can never absorb a shifted, new, or lost peak, even
	// one too small to move any sampled quantile.
	Peaks    int
	PeakHash uint64

	// Q holds the sampled quantiles as fractional bucket positions
	// (bucket index plus in-bucket fraction), the natural axis for
	// comparing two log-bucket histograms. QLatency holds the same
	// quantiles interpolated back to latencies (cycles), clamped to
	// [Min, Max].
	Q        [NumLevels]float64
	QLatency [NumLevels]uint64
}

// Of extracts the digest of p. A nil or empty profile yields an empty
// summary (Count 0, Mode/Lo/Hi -1). Of allocates nothing.
func Of(p *core.Profile) Summary {
	if p == nil {
		return Summary{Mode: -1, Lo: -1, Hi: -1}
	}
	return ofBuckets(p.Op, p.R, p.Buckets, p.Count, p.Total, p.Min, p.Max)
}

// ofBuckets is the shared extractor: Of feeds it one profile, the
// set-level rollup feeds it the combined bucket array.
func ofBuckets(op string, r int, buckets []uint64, count, total, min, max uint64) Summary {
	s := Summary{
		Op: op, R: r, NB: len(buckets),
		Count: count, Total: total, Min: min, Max: max,
		Mode: -1, Lo: -1, Hi: -1,
	}
	var hash uint64 = fnvOffset
	var peakHash uint64 = fnvOffset
	var modeCount, peakModeCount uint64
	peakMode, gap := -1, 0
	inPeak := false
	closePeak := func() {
		for i := 0; i < 64; i += 8 {
			peakHash = (peakHash ^ (uint64(peakMode) >> i & 0xff)) * fnvPrime
		}
		s.Peaks++
		inPeak = false
	}
	for b, n := range buckets {
		for i := 0; i < 64; i += 8 {
			hash = (hash ^ (n >> i & 0xff)) * fnvPrime
		}
		if n == 0 {
			// Peak segmentation mirrors analysis.AppendPeaks with the
			// selector's defaults: MinCount 1, MaxGap 1 (one empty
			// pinhole inside a peak).
			if inPeak {
				gap++
				if gap > 1 {
					closePeak()
				}
			}
			continue
		}
		if !inPeak {
			inPeak = true
			peakMode, peakModeCount = b, 0
		}
		gap = 0
		if n > peakModeCount {
			peakModeCount, peakMode = n, b
		}
		s.Filled++
		if s.Lo < 0 {
			s.Lo = b
		}
		s.Hi = b
		if n > modeCount {
			modeCount, s.Mode = n, b
		}
	}
	if inPeak {
		closePeak()
	}
	s.Hash = hash
	s.PeakHash = peakHash
	if s.Count == 0 || s.Lo < 0 {
		// Empty, or a malformed profile whose count checksum claims
		// mass its buckets do not hold: no quantiles to sample.
		return s
	}

	// Quantiles by one cumulative walk: level q sits at rank q*Count;
	// within its bucket the position interpolates linearly (the same
	// uniform-within-bucket assumption as the paper's bucket-mean
	// formula, §3.3).
	var cum uint64
	li := 0
	for b := s.Lo; b <= s.Hi && li < NumLevels; b++ {
		n := buckets[b]
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		for li < NumLevels {
			target := Levels[li] * float64(s.Count)
			if float64(cum) < target {
				break
			}
			frac := (target - float64(prev)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			s.Q[li] = float64(b) + frac
			s.QLatency[li] = interpolate(b, r, frac, s.Min, s.Max)
			li++
		}
	}
	// A malformed profile whose count checksum exceeds the bucket sum
	// can run out of mass before the upper levels: pin them to the end
	// of the populated span so the positions stay monotone.
	for ; li < NumLevels; li++ {
		s.Q[li] = float64(s.Hi) + 1
		s.QLatency[li] = interpolate(s.Hi, r, 1, s.Min, s.Max)
	}
	return s
}

// interpolate maps a fractional position within bucket b back to a
// latency, clamped to the observed [min, max] so a single-latency
// profile reports that latency at every level.
func interpolate(b, r int, frac float64, min, max uint64) uint64 {
	lo, hi := core.BucketLow(b, r), core.BucketHigh(b, r)
	v := float64(lo) + frac*(float64(hi)-float64(lo))
	lat := uint64(v)
	if lat < min {
		lat = min
	}
	if lat > max {
		lat = max
	}
	return lat
}

// Identical reports whether the two summaries digest byte-identical
// histograms: same resolution, same checksums, same bucket-array hash.
// Operation names are not compared (merging per-CPU shards renames).
func (s Summary) Identical(o Summary) bool {
	return s.R == o.R && s.NB == o.NB &&
		s.Count == o.Count && s.Total == o.Total &&
		s.Min == o.Min && s.Max == o.Max && s.Hash == o.Hash
}

// Epsilon is the floor Distance returns for summaries that differ but
// whose sampled features all coincide: the "zero iff identical"
// contract holds even where five quantiles cannot see the change.
const Epsilon = 1e-9

// Distance is the cheap summary distance on EMD's [0, 1] scale: the
// largest movement of any sampled feature (quantile position, mode,
// span edge, filled-bucket count), normalized by the bucket-axis
// length — the same normalization as the analysis package's EMD. It
// is exactly 0 iff the histograms are identical (or both empty), and
// 1 for mass against no mass, mirroring the one-sided conventions of
// the diff and classify engines.
func Distance(a, b Summary) float64 {
	if a.Count == 0 && b.Count == 0 {
		return 0
	}
	if a.Count == 0 || b.Count == 0 {
		return 1
	}
	if a.R != b.R || a.NB != b.NB {
		return 1 // different bucket axes: not comparable
	}
	if a.Identical(b) {
		return 0
	}
	d := 0.0
	for i := range a.Q {
		d = maxf(d, absf(a.Q[i]-b.Q[i]))
	}
	d = maxf(d, absf(float64(a.Mode-b.Mode)))
	d = maxf(d, absf(float64(a.Lo-b.Lo)))
	d = maxf(d, absf(float64(a.Hi-b.Hi)))
	d = maxf(d, absf(float64(a.Filled-b.Filled)))
	if a.NB > 1 {
		d /= float64(a.NB - 1)
	}
	if d > 1 {
		d = 1
	}
	if d < Epsilon {
		d = Epsilon
	}
	return d
}

// DefaultGuard is the calibrated guard band for WithinGuard, in
// fractional buckets of quantile movement. The diff parity tests pin
// the calibration: across the scenario matrix and the fault-injected
// corpus, every pair the full differential analysis flags moves a
// structural feature or crosses this band, and no pair inside the
// band is ever flagged.
const DefaultGuard = 0.25

// WithinGuard reports whether the pair is summary-close enough for a
// fast path to skip the full differential analysis: identical
// histograms pass outright; otherwise both sides must be non-empty on
// the same bucket axis, agree on every structural feature (mode, span
// edges, filled-bucket count) and keep every sampled quantile within
// guard fractional buckets. Anything else — including one-sided mass —
// must escalate.
func WithinGuard(a, b Summary, guard float64) bool {
	if a.Count == 0 && b.Count == 0 {
		return true
	}
	if a.Count == 0 || b.Count == 0 {
		return false
	}
	if a.R != b.R || a.NB != b.NB {
		return false
	}
	if a.Identical(b) {
		return true
	}
	if a.Mode != b.Mode || a.Lo != b.Lo || a.Hi != b.Hi || a.Filled != b.Filled {
		return false
	}
	if a.Peaks != b.Peaks || a.PeakHash != b.PeakHash {
		return false
	}
	for i := range a.Q {
		if absf(a.Q[i]-b.Q[i]) > guard {
			return false
		}
	}
	return true
}

// Rate converts the summary's operation count into a rate (operations
// per second) over a wall duration measured in simulated cycles.
func (s Summary) Rate(wallCycles uint64) float64 {
	if wallCycles == 0 {
		return 0
	}
	return float64(s.Count) * float64(cycles.PerSecond) / float64(wallCycles)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
