package summary

import (
	"testing"

	"osprof/internal/core"
)

// FuzzSummary throws malformed, empty, and degenerate histograms at
// the extractor and the distance metric: arbitrary bucket contents
// (including count checksums that disagree with the buckets, the
// "broken instrumentation" case Validate exists to catch) must never
// panic, and the metric invariants must hold regardless.
func FuzzSummary(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(0))
	f.Add([]byte{1}, uint64(1), uint64(1))
	f.Add([]byte{0, 0, 0, 7}, uint64(7), uint64(700))
	f.Add([]byte{255, 255}, uint64(2), uint64(3))     // count checksum too small
	f.Add([]byte{0, 0, 0, 0}, uint64(100), uint64(5)) // claims mass, holds none
	f.Fuzz(func(t *testing.T, raw []byte, count, total uint64) {
		p := &core.Profile{Op: "fuzz", R: 1, Count: count, Total: total}
		// Truncated bucket arrays model a malformed envelope; cap at
		// the real array length.
		if len(raw) > core.MaxBuckets {
			raw = raw[:core.MaxBuckets]
		}
		p.Buckets = make([]uint64, len(raw))
		var sum uint64
		for i, b := range raw {
			p.Buckets[i] = uint64(b)
			sum += uint64(b)
		}
		if count > 0 && sum > 0 {
			p.Min, p.Max = 1, 1<<uint(len(raw))
		}

		s := Of(p)
		if s.Count != count || s.Total != total {
			t.Fatalf("checksums not mirrored: %d/%d", s.Count, s.Total)
		}
		if s.Filled > len(raw) || (s.Lo < 0) != (s.Filled == 0) {
			t.Fatalf("inconsistent structure: lo=%d filled=%d", s.Lo, s.Filled)
		}
		for i := 1; i < NumLevels; i++ {
			if s.Q[i] < s.Q[i-1] {
				t.Fatalf("quantile positions not monotone: %v", s.Q)
			}
		}
		if d := Distance(s, s); d != 0 {
			t.Fatalf("self distance = %g, want 0", d)
		}
		if !s.Identical(s) {
			t.Fatal("summary not Identical to itself")
		}

		// Against a fixed healthy profile: symmetric, bounded.
		ref := core.NewProfile("ref")
		for i := 0; i < 100; i++ {
			ref.Record(uint64(i%17)*1000 + 1)
		}
		// Distance requires matching bucket-array lengths to compare;
		// mismatched axes score the maximal 1.
		o := Of(ref)
		ab, ba := Distance(s, o), Distance(o, s)
		if ab != ba {
			t.Fatalf("asymmetric distance: %g vs %g", ab, ba)
		}
		if ab < 0 || ab > 1 {
			t.Fatalf("distance %g out of [0, 1]", ab)
		}
		if WithinGuard(s, o, DefaultGuard) && !s.Identical(o) && (s.Count == 0 || o.Count == 0) {
			t.Fatal("one-sided pair passed the guard")
		}
	})
}

// FuzzSummarySingleBucket pins the degenerate single-bucket histogram:
// whatever the bucket and mass, every quantile must land inside it.
func FuzzSummarySingleBucket(f *testing.F) {
	f.Add(0, uint64(1))
	f.Add(10, uint64(1000))
	f.Add(63, uint64(1<<40))
	f.Fuzz(func(t *testing.T, bucket int, n uint64) {
		if bucket < 0 || bucket >= core.MaxBuckets || n == 0 {
			t.Skip()
		}
		p := core.NewProfile("one")
		p.Buckets[bucket] = n
		p.Count = n
		p.Min, p.Max = core.BucketLow(bucket, 1), core.BucketHigh(bucket, 1)
		s := Of(p)
		if s.Mode != bucket || s.Lo != bucket || s.Hi != bucket || s.Filled != 1 {
			t.Fatalf("structure: mode=%d lo=%d hi=%d filled=%d, want all %d",
				s.Mode, s.Lo, s.Hi, s.Filled, bucket)
		}
		for i, q := range s.Q {
			if q < float64(bucket) || q > float64(bucket)+1 {
				t.Fatalf("%s position %g outside bucket %d", LevelNames[i], q, bucket)
			}
			if s.QLatency[i] < s.Min || s.QLatency[i] > s.Max {
				t.Fatalf("%s latency %d outside [%d, %d]",
					LevelNames[i], s.QLatency[i], s.Min, s.Max)
			}
		}
	})
}
