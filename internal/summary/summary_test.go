package summary

import (
	"math"
	"testing"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
)

// prof records the given latencies into a fresh profile.
func prof(t *testing.T, op string, latencies ...uint64) *core.Profile {
	t.Helper()
	p := core.NewProfile(op)
	for _, l := range latencies {
		p.Record(l)
	}
	return p
}

func TestOfEmptyAndNil(t *testing.T) {
	for name, s := range map[string]Summary{
		"nil":   Of(nil),
		"empty": Of(core.NewProfile("read")),
	} {
		if s.Count != 0 || s.Total != 0 {
			t.Errorf("%s: count/total = %d/%d, want 0/0", name, s.Count, s.Total)
		}
		if s.Mode != -1 || s.Lo != -1 || s.Hi != -1 || s.Filled != 0 {
			t.Errorf("%s: mode/lo/hi/filled = %d/%d/%d/%d, want -1/-1/-1/0",
				name, s.Mode, s.Lo, s.Hi, s.Filled)
		}
	}
}

func TestOfChecksumsAndStructure(t *testing.T) {
	p := prof(t, "read", 10, 10, 10, 1000, 1000, 1<<20)
	s := Of(p)
	if s.Op != "read" || s.R != 1 || s.NB != core.MaxBuckets {
		t.Fatalf("identity fields: %+v", s)
	}
	if s.Count != 6 || s.Total != p.Total || s.Min != 10 || s.Max != 1<<20 {
		t.Errorf("checksums: count=%d total=%d min=%d max=%d", s.Count, s.Total, s.Min, s.Max)
	}
	// 10 -> bucket 3, 1000 -> bucket 9, 1<<20 -> bucket 20.
	if s.Mode != 3 || s.Lo != 3 || s.Hi != 20 || s.Filled != 3 {
		t.Errorf("structure: mode=%d lo=%d hi=%d filled=%d, want 3/3/20/3",
			s.Mode, s.Lo, s.Hi, s.Filled)
	}
}

func TestQuantilesSingleLatency(t *testing.T) {
	// A profile holding one latency value must report that latency at
	// every level (the [Min, Max] clamp).
	s := Of(prof(t, "read", 5000, 5000, 5000, 5000))
	for i, q := range s.QLatency {
		if q != 5000 {
			t.Errorf("%s: latency %d, want 5000", LevelNames[i], q)
		}
	}
	b := core.BucketFor(5000, 1)
	for i, q := range s.Q {
		if q < float64(b) || q > float64(b+1) {
			t.Errorf("%s: position %g outside bucket %d", LevelNames[i], q, b)
		}
	}
}

func TestQuantilesMonotoneAndInterpolated(t *testing.T) {
	p := core.NewProfile("read")
	// 1000 latencies spread deterministically over several decades.
	for i := 0; i < 1000; i++ {
		p.Record(uint64(i%97)*uint64(i%13+1)*100 + 1)
	}
	s := Of(p)
	for i := 1; i < NumLevels; i++ {
		if s.Q[i] < s.Q[i-1] {
			t.Errorf("positions not monotone: %s=%g < %s=%g",
				LevelNames[i], s.Q[i], LevelNames[i-1], s.Q[i-1])
		}
		if s.QLatency[i] < s.QLatency[i-1] {
			t.Errorf("latencies not monotone: %s=%d < %s=%d",
				LevelNames[i], s.QLatency[i], LevelNames[i-1], s.QLatency[i-1])
		}
	}
	for i := range s.QLatency {
		if s.QLatency[i] < s.Min || s.QLatency[i] > s.Max {
			t.Errorf("%s=%d outside [%d, %d]", LevelNames[i], s.QLatency[i], s.Min, s.Max)
		}
	}
	// The p50 position must sit in the bucket holding the median rank.
	var cum, median uint64
	target := uint64(math.Ceil(0.5 * float64(s.Count)))
	for b, n := range p.Buckets {
		cum += n
		if cum >= target {
			median = uint64(b)
			break
		}
	}
	if s.Q[0] < float64(median) || s.Q[0] > float64(median)+1 {
		t.Errorf("p50 position %g not within median bucket %d", s.Q[0], median)
	}
}

func TestQuantileInterpolationExact(t *testing.T) {
	// 100 ops in bucket 4 ([16, 31]): p50 is rank 50, fraction 0.5
	// through the bucket, position 4.5.
	p := core.NewProfile("read")
	for i := 0; i < 100; i++ {
		p.Record(20)
	}
	s := Of(p)
	if s.Q[0] != 4.5 {
		t.Errorf("p50 position = %g, want 4.5", s.Q[0])
	}
	if math.Abs(s.Q[4]-4.999) > 1e-12 {
		t.Errorf("p999 position = %g, want 4.999", s.Q[4])
	}
}

func TestIdenticalAndDistanceZeroIffIdentical(t *testing.T) {
	a := Of(prof(t, "read", 10, 200, 3000, 3000))
	b := Of(prof(t, "read", 10, 200, 3000, 3000))
	if !a.Identical(b) {
		t.Fatal("equal histograms not Identical")
	}
	if d := Distance(a, b); d != 0 {
		t.Errorf("Distance(identical) = %g, want exactly 0", d)
	}
	// Different op name, same histogram: still identical (shard merge).
	c := Of(prof(t, "write", 10, 200, 3000, 3000))
	if !a.Identical(c) || Distance(a, c) != 0 {
		t.Error("op name must not break histogram identity")
	}
	// Any bucket change must be non-zero, even when too small for the
	// sampled features (the Epsilon floor).
	d := Of(prof(t, "read", 10, 201, 3000, 3000))
	if a.Identical(d) {
		t.Fatal("different histograms reported Identical")
	}
	if dist := Distance(a, d); dist <= 0 {
		t.Errorf("Distance(different) = %g, want > 0", dist)
	}
}

func TestDistanceOneSidedAndBounds(t *testing.T) {
	full := Of(prof(t, "read", 100, 200))
	var empty Summary
	if d := Distance(full, empty); d != 1 {
		t.Errorf("mass vs none = %g, want 1", d)
	}
	if d := Distance(empty, full); d != 1 {
		t.Errorf("none vs mass = %g, want 1", d)
	}
	if d := Distance(empty, empty); d != 0 {
		t.Errorf("none vs none = %g, want 0", d)
	}
	// A shift across the whole axis stays within [0, 1].
	lo := Of(prof(t, "read", 1, 1, 1))
	hi := Of(prof(t, "read", 1<<60, 1<<60, 1<<60))
	if d := Distance(lo, hi); d <= 0 || d > 1 {
		t.Errorf("extreme shift = %g, want (0, 1]", d)
	}
}

func TestWithinGuard(t *testing.T) {
	a := Of(prof(t, "read", 100, 100, 2000, 2000, 2000, 2000))
	if !WithinGuard(a, a, DefaultGuard) {
		t.Error("identical pair not within guard")
	}
	// Same structure (1500 and 2000 share bucket 10), slightly moved
	// in-bucket quantiles: a wide guard must not escalate.
	b := Of(prof(t, "read", 100, 100, 1500, 2000, 2000, 2000))
	if b.Mode != a.Mode || b.Filled != a.Filled {
		t.Fatalf("test setup: structure moved (mode %d/%d filled %d/%d)",
			a.Mode, b.Mode, a.Filled, b.Filled)
	}
	if !WithinGuard(a, b, 1.0) {
		t.Error("small in-bucket movement escalated at a wide guard")
	}
	// A new latency mode in an empty region: Filled changes, so the
	// guard must force escalation no matter how small the mass.
	c := prof(t, "read", 100, 100, 2000, 2000, 2000, 2000)
	c.Record(1 << 30)
	if WithinGuard(a, Of(c), 100) {
		t.Error("new populated bucket passed the guard")
	}
	// One-sided mass always escalates.
	var empty Summary
	if WithinGuard(a, empty, 100) || WithinGuard(empty, a, 100) {
		t.Error("one-sided pair passed the guard")
	}
}

func TestPeakWitnessMatchesAnalysis(t *testing.T) {
	// The summary's peak segmentation must agree with the selector's
	// default peak detection, pinhole tolerance included.
	p := core.NewProfile("read")
	p.Buckets[3] = 10
	p.Buckets[4] = 0 // pinhole: still one peak
	p.Buckets[5] = 4
	p.Buckets[10] = 7 // second peak after a 4-bucket gap
	p.Buckets[20] = 1 // third
	p.Count = 22
	p.Min, p.Max = 8, 1<<21
	peaks := analysis.FindPeaks(p)
	s := Of(p)
	if s.Peaks != len(peaks) {
		t.Fatalf("summary sees %d peaks, analysis sees %d", s.Peaks, len(peaks))
	}
	// Shifting one peak's mode inside the pinhole region keeps the
	// peak count but must change the witness hash.
	q := core.NewProfile("read")
	q.Buckets[3] = 4
	q.Buckets[5] = 10 // mode of peak 1 moved 3 -> 5
	q.Buckets[10] = 7
	q.Buckets[20] = 1
	q.Count = 22
	q.Min, q.Max = 8, 1<<21
	sq := Of(q)
	if sq.Peaks != s.Peaks {
		t.Fatalf("peak counts diverged: %d vs %d", sq.Peaks, s.Peaks)
	}
	if sq.PeakHash == s.PeakHash {
		t.Fatal("mode shift did not change the peak witness")
	}
	if WithinGuard(s, sq, 100) {
		t.Fatal("shifted peak mode passed the guard band")
	}
}

func TestRate(t *testing.T) {
	s := Of(prof(t, "read", 10, 10, 10, 10))
	// 4 ops over one simulated second.
	if r := s.Rate(cycles.PerSecond); r != 4 {
		t.Errorf("rate over 1s = %g, want 4", r)
	}
	if r := s.Rate(cycles.PerSecond / 2); r != 8 {
		t.Errorf("rate over 0.5s = %g, want 8", r)
	}
	if r := s.Rate(0); r != 0 {
		t.Errorf("rate over 0 = %g, want 0", r)
	}
}

// set builds a profile set with a deterministic multi-op workload.
func testSet(name string, seed uint64) *core.Set {
	s := core.NewSet(name)
	ops := []string{"read", "write", "open", "fsync"}
	for i := 0; i < 2000; i++ {
		op := ops[i%len(ops)]
		lat := (uint64(i)*2654435761 + seed) % (1 << 22)
		s.Record(op, lat+1)
	}
	return s
}

func TestFromSetSummary(t *testing.T) {
	set := testSet("app", 1)
	var ss SetSummary
	ss.From(set, 3)
	if ss.Name != "app" || ss.R != 1 {
		t.Fatalf("identity: %q r=%d", ss.Name, ss.R)
	}
	if len(ss.Ops) != 4 {
		t.Fatalf("ops: %d, want 4", len(ss.Ops))
	}
	for i := 1; i < len(ss.Ops); i++ {
		if ss.Ops[i-1].Op >= ss.Ops[i].Op {
			t.Errorf("ops not sorted: %q >= %q", ss.Ops[i-1].Op, ss.Ops[i].Op)
		}
	}
	if ss.Overall.Count != set.TotalOps() || ss.Overall.Total != set.TotalLatency() {
		t.Errorf("overall checksums: %d/%d, want %d/%d",
			ss.Overall.Count, ss.Overall.Total, set.TotalOps(), set.TotalLatency())
	}
	if len(ss.TopByCount) != 3 || len(ss.TopByLatency) != 3 {
		t.Fatalf("top-k lengths: %d/%d, want 3/3", len(ss.TopByCount), len(ss.TopByLatency))
	}
	for i := 1; i < len(ss.TopByLatency); i++ {
		a, b := ss.Ops[ss.TopByLatency[i-1]], ss.Ops[ss.TopByLatency[i]]
		if a.Total < b.Total {
			t.Errorf("top-by-latency not descending: %d < %d", a.Total, b.Total)
		}
	}
	for i := 1; i < len(ss.TopByCount); i++ {
		a, b := ss.Ops[ss.TopByCount[i-1]], ss.Ops[ss.TopByCount[i]]
		if a.Count < b.Count {
			t.Errorf("top-by-count not descending: %d < %d", a.Count, b.Count)
		}
	}
	// Lookup must find every op and miss unknowns.
	for _, op := range []string{"read", "write", "open", "fsync"} {
		if got := ss.Lookup(op); got == nil || got.Op != op {
			t.Errorf("Lookup(%q) = %v", op, got)
		}
	}
	if ss.Lookup("llseek") != nil {
		t.Error("Lookup(llseek) found a ghost op")
	}
}

func TestSetsIdenticalAndDistance(t *testing.T) {
	a := OfSet(testSet("app", 1), 0)
	b := OfSet(testSet("app", 1), 0)
	if !SetsIdentical(a, b) {
		t.Fatal("equal sets not identical")
	}
	if d := SetDistance(a, b); d != 0 {
		t.Errorf("SetDistance(identical) = %g, want 0", d)
	}
	c := OfSet(testSet("app", 999), 0)
	if SetsIdentical(a, c) {
		t.Fatal("different seeds reported identical")
	}
	if d := SetDistance(a, c); d <= 0 || d > 1 {
		t.Errorf("SetDistance(different) = %g, want (0, 1]", d)
	}
	// An op present on one side only contributes the maximal 1.
	extra := testSet("app", 1)
	for i := 0; i < 500; i++ {
		extra.Record("llseek", 1<<30)
	}
	e := OfSet(extra, 0)
	if d := SetDistance(a, e); d <= 0 {
		t.Errorf("one-sided op: distance %g, want > 0", d)
	}
}

func TestOfAllocationFree(t *testing.T) {
	p := prof(t, "read", 10, 200, 3000, 40000, 500000)
	var sink Summary
	if n := testing.AllocsPerRun(100, func() { sink = Of(p) }); n != 0 {
		t.Fatalf("Of allocates %v times per run, want 0", n)
	}
	_ = sink
}

func TestFromAllocationFreeSteadyState(t *testing.T) {
	a, b := testSet("app", 1), testSet("app", 2)
	var ss SetSummary
	ss.From(a, DefaultTopK) // warm the scratch
	if n := testing.AllocsPerRun(100, func() {
		ss.From(a, DefaultTopK)
		ss.From(b, DefaultTopK)
	}); n != 0 {
		t.Fatalf("SetSummary.From allocates %v times per run in steady state, want 0", n)
	}
}

func TestSetDistanceAllocationFree(t *testing.T) {
	a := OfSet(testSet("app", 1), 0)
	b := OfSet(testSet("app", 2), 0)
	var sink float64
	if n := testing.AllocsPerRun(100, func() { sink = SetDistance(a, b) }); n != 0 {
		t.Fatalf("SetDistance allocates %v times per run, want 0", n)
	}
	_ = sink
}
