// Package analysis implements OSprof's automated profile analysis
// (paper §3.2): identifying individual peaks of multi-modal latency
// distributions, rating the difference between two profiles with
// several histogram-comparison metrics (Earth Mover's Distance and
// others), and the three-phase procedure that selects a small set of
// "interesting" profile pairs for manual inspection.
package analysis

import (
	"osprof/internal/core"
)

// Peak is one mode of a latency distribution: a maximal run of
// populated buckets.
type Peak struct {
	// Range covers the peak's buckets (inclusive).
	Range core.BucketRange

	// Count is the total number of operations in the peak.
	Count uint64

	// ModeBucket is the bucket with the largest population.
	ModeBucket int

	// ModeCount is the population of ModeBucket.
	ModeCount uint64
}

// MeanLatency estimates the average latency of requests in the peak,
// assuming bucket means of 3/2*2^b (§3.3). This is how the paper reads
// "the CPU time necessary to complete a clone request with no
// contention" off the leftmost peak (§3.1).
func (p Peak) MeanLatency(prof *core.Profile) uint64 {
	var ops, weighted uint64
	for b := p.Range.Lo; b <= p.Range.Hi && b < len(prof.Buckets); b++ {
		ops += prof.Buckets[b]
		weighted += prof.Buckets[b] * core.BucketMean(b)
	}
	if ops == 0 {
		return 0
	}
	return weighted / ops
}

// PeakOptions tunes peak identification.
type PeakOptions struct {
	// MinCount is the minimum bucket population considered part of a
	// peak; buckets below it count as background noise. Default 1.
	MinCount uint64

	// MaxGap is the number of consecutive below-threshold buckets
	// tolerated inside one peak before it is split. Default 1 (a
	// single empty bucket does not split a peak; logarithmic bucketing
	// can leave pinholes inside a genuine mode). Use -1 for strict
	// splitting at every below-threshold bucket.
	MaxGap int
}

func (o PeakOptions) withDefaults() PeakOptions {
	if o.MinCount == 0 {
		o.MinCount = 1
	}
	if o.MaxGap == 0 {
		o.MaxGap = 1
	}
	if o.MaxGap < 0 {
		o.MaxGap = 0
	}
	return o
}

// FindPeaks identifies the peaks of a profile in ascending bucket
// order, using default options.
func FindPeaks(p *core.Profile) []Peak {
	return FindPeaksOpt(p, PeakOptions{})
}

// FindPeaksOpt identifies peaks with explicit options.
func FindPeaksOpt(p *core.Profile, opt PeakOptions) []Peak {
	return AppendPeaks(nil, p, opt)
}

// AppendPeaks appends the peaks of p to dst and returns the extended
// slice. Passing a reused buffer makes repeated peak detection (e.g.
// Selector.Compare over a monitoring stream) allocation-free once the
// buffer has warmed up.
func AppendPeaks(dst []Peak, p *core.Profile, opt PeakOptions) []Peak {
	opt = opt.withDefaults()
	inPeak := false
	var cur Peak
	gap := 0
	for b, c := range p.Buckets {
		if c < opt.MinCount {
			if inPeak {
				gap++
				if gap > opt.MaxGap {
					dst = append(dst, cur)
					inPeak = false
				}
			}
			continue
		}
		if !inPeak {
			inPeak = true
			cur = Peak{Range: core.BucketRange{Lo: b, Hi: b}}
		}
		gap = 0
		cur.Range.Hi = b
		cur.Count += c
		if c > cur.ModeCount {
			cur.ModeCount = c
			cur.ModeBucket = b
		}
	}
	if inPeak {
		dst = append(dst, cur)
	}
	return dst
}

// PeakDiff summarizes the structural differences between the peak sets
// of two profiles, as reported by the paper's tool in its second phase
// ("reports differences in the number of peaks and their locations").
type PeakDiff struct {
	CountA, CountB int
	// Moved lists mode-bucket shifts for peaks matched by index.
	Moved []int
	// NewPeaks counts peaks present in B but not matched in A.
	NewPeaks int
	// LostPeaks counts peaks present in A but not matched in B.
	LostPeaks int
}

// ComparePeaks matches peaks by index (profiles of the same operation
// under different conditions keep their ordering) and reports shifts.
func ComparePeaks(a, b []Peak) PeakDiff {
	d, _ := appendComparePeaks(nil, a, b)
	return d
}

// appendComparePeaks is ComparePeaks with the Moved slice carved out of
// the moved arena, which it extends and returns so callers can reuse
// one backing array across many comparisons.
func appendComparePeaks(moved []int, a, b []Peak) (PeakDiff, []int) {
	d := PeakDiff{CountA: len(a), CountB: len(b)}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	start := len(moved)
	for i := 0; i < n; i++ {
		moved = append(moved, b[i].ModeBucket-a[i].ModeBucket)
	}
	d.Moved = moved[start:len(moved):len(moved)]
	if len(b) > n {
		d.NewPeaks = len(b) - n
	}
	if len(a) > n {
		d.LostPeaks = len(a) - n
	}
	return d, moved
}

// Same reports whether the two peak sets have identical structure
// (same count, no mode shifts).
func (d PeakDiff) Same() bool {
	if d.CountA != d.CountB || d.NewPeaks != 0 || d.LostPeaks != 0 {
		return false
	}
	for _, m := range d.Moved {
		if m != 0 {
			return false
		}
	}
	return true
}
