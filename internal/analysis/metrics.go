package analysis

import (
	"fmt"
	"math"

	"osprof/internal/core"
)

// Method identifies a profile-comparison algorithm (§3.2 "Comparing two
// profiles" and §5.3). All methods return a non-negative difference
// score; 0 means identical (after normalization where applicable).
type Method int

const (
	// EMD is the Earth Mover's Distance, the cross-bin metric the
	// paper recommends: view one normalized histogram as piles of
	// earth and the other as holes; the score is the least total work
	// (mass times distance in buckets) to fill the holes. It had the
	// smallest false-classification rate (2%) in §5.3.
	EMD Method = iota

	// ChiSquare is the bin-by-bin chi-squared test (5% error in §5.3).
	ChiSquare

	// TotalOps is the normalized difference of operation counts
	// (4% error in §5.3).
	TotalOps

	// TotalLatency is the normalized difference of total latencies
	// (3% error in §5.3).
	TotalLatency

	// Intersection is histogram intersection difference
	// (1 - sum of bin-wise minima of the normalized histograms).
	Intersection

	// Minkowski is the Minkowski-form distance with p=2 over
	// normalized histograms.
	Minkowski

	// Jeffrey is the Jeffrey divergence, the symmetrized, smoothed
	// variant of the Kullback-Leibler divergence.
	Jeffrey
)

// Methods lists all implemented comparison methods.
var Methods = []Method{EMD, ChiSquare, TotalOps, TotalLatency, Intersection, Minkowski, Jeffrey}

func (m Method) String() string {
	switch m {
	case EMD:
		return "emd"
	case ChiSquare:
		return "chi-square"
	case TotalOps:
		return "total-ops"
	case TotalLatency:
		return "total-latency"
	case Intersection:
		return "intersection"
	case Minkowski:
		return "minkowski"
	case Jeffrey:
		return "jeffrey"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Score computes the difference between two profiles under method m.
// Profiles must have equal bucket counts (same resolution).
func Score(m Method, a, b *core.Profile) float64 {
	switch m {
	case EMD:
		return EarthMovers(a, b)
	case ChiSquare:
		return ChiSquareScore(a, b)
	case TotalOps:
		return normDiff(float64(a.Count), float64(b.Count))
	case TotalLatency:
		return normDiff(float64(a.Total), float64(b.Total))
	case Intersection:
		return IntersectionScore(a, b)
	case Minkowski:
		return MinkowskiScore(a, b, 2)
	case Jeffrey:
		return JeffreyScore(a, b)
	}
	panic("analysis: unknown method " + m.String())
}

// normDiff is |x-y| / max(x,y), or 0 when both are zero.
func normDiff(x, y float64) float64 {
	max := x
	if y > max {
		max = y
	}
	if max == 0 {
		return 0
	}
	return math.Abs(x-y) / max
}

// EarthMovers computes the 1-D Earth Mover's Distance between the
// normalized histograms, scaled to [0,1] by the maximum possible work
// (moving all mass across the whole bucket axis). In one dimension the
// optimal transport cost is the L1 distance between the cumulative
// distributions, so no linear programming is needed.
func EarthMovers(a, b *core.Profile) float64 {
	na, nb := a.Normalized(), b.Normalized()
	if len(na) != len(nb) {
		panic("analysis: EMD on profiles of different resolutions")
	}
	if a.Count == 0 && b.Count == 0 {
		return 0
	}
	if a.Count == 0 || b.Count == 0 {
		return 1 // all mass vs no mass: maximal difference
	}
	var work, carry float64
	for i := range na {
		carry += na[i] - nb[i]
		work += math.Abs(carry)
	}
	return work / float64(len(na)-1)
}

// ChiSquareScore computes the chi-squared statistic over the normalized
// histograms: sum (a_i-b_i)^2 / (a_i+b_i), halved to lie in [0,1].
func ChiSquareScore(a, b *core.Profile) float64 {
	na, nb := a.Normalized(), b.Normalized()
	var sum float64
	for i := range na {
		d := na[i] + nb[i]
		if d == 0 {
			continue
		}
		diff := na[i] - nb[i]
		sum += diff * diff / d
	}
	return sum / 2
}

// IntersectionScore is 1 minus the histogram intersection of the
// normalized histograms; 0 for identical shapes, 1 for disjoint.
func IntersectionScore(a, b *core.Profile) float64 {
	na, nb := a.Normalized(), b.Normalized()
	var inter float64
	for i := range na {
		inter += math.Min(na[i], nb[i])
	}
	return 1 - inter
}

// MinkowskiScore is the order-p Minkowski distance between the
// normalized histograms.
func MinkowskiScore(a, b *core.Profile, p float64) float64 {
	na, nb := a.Normalized(), b.Normalized()
	var sum float64
	for i := range na {
		sum += math.Pow(math.Abs(na[i]-nb[i]), p)
	}
	return math.Pow(sum, 1/p)
}

// JeffreyScore is the Jeffrey divergence: the smoothed, symmetric
// variant of the Kullback-Leibler divergence, well defined in the
// presence of empty bins.
func JeffreyScore(a, b *core.Profile) float64 {
	na, nb := a.Normalized(), b.Normalized()
	var sum float64
	for i := range na {
		m := (na[i] + nb[i]) / 2
		if m == 0 {
			continue
		}
		if na[i] > 0 {
			sum += na[i] * math.Log(na[i]/m)
		}
		if nb[i] > 0 {
			sum += nb[i] * math.Log(nb[i]/m)
		}
	}
	return sum
}
