package analysis

import (
	"fmt"
	"math"

	"osprof/internal/core"
)

// Method identifies a profile-comparison algorithm (§3.2 "Comparing two
// profiles" and §5.3). All methods return a non-negative difference
// score; 0 means identical (after normalization where applicable).
type Method int

const (
	// EMD is the Earth Mover's Distance, the cross-bin metric the
	// paper recommends: view one normalized histogram as piles of
	// earth and the other as holes; the score is the least total work
	// (mass times distance in buckets) to fill the holes. It had the
	// smallest false-classification rate (2%) in §5.3.
	EMD Method = iota

	// ChiSquare is the bin-by-bin chi-squared test (5% error in §5.3).
	ChiSquare

	// TotalOps is the normalized difference of operation counts
	// (4% error in §5.3).
	TotalOps

	// TotalLatency is the normalized difference of total latencies
	// (3% error in §5.3).
	TotalLatency

	// Intersection is histogram intersection difference
	// (1 - sum of bin-wise minima of the normalized histograms).
	Intersection

	// Minkowski is the Minkowski-form distance with p=2 over
	// normalized histograms.
	Minkowski

	// Jeffrey is the Jeffrey divergence, the symmetrized, smoothed
	// variant of the Kullback-Leibler divergence.
	Jeffrey
)

// Methods lists all implemented comparison methods.
var Methods = []Method{EMD, ChiSquare, TotalOps, TotalLatency, Intersection, Minkowski, Jeffrey}

func (m Method) String() string {
	switch m {
	case EMD:
		return "emd"
	case ChiSquare:
		return "chi-square"
	case TotalOps:
		return "total-ops"
	case TotalLatency:
		return "total-latency"
	case Intersection:
		return "intersection"
	case Minkowski:
		return "minkowski"
	case Jeffrey:
		return "jeffrey"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Score computes the difference between two profiles under method m.
// Profiles must have equal bucket counts (same resolution).
func Score(m Method, a, b *core.Profile) float64 {
	switch m {
	case EMD:
		return EarthMovers(a, b)
	case ChiSquare:
		return ChiSquareScore(a, b)
	case TotalOps:
		return normDiff(float64(a.Count), float64(b.Count))
	case TotalLatency:
		return normDiff(float64(a.Total), float64(b.Total))
	case Intersection:
		return IntersectionScore(a, b)
	case Minkowski:
		return MinkowskiScore(a, b, 2)
	case Jeffrey:
		return JeffreyScore(a, b)
	}
	panic("analysis: unknown method " + m.String())
}

// normDiff is |x-y| / max(x,y), or 0 when both are zero.
func normDiff(x, y float64) float64 {
	max := x
	if y > max {
		max = y
	}
	if max == 0 {
		return 0
	}
	return math.Abs(x-y) / max
}

// normScales returns the divisors that turn raw bucket counts into
// normalized histogram values on the fly. The scorers below iterate the
// bucket arrays directly, dividing by these (exactly the arithmetic
// Profile.Normalized performs), instead of materializing two float
// slices per call: comparison is a steady-state operation in monitoring
// loops, and the two Normalized allocations dominated its cost. An
// empty profile gets divisor 1; all its buckets are zero, so every
// normalized value is still 0.
func normScales(a, b *core.Profile) (ca, cb float64) {
	if len(a.Buckets) != len(b.Buckets) {
		panic("analysis: comparing profiles of different resolutions")
	}
	ca, cb = float64(a.Count), float64(b.Count)
	if ca == 0 {
		ca = 1
	}
	if cb == 0 {
		cb = 1
	}
	return ca, cb
}

// EarthMovers computes the 1-D Earth Mover's Distance between the
// normalized histograms, scaled to [0,1] by the maximum possible work
// (moving all mass across the whole bucket axis). In one dimension the
// optimal transport cost is the L1 distance between the cumulative
// distributions, so no linear programming is needed.
func EarthMovers(a, b *core.Profile) float64 {
	ca, cb := normScales(a, b)
	if a.Count == 0 && b.Count == 0 {
		return 0
	}
	if a.Count == 0 || b.Count == 0 {
		return 1 // all mass vs no mass: maximal difference
	}
	var work, carry float64
	for i := range a.Buckets {
		carry += float64(a.Buckets[i])/ca - float64(b.Buckets[i])/cb
		work += math.Abs(carry)
	}
	return work / float64(len(a.Buckets)-1)
}

// ChiSquareScore computes the chi-squared statistic over the normalized
// histograms: sum (a_i-b_i)^2 / (a_i+b_i), halved to lie in [0,1].
func ChiSquareScore(a, b *core.Profile) float64 {
	ca, cb := normScales(a, b)
	var sum float64
	for i := range a.Buckets {
		na, nb := float64(a.Buckets[i])/ca, float64(b.Buckets[i])/cb
		d := na + nb
		if d == 0 {
			continue
		}
		diff := na - nb
		sum += diff * diff / d
	}
	return sum / 2
}

// IntersectionScore is 1 minus the histogram intersection of the
// normalized histograms; 0 for identical shapes, 1 for disjoint.
func IntersectionScore(a, b *core.Profile) float64 {
	ca, cb := normScales(a, b)
	var inter float64
	for i := range a.Buckets {
		inter += math.Min(float64(a.Buckets[i])/ca, float64(b.Buckets[i])/cb)
	}
	return 1 - inter
}

// MinkowskiScore is the order-p Minkowski distance between the
// normalized histograms.
func MinkowskiScore(a, b *core.Profile, p float64) float64 {
	ca, cb := normScales(a, b)
	var sum float64
	for i := range a.Buckets {
		diff := float64(a.Buckets[i])/ca - float64(b.Buckets[i])/cb
		sum += math.Pow(math.Abs(diff), p)
	}
	return math.Pow(sum, 1/p)
}

// JeffreyScore is the Jeffrey divergence: the smoothed, symmetric
// variant of the Kullback-Leibler divergence, well defined in the
// presence of empty bins.
func JeffreyScore(a, b *core.Profile) float64 {
	ca, cb := normScales(a, b)
	var sum float64
	for i := range a.Buckets {
		na, nb := float64(a.Buckets[i])/ca, float64(b.Buckets[i])/cb
		m := (na + nb) / 2
		if m == 0 {
			continue
		}
		if na > 0 {
			sum += na * math.Log(na/m)
		}
		if nb > 0 {
			sum += nb * math.Log(nb/m)
		}
	}
	return sum
}
