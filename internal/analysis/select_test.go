package analysis

import (
	"strings"
	"testing"

	"osprof/internal/core"
)

// buildSets creates two complete profile sets mimicking the paper's
// CIFS comparison (§6.4): most operations identical, one with a new
// right-shifted peak, plus many negligible operations.
func buildSets() (*core.Set, *core.Set) {
	a, b := core.NewSet("linux-client"), core.NewSet("windows-client")
	fill := func(s *core.Set, op string, buckets map[int]uint64) {
		p := s.Get(op)
		for bkt, c := range buckets {
			p.Buckets[bkt] = c
			p.Count += c
			p.Total += c * core.BucketMean(bkt)
		}
	}
	// Heavy op, same on both: should be skipped as similar.
	fill(a, "read", map[int]uint64{12: 10_000, 20: 400})
	fill(b, "read", map[int]uint64{12: 10_000, 20: 400})
	// The interesting one: a new delayed-ACK peak at bucket 28.
	fill(a, "findfirst", map[int]uint64{14: 3_000})
	fill(b, "findfirst", map[int]uint64{14: 2_500, 28: 500})
	// Tiny ops: phase 1 must drop them.
	for _, op := range []string{"ioctl", "flush", "lock", "unlock"} {
		fill(a, op, map[int]uint64{6: 2})
		fill(b, op, map[int]uint64{6: 3})
	}
	return a, b
}

func TestSelectorPhase1DropsSmallOps(t *testing.T) {
	a, b := buildSets()
	reports := DefaultSelector().Compare(a, b)
	skipped := map[string]bool{}
	for _, r := range reports {
		if r.Skipped {
			skipped[r.Op] = true
		}
	}
	for _, op := range []string{"ioctl", "flush", "lock", "unlock"} {
		if !skipped[op] {
			t.Errorf("tiny op %q not skipped in phase 1", op)
		}
	}
}

func TestSelectorFindsTheInterestingOp(t *testing.T) {
	a, b := buildSets()
	interesting := DefaultSelector().SelectInteresting(a, b)
	if len(interesting) != 1 {
		var ops []string
		for _, r := range interesting {
			ops = append(ops, r.Op)
		}
		t.Fatalf("interesting = %v, want exactly [findfirst]", ops)
	}
	r := interesting[0]
	if r.Op != "findfirst" {
		t.Fatalf("interesting op = %q", r.Op)
	}
	if r.Diff.NewPeaks != 1 {
		t.Errorf("NewPeaks = %d, want 1 (the delayed-ACK peak)", r.Diff.NewPeaks)
	}
}

func TestSelectorSkipsSimilarHeavyOp(t *testing.T) {
	a, b := buildSets()
	for _, r := range DefaultSelector().Compare(a, b) {
		if r.Op == "read" {
			if !r.Skipped {
				t.Errorf("identical heavy op not skipped: %+v", r)
			}
			if !strings.Contains(r.Reason, "similar") {
				t.Errorf("reason = %q", r.Reason)
			}
		}
	}
}

func TestSelectorHandlesOpMissingFromOneSet(t *testing.T) {
	a, b := core.NewSet("a"), core.NewSet("b")
	p := b.Get("newop")
	p.Buckets[10] = 1000
	p.Count = 1000
	p.Total = 1000 * core.BucketMean(10)
	reports := DefaultSelector().Compare(a, b)
	if len(reports) != 1 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Skipped || !reports[0].Interesting {
		t.Errorf("op present in only one set should be interesting: %+v", reports[0])
	}
}

func TestSelectorOrdering(t *testing.T) {
	a, b := buildSets()
	reports := DefaultSelector().Compare(a, b)
	// Non-skipped reports come first, sorted by descending score.
	seenSkipped := false
	last := 2.0
	for _, r := range reports {
		if r.Skipped {
			seenSkipped = true
			continue
		}
		if seenSkipped {
			t.Fatal("non-skipped report after a skipped one")
		}
		if r.Score > last {
			t.Fatal("scores not descending")
		}
		last = r.Score
	}
}

func TestRankByTotalLatency(t *testing.T) {
	s := core.NewSet("x")
	s.Record("small", 10)
	s.Record("big", 1<<30)
	ranked := RankByTotalLatency(s)
	if ranked[0].Op != "big" {
		t.Errorf("first = %q, want big", ranked[0].Op)
	}
}

func TestPairReportString(t *testing.T) {
	a, b := buildSets()
	for _, r := range DefaultSelector().Compare(a, b) {
		if r.String() == "" {
			t.Error("empty report string")
		}
	}
}
