package analysis

import (
	"fmt"
	"sort"

	"osprof/internal/core"
)

// Selector implements the paper's three-phase automated analysis of two
// complete profile sets (§3.2):
//
//  1. Ignore pairs whose total latency or operation count is very small
//     compared to the rest of the profiles, or whose total latencies
//     are very similar (the thresholds are configurable). "This step
//     alone greatly reduces the number of profiles a person would need
//     to analyze."
//  2. Identify individual peaks and report differences in their number
//     and locations.
//  3. Rate the remaining differences with one of several methods
//     (Earth Mover's Distance by default).
type Selector struct {
	// Method rates pair differences in phase 3 (default EMD).
	Method Method

	// MinShare drops operations contributing less than this fraction
	// of the set-wide total latency AND less than this fraction of
	// operations (default 0.01).
	MinShare float64

	// SimilarLatency treats pairs whose total latencies differ by
	// less than this fraction as uninteresting in phase 1 unless
	// their peak structure changed (default 0.05).
	SimilarLatency float64

	// Threshold is the minimum phase-3 score that marks a pair
	// interesting (default 0.10).
	Threshold float64

	// Peaks tunes peak detection for phase 2.
	Peaks PeakOptions
}

// DefaultSelector returns the selector configuration used throughout
// the repository's experiments.
func DefaultSelector() Selector {
	return Selector{
		Method:         EMD,
		MinShare:       0.01,
		SimilarLatency: 0.05,
		Threshold:      0.10,
	}
}

// PairReport is the outcome of comparing one operation's profiles
// across two profile sets.
type PairReport struct {
	Op   string
	A, B *core.Profile

	// Skipped marks pairs dropped in phase 1; Reason explains why.
	Skipped bool
	Reason  string

	// PeaksA and PeaksB are the phase-2 peak structures.
	PeaksA, PeaksB []Peak

	// Diff is the structural peak difference.
	Diff PeakDiff

	// Score is the phase-3 difference rating.
	Score float64

	// Interesting marks pairs selected for manual analysis.
	Interesting bool
}

// String renders a one-line summary of the report.
func (r PairReport) String() string {
	if r.Skipped {
		return fmt.Sprintf("%-16s skipped (%s)", r.Op, r.Reason)
	}
	return fmt.Sprintf("%-16s peaks %d->%d score %.3f interesting=%v",
		r.Op, r.Diff.CountA, r.Diff.CountB, r.Score, r.Interesting)
}

func (s Selector) withDefaults() Selector {
	d := DefaultSelector()
	if s.MinShare == 0 {
		s.MinShare = d.MinShare
	}
	if s.SimilarLatency == 0 {
		s.SimilarLatency = d.SimilarLatency
	}
	if s.Threshold == 0 {
		s.Threshold = d.Threshold
	}
	return s
}

// Compare runs all three phases over the union of operations in the
// two sets and returns one report per operation, ordered by descending
// score (skipped pairs last).
func (s Selector) Compare(a, b *core.Set) []PairReport {
	s = s.withDefaults()
	totalLat := a.TotalLatency() + b.TotalLatency()
	totalOps := a.TotalOps() + b.TotalOps()

	seen := make(map[string]bool)
	var ops []string
	for _, op := range append(a.Ops(), b.Ops()...) {
		if !seen[op] {
			seen[op] = true
			ops = append(ops, op)
		}
	}

	empty := func(set *core.Set, op string) *core.Profile {
		if p := set.Lookup(op); p != nil {
			return p
		}
		return core.NewProfileR(op, set.R)
	}

	var out []PairReport
	for _, op := range ops {
		r := PairReport{Op: op, A: empty(a, op), B: empty(b, op)}

		// Phase 1: share and similarity thresholds.
		latShare := share(r.A.Total+r.B.Total, totalLat)
		opsShare := share(r.A.Count+r.B.Count, totalOps)
		if latShare < s.MinShare && opsShare < s.MinShare {
			r.Skipped = true
			r.Reason = fmt.Sprintf("small share (latency %.2f%%, ops %.2f%%)",
				latShare*100, opsShare*100)
			out = append(out, r)
			continue
		}

		// Phase 2: peak structure.
		r.PeaksA = FindPeaksOpt(r.A, s.Peaks)
		r.PeaksB = FindPeaksOpt(r.B, s.Peaks)
		r.Diff = ComparePeaks(r.PeaksA, r.PeaksB)

		if normDiff(float64(r.A.Total), float64(r.B.Total)) < s.SimilarLatency &&
			r.Diff.Same() {
			r.Skipped = true
			r.Reason = "similar total latency, same peak structure"
			out = append(out, r)
			continue
		}

		// Phase 3: rate the difference.
		r.Score = Score(s.Method, r.A, r.B)
		r.Interesting = r.Score >= s.Threshold || !r.Diff.Same()
		out = append(out, r)
	}

	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Skipped != out[j].Skipped {
			return !out[i].Skipped
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// SelectInteresting runs Compare and returns only the pairs flagged
// interesting, i.e., the small set a person should look at (§3.2).
func (s Selector) SelectInteresting(a, b *core.Set) []PairReport {
	var out []PairReport
	for _, r := range s.Compare(a, b) {
		if !r.Skipped && r.Interesting {
			out = append(out, r)
		}
	}
	return out
}

// RankByTotalLatency orders a single set's profiles by their
// contribution to the total latency, the paper's first preprocessing
// step for performance work (§3.1).
func RankByTotalLatency(s *core.Set) []*core.Profile {
	return s.ByTotalLatency()
}

func share(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
