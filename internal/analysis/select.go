package analysis

import (
	"fmt"
	"slices"

	"osprof/internal/core"
)

// Selector implements the paper's three-phase automated analysis of two
// complete profile sets (§3.2):
//
//  1. Ignore pairs whose total latency or operation count is very small
//     compared to the rest of the profiles, or whose total latencies
//     are very similar (the thresholds are configurable). "This step
//     alone greatly reduces the number of profiles a person would need
//     to analyze."
//  2. Identify individual peaks and report differences in their number
//     and locations.
//  3. Rate the remaining differences with one of several methods
//     (Earth Mover's Distance by default).
type Selector struct {
	// Method rates pair differences in phase 3 (default EMD).
	Method Method

	// MinShare drops operations contributing less than this fraction
	// of the set-wide total latency AND less than this fraction of
	// operations (default 0.01).
	MinShare float64

	// SimilarLatency treats pairs whose total latencies differ by
	// less than this fraction as uninteresting in phase 1 unless
	// their peak structure changed (default 0.05).
	SimilarLatency float64

	// Threshold is the minimum phase-3 score that marks a pair
	// interesting (default 0.10).
	Threshold float64

	// Peaks tunes peak detection for phase 2.
	Peaks PeakOptions

	// scratch holds the buffers Compare reuses between calls, created
	// lazily on first use. Copying a Selector shares them; a Selector
	// must not be used from multiple goroutines concurrently.
	scratch *compareScratch
}

// compareScratch is Compare's working memory: once warmed up, repeated
// comparisons of similarly-shaped sets perform no allocations (the
// steady state of a monitoring loop diffing profiles every interval).
type compareScratch struct {
	ops     []string        // union of operation names
	opsB    []string        // second set's names, before dedup
	seen    map[string]bool // dedup set for ops
	reports []PairReport    // result buffer, returned by Compare
	peaks   []Peak          // arena backing every report's PeaksA/PeaksB
	moved   []int           // arena backing every report's Diff.Moved
	empties []*core.Profile // placeholder profiles for one-sided ops
	nEmpty  int             // empties used so far this call
}

// emptyFor returns a zeroed placeholder profile for an operation absent
// from set, reusing a previously allocated placeholder when possible.
func (sc *compareScratch) emptyFor(set *core.Set, op string) *core.Profile {
	if sc.nEmpty < len(sc.empties) && sc.empties[sc.nEmpty].R == set.R {
		p := sc.empties[sc.nEmpty]
		sc.nEmpty++
		p.Reset()
		p.Op = op
		return p
	}
	p := core.NewProfileR(op, set.R)
	if sc.nEmpty < len(sc.empties) {
		sc.empties[sc.nEmpty] = p
	} else {
		sc.empties = append(sc.empties, p)
	}
	sc.nEmpty++
	return p
}

// DefaultSelector returns the selector configuration used throughout
// the repository's experiments. It returns a pointer: the Selector
// carries reusable comparison scratch, so callers should create one and
// keep it for repeated Compare calls.
func DefaultSelector() *Selector {
	return &Selector{
		Method:         EMD,
		MinShare:       0.01,
		SimilarLatency: 0.05,
		Threshold:      0.10,
	}
}

// PairReport is the outcome of comparing one operation's profiles
// across two profile sets.
type PairReport struct {
	Op   string
	A, B *core.Profile

	// Skipped marks pairs dropped in phase 1; Reason explains why.
	Skipped bool
	Reason  string

	// PeaksA and PeaksB are the phase-2 peak structures.
	PeaksA, PeaksB []Peak

	// Diff is the structural peak difference.
	Diff PeakDiff

	// Score is the phase-3 difference rating.
	Score float64

	// Interesting marks pairs selected for manual analysis.
	Interesting bool
}

// String renders a one-line summary of the report.
func (r PairReport) String() string {
	if r.Skipped {
		return fmt.Sprintf("%-16s skipped (%s)", r.Op, r.Reason)
	}
	return fmt.Sprintf("%-16s peaks %d->%d score %.3f interesting=%v",
		r.Op, r.Diff.CountA, r.Diff.CountB, r.Score, r.Interesting)
}

func (s Selector) withDefaults() Selector {
	d := DefaultSelector()
	if s.MinShare == 0 {
		s.MinShare = d.MinShare
	}
	if s.SimilarLatency == 0 {
		s.SimilarLatency = d.SimilarLatency
	}
	if s.Threshold == 0 {
		s.Threshold = d.Threshold
	}
	return s
}

// Compare runs all three phases over the union of operations in the
// two sets and returns one report per operation, ordered by descending
// score (skipped pairs last).
//
// The returned slice (and the peak slices inside its reports) is backed
// by the Selector's reusable scratch buffers: it is valid until the
// next Compare call on the same Selector. Steady-state comparisons of
// similarly-shaped sets allocate nothing. Callers that need the reports
// to outlive the next call must copy them.
func (s *Selector) Compare(a, b *core.Set) []PairReport {
	cfg := s.withDefaults()
	if s.scratch == nil {
		s.scratch = &compareScratch{seen: make(map[string]bool)}
	}
	sc := s.scratch
	totalLat := a.TotalLatency() + b.TotalLatency()
	totalOps := a.TotalOps() + b.TotalOps()

	sc.ops = a.AppendOps(sc.ops[:0])
	sc.opsB = b.AppendOps(sc.opsB[:0])
	clear(sc.seen)
	for _, op := range sc.ops {
		sc.seen[op] = true
	}
	for _, op := range sc.opsB {
		if !sc.seen[op] {
			sc.seen[op] = true
			sc.ops = append(sc.ops, op)
		}
	}

	sc.reports = sc.reports[:0]
	sc.peaks = sc.peaks[:0]
	sc.moved = sc.moved[:0]
	sc.nEmpty = 0
	lookup := func(set *core.Set, op string) *core.Profile {
		if p := set.Lookup(op); p != nil {
			return p
		}
		return sc.emptyFor(set, op)
	}

	for _, op := range sc.ops {
		r := PairReport{Op: op, A: lookup(a, op), B: lookup(b, op)}

		// Phase 1: share and similarity thresholds.
		latShare := share(r.A.Total+r.B.Total, totalLat)
		opsShare := share(r.A.Count+r.B.Count, totalOps)
		if latShare < cfg.MinShare && opsShare < cfg.MinShare {
			r.Skipped = true
			r.Reason = fmt.Sprintf("small share (latency %.2f%%, ops %.2f%%)",
				latShare*100, opsShare*100)
			sc.reports = append(sc.reports, r)
			continue
		}

		// Phase 2: peak structure. The peak slices are carved out of
		// the shared arena; if a later append grows the arena, earlier
		// reports keep pointing at the old backing array, whose
		// contents stay valid.
		start := len(sc.peaks)
		sc.peaks = AppendPeaks(sc.peaks, r.A, cfg.Peaks)
		mid := len(sc.peaks)
		sc.peaks = AppendPeaks(sc.peaks, r.B, cfg.Peaks)
		end := len(sc.peaks)
		r.PeaksA = sc.peaks[start:mid:mid]
		r.PeaksB = sc.peaks[mid:end:end]
		r.Diff, sc.moved = appendComparePeaks(sc.moved, r.PeaksA, r.PeaksB)

		if normDiff(float64(r.A.Total), float64(r.B.Total)) < cfg.SimilarLatency &&
			r.Diff.Same() {
			r.Skipped = true
			r.Reason = "similar total latency, same peak structure"
			sc.reports = append(sc.reports, r)
			continue
		}

		// Phase 3: rate the difference.
		r.Score = Score(cfg.Method, r.A, r.B)
		r.Interesting = r.Score >= cfg.Threshold || !r.Diff.Same()
		sc.reports = append(sc.reports, r)
	}

	slices.SortStableFunc(sc.reports, func(x, y PairReport) int {
		if x.Skipped != y.Skipped {
			if x.Skipped {
				return 1
			}
			return -1
		}
		if x.Score != y.Score {
			if x.Score > y.Score {
				return -1
			}
			return 1
		}
		if x.Op < y.Op {
			return -1
		}
		if x.Op > y.Op {
			return 1
		}
		return 0
	})
	return sc.reports
}

// SelectInteresting runs Compare and returns only the pairs flagged
// interesting, i.e., the small set a person should look at (§3.2).
// The slice itself is freshly allocated, but the reports inside still
// reference the Selector's scratch buffers (peak slices, and the A/B
// placeholder profile for an operation present in only one set), so
// like Compare's result they are valid only until the next Compare or
// SelectInteresting call on the same Selector; deep-copy what must
// outlive that.
func (s *Selector) SelectInteresting(a, b *core.Set) []PairReport {
	var out []PairReport
	for _, r := range s.Compare(a, b) {
		if !r.Skipped && r.Interesting {
			out = append(out, r)
		}
	}
	return out
}

// RankByTotalLatency orders a single set's profiles by their
// contribution to the total latency, the paper's first preprocessing
// step for performance work (§3.1).
func RankByTotalLatency(s *core.Set) []*core.Profile {
	return s.ByTotalLatency()
}

func share(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}
