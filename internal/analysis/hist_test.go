package analysis

import (
	"math/rand"
	"testing"

	"osprof/internal/core"
)

// randomProfile fills a profile with count latencies from rng.
func randomProfile(t *testing.T, rng *rand.Rand, count int) *core.Profile {
	t.Helper()
	p := core.NewProfile("op")
	for i := 0; i < count; i++ {
		p.Record(uint64(rng.Int63n(1 << 30)))
	}
	return p
}

// HistEMD over AppendNormalized buffers must agree exactly with
// EarthMovers over the source profiles: the classifier's centroid
// arithmetic and the Selector's phase-3 scoring are the same metric.
func TestHistEMDMatchesEarthMovers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var bufA, bufB []float64
	for trial := 0; trial < 50; trial++ {
		a := randomProfile(t, rng, 1+rng.Intn(500))
		b := randomProfile(t, rng, 1+rng.Intn(500))
		bufA = AppendNormalized(bufA[:0], a)
		bufB = AppendNormalized(bufB[:0], b)
		if got, want := HistEMD(bufA, bufB), EarthMovers(a, b); got != want {
			t.Fatalf("trial %d: HistEMD=%v EarthMovers=%v", trial, got, want)
		}
	}
}

func TestHistEMDEdgeCases(t *testing.T) {
	zero := make([]float64, 64)
	if d := HistEMD(zero, zero); d != 0 {
		t.Errorf("zero vs zero: %v", d)
	}
	a := make([]float64, 64)
	a[0] = 1
	if d := HistEMD(a, a); d != 0 {
		t.Errorf("identical: %v", d)
	}
	b := make([]float64, 64)
	b[63] = 1
	if d := HistEMD(a, b); d != 1 {
		t.Errorf("opposite ends must be maximal, got %v", d)
	}
	// A mass deficit is distance, not a no-op: half the mass missing on
	// one side leaves |carry|=0.5 over the whole axis.
	half := make([]float64, 64)
	half[0] = 0.5
	if d := HistEMD(a, half); d < 0.4 {
		t.Errorf("mass deficit scored %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	HistEMD(a, a[:10])
}

func TestAppendNormalizedEmptyProfile(t *testing.T) {
	p := core.NewProfile("op")
	h := AppendNormalized(nil, p)
	if len(h) != len(p.Buckets) {
		t.Fatalf("len=%d want %d", len(h), len(p.Buckets))
	}
	for i, v := range h {
		if v != 0 {
			t.Fatalf("bucket %d = %v on an empty profile", i, v)
		}
	}
}

func TestAppendNormalizedReuseIsAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomProfile(t, rng, 100)
	b := randomProfile(t, rng, 100)
	var bufA, bufB []float64
	bufA = AppendNormalized(bufA[:0], a) // warm up the buffers
	bufB = AppendNormalized(bufB[:0], b)
	allocs := testing.AllocsPerRun(100, func() {
		bufA = AppendNormalized(bufA[:0], a)
		bufB = AppendNormalized(bufB[:0], b)
		HistEMD(bufA, bufB)
	})
	if allocs != 0 {
		t.Errorf("steady-state normalization+EMD allocates %.1f/op", allocs)
	}
}
