package analysis

import (
	"math"

	"osprof/internal/core"
)

// This file provides the float-histogram distance primitives behind the
// fingerprint classifier (internal/classify): a profile normalized into
// a caller-owned buffer, and Earth Mover's Distance directly over such
// buffers. The classifier compares an unknown run against per-label
// centroid sets over the union of their operations, normalizing each
// side into a reused scratch buffer; these helpers give it the same
// EMD the Selector uses (bit-identical arithmetic to EarthMovers)
// without allocating two histograms per comparison — identification
// ranks every operation against every corpus label, so the comparison
// count is ops x labels per verdict.

// AppendNormalized appends p's normalized histogram (each bucket's
// share of the profile's operation count, exactly the arithmetic of
// Profile.Normalized) to dst and returns the extended slice. Passing
// dst[:0] of a retained buffer makes repeated normalization
// allocation-free once the buffer has grown to the bucket count.
func AppendNormalized(dst []float64, p *core.Profile) []float64 {
	c := float64(p.Count)
	if c == 0 {
		c = 1 // all buckets are zero; every share is still 0
	}
	for _, n := range p.Buckets {
		dst = append(dst, float64(n)/c)
	}
	return dst
}

// HistEMD computes the 1-D Earth Mover's Distance between two
// equal-length normalized histograms, scaled to [0,1] by the maximum
// possible work, the same transport arithmetic as EarthMovers. Inputs
// whose masses differ are handled by the cumulative-difference form:
// undeliverable mass keeps contributing |carry| for every remaining
// bucket, so a mass deficit reads as distance rather than being
// silently ignored (a defensive property — the classifier always
// passes unit-mass histograms). Two all-zero histograms are identical
// (distance 0). Callers that want EarthMovers' convention of a maximal
// score for a one-sided pair (all mass vs no mass) must special-case
// it, as the classifier does for operations absent from one side.
func HistEMD(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("analysis: comparing histograms of different resolutions")
	}
	if len(a) < 2 {
		return 0
	}
	var work, carry float64
	for i := range a {
		carry += a[i] - b[i]
		work += math.Abs(carry)
	}
	return work / float64(len(a)-1)
}
