package analysis

import (
	"testing"

	"osprof/internal/core"
)

// mkProfile builds a profile with the given bucket populations.
func mkProfile(op string, buckets map[int]uint64) *core.Profile {
	p := core.NewProfile(op)
	for b, c := range buckets {
		p.Buckets[b] = c
		p.Count += c
		p.Total += c * core.BucketMean(b)
	}
	return p
}

func TestFindPeaksBimodal(t *testing.T) {
	// The Figure 1 shape: an uncontended peak around bucket 10 and a
	// contention peak around bucket 15.
	p := mkProfile("clone", map[int]uint64{
		9: 50, 10: 4000, 11: 80,
		14: 30, 15: 900, 16: 12,
	})
	peaks := FindPeaks(p)
	if len(peaks) != 2 {
		t.Fatalf("peaks = %d, want 2", len(peaks))
	}
	if peaks[0].ModeBucket != 10 || peaks[1].ModeBucket != 15 {
		t.Errorf("modes = %d,%d, want 10,15", peaks[0].ModeBucket, peaks[1].ModeBucket)
	}
	if peaks[0].Count != 4130 {
		t.Errorf("peak 0 count = %d, want 4130", peaks[0].Count)
	}
	if peaks[0].Range.Lo != 9 || peaks[0].Range.Hi != 11 {
		t.Errorf("peak 0 range = %+v", peaks[0].Range)
	}
}

func TestFindPeaksSingleBucketGapMerged(t *testing.T) {
	// A one-bucket pinhole inside a mode does not split the peak
	// (default MaxGap = 1).
	p := mkProfile("op", map[int]uint64{5: 10, 7: 10})
	if peaks := FindPeaks(p); len(peaks) != 1 {
		t.Errorf("peaks = %d, want 1 (gap of one merged)", len(peaks))
	}
	// A two-bucket gap splits.
	p2 := mkProfile("op", map[int]uint64{5: 10, 8: 10})
	if peaks := FindPeaks(p2); len(peaks) != 2 {
		t.Errorf("peaks = %d, want 2 (gap of two splits)", len(peaks))
	}
}

func TestFindPeaksMinCount(t *testing.T) {
	p := mkProfile("op", map[int]uint64{5: 1000, 12: 2})
	peaks := FindPeaksOpt(p, PeakOptions{MinCount: 5})
	if len(peaks) != 1 {
		t.Fatalf("peaks = %d, want 1 (noise suppressed)", len(peaks))
	}
	if peaks[0].ModeBucket != 5 {
		t.Errorf("mode = %d", peaks[0].ModeBucket)
	}
}

func TestFindPeaksEmpty(t *testing.T) {
	if peaks := FindPeaks(core.NewProfile("x")); len(peaks) != 0 {
		t.Errorf("peaks on empty profile = %d", len(peaks))
	}
}

func TestPeakMeanLatency(t *testing.T) {
	p := mkProfile("op", map[int]uint64{10: 100})
	peaks := FindPeaks(p)
	if got := peaks[0].MeanLatency(p); got != core.BucketMean(10) {
		t.Errorf("MeanLatency = %d, want %d", got, core.BucketMean(10))
	}
}

func TestComparePeaksStructure(t *testing.T) {
	a := mkProfile("op", map[int]uint64{6: 100})
	b := mkProfile("op", map[int]uint64{6: 100, 15: 40})
	d := ComparePeaks(FindPeaks(a), FindPeaks(b))
	if d.Same() {
		t.Error("diff with a new peak reported Same")
	}
	if d.NewPeaks != 1 || d.LostPeaks != 0 {
		t.Errorf("NewPeaks=%d LostPeaks=%d", d.NewPeaks, d.LostPeaks)
	}
}

func TestComparePeaksShift(t *testing.T) {
	a := mkProfile("op", map[int]uint64{6: 100})
	b := mkProfile("op", map[int]uint64{9: 100})
	d := ComparePeaks(FindPeaks(a), FindPeaks(b))
	if d.Same() {
		t.Error("shifted peak reported Same")
	}
	if len(d.Moved) != 1 || d.Moved[0] != 3 {
		t.Errorf("Moved = %v, want [3]", d.Moved)
	}
}

func TestComparePeaksIdentical(t *testing.T) {
	a := mkProfile("op", map[int]uint64{6: 100, 12: 5})
	d := ComparePeaks(FindPeaks(a), FindPeaks(a))
	if !d.Same() {
		t.Error("identical peak sets reported different")
	}
}
