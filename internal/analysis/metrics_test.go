package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"osprof/internal/core"
)

func TestAllMetricsZeroForIdentical(t *testing.T) {
	p := mkProfile("op", map[int]uint64{5: 100, 9: 40, 20: 3})
	for _, m := range Methods {
		if got := Score(m, p, p); got > 1e-12 {
			t.Errorf("%s(p,p) = %g, want 0", m, got)
		}
	}
}

func TestMetricsSymmetric(t *testing.T) {
	a := mkProfile("a", map[int]uint64{5: 100, 9: 40})
	b := mkProfile("b", map[int]uint64{6: 80, 15: 60})
	for _, m := range Methods {
		ab, ba := Score(m, a, b), Score(m, b, a)
		if math.Abs(ab-ba) > 1e-12 {
			t.Errorf("%s not symmetric: %g vs %g", m, ab, ba)
		}
	}
}

// TestEMDShiftSensitivity captures why the paper prefers EMD: bin-by-bin
// methods saturate for any disjoint histograms, while EMD grows with the
// distance the mass moved.
func TestEMDShiftSensitivity(t *testing.T) {
	base := mkProfile("base", map[int]uint64{10: 1000})
	near := mkProfile("near", map[int]uint64{11: 1000})
	far := mkProfile("far", map[int]uint64{30: 1000})

	emdNear, emdFar := EarthMovers(base, near), EarthMovers(base, far)
	if emdNear >= emdFar {
		t.Errorf("EMD near=%g !< far=%g", emdNear, emdFar)
	}
	chiNear, chiFar := ChiSquareScore(base, near), ChiSquareScore(base, far)
	if math.Abs(chiNear-chiFar) > 1e-12 {
		t.Errorf("chi-square should saturate for disjoint histograms: %g vs %g",
			chiNear, chiFar)
	}
}

func TestEMDKnownValue(t *testing.T) {
	// All mass moves one bucket: work = 1 move * 1 bucket over 63
	// possible buckets of distance.
	a := mkProfile("a", map[int]uint64{10: 100})
	b := mkProfile("b", map[int]uint64{11: 100})
	want := 1.0 / 63
	if got := EarthMovers(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("EMD = %g, want %g", got, want)
	}
}

func TestEMDEmptyProfiles(t *testing.T) {
	e := core.NewProfile("e")
	p := mkProfile("p", map[int]uint64{5: 1})
	if got := EarthMovers(e, e); got != 0 {
		t.Errorf("EMD(empty,empty) = %g", got)
	}
	if got := EarthMovers(e, p); got != 1 {
		t.Errorf("EMD(empty,p) = %g, want 1", got)
	}
}

func TestTotalOpsAndLatencyScores(t *testing.T) {
	a := mkProfile("a", map[int]uint64{5: 100})
	b := mkProfile("b", map[int]uint64{5: 50})
	if got := Score(TotalOps, a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TotalOps = %g, want 0.5", got)
	}
	if got := Score(TotalLatency, a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TotalLatency = %g, want 0.5", got)
	}
}

func TestIntersectionBounds(t *testing.T) {
	a := mkProfile("a", map[int]uint64{5: 100})
	b := mkProfile("b", map[int]uint64{30: 100})
	if got := IntersectionScore(a, b); got != 1 {
		t.Errorf("disjoint intersection = %g, want 1", got)
	}
}

func TestJeffreyFiniteWithZeros(t *testing.T) {
	a := mkProfile("a", map[int]uint64{5: 100})
	b := mkProfile("b", map[int]uint64{30: 100})
	got := JeffreyScore(a, b)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Jeffrey = %g, want finite", got)
	}
	if got <= 0 {
		t.Errorf("Jeffrey = %g, want > 0 for disjoint", got)
	}
}

func TestMinkowskiMatchesEuclidean(t *testing.T) {
	a := mkProfile("a", map[int]uint64{5: 1})
	b := mkProfile("b", map[int]uint64{6: 1})
	// normalized: a=(...,1,...), b=(...,1,...): distance sqrt(2).
	if got := MinkowskiScore(a, b, 2); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Minkowski = %g, want sqrt(2)", got)
	}
}

// Metric axioms checked by property: non-negativity, symmetry, and
// identity for EMD (a true metric in 1-D).
func TestEMDMetricAxiomsProperty(t *testing.T) {
	gen := func(seed int64) *core.Profile {
		rng := rand.New(rand.NewSource(seed))
		p := core.NewProfile("x")
		for i := 0; i < 1+rng.Intn(50); i++ {
			p.Record(uint64(rng.Int63n(1 << 30)))
		}
		return p
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		dab, dba := EarthMovers(a, b), EarthMovers(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-12 {
			return false
		}
		if EarthMovers(a, a) > 1e-12 {
			return false
		}
		// Triangle inequality.
		return EarthMovers(a, c) <= EarthMovers(a, b)+EarthMovers(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMethodString(t *testing.T) {
	if EMD.String() != "emd" || ChiSquare.String() != "chi-square" {
		t.Error("method names wrong")
	}
	if Method(42).String() == "" {
		t.Error("unknown method empty name")
	}
}
