package disk

import (
	"math"
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/sim"
)

// Submit must reject malformed requests loudly (a silent wrap would
// corrupt head position and cache state for the rest of the run), and
// the bounds check must survive uint64 overflow on LBA+Blocks.
func TestSubmitRejectsMalformedRequests(t *testing.T) {
	cases := []struct {
		name        string
		lba, blocks uint64
		wantPanic   bool
	}{
		{"zero length", 0, 0, true},
		{"starts at device end", 1 << 20, 1, true},
		{"starts past device end", 1<<20 + 5, 1, true},
		{"ends past device end", 1<<20 - 1, 2, true},
		{"lba+blocks wraps uint64", math.MaxUint64 - 1, 3, true},
		{"blocks wraps alone", 0, math.MaxUint64, true},
		{"last block exactly", 1<<20 - 1, 1, false},
		{"whole device", 0, 1 << 20, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, d := newRig() // Blocks defaults to 1<<20
			defer func() {
				if got := recover() != nil; got != tc.wantPanic {
					t.Errorf("[%d,+%d): panic=%v, want %v", tc.lba, tc.blocks, got, tc.wantPanic)
				}
			}()
			d.Submit(&Request{LBA: tc.lba, Blocks: tc.blocks})
		})
	}
}

// Degenerate geometry configurations must normalize to something the
// mechanics can compute with — no division by zero in the cylinder and
// angle maps, no uint64 underflow in the seek span.
func TestGeometryNormalization(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		// check receives the effective config after defaults.
		check func(t *testing.T, cfg Config)
	}{
		{"all zero takes defaults", Config{}, func(t *testing.T, cfg Config) {
			if cfg.Blocks == 0 || cfg.BlocksPerCylinder == 0 || cfg.BlocksPerTrack == 0 {
				t.Errorf("zero geometry survived defaults: %+v", cfg)
			}
		}},
		{"inverted seek profile clamps", Config{
			TrackToTrackSeek: 8 * cycles.PerMillisecond,
			FullStrokeSeek:   1 * cycles.PerMillisecond,
		}, func(t *testing.T, cfg Config) {
			if cfg.FullStrokeSeek < cfg.TrackToTrackSeek {
				t.Errorf("FullStrokeSeek %d still below TrackToTrackSeek %d",
					cfg.FullStrokeSeek, cfg.TrackToTrackSeek)
			}
		}},
		{"single-cylinder drive", Config{Blocks: 64, BlocksPerCylinder: 512},
			func(t *testing.T, cfg Config) {}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
			d := New(k, tc.cfg)
			tc.check(t, d.Config())
			// Whatever the geometry, a far media read must finish within
			// the mechanical envelope (the inverted profile would have
			// produced a near-infinite seek before the clamp).
			var r *Request
			k.Spawn("reader", func(p *sim.Proc) {
				last := d.Config().Blocks - 1
				d.Read(p, 0, 1)
				r = d.Read(p, last, 1)
			})
			k.Run()
			if r == nil || r.EndTime == 0 {
				t.Fatal("read did not complete")
			}
			if lat := r.EndTime - r.SubmitTime; lat > 13*cycles.PerMillisecond {
				t.Errorf("media read latency %s beyond the mechanical envelope",
					cycles.Format(lat))
			}
		})
	}
}

// Exhausting the segment cache falls back to media reads and the stats
// counters say so: with S segments, a cyclic scan over S+1 disjoint
// regions never hits.
func TestCacheSegmentExhaustionCounts(t *testing.T) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	d := New(k, Config{CacheSegments: 2})
	const regions = 3 // CacheSegments + 1
	k.Spawn("reader", func(p *sim.Proc) {
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < regions; i++ {
				if r := d.Read(p, uint64(i)*100_000, 1); r.CacheHit {
					t.Errorf("pass %d region %d hit a cache that should have thrashed", pass, i)
				}
			}
		}
	})
	k.Run()
	st := d.Stats()
	if st.MediaReads != 4*regions || st.CacheHits != 0 || st.Reads != 4*regions {
		t.Errorf("stats = %+v, want %d media reads and no hits", st, 4*regions)
	}
	// Shrink the scan to fit: every revisit after the warm-up pass hits.
	k2 := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	d2 := New(k2, Config{CacheSegments: 2})
	k2.Spawn("reader", func(p *sim.Proc) {
		for pass := 0; pass < 4; pass++ {
			for i := 0; i < 2; i++ {
				r := d2.Read(p, uint64(i)*100_000, 1)
				if pass > 0 && !r.CacheHit {
					t.Errorf("pass %d region %d missed a cache that fits the scan", pass, i)
				}
			}
		}
	})
	k2.Run()
	if st := d2.Stats(); st.MediaReads != 2 || st.CacheHits != 6 {
		t.Errorf("fitting scan stats = %+v, want 2 media reads and 6 hits", st)
	}
}
