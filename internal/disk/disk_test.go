package disk

import (
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/sim"
)

func newRig() (*sim.Kernel, *Disk) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	d := New(k, Config{})
	return k, d
}

func TestSyncReadCompletesAndTimes(t *testing.T) {
	k, d := newRig()
	var r *Request
	k.Spawn("reader", func(p *sim.Proc) {
		r = d.Read(p, 100_000, 1)
	})
	k.Run()
	if r == nil || r.EndTime == 0 {
		t.Fatal("read did not complete")
	}
	lat := r.EndTime - r.SubmitTime
	// A cold media read pays command overhead + seek + rotation +
	// transfer: between ~50us and ~12.1ms.
	if lat < 50*cycles.PerMicrosecond || lat > 13*cycles.PerMillisecond {
		t.Errorf("media read latency = %s, outside mechanical envelope",
			cycles.Format(lat))
	}
	if r.CacheHit {
		t.Error("cold read reported a cache hit")
	}
}

func TestReadaheadCreatesCacheHits(t *testing.T) {
	k, d := newRig()
	var lat1, lat2 uint64
	k.Spawn("reader", func(p *sim.Proc) {
		r1 := d.Read(p, 5_000, 1)
		lat1 = r1.EndTime - r1.StartTime
		// The next blocks were pulled in by internal readahead: the
		// sharp "third peak" of Figure 7.
		r2 := d.Read(p, 5_001, 1)
		lat2 = r2.EndTime - r2.StartTime
		if !r2.CacheHit {
			t.Error("sequential read missed the readahead cache")
		}
	})
	k.Run()
	want := d.cfg.CommandOverhead + d.cfg.TransferPerBlock
	if lat2 != want {
		t.Errorf("cache-hit latency = %d, want exactly %d (no mechanics)", lat2, want)
	}
	if lat2*2 > lat1 {
		t.Errorf("cache hit (%s) not much faster than media read (%s)",
			cycles.Format(lat2), cycles.Format(lat1))
	}
	st := d.Stats()
	if st.CacheHits != 1 || st.MediaReads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSeekTimeGrowsWithDistance(t *testing.T) {
	k, d := newRig()
	var near, far uint64
	k.Spawn("reader", func(p *sim.Proc) {
		d.Read(p, 0, 1) // park the head at cylinder 0
		r := d.Read(p, d.cfg.BlocksPerCylinder*2, 1)
		near = r.EndTime - r.StartTime
		d.Read(p, 0, 1) // back to 0
		r = d.Read(p, d.cfg.Blocks-10, 1)
		far = r.EndTime - r.StartTime
	})
	k.Run()
	// Rotation adds up to 4ms of noise; a full-stroke seek (8ms) must
	// still dominate a 2-cylinder seek (~0.3ms).
	if far <= near {
		t.Errorf("far seek %s not slower than near seek %s",
			cycles.Format(far), cycles.Format(near))
	}
}

func TestSameCylinderNoSeek(t *testing.T) {
	k, d := newRig()
	k.Spawn("reader", func(p *sim.Proc) {
		d.Read(p, 0, 1)
	})
	k.Run()
	if d.Stats().TotalSeek != 0 {
		t.Errorf("seek from initial head position = %d", d.Stats().TotalSeek)
	}
}

func TestWriteAsyncReturnsImmediately(t *testing.T) {
	k, d := newRig()
	var submitElapsed uint64
	completed := false
	k.Spawn("writer", func(p *sim.Proc) {
		start := p.Now()
		d.WriteAsync(200_000, 4, func() { completed = true })
		submitElapsed = p.Now() - start
		p.Sleep(20 * cycles.PerMillisecond)
	})
	k.Run()
	if submitElapsed != 0 {
		t.Errorf("async submit consumed %d cycles of wall time", submitElapsed)
	}
	if !completed {
		t.Error("async write never completed")
	}
}

func TestElevatorOrdersByCylinder(t *testing.T) {
	k, d := newRig()
	var order []uint64
	mk := func(lba uint64) *Request {
		return &Request{LBA: lba, Blocks: 1, OnComplete: func() {
			order = append(order, lba)
		}}
	}
	k.Spawn("submitter", func(p *sim.Proc) {
		// Saturate the drive, then submit out of cylinder order.
		d.Submit(mk(1)) // starts service immediately
		lbaA := d.cfg.BlocksPerCylinder * 900
		lbaB := d.cfg.BlocksPerCylinder * 100
		lbaC := d.cfg.BlocksPerCylinder * 500
		d.Submit(mk(lbaA))
		d.Submit(mk(lbaB))
		d.Submit(mk(lbaC))
		p.Sleep(100 * cycles.PerMillisecond)
	})
	k.Run()
	if len(order) != 4 {
		t.Fatalf("completed = %v", order)
	}
	// C-LOOK from cylinder ~0: 100 then 500 then 900.
	if order[1]/d.cfg.BlocksPerCylinder != 100 ||
		order[2]/d.cfg.BlocksPerCylinder != 500 ||
		order[3]/d.cfg.BlocksPerCylinder != 900 {
		t.Errorf("service order (cylinders) = %d,%d,%d, want 100,500,900",
			order[1]/d.cfg.BlocksPerCylinder,
			order[2]/d.cfg.BlocksPerCylinder,
			order[3]/d.cfg.BlocksPerCylinder)
	}
}

func TestDrainWaitsForQueue(t *testing.T) {
	k, d := newRig()
	done := 0
	k.Spawn("syncer", func(p *sim.Proc) {
		for i := uint64(0); i < 5; i++ {
			d.WriteAsync(i*10_000, 1, func() { done++ })
		}
		d.Drain(p)
		if done != 5 {
			t.Errorf("Drain returned with %d/5 writes complete", done)
		}
	})
	k.Run()
}

func TestRotationDeterministic(t *testing.T) {
	run := func() uint64 {
		k, d := newRig()
		var total uint64
		k.Spawn("reader", func(p *sim.Proc) {
			for i := uint64(0); i < 20; i++ {
				r := d.Read(p, i*7777, 1)
				total += r.EndTime - r.StartTime
			}
		})
		k.Run()
		return total
	}
	if a, b := run(), run(); a != b {
		t.Errorf("non-deterministic service times: %d vs %d", a, b)
	}
}

func TestProbeSeesLifecycle(t *testing.T) {
	k, d := newRig()
	var submitted, completed int
	d.SetProbe(probeFn{func(*Request) { submitted++ }, func(*Request) { completed++ }})
	k.Spawn("reader", func(p *sim.Proc) {
		d.Read(p, 1000, 2)
	})
	k.Run()
	if submitted != 1 || completed != 1 {
		t.Errorf("probe: submitted=%d completed=%d", submitted, completed)
	}
}

type probeFn struct {
	sub func(*Request)
	com func(*Request)
}

func (p probeFn) Submitted(r *Request) { p.sub(r) }
func (p probeFn) Completed(r *Request) { p.com(r) }

func TestSubmitPanicsOnBadRequest(t *testing.T) {
	k, d := newRig()
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range request")
		}
		_ = k
	}()
	d.Submit(&Request{LBA: d.cfg.Blocks, Blocks: 1})
}

func TestCacheSegmentEviction(t *testing.T) {
	k, d := newRig()
	k.Spawn("reader", func(p *sim.Proc) {
		// Touch more distinct regions than there are cache segments.
		for i := 0; i <= d.cfg.CacheSegments; i++ {
			d.Read(p, uint64(i)*100_000, 1)
		}
		// The first region must have been evicted.
		r := d.Read(p, 0, 1)
		if r.CacheHit {
			t.Error("oldest segment not evicted")
		}
	})
	k.Run()
}
