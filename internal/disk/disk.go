// Package disk models the paper's test disk: a Maxtor Atlas 15,000 RPM
// Ultra320 SCSI drive (§5). The model reproduces the latency components
// that create the multi-modal I/O peaks of §6.2:
//
//   - command overhead plus transfer time for requests satisfied from
//     the on-disk segment cache filled by internal readahead (the sharp
//     "third peak" of Figure 7, §6.2),
//   - mechanical seeks (0.3 ms track-to-track to 8 ms full stroke) and
//     rotational positioning (4 ms per revolution) for media reads (the
//     broad "fourth peak"),
//   - an elevator (C-LOOK) request queue, since "only the disk drive
//     itself can schedule the requests in an optimal way" (§2).
//
// Rotational latency is computed from the (deterministic) angular
// position of the platter at the end of the seek, so simulations are
// exactly reproducible.
package disk

import (
	"fmt"

	"osprof/internal/cycles"
	"osprof/internal/sim"
	"osprof/internal/trace"
)

// Config describes the drive geometry and timing.
type Config struct {
	// Blocks is the drive capacity in 4 KB blocks (default 4 GiB).
	Blocks uint64

	// BlocksPerCylinder controls the LBA-to-cylinder mapping
	// (default 512, about 2 MB per cylinder).
	BlocksPerCylinder uint64

	// BlocksPerTrack controls the angular position of a block on its
	// track (default 128).
	BlocksPerTrack uint64

	// TrackToTrackSeek, FullStrokeSeek, FullRotation are the
	// mechanical characteristics in cycles; defaults follow the
	// paper's §3.1/§6.2 numbers (0.3 ms, 8 ms, 4 ms).
	TrackToTrackSeek uint64
	FullStrokeSeek   uint64
	FullRotation     uint64

	// CommandOverhead is the per-request controller cost (default
	// ~20 us).
	CommandOverhead uint64

	// TransferPerBlock is the media/interface transfer time for one
	// 4 KB block (default ~30 us).
	TransferPerBlock uint64

	// CacheSegments is the number of on-disk readahead segments
	// (default 8).
	CacheSegments int

	// ReadaheadBlocks is how far past a media read the drive's
	// internal readahead extends its cache segment (default 32).
	ReadaheadBlocks uint64
}

func (c *Config) applyDefaults() {
	if c.Blocks == 0 {
		c.Blocks = 1 << 20
	}
	if c.BlocksPerCylinder == 0 {
		c.BlocksPerCylinder = 512
	}
	if c.BlocksPerTrack == 0 {
		c.BlocksPerTrack = 128
	}
	if c.TrackToTrackSeek == 0 {
		c.TrackToTrackSeek = cycles.TrackToTrackSeek
	}
	if c.FullStrokeSeek == 0 {
		c.FullStrokeSeek = cycles.FullStrokeSeek
	}
	if c.FullRotation == 0 {
		c.FullRotation = cycles.FullRotation
	}
	if c.CommandOverhead == 0 {
		c.CommandOverhead = 20 * cycles.PerMicrosecond
	}
	if c.TransferPerBlock == 0 {
		c.TransferPerBlock = 30 * cycles.PerMicrosecond
	}
	if c.CacheSegments == 0 {
		c.CacheSegments = 8
	}
	if c.ReadaheadBlocks == 0 {
		c.ReadaheadBlocks = 32
	}
	// An inverted seek profile would underflow seekTime's span
	// (uint64), turning every cross-cylinder seek into an absurd wait.
	if c.FullStrokeSeek < c.TrackToTrackSeek {
		c.FullStrokeSeek = c.TrackToTrackSeek
	}
}

// Request is one I/O submitted to the drive.
type Request struct {
	LBA    uint64
	Blocks uint64
	Write  bool

	// OnComplete runs (in kernel-event context) when the request
	// finishes.
	OnComplete func()

	// Timestamps and classification filled in by the drive.
	SubmitTime, StartTime, EndTime uint64
	CacheHit                       bool

	// Trace, when valid, credits the submitting request's span tree at
	// completion: queue wait to the driver layer, service time to the
	// disk layer. The zero value (untraced run, daemon writeback, or a
	// submit outside any request) is inert.
	Trace trace.Token
}

// Stats aggregates drive activity.
type Stats struct {
	Reads, Writes  uint64
	CacheHits      uint64
	MediaReads     uint64
	TotalSeek      uint64 // cycles spent seeking
	TotalRotation  uint64 // cycles spent waiting for the platter
	TotalQueueWait uint64 // cycles requests waited in the elevator

	// Injected counts requests stretched by the installed Injector;
	// InjectedDelay totals the added cycles.
	Injected      uint64
	InjectedDelay uint64
}

// Probe observes request lifecycle events; the driver-level profiler
// (§4 "Driver-level prolers") hooks in here.
type Probe interface {
	Submitted(r *Request)
	Completed(r *Request)
}

// Injector perturbs request service times — the fault-injection hook
// (internal/fault). Perturb runs in kernel-event context as a request
// enters service, after the healthy service time base was computed;
// media reports whether the request goes to the platters (false for
// segment-cache hits). The returned cycles are added to the service
// time. Implementations must be deterministic for reproducible runs.
type Injector interface {
	Perturb(r *Request, base uint64, media bool) uint64
}

// segment is one on-disk cache segment: block range [Start, End).
type segment struct {
	Start, End uint64
}

// Disk is the simulated drive.
type Disk struct {
	k     *sim.Kernel
	cfg   Config
	stats Stats

	headCyl  uint64
	busy     bool
	queue    []*Request
	cache    []segment // most recent last
	probe    Probe
	injector Injector
	tr       *trace.Tracer
	drainers []*sim.Proc
}

// New creates a drive attached to kernel k.
func New(k *sim.Kernel, cfg Config) *Disk {
	cfg.applyDefaults()
	return &Disk{k: k, cfg: cfg}
}

// Config returns the effective configuration.
func (d *Disk) Config() Config { return d.cfg }

// Stats returns accumulated drive statistics.
func (d *Disk) Stats() Stats { return d.stats }

// SetProbe installs a driver-level instrumentation probe.
func (d *Disk) SetProbe(p Probe) { d.probe = p }

// SetInjector installs a fault injector (nil uninstalls).
func (d *Disk) SetInjector(i Injector) { d.injector = i }

// SetTracer installs the layer tracer consulted by TraceToken and the
// synchronous Read/Write paths.
func (d *Disk) SetTracer(tr *trace.Tracer) { d.tr = tr }

// TraceToken captures a span-credit token for p's open request, for
// callers that build Requests themselves (the file systems' readpage
// paths). The zero token is returned — and is inert — when tracing is
// off or p has no open request.
func (d *Disk) TraceToken(p *sim.Proc) trace.Token { return d.tr.Token(p) }

// QueueLen reports the number of requests waiting or in service.
func (d *Disk) QueueLen() int {
	n := len(d.queue)
	if d.busy {
		n++
	}
	return n
}

// Submit enqueues a request. It may be called from process or kernel
// context; completion is delivered via r.OnComplete.
func (d *Disk) Submit(r *Request) {
	if r.Blocks == 0 {
		panic("disk: zero-length request")
	}
	// Phrased to stay correct when LBA+Blocks wraps uint64: a request
	// ending past the device must never slip through on overflow.
	if r.LBA >= d.cfg.Blocks || r.Blocks > d.cfg.Blocks-r.LBA {
		panic(fmt.Sprintf("disk: request [%d,+%d) beyond device end %d",
			r.LBA, r.Blocks, d.cfg.Blocks))
	}
	r.SubmitTime = d.k.Now()
	d.queue = append(d.queue, r)
	if d.probe != nil {
		d.probe.Submitted(r)
	}
	if !d.busy {
		// Kick the service loop from kernel-event context.
		d.k.Schedule(0, d.start)
	}
}

// Read performs a synchronous read: the calling process blocks until
// the data is available.
func (d *Disk) Read(p *sim.Proc, lba, blocks uint64) *Request {
	r := &Request{LBA: lba, Blocks: blocks, Trace: d.tr.Token(p)}
	k := d.k
	r.OnComplete = func() { k.Wake(p) }
	d.Submit(r)
	p.Block("disk-read")
	return r
}

// Write performs a synchronous write.
func (d *Disk) Write(p *sim.Proc, lba, blocks uint64) *Request {
	r := &Request{LBA: lba, Blocks: blocks, Write: true, Trace: d.tr.Token(p)}
	k := d.k
	r.OnComplete = func() { k.Wake(p) }
	d.Submit(r)
	p.Block("disk-write")
	return r
}

// WriteAsync schedules a write; onComplete (optional) runs when it
// finishes. This mirrors Linux, where "file system writes and
// asynchronous I/O requests return immediately after scheduling the I/O
// request" so their latency contains no information about I/O times
// (§4) — the motivation for the driver-level profiler.
func (d *Disk) WriteAsync(lba, blocks uint64, onComplete func()) *Request {
	r := &Request{LBA: lba, Blocks: blocks, Write: true, OnComplete: onComplete}
	d.Submit(r)
	return r
}

// Drain blocks the calling process until every queued request has
// completed (the sync path).
func (d *Disk) Drain(p *sim.Proc) {
	for d.busy || len(d.queue) > 0 {
		d.drainers = append(d.drainers, p)
		p.Block("disk-drain")
	}
}

// start begins servicing the next queued request (kernel context).
func (d *Disk) start() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	idx := d.pick()
	r := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	d.busy = true
	r.StartTime = d.k.Now()
	d.stats.TotalQueueWait += r.StartTime - r.SubmitTime

	service := d.serviceTime(r)
	d.k.Schedule(service, func() { d.complete(r) })
}

// complete finishes a request and starts the next one.
func (d *Disk) complete(r *Request) {
	r.EndTime = d.k.Now()
	d.busy = false
	if d.probe != nil {
		d.probe.Completed(r)
	}
	r.Trace.Credit(r.StartTime-r.SubmitTime, r.EndTime-r.StartTime)
	if r.OnComplete != nil {
		r.OnComplete()
	}
	d.start()
	if !d.busy && len(d.queue) == 0 {
		for _, p := range d.drainers {
			d.k.Wake(p)
		}
		d.drainers = d.drainers[:0]
	}
}

// pick implements C-LOOK: the queued request with the smallest cylinder
// at or beyond the head sweeps first; if none, wrap to the smallest.
func (d *Disk) pick() int {
	best, bestWrap := -1, -1
	var bestCyl, bestWrapCyl uint64
	for i, r := range d.queue {
		c := r.LBA / d.cfg.BlocksPerCylinder
		if c >= d.headCyl {
			if best == -1 || c < bestCyl {
				best, bestCyl = i, c
			}
		} else if bestWrap == -1 || c < bestWrapCyl {
			bestWrap, bestWrapCyl = i, c
		}
	}
	if best >= 0 {
		return best
	}
	return bestWrap
}

// serviceTime computes the duration of a request and updates the head
// position and cache state.
func (d *Disk) serviceTime(r *Request) uint64 {
	transfer := d.cfg.TransferPerBlock * r.Blocks
	if !r.Write && d.cacheContains(r.LBA, r.Blocks) {
		r.CacheHit = true
		d.stats.Reads++
		d.stats.CacheHits++
		return d.inject(r, d.cfg.CommandOverhead+transfer, false)
	}

	cyl := r.LBA / d.cfg.BlocksPerCylinder
	seek := d.seekTime(cyl)
	d.stats.TotalSeek += seek

	// Rotational wait: the platter angle is a pure function of time,
	// so the simulation stays deterministic.
	arrive := d.k.Now() + d.cfg.CommandOverhead + seek
	rot := d.rotationWait(arrive, r.LBA)
	d.stats.TotalRotation += rot

	d.headCyl = (r.LBA + r.Blocks - 1) / d.cfg.BlocksPerCylinder
	if r.Write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
		d.stats.MediaReads++
		d.cacheInsert(r.LBA, r.Blocks+d.cfg.ReadaheadBlocks)
	}
	return d.inject(r, d.cfg.CommandOverhead+seek+rot+transfer, true)
}

// inject applies the installed fault injector to a computed service
// time base.
func (d *Disk) inject(r *Request, base uint64, media bool) uint64 {
	if d.injector == nil {
		return base
	}
	extra := d.injector.Perturb(r, base, media)
	if extra > 0 {
		d.stats.Injected++
		d.stats.InjectedDelay += extra
	}
	return base + extra
}

// seekTime models head movement: zero on the same cylinder, otherwise
// track-to-track plus a distance-proportional component up to the full
// stroke.
func (d *Disk) seekTime(cyl uint64) uint64 {
	var dist uint64
	if cyl > d.headCyl {
		dist = cyl - d.headCyl
	} else {
		dist = d.headCyl - cyl
	}
	if dist == 0 {
		return 0
	}
	maxDist := d.cfg.Blocks / d.cfg.BlocksPerCylinder
	if maxDist <= 1 {
		return d.cfg.TrackToTrackSeek
	}
	span := d.cfg.FullStrokeSeek - d.cfg.TrackToTrackSeek
	return d.cfg.TrackToTrackSeek + span*dist/maxDist
}

// rotationWait returns how long the head waits for the target block to
// rotate under it, given the arrival time.
func (d *Disk) rotationWait(arrive, lba uint64) uint64 {
	rev := d.cfg.FullRotation
	angleNow := arrive % rev
	angleTarget := (lba % d.cfg.BlocksPerTrack) * rev / d.cfg.BlocksPerTrack
	if angleTarget >= angleNow {
		return angleTarget - angleNow
	}
	return rev - (angleNow - angleTarget)
}

// cacheContains reports whether [lba, lba+blocks) lies in a readahead
// segment.
func (d *Disk) cacheContains(lba, blocks uint64) bool {
	for _, s := range d.cache {
		if lba >= s.Start && lba+blocks <= s.End {
			return true
		}
	}
	return false
}

// cacheInsert records a new readahead segment, evicting the oldest.
func (d *Disk) cacheInsert(lba, blocks uint64) {
	end := lba + blocks
	if end > d.cfg.Blocks {
		end = d.cfg.Blocks
	}
	d.cache = append(d.cache, segment{Start: lba, End: end})
	if len(d.cache) > d.cfg.CacheSegments {
		d.cache = d.cache[1:]
	}
}
