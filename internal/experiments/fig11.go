package experiments

import (
	"fmt"
	"io"

	"osprof/internal/cycles"
	"osprof/internal/fs/cifs"
	"osprof/internal/netsim"
)

// Fig11Params scales the §6.4 packet-timeline experiment.
type Fig11Params struct {
	// Dirs is the exported tree size (default 14).
	Dirs int
}

// Fig11Result holds the sniffer trace of a Windows-client run plus the
// delayed-ACK on/off elapsed comparison.
type Fig11Result struct {
	Packets []netsim.Packet

	// MaxGap is the largest inter-packet gap in the trace — the
	// delayed-ACK stall.
	MaxGap uint64

	// ElapsedOn/ElapsedOff are the grep elapsed times with delayed
	// ACKs enabled and disabled (the registry change).
	ElapsedOn, ElapsedOff uint64
}

// RunFig11 reproduces Figure 11 and the ~20% improvement from turning
// delayed ACKs off.
func RunFig11(p Fig11Params) *Fig11Result {
	if p.Dirs == 0 {
		p.Dirs = 14
	}
	r := &Fig11Result{}

	sniffer := &netsim.Sniffer{}
	on := cifsRun("windows-client", cifs.WindowsClientConfig(), p.Dirs, true, sniffer)
	r.Packets = sniffer.Packets
	r.ElapsedOn = on.Elapsed

	off := cifsRun("windows-client-noack", cifs.WindowsClientConfig(), p.Dirs, false, nil)
	r.ElapsedOff = off.Elapsed

	var last uint64
	for _, pkt := range r.Packets {
		if last != 0 && pkt.Time-last > r.MaxGap {
			r.MaxGap = pkt.Time - last
		}
		last = pkt.Time
	}
	return r
}

// ID implements Result.
func (r *Fig11Result) ID() string { return "fig11" }

// Checks implements Result.
func (r *Fig11Result) Checks() []Check {
	var cs []Check
	cs = append(cs, check("sniffer captured the transaction",
		len(r.Packets) > 10, "packets=%d", len(r.Packets)))

	// The 200ms stall between reply continuation 2 and its delayed
	// ACK.
	cs = append(cs, check("timeline shows a ~200ms delayed-ACK gap",
		r.MaxGap >= cycles.DelayedAck && r.MaxGap < 2*cycles.DelayedAck,
		"max gap=%s", cycles.Format(r.MaxGap)))

	// The trace contains the Figure 11 packet kinds.
	var sawFF, sawCont, sawDelayed bool
	for _, pkt := range r.Packets {
		switch {
		case pkt.Label == "FIND_FIRST":
			sawFF = true
		case pkt.Label == "transact continuation" ||
			contains(pkt.Label, "continuation"):
			sawCont = true
		case pkt.Label == "delayed-ack":
			sawDelayed = true
		}
	}
	cs = append(cs, check("trace contains FIND_FIRST request",
		sawFF, ""))
	cs = append(cs, check("trace contains reply continuations",
		sawCont, ""))
	cs = append(cs, check("trace contains a delayed ACK",
		sawDelayed, ""))

	// Disabling delayed ACKs "improved elapsed time by 20%".
	imp := 0.0
	if r.ElapsedOn > 0 {
		imp = float64(r.ElapsedOn-r.ElapsedOff) / float64(r.ElapsedOn)
	}
	cs = append(cs, check("registry change improves elapsed time",
		imp > 0.05 && imp < 0.70,
		"improvement=%.1f%% (paper: 20%%)", imp*100))
	return cs
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	}()
}

// Report implements Result.
func (r *Fig11Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 11: FindFirst transaction timeline (Windows client/server) ===")
	fmt.Fprintf(w, "%10s %-8s %-6s %-30s %6s\n", "TIME(ms)", "FROM", "KIND", "LABEL", "BYTES")
	limit := len(r.Packets)
	if limit > 40 {
		limit = 40
	}
	for _, pkt := range r.Packets[:limit] {
		extra := ""
		if pkt.Piggyback {
			extra = " +ACK"
		}
		fmt.Fprintf(w, "%10.3f %-8s %-6s %-30s %6d%s\n",
			cycles.ToMilliseconds(pkt.Time), pkt.From, pkt.Kind.String(),
			pkt.Label, pkt.Bytes, extra)
	}
	if len(r.Packets) > limit {
		fmt.Fprintf(w, "... (%d more packets)\n", len(r.Packets)-limit)
	}
	fmt.Fprintf(w, "\nlargest inter-packet gap: %s (the delayed ACK)\n",
		cycles.Format(r.MaxGap))
	fmt.Fprintf(w, "elapsed: delayed ACKs on=%s off=%s (%.1f%% improvement)\n",
		cycles.Format(r.ElapsedOn), cycles.Format(r.ElapsedOff),
		100*float64(r.ElapsedOn-r.ElapsedOff)/float64(r.ElapsedOn))
}
