package experiments

import (
	"fmt"
	"io"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
)

// Fig1Params scales the Figure 1 experiment: clone called concurrently
// by four processes on a dual-CPU SMP system, captured entirely from
// user level.
type Fig1Params struct {
	// ClonesPerProc is the per-process call count (default 4000).
	ClonesPerProc int
}

// Fig1Result holds both profiles and their peak structures.
type Fig1Result struct {
	Contended *core.Profile // 4 processes
	Single    *core.Profile // 1 process (control)

	PeaksContended []analysis.Peak
	PeaksSingle    []analysis.Peak
}

// fig1Spec describes a FreeBSD-6-like dual-CPU machine running the
// clone storm with the given process fan-out; no file system is
// involved, the latencies are captured entirely from user level.
func fig1Spec(procs, clonesPerProc int, collect func(stats any)) scenario.Spec {
	return scenario.Spec{
		Name:    "fig1",
		Backend: scenario.NoFS,
		Kernel: sim.Config{
			NumCPUs:       2,
			ContextSwitch: 9_350,
			Quantum:       1 << 21,
			TickPeriod:    1 << 19,
			TickCost:      2_000,
			Preemptive:    false, // FreeBSD 6.0 kernel mode
			WakePreempt:   true,
			Seed:          1,
		},
		Workloads: []scenario.Workload{{
			Kind:     scenario.Clone,
			ProcName: "cloner",
			Procs:    procs,
			Amount:   clonesPerProc,
			Collect:  collect,
		}},
	}
}

// RunFig1 reproduces Figure 1.
func RunFig1(p Fig1Params) *Fig1Result {
	if p.ClonesPerProc == 0 {
		p.ClonesPerProc = 4_000
	}
	r := &Fig1Result{}
	scenario.MustBuild(fig1Spec(4, p.ClonesPerProc, func(stats any) {
		r.Contended = stats.(*core.Profile)
	})).Run()
	scenario.MustBuild(fig1Spec(1, p.ClonesPerProc, func(stats any) {
		r.Single = stats.(*core.Profile)
	})).Run()

	// Strict gap splitting (MaxGap -1) keeps the narrow valley between
	// the CPU peak and the contention peak intact.
	opt := analysis.PeakOptions{MinCount: uint64(p.ClonesPerProc / 500), MaxGap: -1}
	r.PeaksContended = analysis.FindPeaksOpt(r.Contended, opt)
	r.PeaksSingle = analysis.FindPeaksOpt(r.Single, opt)
	return r
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Checks implements Result.
func (r *Fig1Result) Checks() []Check {
	var cs []Check
	cs = append(cs, check("contended profile is multi-modal",
		len(r.PeaksContended) >= 2,
		"peaks=%d (paper: 2)", len(r.PeaksContended)))
	cs = append(cs, check("single-process profile has one peak",
		len(r.PeaksSingle) == 1,
		"peaks=%d (paper: contention disappears with 1 process)", len(r.PeaksSingle)))
	if len(r.PeaksContended) >= 2 && len(r.PeaksSingle) >= 1 {
		left := r.PeaksContended[0]
		right := r.PeaksContended[len(r.PeaksContended)-1]
		base := r.PeaksSingle[0]
		cs = append(cs, check("contention peak well right of CPU peak",
			right.ModeBucket >= left.ModeBucket+3,
			"left mode=%d right mode=%d", left.ModeBucket, right.ModeBucket))
		// §3.1: the left peak is the uncontended CPU time, so it must
		// match the single-process peak.
		diff := left.ModeBucket - base.ModeBucket
		if diff < 0 {
			diff = -diff
		}
		cs = append(cs, check("left peak equals uncontended cost",
			diff <= 1,
			"contended-left mode=%d single mode=%d", left.ModeBucket, base.ModeBucket))
		// Most operations do not contend.
		cs = append(cs, check("left peak dominates",
			left.Count > right.Count,
			"left=%d right=%d", left.Count, right.Count))
	}
	return cs
}

// Report implements Result.
func (r *Fig1Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 1: clone called by 4 concurrent processes, 2 CPUs ===")
	report.Profile(w, r.Contended, report.Options{})
	fmt.Fprintln(w, "\n--- control: single process ---")
	report.Profile(w, r.Single, report.Options{})
	if len(r.PeaksContended) >= 2 {
		left := r.PeaksContended[0]
		right := r.PeaksContended[len(r.PeaksContended)-1]
		fmt.Fprintf(w, "\nuncontended CPU time (left-peak mean): %d cycles\n",
			left.MeanLatency(r.Contended))
		fmt.Fprintf(w, "lock-contention wait (right-peak mean): %d cycles\n",
			right.MeanLatency(r.Contended))
		fmt.Fprintf(w, "contended fraction: %.1f%%\n",
			100*float64(right.Count)/float64(r.Contended.Count))
	}
}
