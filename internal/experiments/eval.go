package experiments

import (
	"fmt"
	"io"
	"sync"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/live"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/synthetic"
	"osprof/internal/workload"
)

// ---------------------------------------------------------------------
// §5.1: memory usage

// EvalMemoryResult reproduces the memory-overhead numbers: a profile
// occupies a fixed area whose size depends on the number of implemented
// operations, usually under 1 KB per operation.
type EvalMemoryResult struct {
	PerOpBytes int
	Ops        int
	TotalBytes int
}

// RunEvalMemory measures the profile footprint of a fully instrumented
// file system after a Postmark run.
func RunEvalMemory() *EvalMemoryResult {
	set := evalPostmarkSet()
	r := &EvalMemoryResult{
		Ops:        set.Len(),
		TotalBytes: set.MemoryFootprint(),
	}
	if r.Ops > 0 {
		r.PerOpBytes = r.TotalBytes / r.Ops
	}
	return r
}

func evalPostmarkSet() *core.Set {
	st := scenario.MustBuild(scenario.Spec{
		Name:       "eval-memory",
		Kernel:     sim.Config{NumCPUs: 1, ContextSwitch: 9_350, Seed: 21},
		Backend:    scenario.Ext2,
		CachePages: 1 << 14,
		Instrument: scenario.Instrument{Point: scenario.FSLevel},
		SetName:    "postmark",
		Workloads: []scenario.Workload{{
			Kind: scenario.Postmark, Files: 100, Amount: 500, Seed: 2,
		}},
	}).Run()
	return st.Set
}

// ID implements Result.
func (r *EvalMemoryResult) ID() string { return "eval-memory" }

// Checks implements Result.
func (r *EvalMemoryResult) Checks() []Check {
	return []Check{
		check("profiles recorded for many operations", r.Ops >= 8, "ops=%d", r.Ops),
		check("per-operation profile under 1KB", r.PerOpBytes <= 1024,
			"%d bytes/op (paper: <1KB)", r.PerOpBytes),
		check("whole profile set small", r.TotalBytes <= 16<<10,
			"%d bytes total (paper: ~9KB code + <1KB/op)", r.TotalBytes),
	}
}

// Report implements Result.
func (r *EvalMemoryResult) Report(w io.Writer) {
	fmt.Fprintln(w, "=== §5.1: memory usage ===")
	fmt.Fprintf(w, "operations profiled: %d\n", r.Ops)
	fmt.Fprintf(w, "per-operation footprint: %d bytes\n", r.PerOpBytes)
	fmt.Fprintf(w, "total profile memory: %d bytes\n", r.TotalBytes)
}

// ---------------------------------------------------------------------
// §5.2: CPU-time overhead decomposition

// EvalOverheadParams scales the Postmark overhead run. The paper used
// 20,000 files and 200,000 transactions; the default here is 400/4000
// (documented substitution — relative overheads are what matter).
type EvalOverheadParams struct {
	Files, Transactions int
}

// EvalOverheadRow is one instrumentation mode's measurement.
type EvalOverheadRow struct {
	Mode      string
	SysCPU    uint64
	Elapsed   uint64
	WaitTime  uint64
	OverheadP float64 // system-time overhead vs baseline, percent
}

// EvalOverheadResult decomposes instrumentation cost like the paper:
// function calls (~1.5%), TSC reads (~0.5%), sorting and storing
// (~2.0%) of Postmark system time, ~4% total; minimum recorded latency
// in bucket 5 (the ~40 cycles between the TSC reads).
type EvalOverheadResult struct {
	Rows      []EvalOverheadRow
	MinBucket int
	MinCycles uint64
	VFSOps    uint64
}

// RunEvalOverhead reproduces §5.2.
func RunEvalOverhead(p EvalOverheadParams) *EvalOverheadResult {
	if p.Files == 0 {
		p.Files = 400
	}
	if p.Transactions == 0 {
		p.Transactions = 4_000
	}
	r := &EvalOverheadResult{MinBucket: 99}

	type modeSpec struct {
		name       string
		instrument bool
		mode       fsprof.Mode
	}
	modes := []modeSpec{
		{"baseline", false, fsprof.Full},
		{"empty-hooks", true, fsprof.EmptyHooks},
		{"tsc-only", true, fsprof.TSCOnly},
		{"full", true, fsprof.Full},
	}
	var base EvalOverheadRow
	for _, m := range modes {
		point := scenario.NoProfiler
		if m.instrument {
			point = scenario.FSLevel
		}
		var st sim.ProcStats
		var pm workload.PostmarkStats
		stack := scenario.MustBuild(scenario.Spec{
			Name: "eval-overhead",
			// A Linux-2.6-with-preemption machine: the flushing daemon
			// must be able to steal the CPU from the CPU-bound
			// benchmark.
			Kernel: sim.Config{
				NumCPUs:       1,
				ContextSwitch: 9_350,
				Quantum:       1 << 22,
				TickPeriod:    1 << 20,
				TickCost:      10_000,
				Preemptive:    true,
				WakePreempt:   true,
				Seed:          22,
			},
			Backend: scenario.Ext2,
			// Like the paper's configuration, the working set exceeds
			// the OS caches "so that I/O requests will reach the disk"
			// (§5.2): a small page cache plus a flushing daemon scaled
			// to the shortened run.
			CachePages: 400,
			Ext2:       ext2.Config{DirtyPageLimit: 300},
			Flusher: &scenario.FlusherSpec{
				Interval: 10 * cycles.PerMillisecond,
				Age:      15 * cycles.PerMillisecond,
			},
			Instrument: scenario.Instrument{Point: point, Mode: m.mode},
			SetName:    m.name,
			Workloads: []scenario.Workload{{
				Kind:     scenario.Custom,
				ProcName: "postmark",
				Body: func(proc *sim.Proc, _ int, stk *scenario.Stack) {
					pm = (&workload.Postmark{
						Sys: stk.Sys, Files: p.Files, Transactions: p.Transactions, Seed: 5,
					}).Run(proc)
					st = proc.Stats()
				},
			}},
		}).Run()
		set := stack.Set
		row := EvalOverheadRow{
			Mode:     m.name,
			SysCPU:   st.SysCPU,
			Elapsed:  stack.K.Now(),
			WaitTime: st.WaitBlocked,
		}
		if m.name == "baseline" {
			base = row
			r.VFSOps = pm.VFSOps
		} else {
			row.OverheadP = 100 * float64(row.SysCPU-base.SysCPU) / float64(base.SysCPU)
		}
		r.Rows = append(r.Rows, row)
		if m.name == "full" {
			for _, prof := range set.Profiles() {
				if prof.Count == 0 {
					continue
				}
				if lo, _, ok := prof.Range(); ok && lo < r.MinBucket {
					r.MinBucket = lo
				}
				if r.MinCycles == 0 || prof.Min < r.MinCycles {
					r.MinCycles = prof.Min
				}
			}
		}
	}
	return r
}

func (r *EvalOverheadResult) row(name string) EvalOverheadRow {
	for _, row := range r.Rows {
		if row.Mode == name {
			return row
		}
	}
	return EvalOverheadRow{}
}

// ID implements Result.
func (r *EvalOverheadResult) ID() string { return "eval-overhead" }

// Checks implements Result.
func (r *EvalOverheadResult) Checks() []Check {
	var cs []Check
	base := r.row("baseline")
	empty := r.row("empty-hooks")
	tsc := r.row("tsc-only")
	full := r.row("full")

	cs = append(cs, check("system-time overhead ordering",
		base.SysCPU < empty.SysCPU && empty.SysCPU < tsc.SysCPU && tsc.SysCPU < full.SysCPU,
		"base=%d empty=%d tsc=%d full=%d", base.SysCPU, empty.SysCPU, tsc.SysCPU, full.SysCPU))

	cs = append(cs, check("full profiling overhead a few percent",
		full.OverheadP > 1 && full.OverheadP < 8,
		"%.1f%% (paper: 4.0%%)", full.OverheadP))

	calls := empty.OverheadP
	tscOnly := tsc.OverheadP - empty.OverheadP
	store := full.OverheadP - tsc.OverheadP
	cs = append(cs, check("sort+store largest component, TSC smallest",
		store > calls && calls > tscOnly && tscOnly > 0,
		"calls=%.2f%% tsc=%.2f%% store=%.2f%% (paper: 1.5/0.5/2.0)",
		calls, tscOnly, store))

	cs = append(cs, check("minimum recorded latency at the probe floor",
		r.MinBucket >= 5 && r.MinBucket <= 6 && r.MinCycles >= 40 && r.MinCycles < 128,
		"min bucket=%d min=%d cycles (paper: bucket 5, the ~40-cycle TSC window)",
		r.MinBucket, r.MinCycles))

	// Wait time is I/O-bound and essentially unaffected.
	waitDelta := relDiff(full.WaitTime, base.WaitTime)
	cs = append(cs, check("workload reaches the disk",
		base.WaitTime > 0, "baseline wait=%d cycles", base.WaitTime))
	cs = append(cs, check("wait time unaffected by instrumentation",
		waitDelta < 0.25, "wait delta=%.1f%%", 100*waitDelta))

	// Elapsed-time overhead small for the I/O-bound workload (§7:
	// "elapsed time overhead of less than 1%").
	elapsedDelta := relDiff(full.Elapsed, base.Elapsed)
	cs = append(cs, check("elapsed-time overhead small",
		elapsedDelta < 0.05, "elapsed delta=%.2f%%", 100*elapsedDelta))
	return cs
}

func relDiff(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	d := float64(a) - float64(b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

// Report implements Result.
func (r *EvalOverheadResult) Report(w io.Writer) {
	fmt.Fprintln(w, "=== §5.2: Postmark instrumentation overheads ===")
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "MODE", "SYS CPU", "ELAPSED", "OVERHEAD")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %14d %14d %9.2f%%\n",
			row.Mode, row.SysCPU, row.Elapsed, row.OverheadP)
	}
	fmt.Fprintf(w, "VFS operations: %d\n", r.VFSOps)
	fmt.Fprintf(w, "minimum recorded latency: %d cycles (bucket %d)\n",
		r.MinCycles, r.MinBucket)
}

// ---------------------------------------------------------------------
// §5.3: automated analysis accuracy

// EvalAccuracyParams scales the labeled-pair study.
type EvalAccuracyParams struct {
	// Pairs per corpus (default 250, as in the paper).
	Pairs int
}

// EvalAccuracyRow is one method's error rate.
type EvalAccuracyRow struct {
	Method    analysis.Method
	Threshold float64
	Errors    int
	ErrorRate float64
}

// EvalAccuracyResult reproduces the §5.3 study: thresholds calibrated
// on a training corpus, error rates measured on a fresh one. The paper
// found EMD best (2%), then total latency (3%), total operation counts
// (4%), and chi-square worst (5%).
type EvalAccuracyResult struct {
	Rows  []EvalAccuracyRow
	Pairs int
}

// RunEvalAccuracy reproduces §5.3.
func RunEvalAccuracy(p EvalAccuracyParams) *EvalAccuracyResult {
	if p.Pairs == 0 {
		p.Pairs = 250
	}
	train := synthetic.Generate(synthetic.Spec{Pairs: p.Pairs, Seed: 100})
	eval := synthetic.Generate(synthetic.Spec{Pairs: p.Pairs, Seed: 200})

	methods := []analysis.Method{
		analysis.EMD, analysis.TotalLatency, analysis.TotalOps, analysis.ChiSquare,
	}
	r := &EvalAccuracyResult{Pairs: p.Pairs}
	for _, m := range methods {
		thr := calibrate(m, train)
		errs := 0
		for _, pair := range eval {
			predicted := analysis.Score(m, pair.A, pair.B) >= thr
			if predicted != pair.Important {
				errs++
			}
		}
		r.Rows = append(r.Rows, EvalAccuracyRow{
			Method:    m,
			Threshold: thr,
			Errors:    errs,
			ErrorRate: float64(errs) / float64(len(eval)),
		})
	}
	return r
}

// calibrate picks the threshold minimizing training error.
func calibrate(m analysis.Method, pairs []synthetic.Pair) float64 {
	scores := make([]float64, len(pairs))
	for i, pair := range pairs {
		scores[i] = analysis.Score(m, pair.A, pair.B)
	}
	best, bestErr := 0.0, len(pairs)+1
	for _, thr := range scores {
		errs := 0
		for i, pair := range pairs {
			if (scores[i] >= thr) != pair.Important {
				errs++
			}
		}
		if errs < bestErr {
			bestErr, best = errs, thr
		}
	}
	return best
}

// ID implements Result.
func (r *EvalAccuracyResult) ID() string { return "eval-accuracy" }

// Checks implements Result.
func (r *EvalAccuracyResult) Checks() []Check {
	var cs []Check
	byMethod := map[analysis.Method]float64{}
	for _, row := range r.Rows {
		byMethod[row.Method] = row.ErrorRate
	}
	cs = append(cs, check("EMD has the smallest error rate",
		byMethod[analysis.EMD] <= byMethod[analysis.TotalLatency] &&
			byMethod[analysis.EMD] <= byMethod[analysis.TotalOps] &&
			byMethod[analysis.EMD] <= byMethod[analysis.ChiSquare],
		"emd=%.1f%% lat=%.1f%% ops=%.1f%% chi=%.1f%% (paper: 2/3/4/5)",
		100*byMethod[analysis.EMD], 100*byMethod[analysis.TotalLatency],
		100*byMethod[analysis.TotalOps], 100*byMethod[analysis.ChiSquare]))
	cs = append(cs, check("cross-bin EMD beats bin-by-bin chi-square",
		byMethod[analysis.ChiSquare] > byMethod[analysis.EMD],
		"chi=%.1f%% > emd=%.1f%% (the paper's §3.2 argument)",
		100*byMethod[analysis.ChiSquare], 100*byMethod[analysis.EMD]))
	cs = append(cs, check("EMD error rate small",
		byMethod[analysis.EMD] <= 0.08,
		"emd=%.1f%% (paper: 2%%)", 100*byMethod[analysis.EMD]))
	return cs
}

// Report implements Result.
func (r *EvalAccuracyResult) Report(w io.Writer) {
	fmt.Fprintf(w, "=== §5.3: automated analysis accuracy (%d labeled pairs) ===\n", r.Pairs)
	fmt.Fprintf(w, "%-14s %10s %8s %10s\n", "METHOD", "THRESHOLD", "ERRORS", "ERROR RATE")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %10.4f %8d %9.1f%%\n",
			row.Method, row.Threshold, row.Errors, 100*row.ErrorRate)
	}
}

// ---------------------------------------------------------------------
// §3.4: bucket-update locking strategies

// EvalLockingParams scales the lost-update measurement (real Go
// concurrency, not simulation).
type EvalLockingParams struct {
	// UpdatesPerWorker per goroutine (default 200,000).
	UpdatesPerWorker int
}

// EvalLockingRow is one configuration's loss measurement.
type EvalLockingRow struct {
	Mode      core.LockingMode
	Workers   int
	Realistic bool // spread buckets + work between updates
	Attempts  uint64
	Lost      uint64
	LossRate  float64
}

// EvalLockingResult reproduces the §3.4 observations: unsynchronized
// updates lose a small fraction of concurrent increments (the paper
// saw <1% on a dual-CPU worst case), while locked and per-thread
// (sharded) updates lose none.
type EvalLockingResult struct {
	Rows []EvalLockingRow
}

// RunEvalLocking reproduces the §3.4 measurement.
func RunEvalLocking(p EvalLockingParams) *EvalLockingResult {
	if p.UpdatesPerWorker == 0 {
		p.UpdatesPerWorker = 200_000
	}
	r := &EvalLockingResult{}
	configs := []struct {
		mode      core.LockingMode
		workers   int
		realistic bool
	}{
		{core.Unsync, 2, false}, // the paper's worst case: one bucket, tight loop
		{core.Unsync, 2, true},  // real workloads: spread buckets, work between
		{core.Unsync, 8, false},
		{core.Locked, 8, false},
		{core.Sharded, 8, false},
	}
	for _, cfg := range configs {
		// The collector is constructed through the live Recorder
		// options — the same path a production program uses — but the
		// workers hammer the pre-resolved handle directly: this
		// experiment measures the raw §3.4 bucket-update strategies,
		// so the recorder's per-call map read-lock must stay out of
		// the contention being measured.
		rec := live.New(live.WithLockingMode(cfg.mode), live.WithShards(cfg.workers))
		prof := rec.Collector("op")
		var wg sync.WaitGroup
		for wkr := 0; wkr < cfg.workers; wkr++ {
			wkr := wkr
			wg.Add(1)
			go func() {
				defer wg.Done()
				spin := uint64(1)
				for i := 0; i < p.UpdatesPerWorker; i++ {
					if cfg.realistic {
						// "For real workloads this number is much
						// smaller because the profiler updates
						// different buckets and the update frequency
						// is smaller" (§3.4).
						for j := 0; j < 300; j++ {
							spin = spin*2862933555777941757 + 3037000493
						}
						prof.Record(wkr, spin)
					} else {
						prof.Record(wkr, 100) // worst case: same bucket
					}
				}
			}()
		}
		wg.Wait()
		row := EvalLockingRow{
			Mode:      cfg.mode,
			Workers:   cfg.workers,
			Realistic: cfg.realistic,
			Attempts:  prof.Attempts(),
			Lost:      prof.Lost(),
		}
		row.LossRate = float64(row.Lost) / float64(row.Attempts)
		r.Rows = append(r.Rows, row)
	}
	return r
}

// ID implements Result.
func (r *EvalLockingResult) ID() string { return "eval-locking" }

// Checks implements Result.
func (r *EvalLockingResult) Checks() []Check {
	var cs []Check
	for _, row := range r.Rows {
		switch row.Mode {
		case core.Locked:
			cs = append(cs, check("locked mode loses nothing",
				row.Lost == 0, "lost=%d", row.Lost))
		case core.Sharded:
			cs = append(cs, check("sharded (per-thread) mode loses nothing",
				row.Lost == 0, "lost=%d (§3.4 solution 2)", row.Lost))
		case core.Unsync:
			if row.Workers == 2 && !row.Realistic {
				cs = append(cs, check("unsync worst-case loss bounded",
					row.LossRate < 0.60,
					"loss=%.3f%% (paper: <1%% on its 2-CPU hardware; a Go "+
						"load/store pair has a wider race window)", 100*row.LossRate))
			}
			if row.Realistic {
				cs = append(cs, check("unsync loss under realistic workload <1%",
					row.LossRate < 0.01,
					"loss=%.4f%% (paper: much smaller than the worst case)",
					100*row.LossRate))
			}
		}
	}
	return cs
}

// Report implements Result.
func (r *EvalLockingResult) Report(w io.Writer) {
	fmt.Fprintln(w, "=== §3.4: bucket-update locking strategies (real goroutines) ===")
	fmt.Fprintf(w, "%-10s %8s %10s %12s %10s %10s\n",
		"MODE", "WORKERS", "WORKLOAD", "ATTEMPTS", "LOST", "LOSS")
	for _, row := range r.Rows {
		kind := "worst-case"
		if row.Realistic {
			kind = "realistic"
		}
		fmt.Fprintf(w, "%-10s %8d %10s %12d %10d %9.4f%%\n",
			row.Mode, row.Workers, kind, row.Attempts, row.Lost, 100*row.LossRate)
	}
}
