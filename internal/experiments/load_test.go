package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"testing"

	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/scenario"
	"osprof/internal/sim"
)

// TestLoadCellsDiffAttribution is the end-to-end acceptance path: two
// runs of the same workload differing only in contention, and the
// load-aware diff must attribute the change to the contended band —
// the workload's samples moved out of load:1 into load:2-4.
func TestLoadCellsDiffAttribution(t *testing.T) {
	cells := scenario.LoadCells(1)
	solo := RecordScenario(cells[0])
	if solo.Err != nil {
		t.Fatal(solo.Err)
	}
	packed := RecordScenario(cells[1])
	if packed.Err != nil {
		t.Fatal(packed.Err)
	}
	rep := diff.New().Sets(solo.ProfileSet(), packed.ProfileSet())
	if len(rep.Loads) == 0 {
		t.Fatal("contention pair produced no load attribution")
	}
	var read *diff.LoadMove
	for i := range rep.Loads {
		if rep.Loads[i].Op == "read" {
			read = &rep.Loads[i]
		}
	}
	if read == nil {
		t.Fatalf("no read attribution in %+v", rep.Loads)
	}
	if read.Band != "2-4" {
		t.Errorf("read attributed to load:%s, want the contended 2-4 (%+v)", read.Band, read)
	}
}

// TestRunMetaCarriesLoadOccupancy checks the -realtime plumbing: a
// conditioned run's metadata carries the per-band occupancy, the bands
// partition the whole run, and unconditioned runs stay key-for-key
// identical to the pre-load shape.
func TestRunMetaCarriesLoadOccupancy(t *testing.T) {
	r := RecordScenario(scenario.LoadCells(1)[1])
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	m := r.RunMeta()
	if m["loadprofile"] != "true" {
		t.Fatalf("conditioned run meta: %v", m)
	}
	var total uint64
	for b := 0; b < sim.LoadBands; b++ {
		v, ok := m["loadocc:"+sim.LoadBandName(b)]
		if !ok {
			t.Fatalf("meta misses band %s: %v", sim.LoadBandName(b), m)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	elapsed, err := strconv.ParseUint(m["elapsed"], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	// TrackLoad starts at t=0, so every simulated cycle is banded.
	if total != elapsed {
		t.Errorf("occupancy total %d != elapsed %d", total, elapsed)
	}

	plain := RecordScenario(scenario.Matrix(1)[0])
	if plain.Err != nil {
		t.Fatal(plain.Err)
	}
	for k := range plain.RunMeta() {
		if k == "loadprofile" || len(k) > 8 && k[:8] == "loadocc:" {
			t.Errorf("unconditioned run meta grew %q", k)
		}
	}
}

// loadCellEnvelopeSHA pins the byte-identical run envelope of the
// NumCPUs=4 contention cell: the SMP scheduler, the load accounting,
// and the banded profiles are all deterministic, and any drift in this
// hash is a behavioral change that needs a deliberate re-pin.
const loadCellEnvelopeSHA = "4f1bd2e21ee267a38e857f99ec1aa39c0425d2057f0d3c636d1af7fb6aef5507"

func TestLoadCellEnvelopeGolden(t *testing.T) {
	envelope := func() []byte {
		spec := scenario.LoadCells(1)[2] // 8 readers on 4 CPUs
		if spec.Kernel.NumCPUs != 4 {
			t.Fatalf("cell moved: NumCPUs=%d", spec.Kernel.NumCPUs)
		}
		r := RecordScenario(spec)
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		var buf bytes.Buffer
		err := core.WriteRun(&buf, &core.Run{
			Fingerprint: spec.Fingerprint(),
			Meta:        r.RunMeta(),
			Set:         r.ProfileSet(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := envelope(), envelope()
	if !bytes.Equal(a, b) {
		t.Fatal("reruns of the 4-CPU cell produce different envelopes")
	}
	sum := sha256.Sum256(a)
	if got := hex.EncodeToString(sum[:]); got != loadCellEnvelopeSHA {
		t.Errorf("envelope sha = %s, want %s (behavioral change: re-pin deliberately)",
			got, loadCellEnvelopeSHA)
	}
}
