package experiments

import (
	"bytes"
	"fmt"
	"io"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/report"
	"osprof/internal/scenario"
)

// ScenarioResult wraps one scenario-matrix run (or any ad-hoc
// scenario.Spec) with generic machine-verifiable checks: the stack
// ran, the profiler recorded, latencies respect the probe floor, and —
// because each spec describes a fully isolated deterministic world —
// an immediate rerun reproduces the profiles byte for byte.
type ScenarioResult struct {
	Spec  scenario.Spec
	Stack *scenario.Stack

	// Err is a build/run failure (nil on success).
	Err error

	// Deterministic reports whether a second run of the same spec
	// reproduced the profile set and the simulated clock exactly.
	Deterministic bool

	// Elapsed is the simulated run length in cycles.
	Elapsed uint64
}

// RunScenario builds and runs spec twice, comparing the runs to verify
// determinism, and returns the first run wrapped in checks.
func RunScenario(spec scenario.Spec) *ScenarioResult {
	r := &ScenarioResult{Spec: spec}
	first, err := scenario.RunSpec(spec)
	if err != nil {
		r.Err = err
		return r
	}
	r.Stack = first
	r.Elapsed = first.K.Now()

	second, err := scenario.RunSpec(spec)
	if err != nil {
		r.Err = fmt.Errorf("rerun: %w", err)
		return r
	}
	r.Deterministic = first.K.Now() == second.K.Now() &&
		sameSet(first.Set, second.Set)
	return r
}

// errDetail renders an error for a check detail, empty when nil.
func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// sameSet compares two profile sets via the text exchange format.
func sameSet(a, b *core.Set) bool {
	var ba, bb bytes.Buffer
	if err := core.WriteSet(&ba, a); err != nil {
		return false
	}
	if err := core.WriteSet(&bb, b); err != nil {
		return false
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

// ID implements Result.
func (r *ScenarioResult) ID() string { return r.Spec.Name }

// Checks implements Result.
func (r *ScenarioResult) Checks() []Check {
	var cs []Check
	cs = append(cs, check("scenario built and ran",
		r.Err == nil, "%s", errDetail(r.Err)))
	if r.Err != nil {
		return cs
	}
	set := r.Stack.Set
	cs = append(cs, check("simulated time advanced",
		r.Elapsed > 0, "elapsed=%s", cycles.Format(r.Elapsed)))
	cs = append(cs, check("profiler recorded operations",
		set.TotalOps() > 0, "ops=%d across %d operations", set.TotalOps(), set.Len()))
	cs = append(cs, check("profile set validates",
		set.Validate() == nil, "%s", errDetail(set.Validate())))

	// Full profiling's smallest observable latency is the ~40-cycle
	// TSC window between the probe reads (§5.2) — bucket 5.
	if r.Spec.Instrument.Point == scenario.FSLevel && !r.Spec.Instrument.Sampled {
		minBucket := 99
		for _, prof := range set.Profiles() {
			if prof.Count == 0 {
				continue
			}
			if lo, _, ok := prof.Range(); ok && lo < minBucket {
				minBucket = lo
			}
		}
		cs = append(cs, check("latencies respect the probe floor",
			minBucket >= 5 && minBucket < 99,
			"min bucket=%d (the ~40-cycle TSC window is bucket 5)", minBucket))
	}

	cs = append(cs, check("deterministic rerun",
		r.Deterministic, "profiles and simulated clock must reproduce exactly"))
	return cs
}

// Report implements Result.
func (r *ScenarioResult) Report(w io.Writer) {
	fmt.Fprintf(w, "=== scenario %s ===\n", r.Spec.Name)
	if r.Err != nil {
		fmt.Fprintf(w, "error: %v\n", r.Err)
		return
	}
	fmt.Fprintf(w, "backend=%s workloads=%d elapsed=%s\n",
		r.Spec.Backend, len(r.Spec.Workloads), cycles.Format(r.Elapsed))
	report.Set(w, r.Stack.Set, report.Options{})
}

// Scenarios returns the backend×workload matrix as runnable
// constructors keyed by scenario name, alongside the ordered name
// list. seed offsets every kernel and workload seed.
func Scenarios(seed int64) (map[string]func() Result, []string) {
	specs := scenario.Matrix(seed)
	reg := make(map[string]func() Result, len(specs))
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		reg[spec.Name] = func() Result { return RunScenario(spec) }
		ids = append(ids, spec.Name)
	}
	return reg, ids
}
