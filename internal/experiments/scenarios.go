package experiments

import (
	"bytes"
	"fmt"
	"io"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/store"
)

// ScenarioResult wraps one scenario-matrix run (or any ad-hoc
// scenario.Spec) with generic machine-verifiable checks: the stack
// ran, the profiler recorded, latencies respect the probe floor, and —
// because each spec describes a fully isolated deterministic world —
// an immediate rerun reproduces the profiles byte for byte.
type ScenarioResult struct {
	Spec  scenario.Spec
	Stack *scenario.Stack

	// Err is a build/run failure (nil on success).
	Err error

	// Deterministic reports whether a second run of the same spec
	// reproduced the profile set and the simulated clock exactly.
	Deterministic bool

	// Reran reports whether the determinism rerun was performed
	// (RunScenario); RecordScenario runs once and skips that check.
	Reran bool

	// Elapsed is the simulated run length in cycles.
	Elapsed uint64
}

// RunScenario builds and runs spec twice, comparing the runs to verify
// determinism, and returns the first run wrapped in checks.
func RunScenario(spec scenario.Spec) *ScenarioResult {
	r := runScenarioOnce(spec)
	if r.Err != nil {
		return r
	}
	r.Reran = true
	second, err := scenario.RunSpec(spec)
	if err != nil {
		r.Err = fmt.Errorf("rerun: %w", err)
		return r
	}
	r.Deterministic = r.Stack.K.Now() == second.K.Now() &&
		sameSet(r.Stack.Set, second.Set)
	return r
}

// RecordScenario builds and runs spec once, for archival recording:
// determinism across recordings is already verified end to end by the
// archive's content addressing (identical worlds produce identical run
// IDs), so the in-process rerun would only double the recording cost.
func RecordScenario(spec scenario.Spec) *ScenarioResult {
	return runScenarioOnce(spec)
}

func runScenarioOnce(spec scenario.Spec) *ScenarioResult {
	r := &ScenarioResult{Spec: spec}
	first, err := scenario.RunSpec(spec)
	if err != nil {
		r.Err = err
		return r
	}
	r.Stack = first
	r.Elapsed = first.K.Now()
	return r
}

// errDetail renders an error for a check detail, empty when nil.
func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// sameSet compares two profile sets via the text exchange format.
func sameSet(a, b *core.Set) bool {
	var ba, bb bytes.Buffer
	if err := core.WriteSet(&ba, a); err != nil {
		return false
	}
	if err := core.WriteSet(&bb, b); err != nil {
		return false
	}
	return bytes.Equal(ba.Bytes(), bb.Bytes())
}

// ID implements Result.
func (r *ScenarioResult) ID() string { return r.Spec.Name }

// Checks implements Result.
func (r *ScenarioResult) Checks() []Check {
	var cs []Check
	cs = append(cs, check("scenario built and ran",
		r.Err == nil, "%s", errDetail(r.Err)))
	if r.Err != nil {
		return cs
	}
	set := r.Stack.Set
	cs = append(cs, check("simulated time advanced",
		r.Elapsed > 0, "elapsed=%s", cycles.Format(r.Elapsed)))
	cs = append(cs, check("profiler recorded operations",
		set.TotalOps() > 0, "ops=%d across %d operations", set.TotalOps(), set.Len()))
	cs = append(cs, check("profile set validates",
		set.Validate() == nil, "%s", errDetail(set.Validate())))

	// Full profiling's smallest observable latency is the ~40-cycle
	// TSC window between the probe reads (§5.2) — bucket 5. Traced
	// runs are exempt: layer self-times are subtractions (inclusive
	// minus children), not probe-pair measurements, so a thin layer
	// can legitimately land below the probe floor.
	if r.Spec.Instrument.Point == scenario.FSLevel && !r.Spec.Instrument.Sampled && !r.Spec.Trace {
		minBucket := 99
		for _, prof := range set.Profiles() {
			if prof.Count == 0 {
				continue
			}
			if lo, _, ok := prof.Range(); ok && lo < minBucket {
				minBucket = lo
			}
		}
		cs = append(cs, check("latencies respect the probe floor",
			minBucket >= 5 && minBucket < 99,
			"min bucket=%d (the ~40-cycle TSC window is bucket 5)", minBucket))
	}

	if r.Reran {
		cs = append(cs, check("deterministic rerun",
			r.Deterministic, "profiles and simulated clock must reproduce exactly"))
	}
	return cs
}

// ProfileSet implements runner.SetProvider: the captured profile set
// the runner archives (nil when the scenario failed to build or run).
func (r *ScenarioResult) ProfileSet() *core.Set {
	if r.Stack == nil {
		return nil
	}
	return r.Stack.Set
}

// RunMeta implements runner.MetaProvider with deterministic run
// descriptors for the archived envelope (no wall-clock values). A
// labeled Spec (a corpus variant) carries its label here — the
// metadata internal/classify groups archived runs by when it builds
// the reference corpus.
func (r *ScenarioResult) RunMeta() map[string]string {
	m := map[string]string{
		"scenario":  r.Spec.Name,
		"backend":   r.Spec.Backend.String(),
		"elapsed":   fmt.Sprintf("%d", r.Elapsed),
		"workloads": fmt.Sprintf("%d", len(r.Spec.Workloads)),
	}
	if r.Spec.Label != "" {
		m[store.LabelMetaKey] = r.Spec.Label
	}
	if r.Spec.Trace {
		m["traced"] = "true"
	}
	if r.Spec.LoadProfile && r.Stack != nil {
		// Per-band load occupancy in simulated cycles — deterministic,
		// and what `osprof load -realtime` weights band histograms by.
		m["loadprofile"] = "true"
		occ := r.Stack.K.LoadOccupancy()
		for b, c := range occ {
			m["loadocc:"+sim.LoadBandName(b)] = fmt.Sprintf("%d", c)
		}
	}
	return m
}

// Report implements Result.
func (r *ScenarioResult) Report(w io.Writer) {
	fmt.Fprintf(w, "=== scenario %s ===\n", r.Spec.Name)
	if r.Err != nil {
		fmt.Fprintf(w, "error: %v\n", r.Err)
		return
	}
	fmt.Fprintf(w, "backend=%s workloads=%d elapsed=%s\n",
		r.Spec.Backend, len(r.Spec.Workloads), cycles.Format(r.Elapsed))
	report.Set(w, r.Stack.Set, report.Options{})
}

// Scenarios returns the backend×workload matrix as runnable
// constructors keyed by scenario name, alongside the ordered name
// list. seed offsets every kernel and workload seed.
func Scenarios(seed int64) (map[string]func() Result, []string) {
	specs := scenario.Matrix(seed)
	reg := make(map[string]func() Result, len(specs))
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		reg[spec.Name] = func() Result { return RunScenario(spec) }
		ids = append(ids, spec.Name)
	}
	return reg, ids
}

// Recordables returns the archivable scenario registry — the
// backend×workload matrix, the kernel-configuration variants, and the
// load-contention cells — as single-run constructors keyed by name,
// with each spec's canonical fingerprint and the ordered name list.
// `osprof record`, `baseline`, and the `diff` regression gate all draw
// from it.
func Recordables(seed int64) (reg map[string]func() Result, fps map[string]string, ids []string) {
	specs := RecordableSpecs(seed)
	reg = make(map[string]func() Result, len(specs))
	fps = make(map[string]string, len(specs))
	ids = make([]string, 0, len(specs))
	for _, spec := range specs {
		spec := spec
		reg[spec.Name] = func() Result { return RecordScenario(spec) }
		fps[spec.Name] = spec.Fingerprint()
		ids = append(ids, spec.Name)
	}
	return reg, fps, ids
}

// RecordableSpecs returns the recordable scenario specs themselves, in
// registry order. `osprof record -inject` needs spec-level access: a
// fault preset is applied to the selected specs before recording, so
// the degraded twin keeps the scenario's name (the watch layer matches
// ingests to baselines by name) while fingerprinting as its own world.
func RecordableSpecs(seed int64) []scenario.Spec {
	specs := append(scenario.Matrix(seed), scenario.Variants(seed)...)
	return append(specs, scenario.LoadCells(seed)...)
}

// Corpus returns the labeled subset of the recordable scenarios — the
// identification reference corpus (`osprof corpus build`) — as
// single-run constructors keyed by name, with each spec's fingerprint,
// its corpus label, and the ordered name list.
func Corpus(seed int64) (reg map[string]func() Result, fps, labels map[string]string, ids []string) {
	specs := scenario.Variants(seed)
	reg = make(map[string]func() Result, len(specs))
	fps = make(map[string]string, len(specs))
	labels = make(map[string]string, len(specs))
	for _, spec := range specs {
		if spec.Label == "" {
			continue
		}
		spec := spec
		reg[spec.Name] = func() Result { return RecordScenario(spec) }
		fps[spec.Name] = spec.Fingerprint()
		labels[spec.Name] = spec.Label
		ids = append(ids, spec.Name)
	}
	return reg, fps, labels, ids
}
