package experiments

import (
	"fmt"
	"io"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/fs/cifs"
	"osprof/internal/netsim"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/workload"
)

// Fig10Params scales the §6.4 experiment: grep over CIFS with a
// Windows-style client vs a Linux smbfs-style client against a Windows
// server exporting an NTFS share.
type Fig10Params struct {
	// Dirs is the exported tree's directory count (default 14,
	// including several multi-block directories).
	Dirs int
}

// Fig10Run is one client's captured run.
type Fig10Run struct {
	Client  string
	Set     *core.Set // FS-level ops + wire ops (FindFirst/FindNext/...)
	Elapsed uint64
}

// Fig10Result compares the two clients.
type Fig10Result struct {
	Windows Fig10Run
	Linux   Fig10Run

	// Selected is the automated comparison of the two complete sets;
	// the paper's script picked 6 of 51 ops by total latency.
	Selected []analysis.PairReport
}

// cifsRun builds the two-machine testbed and runs grep over the share.
func cifsRun(client string, clientCfg cifs.ClientConfig, dirs int, delayedAck bool,
	sniffer *netsim.Sniffer) Fig10Run {
	st := scenario.MustBuild(scenario.Spec{
		Name: client,
		Kernel: sim.Config{
			NumCPUs:       2, // one client machine CPU, one server CPU
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          10,
		},
		Backend:    scenario.CIFS,
		CachePages: 1 << 15,
		CIFS: scenario.CIFSSpec{
			Client:       clientCfg,
			NoDelayedAck: !delayedAck,
			Sniffer:      sniffer,
		},
		Tree: &workload.TreeSpec{
			Seed:           17,
			Dirs:           dirs,
			FilesPerDirMin: 8,
			FilesPerDirMax: 24,
			BigDirEvery:    4,
		},
		Instrument: scenario.Instrument{Point: scenario.FSLevel},
		Workloads:  []scenario.Workload{{Kind: scenario.Grep, Path: "/src"}},
	}).Run()
	return Fig10Run{Client: client, Set: st.Set, Elapsed: st.K.Now()}
}

// RunFig10 reproduces Figure 10.
func RunFig10(p Fig10Params) *Fig10Result {
	if p.Dirs == 0 {
		p.Dirs = 14
	}
	r := &Fig10Result{
		Windows: cifsRun("windows-client", cifs.WindowsClientConfig(), p.Dirs, true, nil),
		Linux:   cifsRun("linux-client", cifs.LinuxClientConfig(), p.Dirs, true, nil),
	}
	sel := analysis.DefaultSelector()
	r.Selected = sel.SelectInteresting(r.Linux.Set, r.Windows.Set)
	return r
}

// ID implements Result.
func (r *Fig10Result) ID() string { return "fig10" }

// Checks implements Result.
func (r *Fig10Result) Checks() []Check {
	var cs []Check
	ff := r.Windows.Set.Lookup("FindFirst")
	fn := r.Windows.Set.Lookup("FindNext")
	cs = append(cs, check("Windows client issues FindFirst/FindNext",
		ff != nil && ff.Count > 0 && fn != nil && fn.Count > 0,
		"FindFirst=%d FindNext=%d", count(ff), count(fn)))

	// The delayed-ACK peaks sit in buckets 26..30, "farther to the
	// right than any other operation".
	if ff != nil {
		b := core.BucketFor(ff.Max, 1)
		cs = append(cs, check("Windows FindFirst stall peak in buckets 26..30",
			b >= 26 && b <= 31, "max bucket=%d (200ms=bucket %d)",
			b, core.BucketFor(cycles.DelayedAck, 1)))
	}

	// The Linux client has no such peaks.
	linuxMax := 0
	for _, op := range []string{"FindFirst", "FindNext"} {
		if prof := r.Linux.Set.Lookup(op); prof != nil && prof.Count > 0 {
			if _, hi, ok := prof.Range(); ok && hi > linuxMax {
				linuxMax = hi
			}
		}
	}
	cs = append(cs, check("Linux client avoids the stall",
		linuxMax > 0 && linuxMax < 26,
		"Linux Find* max bucket=%d", linuxMax))

	// The stalls are a large share of elapsed time (paper: 12%).
	var stallShare float64
	if ff != nil && fn != nil {
		stallShare = float64(ff.Total+fn.Total) / float64(r.Windows.Elapsed)
	}
	cs = append(cs, check("Find* dominates a visible share of elapsed time",
		stallShare > 0.05,
		"share=%.1f%% (paper: 12%%)", 100*stallShare))

	// Windows run is slower overall.
	cs = append(cs, check("Windows client slower than Linux client",
		r.Windows.Elapsed > r.Linux.Elapsed,
		"windows=%s linux=%s",
		cycles.Format(r.Windows.Elapsed), cycles.Format(r.Linux.Elapsed)))

	// Wire operations involve the server: bucket >= 18 (§6.4); cached
	// lookups stay local (< 18).
	if rd := r.Windows.Set.Lookup("SMBRead"); rd != nil && rd.Count > 0 {
		lo, _, _ := rd.Range()
		cs = append(cs, check("server interactions at bucket >= 18",
			lo >= 18, "SMBRead min bucket=%d", lo))
	}
	if lk := r.Windows.Set.Lookup("lookup"); lk != nil && lk.Count > 0 {
		lo, _, _ := lk.Range()
		cs = append(cs, check("cached metadata stays local (< bucket 18)",
			lo < 18, "lookup min bucket=%d", lo))
	}

	// The automated script picks a handful of interesting ops out of
	// the full profiled set (paper: 6 of 51), among them Find*.
	opsTotal := len(r.Windows.Set.Ops()) + len(r.Linux.Set.Ops())
	foundFF := false
	for _, rep := range r.Selected {
		if rep.Op == "FindFirst" || rep.Op == "FindNext" {
			foundFF = true
		}
	}
	cs = append(cs, check("selection picks few ops including Find*",
		foundFF && len(r.Selected) <= opsTotal/2,
		"selected=%d of %d profiled op pairs", len(r.Selected), opsTotal))
	return cs
}

func count(p *core.Profile) uint64 {
	if p == nil {
		return 0
	}
	return p.Count
}

// Report implements Result.
func (r *Fig10Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 10: FindFirst, FindNext, read over CIFS (Windows client) ===")
	for _, op := range []string{"FindFirst", "FindNext", "SMBRead"} {
		if prof := r.Windows.Set.Lookup(op); prof != nil && prof.Count > 0 {
			report.Profile(w, prof, report.Options{})
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "--- Linux client (control) ---")
	for _, op := range []string{"FindFirst", "FindNext"} {
		if prof := r.Linux.Set.Lookup(op); prof != nil && prof.Count > 0 {
			report.Profile(w, prof, report.Options{})
		}
	}
	fmt.Fprintf(w, "\nelapsed: windows=%s linux=%s\n",
		cycles.Format(r.Windows.Elapsed), cycles.Format(r.Linux.Elapsed))
	fmt.Fprintln(w, "\nautomated selection (linux vs windows):")
	report.Comparison(w, r.Selected)
}
