package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// assertAllChecks runs a result's checks and fails the test with each
// failed invariant, printing the report for diagnosis.
func assertAllChecks(t *testing.T, r Result) {
	t.Helper()
	failures := Failures(r)
	if len(failures) == 0 {
		return
	}
	var buf bytes.Buffer
	r.Report(&buf)
	for _, c := range failures {
		t.Errorf("%s: %s — %s", r.ID(), c.Name, c.Detail)
	}
	t.Logf("report:\n%s", buf.String())
}

func TestFig1CloneContention(t *testing.T) {
	assertAllChecks(t, RunFig1(Fig1Params{}))
}

func TestFig3PreemptionEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("fig3 runs 400k simulated requests")
	}
	assertAllChecks(t, RunFig3(Fig3Params{}))
}

func TestFig6LlseekContention(t *testing.T) {
	assertAllChecks(t, RunFig6(Fig6Params{}))
}

func TestFig7ReaddirPeaks(t *testing.T) {
	assertAllChecks(t, RunFig7(Fig7Params{}))
}

func TestFig8ValueCorrelation(t *testing.T) {
	assertAllChecks(t, RunFig8(Fig8Params{}))
}

func TestFig9TimelineProfiles(t *testing.T) {
	assertAllChecks(t, RunFig9(Fig9Params{}))
}

func TestFig10CIFSProfiles(t *testing.T) {
	assertAllChecks(t, RunFig10(Fig10Params{}))
}

func TestFig11DelayedAck(t *testing.T) {
	assertAllChecks(t, RunFig11(Fig11Params{}))
}

func TestEvalMemory(t *testing.T) {
	assertAllChecks(t, RunEvalMemory())
}

func TestEvalOverheadDecomposition(t *testing.T) {
	assertAllChecks(t, RunEvalOverhead(EvalOverheadParams{}))
}

func TestEvalAnalysisAccuracy(t *testing.T) {
	assertAllChecks(t, RunEvalAccuracy(EvalAccuracyParams{}))
}

func TestEvalBucketLocking(t *testing.T) {
	assertAllChecks(t, RunEvalLocking(EvalLockingParams{}))
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{
		"fig1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"eval-memory", "eval-overhead", "eval-accuracy", "eval-locking",
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

func TestReportsNonEmpty(t *testing.T) {
	// Light-weight experiments only; the heavy ones are covered above.
	for _, id := range []string{"eval-memory", "eval-locking"} {
		r := Registry[id]()
		var buf bytes.Buffer
		r.Report(&buf)
		if buf.Len() == 0 {
			t.Errorf("%s produced an empty report", id)
		}
		var checks bytes.Buffer
		WriteChecks(&checks, r)
		if !strings.Contains(checks.String(), "PASS") {
			t.Errorf("%s check rendering broken:\n%s", id, checks.String())
		}
	}
}

func TestEq3KnownValues(t *testing.T) {
	// Y=0: the probability is just t_cpu/t_period.
	if got := Eq3(512, 1024, 1<<20, 0); got != 0.5 {
		t.Errorf("Eq3(Y=0) = %g, want 0.5", got)
	}
	// Larger quantum means fewer preemptions.
	if Eq3(512, 1024, 1<<26, 0.01) >= Eq3(512, 1024, 1<<16, 0.01) {
		t.Error("Eq3 not declining with quantum")
	}
}
