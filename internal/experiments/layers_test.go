package experiments_test

import (
	"testing"

	"osprof/internal/diff"
	"osprof/internal/experiments"
	"osprof/internal/fault"
	"osprof/internal/runner"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/store"
	"osprof/internal/vfs"
)

// layerSpec is the constructed pair for the layer-attribution test: a
// single uncached random reader against /bigfile on ext2. Uncached
// reads take the direct-I/O path, which holds the file's inode
// semaphore across the disk read — so a flusher-lock hog camping on
// the same semaphore makes the victim block inside the fs layer, and
// the traced profiles should say exactly that. One reader keeps the
// healthy baseline free of self-contention on that semaphore; the
// whole regression is the hog's.
func layerSpec(injected bool) scenario.Spec {
	spec := scenario.Spec{
		Name:    "ext2/randomread-layers",
		Backend: scenario.Ext2,
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          7,
		},
		CachePages: 1 << 13,
		Instrument: scenario.Instrument{Point: scenario.FSLevel},
		Files:      []scenario.FileSpec{{Name: "bigfile", Size: 512 * vfs.PageSize}},
		Trace:      true,
		Workloads: []scenario.Workload{
			{Kind: scenario.RandomRead, Procs: 1, Amount: 200, Seed: 3, Think: 300_000},
		},
	}
	if injected {
		// Equal busy/sleep: the hog holds /bigfile's i_sem about half
		// the time, serializing every direct read behind its bursts.
		spec.Injections = &fault.Spec{
			Hog: &fault.HogDaemon{Busy: 1 << 17, Sleep: 1 << 17, LockPath: "/bigfile"},
		}
	}
	return spec
}

// The acceptance scenario for the layer subsystem: a layered diff of a
// healthy run against its flusher-lock-degraded twin must attribute
// the read regression to the fs layer — the lock lives in the file
// system, not in the VFS, the cache, or the disk.
func TestLayeredDiffAttributesFlusherLockToFS(t *testing.T) {
	healthy := experiments.RecordScenario(layerSpec(false))
	if healthy.Err != nil {
		t.Fatal(healthy.Err)
	}
	faulty := experiments.RecordScenario(layerSpec(true))
	if faulty.Err != nil {
		t.Fatal(faulty.Err)
	}
	rep := diff.New().Sets(healthy.ProfileSet(), faulty.ProfileSet())
	if len(rep.Layers) == 0 {
		t.Fatal("layered diff of a traced pair produced no layer attribution")
	}
	var read *diff.LayerMove
	for i := range rep.Layers {
		if rep.Layers[i].Op == "read" {
			read = &rep.Layers[i]
			break
		}
	}
	if read == nil {
		t.Fatalf("no layer attribution for read: %+v", rep.Layers)
	}
	if read.Layer != "fs" {
		t.Errorf("read regression attributed to %q, want fs: %+v", read.Layer, *read)
	}
	if read.MeanB <= read.MeanA {
		t.Errorf("fs self-mean did not regress: %d -> %d", read.MeanA, read.MeanB)
	}
}

// goldenRunIDs pins the content addresses (sha256 of the canonical run
// envelope) of two untraced scenarios at seed 1, captured before the
// trace subsystem existed. Tracing off must leave the recorded
// envelopes byte-identical — run-ID equality is exactly that claim.
var goldenRunIDs = map[string]string{
	"fig3/preempt":  "c28ceb5f1190b331b7cccb809fc16a05c104280370df45c7cb6bab0303010223",
	"ext2/readzero": "ffc7eec95c442953d7af4d0028d1bfccd6cfac7196854edb75f61acee3f8c30e",
}

func TestUntracedEnvelopesByteIdentical(t *testing.T) {
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg, fps, _ := experiments.Recordables(1)
	var jobs []runner.Job
	for id := range goldenRunIDs {
		if reg[id] == nil {
			t.Fatalf("recordable %s disappeared from the registry", id)
		}
		jobs = append(jobs, runner.Job{ID: id, New: reg[id], Fingerprint: fps[id]})
	}
	for _, rr := range runner.Run(jobs, runner.Options{Archive: arch}) {
		if !rr.OK() {
			t.Errorf("%s: failed checks: %+v", rr.ID, rr)
		}
		if want := goldenRunIDs[rr.ID]; rr.RunID != want {
			t.Errorf("%s: run ID %s, want golden %s (envelope bytes changed)", rr.ID, rr.RunID, want)
		}
	}
}

// tracedGoldenRunID pins the traced fig3/preempt envelope at seed 1:
// traced runs are worlds of their own, but they are still
// deterministic worlds, so their content address is as stable as any
// untraced golden.
const tracedGoldenRunID = "d37346270ee6a22a18512e0cae201e6d6539b7980f1d3b4b19ee08b3ab2181fd"

func TestTracedRunDeterministic(t *testing.T) {
	var spec scenario.Spec
	for _, s := range experiments.RecordableSpecs(1) {
		if s.Name == "fig3/preempt" {
			spec = s
			break
		}
	}
	if spec.Name == "" {
		t.Fatal("fig3/preempt missing from recordable specs")
	}
	spec.Trace = true
	job := runner.Job{
		ID:          spec.Name,
		New:         func() experiments.Result { return experiments.RecordScenario(spec) },
		Fingerprint: spec.Fingerprint(),
	}
	var ids []string
	for i := 0; i < 2; i++ {
		arch, err := store.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		rr := runner.Run([]runner.Job{job}, runner.Options{Archive: arch})[0]
		if !rr.OK() {
			t.Fatalf("traced run failed: %+v", rr)
		}
		ids = append(ids, rr.RunID)
	}
	if ids[0] != ids[1] {
		t.Fatalf("traced run is not deterministic: %s vs %s", ids[0], ids[1])
	}
	if ids[0] != tracedGoldenRunID {
		t.Errorf("traced fig3/preempt run ID %s, want pinned %s", ids[0], tracedGoldenRunID)
	}
}
