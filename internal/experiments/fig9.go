package experiments

import (
	"fmt"
	"io"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/fs/reiser"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Fig9Params scales the §6.3 experiment: sampled (3D) profiles of
// Reiserfs read and write_super on Linux 2.4.24, where the 5-second
// write_super holds the FS-wide lock while flushing the journal.
type Fig9Params struct {
	// Seconds is the profiled duration (default 10, like the paper's
	// 0..9.6s window).
	Seconds int

	// Interval is the sampling segment in seconds (default 2.5).
	Interval float64
}

// Fig9Result carries the sampled profiles.
type Fig9Result struct {
	Read       *core.Sampled
	WriteSuper *core.Sampled
	Flat       *core.Profile // read flattened across segments
}

// RunFig9 reproduces Figure 9.
func RunFig9(p Fig9Params) *Fig9Result {
	if p.Seconds == 0 {
		p.Seconds = 12
	}
	if p.Interval == 0 {
		p.Interval = 2.5
	}
	deadline := uint64(p.Seconds) * cycles.PerSecond
	files := make([]scenario.FileSpec, 120)
	for i := range files {
		files[i] = scenario.FileSpec{Name: fmt.Sprintf("f%03d", i), Size: 8 * vfs.PageSize}
	}
	st := scenario.MustBuild(scenario.Spec{
		Name: "fig9",
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          9,
		},
		Backend:    scenario.Reiser,
		CachePages: 1 << 15,
		Reiser: reiser.Config{
			JournalBlocks: 24,
			SuperInterval: 4 * cycles.PerSecond,
		},
		SuperDaemon: true,
		Files:       files,
		Instrument: scenario.Instrument{
			Point:          scenario.FSLevel,
			Sampled:        true,
			SampleInterval: uint64(p.Interval * cycles.PerSecond),
		},
		Workloads: []scenario.Workload{
			{
				// Reader: cycles through the files; early passes miss
				// (disk), later passes hit the page cache — the three
				// vertical stripes.
				Kind:     scenario.Custom,
				ProcName: "reader",
				Body: func(proc *sim.Proc, _ int, st *scenario.Stack) {
					i := 0
					for proc.Now() < deadline {
						f, err := st.Sys.Open(proc, fmt.Sprintf("/f%03d", i%120), false)
						if err == nil {
							for st.Sys.Read(proc, f, vfs.PageSize) > 0 {
							}
							st.Sys.Close(proc, f)
						}
						i++
						proc.ExecUser(200_000)
					}
				},
			},
			{
				// Writer: keeps the journal dirty so every write_super
				// has work.
				Kind:     scenario.Custom,
				ProcName: "writer",
				Body: func(proc *sim.Proc, _ int, st *scenario.Stack) {
					for proc.Now() < deadline {
						f, err := st.Sys.Open(proc, "/f000", false)
						if err == nil {
							st.Sys.Write(proc, f, 4*vfs.PageSize)
							st.Sys.Close(proc, f)
						}
						proc.Sleep(800 * cycles.PerMillisecond)
					}
				},
			},
		},
	}).Run()

	r := &Fig9Result{
		Read:       st.Sampled.Profile("read"),
		WriteSuper: st.Sampled.Profile("write_super"),
	}
	if r.Read != nil {
		r.Flat = r.Read.Flatten()
	}
	return r
}

// ID implements Result.
func (r *Fig9Result) ID() string { return "fig9" }

// Checks implements Result.
func (r *Fig9Result) Checks() []Check {
	var cs []Check
	cs = append(cs, check("read sampled profile captured",
		r.Read != nil && r.Read.Len() >= 3,
		"segments=%d", segLen(r.Read)))
	cs = append(cs, check("write_super sampled profile captured",
		r.WriteSuper != nil && r.WriteSuper.Len() >= 1,
		"segments=%d", segLen(r.WriteSuper)))
	if r.Read == nil || r.WriteSuper == nil {
		return cs
	}

	// The flattened read profile shows the three stripes: cached
	// reads, disk-cache reads, reads with a disk access.
	peaks := analysis.FindPeaksOpt(r.Flat, analysis.PeakOptions{MinCount: 3, MaxGap: 2})
	cs = append(cs, check("read profile has >= 3 latency stripes",
		len(peaks) >= 3, "peaks=%v", modes(peaks)))

	// write_super occurs periodically: every 5s, i.e., every other
	// 2.5s segment, and its flush is tens of milliseconds (bucket 24+).
	active := 0
	for _, seg := range r.WriteSuper.Segments() {
		if seg.Count > 0 {
			active++
		}
	}
	cs = append(cs, check("write_super strikes periodically",
		active >= 2, "segments with write_super activity: %d", active))
	flatWS := r.WriteSuper.Flatten()
	_, wsHi, ok := flatWS.Range()
	cs = append(cs, check("write_super flush is tens of milliseconds",
		ok && wsHi >= 23, "max bucket=%d", wsHi))

	// Reads stalled behind the flush: some read in a write_super
	// segment reaches the same latency magnitude.
	stalled := false
	for i, seg := range r.WriteSuper.Segments() {
		if seg.Count == 0 {
			continue
		}
		if rseg := r.Read.Segment(i); rseg != nil && rseg.CountIn(22, 35) > 0 {
			stalled = true
		}
	}
	cs = append(cs, check("reads stall behind the journal flush",
		stalled, "read latencies >= bucket 22 in write_super segments"))
	return cs
}

func segLen(s *core.Sampled) int {
	if s == nil {
		return 0
	}
	return s.Len()
}

// Report implements Result.
func (r *Fig9Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 9: Reiserfs sampled profiles (2.5s intervals) ===")
	if r.WriteSuper != nil {
		report.Timeline(w, r.WriteSuper)
		fmt.Fprintln(w)
	}
	if r.Read != nil {
		report.Timeline(w, r.Read)
	}
}
