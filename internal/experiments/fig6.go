package experiments

import (
	"fmt"
	"io"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/fs/ext2"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Fig6Params scales the §6.1 llseek experiment: processes randomly
// reading the same file with direct I/O, on the stock Linux 2.6.11
// generic_file_llseek (which takes the shared i_sem) and on the
// paper's patched version.
type Fig6Params struct {
	// RequestsPerProc is the llseek+read pair count per process
	// (default 2000).
	RequestsPerProc int
}

// Fig6Result holds the three captured profile sets.
type Fig6Result struct {
	TwoProcs  *core.Set // unpatched, 2 processes
	OneProc   *core.Set // unpatched, 1 process
	Patched   *core.Set // patched, 2 processes
	Selected  []analysis.PairReport
	Contended analysis.Peak // the llseek right peak under contention
}

func fig6Run(procs int, buggy bool, requests int) *core.Set {
	st := scenario.MustBuild(scenario.Spec{
		Name: "fig6",
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          3,
		},
		Backend:    scenario.Ext2,
		CachePages: 4096,
		Ext2:       ext2.Config{BuggyLlseek: buggy},
		Files:      []scenario.FileSpec{{Name: "bigfile", Size: 4096 * vfs.PageSize}},
		Instrument: scenario.Instrument{Point: scenario.FSLevel},
		SetName:    fmt.Sprintf("llseek-%dproc-buggy=%v", procs, buggy),
		Workloads: []scenario.Workload{{
			Kind:     scenario.RandomRead,
			ProcName: "rr",
			Procs:    procs,
			Amount:   requests,
			Seed:     1, // process i reads with seed i+1
			// The think time models the application consuming the
			// data; without it two direct-I/O readers keep i_sem
			// utilized 100% of the time and every llseek contends,
			// unlike the paper's ~25%.
			Think: 14_000_000, // ~8ms user work per 512B read
		}},
	}).Run()
	return st.Set
}

// RunFig6 reproduces Figure 6.
func RunFig6(p Fig6Params) *Fig6Result {
	if p.RequestsPerProc == 0 {
		p.RequestsPerProc = 2_000
	}
	r := &Fig6Result{
		TwoProcs: fig6Run(2, true, p.RequestsPerProc),
		OneProc:  fig6Run(1, true, p.RequestsPerProc),
		Patched:  fig6Run(2, false, p.RequestsPerProc),
	}
	// The automated analysis that "alerted us to significant
	// discrepancies between the profiles of the llseek operations".
	sel := analysis.DefaultSelector()
	r.Selected = sel.SelectInteresting(r.OneProc, r.TwoProcs)

	peaks := analysis.FindPeaksOpt(r.TwoProcs.Lookup("llseek"),
		analysis.PeakOptions{MinCount: 3, MaxGap: 2})
	if len(peaks) > 1 {
		r.Contended = peaks[len(peaks)-1]
	}
	return r
}

// ID implements Result.
func (r *Fig6Result) ID() string { return "fig6" }

// Checks implements Result.
func (r *Fig6Result) Checks() []Check {
	var cs []Check
	two := r.TwoProcs.Lookup("llseek")
	one := r.OneProc.Lookup("llseek")
	patched := r.Patched.Lookup("llseek")
	read := r.TwoProcs.Lookup("read")

	opt := analysis.PeakOptions{MinCount: 3, MaxGap: 2}
	twoPeaks := analysis.FindPeaksOpt(two, opt)
	onePeaks := analysis.FindPeaksOpt(one, opt)
	cs = append(cs, check("llseek bimodal with two processes",
		len(twoPeaks) >= 2, "peaks=%d", len(twoPeaks)))
	cs = append(cs, check("llseek unimodal with one process",
		len(onePeaks) == 1, "peaks=%d (contention requires 2 processes)", len(onePeaks)))

	if len(twoPeaks) >= 2 {
		right := twoPeaks[len(twoPeaks)-1]
		readPeaks := analysis.FindPeaksOpt(read, opt)
		readMode := readPeaks[len(readPeaks)-1].ModeBucket
		diff := right.ModeBucket - readMode
		if diff < 0 {
			diff = -diff
		}
		// "the right-most peak was strikingly similar with the read
		// operation" — llseek waits out the reader's direct I/O.
		cs = append(cs, check("llseek contention peak aligns with read I/O peak",
			diff <= 2, "llseek mode=%d read mode=%d", right.ModeBucket, readMode))

		frac := float64(right.Count) / float64(two.Count)
		cs = append(cs, check("contention frequency in band",
			frac > 0.05 && frac < 0.60,
			"%.1f%% of llseeks contended (paper: 25%%)", 100*frac))
	}

	// Patched llseek: ~120 vs ~400 cycles, a ~70% reduction (§6.1).
	// The recorded latencies include the ~40-cycle probe window.
	um, pm := two.Mean(), patched.Mean()
	// Use the uncontended (one-process) mean for the "before" figure
	// so contention wait does not inflate the comparison.
	ub := one.Mean()
	cs = append(cs, check("patched llseek much cheaper",
		pm < ub && float64(ub-pm)/float64(ub) > 0.5,
		"unpatched(uncontended)=%d patched=%d cycles (paper: 400 -> 120, 70%%)", ub, pm))
	_ = um

	// Automated selection flags llseek.
	found := false
	for _, rep := range r.Selected {
		if rep.Op == "llseek" {
			found = true
		}
	}
	cs = append(cs, check("automated analysis flags llseek",
		found, "selected=%d pairs", len(r.Selected)))
	return cs
}

// Report implements Result.
func (r *Fig6Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 6: llseek under random direct-I/O reads ===")
	fmt.Fprintln(w, "--- READ (2 processes) ---")
	report.Profile(w, r.TwoProcs.Lookup("read"), report.Options{})
	fmt.Fprintln(w, "--- LLSEEK unpatched (2 processes vs 1 process) ---")
	report.Profile(w, r.TwoProcs.Lookup("llseek"), report.Options{})
	report.Profile(w, r.OneProc.Lookup("llseek"), report.Options{})
	fmt.Fprintln(w, "--- LLSEEK patched (2 processes) ---")
	report.Profile(w, r.Patched.Lookup("llseek"), report.Options{})
	fmt.Fprintf(w, "\nmean llseek: unpatched(1proc)=%d unpatched(2proc)=%d patched=%d cycles\n",
		r.OneProc.Lookup("llseek").Mean(),
		r.TwoProcs.Lookup("llseek").Mean(),
		r.Patched.Lookup("llseek").Mean())
	fmt.Fprintln(w, "\nautomated selection (1proc vs 2proc sets):")
	report.Comparison(w, r.Selected)
}
