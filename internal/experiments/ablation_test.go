package experiments

// Ablation tests for the design choices DESIGN.md calls out: each
// verifies that a substrate mechanism is load-bearing for the paper
// phenomenon it supports, by turning it off and watching the phenomenon
// change.

import (
	"testing"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// TestAblationDiskCacheCreatesThirdPeak: without the drive's internal
// readahead cache, Figure 7's sharp third peak (buckets 15..17)
// disappears — every uncached directory block pays mechanical costs.
func TestAblationDiskCacheCreatesThirdPeak(t *testing.T) {
	run := func(segments int) uint64 {
		k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 9_350, WakePreempt: true, Seed: 7})
		dcfg := disk.Config{}
		if segments > 0 {
			dcfg.CacheSegments = segments
		} else {
			dcfg.CacheSegments = 1
			dcfg.ReadaheadBlocks = 1 // effectively no readahead
		}
		d := disk.New(k, dcfg)
		pc := mem.NewCache(k, 1<<16)
		fs := ext2.New(k, d, pc, "ext2", ext2.Config{FileSpread: 24})
		v := vfs.New(k)
		if err := v.Mount("/", fs); err != nil {
			t.Fatal(err)
		}
		workload.BuildTree(fs, workload.TreeSpec{
			Seed: 13, Dirs: 40, FilesPerDirMin: 12, FilesPerDirMax: 40, BigDirEvery: 5,
		})
		set := core.NewSet("x")
		fsprof.InstrumentSet(fs, set)
		k.Spawn("grep", func(p *sim.Proc) { (&workload.Grep{Sys: v}).Run(p) })
		k.Run()
		return set.Lookup("readdir").CountIn(15, 17)
	}
	with, without := run(8), run(0)
	if with == 0 {
		t.Fatal("no disk-cache peak even with readahead enabled")
	}
	if without >= with {
		t.Errorf("third peak survives without drive readahead: with=%d without=%d",
			with, without)
	}
}

// TestAblationBuggyLlseekIsTheCause: on the patched kernel the i_sem
// contention vanishes from llseek entirely, pinning the §6.1 diagnosis
// to the lock (not to scheduling or I/O artifacts).
func TestAblationBuggyLlseekIsTheCause(t *testing.T) {
	maxSeek := func(buggy bool) uint64 {
		k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 9_350, WakePreempt: true, Seed: 3})
		d := disk.New(k, disk.Config{})
		pc := mem.NewCache(k, 4096)
		fs := ext2.New(k, d, pc, "ext2", ext2.Config{BuggyLlseek: buggy})
		fs.MustAddFile(fs.Root(), "bigfile", 4096*vfs.PageSize)
		v := vfs.New(k)
		if err := v.Mount("/", fs); err != nil {
			t.Fatal(err)
		}
		set := core.NewSet("x")
		fsprof.InstrumentSet(fs, set)
		for i := 0; i < 2; i++ {
			seed := int64(i)
			k.Spawn("rr", func(p *sim.Proc) {
				(&workload.RandomRead{Sys: v, Requests: 300, Seed: seed,
					ThinkTime: 14_000_000}).Run(p)
			})
		}
		k.Run()
		return set.Lookup("llseek").Max
	}
	buggy, patched := maxSeek(true), maxSeek(false)
	if buggy < 100*cycles.PerMicrosecond {
		t.Fatalf("buggy llseek never blocked: max=%d", buggy)
	}
	if patched > 10_000 {
		t.Errorf("patched llseek still blocks: max=%d cycles", patched)
	}
}

// TestAblationWakePreemptPreventsConvoy: without wakeup preemption and
// the sleeper boost, a woken semaphore holder waits out other
// processes' timeslices and the clone contention peak inflates by
// orders of magnitude.
func TestAblationWakePreemptPreventsConvoy(t *testing.T) {
	mean := func(wakePreempt bool) uint64 {
		cfg := sim.Config{
			NumCPUs:       2,
			ContextSwitch: 9_350,
			Quantum:       1 << 21,
			TickPeriod:    1 << 19,
			TickCost:      2_000,
			WakePreempt:   wakePreempt,
			Seed:          1,
		}
		prof := (&workload.CloneStorm{
			K: sim.New(cfg), Procs: 4, ClonesPerProc: 2_000,
		}).Run()
		return prof.Mean()
	}
	boosted, convoy := mean(true), mean(false)
	if convoy < boosted*3 {
		t.Errorf("no convoy without wake preemption: boosted=%d convoy=%d",
			boosted, convoy)
	}
}

// TestAblationInstrumentationCostVisible: zeroed instrumentation costs
// make the profiling overhead vanish, confirming the §5.2 decomposition
// measures the cost model and not a simulator artifact.
func TestAblationInstrumentationCostVisible(t *testing.T) {
	sysTime := func(costs fsprof.Costs) uint64 {
		k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 9_350, Seed: 22})
		d := disk.New(k, disk.Config{})
		pc := mem.NewCache(k, 1<<14)
		fs := ext2.New(k, d, pc, "ext2", ext2.Config{})
		v := vfs.New(k)
		if err := v.Mount("/", fs); err != nil {
			t.Fatal(err)
		}
		fsprof.Instrument(fs, fsprof.SetSink{Set: core.NewSet("x")}, fsprof.Full, costs)
		var st sim.ProcStats
		k.Spawn("pm", func(p *sim.Proc) {
			(&workload.Postmark{Sys: v, Files: 100, Transactions: 800, Seed: 5}).Run(p)
			st = p.Stats()
		})
		k.Run()
		return st.SysCPU
	}
	free := sysTime(fsprof.Costs{})
	paid := sysTime(fsprof.DefaultCosts())
	if paid <= free {
		t.Errorf("default costs invisible: free=%d paid=%d", free, paid)
	}
}
