package experiments

import (
	"fmt"
	"io"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/fs/ext2"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/workload"
)

// Fig7Params scales the §6.2 grep experiment over a synthetic source
// tree on Ext2 with cold caches.
type Fig7Params struct {
	// Dirs is the directory count of the tree (default 60).
	Dirs int
}

// Fig7Result carries the readdir/readpage profiles and the identified
// peaks of the readdir distribution.
type Fig7Result struct {
	Set      *core.Set
	Readdir  *core.Profile
	Readpage *core.Profile
	Peaks    []analysis.Peak
	Grep     workload.GrepStats
}

// fig7Spec describes the machine + tree; Figure 8 reruns the identical
// scenario with correlation probes instead of the profile set.
func fig7Spec(name string, dirs int, instrument scenario.Instrument) scenario.Spec {
	return scenario.Spec{
		Name: name,
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			WakePreempt:   true,
			Seed:          7,
		},
		Backend:    scenario.Ext2,
		CachePages: 1 << 16,
		Ext2:       ext2.Config{FileSpread: 24},
		Tree: &workload.TreeSpec{
			Seed:           13,
			Dirs:           dirs,
			FilesPerDirMin: 12,
			FilesPerDirMax: 40,
			BigDirEvery:    5,
		},
		Instrument: instrument,
		SetName:    "ext2-grep",
	}
}

// RunFig7 reproduces Figure 7: the four-peak readdir profile.
func RunFig7(p Fig7Params) *Fig7Result {
	if p.Dirs == 0 {
		p.Dirs = 60
	}
	spec := fig7Spec("fig7", p.Dirs, scenario.Instrument{Point: scenario.FSLevel})
	r := &Fig7Result{}
	spec.Workloads = []scenario.Workload{{
		Kind:    scenario.Grep,
		Collect: func(stats any) { r.Grep = stats.(workload.GrepStats) },
	}}
	st := scenario.MustBuild(spec).Run()
	r.Set = st.Set
	r.Readdir = st.Set.Lookup("readdir")
	r.Readpage = st.Set.Lookup("readpage")
	r.Peaks = analysis.FindPeaksOpt(r.Readdir, analysis.PeakOptions{MinCount: 2, MaxGap: 1})
	return r
}

// peakRanges are the paper's four readdir regimes (bucket bands):
// past-EOF, page-cache hit, disk-cache (readahead) hit, mechanical I/O.
var peakRanges = []core.BucketRange{
	{Lo: 5, Hi: 8},
	{Lo: 9, Hi: 14},
	{Lo: 15, Hi: 17},
	{Lo: 18, Hi: 26},
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Checks implements Result.
func (r *Fig7Result) Checks() []Check {
	var cs []Check
	cs = append(cs, check("readdir profile has four peaks",
		len(r.Peaks) == 4, "peaks=%d", len(r.Peaks)))

	names := []string{"past-EOF", "page-cache", "disk-cache", "mechanical I/O"}
	for i, rng := range peakRanges {
		found := false
		for _, pk := range r.Peaks {
			if rng.Contains(pk.ModeBucket) {
				found = true
			}
		}
		cs = append(cs, check(fmt.Sprintf("peak %d (%s) in buckets %d..%d",
			i+1, names[i], rng.Lo, rng.Hi), found, "peaks=%v", modes(r.Peaks)))
	}

	// §6.2's key invariant: "the number of elements in the third and
	// fourth peaks is exactly equal to the number of elements in the
	// readpage profile."
	ioCount := r.Readdir.CountIn(15, 26)
	cs = append(cs, check("peaks 3+4 count equals readpage count",
		ioCount == r.Readpage.Count,
		"readdir I/O ops=%d readpage ops=%d", ioCount, r.Readpage.Count))

	// The first peak is the past-EOF calls: grep makes exactly one
	// per directory.
	eofCount := r.Readdir.CountIn(5, 8)
	cs = append(cs, check("first peak equals one past-EOF call per directory",
		int(eofCount) == r.Grep.Dirs,
		"peak1=%d dirs=%d", eofCount, r.Grep.Dirs))

	// readpage latencies stay small: it only initiates the I/O (§6.2).
	_, rpHi, ok := r.Readpage.Range()
	cs = append(cs, check("readpage only initiates I/O",
		ok && rpHi <= 14,
		"readpage max bucket=%d (waits happen in readdir)", rpHi))
	return cs
}

func modes(peaks []analysis.Peak) []int {
	out := make([]int, len(peaks))
	for i, p := range peaks {
		out[i] = p.ModeBucket
	}
	return out
}

// Report implements Result.
func (r *Fig7Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 7: Ext2 readdir (top) and readpage (bottom) under grep -r ===")
	report.Profile(w, r.Readdir, report.Options{})
	fmt.Fprintln(w)
	report.Profile(w, r.Readpage, report.Options{})
	fmt.Fprintf(w, "\npeak modes: %v\n", modes(r.Peaks))
	fmt.Fprintf(w, "grep: %d dirs, %d files, %d KB read\n",
		r.Grep.Dirs, r.Grep.Files, r.Grep.BytesRead/1024)
}
