package experiments

import (
	"fmt"
	"io"
	"math"

	"osprof/internal/core"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Fig3Params scales the Figure 3 experiment: two processes reading
// zero bytes of data back to back, on a kernel compiled with in-kernel
// preemption and on the same kernel with preemption disabled.
//
// Scaling substitution (documented in EXPERIMENTS.md): the paper issued
// 2x10^8 requests with Q=2^26; to keep simulation time reasonable the
// default here is 4x10^5 requests with Q=2^20 and a 2^18 timer tick.
// Equation 3's expected-count arithmetic is scale-free, so the
// validation carries over.
type Fig3Params struct {
	// Requests is the total zero-byte read count across both
	// processes (default 400,000).
	Requests int
}

// fig3Quantum and fig3Tick are the scaled scheduler constants.
const (
	fig3Quantum = 1 << 20
	fig3Tick    = 1 << 18
	fig3TickCPU = 10_000
)

// Fig3Run is one kernel configuration's outcome.
type Fig3Run struct {
	Preemptive bool

	// Read is the user-level profile of the read operation.
	Read *core.Profile

	// PreemptedObserved counts requests during which the process was
	// forcibly preempted (ground truth from the simulator).
	PreemptedObserved int

	// PreemptedBuckets is the latency histogram of just the preempted
	// requests.
	PreemptedBuckets map[int]int

	// Duration is the run's wall-clock length in cycles.
	Duration uint64
}

// Fig3Result holds both kernel builds plus the Equation 3 validation.
type Fig3Result struct {
	Preemptive    Fig3Run
	NonPreemptive Fig3Run

	// ExpectedPreempted is sum over buckets of n_b * (3/2*2^b) / Q
	// (the paper's expected preempted-request count): the number of
	// preemption points expected to land inside the measured windows.
	// It is computed from the non-preemptive profile so the preempted
	// requests themselves do not pollute the estimate.
	ExpectedPreempted float64

	// PreemptedInProfile counts the preemptive profile's requests
	// near bucket log2(Q) in excess of the non-preemptive profile's.
	PreemptedInProfile int

	// ExpectedTicks is the timer-peak population predicted by the
	// same argument: profiled time divided by the tick period.
	ExpectedTicks float64

	// Eq3Rows is the analytic forcible-preemption probability for a
	// few parameter sets (the paper's Equation 3).
	Eq3Rows []Eq3Row
}

// Eq3Row is one analytic data point.
type Eq3Row struct {
	TCPU, TPeriod, Q uint64
	Y                float64
	Probability      float64
}

// Eq3 evaluates the paper's Equation 3: the probability that a process
// is forcibly preempted while being profiled,
//
//	Pr(fp) = t_cpu/t_period * (1-Y)^(Q/t_period).
func Eq3(tcpu, tperiod, q uint64, y float64) float64 {
	return float64(tcpu) / float64(tperiod) *
		math.Pow(1-y, float64(q)/float64(tperiod))
}

func fig3Run(preemptive bool, requests int) Fig3Run {
	run := Fig3Run{Preemptive: preemptive, PreemptedBuckets: make(map[int]int)}
	st := scenario.MustBuild(scenario.Spec{
		Name: "fig3",
		Kernel: sim.Config{
			NumCPUs:       1,
			ContextSwitch: 9_350,
			Quantum:       fig3Quantum,
			TickPeriod:    fig3Tick,
			TickCost:      fig3TickCPU,
			Preemptive:    preemptive,
			Seed:          1,
		},
		Backend:    scenario.Ext2,
		CachePages: 1024,
		Files:      []scenario.FileSpec{{Name: "zero", Size: vfs.PageSize}},
		Instrument: scenario.Instrument{Point: scenario.UserLevel},
		SetName:    "user-level",
		Workloads: []scenario.Workload{{
			Kind:     scenario.ReadZero,
			ProcName: "reader",
			Procs:    2,
			Amount:   requests / 2,
			Observe: func(lat uint64, pre bool) {
				if pre {
					run.PreemptedObserved++
					run.PreemptedBuckets[core.BucketFor(lat, 1)]++
				}
			},
		}},
	}).Run()
	run.Read = st.Set.Lookup("read")
	run.Duration = st.K.Now()
	return run
}

// RunFig3 reproduces Figure 3 and validates the §3.3 preemption
// arithmetic.
func RunFig3(p Fig3Params) *Fig3Result {
	if p.Requests == 0 {
		p.Requests = 400_000
	}
	r := &Fig3Result{
		Preemptive:    fig3Run(true, p.Requests),
		NonPreemptive: fig3Run(false, p.Requests),
	}
	// Expected counts (§3.3): preemption points arrive once per Q
	// cycles of on-CPU time and timer interrupts once per tick; the
	// share landing inside measured windows is the profiled time
	// (sum n_b * mean_b over the ordinary buckets) divided by Q or
	// the tick period. Buckets >= 12 are excluded from "profiled
	// time": they are the tick and preemption artifacts themselves.
	var profiled float64
	for b, n := range r.NonPreemptive.Read.Buckets {
		if n == 0 || b >= 12 {
			continue
		}
		profiled += float64(n) * float64(core.BucketMean(b))
	}
	r.ExpectedPreempted = profiled / float64(fig3Quantum)
	r.ExpectedTicks = profiled / float64(fig3Tick)

	qb := core.BucketFor(fig3Quantum, 1)
	r.PreemptedInProfile = int(r.Preemptive.Read.CountIn(qb-2, qb+2)) -
		int(r.NonPreemptive.Read.CountIn(qb-2, qb+2))
	// The paper's analytic example plus scaled variants.
	r.Eq3Rows = []Eq3Row{
		{TCPU: 1 << 10, TPeriod: 1 << 11, Q: 1 << 26, Y: 0.01,
			Probability: Eq3(1<<10, 1<<11, 1<<26, 0.01)},
		{TCPU: 1 << 10, TPeriod: 1 << 11, Q: 1 << 20, Y: 0.01,
			Probability: Eq3(1<<10, 1<<11, 1<<20, 0.01)},
		{TCPU: 1 << 10, TPeriod: 1 << 11, Q: 1 << 20, Y: 0,
			Probability: Eq3(1<<10, 1<<11, 1<<20, 0)},
	}
	return r
}

// ID implements Result.
func (r *Fig3Result) ID() string { return "fig3" }

// Checks implements Result.
func (r *Fig3Result) Checks() []Check {
	var cs []Check
	cs = append(cs, check("non-preemptive kernel never preempts in-kernel reads",
		r.NonPreemptive.PreemptedObserved == 0,
		"preempted=%d", r.NonPreemptive.PreemptedObserved))
	cs = append(cs, check("preemptive kernel shows preempted requests",
		r.Preemptive.PreemptedObserved > 0,
		"preempted=%d", r.Preemptive.PreemptedObserved))

	// The paper's count validation (their 388 +-33%); the scaled run
	// has fewer samples, so accept +-50%. The comparison uses the
	// profile's excess population near bucket log2(Q), because only
	// preemptions landing inside the measured window enter the
	// profile.
	obs, exp := float64(r.PreemptedInProfile), r.ExpectedPreempted
	cs = append(cs, check("preempted count matches sum n_b*mean_b/Q",
		exp > 0 && obs > exp*0.5 && obs < exp*1.5,
		"in-profile=%.0f expected=%.1f (simulator ground truth: %d preemptions hit requests)",
		obs, exp, r.Preemptive.PreemptedObserved))

	// Preempted requests wait about a quantum: bucket ~log2(Q).
	qb := core.BucketFor(fig3Quantum, 1)
	inQ := 0
	for b, n := range r.Preemptive.PreemptedBuckets {
		if b >= qb-2 && b <= qb+2 {
			inQ += n
		}
	}
	cs = append(cs, check("preempted requests land near bucket log2(Q)",
		r.Preemptive.PreemptedObserved == 0 ||
			float64(inQ) > 0.7*float64(r.Preemptive.PreemptedObserved),
		"%d of %d in buckets %d..%d", inQ, r.Preemptive.PreemptedObserved, qb-2, qb+2))

	// Main zero-byte-read peak identical on both kernels (Figure 3's
	// black and white bars coincide at the left).
	pm, nm := mainMode(r.Preemptive.Read), mainMode(r.NonPreemptive.Read)
	cs = append(cs, check("main peak position unaffected by preemption",
		pm == nm && pm >= 5 && pm <= 9,
		"preemptive mode=%d non-preemptive mode=%d (paper: bucket 6)", pm, nm))

	// The timer-interrupt peak: requests inflated by the tick handler
	// land near bucket log2(TickCost), and their count tracks
	// duration/TickPeriod (§3.3: "the total duration of the profiling
	// process divided by the number of elements in bucket 13 is equal
	// to 4ms").
	tb := core.BucketFor(fig3TickCPU, 1)
	tickCount := r.NonPreemptive.Read.CountIn(tb-1, tb+1)
	cs = append(cs, check("timer-interrupt peak count tracks profiled-time/tick",
		tickCount > 0 && float64(tickCount) > 0.6*r.ExpectedTicks &&
			float64(tickCount) < 1.4*r.ExpectedTicks,
		"count=%d expected=%.0f (duration/tick=%.0f scaled by the window share)",
		tickCount, r.ExpectedTicks,
		float64(r.NonPreemptive.Duration)/float64(fig3Tick)))

	// Equation 3: the probability declines rapidly with Q/t_period.
	cs = append(cs, check("Eq3 declines rapidly with quantum",
		r.Eq3Rows[0].Probability < r.Eq3Rows[1].Probability &&
			r.Eq3Rows[1].Probability < r.Eq3Rows[2].Probability,
		"Pr: %.3g < %.3g < %.3g",
		r.Eq3Rows[0].Probability, r.Eq3Rows[1].Probability, r.Eq3Rows[2].Probability))
	cs = append(cs, check("Eq3 negligible at paper's parameters",
		r.Eq3Rows[0].Probability < 1e-100,
		"Pr=%.3g (paper: ~1e-280 with its exponent convention)", r.Eq3Rows[0].Probability))
	return cs
}

func mainMode(p *core.Profile) int {
	mode, best := 0, uint64(0)
	for b, n := range p.Buckets {
		if n > best {
			best, mode = n, b
		}
	}
	return mode
}

// Report implements Result.
func (r *Fig3Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 3: zero-byte reads, preemptive vs non-preemptive kernel ===")
	fmt.Fprintln(w, "--- preemptive ---")
	report.Profile(w, r.Preemptive.Read, report.Options{})
	fmt.Fprintln(w, "--- non-preemptive ---")
	report.Profile(w, r.NonPreemptive.Read, report.Options{})
	fmt.Fprintf(w, "\npreempted requests: observed=%d expected(sum n_b*mean_b/Q)=%.1f\n",
		r.Preemptive.PreemptedObserved, r.ExpectedPreempted)
	fmt.Fprintln(w, "\nEquation 3 (forcible preemption probability):")
	fmt.Fprintf(w, "%12s %12s %12s %6s %14s\n", "t_cpu", "t_period", "Q", "Y", "Pr(fp)")
	for _, row := range r.Eq3Rows {
		fmt.Fprintf(w, "%12d %12d %12d %6.2f %14.3g\n",
			row.TCPU, row.TPeriod, row.Q, row.Y, row.Probability)
	}
}
