// Package experiments reproduces every figure and evaluation number of
// the paper. Each experiment returns a structured result with:
//
//   - Checks: machine-verifiable invariants asserting the paper's
//     qualitative claims (who wins, where peaks fall, what disappears
//     under a control condition),
//   - Report: paper-style textual output (profiles rendered like the
//     figures, tables of the quoted numbers).
//
// Absolute values come from the simulated substrate, so EXPERIMENTS.md
// compares shapes, not raw cycle counts, against the paper.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Check is one verified invariant.
type Check struct {
	Name   string
	OK     bool
	Detail string
}

// Result is implemented by every experiment outcome.
type Result interface {
	// ID names the experiment ("fig1", "eval-overhead", ...).
	ID() string

	// Checks returns the invariant verdicts.
	Checks() []Check

	// Report writes the paper-style output.
	Report(w io.Writer)
}

// Failures filters the failed checks of a result.
func Failures(r Result) []Check {
	var out []Check
	for _, c := range r.Checks() {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// check is a small builder helper.
func check(name string, ok bool, format string, args ...any) Check {
	return Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)}
}

// Registry maps experiment IDs to constructors at default (test) scale.
var Registry = map[string]func() Result{
	"fig1":          func() Result { return RunFig1(Fig1Params{}) },
	"fig3":          func() Result { return RunFig3(Fig3Params{}) },
	"fig6":          func() Result { return RunFig6(Fig6Params{}) },
	"fig7":          func() Result { return RunFig7(Fig7Params{}) },
	"fig8":          func() Result { return RunFig8(Fig8Params{}) },
	"fig9":          func() Result { return RunFig9(Fig9Params{}) },
	"fig10":         func() Result { return RunFig10(Fig10Params{}) },
	"fig11":         func() Result { return RunFig11(Fig11Params{}) },
	"eval-memory":   func() Result { return RunEvalMemory() },
	"eval-overhead": func() Result { return RunEvalOverhead(EvalOverheadParams{}) },
	"eval-accuracy": func() Result { return RunEvalAccuracy(EvalAccuracyParams{}) },
	"eval-locking":  func() Result { return RunEvalLocking(EvalLockingParams{}) },
}

// IDs returns the registry keys in sorted order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// WriteChecks renders the verdicts of a result.
func WriteChecks(w io.Writer, r Result) { WriteCheckList(w, r.Checks()) }

// WriteCheckList renders check verdicts in the canonical format; the
// CLI and WriteChecks share it so the rendering cannot drift.
func WriteCheckList(w io.Writer, checks []Check) {
	for _, c := range checks {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %-40s %s\n", status, c.Name, c.Detail)
	}
}
