package experiments

import (
	"fmt"
	"io"

	"osprof/internal/core"
	"osprof/internal/report"
	"osprof/internal/scenario"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Fig8Params scales the §6.2 profile/value correlation experiment. It
// runs on the same machine and tree as Figure 7 but is an independent
// experiment with its own scale knob.
type Fig8Params struct {
	// Dirs is the directory count of the tree (default 60, like
	// Figure 7).
	Dirs int
}

// Fig8Result is the direct profile/value correlation of §6.2: for every
// readdir call, store the value readdir_past_EOF*1024 into one value
// profile if the call's latency fell into the first peak and into
// another otherwise. If the hypothesis is right, the first peak's
// value profile has all its mass at 1024 and the other peaks' at 0.
type Fig8Result struct {
	Correlation *core.Correlation
	Calls       uint64
}

// RunFig8 reproduces Figure 8 on the same machine and tree as
// Figure 7.
func RunFig8(p Fig8Params) *Fig8Result {
	if p.Dirs == 0 {
		p.Dirs = 60
	}
	// The identical Figure 7 stack, but without the profile-set
	// instrumentation: the correlation macros below are the only
	// probes.
	spec := fig7Spec("fig8", p.Dirs, scenario.Instrument{Point: scenario.NoProfiler})
	spec.Workloads = []scenario.Workload{{Kind: scenario.Grep}}
	st := scenario.MustBuild(spec)

	// The slightly modified profiling macros of §6.2: the first-peak
	// latency range from Figure 7 classifies each call, and the
	// stored value is readdir_past_EOF * 1024.
	corr := core.NewCorrelation("readdir_past_EOF", []core.BucketRange{
		peakRanges[0],
	})
	r := &Fig8Result{Correlation: corr}

	ops := st.Ext2.Ops()
	orig := ops.File.Readdir
	ops.File.Readdir = func(proc *sim.Proc, f *vfs.File) []vfs.DirEntry {
		pastEOF := uint64(0)
		if f.Pos >= f.Inode.Size {
			pastEOF = 1
		}
		start := proc.ReadTSC()
		out := orig(proc, f)
		corr.Record(proc.ReadTSC()-start, pastEOF*1024)
		r.Calls++
		return out
	}

	st.Run()
	return r
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// Checks implements Result.
func (r *Fig8Result) Checks() []Check {
	var cs []Check
	first := r.Correlation.Peak(0)
	other := r.Correlation.Other()

	cs = append(cs, check("every readdir call classified",
		first.Count+other.Count == r.Calls,
		"first=%d other=%d calls=%d", first.Count, other.Count, r.Calls))

	// All first-peak calls carried past_EOF=1 (value 1024, bucket 10).
	cs = append(cs, check("first peak is exactly the past-EOF calls",
		first.Count > 0 && first.Buckets[10] == first.Count,
		"bucket10=%d of %d", first.Buckets[10], first.Count))

	// All other calls carried past_EOF=0 (bucket 0).
	cs = append(cs, check("other peaks carry past_EOF=0",
		other.Count > 0 && other.Buckets[0] == other.Count,
		"bucket0=%d of %d", other.Buckets[0], other.Count))

	cs = append(cs, check("correlation checksums valid",
		r.Correlation.Validate() == nil, ""))
	return cs
}

// Report implements Result.
func (r *Fig8Result) Report(w io.Writer) {
	fmt.Fprintln(w, "=== Figure 8: correlation of readdir_past_EOF*1024 with the first peak ===")
	fmt.Fprintln(w, "--- value profile of first-peak requests ---")
	report.Profile(w, r.Correlation.Peak(0), report.Options{})
	fmt.Fprintln(w, "--- value profile of all other requests ---")
	report.Profile(w, r.Correlation.Other(), report.Options{})
}
