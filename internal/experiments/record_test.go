package experiments

import (
	"strings"
	"testing"

	"osprof/internal/scenario"
)

func TestRecordablesRegistry(t *testing.T) {
	reg, fps, ids := Recordables(1)
	if len(reg) != len(ids) || len(fps) != len(ids) {
		t.Fatalf("registry sizes: reg=%d fps=%d ids=%d", len(reg), len(fps), len(ids))
	}
	// Matrix cells plus the kernel-config variants and load cells.
	wantLen := len(scenario.MatrixIDs()) + len(scenario.VariantIDs()) + len(scenario.LoadCellIDs())
	if len(ids) != wantLen {
		t.Errorf("%d recordables, want %d", len(ids), wantLen)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if reg[id] == nil {
			t.Errorf("%s: no constructor", id)
		}
		if len(fps[id]) != 64 {
			t.Errorf("%s: fingerprint %q", id, fps[id])
		}
		if seen[fps[id]] {
			t.Errorf("%s: fingerprint collides with another recordable", id)
		}
		seen[fps[id]] = true
	}
	if !strings.Contains(strings.Join(ids, " "), "fig3/preempt") {
		t.Errorf("variants missing from recordables: %v", ids)
	}
}

// RecordScenario runs once (no determinism rerun) but still carries
// the generic checks and exposes the profile set for archiving.
func TestRecordScenarioSingleRun(t *testing.T) {
	spec := scenario.Matrix(1)[0] // ext2/grep
	r := RecordScenario(spec)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Reran {
		t.Error("RecordScenario performed the determinism rerun")
	}
	for _, c := range r.Checks() {
		if c.Name == "deterministic rerun" {
			t.Error("single-run result claims a rerun check")
		}
		if !c.OK {
			t.Errorf("check failed: %s %s", c.Name, c.Detail)
		}
	}
	set := r.ProfileSet()
	if set == nil || set.TotalOps() == 0 {
		t.Fatalf("no profile set exposed: %+v", set)
	}
	meta := r.RunMeta()
	if meta["scenario"] != spec.Name || meta["backend"] != "ext2" || meta["elapsed"] == "0" {
		t.Errorf("run meta: %v", meta)
	}

	// RunScenario still reruns and keeps the determinism check.
	full := RunScenario(spec)
	if !full.Reran || !full.Deterministic {
		t.Errorf("RunScenario rerun state: reran=%v deterministic=%v",
			full.Reran, full.Deterministic)
	}
	hasRerunCheck := false
	for _, c := range full.Checks() {
		if c.Name == "deterministic rerun" {
			hasRerunCheck = true
		}
	}
	if !hasRerunCheck {
		t.Error("RunScenario lost the determinism check")
	}
}

func TestRecordScenarioBuildFailure(t *testing.T) {
	r := RecordScenario(scenario.Spec{Name: "broken", Backend: scenario.Backend(99)})
	if r.Err == nil {
		t.Fatal("broken spec did not fail")
	}
	if r.ProfileSet() != nil {
		t.Error("failed scenario exposes a profile set")
	}
	checks := r.Checks()
	if len(checks) == 0 || checks[0].OK {
		t.Errorf("failure not reflected in checks: %+v", checks)
	}
}
