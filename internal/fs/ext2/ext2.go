// Package ext2 implements an Ext2-like file system on the simulated
// disk: extent-based block allocation, directory blocks holding 64
// entries each, a readdir path that calls readpage for pages not found
// in the cache (the paper's Figure 4/§6.2 structure), buffered reads
// through the page cache with batched readahead, direct I/O reads that
// hold the inode semaphore (the §6.1 llseek-contention substrate), and
// write paths that dirty page-cache pages for the flushing daemon.
package ext2

import (
	"fmt"

	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// entriesPerBlock is how many directory entries fit one 4 KB block.
const entriesPerBlock = vfs.PageSize / vfs.DirentSize

// direntsPerCall is how many entries one readdir call returns (the
// user-space getdents buffer size).
const direntsPerCall = 16

// Config tunes the file system's CPU costs and on-disk layout.
type Config struct {
	// BuggyLlseek selects the unpatched Linux 2.6.11
	// generic_file_llseek that takes i_sem even for regular files.
	BuggyLlseek bool

	// FileSpread leaves a gap (in blocks) between consecutively
	// allocated file extents, spreading data across cylinders so that
	// file-to-file access patterns seek (like a real aged FS).
	FileSpread uint64

	// DirtyPageLimit, when positive, throttles writers once the page
	// cache holds more dirty pages than the limit: the writing process
	// performs synchronous writeback of the oldest dirty pages, like
	// Linux's balance_dirty_pages. 0 disables throttling.
	DirtyPageLimit int

	// CPU costs in cycles (defaults in parentheses).
	LookupCost    uint64 // dcache/dirent lookup (2500)
	PastEOFCost   uint64 // readdir past end of directory (50)
	ParseDirCost  uint64 // parse one cached directory block (2600)
	ReadPageInit  uint64 // initiate one page read (1500)
	ReadBatchInit uint64 // initiate a batched readahead (2500)
	DirectSetup   uint64 // direct-I/O read setup (1500)
	WriteSetup    uint64 // write syscall body (2500)
	WritePageCost uint64 // copy one page into the cache (4500)
	CreateCost    uint64 // allocate inode + dirent (9000)
	UnlinkCost    uint64 // remove dirent + free blocks (7000)
	OpenCost      uint64 // file object allocation (1200)
	ReleaseCost   uint64 // file object teardown (600)
}

func (c *Config) applyDefaults() {
	def := func(v *uint64, d uint64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.LookupCost, 2_500)
	def(&c.PastEOFCost, 50)
	def(&c.ParseDirCost, 2_600)
	def(&c.ReadPageInit, 1_500)
	def(&c.ReadBatchInit, 2_500)
	def(&c.DirectSetup, 1_500)
	def(&c.WriteSetup, 2_500)
	def(&c.WritePageCost, 4_500)
	def(&c.CreateCost, 9_000)
	def(&c.UnlinkCost, 7_000)
	def(&c.OpenCost, 1_200)
	def(&c.ReleaseCost, 600)
}

// inodeInfo is the FS-private inode state.
type inodeInfo struct {
	ino     *vfs.Inode
	start   uint64 // first block of the extent
	blocks  uint64 // extent capacity in blocks
	entries []vfs.DirEntry
}

// FS is the simulated Ext2 file system.
type FS struct {
	name string
	k    *sim.Kernel
	d    *disk.Disk
	pc   *mem.Cache
	cfg  Config

	ops     vfs.Ops
	root    *vfs.Inode
	inodes  map[uint64]*inodeInfo
	nextIno uint64

	// Allocation cursors: metadata (directories, inode blocks) lives
	// in the low block region; file data grows upward from dataStart.
	nextMeta  uint64
	nextData  uint64
	dataStart uint64
}

var _ vfs.FileSystem = (*FS)(nil)

// New formats a file system over d, caching pages in pc.
func New(k *sim.Kernel, d *disk.Disk, pc *mem.Cache, name string, cfg Config) *FS {
	cfg.applyDefaults()
	fs := &FS{
		name:   name,
		k:      k,
		d:      d,
		pc:     pc,
		cfg:    cfg,
		inodes: make(map[uint64]*inodeInfo),
	}
	fs.dataStart = d.Config().Blocks / 16 // metadata zone: first 1/16
	fs.nextMeta = 1                       // block 0 is the superblock
	fs.nextData = fs.dataStart
	fs.root = fs.newInode(true)
	fs.installOps()
	return fs
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return fs.name }

// Root implements vfs.FileSystem.
func (fs *FS) Root() *vfs.Inode { return fs.root }

// Ops implements vfs.FileSystem. The returned pointer is stable, so
// instrumentation can replace operation fields in place.
func (fs *FS) Ops() *vfs.Ops { return &fs.ops }

// Disk exposes the underlying drive (driver-level profiling).
func (fs *FS) Disk() *disk.Disk { return fs.d }

// PageCache exposes the page cache.
func (fs *FS) PageCache() *mem.Cache { return fs.pc }

// InodeByID resolves an inode number, or nil (writeback paths that
// outlive an unlink).
func (fs *FS) InodeByID(id uint64) *vfs.Inode {
	if info := fs.inodes[id]; info != nil {
		return info.ino
	}
	return nil
}

func (fs *FS) newInode(dir bool) *vfs.Inode {
	fs.nextIno++
	ino := &vfs.Inode{
		ID:  fs.nextIno,
		Dir: dir,
		Sem: sim.NewSemaphore(fs.k, fmt.Sprintf("i_sem:%d", fs.nextIno)),
		FS:  fs,
	}
	info := &inodeInfo{ino: ino}
	ino.Data = info
	fs.inodes[ino.ID] = info
	return ino
}

func (fs *FS) info(ino *vfs.Inode) *inodeInfo { return ino.Data.(*inodeInfo) }

// allocMeta allocates n contiguous blocks in the metadata zone.
func (fs *FS) allocMeta(n uint64) uint64 {
	b := fs.nextMeta
	fs.nextMeta += n
	if fs.nextMeta >= fs.dataStart {
		panic("ext2: metadata zone full")
	}
	return b
}

// allocData allocates n contiguous blocks in the data zone, leaving
// FileSpread blocks between consecutive extents.
func (fs *FS) allocData(n uint64) uint64 {
	b := fs.nextData
	fs.nextData += n + fs.cfg.FileSpread
	if fs.nextData >= fs.d.Config().Blocks {
		panic("ext2: disk full")
	}
	return b
}

// --- Offline tree builders -------------------------------------------
//
// Workload setup constructs the directory tree directly (mkfs-style),
// without simulated cost, so experiments start from a cold cache over a
// realistic layout.

// MustAddDir creates a subdirectory of parent without simulated cost.
func (fs *FS) MustAddDir(parent *vfs.Inode, name string) *vfs.Inode {
	ino, err := fs.addEntry(parent, name, true, 0)
	if err != nil {
		panic(err)
	}
	return ino
}

// MustAddFile creates a file of the given size under parent without
// simulated cost.
func (fs *FS) MustAddFile(parent *vfs.Inode, name string, size uint64) *vfs.Inode {
	ino, err := fs.addEntry(parent, name, false, size)
	if err != nil {
		panic(err)
	}
	return ino
}

func (fs *FS) addEntry(parent *vfs.Inode, name string, dir bool, size uint64) (*vfs.Inode, error) {
	if !parent.Dir {
		return nil, vfs.ErrNotDir
	}
	pinfo := fs.info(parent)
	for _, e := range pinfo.entries {
		if e.Name == name {
			return nil, fmt.Errorf("%w: %s", vfs.ErrExists, name)
		}
	}
	ino := fs.newInode(dir)
	info := fs.info(ino)
	if dir {
		info.start = fs.allocMeta(1)
		info.blocks = 1
	} else if size > 0 {
		blocks := (size + vfs.PageSize - 1) / vfs.PageSize
		info.start = fs.allocData(blocks)
		info.blocks = blocks
		ino.Size = size
	}
	pinfo.entries = append(pinfo.entries, vfs.DirEntry{Name: name, Ino: ino.ID, Dir: dir})
	parent.Size = uint64(len(pinfo.entries)) * vfs.DirentSize
	// Grow the directory extent when its entry list spills into new
	// blocks (keeps directory blocks contiguous in the meta zone).
	needed := (parent.Size + vfs.PageSize - 1) / vfs.PageSize
	if pi := fs.info(parent); needed > pi.blocks {
		if pi.blocks == 0 {
			pi.start = fs.allocMeta(needed)
		} else if pi.start+pi.blocks == fs.nextMeta {
			fs.allocMeta(needed - pi.blocks)
		} else {
			pi.start = fs.allocMeta(needed)
		}
		pi.blocks = needed
	}
	return ino, nil
}
