package ext2

import (
	"errors"
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// rig builds a kernel + disk + page cache + ext2 + VFS.
func rig(cfg Config) (*sim.Kernel, *FS, *vfs.VFS) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 4096)
	fs := New(k, d, pc, "ext2", cfg)
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	return k, fs, v
}

func TestLookupAndOpen(t *testing.T) {
	k, fs, v := rig(Config{})
	dir := fs.MustAddDir(fs.Root(), "etc")
	fs.MustAddFile(dir, "passwd", 100)
	k.Spawn("w", func(p *sim.Proc) {
		f, err := v.Open(p, "/etc/passwd", false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if f.Inode.Size != 100 {
			t.Errorf("size = %d", f.Inode.Size)
		}
		v.Close(p, f)
		if _, err := v.Open(p, "/etc/shadow", false); !errors.Is(err, vfs.ErrNotFound) {
			t.Errorf("missing file: %v", err)
		}
	})
	k.Run()
}

func TestBufferedReadColdThenWarm(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile(fs.Root(), "data", 3*vfs.PageSize)
	var cold, warm uint64
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/data", false)
		start := p.Now()
		if n := v.Read(p, f, vfs.PageSize); n != vfs.PageSize {
			t.Errorf("short read: %d", n)
		}
		cold = p.Now() - start

		f2, _ := v.Open(p, "/data", false)
		start = p.Now()
		v.Read(p, f2, vfs.PageSize)
		warm = p.Now() - start
	})
	k.Run()
	if cold < 100*cycles.PerMicrosecond {
		t.Errorf("cold read %s did not include disk time", cycles.Format(cold))
	}
	if warm > 20*cycles.PerMicrosecond {
		t.Errorf("warm read %s should be cache-only", cycles.Format(warm))
	}
	if fs.PageCache().Stats().Hits == 0 {
		t.Error("no page-cache hits recorded")
	}
}

func TestReadaheadBatchesPages(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile(fs.Root(), "big", 8*vfs.PageSize)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/big", false)
		// One read of page 0 triggers a readahead batch covering the
		// whole 8-page file; the rest must be warm.
		v.Read(p, f, vfs.PageSize)
		start := p.Now()
		for i := 0; i < 7; i++ {
			v.Read(p, f, vfs.PageSize)
		}
		if el := p.Now() - start; el > 100*cycles.PerMicrosecond {
			t.Errorf("post-readahead reads took %s", cycles.Format(el))
		}
	})
	k.Run()
	if got := fs.Disk().Stats().Reads; got != 1 {
		t.Errorf("disk reads = %d, want 1 (single batched request)", got)
	}
}

func TestZeroByteReadIsTiny(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile(fs.Root(), "f", vfs.PageSize)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		start := p.Now()
		if n := v.Read(p, f, 0); n != 0 {
			t.Errorf("read(0) = %d", n)
		}
		el := p.Now() - start
		// Figure 3's peak: ~bucket 6-7 (syscall entry + setup).
		if el > 256 {
			t.Errorf("zero-byte read cost %d cycles, want ~128", el)
		}
	})
	k.Run()
}

func TestReaddirFourPaths(t *testing.T) {
	k, fs, v := rig(Config{})
	dir := fs.MustAddDir(fs.Root(), "src")
	for i := 0; i < 3*entriesPerBlock; i++ { // 3 directory blocks
		fs.MustAddFile(dir, fmtName(i), 100)
	}
	var latCold, latWarm, latEOF uint64
	var total int
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/src", false)
		start := p.Now()
		ents := v.Getdents(p, f)
		latCold = p.Now() - start
		total += len(ents)
		for {
			start = p.Now()
			ents = v.Getdents(p, f)
			if len(ents) == 0 {
				latEOF = p.Now() - start
				break
			}
			total += len(ents)
		}
		// Re-read the directory: all blocks now cached.
		f2, _ := v.Open(p, "/src", false)
		start = p.Now()
		v.Getdents(p, f2)
		latWarm = p.Now() - start
	})
	k.Run()
	if total != 3*entriesPerBlock {
		t.Fatalf("entries = %d, want %d", total, 3*entriesPerBlock)
	}
	// The three latency regimes of Figure 7 must be ordered and
	// separated: EOF << warm << cold.
	if latEOF >= latWarm || latWarm >= latCold {
		t.Errorf("latencies EOF=%d warm=%d cold=%d not ordered", latEOF, latWarm, latCold)
	}
	if latEOF > 300 {
		t.Errorf("past-EOF readdir = %d cycles, want ~114", latEOF)
	}
	if latCold < 50*cycles.PerMicrosecond {
		t.Errorf("cold readdir = %s, want disk-scale", cycles.Format(latCold))
	}
}

func fmtName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := make([]byte, 0, 8)
	for {
		name = append(name, letters[i%26])
		i /= 26
		if i == 0 {
			break
		}
	}
	return "f_" + string(name)
}

func TestDirectReadHoldsInodeSem(t *testing.T) {
	k, fs, v := rig(Config{BuggyLlseek: true})
	fs.MustAddFile(fs.Root(), "shared", 1024*vfs.PageSize)
	var llseekMax uint64
	k.Spawn("reader", func(p *sim.Proc) {
		f, _ := v.Open(p, "/shared", true)
		for i := 0; i < 20; i++ {
			v.Llseek(p, f, int64(i)*4096, vfs.SeekSet)
			v.Read(p, f, 512)
		}
	})
	k.Spawn("seeker", func(p *sim.Proc) {
		f, _ := v.Open(p, "/shared", true)
		for i := 0; i < 200; i++ {
			start := p.Now()
			v.Llseek(p, f, 0, vfs.SeekSet)
			if el := p.Now() - start; el > llseekMax {
				llseekMax = el
			}
		}
	})
	k.Run()
	// With the buggy llseek, some seek must have blocked behind the
	// reader's direct I/O (millisecond scale).
	if llseekMax < 100*cycles.PerMicrosecond {
		t.Errorf("llseek never contended: max = %s", cycles.Format(llseekMax))
	}
}

func TestPatchedLlseekCheap(t *testing.T) {
	k, fs, v := rig(Config{BuggyLlseek: false})
	fs.MustAddFile(fs.Root(), "f", 16*vfs.PageSize)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		start := p.Now()
		v.Llseek(p, f, 4096, vfs.SeekSet)
		el := p.Now() - start
		// Patched: ~120 cycles + syscall entry (§6.1).
		if el > 300 {
			t.Errorf("patched llseek = %d cycles", el)
		}
		if f.Pos != 4096 {
			t.Errorf("pos = %d", f.Pos)
		}
	})
	k.Run()
}

func TestWriteDirtiesPagesNoIO(t *testing.T) {
	k, fs, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		f, err := v.Create(p, "/newfile")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		start := p.Now()
		if n := v.Write(p, f, 2*vfs.PageSize); n != 2*vfs.PageSize {
			t.Errorf("write = %d", n)
		}
		if el := p.Now() - start; el > 50*cycles.PerMicrosecond {
			t.Errorf("buffered write took %s (should not touch disk)", cycles.Format(el))
		}
	})
	k.Run()
	if fs.Disk().Stats().Writes != 0 {
		t.Error("buffered write hit the disk synchronously")
	}
	if fs.PageCache().DirtyCount() < 2 {
		t.Errorf("dirty pages = %d, want >= 2", fs.PageCache().DirtyCount())
	}
}

func TestFsyncWritesDirtyPages(t *testing.T) {
	k, fs, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Create(p, "/j")
		v.Write(p, f, 3*vfs.PageSize)
		v.Fsync(p, f)
	})
	k.Run()
	if got := fs.Disk().Stats().Writes; got != 3 {
		t.Errorf("disk writes = %d, want 3", got)
	}
	if fs.PageCache().DirtyOfInode(2) != nil {
		t.Error("pages still dirty after fsync")
	}
}

func TestCreateUnlinkCycle(t *testing.T) {
	k, _, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		if _, err := v.Create(p, "/tmpfile"); err != nil {
			t.Errorf("create: %v", err)
		}
		if _, err := v.Create(p, "/tmpfile"); !errors.Is(err, vfs.ErrExists) {
			t.Errorf("duplicate create: %v", err)
		}
		if err := v.Unlink(p, "/tmpfile"); err != nil {
			t.Errorf("unlink: %v", err)
		}
		if err := v.Unlink(p, "/tmpfile"); !errors.Is(err, vfs.ErrNotFound) {
			t.Errorf("double unlink: %v", err)
		}
	})
	k.Run()
}

func TestMkdirAndNestedResolution(t *testing.T) {
	k, _, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		if err := v.Mkdir(p, "/a"); err != nil {
			t.Errorf("mkdir /a: %v", err)
		}
		if err := v.Mkdir(p, "/a/b"); err != nil {
			t.Errorf("mkdir /a/b: %v", err)
		}
		if _, err := v.Create(p, "/a/b/c"); err != nil {
			t.Errorf("create /a/b/c: %v", err)
		}
		ino, err := v.Stat(p, "/a/b/c")
		if err != nil || ino.Dir {
			t.Errorf("stat: %v %+v", err, ino)
		}
	})
	k.Run()
}

func TestUnlinkNonEmptyDirFails(t *testing.T) {
	k, fs, v := rig(Config{})
	dir := fs.MustAddDir(fs.Root(), "d")
	fs.MustAddFile(dir, "x", 10)
	k.Spawn("w", func(p *sim.Proc) {
		if err := v.Unlink(p, "/d"); !errors.Is(err, vfs.ErrNotEmpty) {
			t.Errorf("unlink non-empty dir: %v", err)
		}
	})
	k.Run()
}

func TestSyncFSDrains(t *testing.T) {
	k, fs, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Create(p, "/x")
		v.Write(p, f, 4*vfs.PageSize)
		fs.Ops().Super.SyncFS(p)
	})
	k.Run()
	if fs.PageCache().DirtyCount() != 0 {
		t.Errorf("dirty pages after sync = %d", fs.PageCache().DirtyCount())
	}
	if fs.Disk().Stats().Writes == 0 {
		t.Error("sync wrote nothing")
	}
}

func TestFileGrowthRelocatesExtent(t *testing.T) {
	k, _, v := rig(Config{})
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Create(p, "/grow")
		for i := 0; i < 30; i++ {
			v.Write(p, f, vfs.PageSize)
		}
		if f.Inode.Size != 30*vfs.PageSize {
			t.Errorf("size = %d", f.Inode.Size)
		}
		// Read everything back through the cache.
		f2, _ := v.Open(p, "/grow", false)
		var got uint64
		for {
			n := v.Read(p, f2, vfs.PageSize)
			if n == 0 {
				break
			}
			got += n
		}
		if got != 30*vfs.PageSize {
			t.Errorf("read back %d bytes", got)
		}
	})
	k.Run()
}
