package ext2

import (
	"fmt"

	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// installOps fills the operation vectors (the analog of the paper's
// Figure 4 ext2_dir_operations). All internal cross-operation calls go
// through fs.Ops() at call time so FoSgen-style instrumentation
// observes them.
func (fs *FS) installOps() {
	bufRead := vfs.GenericFileRead(vfs.ReadParams{Cache: fs.pc, CopyPageCost: 3_500})
	fs.ops = vfs.Ops{
		File: vfs.FileOps{
			Open:    vfs.GenericOpen(fs.cfg.OpenCost),
			Release: vfs.GenericRelease(fs.cfg.ReleaseCost),
			Llseek:  vfs.GenericFileLlseek(fs.cfg.BuggyLlseek),
			Read: func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
				if f.DirectIO {
					return fs.directRead(p, f, n)
				}
				return bufRead(p, f, n)
			},
			Write:   fs.write,
			Readdir: fs.readdir,
			Fsync:   fs.fsync,
		},
		Inode: vfs.InodeOps{
			Lookup: fs.lookup,
			Create: fs.create,
			Unlink: fs.unlink,
			Mkdir:  fs.mkdir,
		},
		Address: vfs.AddressOps{
			ReadPage:  fs.readPage,
			ReadPages: fs.readPages,
			WritePage: fs.writePage,
		},
		Super: vfs.SuperOps{
			WriteSuper: fs.writeSuper,
			SyncFS:     fs.syncFS,
		},
	}
}

// readdir returns the directory entries of the block at the current
// position and advances past it; it returns nil past the end of the
// directory. This is the paper's four-peak operation (§6.2): past-EOF
// returns immediately, cached blocks cost only parsing, and uncached
// blocks initiate readpage and wait for the disk.
func (fs *FS) readdir(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
	ino := f.Inode
	if !ino.Dir {
		return nil
	}
	if f.Pos >= ino.Size {
		// First peak: "reads past the end of directory" (Figure 8).
		p.Exec(fs.cfg.PastEOFCost)
		return nil
	}
	blockIdx := f.Pos / vfs.PageSize
	key := mem.Key{Ino: ino.ID, Index: blockIdx}
	pg := fs.pc.Lookup(key)
	if pg == nil || !pg.Uptodate {
		// "The readdir operation calls the readpage operation for
		// pages not found in the cache" (§6.2) — through the op
		// vector, so profiling sees the nested call.
		ino.FS.Ops().Address.ReadPage(p, ino, blockIdx)
		pg = fs.pc.Peek(key)
		if pg != nil {
			pg.WaitUptodate(p)
		}
	}
	p.Exec(fs.cfg.ParseDirCost)

	// Return at most one user buffer's worth of entries (like
	// getdents with glibc's buffer): a 64-entry block takes several
	// calls, and all but the first are satisfied from the page cache —
	// the paper's large second peak (§6.2).
	info := fs.info(ino)
	lo := int(f.Pos / vfs.DirentSize)
	hi := lo + direntsPerCall
	if blockEnd := (int(blockIdx) + 1) * entriesPerBlock; hi > blockEnd {
		hi = blockEnd
	}
	if hi > len(info.entries) {
		hi = len(info.entries)
	}
	if lo >= hi {
		f.Pos = ino.Size
		return nil
	}
	f.Pos = uint64(hi) * vfs.DirentSize
	out := make([]vfs.DirEntry, hi-lo)
	copy(out, info.entries[lo:hi])
	return out
}

// directRead bypasses the page cache, holding i_sem across the disk
// read exactly like the Linux 2.6.11 O_DIRECT path — the lock the
// paper's llseek profile exposed (§6.1).
func (fs *FS) directRead(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	p.Exec(fs.cfg.DirectSetup)
	if n == 0 || f.Pos >= f.Inode.Size {
		return 0
	}
	if f.Pos+n > f.Inode.Size {
		n = f.Inode.Size - f.Pos
	}
	ino := f.Inode
	info := fs.info(ino)
	ino.Sem.Down(p)
	first := f.Pos / vfs.PageSize
	last := (f.Pos + n - 1) / vfs.PageSize
	fs.d.Read(p, info.start+first, last-first+1)
	ino.Sem.Up(p)
	f.Pos += n
	return n
}

// write copies data into the page cache and dirties the pages; blocks
// are allocated when the file grows (writes return before any disk I/O,
// §4 "Driver-level prolers").
func (fs *FS) write(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	p.Exec(fs.cfg.WriteSetup)
	if n == 0 {
		return 0
	}
	ino := f.Inode
	info := fs.info(ino)
	end := f.Pos + n
	if end > ino.Size {
		ino.Size = end
	}
	if needed := ino.Pages(); needed > info.blocks {
		// Grow the extent; relocation keeps it contiguous.
		grow := needed * 2
		if grow < 8 {
			grow = 8
		}
		info.start = fs.allocData(grow)
		info.blocks = grow
	}
	first := f.Pos / vfs.PageSize
	last := (end - 1) / vfs.PageSize
	now := p.Now()
	for idx := first; idx <= last; idx++ {
		pg, _ := fs.pc.GetOrCreate(mem.Key{Ino: ino.ID, Index: idx})
		pg.Uptodate = true
		p.Exec(fs.cfg.WritePageCost)
		fs.pc.MarkDirty(pg, now)
	}
	f.Pos = end
	fs.balanceDirtyPages(p)
	return n
}

// balanceDirtyPages throttles writers when too much of the cache is
// dirty: the writer itself writes back the oldest dirty pages
// synchronously until under the limit, like the Linux path of the same
// name. This is what makes write-heavy workloads I/O-bound (§5.2's
// Postmark configuration).
func (fs *FS) balanceDirtyPages(p *sim.Proc) {
	limit := fs.cfg.DirtyPageLimit
	if limit <= 0 {
		return
	}
	for fs.pc.DirtyCount() > limit {
		var victim *mem.Page
		for _, pg := range fs.pc.DirtyPages() { // oldest first
			if !pg.IO {
				victim = pg
				break
			}
		}
		if victim == nil {
			return // everything already under writeback
		}
		ino := fs.InodeByID(victim.Key.Ino)
		if ino == nil {
			fs.pc.MarkClean(victim) // file already unlinked
			continue
		}
		ino.FS.Ops().Address.WritePage(p, ino, victim.Key.Index, true)
	}
}

// fsync writes the file's dirty pages synchronously.
func (fs *FS) fsync(p *sim.Proc, f *vfs.File) {
	ino := f.Inode
	for _, pg := range fs.pc.DirtyOfInode(ino.ID) {
		ino.FS.Ops().Address.WritePage(p, ino, pg.Key.Index, true)
	}
}

func (fs *FS) lookup(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
	p.Exec(fs.cfg.LookupCost)
	for _, e := range fs.info(dir).entries {
		if e.Name == name {
			return fs.inodes[e.Ino].ino, true
		}
	}
	return nil, false
}

func (fs *FS) create(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
	p.Exec(fs.cfg.CreateCost)
	ino, err := fs.addEntry(dir, name, false, 0)
	if err != nil {
		return nil, err
	}
	fs.dirtyDirBlock(p, dir)
	return ino, nil
}

func (fs *FS) mkdir(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, error) {
	p.Exec(fs.cfg.CreateCost)
	ino, err := fs.addEntry(dir, name, true, 0)
	if err != nil {
		return nil, err
	}
	fs.dirtyDirBlock(p, dir)
	return ino, nil
}

func (fs *FS) unlink(p *sim.Proc, dir *vfs.Inode, name string) error {
	p.Exec(fs.cfg.UnlinkCost)
	info := fs.info(dir)
	for i, e := range info.entries {
		if e.Name != name {
			continue
		}
		if e.Dir && len(fs.inodes[e.Ino].entries) > 0 {
			return vfs.ErrNotEmpty
		}
		info.entries = append(info.entries[:i], info.entries[i+1:]...)
		dir.Size = uint64(len(info.entries)) * vfs.DirentSize
		fs.pc.InvalidateInode(e.Ino)
		delete(fs.inodes, e.Ino)
		fs.dirtyDirBlock(p, dir)
		return nil
	}
	return fmt.Errorf("%w: %s", vfs.ErrNotFound, name)
}

// dirtyDirBlock marks the directory's last block dirty (metadata
// update), feeding the flushing daemon.
func (fs *FS) dirtyDirBlock(p *sim.Proc, dir *vfs.Inode) {
	idx := uint64(0)
	if dir.Size > 0 {
		idx = (dir.Size - 1) / vfs.PageSize
	}
	pg, _ := fs.pc.GetOrCreate(mem.Key{Ino: dir.ID, Index: idx})
	pg.Uptodate = true
	fs.pc.MarkDirty(pg, p.Now())
}

// readPage initiates the read of a single page (the readdir path).
// It returns after starting the I/O; waiting happens at the caller.
func (fs *FS) readPage(p *sim.Proc, ino *vfs.Inode, idx uint64) {
	p.Exec(fs.cfg.ReadPageInit)
	fs.startRead(p, ino, idx, 1)
}

// readPages initiates a batched readahead of n pages starting at idx
// (the buffered file-read path).
func (fs *FS) readPages(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
	p.Exec(fs.cfg.ReadBatchInit)
	if n == 0 {
		n = 1
	}
	fs.startRead(p, ino, idx, n)
}

// startRead creates the missing pages of [idx, idx+n), marks them under
// I/O and submits a single contiguous disk read; completion validates
// the pages and wakes waiters. The submitting process's trace token
// rides along so the request's queue wait and service time are carved
// out of whatever wait the initiator ends up blocked in.
func (fs *FS) startRead(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
	info := fs.info(ino)
	var pending []*mem.Page
	var first, last uint64
	for i := idx; i < idx+n; i++ {
		pg, created := fs.pc.GetOrCreate(mem.Key{Ino: ino.ID, Index: i})
		if pg.Uptodate || (!created && pg.IO) {
			continue
		}
		pg.IO = true
		if len(pending) == 0 {
			first = i
		}
		last = i
		pending = append(pending, pg)
	}
	if len(pending) == 0 {
		return
	}
	pc := fs.pc
	fs.d.Submit(&disk.Request{
		LBA:    info.start + first,
		Blocks: last - first + 1,
		Trace:  fs.d.TraceToken(p),
		OnComplete: func() {
			for _, pg := range pending {
				pc.MarkUptodate(pg)
			}
		},
	})
}

// writePage writes one page to disk; sync waits for completion.
func (fs *FS) writePage(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {
	info := fs.info(ino)
	pg := fs.pc.Peek(mem.Key{Ino: ino.ID, Index: idx})
	if pg == nil {
		return
	}
	pg.IO = true
	lba := info.start + idx
	if sync {
		fs.d.Write(p, lba, 1)
		fs.pc.MarkClean(pg)
		return
	}
	pc := fs.pc
	fs.d.WriteAsync(lba, 1, func() { pc.MarkClean(pg) })
}

// writeSuper flushes the superblock (async metadata write).
func (fs *FS) writeSuper(p *sim.Proc) {
	p.Exec(1_000)
	fs.d.WriteAsync(0, 1, nil)
}

// syncFS writes back every dirty page and waits for the disk to drain.
func (fs *FS) syncFS(p *sim.Proc) {
	for _, pg := range fs.pc.DirtyPages() {
		info := fs.inodes[pg.Key.Ino]
		if info == nil {
			continue
		}
		pg.IO = true
		pc := fs.pc
		page := pg
		fs.d.WriteAsync(info.start+pg.Key.Index, 1, func() { pc.MarkClean(page) })
	}
	fs.d.Drain(p)
}
