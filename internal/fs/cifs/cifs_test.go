package cifs

import (
	"testing"

	"osprof/internal/core"
	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/fs/ext2"
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/vfs"
	"osprof/internal/workload"
)

// testbed wires a client machine and a server machine (one simulated
// kernel, two CPUs) with the server exporting an ext2 tree over CIFS.
type testbed struct {
	k      *sim.Kernel
	server *Server
	client *Client
	v      *vfs.VFS
	sn     *netsim.Sniffer
}

func newTestbed(clientCfg ClientConfig, dirs int) *testbed {
	k := sim.New(sim.Config{NumCPUs: 2, ContextSwitch: 9_350, WakePreempt: true, Seed: 5})
	sn := &netsim.Sniffer{}
	conn := netsim.NewConn(k, netsim.Config{}, "client", "server", sn)

	sd := disk.New(k, disk.Config{})
	spc := mem.NewCache(k, 8192)
	sfs := ext2.New(k, sd, spc, "ntfs", ext2.Config{})
	workload.BuildTree(sfs, workload.TreeSpec{Seed: 11, Dirs: dirs})

	srv := NewServer(k, sfs, conn.Side(1), ServerConfig{})
	srv.Start()

	cpc := mem.NewCache(k, 8192)
	cl := NewClient(k, conn.Side(0), cpc, "cifs", clientCfg)
	v := vfs.New(k)
	if err := v.Mount("/", cl); err != nil {
		panic(err)
	}
	return &testbed{k: k, server: srv, client: cl, v: v, sn: sn}
}

func TestListingRoundTrip(t *testing.T) {
	tb := newTestbed(WindowsClientConfig(), 6)
	var names int
	tb.k.Spawn("client", func(p *sim.Proc) {
		f, err := tb.v.Open(p, "/src", false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		for {
			ents := tb.v.Getdents(p, f)
			if len(ents) == 0 {
				break
			}
			names += len(ents)
		}
	})
	tb.k.Run()
	if names == 0 {
		t.Fatal("listing returned nothing")
	}
	if tb.server.Requests[msgFindFirst] == 0 {
		t.Error("no FindFirst reached the server")
	}
}

func TestReadThroughCIFS(t *testing.T) {
	tb := newTestbed(WindowsClientConfig(), 4)
	var got uint64
	tb.k.Spawn("client", func(p *sim.Proc) {
		// Find a file via listing, then read it fully.
		cur := "/src"
		d, _ := tb.v.Open(p, cur, false)
		var dirs []string
		var file string
		for file == "" {
			ents := tb.v.Getdents(p, d)
			if len(ents) == 0 {
				if len(dirs) == 0 {
					break
				}
				tb.v.Close(p, d)
				cur = dirs[0]
				dirs = dirs[1:]
				d, _ = tb.v.Open(p, cur, false)
				continue
			}
			for _, e := range ents {
				if e.Dir {
					dirs = append(dirs, cur+"/"+e.Name)
				} else if file == "" {
					file = cur + "/" + e.Name
				}
			}
		}
		if file == "" {
			t.Error("no file found under /src")
			return
		}
		f, err := tb.v.Open(p, file, false)
		if err != nil {
			t.Errorf("open %s: %v", file, err)
			return
		}
		for {
			n := tb.v.Read(p, f, 4096)
			if n == 0 {
				break
			}
			got += n
		}
	})
	tb.k.Run()
	if got == 0 {
		t.Error("read no data over CIFS")
	}
	if tb.server.Requests[msgRead] == 0 {
		t.Error("no READ reached the server")
	}
}

func TestWindowsBigBatchStallsOnDelayedAck(t *testing.T) {
	// A directory with more entries than fit the server's 3-segment
	// window forces a transact continuation, which waits for the
	// delayed ACK: the listing takes >= 200 ms (§6.4, Figure 11).
	tb := newTestbed(WindowsClientConfig(), 12) // includes big dirs
	set := core.NewSet("rpc")
	tb.client.RPCSink = fsprof.SetSink{Set: set}
	tb.k.Spawn("client", func(p *sim.Proc) {
		(&workload.Grep{Sys: tb.v, Root: "/src"}).Run(p)
	})
	tb.k.Run()
	ff := set.Lookup("FindFirst")
	if ff == nil || ff.Count == 0 {
		t.Fatal("no FindFirst profile")
	}
	// The delayed-ACK peak: max FindFirst latency >= 200ms.
	if ff.Max < cycles.DelayedAck {
		t.Errorf("max FindFirst = %s, want >= 200ms", cycles.Format(ff.Max))
	}
	if b := core.BucketFor(ff.Max, 1); b < 26 || b > 31 {
		t.Errorf("FindFirst stall bucket = %d, want 26..31 (Figure 10)", b)
	}
}

func TestLinuxSmallBatchAvoidsStall(t *testing.T) {
	tb := newTestbed(LinuxClientConfig(), 12)
	set := core.NewSet("rpc")
	tb.client.RPCSink = fsprof.SetSink{Set: set}
	tb.k.Spawn("client", func(p *sim.Proc) {
		(&workload.Grep{Sys: tb.v, Root: "/src"}).Run(p)
	})
	tb.k.Run()
	for _, op := range []string{"FindFirst", "FindNext"} {
		prof := set.Lookup(op)
		if prof == nil || prof.Count == 0 {
			continue
		}
		if prof.Max >= cycles.DelayedAck {
			t.Errorf("Linux client %s max = %s: hit a delayed-ACK stall",
				op, cycles.Format(prof.Max))
		}
	}
}

func TestDisablingDelayedAckRemovesStalls(t *testing.T) {
	run := func(delayedAck bool) uint64 {
		tb := newTestbed(WindowsClientConfig(), 12)
		if !delayedAck {
			// The §6.4 registry change, applied on the client side
			// that delays its ACKs.
			tb.client.side.SetDelayedAck(false)
		}
		tb.k.Spawn("client", func(p *sim.Proc) {
			(&workload.Grep{Sys: tb.v, Root: "/src"}).Run(p)
		})
		tb.k.Run()
		return tb.k.Now()
	}
	on, off := run(true), run(false)
	if off >= on {
		t.Errorf("disabling delayed ACKs did not help: on=%s off=%s",
			cycles.Format(on), cycles.Format(off))
	}
	improvement := float64(on-off) / float64(on)
	// The paper measured ~20%; accept a broad band around it.
	if improvement < 0.05 {
		t.Errorf("improvement = %.1f%%, want >= 5%%", improvement*100)
	}
	t.Logf("elapsed improvement from disabling delayed ACKs: %.1f%%", improvement*100)
}

func TestLocalVsRemoteOperationBuckets(t *testing.T) {
	// §6.4: operations in bucket >= 18 involve the server; cached
	// lookups and reads stay in lower buckets.
	tb := newTestbed(WindowsClientConfig(), 6)
	set := core.NewSet("fs")
	fsprof.InstrumentSet(tb.client, set)
	tb.k.Spawn("client", func(p *sim.Proc) {
		(&workload.Grep{Sys: tb.v, Root: "/src"}).Run(p)
	})
	tb.k.Run()
	lk := set.Lookup("lookup")
	if lk == nil {
		t.Fatal("no lookup profile")
	}
	lo, _, ok := lk.Range()
	if !ok || lo >= 18 {
		t.Errorf("no local (cached) lookups: min bucket %d", lo)
	}
	rd := set.Lookup("readdir")
	_, hi, ok := rd.Range()
	if !ok || hi < 18 {
		t.Errorf("readdir never reached the server: max bucket %d", hi)
	}
}
