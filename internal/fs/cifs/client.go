package cifs

import (
	"osprof/internal/fsprof"
	"osprof/internal/mem"
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// ClientConfig distinguishes the two client implementations of §6.4.
type ClientConfig struct {
	// BatchEntries is the directory-listing batch requested per
	// FindFirst/FindNext. The Windows redirector asks for large
	// batches (default 128), whose multi-segment replies cross the
	// server's send window and stall on delayed ACKs; Linux smbfs
	// asks for small batches (32) that fit the window.
	BatchEntries int

	// ReadChunk is the SMB read size in bytes (default 4096, the
	// negotiated buffer).
	ReadChunk uint64

	// LocalCost is the client-side CPU per operation that does not
	// contact the server (default 900 cycles).
	LocalCost uint64
}

// WindowsClientConfig returns the Windows redirector behavior.
func WindowsClientConfig() ClientConfig {
	return ClientConfig{BatchEntries: 128, ReadChunk: 4096, LocalCost: 900}
}

// LinuxClientConfig returns the Linux smbfs behavior.
func LinuxClientConfig() ClientConfig {
	return ClientConfig{BatchEntries: 32, ReadChunk: 4096, LocalCost: 900}
}

// Client is a CIFS client file system mountable in the local VFS.
type Client struct {
	name string
	k    *sim.Kernel
	side *netsim.Side
	pc   *mem.Cache
	cfg  ClientConfig

	ops  vfs.Ops
	root *vfs.Inode

	// RPCSink, when set, receives the latency of each wire operation
	// under the names FindFirst, FindNext, SMBRead, SMBLookup — the
	// operations a Windows filter driver sees as IRPs (§4).
	RPCSink fsprof.Sink

	inodes  map[uint64]*vfs.Inode        // by server inode number
	dcache  map[uint64]map[string]uint64 // dir ino -> name -> ino
	dirEOF  map[*vfs.File]bool           // listing finished
	rpcCost uint64
}

var _ vfs.FileSystem = (*Client)(nil)

// NewClient creates a CIFS client over side, caching pages in pc.
func NewClient(k *sim.Kernel, side *netsim.Side, pc *mem.Cache, name string, cfg ClientConfig) *Client {
	if cfg.BatchEntries == 0 {
		cfg = WindowsClientConfig()
	}
	c := &Client{
		name:    name,
		k:       k,
		side:    side,
		pc:      pc,
		cfg:     cfg,
		inodes:  make(map[uint64]*vfs.Inode),
		dcache:  make(map[uint64]map[string]uint64),
		dirEOF:  make(map[*vfs.File]bool),
		rpcCost: 2_500,
	}
	c.root = c.makeInode(0, true, 0)
	c.installOps()
	return c
}

// Name implements vfs.FileSystem.
func (c *Client) Name() string { return c.name }

// Root implements vfs.FileSystem.
func (c *Client) Root() *vfs.Inode { return c.root }

// Ops implements vfs.FileSystem.
func (c *Client) Ops() *vfs.Ops { return &c.ops }

func (c *Client) makeInode(serverIno uint64, dir bool, size uint64) *vfs.Inode {
	if ino, ok := c.inodes[serverIno]; ok {
		return ino
	}
	ino := &vfs.Inode{
		ID:   serverIno,
		Dir:  dir,
		Size: size,
		Sem:  sim.NewSemaphore(c.k, "cifs_i_sem"),
		FS:   c,
	}
	c.inodes[serverIno] = ino
	return ino
}

// rpc performs one synchronous wire operation, recording its latency.
// A windowed server reply arrives as several link-level messages; only
// the final one carries the payload.
func (c *Client) rpc(p *sim.Proc, op string, req request) reply {
	start := p.ReadTSC()
	p.Exec(c.rpcCost)
	c.side.Send(p, req.Type, 64+len(req.Name), req)
	var rep reply
	for {
		m := c.side.Recv(p)
		if m.Data != nil {
			rep = m.Data.(reply)
			break
		}
	}
	if c.RPCSink != nil {
		c.RPCSink.Record(op, p.Now(), p.ReadTSC()-start)
	}
	return rep
}

func (c *Client) installOps() {
	c.ops = vfs.Ops{
		File: vfs.FileOps{
			Open:    vfs.GenericOpen(150),
			Release: c.release,
			Llseek:  vfs.GenericFileLlseek(false),
			Read:    c.read,
			Readdir: c.readdir,
			Write: func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
				p.Exec(c.cfg.LocalCost)
				return 0 // the §6.4 workloads are read-only
			},
			Fsync: func(p *sim.Proc, f *vfs.File) { p.Exec(c.cfg.LocalCost) },
		},
		Inode: vfs.InodeOps{
			Lookup: c.lookup,
		},
		Address: vfs.AddressOps{
			// Network pages are filled by SMBRead inside read; these
			// initiate nothing but exist so generic code can run.
			ReadPage:  func(p *sim.Proc, ino *vfs.Inode, idx uint64) { p.Exec(c.cfg.LocalCost) },
			ReadPages: func(p *sim.Proc, ino *vfs.Inode, idx, n uint64) { p.Exec(c.cfg.LocalCost) },
			WritePage: func(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {},
		},
		Super: vfs.SuperOps{
			WriteSuper: func(p *sim.Proc) { p.Exec(c.cfg.LocalCost) },
			SyncFS:     func(p *sim.Proc) { p.Exec(c.cfg.LocalCost) },
		},
	}
}

func (c *Client) release(p *sim.Proc, f *vfs.File) {
	p.Exec(100)
	delete(c.dirEOF, f)
}

// lookup resolves via the client dcache, falling back to a LOOKUP RPC.
// Entries learned from directory listings resolve locally — the
// "buckets to the left of [18] were local to the client" behavior.
func (c *Client) lookup(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
	p.Exec(c.cfg.LocalCost)
	if names := c.dcache[dir.ID]; names != nil {
		if ino, ok := names[name]; ok {
			return c.inodes[ino], true
		}
	}
	rep := c.rpc(p, "SMBLookup", request{Type: msgLookup, Ino: dir.ID, Name: name})
	if !rep.Found {
		return nil, false
	}
	ino := c.makeInode(rep.Ino, rep.Dir, rep.Size)
	c.cacheEntry(dir.ID, name, rep.Ino)
	return ino, true
}

func (c *Client) cacheEntry(dirIno uint64, name string, ino uint64) {
	names := c.dcache[dirIno]
	if names == nil {
		names = make(map[string]uint64)
		c.dcache[dirIno] = names
	}
	names[name] = ino
}

// readdir fetches the next listing batch: FindFirst on the first call,
// FindNext with the cookie afterwards (§6.4).
func (c *Client) readdir(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
	if c.dirEOF[f] {
		p.Exec(60) // past-EOF: local, immediate
		return nil
	}
	op, typ := "FindFirst", msgFindFirst
	if f.Pos > 0 {
		op, typ = "FindNext", msgFindNext
	}
	rep := c.rpc(p, op, request{
		Type:   typ,
		Ino:    f.Inode.ID,
		Cookie: int(f.Pos / vfs.DirentSize),
		Max:    c.cfg.BatchEntries,
	})
	for _, e := range rep.Entries {
		// FindFirst "returns all matching file names along with their
		// associated metadata": populate the local caches.
		c.makeInode(e.Ino, e.Dir, 0)
		c.cacheEntry(f.Inode.ID, e.Name, e.Ino)
	}
	f.Pos += uint64(len(rep.Entries)) * vfs.DirentSize
	if rep.EOF {
		c.dirEOF[f] = true
	}
	return rep.Entries
}

// read serves from the client page cache, fetching missing pages with
// SMBRead RPCs of ReadChunk bytes.
func (c *Client) read(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	p.Exec(c.cfg.LocalCost)
	if n == 0 {
		return 0
	}
	ino := f.Inode
	var done uint64
	for done < n {
		idx := (f.Pos + done) / vfs.PageSize
		key := mem.Key{Ino: ino.ID, Index: idx}
		pg := c.pc.Lookup(key)
		if pg == nil || !pg.Uptodate {
			rep := c.rpc(p, "SMBRead", request{
				Type:   msgRead,
				Ino:    ino.ID,
				Offset: idx * vfs.PageSize,
				Bytes:  c.cfg.ReadChunk,
			})
			if rep.Size == 0 {
				break // EOF on the server
			}
			pages := (rep.Size + vfs.PageSize - 1) / vfs.PageSize
			for i := uint64(0); i < pages; i++ {
				got, _ := c.pc.GetOrCreate(mem.Key{Ino: ino.ID, Index: idx + i})
				c.pc.MarkUptodate(got)
			}
			if eofAt := idx*vfs.PageSize + rep.Size; rep.EOF && ino.Size < eofAt {
				ino.Size = eofAt
			}
			pg = c.pc.Peek(key)
		}
		p.Exec(1_000) // copy to the application
		step := vfs.PageSize - (f.Pos+done)%vfs.PageSize
		if done+step > n {
			step = n - done
		}
		done += step
		if ino.Size > 0 && f.Pos+done >= ino.Size {
			if f.Pos+done > ino.Size {
				done = ino.Size - f.Pos
			}
			break
		}
	}
	f.Pos += done
	return done
}
