// Package cifs implements the paper's §6.4 network-file-system setup:
// an SMB/CIFS server exporting a local file system over the simulated
// 100 Mbps link, a Windows-style client whose directory listings ask
// for large batches (so multi-segment replies cross the server's
// send-window boundary and stall on delayed ACKs), and a Linux
// smbfs-style client that requests small batches and issues the next
// request immediately, piggybacking the ACK.
package cifs

import (
	"osprof/internal/netsim"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Message types of the miniature SMB dialect.
const (
	msgFindFirst = "FIND_FIRST"
	msgFindNext  = "FIND_NEXT"
	msgRead      = "READ"
	msgLookup    = "LOOKUP"
	msgReply     = "reply"
)

// entryWireSize is the bytes one directory entry occupies in a
// FindFirst/FindNext reply (name plus metadata).
const entryWireSize = 48

// request is the client-to-server RPC payload.
type request struct {
	Type   string
	Ino    uint64 // directory or file inode on the server
	Name   string // for LOOKUP
	Cookie int    // entry offset for FIND_NEXT
	Max    int    // batch size requested
	Offset uint64 // for READ
	Bytes  uint64 // for READ
}

// reply is the server-to-client payload.
type reply struct {
	Entries []vfs.DirEntry
	Ino     uint64
	Dir     bool
	Size    uint64
	Found   bool
	EOF     bool
}

// ServerConfig tunes the server.
type ServerConfig struct {
	// Window is the number of segments the server sends before
	// waiting for a full acknowledgment (default 3, producing the
	// Figure 11 pattern: reply + 2 continuations, then a stall).
	Window int

	// ProcessCPU is the per-request server CPU cost (default 80,000
	// cycles ≈ 47 us of SMB parsing and marshaling).
	ProcessCPU uint64
}

func (c *ServerConfig) applyDefaults() {
	if c.Window == 0 {
		c.Window = 3
	}
	if c.ProcessCPU == 0 {
		c.ProcessCPU = 80_000
	}
}

// Server serves a local file system over a connection endpoint.
type Server struct {
	k    *sim.Kernel
	fs   vfs.FileSystem
	side *netsim.Side
	cfg  ServerConfig

	// handles maps inode numbers the client has seen to inodes, like
	// a real server's open-handle table. Handle 0 is the share root.
	handles map[uint64]*vfs.Inode

	// Requests counts RPCs served, by type.
	Requests map[string]int
}

// NewServer creates a CIFS server exporting fs on side.
func NewServer(k *sim.Kernel, fs vfs.FileSystem, side *netsim.Side, cfg ServerConfig) *Server {
	cfg.applyDefaults()
	return &Server{
		k: k, fs: fs, side: side, cfg: cfg,
		handles:  map[uint64]*vfs.Inode{0: fs.Root()},
		Requests: make(map[string]int),
	}
}

// Start spawns the server daemon process.
func (s *Server) Start() {
	s.k.SpawnDaemon("cifsd", func(p *sim.Proc) {
		for {
			msg := s.side.Recv(p)
			req := msg.Data.(request)
			s.Requests[req.Type]++
			p.Exec(s.cfg.ProcessCPU)
			s.handle(p, req)
		}
	})
}

func (s *Server) handle(p *sim.Proc, req request) {
	ops := s.fs.Ops()
	switch req.Type {
	case msgLookup:
		dir := s.inode(req.Ino)
		var rep reply
		if dir != nil {
			if ino, ok := ops.Inode.Lookup(p, dir, req.Name); ok {
				s.handles[ino.ID] = ino
				rep = reply{Found: true, Ino: ino.ID, Dir: ino.Dir, Size: ino.Size}
			}
		}
		s.send(p, rep, 64)

	case msgFindFirst, msgFindNext:
		dir := s.inode(req.Ino)
		if dir == nil {
			s.send(p, reply{}, 64)
			return
		}
		// Collect the whole listing server-side (through the real FS,
		// including its disk I/O), then return the requested slice.
		entries := s.listDir(p, dir)
		lo := req.Cookie
		hi := lo + req.Max
		if lo > len(entries) {
			lo = len(entries)
		}
		if hi > len(entries) {
			hi = len(entries)
		}
		batch := entries[lo:hi]
		// Register handles for the entries the client now knows,
		// charging the metadata cost a real server pays per entry.
		for _, e := range batch {
			if _, ok := s.handles[e.Ino]; ok {
				continue
			}
			if ino, ok := ops.Inode.Lookup(p, dir, e.Name); ok {
				s.handles[ino.ID] = ino
			}
		}
		rep := reply{Entries: batch, EOF: hi == len(entries)}
		s.sendWindowed(p, rep, 64+len(batch)*entryWireSize)

	case msgRead:
		ino := s.inode(req.Ino)
		if ino == nil {
			s.send(p, reply{}, 64)
			return
		}
		f := ops.File.Open(p, ino, false)
		f.Pos = req.Offset
		n := ops.File.Read(p, f, req.Bytes)
		if rel := ops.File.Release; rel != nil {
			rel(p, f)
		}
		s.send(p, reply{Size: n, EOF: n < req.Bytes}, 64+int(n))
	}
}

// listDir reads a directory through the exported FS.
func (s *Server) listDir(p *sim.Proc, dir *vfs.Inode) []vfs.DirEntry {
	ops := s.fs.Ops()
	f := ops.File.Open(p, dir, false)
	var out []vfs.DirEntry
	for {
		batch := ops.File.Readdir(p, f)
		if len(batch) == 0 {
			break
		}
		out = append(out, batch...)
	}
	if rel := ops.File.Release; rel != nil {
		rel(p, f)
	}
	return out
}

// send transmits a small reply (fits the window, no ACK wait).
func (s *Server) send(p *sim.Proc, rep reply, bytes int) {
	s.side.Send(p, msgReply, bytes, rep)
}

// sendWindowed transmits a reply honoring the send window: after each
// window of segments the server waits until everything so far is
// acknowledged before sending the transact continuation — the §6.4
// pathology.
func (s *Server) sendWindowed(p *sim.Proc, rep reply, bytes int) {
	mss := 1460
	windowBytes := s.cfg.Window * mss
	if bytes <= windowBytes {
		s.side.Send(p, msgReply, bytes, rep)
		return
	}
	sent := 0
	part := 0
	for sent < bytes {
		chunk := windowBytes
		lastChunk := sent+chunk >= bytes
		if lastChunk {
			chunk = bytes - sent
		}
		if part > 0 {
			// The server "does not continue to send data until it
			// has received an ACK for everything until that point".
			s.side.WaitAcked(p)
		}
		var payload any
		label := msgReply
		if lastChunk {
			payload = rep // the message completes with the final part
			label = "transact continuation"
		} else if part > 0 {
			label = "transact continuation"
		}
		s.side.Send(p, label, chunk, payload)
		sent += chunk
		part++
	}
}

// inode resolves a handle the client previously obtained.
func (s *Server) inode(id uint64) *vfs.Inode { return s.handles[id] }
