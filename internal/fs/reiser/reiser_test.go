package reiser

import (
	"testing"

	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

func rig(cfg Config) (*sim.Kernel, *FS, *vfs.VFS) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100, WakePreempt: true})
	d := disk.New(k, disk.Config{})
	pc := mem.NewCache(k, 4096)
	fs := New(k, d, pc, "reiserfs", cfg)
	v := vfs.New(k)
	if err := v.Mount("/", fs); err != nil {
		panic(err)
	}
	return k, fs, v
}

func TestReadWorks(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile("data", 3*vfs.PageSize)
	k.Spawn("r", func(p *sim.Proc) {
		f, err := v.Open(p, "/data", false)
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		var got uint64
		for {
			n := v.Read(p, f, vfs.PageSize)
			if n == 0 {
				break
			}
			got += n
		}
		if got != 3*vfs.PageSize {
			t.Errorf("read %d bytes", got)
		}
	})
	k.Run()
}

func TestWriteAccruesJournalWork(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile("f", vfs.PageSize)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		v.Write(p, f, 2*vfs.PageSize)
	})
	k.Run()
	if fs.journalDirty == 0 {
		t.Error("write accrued no journal work")
	}
}

func TestWriteSuperFlushesJournalUnderLock(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile("f", vfs.PageSize)
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		v.Write(p, f, 4*vfs.PageSize)
		fs.Ops().Super.WriteSuper(p)
	})
	k.Run()
	if fs.journalDirty != 0 {
		t.Error("journal still dirty after write_super")
	}
	if fs.Disk().Stats().Writes == 0 {
		t.Error("write_super wrote nothing")
	}
}

func TestWriteSuperStallsConcurrentReads(t *testing.T) {
	// The Figure 9 contention: a read issued while write_super holds
	// the FS lock waits for the whole journal flush.
	k, fs, v := rig(Config{JournalBlocks: 16})
	fs.MustAddFile("hot", 64*vfs.PageSize)
	var maxRead uint64
	k.Spawn("reader", func(p *sim.Proc) {
		f, _ := v.Open(p, "/hot", false)
		for i := 0; i < 200; i++ {
			start := p.Now()
			if v.Read(p, f, vfs.PageSize) == 0 {
				v.Llseek(p, f, 0, vfs.SeekSet)
			}
			if el := p.Now() - start; el > maxRead {
				maxRead = el
			}
			p.ExecUser(50_000)
		}
	})
	k.Spawn("writer", func(p *sim.Proc) {
		f, _ := v.Open(p, "/hot", false)
		for i := 0; i < 4; i++ {
			v.Write(p, f, 8*vfs.PageSize)
			fs.Ops().Super.WriteSuper(p)
			p.ExecUser(100_000)
		}
	})
	k.Run()
	// A journal flush writes 16 blocks synchronously: several ms.
	if maxRead < 2*cycles.PerMillisecond {
		t.Errorf("no read stalled behind write_super: max = %s",
			cycles.Format(maxRead))
	}
	if fs.Lock().Stats().Contentions == 0 {
		t.Error("FS lock never contended")
	}
}

func TestSuperDaemonPeriodicity(t *testing.T) {
	k, fs, v := rig(Config{SuperInterval: 50 * cycles.PerMillisecond, JournalBlocks: 4})
	fs.MustAddFile("f", 8*vfs.PageSize)
	fs.StartSuperDaemon()
	k.Spawn("w", func(p *sim.Proc) {
		f, _ := v.Open(p, "/f", false)
		for i := 0; i < 5; i++ {
			v.Write(p, f, vfs.PageSize)
			v.Llseek(p, f, 0, vfs.SeekSet)
			p.Sleep(60 * cycles.PerMillisecond)
		}
	})
	k.Run()
	// The daemon ran several times over ~300ms.
	if fs.Disk().Stats().Writes < 3 {
		t.Errorf("daemon flushes wrote %d blocks, want >= 3", fs.Disk().Stats().Writes)
	}
}

func TestReaddirAndLookup(t *testing.T) {
	k, fs, v := rig(Config{})
	fs.MustAddFile("a", 100)
	fs.MustAddFile("b", 200)
	k.Spawn("r", func(p *sim.Proc) {
		f, _ := v.Open(p, "/", false)
		ents := v.Getdents(p, f)
		if len(ents) != 2 {
			t.Errorf("entries = %d", len(ents))
		}
		if more := v.Getdents(p, f); len(more) != 0 {
			t.Error("second getdents not empty")
		}
		if _, err := v.Stat(p, "/b"); err != nil {
			t.Errorf("stat: %v", err)
		}
	})
	k.Run()
}
