// Package reiser implements a Reiserfs-3.6-like journaling file system
// exhibiting the paper's Figure 9 behavior: the periodic write_super
// operation (driven by the 5-second buffer-flushing daemon on Linux
// 2.4.24) flushes the journal while holding the file-system-wide lock
// that the read path also takes, so reads issued during a journal flush
// stall for tens of milliseconds every five seconds. Sampled profiles
// make the periodicity visible where an accumulated profile would blur
// it.
package reiser

import (
	"fmt"

	"osprof/internal/cycles"
	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Config tunes the journal and lock behavior.
type Config struct {
	// JournalBlocks is how many blocks a write_super flush writes
	// synchronously while holding the lock (default 24).
	JournalBlocks int

	// SuperInterval is the period of the kupdate-style daemon calling
	// write_super (default 5 s, §6.3).
	SuperInterval uint64

	// ReadLockCost is extra CPU in the locked section of a read
	// (default 500).
	ReadLockCost uint64
}

func (c *Config) applyDefaults() {
	if c.JournalBlocks == 0 {
		c.JournalBlocks = 24
	}
	if c.SuperInterval == 0 {
		c.SuperInterval = 5 * cycles.PerSecond
	}
	if c.ReadLockCost == 0 {
		c.ReadLockCost = 500
	}
}

// FS is the simulated Reiserfs.
type FS struct {
	name string
	k    *sim.Kernel
	d    *disk.Disk
	pc   *mem.Cache
	cfg  Config

	ops  vfs.Ops
	root *vfs.Inode

	// lock is the FS-wide lock shared by the read path and
	// write_super (the Linux 2.4 big kernel lock usage pattern).
	lock *sim.Semaphore

	inodes       map[uint64]*inodeInfo
	rootEntries  []vfs.DirEntry
	nextIno      uint64
	nextBlock    uint64
	journalStart uint64
	journalDirty int
}

type inodeInfo struct {
	ino    *vfs.Inode
	start  uint64
	blocks uint64
}

var _ vfs.FileSystem = (*FS)(nil)

// New formats a Reiserfs over d.
func New(k *sim.Kernel, d *disk.Disk, pc *mem.Cache, name string, cfg Config) *FS {
	cfg.applyDefaults()
	fs := &FS{
		name:   name,
		k:      k,
		d:      d,
		pc:     pc,
		cfg:    cfg,
		lock:   sim.NewSemaphore(k, "reiser-lock"),
		inodes: make(map[uint64]*inodeInfo),
	}
	fs.journalStart = 1
	fs.nextBlock = uint64(cfg.JournalBlocks) + 1
	fs.root = fs.newInode(true)
	fs.installOps()
	return fs
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return fs.name }

// Root implements vfs.FileSystem.
func (fs *FS) Root() *vfs.Inode { return fs.root }

// Ops implements vfs.FileSystem.
func (fs *FS) Ops() *vfs.Ops { return &fs.ops }

// Lock exposes the FS-wide lock for contention assertions.
func (fs *FS) Lock() *sim.Semaphore { return fs.lock }

// Disk exposes the underlying drive.
func (fs *FS) Disk() *disk.Disk { return fs.d }

// StartSuperDaemon spawns the periodic write_super daemon (§6.3).
func (fs *FS) StartSuperDaemon() {
	fs.k.SpawnDaemon("kupdate", func(p *sim.Proc) {
		for {
			p.Sleep(fs.cfg.SuperInterval)
			fs.Ops().Super.WriteSuper(p)
		}
	})
}

func (fs *FS) newInode(dir bool) *vfs.Inode {
	fs.nextIno++
	ino := &vfs.Inode{
		ID:  fs.nextIno,
		Dir: dir,
		Sem: sim.NewSemaphore(fs.k, fmt.Sprintf("r_i_sem:%d", fs.nextIno)),
		FS:  fs,
	}
	info := &inodeInfo{ino: ino}
	ino.Data = info
	fs.inodes[ino.ID] = info
	return ino
}

// MustAddFile creates a file of the given size in the root directory
// (offline, no simulated cost).
func (fs *FS) MustAddFile(name string, size uint64) *vfs.Inode {
	ino := fs.newInode(false)
	info := ino.Data.(*inodeInfo)
	blocks := (size + vfs.PageSize - 1) / vfs.PageSize
	info.start = fs.nextBlock
	info.blocks = blocks
	fs.nextBlock += blocks
	ino.Size = size
	fs.rootEntries = append(fs.rootEntries, vfs.DirEntry{Name: name, Ino: ino.ID})
	fs.root.Size = uint64(len(fs.rootEntries)) * vfs.DirentSize
	return ino
}

func (fs *FS) installOps() {
	bufRead := vfs.GenericFileRead(vfs.ReadParams{Cache: fs.pc})
	fs.ops = vfs.Ops{
		File: vfs.FileOps{
			Open:    vfs.GenericOpen(150),
			Release: vfs.GenericRelease(100),
			Llseek:  vfs.GenericFileLlseek(false),
			Read: func(p *sim.Proc, f *vfs.File, n uint64) uint64 {
				// The read path takes the FS-wide lock (§6.3).
				fs.lock.Down(p)
				p.Exec(fs.cfg.ReadLockCost)
				r := bufRead(p, f, n)
				fs.lock.Up(p)
				return r
			},
			Write: fs.write,
			Readdir: func(p *sim.Proc, f *vfs.File) []vfs.DirEntry {
				p.Exec(2_000)
				if f.Pos >= f.Inode.Size {
					return nil
				}
				f.Pos = f.Inode.Size
				out := make([]vfs.DirEntry, len(fs.rootEntries))
				copy(out, fs.rootEntries)
				return out
			},
			Fsync: func(p *sim.Proc, f *vfs.File) {
				fs.Ops().Super.WriteSuper(p)
			},
		},
		Inode: vfs.InodeOps{
			Lookup: func(p *sim.Proc, dir *vfs.Inode, name string) (*vfs.Inode, bool) {
				p.Exec(300)
				for _, e := range fs.rootEntries {
					if e.Name == name {
						return fs.inodes[e.Ino].ino, true
					}
				}
				return nil, false
			},
		},
		Address: vfs.AddressOps{
			ReadPage:  fs.readPage,
			ReadPages: fs.readPages,
			WritePage: func(p *sim.Proc, ino *vfs.Inode, idx uint64, sync bool) {},
		},
		Super: vfs.SuperOps{
			WriteSuper: fs.writeSuper,
			SyncFS:     fs.writeSuper,
		},
	}
}

// write dirties pages and accrues journal work for the next
// write_super.
func (fs *FS) write(p *sim.Proc, f *vfs.File, n uint64) uint64 {
	p.Exec(600)
	if n == 0 {
		return 0
	}
	ino := f.Inode
	end := f.Pos + n
	if end > ino.Size {
		ino.Size = end
	}
	first := f.Pos / vfs.PageSize
	last := (end - 1) / vfs.PageSize
	now := p.Now()
	fs.lock.Down(p)
	for idx := first; idx <= last; idx++ {
		pg, _ := fs.pc.GetOrCreate(mem.Key{Ino: ino.ID, Index: idx})
		pg.Uptodate = true
		p.Exec(1_200)
		fs.pc.MarkDirty(pg, now)
		fs.journalDirty++
	}
	fs.lock.Up(p)
	f.Pos = end
	return n
}

// writeSuper flushes the journal synchronously while holding the
// FS-wide lock: the source of the Figure 9 read stalls.
func (fs *FS) writeSuper(p *sim.Proc) {
	fs.lock.Down(p)
	p.Exec(2_000)
	blocks := fs.journalDirty
	if blocks > fs.cfg.JournalBlocks {
		blocks = fs.cfg.JournalBlocks
	}
	for i := 0; i < blocks; i++ {
		fs.d.Write(p, fs.journalStart+uint64(i), 1)
	}
	if blocks > 0 {
		for _, pg := range fs.pc.DirtyPages() {
			fs.pc.MarkClean(pg)
		}
	}
	fs.journalDirty = 0
	fs.lock.Up(p)
}

func (fs *FS) readPage(p *sim.Proc, ino *vfs.Inode, idx uint64) {
	p.Exec(1_200)
	fs.startRead(p, ino, idx, 1)
}

func (fs *FS) readPages(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
	p.Exec(1_800)
	if n == 0 {
		n = 1
	}
	fs.startRead(p, ino, idx, n)
}

func (fs *FS) startRead(p *sim.Proc, ino *vfs.Inode, idx, n uint64) {
	info := ino.Data.(*inodeInfo)
	var pending []*mem.Page
	var first, last uint64
	for i := idx; i < idx+n; i++ {
		pg, created := fs.pc.GetOrCreate(mem.Key{Ino: ino.ID, Index: i})
		if pg.Uptodate || (!created && pg.IO) {
			continue
		}
		pg.IO = true
		if len(pending) == 0 {
			first = i
		}
		last = i
		pending = append(pending, pg)
	}
	if len(pending) == 0 {
		return
	}
	pc := fs.pc
	fs.d.Submit(&disk.Request{
		LBA:    info.start + first,
		Blocks: last - first + 1,
		Trace:  fs.d.TraceToken(p),
		OnComplete: func() {
			for _, pg := range pending {
				pc.MarkUptodate(pg)
			}
		},
	})
}
