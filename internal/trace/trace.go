// Package trace decomposes simulated request latency across kernel
// layers. Each traced request carries an entry/exit-paired tree of
// layer spans — VFS syscall → file system → page cache → driver →
// disk (and the network for CIFS) — collected from hooks threaded
// through the sim stack. The tree is folded, at request exit, into
// ordinary log-bucket profiles (internal/core) under derived operation
// names, so every downstream surface (envelopes, archive, diff,
// identify, serve) consumes per-layer data with no format change:
//
//	read@fs         the request's self-time inside file-system code
//	read@pagecache  time blocked waiting for a page to become uptodate
//	read@driver     request queue wait (submit → disk head start)
//	read@disk       mechanical service time (seek + rotation + transfer)
//	read@net        time blocked on the simulated network
//	read@vfs        VFS dispatch self-time
//	read@crit:fs    the request's *inclusive* latency, recorded under
//	                the layer holding the largest self-time share — the
//	                critical-path attribution of that request
//
// The decomposition is additive: a child span's inclusive time is
// subtracted from its parent's self-time, and asynchronous disk
// completions credit the driver/disk layers through a generation-
// guarded token (see Token) so a flusher's writeback never pollutes a
// foreground request that already returned.
//
// Hooks are pure observers — they consume no simulated CPU and
// schedule no events — so a run with tracing disabled is byte-
// identical to a run of a build without tracing at all, and a traced
// run keeps the exact same event timeline (only the recorded profile
// set grows).
package trace

import (
	"strings"

	"osprof/internal/core"
	"osprof/internal/load"
	"osprof/internal/sim"
)

// Layer identifies one level of the simulated storage stack.
type Layer uint8

const (
	LayerVFS Layer = iota
	LayerFS
	LayerPageCache
	LayerDriver
	LayerDisk
	LayerNet
	numLayers
)

var layerNames = [numLayers]string{"vfs", "fs", "pagecache", "driver", "disk", "net"}

// String returns the layer's short name as used in op suffixes.
func (l Layer) String() string {
	if int(l) < len(layerNames) {
		return layerNames[l]
	}
	return "layer?"
}

// LayerNames returns the layer names in stack order (vfs first). The
// slice is shared; callers must not modify it.
func LayerNames() []string { return layerNames[:] }

// frame is one open span on a process's layer stack.
type frame struct {
	layer Layer
	start uint64 // ReadTSC at entry
	child uint64 // inclusive time of completed children
}

// procState is the tracer's per-process state. Spans never cross
// processes — a request is one process's journey through the stack —
// so the state needs no locking: the sim kernel runs one process at a
// time.
type procState struct {
	open  bool   // a root span is open
	op    string // root operation name
	gen   uint32 // root generation, guards async Token credits
	skip  int    // depth of entries being ignored (no root open)
	stack []frame
	self  [numLayers]uint64
}

// opHandles caches the derived profiles of one root operation so the
// steady-state fold is allocation-free: names are concatenated and
// profiles created the first time a (op, layer) pair is touched.
type opHandles struct {
	layer [numLayers]*core.Profile
	crit  [numLayers]*core.Profile

	// load is the load-companion handle when the run is conditioned;
	// loadFrom tracks the recorder it was bound against so a later
	// SetLoadRecorder rebinds instead of folding into a stale set.
	load     *load.Handle
	loadFrom *load.Recorder
}

// Tracer collects span trees for every non-daemon process and folds
// them into a profile set. A nil *Tracer is valid and inert: every
// hook is a nil-safe no-op, so the instrumented stack carries tracer
// fields unconditionally and pays nothing when tracing is off.
type Tracer struct {
	set   *core.Set
	procs []procState
	ops   map[string]*opHandles
	loads *load.Recorder
}

// New creates a tracer folding into set.
func New(set *core.Set) *Tracer {
	return &Tracer{set: set, ops: make(map[string]*opHandles)}
}

// SetLoadRecorder makes the tracer also record each request's
// inclusive latency into load-keyed companion profiles. Used when load
// profiling is enabled on a traced run with no fs/user probe — the
// probe otherwise owns the load dimension so samples are not counted
// twice. Nil-safe on a nil tracer.
func (t *Tracer) SetLoadRecorder(r *load.Recorder) {
	if t == nil {
		return
	}
	t.loads = r
}

// state returns the per-process state, growing the dense table on
// first sight of a process.
func (t *Tracer) state(p *sim.Proc) *procState {
	id := p.ID()
	for id >= len(t.procs) {
		t.procs = append(t.procs, procState{})
	}
	return &t.procs[id]
}

// Durations are computed with sim.TSCDelta: TSC skew between simulated
// CPUs can make a migrating process observe a smaller counter at exit
// than at entry, exactly as on real hardware (§5.2), and a negative
// duration must not wrap.

// BeginRoot opens a request's root span at VFS syscall entry. Daemon
// processes are ignored entirely. A nested BeginRoot (a syscall made
// while a root is already open, e.g. through a raw mount handle) opens
// a skip region so the matching EndRoot stays balanced.
func (t *Tracer) BeginRoot(p *sim.Proc, op string) {
	if t == nil || p.Daemon() {
		return
	}
	ps := t.state(p)
	if ps.open || ps.skip > 0 {
		ps.skip++
		return
	}
	ps.open = true
	ps.op = op
	ps.gen++
	ps.self = [numLayers]uint64{}
	ps.stack = append(ps.stack[:0], frame{layer: LayerVFS, start: p.ReadTSC()})
}

// EndRoot closes the root span and folds the finished tree into the
// profile set: one self-time sample per touched layer, plus the
// request's inclusive latency under op@crit:<dominant layer>.
func (t *Tracer) EndRoot(p *sim.Proc) {
	if t == nil || p.Daemon() {
		return
	}
	ps := t.state(p)
	if ps.skip > 0 {
		ps.skip--
		return
	}
	if !ps.open || len(ps.stack) != 1 {
		// Unbalanced exit (a layer span leaked); drop the tree rather
		// than record garbage. The generation bump already invalidated
		// any outstanding tokens.
		ps.open = false
		ps.stack = ps.stack[:0]
		return
	}
	f := &ps.stack[0]
	incl := sim.TSCDelta(p.ReadTSC(), f.start)
	ps.self[LayerVFS] += sim.TSCDelta(incl, f.child)

	h := t.handles(ps.op)
	if t.loads != nil {
		// Load-conditioned companion profile of the request's inclusive
		// latency. Like every hook this is a pure observation — the load
		// read consumes no simulated time. The handle rides on opHandles
		// so conditioning shares the fold's one map lookup.
		if h.loadFrom != t.loads {
			h.load, h.loadFrom = t.loads.Handle(ps.op), t.loads
		}
		h.load.Record(sim.LoadBand(p.Kernel().Load()), incl)
	}
	dominant, max := LayerVFS, uint64(0)
	for l := Layer(0); l < numLayers; l++ {
		s := ps.self[l]
		if s == 0 {
			continue
		}
		if h.layer[l] == nil {
			h.layer[l] = t.set.Get(ps.op + "@" + layerNames[l])
		}
		h.layer[l].Record(s)
		// Ties break toward the lower (outer) layer: deterministic and
		// biased to the layer that saw the time first.
		if s > max {
			max, dominant = s, l
		}
	}
	if h.crit[dominant] == nil {
		h.crit[dominant] = t.set.Get(ps.op + "@crit:" + layerNames[dominant])
	}
	h.crit[dominant].Record(incl)
	ps.open = false
	ps.stack = ps.stack[:0]
}

// Enter opens a nested layer span (file system code, a page-cache
// wait, a network receive). Outside a root span it opens a skip region
// so the matching Exit stays balanced.
func (t *Tracer) Enter(p *sim.Proc, l Layer) {
	if t == nil || p.Daemon() {
		return
	}
	ps := t.state(p)
	if !ps.open || ps.skip > 0 {
		ps.skip++
		return
	}
	ps.stack = append(ps.stack, frame{layer: l, start: p.ReadTSC()})
}

// Exit closes the innermost layer span: its self-time (inclusive minus
// children) accumulates into the layer, and its inclusive time becomes
// child time of the enclosing span.
func (t *Tracer) Exit(p *sim.Proc, l Layer) {
	if t == nil || p.Daemon() {
		return
	}
	ps := t.state(p)
	if ps.skip > 0 {
		ps.skip--
		return
	}
	n := len(ps.stack)
	if !ps.open || n < 2 {
		return
	}
	f := ps.stack[n-1]
	ps.stack = ps.stack[:n-1]
	incl := sim.TSCDelta(p.ReadTSC(), f.start)
	ps.self[f.layer] += sim.TSCDelta(incl, f.child)
	ps.stack[n-2].child += incl
}

// handles returns the per-op profile cache, creating the (empty) entry
// on first use. Individual profiles stay nil until a layer is actually
// recorded, so untouched layers never materialize in the set.
func (t *Tracer) handles(op string) *opHandles {
	if h, ok := t.ops[op]; ok {
		return h
	}
	h := &opHandles{}
	t.ops[op] = h
	return h
}

// Token is a generation-guarded reference to the request that
// submitted a disk I/O. The disk layer captures one at submit (where
// the submitting process is known) and credits it at completion with
// the request's queue wait (driver layer) and mechanical service time
// (disk layer). If the root span closed in the meantime — an async
// writeback completing after its initiator returned — the credit is
// dropped. The zero Token is inert.
type Token struct {
	t    *Tracer
	proc int32
	gen  uint32
}

// Token captures a credit token for p's currently open request, or the
// zero Token when tracing is off, p is a daemon, or no root is open.
func (t *Tracer) Token(p *sim.Proc) Token {
	if t == nil || p.Daemon() {
		return Token{}
	}
	ps := t.state(p)
	if !ps.open || ps.skip > 0 {
		return Token{}
	}
	return Token{t: t, proc: int32(p.ID()), gen: ps.gen}
}

// Credit attributes one completed disk I/O to the token's request:
// queueWait to the driver layer, service to the disk layer. Both are
// also added to the request's innermost open span as child time,
// carving the I/O out of the enclosing wait (a page-cache or
// file-system block) so the decomposition stays additive.
func (tok Token) Credit(queueWait, service uint64) {
	if tok.t == nil {
		return
	}
	ps := &tok.t.procs[tok.proc]
	if !ps.open || ps.gen != tok.gen {
		return
	}
	ps.self[LayerDriver] += queueWait
	ps.self[LayerDisk] += service
	if n := len(ps.stack); n > 0 {
		ps.stack[n-1].child += queueWait + service
	}
}

// SplitOp decomposes a derived operation name: "read@fs" yields
// ("read", "fs", false), "read@crit:fs" yields ("read", "fs", true).
// ok is false for ordinary (underived) operation names, which keeps
// layered analysis from misreading user-defined ops containing no
// marker.
func SplitOp(op string) (base, layer string, crit, ok bool) {
	i := strings.LastIndex(op, "@")
	if i < 0 {
		return op, "", false, false
	}
	base, layer = op[:i], op[i+1:]
	if rest, isCrit := strings.CutPrefix(layer, "crit:"); isCrit {
		return base, rest, true, true
	}
	for _, n := range layerNames {
		if layer == n {
			return base, layer, false, true
		}
	}
	return op, "", false, false
}
