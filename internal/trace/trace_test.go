package trace_test

import (
	"testing"

	"osprof/internal/core"
	"osprof/internal/sim"
	"osprof/internal/trace"
)

// drive runs one request body to completion on a 1-CPU kernel: no
// preemption and no competing processes, so Exec advances the TSC by
// exactly the requested cycle count and every fold is predictable.
func drive(body func(p *sim.Proc)) {
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	k.Spawn("req", body)
	k.Run()
}

// lookupTotal returns (count, total) for op, zeros when absent.
func lookupTotal(set *core.Set, op string) (uint64, uint64) {
	p := set.Lookup(op)
	if p == nil {
		return 0, 0
	}
	return p.Count, p.Total
}

// A span tree folds into per-layer self-times — inclusive minus
// children at every level — plus one critical-path sample under the
// dominant layer, carrying the request's inclusive latency.
func TestSpanTreeFoldsSelfTimes(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	drive(func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		p.Exec(100) // vfs self
		tr.Enter(p, trace.LayerFS)
		p.Exec(200) // fs self
		tr.Enter(p, trace.LayerPageCache)
		p.Exec(300) // pagecache self
		tr.Exit(p, trace.LayerPageCache)
		p.Exec(50) // fs self again
		tr.Exit(p, trace.LayerFS)
		p.Exec(25) // vfs self again
		tr.EndRoot(p)
	})
	for op, want := range map[string][2]uint64{
		"read@vfs":            {1, 125},
		"read@fs":             {1, 250},
		"read@pagecache":      {1, 300},
		"read@crit:pagecache": {1, 675}, // dominant layer carries the inclusive latency
	} {
		if count, total := lookupTotal(set, op); count != want[0] || total != want[1] {
			t.Errorf("%s: count=%d total=%d, want %d/%d", op, count, total, want[0], want[1])
		}
	}
	if set.Len() != 4 {
		t.Errorf("unexpected rows: %v", set.Ops())
	}
}

// Daemon processes never trace: their hooks are no-ops and their
// tokens are inert, so background writeback cannot pollute the
// request decomposition.
func TestDaemonProcsIgnored(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	k := sim.New(sim.Config{NumCPUs: 1, ContextSwitch: 100})
	k.SpawnDaemon("flusher", func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		tr.Enter(p, trace.LayerFS)
		p.Exec(500)
		tr.Exit(p, trace.LayerFS)
		tr.EndRoot(p)
		if tok := tr.Token(p); tok != (trace.Token{}) {
			t.Error("daemon got a live token")
		}
	})
	k.Run()
	if set.Len() != 0 {
		t.Errorf("daemon recorded rows: %v", set.Ops())
	}
}

// A leaked layer span (Enter without Exit) drops the whole tree
// instead of folding garbage; the next request on the same process
// records normally.
func TestUnbalancedTreeDropped(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	drive(func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		tr.Enter(p, trace.LayerFS)
		p.Exec(100)
		tr.EndRoot(p) // fs span still open: dropped

		tr.BeginRoot(p, "read")
		p.Exec(50)
		tr.EndRoot(p)
	})
	if count, total := lookupTotal(set, "read@vfs"); count != 1 || total != 50 {
		t.Errorf("read@vfs count=%d total=%d, want the second request only (1/50)", count, total)
	}
	if count, _ := lookupTotal(set, "read@fs"); count != 0 {
		t.Error("dropped tree leaked a read@fs row")
	}
}

// A nested syscall (BeginRoot while a root is open) opens a skip
// region: its spans are ignored, the region stays balanced, and the
// outer request's fold is unaffected apart from the time it spent.
func TestNestedRootSkipsBalanced(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	drive(func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		p.Exec(40)
		tr.BeginRoot(p, "stat") // raw mount handle inside the request
		tr.Enter(p, trace.LayerFS)
		p.Exec(60)
		tr.Exit(p, trace.LayerFS)
		tr.EndRoot(p)
		p.Exec(20)
		tr.EndRoot(p)
	})
	if count, total := lookupTotal(set, "read@vfs"); count != 1 || total != 120 {
		t.Errorf("read@vfs count=%d total=%d, want 1/120 (nested time stays in the outer root)", count, total)
	}
	if set.Lookup("stat@fs") != nil || set.Lookup("stat@vfs") != nil {
		t.Errorf("nested root recorded rows: %v", set.Ops())
	}
}

// Token credits land in the driver/disk layers and are carved out of
// the enclosing wait; a stale token (root already closed) is dropped.
func TestTokenCredits(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	drive(func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		tr.Enter(p, trace.LayerPageCache)
		p.Exec(1_000) // the page wait the I/O hides inside
		tr.Token(p).Credit(40, 60)
		tr.Exit(p, trace.LayerPageCache)
		tr.EndRoot(p)

		// Stale: captured inside the root, credited after it closed.
		tr.BeginRoot(p, "write")
		tok := tr.Token(p)
		tr.EndRoot(p)
		tok.Credit(100, 200)
	})
	for op, want := range map[string][2]uint64{
		"read@driver":    {1, 40},
		"read@disk":      {1, 60},
		"read@pagecache": {1, 900}, // 1000 inclusive minus the credited I/O
	} {
		if count, total := lookupTotal(set, op); count != want[0] || total != want[1] {
			t.Errorf("%s: count=%d total=%d, want %d/%d", op, count, total, want[0], want[1])
		}
	}
	if set.Lookup("write@driver") != nil || set.Lookup("write@disk") != nil {
		t.Error("stale token credited a closed request")
	}
}

// A nil *Tracer is inert: every hook no-ops, so the instrumented stack
// carries tracer fields unconditionally.
func TestNilTracerSafe(t *testing.T) {
	var tr *trace.Tracer
	drive(func(p *sim.Proc) {
		tr.BeginRoot(p, "read")
		tr.Enter(p, trace.LayerFS)
		tr.Exit(p, trace.LayerFS)
		if tok := tr.Token(p); tok != (trace.Token{}) {
			t.Error("nil tracer issued a live token")
		}
		tr.Token(p).Credit(1, 2)
		tr.EndRoot(p)
	})
}

func TestSplitOp(t *testing.T) {
	cases := []struct {
		op, base, layer string
		crit, ok        bool
	}{
		{"read@fs", "read", "fs", false, true},
		{"read@crit:disk", "read", "disk", true, true},
		{"disk_read@driver", "disk_read", "driver", false, true},
		{"read", "read", "", false, false},
		{"read@bogus", "read@bogus", "", false, false}, // not a layer name
		{"a@b@net", "a@b", "net", false, true},         // last marker wins
	}
	for _, c := range cases {
		base, layer, crit, ok := trace.SplitOp(c.op)
		if base != c.base || layer != c.layer || crit != c.crit || ok != c.ok {
			t.Errorf("SplitOp(%q) = %q %q %v %v, want %q %q %v %v",
				c.op, base, layer, crit, ok, c.base, c.layer, c.crit, c.ok)
		}
	}
}

// The span hot path — root open/close, layer enter/exit, token
// capture and credit — is allocation-free once a request shape has
// been seen, the same always-on budget the recorders hold.
func TestSpanHotPathAllocationFree(t *testing.T) {
	set := core.NewSet("s")
	tr := trace.New(set)
	var allocs float64
	drive(func(p *sim.Proc) {
		// Warm: per-proc state, stack capacity, and the op's profile
		// handles materialize on the first request.
		tr.BeginRoot(p, "read")
		tr.Enter(p, trace.LayerFS)
		tr.Exit(p, trace.LayerFS)
		tr.Token(p).Credit(7, 9)
		tr.EndRoot(p)
		allocs = testing.AllocsPerRun(100, func() {
			tr.BeginRoot(p, "read")
			tr.Enter(p, trace.LayerFS)
			tr.Enter(p, trace.LayerPageCache)
			tr.Token(p).Credit(5, 11)
			tr.Exit(p, trace.LayerPageCache)
			tr.Exit(p, trace.LayerFS)
			tr.EndRoot(p)
		})
	})
	if allocs != 0 {
		t.Errorf("span hot path allocates %v objects/request, want 0", allocs)
	}
}
