// Package core implements the OSprof aggregate statistics library: it
// sorts request latencies into logarithmic buckets at run time and
// stores them compactly, so that multi-modal latency distributions can
// be analyzed after the fact (paper §3, §4 "The aggregate stats
// library").
//
// A latency l falls into bucket
//
//	b = floor(r * log2(l))
//
// where r is the profile resolution (bucket density). The paper always
// used r = 1 for efficiency; r = 2 doubles the resolution with a
// negligible increase in CPU overhead (§3). Latencies are unit-agnostic
// uint64 counts; in this repository they are CPU cycles of the simulated
// 1.7 GHz machine, matching the paper's use of the TSC register.
package core

import (
	"math"
	"math/bits"
)

// MaxBuckets is the number of buckets at resolution 1: a 64-bit cycle
// counter "can count for a century without overflowing" (§4), so 64
// buckets always suffice.
const MaxBuckets = 64

// NumBuckets returns the bucket-array length for resolution r.
func NumBuckets(r int) int { return MaxBuckets * r }

// BucketFor returns the bucket index for latency at resolution r.
// A latency of 0 or 1 maps to bucket 0.
func BucketFor(latency uint64, r int) int {
	if latency <= 1 {
		return 0
	}
	if r == 1 {
		// floor(log2(l)) via the position of the highest set bit:
		// a single instruction-equivalent, as cheap as the paper's
		// C implementation.
		return bits.Len64(latency) - 1
	}
	b := int(math.Floor(float64(r) * math.Log2(float64(latency))))
	if max := NumBuckets(r) - 1; b > max {
		b = max
	}
	return b
}

// BucketLow returns the smallest latency that falls into bucket b at
// resolution r.
//
// Resolutions above 1 use floating-point logarithms; bucket boundaries
// are exact for latencies below 2^52 (about 31 days of cycles at
// 1.7 GHz), far beyond any OS request latency.
func BucketLow(b, r int) uint64 {
	if b <= 0 {
		return 0
	}
	if r == 1 {
		if b >= 64 {
			return math.MaxUint64
		}
		return 1 << uint(b)
	}
	e := float64(b) / float64(r)
	if e >= 64 {
		return math.MaxUint64
	}
	v := math.Ceil(math.Exp2(e))
	if v >= float64(math.MaxUint64) {
		return math.MaxUint64
	}
	return uint64(v)
}

// BucketHigh returns the largest latency that falls into bucket b at
// resolution r.
func BucketHigh(b, r int) uint64 {
	if r == 1 {
		if b >= 63 {
			return math.MaxUint64
		}
		return (1 << uint(b+1)) - 1
	}
	next := BucketLow(b+1, r)
	if next == math.MaxUint64 || next == 0 {
		return math.MaxUint64
	}
	return next - 1
}

// BucketMean returns the expected latency of a request in bucket b at
// resolution 1, assuming a uniform distribution within the bucket: the
// paper uses "the average latency of bucket b is equal to 3/2 * 2^b"
// (§3.3).
func BucketMean(b int) uint64 {
	if b <= 0 {
		return 1
	}
	return 3 << uint(b-1) // 1.5 * 2^b
}
