package core

import (
	"testing"
)

func TestSetGetCreatesOnce(t *testing.T) {
	s := NewSet("run")
	a := s.Get("read")
	b := s.Get("read")
	if a != b {
		t.Error("Get created two profiles for one op")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestSetStableOrder(t *testing.T) {
	s := NewSet("run")
	for _, op := range []string{"z", "a", "m"} {
		s.Get(op)
	}
	ops := s.Ops()
	if ops[0] != "z" || ops[1] != "a" || ops[2] != "m" {
		t.Errorf("Ops = %v, want creation order [z a m]", ops)
	}
}

func TestSetByTotalLatency(t *testing.T) {
	s := NewSet("run")
	s.Record("cheap", 10)
	s.Record("expensive", 1_000_000)
	s.Record("mid", 5_000)
	got := s.ByTotalLatency()
	if got[0].Op != "expensive" || got[1].Op != "mid" || got[2].Op != "cheap" {
		t.Errorf("order = %s,%s,%s", got[0].Op, got[1].Op, got[2].Op)
	}
}

func TestSetTotals(t *testing.T) {
	s := NewSet("run")
	s.Record("a", 100)
	s.Record("a", 200)
	s.Record("b", 1)
	if s.TotalLatency() != 301 {
		t.Errorf("TotalLatency = %d", s.TotalLatency())
	}
	if s.TotalOps() != 3 {
		t.Errorf("TotalOps = %d", s.TotalOps())
	}
}

func TestSetMerge(t *testing.T) {
	a, b := NewSet("cpu0"), NewSet("cpu1")
	a.Record("read", 100)
	b.Record("read", 200)
	b.Record("write", 300)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Lookup("read").Count != 2 {
		t.Errorf("read count = %d", a.Lookup("read").Count)
	}
	if a.Lookup("write") == nil {
		t.Error("write profile not created by merge")
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSetCloneIndependent(t *testing.T) {
	s := NewSet("run")
	s.Record("op", 5)
	c := s.Clone()
	c.Record("op", 5)
	c.Record("new", 7)
	if s.Lookup("op").Count != 1 {
		t.Error("clone mutated original profile")
	}
	if s.Lookup("new") != nil {
		t.Error("clone mutated original op table")
	}
}

func TestSetValidatePropagates(t *testing.T) {
	s := NewSet("run")
	s.Record("op", 5)
	s.Lookup("op").Buckets[0]++
	if err := s.Validate(); err == nil {
		t.Error("Validate missed corrupted member")
	}
}

func TestSetLookupMissing(t *testing.T) {
	s := NewSet("run")
	if s.Lookup("nope") != nil {
		t.Error("Lookup invented a profile")
	}
}

func TestSetMemoryFootprint(t *testing.T) {
	// §5.1: a complete profile's size depends on the number of
	// implemented operations and is usually less than 1KB each.
	s := NewSet("fs")
	for _, op := range []string{"read", "write", "llseek", "readdir", "open", "close"} {
		s.Record(op, 100)
	}
	perOp := s.MemoryFootprint() / s.Len()
	if perOp > 1024 {
		t.Errorf("per-op footprint = %d bytes, want <= 1KB", perOp)
	}
}
