package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a line-oriented text serialization for profile
// sets, the analog of the paper's /proc reporting interface (§4): the
// kernel-side library exports raw bucket counts, and user-space tools
// parse them for analysis and plotting.
//
// Format:
//
//	osprof-set v1 <name> r=<r>
//	op <name> count=<n> total=<n> min=<n> max=<n>
//	b <bucket> <count>
//	...
//	end
//
// Operation names are quoted with %q to survive spaces.

const setHeader = "osprof-set v1"

// WriteSet serializes s to w.
func WriteSet(w io.Writer, s *Set) error { return writeSetAs(w, s, setHeader) }

// writeSetAs serializes s under the given header keyword; the run
// envelope uses setHeader, the delta envelope uses deltaSetHeader
// (identical body grammar, but a delta block must not be mistaken for
// a cumulative set).
func writeSetAs(w io.Writer, s *Set, header string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %q r=%d\n", header, s.Name, s.R)
	for _, p := range s.Profiles() {
		fmt.Fprintf(bw, "op %q count=%d total=%d min=%d max=%d\n",
			p.Op, p.Count, p.Total, p.Min, p.Max)
		for b, c := range p.Buckets {
			if c != 0 {
				fmt.Fprintf(bw, "b %d %d\n", b, c)
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// ReadSet parses a profile set serialized by WriteSet and validates
// the bucket checksums.
func ReadSet(r io.Reader) (*Set, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("osprof: empty input")
	}
	lineno := 1
	s, err := readSet(sc.Text(), sc, &lineno)
	if err != nil {
		return nil, err
	}
	return s, rejectTrailing(sc, &lineno)
}

// newScanner builds the line scanner shared by ReadSet and ReadRun.
// The initial buffer is sized for a typical envelope line (tens of
// bytes); bufio.Scanner grows it on demand up to the 4 MiB cap, so
// long lines still parse while the steady-state ingest path does not
// pay a 64 KiB allocation per envelope.
func newScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), 1<<22)
	return sc
}

// rejectTrailing drains sc after a terminating "end" marker, rejecting
// anything but blank lines.
func rejectTrailing(sc *bufio.Scanner, lineno *int) error {
	for sc.Scan() {
		*lineno++
		if strings.TrimSpace(sc.Text()) != "" {
			return fmt.Errorf("osprof: line %d: trailing data %q", *lineno, sc.Text())
		}
	}
	return sc.Err()
}

// readSet parses a set whose header line has already been scanned; it
// consumes lines from sc through the "end" marker. ReadSet and ReadRun
// (the versioned run envelope) share it.
func readSet(line string, sc *bufio.Scanner, lineno *int) (*Set, error) {
	return readSetAs(line, sc, lineno, setHeader)
}

// readSetAs is readSet with an explicit header keyword, shared with
// the delta-envelope parser.
func readSetAs(line string, sc *bufio.Scanner, lineno *int, header string) (*Set, error) {
	if !strings.HasPrefix(line, header+" ") {
		return nil, fmt.Errorf("osprof: bad header %q", line)
	}
	rest := strings.TrimPrefix(line, header+" ")
	name, rest, err := parseQuoted(rest)
	if err != nil {
		return nil, fmt.Errorf("osprof: header name: %w", err)
	}
	res, err := parseKV(strings.TrimSpace(rest), "r")
	if err != nil {
		return nil, fmt.Errorf("osprof: header resolution: %w", err)
	}
	s := NewSetR(name, int(res))

	var cur *Profile
	sawEnd := false
	for !sawEnd && sc.Scan() {
		*lineno++
		line := sc.Text()
		switch {
		case line == "end":
			sawEnd = true
		case strings.HasPrefix(line, "op "):
			op, rest, err := parseQuoted(strings.TrimPrefix(line, "op "))
			if err != nil {
				return nil, fmt.Errorf("osprof: line %d: %w", *lineno, err)
			}
			cur = s.Get(op)
			var vals [4]uint64
			for i, key := range opKeys {
				var field string
				field, rest = nextField(rest)
				if field == "" {
					return nil, fmt.Errorf("osprof: line %d: want 4 op fields, got %d",
						*lineno, i)
				}
				v, err := parseKV(field, key)
				if err != nil {
					return nil, fmt.Errorf("osprof: line %d: %w", *lineno, err)
				}
				vals[i] = v
			}
			if f, _ := nextField(rest); f != "" {
				return nil, fmt.Errorf("osprof: line %d: trailing op field %q", *lineno, f)
			}
			cur.Count, cur.Total, cur.Min, cur.Max = vals[0], vals[1], vals[2], vals[3]
		case strings.HasPrefix(line, "b "):
			if cur == nil {
				return nil, fmt.Errorf("osprof: line %d: bucket before op", *lineno)
			}
			bs, brest := nextField(line[2:])
			cs, brest := nextField(brest)
			if cs == "" {
				return nil, fmt.Errorf("osprof: line %d: want \"b <bucket> <count>\", got %q",
					*lineno, line)
			}
			if f, _ := nextField(brest); f != "" {
				return nil, fmt.Errorf("osprof: line %d: trailing bucket field %q", *lineno, f)
			}
			b, err := strconv.Atoi(bs)
			if err != nil {
				return nil, fmt.Errorf("osprof: line %d: bucket: %w", *lineno, err)
			}
			c, err := strconv.ParseUint(cs, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("osprof: line %d: bucket count: %w", *lineno, err)
			}
			if b < 0 || b >= len(cur.Buckets) {
				return nil, fmt.Errorf("osprof: line %d: bucket %d out of range", *lineno, b)
			}
			cur.Buckets[b] = c
		case strings.TrimSpace(line) == "":
			// ignore blank lines
		default:
			return nil, fmt.Errorf("osprof: line %d: unrecognized %q", *lineno, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawEnd {
		return nil, fmt.Errorf("osprof: truncated input (no end marker)")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// opKeys is the fixed field order of an op line; hoisted so the parser
// does not allocate the slice per line.
var opKeys = [...]string{"count", "total", "min", "max"}

// nextField returns the first space-delimited field of in and the
// remainder, skipping leading whitespace — strings.Fields without the
// per-line slice allocation.
func nextField(in string) (field, rest string) {
	in = strings.TrimLeft(in, " \t")
	i := strings.IndexAny(in, " \t")
	if i < 0 {
		return in, ""
	}
	return in[:i], in[i:]
}

// parseQuoted extracts a leading %q-quoted string and returns the rest.
func parseQuoted(in string) (val, rest string, err error) {
	if len(in) == 0 || in[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string in %q", in)
	}
	for i := 1; i < len(in); i++ {
		if in[i] == '\\' {
			i++
			continue
		}
		if in[i] == '"' {
			val, err = strconv.Unquote(in[:i+1])
			return val, in[i+1:], err
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", in)
}

// parseKV parses "key=value" with the expected key.
func parseKV(field, key string) (uint64, error) {
	pre := key + "="
	if !strings.HasPrefix(field, pre) {
		return 0, fmt.Errorf("expected %s=..., got %q", key, field)
	}
	return strconv.ParseUint(strings.TrimPrefix(field, pre), 10, 64)
}
