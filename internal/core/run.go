package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the versioned run envelope: a recorded run is a
// profile set (the paper's /proc export, marshal.go) wrapped with the
// scenario fingerprint that produced it and free-form metadata. The
// envelope is what the profile archive (internal/store) persists and
// what `osprof diff` compares, turning one-shot profiles into durable,
// addressable artifacts.
//
// Format:
//
//	osprof-run v1 fingerprint=<hex>
//	meta <key> <value>
//	...
//	osprof-set v1 <name> r=<r>
//	...
//	end
//
// Meta keys and values are quoted with %q and written in sorted key
// order, so serialization is deterministic: identical runs marshal to
// identical bytes, which is what lets the content-addressed archive
// deduplicate reruns of the same deterministic world. ReadRun also
// accepts a bare `osprof-set v1` stream (an envelope with no
// fingerprint and no metadata), keeping every pre-envelope artifact
// readable.

const runHeader = "osprof-run v1"

// Run is one recorded profiling run: the captured profile set plus the
// identity of the configuration that produced it.
type Run struct {
	// Fingerprint is the canonical identity of the producing
	// configuration (scenario.Spec.Fingerprint); empty for ad-hoc or
	// legacy artifacts.
	Fingerprint string

	// Meta carries free-form descriptive pairs (backend, elapsed
	// simulated cycles, ...). It must not contain wall-clock values:
	// recording the same deterministic world twice must marshal to
	// identical bytes.
	Meta map[string]string

	// Set is the captured profile set.
	Set *Set
}

// Name returns the run's set name.
func (r *Run) Name() string {
	if r.Set == nil {
		return ""
	}
	return r.Set.Name
}

// Clone returns a deep copy sharing no state with the receiver: the
// stable snapshot an accumulator hands off (to archiving, to a diff)
// while deltas keep mutating the original.
func (r *Run) Clone() *Run {
	c := &Run{Fingerprint: r.Fingerprint, Meta: cloneMeta(r.Meta)}
	if r.Set != nil {
		c.Set = r.Set.Clone()
	}
	return c
}

// WriteRun serializes the run envelope to w.
func WriteRun(w io.Writer, r *Run) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s fingerprint=%q\n", runHeader, r.Fingerprint)
	writeMeta(bw, r.Meta)
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteSet(w, r.Set)
}

// ReadRun parses a run envelope serialized by WriteRun. A bare
// `osprof-set v1` stream is accepted too and yields a Run with an empty
// fingerprint and no metadata.
func ReadRun(r io.Reader) (*Run, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("osprof: empty input")
	}
	lineno := 1
	run, err := readRunBody(sc.Text(), sc, &lineno)
	if err != nil {
		return nil, err
	}
	return run, rejectTrailing(sc, &lineno)
}

// readRunBody parses one run envelope (or bare set) whose header line
// has already been scanned, consuming lines through its "end" marker.
// ReadRun and the batch EnvelopeReader share it.
func readRunBody(line string, sc *bufio.Scanner, lineno *int) (*Run, error) {
	run := &Run{}
	if strings.HasPrefix(line, runHeader+" ") {
		fp, err := parseEnvelopeHeader(line, runHeader)
		if err != nil {
			return nil, err
		}
		run.Fingerprint = fp
		meta, next, err := readMeta(sc, lineno)
		if err != nil {
			return nil, err
		}
		if next == "" {
			return nil, fmt.Errorf("osprof: run envelope without a profile set")
		}
		run.Meta = meta
		line = next
	}
	set, err := readSet(line, sc, lineno)
	if err != nil {
		return nil, err
	}
	run.Set = set
	return run, nil
}

// parseEnvelopeHeader extracts the fingerprint from a run or delta
// header line: `<header> fingerprint="..."` with optional trailing
// key=value fields left to the caller via parseHeaderFields.
func parseEnvelopeHeader(line, header string) (string, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, header+" "))
	if !strings.HasPrefix(rest, "fingerprint=") {
		return "", fmt.Errorf("osprof: %s header missing fingerprint: %q", header, line)
	}
	fp, trailing, err := parseQuoted(strings.TrimPrefix(rest, "fingerprint="))
	if err != nil {
		return "", fmt.Errorf("osprof: %s header: %w", header, err)
	}
	if strings.TrimSpace(trailing) != "" {
		return "", fmt.Errorf("osprof: %s header trailing data %q", header, trailing)
	}
	return fp, nil
}

// readMeta consumes `meta <key> <value>` lines, returning the parsed
// map (nil when there were none) and the first non-meta line (empty at
// EOF).
func readMeta(sc *bufio.Scanner, lineno *int) (map[string]string, string, error) {
	var meta map[string]string
	for sc.Scan() {
		*lineno++
		l := sc.Text()
		if strings.TrimSpace(l) == "" {
			continue
		}
		if !strings.HasPrefix(l, "meta ") {
			return meta, l, nil
		}
		key, rest, err := parseQuoted(strings.TrimPrefix(l, "meta "))
		if err != nil {
			return nil, "", fmt.Errorf("osprof: line %d: meta key: %w", *lineno, err)
		}
		val, trailing, err := parseQuoted(strings.TrimSpace(rest))
		if err != nil {
			return nil, "", fmt.Errorf("osprof: line %d: meta value: %w", *lineno, err)
		}
		if strings.TrimSpace(trailing) != "" {
			return nil, "", fmt.Errorf("osprof: line %d: meta trailing data %q", *lineno, trailing)
		}
		if meta == nil {
			meta = make(map[string]string)
		}
		meta[key] = val
	}
	return meta, "", sc.Err()
}

// writeMeta writes the meta lines in sorted key order (the
// deterministic-bytes invariant shared by runs and deltas).
func writeMeta(bw *bufio.Writer, meta map[string]string) {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "meta %q %q\n", k, meta[k])
	}
}
