package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the versioned run envelope: a recorded run is a
// profile set (the paper's /proc export, marshal.go) wrapped with the
// scenario fingerprint that produced it and free-form metadata. The
// envelope is what the profile archive (internal/store) persists and
// what `osprof diff` compares, turning one-shot profiles into durable,
// addressable artifacts.
//
// Format:
//
//	osprof-run v1 fingerprint=<hex>
//	meta <key> <value>
//	...
//	osprof-set v1 <name> r=<r>
//	...
//	end
//
// Meta keys and values are quoted with %q and written in sorted key
// order, so serialization is deterministic: identical runs marshal to
// identical bytes, which is what lets the content-addressed archive
// deduplicate reruns of the same deterministic world. ReadRun also
// accepts a bare `osprof-set v1` stream (an envelope with no
// fingerprint and no metadata), keeping every pre-envelope artifact
// readable.

const runHeader = "osprof-run v1"

// Run is one recorded profiling run: the captured profile set plus the
// identity of the configuration that produced it.
type Run struct {
	// Fingerprint is the canonical identity of the producing
	// configuration (scenario.Spec.Fingerprint); empty for ad-hoc or
	// legacy artifacts.
	Fingerprint string

	// Meta carries free-form descriptive pairs (backend, elapsed
	// simulated cycles, ...). It must not contain wall-clock values:
	// recording the same deterministic world twice must marshal to
	// identical bytes.
	Meta map[string]string

	// Set is the captured profile set.
	Set *Set
}

// Name returns the run's set name.
func (r *Run) Name() string {
	if r.Set == nil {
		return ""
	}
	return r.Set.Name
}

// WriteRun serializes the run envelope to w.
func WriteRun(w io.Writer, r *Run) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s fingerprint=%q\n", runHeader, r.Fingerprint)
	keys := make([]string, 0, len(r.Meta))
	for k := range r.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(bw, "meta %q %q\n", k, r.Meta[k])
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return WriteSet(w, r.Set)
}

// ReadRun parses a run envelope serialized by WriteRun. A bare
// `osprof-set v1` stream is accepted too and yields a Run with an empty
// fingerprint and no metadata.
func ReadRun(r io.Reader) (*Run, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("osprof: empty input")
	}
	lineno := 1
	line := sc.Text()
	run := &Run{}

	if strings.HasPrefix(line, runHeader+" ") {
		rest := strings.TrimSpace(strings.TrimPrefix(line, runHeader+" "))
		if !strings.HasPrefix(rest, "fingerprint=") {
			return nil, fmt.Errorf("osprof: run header missing fingerprint: %q", line)
		}
		fp, trailing, err := parseQuoted(strings.TrimPrefix(rest, "fingerprint="))
		if err != nil {
			return nil, fmt.Errorf("osprof: run header: %w", err)
		}
		if strings.TrimSpace(trailing) != "" {
			return nil, fmt.Errorf("osprof: run header trailing data %q", trailing)
		}
		run.Fingerprint = fp

		// Meta lines, then the embedded set header.
		line = ""
		for sc.Scan() {
			lineno++
			l := sc.Text()
			if strings.TrimSpace(l) == "" {
				continue
			}
			if !strings.HasPrefix(l, "meta ") {
				line = l
				break
			}
			key, rest, err := parseQuoted(strings.TrimPrefix(l, "meta "))
			if err != nil {
				return nil, fmt.Errorf("osprof: line %d: meta key: %w", lineno, err)
			}
			val, trailing, err := parseQuoted(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("osprof: line %d: meta value: %w", lineno, err)
			}
			if strings.TrimSpace(trailing) != "" {
				return nil, fmt.Errorf("osprof: line %d: meta trailing data %q", lineno, trailing)
			}
			if run.Meta == nil {
				run.Meta = make(map[string]string)
			}
			run.Meta[key] = val
		}
		if line == "" {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("osprof: run envelope without a profile set")
		}
	}

	set, err := readSet(line, sc, &lineno)
	if err != nil {
		return nil, err
	}
	run.Set = set
	return run, rejectTrailing(sc, &lineno)
}
