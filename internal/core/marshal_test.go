package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSet("ext2 grep run")
	s.Record("readdir", 100)
	s.Record("readdir", 5_000)
	s.Record("read page", 1_000_000) // op name with a space
	s.Record("llseek", 400)

	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.R != s.R {
		t.Errorf("header: %q r=%d", got.Name, got.R)
	}
	if got.Len() != s.Len() {
		t.Fatalf("ops: %d vs %d", got.Len(), s.Len())
	}
	for _, op := range s.Ops() {
		a, b := s.Lookup(op), got.Lookup(op)
		if b == nil {
			t.Fatalf("op %q missing after round trip", op)
		}
		if a.Count != b.Count || a.Total != b.Total || a.Min != b.Min || a.Max != b.Max {
			t.Errorf("op %q stats differ: %+v vs %+v", op, a, b)
		}
		for i := range a.Buckets {
			if a.Buckets[i] != b.Buckets[i] {
				t.Errorf("op %q bucket %d: %d vs %d", op, i, a.Buckets[i], b.Buckets[i])
			}
		}
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad header":    "not-a-profile\nend\n",
		"no end":        "osprof-set v1 \"x\" r=1\n",
		"bucket first":  "osprof-set v1 \"x\" r=1\nb 3 1\nend\n",
		"bad bucket":    "osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=1 min=1 max=1\nb 99999 1\nend\n",
		"bad op line":   "osprof-set v1 \"x\" r=1\nop \"a\" count=1\nend\n",
		"unknown line":  "osprof-set v1 \"x\" r=1\nxyzzy\nend\n",
		"bad checksum":  "osprof-set v1 \"x\" r=1\nop \"a\" count=5 total=1 min=1 max=1\nb 0 1\nend\n",
		"unquoted name": "osprof-set v1 x r=1\nend\n",
	}
	for name, in := range cases {
		if _, err := ReadSet(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSet accepted %q", name, in)
		}
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet("prop")
		ops := int(nOps%16) + 1
		for i := 0; i < ops; i++ {
			op := string(rune('a' + i))
			for j := 0; j < rng.Intn(100); j++ {
				s.Record(op, uint64(rng.Int63()))
			}
		}
		var buf bytes.Buffer
		if WriteSet(&buf, s) != nil {
			return false
		}
		got, err := ReadSet(&buf)
		if err != nil {
			return false
		}
		return got.TotalOps() == s.TotalOps() && got.TotalLatency() == s.TotalLatency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripResolution2(t *testing.T) {
	s := NewSetR("hi-res", 2)
	s.Record("op", 1000)
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != 2 {
		t.Errorf("R = %d, want 2", got.R)
	}
	if got.Lookup("op").Count != 1 {
		t.Error("record lost")
	}
}
