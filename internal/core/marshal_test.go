package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s := NewSet("ext2 grep run")
	s.Record("readdir", 100)
	s.Record("readdir", 5_000)
	s.Record("read page", 1_000_000) // op name with a space
	s.Record("llseek", 400)

	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.R != s.R {
		t.Errorf("header: %q r=%d", got.Name, got.R)
	}
	if got.Len() != s.Len() {
		t.Fatalf("ops: %d vs %d", got.Len(), s.Len())
	}
	for _, op := range s.Ops() {
		a, b := s.Lookup(op), got.Lookup(op)
		if b == nil {
			t.Fatalf("op %q missing after round trip", op)
		}
		if a.Count != b.Count || a.Total != b.Total || a.Min != b.Min || a.Max != b.Max {
			t.Errorf("op %q stats differ: %+v vs %+v", op, a, b)
		}
		for i := range a.Buckets {
			if a.Buckets[i] != b.Buckets[i] {
				t.Errorf("op %q bucket %d: %d vs %d", op, i, a.Buckets[i], b.Buckets[i])
			}
		}
	}
}

func TestReadSetRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "not-a-profile\nend\n",
		"no end":         "osprof-set v1 \"x\" r=1\n",
		"bucket first":   "osprof-set v1 \"x\" r=1\nb 3 1\nend\n",
		"bad bucket":     "osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=1 min=1 max=1\nb 99999 1\nend\n",
		"negative index": "osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=1 min=1 max=1\nb -2 1\nend\n",
		"bad op line":    "osprof-set v1 \"x\" r=1\nop \"a\" count=1\nend\n",
		"unknown line":   "osprof-set v1 \"x\" r=1\nxyzzy\nend\n",
		"bad checksum":   "osprof-set v1 \"x\" r=1\nop \"a\" count=5 total=1 min=1 max=1\nb 0 1\nend\n",
		"count mismatch": "osprof-set v1 \"x\" r=1\nop \"a\" count=2 total=7 min=1 max=6\nb 0 1\nend\n",
		"unquoted name":  "osprof-set v1 x r=1\nend\n",

		// Quoting pathologies: unterminated, bare backslash at EOF,
		// and an op line whose quote never closes.
		"unterminated name":  "osprof-set v1 \"x r=1\nend\n",
		"trailing backslash": "osprof-set v1 \"x\\\nend\n",
		"unterminated op":    "osprof-set v1 \"x\" r=1\nop \"a count=1 total=1 min=1 max=1\nend\n",
		"bad escape":         "osprof-set v1 \"\\z\" r=1\nend\n",

		// Truncation in the middle of an operation body.
		"truncated op":     "osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=1 min=1 max=1\nb 0 1\n",
		"truncated bucket": "osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=1 min=1 max=1\nb 0\nend\n",

		// Field-order and resolution abuse.
		"swapped fields": "osprof-set v1 \"x\" r=1\nop \"a\" total=1 count=1 min=1 max=1\nend\n",
		"huge r":         "osprof-set v1 \"x\" r=99999999999999999999\nend\n",
		"negative r":     "osprof-set v1 \"x\" r=-1\nend\n",

		// Data after the end marker.
		"trailing garbage": "osprof-set v1 \"x\" r=1\nend\nxyzzy\n",
	}
	for name, in := range cases {
		if _, err := ReadSet(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSet accepted %q", name, in)
		}
	}
}

// Golden serialized sets (also the fuzz seed corpus).
func goldenSets() []*Set {
	flat := NewSet("flat")
	flat.Record("read", 100)
	flat.Record("read", 1<<20)
	flat.Record("op with space", 42)

	hiRes := NewSetR("hi-res", 4)
	for i := uint64(1); i < 1<<18; i <<= 1 {
		hiRes.Record("llseek", i+i/3)
	}

	empty := NewSet("empty")
	empty.Get("never-recorded")
	return []*Set{flat, hiRes, empty}
}

// FuzzReadSet checks the parser against arbitrary input: it must never
// panic, and any input it accepts must round-trip stably — writing the
// parsed set and re-reading it reproduces the same bytes and totals
// (the archive's content addressing depends on that stability).
func FuzzReadSet(f *testing.F) {
	for _, s := range goldenSets() {
		var buf bytes.Buffer
		if err := WriteSet(&buf, s); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("osprof-set v1 \"x\" r=1\nop \"a\" count=1 total=9 min=9 max=9\nb 3 1\nend\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSet(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var first bytes.Buffer
		if err := WriteSet(&first, s); err != nil {
			t.Fatalf("re-serialize accepted input: %v", err)
		}
		s2, err := ReadSet(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v\n%s", err, first.Bytes())
		}
		if s2.TotalOps() != s.TotalOps() || s2.TotalLatency() != s.TotalLatency() ||
			s2.Len() != s.Len() {
			t.Fatalf("totals drifted: %d/%d/%d vs %d/%d/%d",
				s.TotalOps(), s.TotalLatency(), s.Len(),
				s2.TotalOps(), s2.TotalLatency(), s2.Len())
		}
		var second bytes.Buffer
		if err := WriteSet(&second, s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not a fixed point:\n%s\nvs\n%s",
				first.Bytes(), second.Bytes())
		}
	})
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSet("prop")
		ops := int(nOps%16) + 1
		for i := 0; i < ops; i++ {
			op := string(rune('a' + i))
			for j := 0; j < rng.Intn(100); j++ {
				s.Record(op, uint64(rng.Int63()))
			}
		}
		var buf bytes.Buffer
		if WriteSet(&buf, s) != nil {
			return false
		}
		got, err := ReadSet(&buf)
		if err != nil {
			return false
		}
		return got.TotalOps() == s.TotalOps() && got.TotalLatency() == s.TotalLatency()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripResolution2(t *testing.T) {
	s := NewSetR("hi-res", 2)
	s.Record("op", 1000)
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.R != 2 {
		t.Errorf("R = %d, want 2", got.R)
	}
	if got.Lookup("op").Count != 1 {
		t.Error("record lost")
	}
}
