package core

import "fmt"

// BucketRange identifies a contiguous run of latency buckets,
// typically one peak of a multi-modal profile.
type BucketRange struct {
	Lo, Hi int // inclusive bucket indices
}

// Contains reports whether bucket b falls inside the range.
func (r BucketRange) Contains(b int) bool { return b >= r.Lo && b <= r.Hi }

// Correlation implements direct profile and value correlation (§3.1,
// Figure 8): requests are first classified by which latency peak they
// belong to, and then a logarithmic profile of an internal OS variable
// is accumulated separately for each peak. If a peak's value profile
// differs from the others', the variable explains the peak.
//
// The paper's example: storing readdir_past_EOF * 1024 per request
// proves that the first readdir peak consists exactly of the
// past-end-of-directory calls.
type Correlation struct {
	// Op names the profiled operation.
	Op string

	// Peaks are the latency ranges used for classification, in order.
	Peaks []BucketRange

	// R is the resolution of the value profiles.
	R int

	perPeak []*Profile
	other   *Profile
}

// NewCorrelation creates a correlation profile for op splitting on the
// given latency peaks.
func NewCorrelation(op string, peaks []BucketRange) *Correlation {
	c := &Correlation{Op: op, Peaks: peaks, R: 1}
	for i := range peaks {
		c.perPeak = append(c.perPeak,
			NewProfileR(fmt.Sprintf("%s/peak%d", op, i), c.R))
	}
	c.other = NewProfileR(op+"/other", c.R)
	return c
}

// Record classifies the request by latency and stores value into the
// matching peak's value profile.
func (c *Correlation) Record(latency, value uint64) {
	b := BucketFor(latency, 1)
	for i, r := range c.Peaks {
		if r.Contains(b) {
			c.perPeak[i].Record(value)
			return
		}
	}
	c.other.Record(value)
}

// Peak returns the value profile accumulated for peak i.
func (c *Correlation) Peak(i int) *Profile { return c.perPeak[i] }

// Other returns the value profile of requests outside every peak.
func (c *Correlation) Other() *Profile { return c.other }

// Validate checks all member checksums.
func (c *Correlation) Validate() error {
	for _, p := range c.perPeak {
		if err := p.Validate(); err != nil {
			return err
		}
	}
	return c.other.Validate()
}
