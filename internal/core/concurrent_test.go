package core

import (
	"sync"
	"testing"
)

func hammer(p *ConcurrentProfile, workers, perWorker int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Record(w, 100) // all hit the same bucket: worst case
			}
		}()
	}
	wg.Wait()
}

func TestLockedModeNeverLoses(t *testing.T) {
	p := NewConcurrentProfile("op", Locked, 0)
	hammer(p, 8, 10_000)
	if lost := p.Lost(); lost != 0 {
		t.Errorf("locked mode lost %d updates", lost)
	}
	if p.Snapshot().Count != 80_000 {
		t.Errorf("count = %d, want 80000", p.Snapshot().Count)
	}
}

func TestShardedModeNeverLoses(t *testing.T) {
	// §3.4 solution 2: "we make each process or thread update its own
	// profile in memory. This prevents lost updates on systems with
	// any number of CPUs."
	p := NewConcurrentProfile("op", Sharded, 8)
	hammer(p, 8, 10_000)
	if lost := p.Lost(); lost != 0 {
		t.Errorf("sharded mode lost %d updates", lost)
	}
	snap := p.Snapshot()
	if snap.Count != 80_000 {
		t.Errorf("count = %d, want 80000", snap.Count)
	}
	if snap.Buckets[BucketFor(100, 1)] != 80_000 {
		t.Errorf("bucket population = %d", snap.Buckets[BucketFor(100, 1)])
	}
}

func TestUnsyncModeSingleThreadExact(t *testing.T) {
	p := NewConcurrentProfile("op", Unsync, 0)
	for i := 0; i < 1000; i++ {
		p.Record(0, uint64(i))
	}
	if lost := p.Lost(); lost != 0 {
		t.Errorf("single-threaded unsync lost %d updates", lost)
	}
}

func TestUnsyncModeMayLoseButBounded(t *testing.T) {
	// §3.4: unsynchronized updates may lose a small fraction of
	// updates under concurrency; verify the accounting never goes
	// negative and losses stay a small fraction, as the paper found
	// (<1% even in the worst case on 2 CPUs).
	p := NewConcurrentProfile("op", Unsync, 0)
	hammer(p, 2, 50_000)
	att, lost := p.Attempts(), p.Lost()
	if att != 100_000 {
		t.Fatalf("attempts = %d", att)
	}
	if lost > att/2 {
		t.Errorf("unsync lost %d of %d updates: implausibly lossy", lost, att)
	}
	if p.Snapshot().Count+lost != att {
		t.Errorf("accounting broken: count=%d lost=%d attempts=%d",
			p.Snapshot().Count, lost, att)
	}
}

func TestLockingModeString(t *testing.T) {
	for m, want := range map[LockingMode]string{
		Unsync: "unsync", Locked: "locked", Sharded: "sharded",
		LockingMode(99): "unknown",
	} {
		if m.String() != want {
			t.Errorf("String(%d) = %q", int(m), m.String())
		}
	}
}

func TestConcurrentSnapshotIsPlainProfile(t *testing.T) {
	p := NewConcurrentProfile("op", Sharded, 4)
	p.Record(0, 10)
	p.Record(3, 1000)
	snap := p.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Error(err)
	}
	if snap.Count != 2 {
		t.Errorf("count = %d", snap.Count)
	}
}

// Regression: Snapshot used to merge only bucket counts, so Total, Min
// and Max were lost and Mean() reported 0 no matter what was recorded.
func TestConcurrentSnapshotPreservesTotals(t *testing.T) {
	for _, mode := range []LockingMode{Unsync, Locked, Sharded} {
		p := NewConcurrentProfile("op", mode, 4)
		// Matching single-writer reference profile.
		want := NewProfile("op")
		for i, lat := range []uint64{10, 1000, 250, 3} {
			p.Record(i, lat)
			want.Record(lat)
		}
		snap := p.Snapshot()
		if snap.Total != want.Total {
			t.Errorf("%v: Total = %d, want %d", mode, snap.Total, want.Total)
		}
		if snap.Min != want.Min || snap.Max != want.Max {
			t.Errorf("%v: Min/Max = %d/%d, want %d/%d",
				mode, snap.Min, snap.Max, want.Min, want.Max)
		}
		if snap.Mean() != want.Mean() {
			t.Errorf("%v: Mean = %d, want %d", mode, snap.Mean(), want.Mean())
		}
	}
}

func TestConcurrentSnapshotEmpty(t *testing.T) {
	snap := NewConcurrentProfile("op", Sharded, 4).Snapshot()
	if snap.Count != 0 || snap.Total != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
}

func TestShardedNegativeShardDoesNotPanic(t *testing.T) {
	p := NewConcurrentProfile("op", Sharded, 4)
	p.Record(-1, 100)
	p.Record(-5, 100)
	if n := p.Snapshot().Count; n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
}

func TestConcurrentProfileResolution(t *testing.T) {
	p := NewConcurrentProfileR("op", 2, Sharded, 2)
	// Matching single-writer reference profile at the same resolution.
	want := NewProfileR("op", 2)
	for i, lat := range []uint64{3, 100, 5_000, 1 << 30} {
		p.Record(i%2, lat)
		want.Record(lat)
	}
	snap := p.Snapshot()
	if snap.R != 2 {
		t.Fatalf("snapshot resolution = %d, want 2", snap.R)
	}
	if len(snap.Buckets) != NumBuckets(2) {
		t.Fatalf("snapshot buckets = %d, want %d", len(snap.Buckets), NumBuckets(2))
	}
	for b := range want.Buckets {
		if snap.Buckets[b] != want.Buckets[b] {
			t.Errorf("bucket %d = %d, want %d", b, snap.Buckets[b], want.Buckets[b])
		}
	}
	if p.Lost() != 0 {
		t.Errorf("lost %d updates", p.Lost())
	}
}

// Snapshot must be callable while writers are still recording (the
// live-profiling export path): every intermediate snapshot passes the
// bucket-sum checksum and counts grow monotonically, and under -race
// this doubles as the proof that no mode's write path races with
// Snapshot's reads.
func TestSnapshotUnderConcurrentWrite(t *testing.T) {
	for _, mode := range []LockingMode{Unsync, Locked, Sharded} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			p := NewConcurrentProfile("op", mode, 4)
			const workers, perWorker = 4, 20_000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						p.Record(w, uint64(i%1024+1))
					}
				}()
			}
			var last uint64
			for i := 0; i < 100; i++ {
				snap := p.Snapshot()
				if err := snap.Validate(); err != nil {
					t.Fatalf("mid-write snapshot: %v", err)
				}
				// Monotonic growth holds only for the lossless modes:
				// Unsync's racing read-modify-writes can legitimately
				// move a bucket value backwards.
				if mode != Unsync && snap.Count < last {
					t.Fatalf("count went backwards: %d -> %d", last, snap.Count)
				}
				// A snapshot racing a shard's first Record must not
				// export the ^0 min sentinel as a real minimum.
				if snap.Count > 0 && snap.Min > snap.Max {
					t.Fatalf("garbage header mid-write: min=%d max=%d count=%d",
						snap.Min, snap.Max, snap.Count)
				}
				last = snap.Count
			}
			wg.Wait()
			final := p.Snapshot()
			if err := final.Validate(); err != nil {
				t.Error(err)
			}
			if mode != Unsync && final.Count != workers*perWorker {
				t.Errorf("%v: final count = %d, want %d", mode, final.Count, workers*perWorker)
			}
		})
	}
}
