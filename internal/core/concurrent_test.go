package core

import (
	"sync"
	"testing"
)

func hammer(p *ConcurrentProfile, workers, perWorker int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				p.Record(w, 100) // all hit the same bucket: worst case
			}
		}()
	}
	wg.Wait()
}

func TestLockedModeNeverLoses(t *testing.T) {
	p := NewConcurrentProfile("op", Locked, 0)
	hammer(p, 8, 10_000)
	if lost := p.Lost(); lost != 0 {
		t.Errorf("locked mode lost %d updates", lost)
	}
	if p.Snapshot().Count != 80_000 {
		t.Errorf("count = %d, want 80000", p.Snapshot().Count)
	}
}

func TestShardedModeNeverLoses(t *testing.T) {
	// §3.4 solution 2: "we make each process or thread update its own
	// profile in memory. This prevents lost updates on systems with
	// any number of CPUs."
	p := NewConcurrentProfile("op", Sharded, 8)
	hammer(p, 8, 10_000)
	if lost := p.Lost(); lost != 0 {
		t.Errorf("sharded mode lost %d updates", lost)
	}
	snap := p.Snapshot()
	if snap.Count != 80_000 {
		t.Errorf("count = %d, want 80000", snap.Count)
	}
	if snap.Buckets[BucketFor(100, 1)] != 80_000 {
		t.Errorf("bucket population = %d", snap.Buckets[BucketFor(100, 1)])
	}
}

func TestUnsyncModeSingleThreadExact(t *testing.T) {
	p := NewConcurrentProfile("op", Unsync, 0)
	for i := 0; i < 1000; i++ {
		p.Record(0, uint64(i))
	}
	if lost := p.Lost(); lost != 0 {
		t.Errorf("single-threaded unsync lost %d updates", lost)
	}
}

func TestUnsyncModeMayLoseButBounded(t *testing.T) {
	// §3.4: unsynchronized updates may lose a small fraction of
	// updates under concurrency; verify the accounting never goes
	// negative and losses stay a small fraction, as the paper found
	// (<1% even in the worst case on 2 CPUs).
	p := NewConcurrentProfile("op", Unsync, 0)
	hammer(p, 2, 50_000)
	att, lost := p.Attempts(), p.Lost()
	if att != 100_000 {
		t.Fatalf("attempts = %d", att)
	}
	if lost > att/2 {
		t.Errorf("unsync lost %d of %d updates: implausibly lossy", lost, att)
	}
	if p.Snapshot().Count+lost != att {
		t.Errorf("accounting broken: count=%d lost=%d attempts=%d",
			p.Snapshot().Count, lost, att)
	}
}

func TestLockingModeString(t *testing.T) {
	for m, want := range map[LockingMode]string{
		Unsync: "unsync", Locked: "locked", Sharded: "sharded",
		LockingMode(99): "unknown",
	} {
		if m.String() != want {
			t.Errorf("String(%d) = %q", int(m), m.String())
		}
	}
}

func TestConcurrentSnapshotIsPlainProfile(t *testing.T) {
	p := NewConcurrentProfile("op", Sharded, 4)
	p.Record(0, 10)
	p.Record(3, 1000)
	snap := p.Snapshot()
	if err := snap.Validate(); err != nil {
		t.Error(err)
	}
	if snap.Count != 2 {
		t.Errorf("count = %d", snap.Count)
	}
}

// Regression: Snapshot used to merge only bucket counts, so Total, Min
// and Max were lost and Mean() reported 0 no matter what was recorded.
func TestConcurrentSnapshotPreservesTotals(t *testing.T) {
	for _, mode := range []LockingMode{Unsync, Locked, Sharded} {
		p := NewConcurrentProfile("op", mode, 4)
		// Matching single-writer reference profile.
		want := NewProfile("op")
		for i, lat := range []uint64{10, 1000, 250, 3} {
			p.Record(i, lat)
			want.Record(lat)
		}
		snap := p.Snapshot()
		if snap.Total != want.Total {
			t.Errorf("%v: Total = %d, want %d", mode, snap.Total, want.Total)
		}
		if snap.Min != want.Min || snap.Max != want.Max {
			t.Errorf("%v: Min/Max = %d/%d, want %d/%d",
				mode, snap.Min, snap.Max, want.Min, want.Max)
		}
		if snap.Mean() != want.Mean() {
			t.Errorf("%v: Mean = %d, want %d", mode, snap.Mean(), want.Mean())
		}
	}
}

func TestConcurrentSnapshotEmpty(t *testing.T) {
	snap := NewConcurrentProfile("op", Sharded, 4).Snapshot()
	if snap.Count != 0 || snap.Total != 0 || snap.Min != 0 || snap.Max != 0 {
		t.Errorf("empty snapshot not zero: %+v", snap)
	}
}
