package core

import "testing"

// TestCorrelationReaddirPastEOF reproduces the structure of the paper's
// Figure 8 experiment in miniature: requests in the first latency peak
// carry readdir_past_EOF=1 (stored as 1024), all others carry 0, and
// the split value profiles prove the correlation.
func TestCorrelationReaddirPastEOF(t *testing.T) {
	c := NewCorrelation("readdir", []BucketRange{
		{Lo: 6, Hi: 7},   // first peak: past-EOF returns
		{Lo: 9, Hi: 14},  // second peak: cached
		{Lo: 16, Hi: 23}, // I/O peaks
	})
	// First-peak requests: tiny latency, value 1024.
	for i := 0; i < 100; i++ {
		c.Record(100, 1024)
	}
	// Cached requests: medium latency, value 0.
	for i := 0; i < 500; i++ {
		c.Record(4000, 0)
	}
	// I/O requests: large latency, value 0.
	for i := 0; i < 50; i++ {
		c.Record(1_000_000, 0)
	}
	first := c.Peak(0)
	if first.Count != 100 {
		t.Fatalf("first peak count = %d, want 100", first.Count)
	}
	if first.Buckets[10] != 100 { // 1024 -> bucket 10
		t.Errorf("first peak value bucket 10 = %d, want 100", first.Buckets[10])
	}
	second := c.Peak(1)
	if second.Count != 500 || second.Buckets[0] != 500 {
		t.Errorf("second peak: count=%d bucket0=%d", second.Count, second.Buckets[0])
	}
	third := c.Peak(2)
	if third.Count != 50 || third.Buckets[0] != 50 {
		t.Errorf("third peak: count=%d bucket0=%d", third.Count, third.Buckets[0])
	}
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCorrelationOtherBucket(t *testing.T) {
	c := NewCorrelation("op", []BucketRange{{Lo: 5, Hi: 6}})
	c.Record(1<<20, 7) // bucket 20, outside every peak
	if c.Other().Count != 1 {
		t.Errorf("other count = %d, want 1", c.Other().Count)
	}
	if c.Peak(0).Count != 0 {
		t.Error("peak 0 stole the record")
	}
}

func TestBucketRangeContains(t *testing.T) {
	r := BucketRange{Lo: 3, Hi: 5}
	for b, want := range map[int]bool{2: false, 3: true, 4: true, 5: true, 6: false} {
		if r.Contains(b) != want {
			t.Errorf("Contains(%d) = %v, want %v", b, r.Contains(b), want)
		}
	}
}
