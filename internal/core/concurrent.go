package core

import "sync/atomic"

// This file implements the three bucket-update strategies discussed in
// §3.4 "Profile Locking". Bucket increments are not atomic by default;
// the paper measured that on a dual-CPU system fewer than 1% of updates
// are lost without locking, adopted lock-free updates for small CPU
// counts, and per-thread profiles for larger ones.

// LockingMode selects how concurrent bucket updates are synchronized.
type LockingMode int

const (
	// Unsync performs read-modify-write updates without any
	// synchronization: concurrent updates to the same bucket may be
	// lost, exactly like the paper's default mode. (The individual
	// loads and stores are atomic so the behavior is well defined;
	// only the increment is lossy.)
	Unsync LockingMode = iota

	// Locked uses atomic increments ("the lock prefix on i386"), which
	// never lose updates but serialize all CPUs on the bucket line.
	Locked

	// Sharded gives each thread its own bucket array, merged at read
	// time; no updates are lost on systems with any number of CPUs.
	Sharded
)

func (m LockingMode) String() string {
	switch m {
	case Unsync:
		return "unsync"
	case Locked:
		return "locked"
	case Sharded:
		return "sharded"
	}
	return "unknown"
}

// shardPad separates shards by a cache line to avoid false sharing.
const shardPad = 8

// shardTotals carries the per-shard scalar aggregates (the Profile
// header fields: Total, Min, Max) alongside the bucket array, padded to
// a cache line so neighboring shards do not false-share. Each field is
// updated with the same discipline as the shard's bucket counters:
// lossy load/store for Unsync, atomic add/CAS for Locked, and plain
// single-writer updates for Sharded.
type shardTotals struct {
	total uint64
	min   uint64 // ^uint64(0) until the first record lands
	max   uint64
	_     [5]uint64 // pad to 64 bytes
}

// ConcurrentProfile is a fixed-resolution-1 histogram safe for use from
// multiple goroutines, with a selectable update strategy.
type ConcurrentProfile struct {
	Op     string
	Mode   LockingMode
	shards [][]uint64
	totals []shardTotals
	// attempts counts Record calls (always atomically), so the number
	// of lost updates is observable: Lost = attempts - sum(buckets).
	attempts atomic.Uint64
}

// NewConcurrentProfile creates a concurrent histogram for op. shards is
// the number of per-thread bucket arrays used in Sharded mode (ignored
// otherwise; one array is used).
func NewConcurrentProfile(op string, mode LockingMode, shards int) *ConcurrentProfile {
	if mode != Sharded || shards < 1 {
		shards = 1
	}
	p := &ConcurrentProfile{Op: op, Mode: mode, totals: make([]shardTotals, shards)}
	for i := 0; i < shards; i++ {
		p.shards = append(p.shards, make([]uint64, MaxBuckets+shardPad))
		p.totals[i].min = ^uint64(0)
	}
	return p
}

// Record sorts one latency into its bucket. In Sharded mode, shard
// should identify the calling thread (e.g., a per-goroutine index);
// other modes ignore it.
func (p *ConcurrentProfile) Record(shard int, latency uint64) {
	p.attempts.Add(1)
	b := BucketFor(latency, 1)
	switch p.Mode {
	case Unsync:
		// Lossy read-modify-write: two concurrent updaters can both
		// read n and both store n+1.
		addr := &p.shards[0][b]
		atomic.StoreUint64(addr, atomic.LoadUint64(addr)+1)
		t := &p.totals[0]
		atomic.StoreUint64(&t.total, atomic.LoadUint64(&t.total)+latency)
		if latency < atomic.LoadUint64(&t.min) {
			atomic.StoreUint64(&t.min, latency)
		}
		if latency > atomic.LoadUint64(&t.max) {
			atomic.StoreUint64(&t.max, latency)
		}
	case Locked:
		atomic.AddUint64(&p.shards[0][b], 1)
		t := &p.totals[0]
		atomic.AddUint64(&t.total, latency)
		for {
			cur := atomic.LoadUint64(&t.min)
			if latency >= cur || atomic.CompareAndSwapUint64(&t.min, cur, latency) {
				break
			}
		}
		for {
			cur := atomic.LoadUint64(&t.max)
			if latency <= cur || atomic.CompareAndSwapUint64(&t.max, cur, latency) {
				break
			}
		}
	case Sharded:
		i := shard % len(p.shards)
		p.shards[i][b]++
		t := &p.totals[i]
		t.total += latency
		if latency < t.min {
			t.min = latency
		}
		if latency > t.max {
			t.max = latency
		}
	}
}

// Snapshot merges all shards into a plain Profile, including the
// Total/Min/Max header fields, so derived statistics (Mean, automated
// analysis ordering by Total) work on the result.
func (p *ConcurrentProfile) Snapshot() *Profile {
	out := NewProfile(p.Op)
	for i, sh := range p.shards {
		var shardCount uint64
		for b := 0; b < MaxBuckets; b++ {
			c := atomic.LoadUint64(&sh[b])
			out.Buckets[b] += c
			shardCount += c
		}
		t := &p.totals[i]
		out.Total += atomic.LoadUint64(&t.total)
		if shardCount > 0 {
			if min := atomic.LoadUint64(&t.min); out.Count == 0 || min < out.Min {
				out.Min = min
			}
			if max := atomic.LoadUint64(&t.max); max > out.Max {
				out.Max = max
			}
		}
		out.Count += shardCount
	}
	return out
}

// Attempts returns the number of Record calls so far.
func (p *ConcurrentProfile) Attempts() uint64 { return p.attempts.Load() }

// Lost returns how many updates were dropped by concurrent
// unsynchronized increments (always 0 for Locked and Sharded once all
// writers have stopped).
func (p *ConcurrentProfile) Lost() uint64 {
	var sum uint64
	for _, sh := range p.shards {
		for b := 0; b < MaxBuckets; b++ {
			sum += atomic.LoadUint64(&sh[b])
		}
	}
	att := p.attempts.Load()
	if sum >= att {
		return 0
	}
	return att - sum
}
