package core

import "sync/atomic"

// This file implements the three bucket-update strategies discussed in
// §3.4 "Profile Locking". Bucket increments are not atomic by default;
// the paper measured that on a dual-CPU system fewer than 1% of updates
// are lost without locking, adopted lock-free updates for small CPU
// counts, and per-thread profiles for larger ones.

// LockingMode selects how concurrent bucket updates are synchronized.
type LockingMode int

const (
	// Unsync performs read-modify-write updates without any
	// synchronization: concurrent updates to the same bucket may be
	// lost, exactly like the paper's default mode. (The individual
	// loads and stores are atomic so the behavior is well defined;
	// only the increment is lossy.)
	Unsync LockingMode = iota

	// Locked uses atomic increments ("the lock prefix on i386"), which
	// never lose updates but serialize all CPUs on the bucket line.
	Locked

	// Sharded gives each thread its own bucket array, merged at read
	// time; no updates are lost on systems with any number of CPUs, as
	// long as each concurrent writer uses its own shard. Writers that
	// share a shard degrade to Unsync-style lossy updates.
	Sharded
)

func (m LockingMode) String() string {
	switch m {
	case Unsync:
		return "unsync"
	case Locked:
		return "locked"
	case Sharded:
		return "sharded"
	}
	return "unknown"
}

// shardPad separates shards by a cache line to avoid false sharing.
const shardPad = 8

// shardTotals carries the per-shard scalar aggregates (the Profile
// header fields: Total, Min, Max) alongside the bucket array, padded to
// a cache line so neighboring shards do not false-share. Each field is
// updated with the same discipline as the shard's bucket counters:
// lossy load/store for Unsync, atomic add/CAS for Locked, and plain
// single-writer updates for Sharded.
type shardTotals struct {
	total uint64
	min   uint64 // ^uint64(0) until the first record lands
	max   uint64
	_     [5]uint64 // pad to 64 bytes
}

// ConcurrentProfile is a histogram safe for use from multiple
// goroutines, with a selectable update strategy. All bucket and header
// updates go through atomic loads and stores (lossy or not according to
// Mode), so Snapshot may run at any time, concurrently with writers,
// and observes a well-defined (if slightly stale) state — the property
// the live Recorder API relies on to export profiles from a running
// program without stopping it.
type ConcurrentProfile struct {
	Op     string
	R      int
	Mode   LockingMode
	shards [][]uint64
	totals []shardTotals
	// attempts counts Record calls (always atomically), so the number
	// of lost updates is observable: Lost = attempts - sum(buckets).
	attempts atomic.Uint64
}

// NewConcurrentProfile creates a concurrent histogram for op at
// resolution 1. shards is the number of per-thread bucket arrays used
// in Sharded mode (ignored otherwise; one array is used).
//
// Deprecated-leaning shim: new code should construct collectors via
// the live Recorder options (internal/live, re-exported as
// osprof.NewRecorder), which compose resolution, mode, shard count and
// clock source; this constructor remains for direct low-level use.
func NewConcurrentProfile(op string, mode LockingMode, shards int) *ConcurrentProfile {
	return NewConcurrentProfileR(op, 1, mode, shards)
}

// NewConcurrentProfileR creates a concurrent histogram for op at
// resolution r (buckets per doubling of latency, like NewProfileR).
func NewConcurrentProfileR(op string, r int, mode LockingMode, shards int) *ConcurrentProfile {
	if r < 1 {
		r = 1
	}
	if mode != Sharded || shards < 1 {
		shards = 1
	}
	p := &ConcurrentProfile{Op: op, R: r, Mode: mode, totals: make([]shardTotals, shards)}
	for i := 0; i < shards; i++ {
		p.shards = append(p.shards, make([]uint64, NumBuckets(r)+shardPad))
		p.totals[i].min = ^uint64(0)
	}
	return p
}

// Record sorts one latency into its bucket. In Sharded mode, shard
// should identify the calling thread (e.g., a per-goroutine index);
// other modes ignore it.
func (p *ConcurrentProfile) Record(shard int, latency uint64) {
	p.attempts.Add(1)
	b := BucketFor(latency, p.R)
	switch p.Mode {
	case Unsync:
		// Lossy read-modify-write: two concurrent updaters can both
		// read n and both store n+1.
		addr := &p.shards[0][b]
		atomic.StoreUint64(addr, atomic.LoadUint64(addr)+1)
		t := &p.totals[0]
		atomic.StoreUint64(&t.total, atomic.LoadUint64(&t.total)+latency)
		if latency < atomic.LoadUint64(&t.min) {
			atomic.StoreUint64(&t.min, latency)
		}
		if latency > atomic.LoadUint64(&t.max) {
			atomic.StoreUint64(&t.max, latency)
		}
	case Locked:
		atomic.AddUint64(&p.shards[0][b], 1)
		t := &p.totals[0]
		atomic.AddUint64(&t.total, latency)
		for {
			cur := atomic.LoadUint64(&t.min)
			if latency >= cur || atomic.CompareAndSwapUint64(&t.min, cur, latency) {
				break
			}
		}
		for {
			cur := atomic.LoadUint64(&t.max)
			if latency <= cur || atomic.CompareAndSwapUint64(&t.max, cur, latency) {
				break
			}
		}
	case Sharded:
		// Single writer per shard by contract, so a load/store pair
		// loses nothing; using atomics (rather than plain ++) keeps
		// Snapshot safe to run concurrently with writers. The index is
		// folded into range (Go's % keeps the dividend's sign, and a
		// caller-supplied negative shard must not panic a production
		// recorder).
		i := shard % len(p.shards)
		if i < 0 {
			i += len(p.shards)
		}
		addr := &p.shards[i][b]
		atomic.StoreUint64(addr, atomic.LoadUint64(addr)+1)
		t := &p.totals[i]
		atomic.StoreUint64(&t.total, atomic.LoadUint64(&t.total)+latency)
		if latency < atomic.LoadUint64(&t.min) {
			atomic.StoreUint64(&t.min, latency)
		}
		if latency > atomic.LoadUint64(&t.max) {
			atomic.StoreUint64(&t.max, latency)
		}
	}
}

// Snapshot merges all shards into a plain Profile, including the
// Total/Min/Max header fields, so derived statistics (Mean, automated
// analysis ordering by Total) work on the result.
//
// Snapshot is safe to call while writers are still recording: every
// bucket is read atomically and Count is derived from the observed
// bucket populations, so the result always passes Validate. Updates
// that land mid-snapshot may be split between this snapshot and the
// next (the header Total can lag or lead the buckets by the in-flight
// operations), exactly the staleness a live /proc-style export has.
func (p *ConcurrentProfile) Snapshot() *Profile {
	out := NewProfileR(p.Op, p.R)
	n := NumBuckets(p.R)
	hasMin := false
	for i, sh := range p.shards {
		var shardCount uint64
		for b := 0; b < n; b++ {
			c := atomic.LoadUint64(&sh[b])
			out.Buckets[b] += c
			shardCount += c
		}
		t := &p.totals[i]
		out.Total += atomic.LoadUint64(&t.total)
		if shardCount > 0 {
			// A writer stores the bucket before the min, so a snapshot
			// racing a shard's first-ever Record can observe a count
			// with min still at its ^0 sentinel; skip it rather than
			// export a garbage header. (A genuine latency of 2^64-1 is
			// indistinguishable from the sentinel and also skipped —
			// that is ~344 years of cycles, not a real request.)
			if min := atomic.LoadUint64(&t.min); min != ^uint64(0) && (!hasMin || min < out.Min) {
				out.Min = min
				hasMin = true
			}
			if max := atomic.LoadUint64(&t.max); max > out.Max {
				out.Max = max
			}
		}
		out.Count += shardCount
	}
	return out
}

// Attempts returns the number of Record calls so far.
func (p *ConcurrentProfile) Attempts() uint64 { return p.attempts.Load() }

// Lost returns how many updates were dropped by concurrent
// unsynchronized increments (always 0 for Locked and Sharded once all
// writers have stopped).
func (p *ConcurrentProfile) Lost() uint64 {
	var sum uint64
	n := NumBuckets(p.R)
	for _, sh := range p.shards {
		for b := 0; b < n; b++ {
			sum += atomic.LoadUint64(&sh[b])
		}
	}
	att := p.attempts.Load()
	if sum >= att {
		return 0
	}
	return att - sum
}
