package core

import "sync/atomic"

// This file implements the three bucket-update strategies discussed in
// §3.4 "Profile Locking". Bucket increments are not atomic by default;
// the paper measured that on a dual-CPU system fewer than 1% of updates
// are lost without locking, adopted lock-free updates for small CPU
// counts, and per-thread profiles for larger ones.

// LockingMode selects how concurrent bucket updates are synchronized.
type LockingMode int

const (
	// Unsync performs read-modify-write updates without any
	// synchronization: concurrent updates to the same bucket may be
	// lost, exactly like the paper's default mode. (The individual
	// loads and stores are atomic so the behavior is well defined;
	// only the increment is lossy.)
	Unsync LockingMode = iota

	// Locked uses atomic increments ("the lock prefix on i386"), which
	// never lose updates but serialize all CPUs on the bucket line.
	Locked

	// Sharded gives each thread its own bucket array, merged at read
	// time; no updates are lost on systems with any number of CPUs.
	Sharded
)

func (m LockingMode) String() string {
	switch m {
	case Unsync:
		return "unsync"
	case Locked:
		return "locked"
	case Sharded:
		return "sharded"
	}
	return "unknown"
}

// shardPad separates shards by a cache line to avoid false sharing.
const shardPad = 8

// ConcurrentProfile is a fixed-resolution-1 histogram safe for use from
// multiple goroutines, with a selectable update strategy.
type ConcurrentProfile struct {
	Op     string
	Mode   LockingMode
	shards [][]uint64
	// attempts counts Record calls (always atomically), so the number
	// of lost updates is observable: Lost = attempts - sum(buckets).
	attempts atomic.Uint64
}

// NewConcurrentProfile creates a concurrent histogram for op. shards is
// the number of per-thread bucket arrays used in Sharded mode (ignored
// otherwise; one array is used).
func NewConcurrentProfile(op string, mode LockingMode, shards int) *ConcurrentProfile {
	if mode != Sharded || shards < 1 {
		shards = 1
	}
	p := &ConcurrentProfile{Op: op, Mode: mode}
	for i := 0; i < shards; i++ {
		p.shards = append(p.shards, make([]uint64, MaxBuckets+shardPad))
	}
	return p
}

// Record sorts one latency into its bucket. In Sharded mode, shard
// should identify the calling thread (e.g., a per-goroutine index);
// other modes ignore it.
func (p *ConcurrentProfile) Record(shard int, latency uint64) {
	p.attempts.Add(1)
	b := BucketFor(latency, 1)
	switch p.Mode {
	case Unsync:
		// Lossy read-modify-write: two concurrent updaters can both
		// read n and both store n+1.
		addr := &p.shards[0][b]
		atomic.StoreUint64(addr, atomic.LoadUint64(addr)+1)
	case Locked:
		atomic.AddUint64(&p.shards[0][b], 1)
	case Sharded:
		p.shards[shard%len(p.shards)][b]++
	}
}

// Snapshot merges all shards into a plain Profile.
func (p *ConcurrentProfile) Snapshot() *Profile {
	out := NewProfile(p.Op)
	for _, sh := range p.shards {
		for b := 0; b < MaxBuckets; b++ {
			c := atomic.LoadUint64(&sh[b])
			out.Buckets[b] += c
			out.Count += c
		}
	}
	return out
}

// Attempts returns the number of Record calls so far.
func (p *ConcurrentProfile) Attempts() uint64 { return p.attempts.Load() }

// Lost returns how many updates were dropped by concurrent
// unsynchronized increments (always 0 for Locked and Sharded once all
// writers have stopped).
func (p *ConcurrentProfile) Lost() uint64 {
	var sum uint64
	for _, sh := range p.shards {
		for b := 0; b < MaxBuckets; b++ {
			sum += atomic.LoadUint64(&sh[b])
		}
	}
	att := p.attempts.Load()
	if sum >= att {
		return 0
	}
	return att - sum
}
