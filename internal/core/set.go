package core

import (
	"fmt"
	"sort"
)

// Set is a complete profile: the collection of per-operation profiles
// captured during one run ("a complete profile may consist of dozens of
// profiles of individual operations", §3.1). Operations are created on
// demand and iterated in a stable order.
type Set struct {
	// Name labels the run (e.g., "ext2-grep", "cifs-windows-client").
	Name string

	// R is the resolution used for all member profiles.
	R int

	ops   map[string]*Profile
	order []string
}

// NewSet creates an empty profile set at resolution 1.
func NewSet(name string) *Set { return NewSetR(name, 1) }

// NewSetR creates an empty profile set at resolution r.
func NewSetR(name string, r int) *Set {
	if r < 1 {
		r = 1
	}
	return &Set{Name: name, R: r, ops: make(map[string]*Profile)}
}

// Get returns the profile for op, creating it if needed.
func (s *Set) Get(op string) *Profile {
	if p, ok := s.ops[op]; ok {
		return p
	}
	p := NewProfileR(op, s.R)
	s.ops[op] = p
	s.order = append(s.order, op)
	return p
}

// Lookup returns the profile for op, or nil if never recorded.
func (s *Set) Lookup(op string) *Profile { return s.ops[op] }

// Record sorts one latency into op's profile.
func (s *Set) Record(op string, latency uint64) { s.Get(op).Record(latency) }

// Ops returns operation names in creation order.
func (s *Set) Ops() []string { return append([]string(nil), s.order...) }

// AppendOps appends the operation names in creation order to dst and
// returns the extended slice. It lets iteration-heavy callers (e.g.
// analysis.Selector.Compare) reuse one buffer instead of allocating a
// fresh copy per call.
func (s *Set) AppendOps(dst []string) []string { return append(dst, s.order...) }

// Profiles returns the member profiles in creation order.
func (s *Set) Profiles() []*Profile {
	out := make([]*Profile, 0, len(s.order))
	for _, op := range s.order {
		out = append(out, s.ops[op])
	}
	return out
}

// ByTotalLatency returns the member profiles sorted by descending total
// latency; automated analysis starts "by selecting a subset of profiles
// that contribute the most to the total latency" (§3.1, §3.2).
func (s *Set) ByTotalLatency() []*Profile {
	out := s.Profiles()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Op < out[j].Op
	})
	return out
}

// TotalLatency sums the total latency over all member profiles.
func (s *Set) TotalLatency() uint64 {
	var sum uint64
	for _, p := range s.ops {
		sum += p.Total
	}
	return sum
}

// TotalOps sums the operation counts over all member profiles.
func (s *Set) TotalOps() uint64 {
	var sum uint64
	for _, p := range s.ops {
		sum += p.Count
	}
	return sum
}

// Len reports the number of member profiles.
func (s *Set) Len() int { return len(s.ops) }

// Validate checks every member profile's checksum.
func (s *Set) Validate() error {
	for _, op := range s.order {
		if err := s.ops[op].Validate(); err != nil {
			return fmt.Errorf("set %q: %w", s.Name, err)
		}
	}
	return nil
}

// Merge adds every profile of other into s, creating missing operations.
// Used to combine per-CPU or per-process shards (§3.4).
func (s *Set) Merge(other *Set) error {
	for _, op := range other.order {
		if err := s.Get(op).Merge(other.ops[op]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := NewSetR(s.Name, s.R)
	for _, op := range s.order {
		c.ops[op] = s.ops[op].Clone()
		c.order = append(c.order, op)
	}
	return c
}

// MemoryFootprint reports the approximate resident size of all member
// profiles in bytes (§5.1).
func (s *Set) MemoryFootprint() int {
	total := 0
	for _, p := range s.ops {
		total += p.MemoryFootprint()
	}
	return total
}
