package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBucketForKnownValues(t *testing.T) {
	cases := []struct {
		latency uint64
		r       int
		want    int
	}{
		{0, 1, 0},
		{1, 1, 0},
		{2, 1, 1},
		{3, 1, 1},
		{4, 1, 2},
		{1023, 1, 9},
		{1024, 1, 10},
		{1 << 26, 1, 26},
		{(1 << 27) - 1, 1, 26},
		{math.MaxUint64, 1, 63},
		// r=2 doubles the bucket density (§3).
		{2, 2, 2},
		{4, 2, 4},
		{5, 2, 4}, // 2*log2(5) = 4.64
		{6, 2, 5}, // 2*log2(6) = 5.17
		{64, 2, 12},
	}
	for _, c := range cases {
		if got := BucketFor(c.latency, c.r); got != c.want {
			t.Errorf("BucketFor(%d, r=%d) = %d, want %d", c.latency, c.r, got, c.want)
		}
	}
}

func TestBucketBoundsR1(t *testing.T) {
	for b := 1; b < 63; b++ {
		lo, hi := BucketLow(b, 1), BucketHigh(b, 1)
		if lo != 1<<uint(b) {
			t.Fatalf("BucketLow(%d) = %d, want %d", b, lo, uint64(1)<<uint(b))
		}
		if hi != (1<<uint(b+1))-1 {
			t.Fatalf("BucketHigh(%d) = %d", b, hi)
		}
		if BucketFor(lo, 1) != b || BucketFor(hi, 1) != b {
			t.Fatalf("bounds of bucket %d do not map back", b)
		}
	}
}

func TestBucketMean(t *testing.T) {
	// Paper §3.3: "the average latency of bucket b is equal to
	// t_cpu = 3/2 * 2^b".
	if got := BucketMean(10); got != 1536 {
		t.Errorf("BucketMean(10) = %d, want 1536", got)
	}
	if got := BucketMean(0); got != 1 {
		t.Errorf("BucketMean(0) = %d, want 1", got)
	}
}

// Property: BucketFor is monotone non-decreasing in latency.
func TestBucketForMonotoneProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return BucketFor(a, 1) <= BucketFor(b, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every latency falls within the bounds of its own bucket.
func TestBucketBoundsContainProperty(t *testing.T) {
	for _, r := range []int{1, 2, 4} {
		r := r
		f := func(l uint64) bool {
			// Resolutions > 1 are float-based and documented exact
			// below 2^52; stay inside that envelope.
			l = l%(1<<48) + 1
			b := BucketFor(l, r)
			return BucketLow(b, r) <= l && l <= BucketHigh(b, r)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("r=%d: %v", r, err)
		}
	}
}

// Property: doubling a latency advances the bucket index by exactly r
// (the definition of a logarithmic profile with resolution r), as long
// as no clamping occurs.
func TestBucketDoublingProperty(t *testing.T) {
	for _, r := range []int{1, 2} {
		r := r
		f := func(l uint64) bool {
			l = l%(1<<40) + 2
			return BucketFor(l*2, r) == BucketFor(l, r)+r
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("r=%d: %v", r, err)
		}
	}
}

// Property: non-linear logarithmic filtering (§3): adding a second
// latency component epsilon <= t_max moves the result at most one
// bucket at r=1.
func TestLogFilteringProperty(t *testing.T) {
	f := func(tmax, eps uint64) bool {
		tmax = tmax%(1<<40) + 1
		eps = eps % (tmax + 1) // epsilon <= tmax
		b0 := BucketFor(tmax, 1)
		b1 := BucketFor(tmax+eps, 1)
		return b1 == b0 || b1 == b0+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestNumBuckets(t *testing.T) {
	if NumBuckets(1) != 64 || NumBuckets(2) != 128 {
		t.Errorf("NumBuckets wrong: %d, %d", NumBuckets(1), NumBuckets(2))
	}
}

func TestBucketForClampsAtResolutionMax(t *testing.T) {
	if got := BucketFor(math.MaxUint64, 2); got != NumBuckets(2)-1 {
		t.Errorf("BucketFor(max, r=2) = %d, want %d", got, NumBuckets(2)-1)
	}
}
