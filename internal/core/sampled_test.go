package core

import "testing"

func TestSampledSegmentsByTime(t *testing.T) {
	s := NewSampled("read", 0, 1000)
	s.Record(10, 5)   // segment 0
	s.Record(999, 5)  // segment 0
	s.Record(1000, 7) // segment 1
	s.Record(4500, 9) // segment 4
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.Segment(0).Count != 2 {
		t.Errorf("segment 0 count = %d, want 2", s.Segment(0).Count)
	}
	if s.Segment(1).Count != 1 {
		t.Errorf("segment 1 count = %d, want 1", s.Segment(1).Count)
	}
	if s.Segment(2).Count != 0 || s.Segment(3).Count != 0 {
		t.Error("empty middle segments have records")
	}
	if s.Segment(4).Count != 1 {
		t.Errorf("segment 4 count = %d, want 1", s.Segment(4).Count)
	}
}

func TestSampledStartOffset(t *testing.T) {
	s := NewSampled("read", 5000, 1000)
	s.Record(5100, 1) // segment 0 relative to Start
	s.Record(6100, 1) // segment 1
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
}

func TestSampledRecordBeforeStart(t *testing.T) {
	s := NewSampled("read", 5000, 1000)
	s.Record(100, 1) // before Start: clamps into segment 0
	if s.Segment(0).Count != 1 {
		t.Error("early record lost")
	}
}

func TestSampledFlattenEqualsTotal(t *testing.T) {
	s := NewSampled("read", 0, 100)
	for i := uint64(0); i < 1000; i += 7 {
		s.Record(i, i+1)
	}
	flat := s.Flatten()
	var want uint64
	for _, seg := range s.Segments() {
		want += seg.Count
	}
	if flat.Count != want {
		t.Errorf("flatten count = %d, want %d", flat.Count, want)
	}
	if err := flat.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSampledSegmentOutOfRange(t *testing.T) {
	s := NewSampled("read", 0, 100)
	if s.Segment(-1) != nil || s.Segment(0) != nil {
		t.Error("Segment out of range should return nil")
	}
}

func TestSampledValidate(t *testing.T) {
	s := NewSampled("read", 0, 100)
	s.Record(50, 5)
	if err := s.Validate(); err != nil {
		t.Error(err)
	}
	s.Segment(0).Buckets[9]++
	if err := s.Validate(); err == nil {
		t.Error("Validate missed corrupted segment")
	}
}

func TestSampledMaxSegmentsBoundsIdleGap(t *testing.T) {
	s := NewSampled("op", 0, 10)
	s.MaxSegments = 4
	s.Record(5, 1)         // segment 0
	s.Record(1_000_000, 2) // far past the window: folds into segment 3
	s.Record(2_000_000, 3) // ditto
	if s.Len() != 4 {
		t.Fatalf("materialized %d segments, want capped 4", s.Len())
	}
	if s.Segment(3).Count != 2 {
		t.Errorf("final segment count = %d, want 2", s.Segment(3).Count)
	}
	if c := s.Clone(); c.MaxSegments != 4 {
		t.Errorf("Clone dropped MaxSegments: %d", c.MaxSegments)
	}
	if s.Flatten().Count != 3 {
		t.Errorf("flatten count = %d", s.Flatten().Count)
	}
}
