package core

import (
	"bytes"
	"strings"
	"testing"
)

func sampleRun() *Run {
	s := NewSet("ext2/grep")
	s.Record("readdir", 100)
	s.Record("readdir", 5_000)
	s.Record("read page", 1_000_000)
	return &Run{
		Fingerprint: "abc123",
		Meta:        map[string]string{"backend": "ext2", "elapsed": "42", "note": "a \"quoted\" value"},
		Set:         s,
	}
}

func TestRunRoundTrip(t *testing.T) {
	r := sampleRun()
	var buf bytes.Buffer
	if err := WriteRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatalf("ReadRun: %v", err)
	}
	if got.Fingerprint != r.Fingerprint {
		t.Errorf("fingerprint %q, want %q", got.Fingerprint, r.Fingerprint)
	}
	if len(got.Meta) != len(r.Meta) {
		t.Fatalf("meta %v, want %v", got.Meta, r.Meta)
	}
	for k, v := range r.Meta {
		if got.Meta[k] != v {
			t.Errorf("meta[%q] = %q, want %q", k, got.Meta[k], v)
		}
	}
	if got.Name() != "ext2/grep" || got.Set.TotalOps() != r.Set.TotalOps() {
		t.Errorf("set mangled: %q ops=%d", got.Name(), got.Set.TotalOps())
	}
}

// Serialization must be deterministic: identical runs marshal to
// identical bytes (the content-addressed archive's dedup invariant).
// Map iteration order must not leak into the output.
func TestRunDeterministicBytes(t *testing.T) {
	var first []byte
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := WriteRun(&buf, sampleRun()); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = buf.Bytes()
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("serialization not deterministic:\n%s\nvs\n%s", first, buf.Bytes())
		}
	}
}

// A bare osprof-set stream stays readable as a fingerprint-less run.
func TestReadRunAcceptsBareSet(t *testing.T) {
	s := NewSet("legacy")
	s.Record("read", 99)
	var buf bytes.Buffer
	if err := WriteSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	run, err := ReadRun(&buf)
	if err != nil {
		t.Fatalf("ReadRun(bare set): %v", err)
	}
	if run.Fingerprint != "" || len(run.Meta) != 0 {
		t.Errorf("bare set grew envelope fields: %+v", run)
	}
	if run.Name() != "legacy" || run.Set.TotalOps() != 1 {
		t.Errorf("bare set mangled: %+v", run.Set)
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		WriteRun(&buf, sampleRun())
		return buf.String()
	}()
	cases := map[string]string{
		"empty":             "",
		"no fingerprint":    "osprof-run v1 nope\nosprof-set v1 \"x\" r=1\nend\n",
		"unquoted fp":       "osprof-run v1 fingerprint=abc\nosprof-set v1 \"x\" r=1\nend\n",
		"header trailing":   "osprof-run v1 fingerprint=\"a\" junk\nosprof-set v1 \"x\" r=1\nend\n",
		"bad meta key":      "osprof-run v1 fingerprint=\"a\"\nmeta nope \"v\"\nosprof-set v1 \"x\" r=1\nend\n",
		"bad meta value":    "osprof-run v1 fingerprint=\"a\"\nmeta \"k\" nope\nosprof-set v1 \"x\" r=1\nend\n",
		"meta trailing":     "osprof-run v1 fingerprint=\"a\"\nmeta \"k\" \"v\" junk\nosprof-set v1 \"x\" r=1\nend\n",
		"no set":            "osprof-run v1 fingerprint=\"a\"\nmeta \"k\" \"v\"\n",
		"set garbage":       "osprof-run v1 fingerprint=\"a\"\nnot-a-set\nend\n",
		"trailing data":     valid + "surprise\n",
		"truncated":         strings.TrimSuffix(valid, "end\n"),
		"double end junked": valid + "end\nop \"x\" count=1 total=1 min=1 max=1\n",
	}
	for name, in := range cases {
		if _, err := ReadRun(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadRun accepted %q", name, in)
		}
	}
}

func TestWriteRunEmptyMeta(t *testing.T) {
	s := NewSet("m")
	r := &Run{Set: s}
	var buf bytes.Buffer
	if err := WriteRun(&buf, r); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "meta ") {
		t.Errorf("empty meta rendered: %s", buf.String())
	}
	back, err := ReadRun(&buf)
	if err != nil || back.Fingerprint != "" {
		t.Fatalf("round trip: %v %+v", err, back)
	}
}
