package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfileRecordBasics(t *testing.T) {
	p := NewProfile("read")
	for _, l := range []uint64{100, 200, 3000, 100} {
		p.Record(l)
	}
	if p.Count != 4 {
		t.Errorf("Count = %d, want 4", p.Count)
	}
	if p.Total != 3400 {
		t.Errorf("Total = %d, want 3400", p.Total)
	}
	if p.Min != 100 || p.Max != 3000 {
		t.Errorf("Min/Max = %d/%d, want 100/3000", p.Min, p.Max)
	}
	if p.Buckets[6] != 2 { // 100 -> bucket 6
		t.Errorf("bucket 6 = %d, want 2", p.Buckets[6])
	}
	if p.Buckets[7] != 1 { // 200 -> bucket 7
		t.Errorf("bucket 7 = %d, want 1", p.Buckets[7])
	}
	if p.Buckets[11] != 1 { // 3000 -> bucket 11
		t.Errorf("bucket 11 = %d, want 1", p.Buckets[11])
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestProfileValidateDetectsCorruption(t *testing.T) {
	p := NewProfile("x")
	p.Record(5)
	p.Buckets[2]++ // simulate an instrumentation bug
	if err := p.Validate(); err == nil {
		t.Error("Validate did not detect checksum mismatch")
	}
}

func TestProfileMeanAndRange(t *testing.T) {
	p := NewProfile("x")
	if p.Mean() != 0 {
		t.Errorf("empty Mean = %d", p.Mean())
	}
	if _, _, ok := p.Range(); ok {
		t.Error("empty profile reported a range")
	}
	p.Record(64)   // bucket 6
	p.Record(128)  // bucket 7
	p.Record(4096) // bucket 12
	lo, hi, ok := p.Range()
	if !ok || lo != 6 || hi != 12 {
		t.Errorf("Range = %d,%d,%v, want 6,12,true", lo, hi, ok)
	}
	if p.Mean() != (64+128+4096)/3 {
		t.Errorf("Mean = %d", p.Mean())
	}
}

func TestProfileMerge(t *testing.T) {
	a, b := NewProfile("op"), NewProfile("op-cpu1")
	a.Record(100)
	a.Record(200_000)
	b.Record(50)
	b.Record(70)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count != 4 || a.Min != 50 || a.Max != 200_000 {
		t.Errorf("merged: count=%d min=%d max=%d", a.Count, a.Min, a.Max)
	}
	if err := a.Validate(); err != nil {
		t.Error(err)
	}
}

func TestProfileMergeResolutionMismatch(t *testing.T) {
	a, b := NewProfileR("x", 1), NewProfileR("x", 2)
	if err := a.Merge(b); err == nil {
		t.Error("merge across resolutions did not fail")
	}
}

func TestProfileMergeEmptyKeepsMin(t *testing.T) {
	a, b := NewProfile("x"), NewProfile("x")
	a.Record(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Min != 100 || a.Count != 1 {
		t.Errorf("merge with empty changed stats: min=%d count=%d", a.Min, a.Count)
	}
}

func TestProfileCloneIndependent(t *testing.T) {
	p := NewProfile("x")
	p.Record(42)
	c := p.Clone()
	c.Record(42)
	if p.Count != 1 || c.Count != 2 {
		t.Errorf("clone not independent: %d vs %d", p.Count, c.Count)
	}
}

func TestProfileReset(t *testing.T) {
	p := NewProfile("x")
	p.Record(1000)
	p.Reset()
	if p.Count != 0 || p.Total != 0 || p.Max != 0 {
		t.Errorf("Reset incomplete: %+v", p)
	}
	if _, _, ok := p.Range(); ok {
		t.Error("Reset left non-empty buckets")
	}
}

func TestProfileNormalized(t *testing.T) {
	p := NewProfile("x")
	p.Record(2) // bucket 1
	p.Record(2)
	p.Record(4) // bucket 2
	n := p.Normalized()
	if n[1] != 2.0/3 || n[2] != 1.0/3 {
		t.Errorf("Normalized = %v %v", n[1], n[2])
	}
	var sum float64
	for _, v := range n {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("Normalized sum = %f", sum)
	}
}

func TestProfileCountIn(t *testing.T) {
	p := NewProfile("x")
	for i := 0; i < 10; i++ {
		p.Record(1 << uint(i)) // one per bucket 0..9
	}
	if got := p.CountIn(3, 5); got != 3 {
		t.Errorf("CountIn(3,5) = %d, want 3", got)
	}
	if got := p.CountIn(-5, 100); got != 10 {
		t.Errorf("CountIn clamped = %d, want 10", got)
	}
}

func TestProfileMemoryFootprintSmall(t *testing.T) {
	// §5.1: a profile occupies a fixed memory area, usually < 1KB.
	p := NewProfile("some_operation")
	if f := p.MemoryFootprint(); f > 1024 {
		t.Errorf("footprint = %d bytes, want <= 1KB", f)
	}
}

// Property: checksum always validates after any sequence of records and
// merges of valid profiles.
func TestProfileChecksumProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := NewProfile("a"), NewProfile("b")
		for i := 0; i < int(n); i++ {
			// Bounded like TestProfileStatsProperty: an unbounded
			// sequence can overflow Total, which Merge now reports
			// (ErrCounterOverflow) instead of silently wrapping.
			a.Record(uint64(rng.Int63()) % (1 << 40))
			b.Record(uint64(rng.Int63()) % (1 << 40))
		}
		if a.Merge(b) != nil {
			return false
		}
		return a.Validate() == nil && a.Count == 2*uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Total equals the sum of recorded latencies and Mean is
// bounded by Min and Max.
func TestProfileStatsProperty(t *testing.T) {
	f := func(ls []uint64) bool {
		if len(ls) == 0 {
			return true
		}
		p := NewProfile("x")
		var want uint64
		for _, l := range ls {
			l %= 1 << 40 // avoid Total overflow
			p.Record(l)
			want += l
		}
		m := p.Mean()
		return p.Total == want && m >= p.Min && m <= p.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
