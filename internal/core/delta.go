package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the incremental ("delta") run envelope and the
// histogram-merge operator over envelopes. A long-lived recorder's
// cumulative profile only grows, so after the first export every later
// export repeats almost all of its bytes; at fleet scale that is the
// difference between shipping O(new counts) and O(history) per report
// interval. A delta carries only the buckets that changed since the
// session's previous export, numbered by its position in the session's
// chain, and applying the chain in order onto an empty run rebuilds
// the full envelope byte-for-byte.
//
// Format:
//
//	osprof-run-delta v1 fingerprint=<hex> seq=<n>
//	meta <key> <value>
//	...
//	osprof-set-delta v1 <name> r=<r>
//	op <name> count=<dn> total=<dn> min=<n> max=<n>
//	b <bucket> <dcount>
//	...
//	end
//
// The set block reuses the osprof-set grammar under its own header
// keyword: bucket lines and the count/total fields are INCREMENTS
// since the previous export, while min and max are the cumulative
// absolutes at export time (extremes are not additive, but the
// cumulative min only ever decreases and the max only ever increases,
// so folding the absolutes in is exact). The meta lines carry the
// session's full current metadata — it is tiny, and shipping it whole
// keeps chain replay byte-identical even when a value is rewritten
// mid-session.

const (
	deltaHeader    = "osprof-run-delta v1"
	deltaSetHeader = "osprof-set-delta v1"
)

// Delta is one incremental export: the changes a session accumulated
// since its previous export.
type Delta struct {
	// Fingerprint identifies the producing configuration; a delta can
	// only apply to a run with the same fingerprint.
	Fingerprint string

	// Seq is the 1-based position in the session's delta chain. A
	// receiver applies deltas strictly in sequence; seq 1 restarts the
	// chain (a new session of the same configuration).
	Seq int

	// Meta is the session's full current metadata (not a diff).
	Meta map[string]string

	// Set holds the increments: bucket counts, Count and Total are
	// deltas since the previous export, Min and Max are the cumulative
	// absolutes. An operation appears iff it changed — or is new since
	// the previous export, so that replay reproduces op creation order.
	Set *Set
}

// Name returns the delta's set name.
func (d *Delta) Name() string {
	if d.Set == nil {
		return ""
	}
	return d.Set.Name
}

// DeltaOf computes the delta from prev to cur: the increments a
// receiver must apply to prev's state to reach cur's. prev may be nil
// (the chain's first export, everything is new). The two runs must
// agree on fingerprint, set name, and resolution, and cur must be a
// superset of prev (counters never shrink on a live recorder); any
// violation is an error, not a best-effort diff.
func DeltaOf(prev, cur *Run, seq int) (*Delta, error) {
	if cur == nil || cur.Set == nil {
		return nil, fmt.Errorf("osprof: delta: nil current run")
	}
	if seq < 1 {
		return nil, fmt.Errorf("osprof: delta: seq %d < 1", seq)
	}
	d := &Delta{
		Fingerprint: cur.Fingerprint,
		Seq:         seq,
		Meta:        cloneMeta(cur.Meta),
		Set:         NewSetR(cur.Set.Name, cur.Set.R),
	}
	var prevSet *Set
	if prev != nil {
		if prev.Fingerprint != cur.Fingerprint {
			return nil, fmt.Errorf("osprof: delta: fingerprint changed %.12s != %.12s",
				prev.Fingerprint, cur.Fingerprint)
		}
		if prev.Set == nil {
			return nil, fmt.Errorf("osprof: delta: previous run has no set")
		}
		if prev.Set.Name != cur.Set.Name {
			return nil, fmt.Errorf("osprof: delta: set name changed %q != %q",
				prev.Set.Name, cur.Set.Name)
		}
		if prev.Set.R != cur.Set.R {
			return nil, fmt.Errorf("osprof: delta: resolution changed %d != %d",
				prev.Set.R, cur.Set.R)
		}
		prevSet = prev.Set
	}
	// The order slice is iterated directly (not via the copying Ops
	// accessor): DeltaOf runs once per report interval per recorder,
	// and its cost must scale with the CHANGED ops, not with history.
	for _, op := range cur.Set.order {
		cp := cur.Set.Lookup(op)
		var pp *Profile
		if prevSet != nil {
			pp = prevSet.Lookup(op)
		}
		dp, changed, err := profileDelta(pp, cp)
		if err != nil {
			return nil, err
		}
		// A new-but-empty operation (materialized, never recorded)
		// still rides once, so replay reproduces op creation order.
		if changed || pp == nil {
			*d.Set.Get(op) = *dp
		}
	}
	return d, nil
}

// profileDelta computes cur - prev for one operation (prev nil = all
// of cur is new). changed is false when no counter moved. Validation
// and change detection run before any allocation, so an unchanged op
// — the overwhelming case in a wide set at fleet report rate — costs
// one bucket scan and nothing else.
func profileDelta(prev, cur *Profile) (*Profile, bool, error) {
	if prev == nil {
		d := NewProfileR(cur.Op, cur.R)
		*d = *cur.Clone()
		return d, cur.Count > 0, nil
	}
	if prev.R != cur.R {
		return nil, false, fmt.Errorf("osprof: delta %q: resolution mismatch %d != %d",
			cur.Op, prev.R, cur.R)
	}
	changed := false
	for i, c := range cur.Buckets {
		if c < prev.Buckets[i] {
			return nil, false, fmt.Errorf("osprof: delta %q: bucket %d shrank %d -> %d (not a delta chain)",
				cur.Op, i, prev.Buckets[i], c)
		}
		changed = changed || c != prev.Buckets[i]
	}
	if cur.Count < prev.Count || cur.Total < prev.Total {
		return nil, false, fmt.Errorf("osprof: delta %q: counters shrank (not a delta chain)", cur.Op)
	}
	changed = changed || cur.Count != prev.Count || cur.Total != prev.Total ||
		cur.Min != prev.Min || cur.Max != prev.Max
	if !changed {
		return nil, false, nil
	}
	d := NewProfileR(cur.Op, cur.R)
	for i, c := range cur.Buckets {
		d.Buckets[i] = c - prev.Buckets[i]
	}
	d.Count = cur.Count - prev.Count
	d.Total = cur.Total - prev.Total
	d.Min, d.Max = cur.Min, cur.Max
	return d, true, nil
}

// Apply folds the delta into run, mutating it toward the state the
// producing session exported. The run adopts the delta's fingerprint
// and set name when still empty (the chain's first delta); otherwise
// they must match. Apply is transactional: resolution mismatches and
// counter overflows are detected before any state changes.
func (r *Run) Apply(d *Delta) error {
	if d == nil || d.Set == nil {
		return fmt.Errorf("osprof: apply: nil delta")
	}
	if r.Set == nil {
		r.Set = NewSetR(d.Set.Name, d.Set.R)
		r.Fingerprint = d.Fingerprint
	}
	if r.Fingerprint != d.Fingerprint {
		return fmt.Errorf("osprof: apply: fingerprint mismatch %.12s != %.12s",
			r.Fingerprint, d.Fingerprint)
	}
	if r.Set.Name != d.Set.Name {
		return fmt.Errorf("osprof: apply: set name mismatch %q != %q", r.Set.Name, d.Set.Name)
	}
	if r.Set.R != d.Set.R {
		return fmt.Errorf("osprof: apply: resolution mismatch %d != %d", r.Set.R, d.Set.R)
	}
	// Verify every addition before applying any (the receiver may be a
	// server-side accumulator; a bad delta must not corrupt it). The
	// order slices are iterated directly, not through the copying Ops
	// accessor: one delta per report interval per recorder makes Apply
	// a hot path that must stay allocation-free in the steady state.
	for _, op := range d.Set.order {
		dp := d.Set.Lookup(op)
		if p := r.Set.Lookup(op); p != nil {
			if err := p.checkMerge(dp); err != nil {
				return fmt.Errorf("osprof: apply: %w", err)
			}
		}
	}
	for _, op := range d.Set.order {
		dp := d.Set.Lookup(op)
		p := r.Set.Get(op)
		for i, c := range dp.Buckets {
			p.Buckets[i] += c
		}
		if dp.Count > 0 {
			// Min/Max ride as cumulative absolutes: fold them in.
			if p.Count == 0 || dp.Min < p.Min {
				p.Min = dp.Min
			}
			if dp.Max > p.Max {
				p.Max = dp.Max
			}
		}
		p.Count += dp.Count
		p.Total += dp.Total
	}
	applyMeta(&r.Meta, d.Meta)
	return nil
}

// applyMeta makes dst's contents equal src without allocating a new
// map in the steady state (the server applies one delta per report
// interval per recorder — the hot path).
func applyMeta(dst *map[string]string, src map[string]string) {
	if *dst == nil {
		*dst = cloneMeta(src)
		return
	}
	for k := range *dst {
		if _, ok := src[k]; !ok {
			delete(*dst, k)
		}
	}
	for k, v := range src {
		(*dst)[k] = v
	}
}

// cloneMeta copies a metadata map (nil stays nil).
func cloneMeta(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// MergeRun folds src's histograms into dst: the envelope-level merge
// operator (combining per-node runs of the same configuration, §3.4's
// per-CPU merge lifted to whole envelopes). The envelopes must agree
// on fingerprint and resolution; metadata is united with src winning
// conflicts. Set-level resolution mismatch and counter overflow are
// detected before dst changes.
func MergeRun(dst, src *Run) error {
	if src == nil || src.Set == nil {
		return fmt.Errorf("osprof: merge: nil source run")
	}
	if dst.Set == nil {
		dst.Set = NewSetR(src.Set.Name, src.Set.R)
		dst.Fingerprint = src.Fingerprint
	}
	if dst.Fingerprint != src.Fingerprint {
		return fmt.Errorf("osprof: merge: fingerprint mismatch %.12s != %.12s",
			dst.Fingerprint, src.Fingerprint)
	}
	if dst.Set.R != src.Set.R {
		return fmt.Errorf("osprof: merge: resolution mismatch %d != %d", dst.Set.R, src.Set.R)
	}
	for _, op := range src.Set.Ops() {
		sp := src.Set.Lookup(op)
		if p := dst.Set.Lookup(op); p != nil {
			if err := p.checkMerge(sp); err != nil {
				return fmt.Errorf("osprof: merge: %w", err)
			}
		}
	}
	for _, op := range src.Set.Ops() {
		// The pre-check above makes this Merge infallible.
		_ = dst.Set.Get(op).Merge(src.Set.Lookup(op))
	}
	if len(src.Meta) > 0 && dst.Meta == nil {
		dst.Meta = make(map[string]string, len(src.Meta))
	}
	for k, v := range src.Meta {
		dst.Meta[k] = v
	}
	return nil
}

// WriteDelta serializes the delta envelope to w.
func WriteDelta(w io.Writer, d *Delta) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s fingerprint=%q seq=%d\n", deltaHeader, d.Fingerprint, d.Seq)
	writeMeta(bw, d.Meta)
	if err := bw.Flush(); err != nil {
		return err
	}
	return writeSetAs(w, d.Set, deltaSetHeader)
}

// ReadDelta parses a delta envelope serialized by WriteDelta.
func ReadDelta(r io.Reader) (*Delta, error) {
	sc := newScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("osprof: empty input")
	}
	lineno := 1
	d, err := readDeltaBody(sc.Text(), sc, &lineno)
	if err != nil {
		return nil, err
	}
	return d, rejectTrailing(sc, &lineno)
}

// readDeltaBody parses one delta envelope whose header line has
// already been scanned, consuming lines through its "end" marker.
func readDeltaBody(line string, sc *bufio.Scanner, lineno *int) (*Delta, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, deltaHeader+" "))
	if !strings.HasPrefix(rest, "fingerprint=") {
		return nil, fmt.Errorf("osprof: delta header missing fingerprint: %q", line)
	}
	fp, trailing, err := parseQuoted(strings.TrimPrefix(rest, "fingerprint="))
	if err != nil {
		return nil, fmt.Errorf("osprof: delta header: %w", err)
	}
	seqField := strings.TrimSpace(trailing)
	if !strings.HasPrefix(seqField, "seq=") {
		return nil, fmt.Errorf("osprof: delta header missing seq: %q", line)
	}
	seq, err := strconv.Atoi(strings.TrimPrefix(seqField, "seq="))
	if err != nil || seq < 1 {
		return nil, fmt.Errorf("osprof: delta header bad seq %q", seqField)
	}
	d := &Delta{Fingerprint: fp, Seq: seq}
	meta, next, err := readMeta(sc, lineno)
	if err != nil {
		return nil, err
	}
	if next == "" {
		return nil, fmt.Errorf("osprof: delta envelope without a set block")
	}
	d.Meta = meta
	set, err := readSetAs(next, sc, lineno, deltaSetHeader)
	if err != nil {
		return nil, err
	}
	d.Set = set
	return d, nil
}

// Envelope is one item of an ingest stream: exactly one of Run or
// Delta is non-nil.
type Envelope struct {
	Run   *Run
	Delta *Delta
}

// EnvelopeReader parses a stream of concatenated envelopes — full runs
// (osprof-run v1), deltas (osprof-run-delta v1), and bare sets
// (osprof-set v1) in any mix — the wire format of the batched
// /v1/ingest endpoint. Each envelope is self-terminating ("end"), so
// no framing beyond concatenation is needed.
type EnvelopeReader struct {
	sc     *bufio.Scanner
	lineno int
}

// NewEnvelopeReader wraps r for streaming envelope parsing.
func NewEnvelopeReader(r io.Reader) *EnvelopeReader {
	return &EnvelopeReader{sc: newScanner(r)}
}

// Next parses the next envelope. It returns io.EOF when the stream is
// cleanly exhausted; any other error means a malformed envelope (the
// stream position is then undefined and the caller should stop).
func (er *EnvelopeReader) Next() (Envelope, error) {
	for er.sc.Scan() {
		er.lineno++
		line := er.sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, deltaHeader+" "):
			d, err := readDeltaBody(line, er.sc, &er.lineno)
			return Envelope{Delta: d}, err
		case strings.HasPrefix(line, runHeader+" "), strings.HasPrefix(line, setHeader+" "):
			run, err := readRunBody(line, er.sc, &er.lineno)
			return Envelope{Run: run}, err
		default:
			return Envelope{}, fmt.Errorf("osprof: line %d: unrecognized envelope header %q",
				er.lineno, line)
		}
	}
	if err := er.sc.Err(); err != nil {
		return Envelope{}, err
	}
	return Envelope{}, io.EOF
}
