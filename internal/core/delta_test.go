package core

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// deltaRun builds a run with the given per-op latencies. Ops are
// created in sorted-name order so runs built here have a
// deterministic creation order (a delta chain preserves it).
func deltaRun(fp, name string, r int, lats map[string][]uint64) *Run {
	set := NewSetR(name, r)
	ops := make([]string, 0, len(lats))
	for op := range lats {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		for _, l := range lats[op] {
			set.Record(op, l)
		}
	}
	return &Run{Fingerprint: fp, Meta: map[string]string{"collector": "test"}, Set: set}
}

func TestDeltaRoundTrip(t *testing.T) {
	prev := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10, 20}})
	cur := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10, 20, 4000}, "write": {7}})
	d, err := DeltaOf(prev, cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 2 || d.Fingerprint != "fp" || d.Name() != "app" {
		t.Fatalf("delta identity wrong: %+v", d)
	}
	rp := d.Set.Lookup("read")
	if rp == nil || rp.Count != 1 || rp.Total != 4000 {
		t.Fatalf("read delta = %+v, want 1 op of 4000", rp)
	}
	// Min/Max ride as cumulative absolutes.
	if rp.Min != 10 || rp.Max != 4000 {
		t.Fatalf("read delta extremes = [%d,%d], want cumulative [10,4000]", rp.Min, rp.Max)
	}

	var buf bytes.Buffer
	if err := WriteDelta(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDelta: %v\n%s", err, buf.String())
	}
	var again bytes.Buffer
	if err := WriteDelta(&again, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("delta round trip not byte-identical:\n%s\nvs\n%s", buf.String(), again.String())
	}

	// Applying the chain start + this delta rebuilds cur exactly.
	rebuilt := &Run{}
	first, err := DeltaOf(nil, prev, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Apply(first); err != nil {
		t.Fatal(err)
	}
	if err := rebuilt.Apply(back); err != nil {
		t.Fatal(err)
	}
	assertSameRunBytes(t, cur, rebuilt)
}

// assertSameRunBytes asserts the two runs marshal to identical bytes.
func assertSameRunBytes(t *testing.T, want, got *Run) {
	t.Helper()
	var w, g bytes.Buffer
	if err := WriteRun(&w, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteRun(&g, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), g.Bytes()) {
		t.Errorf("rebuilt run differs:\nwant:\n%s\ngot:\n%s", w.String(), g.String())
	}
}

func TestDeltaZeroOp(t *testing.T) {
	cur := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10}})
	d1, err := DeltaOf(nil, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	// An idle window: the delta is valid, serializable, and a no-op.
	d2, err := DeltaOf(cur, cur, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Set.Len() != 0 {
		t.Fatalf("idle delta has %d ops, want 0", d2.Set.Len())
	}
	var buf bytes.Buffer
	if err := WriteDelta(&buf, d2); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDelta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := &Run{}
	for _, d := range []*Delta{d1, back} {
		if err := rebuilt.Apply(d); err != nil {
			t.Fatal(err)
		}
	}
	assertSameRunBytes(t, cur, rebuilt)
}

func TestDeltaResolutionMismatch(t *testing.T) {
	prev := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10}})
	cur := deltaRun("fp", "app", 2, map[string][]uint64{"read": {10, 20}})
	if _, err := DeltaOf(prev, cur, 2); err == nil {
		t.Error("DeltaOf across resolutions succeeded")
	}

	d, err := DeltaOf(nil, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := deltaRun("fp", "app", 1, nil)
	if err := run.Apply(d); err == nil || !strings.Contains(err.Error(), "resolution") {
		t.Errorf("Apply across resolutions: err = %v, want resolution mismatch", err)
	}
}

func TestDeltaFingerprintAndNameMismatch(t *testing.T) {
	cur := deltaRun("fpB", "app", 1, map[string][]uint64{"read": {10}})
	d, err := DeltaOf(nil, cur, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := deltaRun("fpA", "app", 1, nil)
	if err := run.Apply(d); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("Apply across fingerprints: err = %v", err)
	}
	run2 := deltaRun("fpB", "other", 1, nil)
	if err := run2.Apply(d); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("Apply across set names: err = %v", err)
	}
	prev := deltaRun("fpA", "app", 1, map[string][]uint64{"read": {10}})
	if _, err := DeltaOf(prev, cur, 2); err == nil {
		t.Error("DeltaOf across fingerprints succeeded")
	}
}

func TestDeltaNonMonotonic(t *testing.T) {
	prev := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10, 20, 30}})
	cur := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10}})
	if _, err := DeltaOf(prev, cur, 2); err == nil {
		t.Error("DeltaOf over shrinking counters succeeded")
	}
}

func TestApplySaturationIsTransactional(t *testing.T) {
	run := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10}})
	p := run.Set.Lookup("read")
	p.Buckets[BucketFor(10, 1)] = math.MaxUint64
	p.Count = math.MaxUint64

	d, err := DeltaOf(nil, deltaRun("fp", "app", 1, map[string][]uint64{"read": {10}}), 1)
	if err != nil {
		t.Fatal(err)
	}
	before := p.Clone()
	if err := run.Apply(d); !errors.Is(err, ErrCounterOverflow) {
		t.Fatalf("Apply at MaxUint64: err = %v, want ErrCounterOverflow", err)
	}
	// Transactional: the failed apply left the receiver untouched.
	after := run.Set.Lookup("read")
	if after.Count != before.Count || after.Buckets[BucketFor(10, 1)] != before.Buckets[BucketFor(10, 1)] {
		t.Error("failed Apply mutated the receiver")
	}
}

func TestProfileMergeOverflow(t *testing.T) {
	a := NewProfile("op")
	b := NewProfile("op")
	a.Record(10)
	b.Record(10)
	b.Count = math.MaxUint64
	b.Buckets[BucketFor(10, 1)] = math.MaxUint64
	if err := a.Merge(b); !errors.Is(err, ErrCounterOverflow) {
		t.Fatalf("Merge at MaxUint64: err = %v, want ErrCounterOverflow", err)
	}
	if a.Count != 1 {
		t.Error("failed Merge mutated the receiver")
	}
	// Total overflow is caught too, not just bucket/count.
	c := NewProfile("op")
	c.Record(1)
	c.Total = math.MaxUint64
	d := NewProfile("op")
	d.Record(1)
	if err := c.Merge(d); !errors.Is(err, ErrCounterOverflow) {
		t.Fatalf("Merge overflowing Total: err = %v", err)
	}
}

func TestMergeRunEnvelopes(t *testing.T) {
	a := deltaRun("fp", "app", 1, map[string][]uint64{"read": {10, 20}})
	b := deltaRun("fp", "app", 1, map[string][]uint64{"read": {5}, "write": {40}})
	if err := MergeRun(a, b); err != nil {
		t.Fatal(err)
	}
	rp := a.Set.Lookup("read")
	if rp.Count != 3 || rp.Min != 5 || rp.Max != 20 {
		t.Errorf("merged read = %+v", rp)
	}
	if a.Set.Lookup("write") == nil {
		t.Error("merge dropped the one-sided op")
	}
	if err := a.Set.Validate(); err != nil {
		t.Error(err)
	}

	mismatch := deltaRun("other", "app", 1, map[string][]uint64{"read": {1}})
	if err := MergeRun(a, mismatch); err == nil {
		t.Error("MergeRun across fingerprints succeeded")
	}
	wrongRes := deltaRun("fp", "app", 2, map[string][]uint64{"read": {1}})
	if err := MergeRun(a, wrongRes); err == nil {
		t.Error("MergeRun across resolutions succeeded")
	}
}

// TestDeltaChainReplayProperty is the property test: a randomized
// session — random ops, latencies, export points, idle windows, ops
// appearing mid-session — must replay its delta chain into exactly
// the bytes of the final full envelope, and every intermediate prefix
// must equal the corresponding intermediate export.
func TestDeltaChainReplayProperty(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ops := []string{"read", "write", "llseek", "readdir", "unlink"}
		set := NewSetR("prop/app", 1+rng.Intn(2))
		meta := map[string]string{"collector": "live"}
		cur := func() *Run {
			return &Run{Fingerprint: "prop-fp", Meta: cloneMeta(meta), Set: set.Clone()}
		}

		var prev *Run
		rebuilt := &Run{}
		seq := 0
		for window := 0; window < 8; window++ {
			// Random activity; sometimes none at all (idle window).
			for i := rng.Intn(40); i > 0; i-- {
				op := ops[rng.Intn(1+min(window+1, len(ops)-1))]
				set.Record(op, 1+uint64(rng.Intn(1<<uint(rng.Intn(20)))))
			}
			if window == 4 {
				meta["phase"] = "late" // metadata rewritten mid-session
			}
			now := cur()
			seq++
			d, err := DeltaOf(prev, now, seq)
			if err != nil {
				t.Fatalf("seed %d window %d: %v", seed, window, err)
			}
			// Ship through the wire format.
			var buf bytes.Buffer
			if err := WriteDelta(&buf, d); err != nil {
				t.Fatal(err)
			}
			shipped, err := ReadDelta(&buf)
			if err != nil {
				t.Fatalf("seed %d window %d: reparse: %v", seed, window, err)
			}
			if err := rebuilt.Apply(shipped); err != nil {
				t.Fatalf("seed %d window %d: apply: %v", seed, window, err)
			}
			assertSameRunBytes(t, now, rebuilt)
			prev = now
		}
	}
}

func TestEnvelopeReaderMixedStream(t *testing.T) {
	run := deltaRun("fpA", "app", 1, map[string][]uint64{"read": {10}})
	d, err := DeltaOf(nil, deltaRun("fpB", "other", 1, map[string][]uint64{"write": {5}}), 1)
	if err != nil {
		t.Fatal(err)
	}
	bare := NewSet("bare")
	bare.Record("llseek", 3)

	var stream bytes.Buffer
	if err := WriteRun(&stream, run); err != nil {
		t.Fatal(err)
	}
	if err := WriteDelta(&stream, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteSet(&stream, bare); err != nil {
		t.Fatal(err)
	}

	er := NewEnvelopeReader(&stream)
	first, err := er.Next()
	if err != nil || first.Run == nil || first.Run.Fingerprint != "fpA" {
		t.Fatalf("first envelope = %+v, %v", first, err)
	}
	second, err := er.Next()
	if err != nil || second.Delta == nil || second.Delta.Fingerprint != "fpB" {
		t.Fatalf("second envelope = %+v, %v", second, err)
	}
	third, err := er.Next()
	if err != nil || third.Run == nil || third.Run.Name() != "bare" {
		t.Fatalf("third envelope = %+v, %v", third, err)
	}
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("after the stream: err = %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("repeated Next: err = %v, want io.EOF", err)
	}
}

func TestEnvelopeReaderGarbage(t *testing.T) {
	er := NewEnvelopeReader(strings.NewReader("what is this\n"))
	if _, err := er.Next(); err == nil || err == io.EOF {
		t.Fatalf("garbage stream: err = %v, want parse error", err)
	}
	er = NewEnvelopeReader(strings.NewReader(""))
	if _, err := er.Next(); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}
