package core

// Sampled is a time-segmented ("three-dimensional") profile: instead of
// accumulating every operation into one histogram, latencies are stored
// into a fresh set of buckets for each fixed time interval (§3.1
// "Profile sampling"). This mode of operation is possible thanks to the
// small size of the OSprof profile data, and is how the paper visualizes
// the periodic Reiserfs write_super contention in Figure 9.
type Sampled struct {
	// Op names the profiled operation.
	Op string

	// Interval is the segment length in cycles.
	Interval uint64

	// R is the bucket resolution.
	R int

	// Start is the time base: segment i covers
	// [Start+i*Interval, Start+(i+1)*Interval).
	Start uint64

	// MaxSegments bounds the materialized segments (0 = unbounded,
	// the historical behavior). Records past the window accumulate
	// into the final segment, so a long-idle producer cannot force an
	// unbounded burst of segment allocations on its next record —
	// the guard the always-on live Recorder relies on.
	MaxSegments int

	segments []*Profile
}

// NewSampled creates a sampled profile for op with the given segment
// interval (cycles), time base start, and resolution 1.
func NewSampled(op string, start, interval uint64) *Sampled {
	return &Sampled{Op: op, Interval: interval, R: 1, Start: start}
}

// Record stores a latency observed at absolute time now into the
// segment that contains now.
func (s *Sampled) Record(now, latency uint64) {
	idx := 0
	if now > s.Start && s.Interval > 0 {
		idx = int((now - s.Start) / s.Interval)
	}
	if s.MaxSegments > 0 && idx >= s.MaxSegments {
		idx = s.MaxSegments - 1
	}
	for len(s.segments) <= idx {
		s.segments = append(s.segments,
			NewProfileR(s.Op, s.R))
	}
	s.segments[idx].Record(latency)
}

// Segments returns the per-interval profiles in time order. Empty
// trailing intervals are not materialized.
func (s *Sampled) Segments() []*Profile { return s.segments }

// Segment returns the profile for segment i, or nil if never touched.
func (s *Sampled) Segment(i int) *Profile {
	if i < 0 || i >= len(s.segments) {
		return nil
	}
	return s.segments[i]
}

// Len reports the number of materialized segments.
func (s *Sampled) Len() int { return len(s.segments) }

// Clone returns a deep copy of the sampled profile, segments included.
func (s *Sampled) Clone() *Sampled {
	c := &Sampled{Op: s.Op, Interval: s.Interval, R: s.R, Start: s.Start,
		MaxSegments: s.MaxSegments}
	for _, seg := range s.segments {
		c.segments = append(c.segments, seg.Clone())
	}
	return c
}

// Flatten merges all segments into a single conventional profile.
func (s *Sampled) Flatten() *Profile {
	out := NewProfileR(s.Op, s.R)
	for _, seg := range s.segments {
		_ = out.Merge(seg) // same resolution by construction
	}
	return out
}

// Validate checks every segment's checksum.
func (s *Sampled) Validate() error {
	for _, seg := range s.segments {
		if err := seg.Validate(); err != nil {
			return err
		}
	}
	return nil
}
