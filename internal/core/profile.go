package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrCounterOverflow reports that merging or applying a delta would
// overflow a uint64 counter. Profiles are cumulative by design, so a
// counter that no longer fits means the data cannot be represented,
// not that it should silently wrap.
var ErrCounterOverflow = errors.New("counter overflow")

// addU64 adds two counters, reporting whether the sum fits in uint64.
func addU64(a, b uint64) (uint64, bool) {
	s := a + b
	return s, s >= a
}

// Profile is the latency distribution of one OS operation: a histogram
// over logarithmic buckets, plus checksums. A profile occupies a fixed,
// small memory area (the paper reports under 1KB per operation, §5.1),
// which is what makes OSprof cheap enough to leave enabled and compact
// enough to sample over time.
type Profile struct {
	// Op names the profiled operation (e.g., "readdir", "llseek").
	Op string

	// R is the resolution: buckets per doubling of latency.
	R int

	// Buckets holds the number of operations whose latency fell into
	// each bucket.
	Buckets []uint64

	// Count is the checksum: the total number of recorded latencies.
	// report-generation code verifies sum(Buckets) == Count to catch
	// instrumentation errors (§4 "Representing results").
	Count uint64

	// Total is the sum of all recorded latencies; automated analysis
	// sorts profiles by it (§3.2).
	Total uint64

	// Min and Max are the extreme recorded latencies.
	Min, Max uint64
}

// NewProfile creates an empty profile for operation op at resolution 1.
func NewProfile(op string) *Profile { return NewProfileR(op, 1) }

// NewProfileR creates an empty profile at resolution r (r >= 1).
func NewProfileR(op string, r int) *Profile {
	if r < 1 {
		r = 1
	}
	return &Profile{
		Op:      op,
		R:       r,
		Buckets: make([]uint64, NumBuckets(r)),
	}
}

// Record sorts one latency into its bucket. This is the hot path: at
// resolution 1 it is a handful of instructions, matching the paper's
// ~200-cycle total per-operation profiling cost (§5.2, §7).
func (p *Profile) Record(latency uint64) {
	p.Buckets[BucketFor(latency, p.R)]++
	p.Count++
	p.Total += latency
	if p.Count == 1 || latency < p.Min {
		p.Min = latency
	}
	if latency > p.Max {
		p.Max = latency
	}
}

// Validate checks the bucket-sum checksum, catching lost or double
// counted updates from broken instrumentation.
func (p *Profile) Validate() error {
	var sum uint64
	for _, c := range p.Buckets {
		sum += c
	}
	if sum != p.Count {
		return fmt.Errorf("profile %q: bucket sum %d != count checksum %d",
			p.Op, sum, p.Count)
	}
	return nil
}

// Mean returns the average recorded latency (0 if empty).
func (p *Profile) Mean() uint64 {
	if p.Count == 0 {
		return 0
	}
	return p.Total / p.Count
}

// Range returns the smallest and largest non-empty bucket indices.
// ok is false for an empty profile.
func (p *Profile) Range() (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for i, c := range p.Buckets {
		if c == 0 {
			continue
		}
		if lo < 0 {
			lo = i
		}
		hi = i
	}
	return lo, hi, lo >= 0
}

// Merge adds other's contents into p. The profiles must describe the
// same operation shape (same resolution); op names may differ (merging
// per-CPU shards). Merge is transactional: every addition is verified
// to fit in uint64 before any state changes, so on a resolution
// mismatch or a counter overflow the receiver is untouched.
func (p *Profile) Merge(other *Profile) error {
	if p.R != other.R {
		return fmt.Errorf("merge %q into %q: resolution mismatch %d != %d",
			other.Op, p.Op, other.R, p.R)
	}
	if err := p.checkMerge(other); err != nil {
		return err
	}
	for i, c := range other.Buckets {
		p.Buckets[i] += c
	}
	if other.Count > 0 {
		if p.Count == 0 || other.Min < p.Min {
			p.Min = other.Min
		}
		if other.Max > p.Max {
			p.Max = other.Max
		}
	}
	p.Count += other.Count
	p.Total += other.Total
	return nil
}

// checkMerge verifies that adding other's counters into p cannot
// overflow, without mutating either profile.
func (p *Profile) checkMerge(other *Profile) error {
	for i, c := range other.Buckets {
		if _, ok := addU64(p.Buckets[i], c); !ok {
			return fmt.Errorf("merge %q into %q: bucket %d: %w",
				other.Op, p.Op, i, ErrCounterOverflow)
		}
	}
	if _, ok := addU64(p.Count, other.Count); !ok {
		return fmt.Errorf("merge %q into %q: count: %w", other.Op, p.Op, ErrCounterOverflow)
	}
	if _, ok := addU64(p.Total, other.Total); !ok {
		return fmt.Errorf("merge %q into %q: total: %w", other.Op, p.Op, ErrCounterOverflow)
	}
	return nil
}

// Clone returns a deep copy of p.
func (p *Profile) Clone() *Profile {
	c := *p
	c.Buckets = append([]uint64(nil), p.Buckets...)
	return &c
}

// Reset clears all recorded data, keeping Op and R.
func (p *Profile) Reset() {
	for i := range p.Buckets {
		p.Buckets[i] = 0
	}
	p.Count, p.Total, p.Min, p.Max = 0, 0, 0, 0
}

// Normalized returns the bucket histogram scaled to sum to 1.
// An empty profile returns all zeros.
func (p *Profile) Normalized() []float64 {
	out := make([]float64, len(p.Buckets))
	if p.Count == 0 {
		return out
	}
	for i, c := range p.Buckets {
		out[i] = float64(c) / float64(p.Count)
	}
	return out
}

// CountIn sums bucket populations for indices in [lo, hi].
func (p *Profile) CountIn(lo, hi int) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= len(p.Buckets) {
		hi = len(p.Buckets) - 1
	}
	var sum uint64
	for i := lo; i <= hi; i++ {
		sum += p.Buckets[i]
	}
	return sum
}

// String renders a one-line summary.
func (p *Profile) String() string {
	lo, hi, ok := p.Range()
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%d", p.Op, p.Count, p.Mean())
	if ok {
		fmt.Fprintf(&b, " buckets=[%d,%d]", lo, hi)
	}
	return b.String()
}

// MemoryFootprint reports the approximate resident size of the profile
// in bytes, reproducing the §5.1 memory-overhead evaluation.
func (p *Profile) MemoryFootprint() int {
	const header = 8 * 4 // Count, Total, Min, Max
	return header + 8*len(p.Buckets) + len(p.Op)
}
