package classify_test

import (
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/scenario"
	"osprof/internal/store"
)

// This file is the parity gate for classifier pre-filtering: across the
// leave-one-seed-out corpus AND the foreign-configuration abstention
// probes, a classifier that ranks centroids by summary distance and
// runs the per-op EMD only against the escalated candidates must
// produce verdicts bit-identical to the exhaustive classifier — same
// label, same exact best distance, same abstention decision (matched,
// absent-from-corpus, or ambiguous). Margins are NOT required to be
// identical: the prefiltered margin is measured against the nearest
// escalated runner-up and may exceed the exhaustive margin when the
// true runner-up is pruned (see the Prefilter field doc); the gate
// pins that this never flips a decision. It also proves the prefilter
// genuinely fires (some ranking entries are estimates) so the gate is
// not vacuous.

// reasonKind collapses a report's reason string to its decision class.
func reasonKind(rep *classify.Report) string {
	switch {
	case rep.Matched:
		return "matched"
	case strings.HasPrefix(rep.Reason, "ambiguous"):
		return "ambiguous"
	default:
		return "absent"
	}
}

func TestPrefilterCrossValidationParity(t *testing.T) {
	if testing.Short() {
		t.Skip("records the full corpus three times")
	}
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recordCorpusInto(t, arch, 1)
	recordCorpusInto(t, arch, 2)
	corpus, _, err := classify.FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Centroids) <= classify.DefaultPrefilter {
		t.Fatalf("corpus too small (%d centroids) to exercise the prefilter", len(corpus.Centroids))
	}

	full := classify.New()
	fast := classify.New()
	fast.Prefilter = classify.DefaultPrefilter

	// Held-out corpus members (must match) plus the foreign probes
	// (must abstain): both directions of the verdict are covered.
	probes := scenario.Variants(5)
	for _, spec := range scenario.Matrix(5) {
		if spec.Name == "ext2/readzero" || spec.Name == "ext2/randomread" {
			probes = append(probes, spec)
		}
	}

	estimated := 0
	for _, spec := range probes {
		run := heldOutRun(t, spec)
		want := full.Identify(corpus, run)
		got := fast.Identify(corpus, run)
		if got.Matched != want.Matched || got.Label != want.Label {
			t.Errorf("%s: prefiltered verdict %v/%q, full verdict %v/%q",
				spec.Name, got.Matched, got.Label, want.Matched, want.Label)
		}
		if got.Distance != want.Distance {
			t.Errorf("%s: prefiltered d=%.6g, full d=%.6g", spec.Name, got.Distance, want.Distance)
		}
		if reasonKind(got) != reasonKind(want) {
			t.Errorf("%s: prefiltered decision %q (%s), full decision %q (%s)",
				spec.Name, reasonKind(got), got.Reason, reasonKind(want), want.Reason)
		}
		if len(got.Ranking) != len(want.Ranking) {
			t.Errorf("%s: prefiltered ranking covers %d labels, full %d",
				spec.Name, len(got.Ranking), len(want.Ranking))
		}
		exact := 0
		for _, ld := range got.Ranking {
			if ld.Estimated {
				estimated++
			} else {
				exact++
			}
		}
		if exact >= len(got.Ranking) {
			t.Errorf("%s: prefilter escalated every centroid (%d), gate is vacuous", spec.Name, exact)
		}
		// The decisive pair must be exact: best and runner-up entries
		// in the report are never estimates.
		seen := 0
		for _, ld := range got.Ranking {
			if ld.Estimated {
				continue
			}
			if seen == 0 && (ld.Label != got.Label || ld.Distance != got.Distance) {
				t.Errorf("%s: verdict label %q d=%.6g disagrees with nearest exact entry %q d=%.6g",
					spec.Name, got.Label, got.Distance, ld.Label, ld.Distance)
			}
			seen++
			if seen == 2 {
				break
			}
		}
		if seen < 2 {
			t.Errorf("%s: fewer than two exact entries: no margin evidence", spec.Name)
		}
	}
	if estimated == 0 {
		t.Fatal("prefilter never produced an estimate: parity gate is vacuous")
	}
}

// A corpus no larger than the escalation set disables the prefilter:
// every entry stays exact and the report is byte-identical to the
// exhaustive classifier's.
func TestPrefilterSmallCorpusIsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("records labeled runs through the archive")
	}
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recordCorpusInto(t, arch, 1)
	corpus, _, err := classify.FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	c := classify.New()
	c.Prefilter = len(corpus.Centroids) // escalation set covers everything
	run := heldOutRun(t, scenario.Variants(3)[0])
	rep := c.Identify(corpus, run)
	for _, ld := range rep.Ranking {
		if ld.Estimated {
			t.Errorf("centroid %q estimated despite prefilter covering the corpus", ld.Label)
		}
	}
}
