package classify

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"osprof/internal/core"
	"osprof/internal/store"
)

// mkRun builds a labeled run whose set holds one profile per op, each
// populated with the given latencies.
func mkRun(label string, ops map[string][]uint64) *core.Run {
	set := core.NewSet(label)
	for op, lats := range ops {
		p := set.Get(op)
		for _, l := range lats {
			p.Record(l)
		}
	}
	meta := map[string]string{}
	if label != "" {
		meta[LabelMetaKey] = label
	}
	return &core.Run{Meta: meta, Set: set}
}

// many repeats a latency n times.
func many(lat uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = lat
	}
	return out
}

// testCorpus is a three-label corpus with well-separated read shapes:
// fast reads, slow reads, and a backend with a different op set.
func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpus, err := BuildCorpus([]*core.Run{
		mkRun("fast", map[string][]uint64{
			"read": many(1<<6, 1000), "open": many(1<<8, 10),
		}),
		mkRun("slow", map[string][]uint64{
			"read": many(1<<20, 1000), "open": many(1<<8, 10),
		}),
		mkRun("other-backend", map[string][]uint64{
			"lookup": many(1<<10, 500), "getdents": many(1<<12, 500),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

func TestBuildCorpusGroupsByLabel(t *testing.T) {
	a := mkRun("x", map[string][]uint64{"read": many(1<<6, 100)})
	b := mkRun("x", map[string][]uint64{"read": many(1<<7, 100)})
	c := mkRun("a-first", map[string][]uint64{"read": many(1<<6, 100)})
	corpus, err := BuildCorpus([]*core.Run{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if got := corpus.Labels(); len(got) != 2 || got[0] != "a-first" || got[1] != "x" {
		t.Fatalf("labels %v (want sorted [a-first x])", got)
	}
	x := corpus.Centroids[1]
	if x.Runs != 2 {
		t.Errorf("centroid x folded %d runs, want 2", x.Runs)
	}
	// Both member runs' counts merged into one set.
	if n := x.Set().Lookup("read").Count; n != 200 {
		t.Errorf("merged read count %d, want 200", n)
	}
}

func TestBuildCorpusErrors(t *testing.T) {
	unlabeled := mkRun("", map[string][]uint64{"read": many(1, 1)})
	if _, err := BuildCorpus([]*core.Run{unlabeled}); err == nil {
		t.Error("unlabeled run accepted")
	}
	r2 := &core.Run{
		Meta: map[string]string{LabelMetaKey: "x"},
		Set:  core.NewSetR("x", 2),
	}
	r1 := mkRun("y", map[string][]uint64{"read": many(1, 1)})
	if _, err := BuildCorpus([]*core.Run{r1, r2}); err == nil {
		t.Error("mixed resolutions accepted")
	}
	if _, err := BuildCorpus([]*core.Run{{Meta: map[string]string{LabelMetaKey: "x"}}}); err == nil {
		t.Error("run without a set accepted")
	}
	// An empty corpus builds fine (and Identify abstains on it).
	corpus, err := BuildCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Centroids) != 0 {
		t.Errorf("empty corpus has %d centroids", len(corpus.Centroids))
	}
}

func TestIdentifyMatchesNearestLabel(t *testing.T) {
	corpus := testCorpus(t)
	unknown := mkRun("", map[string][]uint64{
		"read": many(1<<6, 990), "open": many(1<<8, 10),
	})
	unknown.Fingerprint = "abc123"
	rep := New().Identify(corpus, unknown)
	if !rep.Matched || rep.Label != "fast" {
		t.Fatalf("verdict: %+v", rep)
	}
	if rep.Fingerprint != "abc123" {
		t.Errorf("fingerprint not carried: %q", rep.Fingerprint)
	}
	if len(rep.Ranking) != 3 || rep.Ranking[0].Label != "fast" {
		t.Fatalf("ranking: %+v", rep.Ranking)
	}
	for i := 1; i < len(rep.Ranking); i++ {
		if rep.Ranking[i].Distance < rep.Ranking[i-1].Distance {
			t.Fatalf("ranking not sorted: %+v", rep.Ranking)
		}
	}
	if len(rep.Evidence) == 0 {
		t.Fatal("no evidence rows")
	}
	// The read shape is what separates "fast" from the runner-up.
	if rep.Evidence[0].Op != "read" {
		t.Errorf("strongest evidence is %q, want read: %+v", rep.Evidence[0].Op, rep.Evidence)
	}
	if rep.Evidence[0].Contribution <= 0 {
		t.Errorf("top evidence does not favor the verdict: %+v", rep.Evidence[0])
	}
}

func TestIdentifyAbstainsOnForeignProfile(t *testing.T) {
	corpus := testCorpus(t)
	// An op mix no centroid has: distance driven to ~1 by one-sided ops.
	unknown := mkRun("", map[string][]uint64{
		"mmap": many(1<<14, 500), "write": many(1<<16, 500),
	})
	rep := New().Identify(corpus, unknown)
	if rep.Matched {
		t.Fatalf("foreign profile matched %q: %+v", rep.Label, rep)
	}
	if rep.Distance <= New().MaxDistance {
		t.Errorf("foreign distance %v suspiciously small", rep.Distance)
	}
	if rep.Reason == "" || rep.Label == "" {
		t.Errorf("abstention must carry a reason and the best guess: %+v", rep)
	}
}

func TestIdentifyAbstainsOnAmbiguousCorpus(t *testing.T) {
	// Two labels with identical centroids: margin 0, always abstain —
	// even for a run sitting exactly on both.
	shape := map[string][]uint64{"read": many(1<<6, 1000)}
	corpus, err := BuildCorpus([]*core.Run{mkRun("twin-a", shape), mkRun("twin-b", shape)})
	if err != nil {
		t.Fatal(err)
	}
	rep := New().Identify(corpus, mkRun("", shape))
	if rep.Matched {
		t.Fatalf("ambiguous twins matched: %+v", rep)
	}
	if rep.Margin != 0 {
		t.Errorf("identical twins must have margin 0, got %v", rep.Margin)
	}
}

func TestIdentifySingleLabelCorpus(t *testing.T) {
	shape := map[string][]uint64{"read": many(1<<6, 1000)}
	corpus, err := BuildCorpus([]*core.Run{mkRun("only", shape)})
	if err != nil {
		t.Fatal(err)
	}
	rep := New().Identify(corpus, mkRun("", shape))
	if !rep.Matched || rep.Label != "only" || rep.Margin != 1 {
		t.Fatalf("single-label exact match: %+v", rep)
	}
	if len(rep.Evidence) != 0 {
		t.Errorf("no runner-up, no evidence: %+v", rep.Evidence)
	}
}

func TestIdentifyDegenerateInputsAbstainCleanly(t *testing.T) {
	corpus := testCorpus(t)
	cases := map[string]*core.Run{
		"nil run":          nil,
		"nil set":          {Meta: map[string]string{}},
		"empty set":        {Set: core.NewSet("empty")},
		"wrong resolution": {Set: core.NewSetR("r2", 2)},
	}
	for name, run := range cases {
		rep := New().Identify(corpus, run)
		if rep == nil || rep.Matched {
			t.Errorf("%s: %+v", name, rep)
			continue
		}
		if rep.Reason == "" {
			t.Errorf("%s: abstention without a reason", name)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Errorf("%s: report not marshalable: %v", name, err)
		}
	}
	if rep := New().Identify(&Corpus{}, mkRun("", map[string][]uint64{"read": many(1, 1)})); rep.Matched {
		t.Errorf("empty corpus matched: %+v", rep)
	}

	// The degenerate-of-degenerates: a zero-op run against a corpus
	// whose only centroid is also zero-op must abstain, not match at
	// distance 0 (no operation anywhere carries weight).
	emptyCorpus, err := BuildCorpus([]*core.Run{{
		Meta: map[string]string{LabelMetaKey: "hollow"},
		Set:  core.NewSet("hollow"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep := New().Identify(emptyCorpus, &core.Run{Set: core.NewSet("empty")}); rep.Matched {
		t.Errorf("zero-op run matched a zero-op centroid: %+v", rep)
	}
}

// Two identifications of the same run against the same corpus must
// render byte-identical JSON: the CLI's -json output is asserted
// byte-stable, and any map-order leak in the report would break that.
func TestIdentifyReportIsByteStable(t *testing.T) {
	corpus := testCorpus(t)
	unknown := mkRun("", map[string][]uint64{
		"read": many(1<<6, 990), "open": many(1<<8, 10), "lookup": many(1<<10, 5),
	})
	marshal := func() []byte {
		b, err := json.MarshalIndent(New().Identify(corpus, unknown), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := marshal(), marshal(); !bytes.Equal(a, b) {
		t.Errorf("reports differ across identical identifications:\n%s\nvs\n%s", a, b)
	}
}

// Early abstentions (no run, empty corpus, resolution mismatch) must
// marshal Ranking as [], never null — the empty-collection convention
// every versioned JSON document here follows.
func TestAbstentionRankingMarshalsEmpty(t *testing.T) {
	b, err := json.Marshal(New().Identify(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"ranking":[]`)) {
		t.Errorf("abstention report: %s", b)
	}
}

// An archive whose index predates the mirrored label field (entries
// read as unlabeled even though the envelopes carry label metadata)
// must still yield its corpus: when the index shows nothing labeled,
// FromArchive falls back to scanning every object.
func TestFromArchivePreLabelIndexFallsBack(t *testing.T) {
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := arch.Put(mkRun("old-label", map[string][]uint64{"read": many(1<<6, 100)})); err != nil {
		t.Fatal(err)
	}
	if _, _, err := arch.Put(&core.Run{Set: core.NewSet("unlabeled")}); err != nil {
		t.Fatal(err)
	}
	entries, err := arch.List()
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the archive as a legacy v1 one (pre-label index lines:
	// run SEQ ID FP "name") and reopen: the segmented index is gone,
	// so the entries read as unlabeled.
	var old bytes.Buffer
	old.WriteString("osprof-index v1\n")
	for _, e := range entries {
		fmt.Fprintf(&old, "run %d %s - %q\n", e.Seq, e.ID, e.Name)
	}
	if err := os.RemoveAll(filepath.Join(arch.Dir(), "index.d")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(arch.Dir(), "index"), old.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	arch, err = store.Open(arch.Dir())
	if err != nil {
		t.Fatal(err)
	}

	corpus, labeled, err := FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if labeled != 1 {
		t.Errorf("labeled=%d, want 1 via the full-scan fallback", labeled)
	}
	if got := corpus.Labels(); len(got) != 1 || got[0] != "old-label" {
		t.Errorf("labels %v, want [old-label]", got)
	}
}

// FromArchive must keep the majority resolution and drop strays: one
// odd-resolution labeled ingest must not make corpus building error
// (which would turn every identification into a hard failure).
func TestFromArchiveKeepsMajorityResolution(t *testing.T) {
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	put := func(run *core.Run) {
		t.Helper()
		if _, _, err := arch.Put(run); err != nil {
			t.Fatal(err)
		}
	}
	put(mkRun("r1-a", map[string][]uint64{"read": many(1<<6, 100)}))
	put(mkRun("r1-b", map[string][]uint64{"read": many(1<<20, 100)}))
	stray := &core.Run{
		Meta: map[string]string{LabelMetaKey: "r2-stray"},
		Set:  core.NewSetR("stray", 2),
	}
	stray.Set.Record("read", 1<<6)
	put(stray)
	put(&core.Run{Set: core.NewSet("unlabeled")}) // never part of the corpus

	corpus, labeled, err := FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if labeled != 2 {
		t.Errorf("labeled=%d, want 2 (the r=1 majority)", labeled)
	}
	if got := corpus.Labels(); len(got) != 2 || got[0] != "r1-a" || got[1] != "r1-b" {
		t.Errorf("labels %v", got)
	}
	if corpus.R != 1 {
		t.Errorf("kept resolution %d, want 1", corpus.R)
	}

	// A 2-2 tie keeps the lower resolution, deterministically.
	stray2 := &core.Run{
		Meta: map[string]string{LabelMetaKey: "r2-more"},
		Set:  core.NewSetR("stray2", 2),
	}
	stray2.Set.Record("read", 1<<8)
	put(stray2)
	corpus, labeled, err = FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	if corpus.R != 1 || labeled != 2 {
		t.Errorf("tie broke to r=%d with %d runs, want r=1 with 2", corpus.R, labeled)
	}
}
