package classify_test

import (
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/experiments"
	"osprof/internal/runner"
	"osprof/internal/scenario"
	"osprof/internal/store"
)

// This file is the leave-one-seed-out cross-validation of the
// fingerprint classifier over the full labeled corpus: the corpus is
// recorded at training seeds through the real pipeline (runner ->
// archive -> FromArchive), then every label is re-recorded at a
// held-out seed and identified. The accuracy gates:
//
//   - configuration family (the label's first component: ext2, reiser,
//     cifs, fig3 — the backend axis): 100%, no exceptions. Backends
//     differ in whole peak structures, so a family miss means the
//     classifier is broken, not unlucky.
//   - full label (family + kernel preemption config + cache size +
//     injected fault state): >= total-2. The preempt/nopreempt
//     centroid gap is real but narrow (~5-10x the cross-seed noise;
//     the §3.3 preemption-peak population is ~0.5% of the reads), so
//     the gate documents the achieved threshold rather than demanding
//     perfection. Measured: 21/21 at the pinned seeds.
//   - degraded labels (fault-injected corpus members): >= 6 of them
//     must self-identify, the floor under `osprof watch`'s
//     degraded-state attribution.
//
// An abstention counts as a miss on both gates: the corpus member must
// not only be nearest to its own label but confidently so.

// recordCorpusInto archives every labeled variant at the given seed
// (the `osprof corpus build` path: labels travel as run metadata
// through runner.Options.Archive).
func recordCorpusInto(t *testing.T, arch *store.Archive, seed int64) {
	t.Helper()
	reg, fps, _, ids := experiments.Corpus(seed)
	jobs := make([]runner.Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, runner.Job{ID: id, New: reg[id], Fingerprint: fps[id]})
	}
	results := runner.Run(jobs, runner.Options{Parallel: 2, Archive: arch})
	for i := range results {
		if !results[i].OK() {
			t.Fatalf("corpus recording %s failed: %+v", results[i].ID, results[i])
		}
		if results[i].RunID == "" {
			t.Fatalf("corpus recording %s archived nothing", results[i].ID)
		}
	}
}

// heldOutRun re-records one labeled spec at a held-out seed and wraps
// it as an unlabeled unknown (the classifier must not peek at labels).
func heldOutRun(t *testing.T, spec scenario.Spec) *core.Run {
	t.Helper()
	r := experiments.RecordScenario(spec)
	if r.Err != nil {
		t.Fatalf("held-out %s: %v", spec.Name, r.Err)
	}
	return &core.Run{Fingerprint: spec.Fingerprint(), Set: r.Stack.Set}
}

// family is a label's configuration-family component ("ext2-preempt-
// c256" -> "ext2").
func family(label string) string {
	if i := strings.IndexByte(label, '-'); i >= 0 {
		return label[:i]
	}
	return label
}

func TestLeaveOneSeedOutCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("records the full corpus three times")
	}
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Train on two seeds so centroids genuinely fold multiple runs.
	recordCorpusInto(t, arch, 1)
	recordCorpusInto(t, arch, 2)
	corpus, labeled, err := classify.FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, corpusIDs := experiments.Corpus(1)
	wantLabels := len(corpusIDs)
	if labeled != 2*wantLabels {
		t.Fatalf("archive holds %d labeled runs, want %d", labeled, 2*wantLabels)
	}
	if got := len(corpus.Labels()); got != wantLabels {
		t.Fatalf("corpus has %d labels, want %d", got, wantLabels)
	}
	for _, ct := range corpus.Centroids {
		if ct.Runs != 2 {
			t.Errorf("centroid %s folded %d runs, want 2 (one per training seed)", ct.Label, ct.Runs)
		}
	}

	c := classify.New()
	total, fullHits, familyMisses := 0, 0, 0
	degradedTotal, degradedHits := 0, 0
	for _, spec := range scenario.Variants(5) { // held-out seed
		rep := c.Identify(corpus, heldOutRun(t, spec))
		total++
		if spec.Injections != nil {
			degradedTotal++
		}
		if rep.Matched && rep.Label == spec.Label {
			fullHits++
			if spec.Injections != nil {
				degradedHits++
			}
		} else {
			t.Logf("miss: %s -> %q matched=%v d=%.4g margin=%.4g (%s)",
				spec.Label, rep.Label, rep.Matched, rep.Distance, rep.Margin, rep.Reason)
		}
		if !rep.Matched || family(rep.Label) != family(spec.Label) {
			familyMisses++
			t.Errorf("family miss: %s identified as %q (matched=%v, %s)",
				spec.Label, rep.Label, rep.Matched, rep.Reason)
		}
	}
	if total < 10 {
		t.Fatalf("corpus shrank to %d labels", total)
	}
	// Backend/family gate: 100%.
	if familyMisses != 0 {
		t.Errorf("%d/%d family misses (gate: 0)", familyMisses, total)
	}
	// Full-label gate incl. kernel-config labels: documented threshold
	// total-2 (measured 21/21 over the 12 healthy + 9 degraded labels
	// at the pinned seeds; see the file comment).
	if fullHits < total-2 {
		t.Errorf("full-label accuracy %d/%d below the documented threshold %d/%d",
			fullHits, total, total-2, total)
	}
	// Degraded-state attribution gate: the fault-injected corpus
	// members must self-identify across seeds, or the anomaly watcher
	// can never name a cause. Measured 9/9; the gate documents >= 6.
	if degradedTotal < 8 {
		t.Errorf("corpus holds %d degraded labels, want >= 8", degradedTotal)
	}
	if degradedHits < 6 {
		t.Errorf("degraded-label accuracy %d/%d below the gate 6/%d",
			degradedHits, degradedTotal, degradedTotal)
	}
}

// A profile recorded from a configuration absent from the corpus must
// abstain — the acceptance criterion behind `osprof identify`'s exit
// code 1. ext2/readzero is the adversarial pick: it is the nearest
// foreign scenario to the corpus (it shares the fig3 pair's workload
// shape), so it probes the MaxDistance/MinMargin calibration where the
// gap is thinnest.
func TestForeignConfigurationsAbstain(t *testing.T) {
	if testing.Short() {
		t.Skip("records the corpus plus foreign scenarios")
	}
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recordCorpusInto(t, arch, 1)
	corpus, _, err := classify.FromArchive(arch)
	if err != nil {
		t.Fatal(err)
	}
	c := classify.New()
	var foreign []scenario.Spec
	for _, spec := range scenario.Matrix(1) {
		if spec.Name == "ext2/readzero" || spec.Name == "ext2/randomread" {
			foreign = append(foreign, spec)
		}
	}
	if len(foreign) != 2 {
		t.Fatalf("foreign picks missing from the matrix: %d", len(foreign))
	}
	for _, spec := range foreign {
		rep := c.Identify(corpus, heldOutRun(t, spec))
		if rep.Matched {
			t.Errorf("%s (not in the corpus) identified as %q d=%.4g margin=%.4g",
				spec.Name, rep.Label, rep.Distance, rep.Margin)
		}
	}
}
