package classify

import (
	"fmt"

	"osprof/internal/core"
	"osprof/internal/store"
)

// FromArchive builds the reference corpus from every archived run that
// carries label metadata (`osprof corpus build` records them; ordinary
// matrix and ad-hoc runs have no label and are skipped). All labeled
// entries participate, so re-recording the corpus under additional
// seeds widens each centroid instead of replacing it. A second value
// reports how many archived runs were labeled; zero means the archive
// holds no corpus yet.
//
// An archive accepts envelopes at any bucket resolution, but EMD
// compares bucket axes positionally, so one corpus must live at one
// resolution. Rather than letting a single stray ingest poison
// identification for everyone (BuildCorpus would error), FromArchive
// keeps the resolution most of the labeled runs share — ties broken
// toward the lower resolution, deterministically — and drops the rest;
// an unknown run at a dropped resolution then abstains with a
// resolution-mismatch reason instead of erroring. The labeled count
// reflects only the runs kept.
func FromArchive(arch *store.Archive) (*Corpus, int, error) {
	// The index mirrors each run's label (a v2 index), so unlabeled
	// runs — the bulk of a long-lived regression archive — are skipped
	// without loading their objects, and a label-aware index with no
	// labeled entries is trusted to mean an empty corpus. Only a
	// pre-label (v1) index is inconclusive: its entries read as
	// unlabeled even when the envelopes carry label metadata, so fall
	// back to scanning every object the old way. (A v1 index rewritten
	// to v2 by a later Put or GC keeps its old entries' empty Label
	// fields; such pre-upgrade corpus members stay invisible until the
	// corpus is re-recorded.)
	scan, labelAware, err := arch.ListLabeled()
	if err != nil {
		return nil, 0, fmt.Errorf("classify: %w", err)
	}
	if !labelAware && len(scan) == 0 {
		if scan, err = arch.List(); err != nil {
			return nil, 0, fmt.Errorf("classify: %w", err)
		}
	}
	byR := make(map[int][]*core.Run)
	for _, e := range scan {
		run, err := arch.Get(e.ID)
		if err != nil {
			return nil, 0, fmt.Errorf("classify: %w", err)
		}
		if run.Meta[LabelMetaKey] != "" && run.Set != nil {
			byR[run.Set.R] = append(byR[run.Set.R], run)
		}
	}
	keep := 0
	for r, runs := range byR {
		if keep == 0 || len(runs) > len(byR[keep]) ||
			(len(runs) == len(byR[keep]) && r < keep) {
			keep = r
		}
	}
	corpus, err := BuildCorpus(byR[keep])
	if err != nil {
		return nil, 0, err
	}
	return corpus, len(byR[keep]), nil
}
