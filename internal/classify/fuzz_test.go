package classify_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/core"
)

// fuzzCorpus builds a small adversarial corpus: two near-identical
// centroids (the ambiguity edge case), one exact twin pair, and a
// normal label — so fuzzed envelopes land on every abstention path.
func fuzzCorpus(tb testing.TB) *classify.Corpus {
	tb.Helper()
	mk := func(label string, build func(*core.Set)) *core.Run {
		set := core.NewSet(label)
		build(set)
		return &core.Run{Meta: map[string]string{classify.LabelMetaKey: label}, Set: set}
	}
	fill := func(op string, lat uint64, n int) func(*core.Set) {
		return func(s *core.Set) {
			p := s.Get(op)
			for i := 0; i < n; i++ {
				p.Record(lat)
			}
		}
	}
	near := func(s *core.Set) {
		fill("read", 1<<6, 1000)(s)
		s.Get("read").Record(1 << 7) // one bucket of difference
	}
	corpus, err := classify.BuildCorpus([]*core.Run{
		mk("near-a", fill("read", 1<<6, 1000)),
		mk("near-b", near),
		mk("twin-a", fill("open", 1<<9, 100)),
		mk("twin-b", fill("open", 1<<9, 100)),
		mk("normal", fill("lookup", 1<<12, 500)),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return corpus
}

// envelopeBytes serializes a run for use as a fuzz seed.
func envelopeBytes(tb testing.TB, run *core.Run) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := core.WriteRun(&buf, run); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzIdentify feeds arbitrary (malformed, truncated, adversarial)
// envelope bytes through the parse-then-identify path the CLI and the
// HTTP service share. Whatever the bytes, the classifier must not
// panic, must return a well-formed report (abstentions carry reasons),
// and the report must marshal to JSON (no NaN/Inf distances).
func FuzzIdentify(f *testing.F) {
	corpus := fuzzCorpus(f)

	// Seeds: a corpus member's exact envelope, a near-centroid one, a
	// bare set, truncations, and plain garbage.
	member := envelopeBytes(f, &core.Run{
		Meta: map[string]string{classify.LabelMetaKey: "near-a"},
		Set:  corpus.Centroids[0].Set().Clone(),
	})
	f.Add(member)
	f.Add(member[:len(member)/2])
	var bare bytes.Buffer
	if err := core.WriteSet(&bare, corpus.Centroids[len(corpus.Centroids)-1].Set()); err != nil {
		f.Fatal(err)
	}
	f.Add(bare.Bytes())
	f.Add([]byte("osprof-run v1 fingerprint=\"zz\"\n"))
	f.Add([]byte("not an envelope at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := core.ReadRun(bytes.NewReader(data))
		if err != nil {
			return // the parser rejected it; nothing to classify
		}
		rep := classify.New().Identify(corpus, run)
		if rep == nil {
			t.Fatal("nil report")
		}
		if rep.Schema != classify.Schema {
			t.Fatalf("schema %q", rep.Schema)
		}
		if !rep.Matched && rep.Reason == "" {
			t.Fatalf("abstention without a reason: %+v", rep)
		}
		if rep.Matched && strings.HasPrefix(rep.Label, "twin-") {
			t.Fatalf("matched an indistinguishable twin: %+v", rep)
		}
		if _, err := json.Marshal(rep); err != nil {
			t.Fatalf("report not marshalable: %v (%+v)", err, rep)
		}
	})
}
