// Package classify is the OS fingerprint classifier: it answers the
// paper's headline question — latency histograms reveal OS internals
// (kernel preemption build, file system, storage backend, cache
// configuration) — in reverse. Given an unknown recorded run and a
// labeled reference corpus of archived runs (scenario variants whose
// `label` metadata names the configuration family that produced them,
// internal/scenario.Variants), Identify attributes the unknown profile
// to the nearest label by per-operation Earth Mover's Distance against
// per-label centroids, or abstains when no label fits.
//
// The method is nearest-centroid over the paper's own comparison
// metric (§3.2, §5.3: EMD had the smallest false-classification rate):
//
//   - every archived run sharing a label is merged into one centroid
//     set; the centroid's per-operation histograms are the normalized
//     bucket shares of the merged counts, so multiple seeds of the same
//     configuration fold into one reference shape;
//   - the distance between an unknown run and a centroid is the
//     count-share-weighted mean of per-operation EMDs over the union of
//     their operations, with an operation present on only one side
//     scored at EMD's maximal 1 (the same convention as the
//     differential engine's new-op/missing-op verdicts);
//   - the verdict is the closest label, with two abstention guards: a
//     maximum absolute distance (an unknown from a configuration absent
//     from the corpus is nobody's neighbor) and a minimum relative
//     margin between the best and runner-up labels (two labels almost
//     equally close mean the evidence cannot separate them).
//
// The report carries the full ranking plus per-operation evidence for
// the best-vs-runner-up decision, naming which operations discriminated
// — e.g. the read profile's extra runqueue-wait peak separating a
// CONFIG_PREEMPT kernel from its non-preemptive twin (Figure 3).
package classify

import (
	"fmt"
	"sort"

	"osprof/internal/analysis"
	"osprof/internal/core"
	"osprof/internal/store"
	"osprof/internal/summary"
)

// Schema versions the JSON shape of Report so downstream tooling
// (`osprof identify -json`, POST /v1/identify) can rely on it.
const Schema = "osprof-identify/v1"

// LabelMetaKey is the run-envelope metadata key that marks a run as a
// member of the reference corpus and names its label. It aliases the
// store's constant: the archive index mirrors this metadata so corpus
// construction can skip unlabeled runs without loading them.
const LabelMetaKey = store.LabelMetaKey

// Centroid is one label's reference: every corpus run recorded under
// the label, merged into a single profile set.
type Centroid struct {
	// Label names the configuration family ("ext2-preempt-c256").
	Label string

	// Runs counts the member runs folded into the centroid.
	Runs int

	merged *core.Set

	// sum memoizes the merged set's summary digest for the prefilter
	// (built once per centroid by BuildCorpus; centroids are immutable
	// after construction).
	sum *summary.SetSummary
}

// Set returns the centroid's merged profile set.
func (c *Centroid) Set() *core.Set { return c.merged }

// Summary returns the centroid's memoized summary digest.
func (c *Centroid) Summary() *summary.SetSummary {
	if c.sum == nil {
		c.sum = summary.OfSet(c.merged, 0)
	}
	return c.sum
}

// Corpus is a labeled reference corpus ready for classification.
type Corpus struct {
	// R is the bucket resolution shared by every centroid.
	R int

	// Centroids holds one entry per label, sorted by label.
	Centroids []*Centroid
}

// Labels lists the corpus labels in sorted order.
func (c *Corpus) Labels() []string {
	out := make([]string, len(c.Centroids))
	for i, ct := range c.Centroids {
		out[i] = ct.Label
	}
	return out
}

// BuildCorpus groups runs by their label metadata and merges each
// group into a centroid. Every run must carry a non-empty label (the
// caller filters; see FromArchive) and all runs must share one bucket
// resolution, since EMD compares bucket axes positionally.
func BuildCorpus(runs []*core.Run) (*Corpus, error) {
	byLabel := make(map[string]*Centroid)
	var order []string
	r := 0
	for _, run := range runs {
		if run.Set == nil {
			return nil, fmt.Errorf("classify: corpus run without a profile set")
		}
		label := run.Meta[LabelMetaKey]
		if label == "" {
			return nil, fmt.Errorf("classify: corpus run %q has no %q metadata", run.Name(), LabelMetaKey)
		}
		if r == 0 {
			r = run.Set.R
		}
		if run.Set.R != r {
			return nil, fmt.Errorf("classify: corpus mixes resolutions %d and %d", r, run.Set.R)
		}
		ct := byLabel[label]
		if ct == nil {
			ct = &Centroid{Label: label, merged: core.NewSetR(label, r)}
			byLabel[label] = ct
			order = append(order, label)
		}
		if err := ct.merged.Merge(run.Set); err != nil {
			return nil, fmt.Errorf("classify: centroid %q: %w", label, err)
		}
		ct.Runs++
	}
	sort.Strings(order)
	corpus := &Corpus{R: r}
	for _, label := range order {
		ct := byLabel[label]
		ct.sum = summary.OfSet(ct.merged, 0)
		corpus.Centroids = append(corpus.Centroids, ct)
	}
	return corpus, nil
}

// Classifier identifies unknown runs against a corpus. It carries
// reusable normalization scratch, so create one and reuse it; a
// Classifier must not be used from multiple goroutines concurrently.
type Classifier struct {
	// MaxDistance is the absolute abstention threshold: a best label
	// farther than this is no identification. The default 0.01 sits
	// between the corpus's measured cross-seed noise (a held-out seed
	// of a corpus configuration lands within ~1.6e-3 of its own
	// centroid) and the nearest foreign configuration (every
	// backend×workload matrix scenario lands at >= 1.6e-2); the
	// leave-one-seed-out cross-validation test pins both sides.
	MaxDistance float64

	// MinMargin is the relative abstention threshold: the runner-up
	// must be at least this fraction farther than the best label,
	// (d2-d1)/d2 >= MinMargin. The default 0.20 likewise splits the
	// measured populations: genuine corpus members resolve with margin
	// >= 0.64, foreign profiles that happen to land near some centroid
	// are torn between several (margin <= 0.13). A perfect match
	// (d1=0) has margin 1; two labels with identical centroids have
	// margin 0 and always abstain.
	MinMargin float64

	// Evidence caps the per-operation evidence rows (default 5).
	Evidence int

	// Prefilter, when positive, bounds the expensive per-operation EMD
	// evaluation: centroids are first ranked by cheap summary distance
	// (summary.SetDistance, same weighting and one-sided conventions
	// as the EMD distance), and the full EMD runs only against the top
	// Prefilter candidates plus every centroid whose summary distance
	// falls inside the abstention window of the best (the absolute
	// MaxDistance slack and the relative MinMargin band). The
	// remaining ranking entries carry their summary estimate, flagged
	// Estimated; Label, Distance and the abstention decision only
	// ever come from exact EMD entries. Margin is measured against
	// the nearest ESCALATED runner-up — it can exceed the exhaustive
	// margin when the true runner-up is pruned, so it stays honest in
	// the direction that matters (a below-threshold margin always
	// abstains) while the leave-one-seed-out cross-validation pins
	// prefiltered labels and abstention decisions bit-identical to
	// the full evaluation. 0 (the default) disables pre-filtering.
	Prefilter int

	// scratch buffers for normalized histograms, reused across calls.
	histU, histC []float64
	ops          []string
	seen         map[string]bool
	sum          summary.SetSummary // unknown-run digest for the prefilter
}

// DefaultPrefilter is the Prefilter setting used by the service and
// bench paths: full EMD against the top 5 summary-ranked centroids
// (plus the abstention window). Calibrated against the crossval
// corpus, where the exact-nearest centroid never ranks worse than
// 4th by summary distance; 5 leaves a rank of slack.
const DefaultPrefilter = 5

// New returns a classifier with the default abstention thresholds.
func New() *Classifier {
	return &Classifier{MaxDistance: 0.01, MinMargin: 0.20, Evidence: 5}
}

// LabelDistance is one ranked corpus label.
type LabelDistance struct {
	Label    string  `json:"label"`
	Distance float64 `json:"distance"`
	Runs     int     `json:"runs"`

	// Estimated marks a prefiltered entry whose Distance is the cheap
	// summary estimate, not the exact per-operation EMD (never set on
	// the entries the verdict was decided from).
	Estimated bool `json:"estimated,omitempty"`
}

// OpEvidence names one operation's contribution to separating the best
// label from the runner-up.
type OpEvidence struct {
	Op string `json:"op"`

	// EMDBest and EMDRunnerUp are the unknown operation's distances to
	// the two leading centroids (1 when absent from one side).
	EMDBest     float64 `json:"emd_best"`
	EMDRunnerUp float64 `json:"emd_runner_up"`

	// Weight is the operation's count-share weight in the distance.
	Weight float64 `json:"weight"`

	// Contribution is Weight*(EMDRunnerUp-EMDBest): how much this
	// operation pulled the verdict toward the best label (negative
	// values pulled toward the runner-up).
	Contribution float64 `json:"contribution"`

	// Mode, ModeBest and ModeRunnerUp are the mode buckets of the
	// unknown's and the two centroids' histograms (-1 when the
	// operation is absent) — a shifted read mode against the
	// runner-up is the Figure 3 CONFIG_PREEMPT signature.
	Mode         int `json:"mode"`
	ModeBest     int `json:"mode_best"`
	ModeRunnerUp int `json:"mode_runner_up"`

	// Detail is a human-readable explanation.
	Detail string `json:"detail,omitempty"`
}

// Report is the classification verdict for one unknown run.
type Report struct {
	Schema string `json:"schema"`

	// Name and Fingerprint identify the unknown run.
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint,omitempty"`

	// Matched reports a confident identification; when false the
	// classifier abstained and Reason explains why.
	Matched bool   `json:"matched"`
	Reason  string `json:"reason"`

	// Label is the nearest corpus label (the verdict when Matched, the
	// best rejected guess otherwise; empty only for an empty corpus).
	Label string `json:"label,omitempty"`

	// Distance is the distance to Label; Margin is the relative gap to
	// the runner-up, (d2-d1)/d2 (1 when the corpus has a single label).
	Distance float64 `json:"distance"`
	Margin   float64 `json:"margin"`

	// Ranking lists every corpus label, nearest first.
	Ranking []LabelDistance `json:"ranking"`

	// Evidence lists the operations that most separated Label from the
	// runner-up, strongest first.
	Evidence []OpEvidence `json:"evidence,omitempty"`
}

// opDistance is the per-operation breakdown of one centroid distance.
type opDistance struct {
	op     string
	weight float64
	emd    float64
	mode   int // unknown's mode bucket (-1 when absent)
	modeC  int // centroid's mode bucket (-1 when absent)
}

// Identify classifies the unknown run against the corpus. It never
// fails: malformed situations (empty corpus, resolution mismatch, a
// run with no recorded operations) abstain with a reason instead of
// erroring, so garbage in means a clean abstention out.
func (c *Classifier) Identify(corpus *Corpus, run *core.Run) *Report {
	// Ranking marshals as [] on early abstentions, never null — the
	// same empty-collection convention as the other versioned docs.
	rep := &Report{Schema: Schema, Ranking: []LabelDistance{}}
	if run != nil {
		rep.Name = run.Name()
		rep.Fingerprint = run.Fingerprint
	}
	switch {
	case run == nil || run.Set == nil:
		rep.Reason = "no profile set to identify"
		return rep
	case corpus == nil || len(corpus.Centroids) == 0:
		rep.Reason = "empty corpus (record labeled reference runs first)"
		return rep
	case run.Set.R != corpus.R:
		rep.Reason = fmt.Sprintf("resolution mismatch: run r=%d, corpus r=%d",
			run.Set.R, corpus.R)
		return rep
	case run.Set.TotalOps() == 0:
		// Without this, a zero-op run against a zero-op centroid would
		// score distance 0 (no weight anywhere) and "match".
		rep.Reason = "run recorded no operations"
		return rep
	}

	// With the prefilter on, rank centroids by cheap summary distance
	// first and mark which ones deserve the exact per-op EMD.
	escalate := c.prefilter(corpus, run)

	// One per-op breakdown per escalated centroid, retained so the
	// evidence pass reuses the top-2 labels' EMDs instead of
	// recomputing them.
	breakdowns := make(map[string][]opDistance, len(corpus.Centroids))
	for i, ct := range corpus.Centroids {
		if escalate != nil && !escalate[i].exact {
			rep.Ranking = append(rep.Ranking, LabelDistance{
				Label: ct.Label, Distance: escalate[i].sd, Runs: ct.Runs, Estimated: true,
			})
			continue
		}
		ods := c.distanceOps(run.Set, ct)
		breakdowns[ct.Label] = ods
		rep.Ranking = append(rep.Ranking, LabelDistance{
			Label: ct.Label, Distance: distance(ods), Runs: ct.Runs,
		})
	}
	sort.SliceStable(rep.Ranking, func(i, j int) bool {
		a, b := rep.Ranking[i], rep.Ranking[j]
		if a.Distance != b.Distance {
			return a.Distance < b.Distance
		}
		return a.Label < b.Label
	})

	// The verdict comes from the two nearest EXACT entries: estimates
	// order the long tail of the ranking but never decide.
	bi, ri := -1, -1
	for i := range rep.Ranking {
		if rep.Ranking[i].Estimated {
			continue
		}
		if bi < 0 {
			bi = i
		} else {
			ri = i
			break
		}
	}
	best := rep.Ranking[bi]
	rep.Label = best.Label
	rep.Distance = best.Distance
	rep.Margin = 1
	if ri >= 0 {
		d1, d2 := best.Distance, rep.Ranking[ri].Distance
		if d2 > 0 {
			rep.Margin = (d2 - d1) / d2
		} else {
			rep.Margin = 0 // two labels at distance 0: indistinguishable
		}
	}

	switch {
	case rep.Distance > c.MaxDistance:
		rep.Reason = fmt.Sprintf("nearest label %q at distance %.4g exceeds max %.4g: configuration absent from the corpus",
			rep.Label, rep.Distance, c.MaxDistance)
	case ri >= 0 && rep.Margin < c.MinMargin:
		rep.Reason = fmt.Sprintf("ambiguous: runner-up %q margin %.4g below min %.4g",
			rep.Ranking[ri].Label, rep.Margin, c.MinMargin)
	default:
		rep.Matched = true
		rep.Reason = fmt.Sprintf("distance %.4g within max %.4g, margin %.4g over min %.4g",
			rep.Distance, c.MaxDistance, rep.Margin, c.MinMargin)
	}

	if ri >= 0 {
		rep.Evidence = c.evidence(
			breakdowns[rep.Ranking[bi].Label], breakdowns[rep.Ranking[ri].Label],
			rep.Ranking[bi].Label, rep.Ranking[ri].Label)
	}
	return rep
}

// candidate is one centroid's prefilter state.
type candidate struct {
	sd    float64 // summary distance to the unknown
	exact bool    // run the full per-op EMD
}

// prefilter ranks the corpus by summary distance and selects the
// centroids that get the exact evaluation: the top Prefilter (at least
// two, so a margin always exists) plus every centroid inside the
// abstention window of the summary-best — anything within the absolute
// MaxDistance slack or the relative MinMargin band. Returns nil
// (evaluate everything) when the prefilter is off or the corpus is no
// larger than the escalation set anyway.
func (c *Classifier) prefilter(corpus *Corpus, run *core.Run) []candidate {
	k := c.Prefilter
	if k <= 0 {
		return nil
	}
	if k < 2 {
		k = 2
	}
	if len(corpus.Centroids) <= k {
		return nil
	}
	c.sum.From(run.Set, 0)
	cands := make([]candidate, len(corpus.Centroids))
	order := make([]int, len(corpus.Centroids))
	for i, ct := range corpus.Centroids {
		cands[i] = candidate{sd: summary.SetDistance(&c.sum, ct.Summary())}
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := cands[order[x]], cands[order[y]]
		if a.sd != b.sd {
			return a.sd < b.sd
		}
		return corpus.Centroids[order[x]].Label < corpus.Centroids[order[y]].Label
	})
	window := cands[order[0]].sd + c.MaxDistance
	if c.MinMargin > 0 && c.MinMargin < 1 {
		if rel := cands[order[0]].sd / (1 - c.MinMargin); rel > window {
			window = rel
		}
	}
	for rank, idx := range order {
		if rank < k || cands[idx].sd <= window {
			cands[idx].exact = true
		}
	}
	return cands
}

// distance folds a per-operation breakdown into the
// count-share-weighted mean EMD.
func distance(ods []opDistance) float64 {
	var sum, wsum float64
	for _, od := range ods {
		sum += od.weight * od.emd
		wsum += od.weight
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// distanceOps computes the per-operation EMDs and weights for one
// unknown-vs-centroid pair over the union of their operations, in
// sorted operation order. The returned slice is freshly allocated (it
// outlives the next call); the histogram scratch is reused.
func (c *Classifier) distanceOps(set *core.Set, ct *Centroid) []opDistance {
	if c.seen == nil {
		c.seen = make(map[string]bool)
	}
	clear(c.seen)
	c.ops = set.AppendOps(c.ops[:0])
	for _, op := range c.ops {
		c.seen[op] = true
	}
	for _, op := range ct.merged.Ops() {
		if !c.seen[op] {
			c.seen[op] = true
			c.ops = append(c.ops, op)
		}
	}
	sort.Strings(c.ops)

	totalU := float64(set.TotalOps())
	totalC := float64(ct.merged.TotalOps())
	out := make([]opDistance, 0, len(c.ops))
	for _, op := range c.ops {
		pu, pc := set.Lookup(op), ct.merged.Lookup(op)
		od := opDistance{op: op, mode: modeBucket(pu), modeC: modeBucket(pc)}
		var shareU, shareC float64
		if pu != nil && totalU > 0 {
			shareU = float64(pu.Count) / totalU
		}
		if pc != nil && totalC > 0 {
			shareC = float64(pc.Count) / totalC
		}
		od.weight = (shareU + shareC) / 2
		switch {
		case pu == nil || pu.Count == 0:
			if pc == nil || pc.Count == 0 {
				od.emd = 0 // recorded zero times on both sides
			} else {
				od.emd = 1 // all mass vs no mass: maximal difference
			}
		case pc == nil || pc.Count == 0:
			od.emd = 1
		default:
			c.histU = analysis.AppendNormalized(c.histU[:0], pu)
			c.histC = analysis.AppendNormalized(c.histC[:0], pc)
			od.emd = analysis.HistEMD(c.histU, c.histC)
		}
		out = append(out, od)
	}
	return out
}

// modeBucket returns the profile's most populated bucket, -1 when the
// profile is absent or empty.
func modeBucket(p *core.Profile) int {
	if p == nil || p.Count == 0 {
		return -1
	}
	mode, best := -1, uint64(0)
	for b, n := range p.Buckets {
		if n > best {
			best, mode = n, b
		}
	}
	return mode
}

// evidence ranks the operations by how strongly they pulled the
// verdict toward the best label over the runner-up. bestOps and
// runnerOps cover the same unknown set, but their op unions may differ
// (an op present in one centroid only); the union of both is scored.
func (c *Classifier) evidence(bestOps, runnerOps []opDistance, bestLabel, runnerLabel string) []OpEvidence {
	runner := make(map[string]opDistance, len(runnerOps))
	for _, od := range runnerOps {
		runner[od.op] = od
	}
	seen := make(map[string]bool, len(bestOps))
	var rows []OpEvidence
	add := func(b, r opDistance) {
		w := b.weight
		if r.weight > w {
			w = r.weight
		}
		rows = append(rows, OpEvidence{
			Op:           b.op,
			EMDBest:      b.emd,
			EMDRunnerUp:  r.emd,
			Weight:       w,
			Contribution: w * (r.emd - b.emd),
			Mode:         b.mode,
			ModeBest:     b.modeC,
			ModeRunnerUp: r.modeC,
			Detail: fmt.Sprintf("mode bucket %d (run) vs %d (%s) / %d (%s)",
				b.mode, b.modeC, bestLabel, r.modeC, runnerLabel),
		})
	}
	for _, b := range bestOps {
		seen[b.op] = true
		r, ok := runner[b.op]
		if !ok {
			// Op absent from the runner-up centroid entirely: the
			// runner-up side compares as one-sided.
			r = opDistance{op: b.op, emd: oneSided(b), modeC: -1}
		}
		add(b, r)
	}
	for _, r := range runnerOps {
		if !seen[r.op] {
			add(opDistance{op: r.op, emd: oneSided(r), mode: r.mode, modeC: -1}, r)
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ai, aj := abs(rows[i].Contribution), abs(rows[j].Contribution)
		if ai != aj {
			return ai > aj
		}
		return rows[i].Op < rows[j].Op
	})
	max := c.Evidence
	if max <= 0 {
		max = 5
	}
	if len(rows) > max {
		rows = rows[:max]
	}
	return rows
}

// oneSided scores an op missing from one centroid: maximal if the
// unknown recorded it, 0 if nobody did.
func oneSided(od opDistance) float64 {
	if od.mode >= 0 {
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
