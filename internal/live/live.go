// Package live implements in-process ("live") OSprof collection: the
// paper's method is designed to profile running systems with negligible
// overhead (§3.1, §3.4), not just to replay figures, so this package
// lets any Go program feed its own request latencies into the same
// analysis, archive, and differential machinery the simulated
// experiments use.
//
// The central type is Recorder, a set of per-operation concurrent
// histograms constructed from functional options (resolution, locking
// mode, shard count, sampling interval, clock source). Its Record hot
// path is allocation-free — the property that makes always-on
// profiling viable, mirroring the paper's ~200-cycle per-operation
// budget (§5.2) — and its Snapshot can run at any time, concurrently
// with writers, because the underlying core.ConcurrentProfile reads
// every bucket atomically.
//
// Sessions (session.go) name a collection window, snapshot it into a
// core.Set, and export it as a versioned run envelope or directly into
// a store.Archive. Wrappers (wrap.go) instrument stdlib boundaries:
// io.Reader/io.Writer, net.Conn, and http.Handler.
package live

import (
	"sync"
	"time"

	"osprof/internal/core"
	"osprof/internal/cycles"
)

// Option configures a Recorder at construction time.
type Option func(*Recorder)

// WithResolution sets the bucket resolution (buckets per doubling of
// latency, like core.NewProfileR). The default is 1, the paper's
// choice for efficiency; 2 doubles the resolution at negligible cost.
func WithResolution(r int) Option {
	return func(rec *Recorder) {
		if r >= 1 {
			rec.res = r
		}
	}
}

// WithLockingMode selects the §3.4 concurrent bucket-update strategy:
// Unsync (lossy, cheapest — the paper's default), Locked (atomic
// increments), or Sharded (per-thread bucket arrays, merged at read
// time).
func WithLockingMode(m core.LockingMode) Option {
	return func(rec *Recorder) { rec.mode = m }
}

// WithShards sets the number of per-thread bucket arrays used in
// Sharded mode; each concurrent writer should pass its own shard index
// to RecordShard. Ignored in the other modes.
func WithShards(n int) Option {
	return func(rec *Recorder) {
		if n >= 1 {
			rec.shards = n
		}
	}
}

// WithSampling additionally maintains a time-segmented ("3D", §3.1
// Figure 9) profile per operation, with the given segment interval in
// clock cycles. Sampling takes a per-operation mutex on the record
// path (and allocates when a new segment is materialized), so it costs
// more than plain recording; leave it off for the zero-allocation hot
// path. Each timeline is bounded to 8192 segments — choose interval so
// interval*8192 covers the window of interest; records past the window
// accumulate in the final segment rather than growing without bound.
func WithSampling(interval cycles.Cycles) Option {
	return func(rec *Recorder) { rec.sample = interval }
}

// WithClock replaces the latency clock. The default clock measures
// wall time with the process-monotonic clock and converts it to the
// repository's simulated-cycle time base (internal/cycles, 1.7 GHz);
// tests substitute deterministic clocks, and callers with access to a
// hardware TSC can plug it in directly, matching the paper's use of
// the TSC register as the time metric.
func WithClock(clock func() cycles.Cycles) Option {
	return func(rec *Recorder) {
		if clock != nil {
			rec.clock = clock
		}
	}
}

// Recorder collects latency profiles from a running program. Create
// one with New, hand it to the instrumentation wrappers (or call
// Record/Start directly), and snapshot it at any time through a
// Session. All methods are safe for concurrent use.
type Recorder struct {
	res    int
	mode   core.LockingMode
	shards int
	sample cycles.Cycles
	clock  func() cycles.Cycles
	epoch  cycles.Cycles // clock value at construction; sampling time base

	mu    sync.RWMutex
	ops   map[string]*collector
	order []string
}

// collector is one operation's live state: the concurrent histogram
// plus the optional time-segmented profile.
type collector struct {
	prof *core.ConcurrentProfile

	mu      sync.Mutex // guards sampled (not needed for prof)
	sampled *core.Sampled
}

// New creates a Recorder with the given options. The zero-option
// default matches the paper's production configuration: resolution 1,
// unsynchronized updates, no sampling, wall-clock cycles.
func New(opts ...Option) *Recorder {
	rec := &Recorder{
		res:    1,
		mode:   core.Unsync,
		shards: 1,
		clock:  defaultClock(),
		ops:    make(map[string]*collector),
	}
	for _, opt := range opts {
		opt(rec)
	}
	rec.epoch = rec.clock()
	return rec
}

// defaultClock returns a process-monotonic wall clock expressed in
// simulated cycles. time.Since reads the runtime's monotonic clock and
// allocates nothing, keeping the Record hot path allocation-free.
func defaultClock() func() cycles.Cycles {
	base := time.Now()
	return func() cycles.Cycles {
		return cycles.FromNanoseconds(float64(time.Since(base)))
	}
}

// Now returns the recorder's current clock value; pass it back to
// Record as the operation's start time.
func (rec *Recorder) Now() cycles.Cycles { return rec.clock() }

// Record sorts one completed operation into op's histogram: the
// latency is the clock's advance since start (a Now result). This is
// the allocation-free hot path. In Sharded mode it records into shard
// 0; concurrent writers should use RecordShard with distinct shards.
func (rec *Recorder) Record(op string, start cycles.Cycles) {
	rec.RecordShard(0, op, start)
}

// RecordShard is Record with an explicit shard index for Sharded mode
// (each concurrent writer uses its own shard, the paper's per-thread
// profiles); other modes ignore the index.
func (rec *Recorder) RecordShard(shard int, op string, start cycles.Cycles) {
	now := rec.clock()
	var lat uint64
	if now > start {
		lat = now - start
	}
	rec.observe(shard, op, now, lat)
}

// Observe records an already-measured latency (callers that timed the
// operation themselves, e.g. the simulation substrate or log replay).
func (rec *Recorder) Observe(op string, latency uint64) {
	rec.ObserveShard(0, op, latency)
}

// ObserveShard is Observe with an explicit shard index.
func (rec *Recorder) ObserveShard(shard int, op string, latency uint64) {
	var now cycles.Cycles
	if rec.sample > 0 {
		now = rec.clock()
	}
	rec.observe(shard, op, now, latency)
}

// observe is the shared record path: a read-locked map hit, an atomic
// histogram update, and (only when sampling is on) a mutex-guarded
// segment update.
func (rec *Recorder) observe(shard int, op string, now cycles.Cycles, latency uint64) {
	rec.mu.RLock()
	c := rec.ops[op]
	rec.mu.RUnlock()
	if c == nil {
		c = rec.materialize(op)
	}
	c.prof.Record(shard, latency)
	if rec.sample > 0 {
		c.mu.Lock()
		c.sampled.Record(now, latency)
		c.mu.Unlock()
	}
}

// maxSampleSegments bounds each operation's materialized timeline: a
// record arriving after long idleness must not allocate one segment
// per elapsed interval (an hour at a 1ms interval would be 3.6M);
// later records collapse into the final segment instead.
const maxSampleSegments = 8192

// materialize creates op's state on first use (the one-time slow path).
func (rec *Recorder) materialize(op string) *collector {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if c := rec.ops[op]; c != nil {
		return c
	}
	c := &collector{prof: core.NewConcurrentProfileR(op, rec.res, rec.mode, rec.shards)}
	if rec.sample > 0 {
		c.sampled = core.NewSampled(op, rec.epoch, rec.sample)
		c.sampled.R = rec.res
		c.sampled.MaxSegments = maxSampleSegments
	}
	rec.ops[op] = c
	rec.order = append(rec.order, op)
	return c
}

// Span is an in-flight operation: a value (never heap-allocated by
// Start) that records its latency when End is called. Child opens
// per-layer sub-spans, so a live program produces the same layered
// shape ("read@fs", "read@disk") the simulation tracer folds out of
// its span trees.
type Span struct {
	rec   *Recorder
	op    string
	base  string // root operation name; children derive "<base>@<layer>"
	shard int
	start cycles.Cycles
}

// Start opens a span for op; defer its End around the operation body.
func (rec *Recorder) Start(op string) Span {
	return Span{rec: rec, op: op, base: op, start: rec.clock()}
}

// StartShard is Start with an explicit shard index for Sharded mode.
func (rec *Recorder) StartShard(shard int, op string) Span {
	return Span{rec: rec, op: op, base: op, shard: shard, start: rec.clock()}
}

// Child opens a sub-span attributing part of the parent operation to
// one layer: ending it records the child's latency under
// "<rootop>@<layer>", the op naming the layered diff and the trace
// subsystem's per-layer folds share. The layer always pairs with the
// root operation, so a child of a child is a sibling in naming
// ("read@disk", never "read@fs@disk"), and child latencies are
// inclusive — the live side has no entry/exit pairing to compute
// self-times from, and the layered analyses only need per-layer
// rows that move together. A zero Span's Child is itself zero, so
// spans handed out after a session ended (and their children) stay
// safe to End — in any order, concurrently with the parent.
func (s Span) Child(layer string) Span {
	if s.rec == nil {
		return Span{}
	}
	return Span{
		rec: s.rec, op: s.base + "@" + layer, base: s.base,
		shard: s.shard, start: s.rec.clock(),
	}
}

// End records the span's latency. A zero Span is a no-op, so dropped
// or inactive-session spans are safe to End. Ending a parent does not
// end (or invalidate) its children: each span records independently,
// whatever order the Ends arrive in.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.RecordShard(s.shard, s.op, s.start)
}

// Snapshot merges every operation's shards into a plain profile set
// named name. It is safe to call while writers are recording; each
// profile observes a consistent (bucket-sum == count) point-in-time
// state, exactly like reading the paper's /proc export on a live
// system.
func (rec *Recorder) Snapshot(name string) *core.Set {
	set := core.NewSetR(name, rec.res)
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	for _, op := range rec.order {
		// The merge cannot fail: both sides share the recorder's
		// resolution by construction.
		_ = set.Get(op).Merge(rec.ops[op].prof.Snapshot())
	}
	return set
}

// Ops returns the recorded operation names in first-use order.
func (rec *Recorder) Ops() []string {
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	return append([]string(nil), rec.order...)
}

// Profile returns op's live concurrent histogram (nil if op was never
// recorded), exposing the lost-update accounting (Attempts, Lost) of
// the §3.4 locking-mode evaluation.
func (rec *Recorder) Profile(op string) *core.ConcurrentProfile {
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	if c := rec.ops[op]; c != nil {
		return c.prof
	}
	return nil
}

// Collector materializes op's histogram (recording nothing) and
// returns it: a pre-resolved handle for hot loops that want the raw
// per-update cost of the configured §3.4 strategy with no map lookup
// or recorder read-lock on the path. Direct Record calls on the
// handle bypass sampling.
func (rec *Recorder) Collector(op string) *core.ConcurrentProfile {
	return rec.materialize(op).prof
}

// Timeline returns a copy of op's time-segmented profile, or nil when
// sampling is off or op was never recorded.
func (rec *Recorder) Timeline(op string) *core.Sampled {
	rec.mu.RLock()
	c := rec.ops[op]
	rec.mu.RUnlock()
	if c == nil || c.sampled == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sampled.Clone()
}

// Resolution returns the configured bucket resolution.
func (rec *Recorder) Resolution() int { return rec.res }

// Mode returns the configured locking mode.
func (rec *Recorder) Mode() core.LockingMode { return rec.mode }

// Shards returns the configured shard count.
func (rec *Recorder) Shards() int { return rec.shards }

// SamplingInterval returns the sampling segment length (0 = off).
func (rec *Recorder) SamplingInterval() cycles.Cycles { return rec.sample }
