package live_test

import (
	"reflect"
	"sync"
	"testing"

	"osprof/internal/core"
	"osprof/internal/live"
)

// Nested spans record per-layer rows under the "<op>@<layer>" naming,
// a layer always pairs with the root operation (a child of a child is
// a naming sibling), and the resulting set is bucket-for-bucket
// identical to serially replaying the same latencies — the shape
// contract the layered diff relies on.
func TestNestedSpansMatchSerialReplay(t *testing.T) {
	// epoch, parent start, fs start, driver start, driver end, fs end,
	// disk start, disk end, parent end.
	rec := live.New(live.WithClock(scriptClock(t, 0, 10, 20, 30, 45, 50, 60, 100, 210)))
	parent := rec.Start("read")
	fs := parent.Child("fs")
	driver := fs.Child("driver") // sibling naming: read@driver, not read@fs@driver
	driver.End()                 // 45-30  = 15
	fs.End()                     // 50-20  = 30
	disk := parent.Child("disk")
	disk.End()   // 100-60 = 40
	parent.End() // 210-10 = 200

	got := rec.Snapshot("s")
	for op, want := range map[string]uint64{
		"read@driver": 15, "read@fs": 30, "read@disk": 40, "read": 200,
	} {
		p := got.Lookup(op)
		if p == nil || p.Count != 1 || p.Total != want {
			t.Errorf("%s: %+v, want one record of %d", op, p, want)
		}
	}

	// The serial replay: the same latencies observed directly, in End
	// order, must build the identical set.
	replay := live.New()
	replay.Observe("read@driver", 15)
	replay.Observe("read@fs", 30)
	replay.Observe("read@disk", 40)
	replay.Observe("read", 200)
	if want := replay.Snapshot("s"); !reflect.DeepEqual(got, want) {
		t.Errorf("span set diverges from serial replay:\ngot  %+v\nwant %+v", got, want)
	}
}

// Dropped children are safe: a zero Span's children are zero (ending
// them records nothing), children opened after the session ended
// record nothing, and a child that is never ended leaves no trace —
// the parent's row is unaffected.
func TestDroppedChildSafety(t *testing.T) {
	live.Span{}.Child("fs").End()
	live.Span{}.Child("fs").Child("disk").End()

	rec := live.New()
	sess := rec.Session(nil, "s")
	sess.Close()
	sess.Start("op").Child("fs").End() // ended session: zero all the way down

	parent := rec.Start("op")
	_ = parent.Child("fs") // opened, never ended
	parent.End()
	set := rec.Snapshot("s")
	if p := set.Lookup("op"); p == nil || p.Count != 1 {
		t.Fatalf("parent row: %+v", p)
	}
	if len(set.Ops()) != 1 {
		t.Errorf("dropped children left rows: %v", set.Ops())
	}
}

// Parent and child Ends race freely (run under -race): each span
// records independently, so whatever order the Ends land in, every
// layer row's count is exact in Locked mode.
func TestNestedSpansConcurrentEnds(t *testing.T) {
	const workers, per = 8, 200
	rec := live.New(live.WithLockingMode(core.Locked))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				parent := rec.Start("op")
				fs := parent.Child("fs")
				disk := parent.Child("disk")
				var ends sync.WaitGroup
				ends.Add(2)
				go func() { defer ends.Done(); parent.End() }() // parent ends while children are open
				go func() { defer ends.Done(); disk.End() }()
				fs.End()
				ends.Wait()
			}
		}()
	}
	wg.Wait()
	snap := rec.Snapshot("s")
	for _, op := range []string{"op", "op@fs", "op@disk"} {
		p := snap.Lookup(op)
		if p == nil || p.Count != workers*per {
			t.Fatalf("%s: %+v, want count %d", op, p, workers*per)
		}
	}
}
