package live_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"osprof/internal/core"
	"osprof/internal/live"
)

// failWriter fails after n bytes, exercising the retryable-ship path.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("wire down")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	f.n -= len(p)
	return len(p), errors.New("wire down")
}

// Replaying the shipped chain rebuilds the exact state a full export
// would have produced — the recorder-side half of the fleet-ingest
// guarantee.
func TestSessionDeltaChainReplaysToFullExport(t *testing.T) {
	rec := live.New()
	sess := rec.Session(nil, "chain-app")

	var chain bytes.Buffer
	for i, lat := range []uint64{1_000, 2_000, 1 << 20} {
		rec.Observe("read", lat)
		if i == 1 {
			rec.Observe("write", 3_000)
		}
		if err := sess.ExportDelta(&chain); err != nil {
			t.Fatal(err)
		}
	}

	// Replay the chain into an empty receiver.
	replayed := &core.Run{}
	rd := core.NewEnvelopeReader(bytes.NewReader(chain.Bytes()))
	seen := 0
	for seq := 1; ; seq++ {
		env, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen++
		if env.Delta == nil || env.Delta.Seq != seq {
			t.Fatalf("envelope %d: %+v", seq, env)
		}
		if err := replayed.Apply(env.Delta); err != nil {
			t.Fatal(err)
		}
	}

	if seen != 3 {
		t.Fatalf("replayed %d envelopes, want 3", seen)
	}

	var full, rebuilt bytes.Buffer
	if err := sess.Export(&full); err != nil {
		t.Fatal(err)
	}
	if err := core.WriteRun(&rebuilt, replayed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full.Bytes(), rebuilt.Bytes()) {
		t.Fatalf("replayed chain differs from full export:\n%s\nvs\n%s", rebuilt.Bytes(), full.Bytes())
	}
}

// A failed ship must not advance the chain: the retry re-exports the
// same seq with the same content, so the server never sees a gap.
func TestSessionExportDeltaFailedWriteRetries(t *testing.T) {
	rec := live.New()
	sess := rec.Session(nil, "retry-app")
	rec.Observe("read", 1_000)

	if err := sess.ExportDelta(&failWriter{n: 10}); err == nil {
		t.Fatal("failed write reported no error")
	}
	var buf bytes.Buffer
	if err := sess.ExportDelta(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := core.ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 1 {
		t.Fatalf("retry shipped seq %d, want 1 (chain advanced on failure)", d.Seq)
	}
	if d.Set == nil || d.Set.Lookup("read") == nil || d.Set.Lookup("read").Count != 1 {
		t.Fatalf("retry delta lost the observation: %+v", d.Set)
	}
}

// An idle window still yields a valid, advancing zero-op delta — the
// heartbeat a quiet recorder ships.
func TestSessionDeltaRunIdleWindow(t *testing.T) {
	rec := live.New()
	sess := rec.Session(nil, "idle-app")
	rec.Observe("read", 1_000)
	if _, err := sess.DeltaRun(); err != nil {
		t.Fatal(err)
	}
	d, err := sess.DeltaRun()
	if err != nil {
		t.Fatal(err)
	}
	if d.Seq != 2 {
		t.Fatalf("seq = %d, want 2", d.Seq)
	}
	if d.Set != nil {
		for _, p := range d.Set.Profiles() {
			if p.Count != 0 {
				t.Fatalf("idle delta carries activity: %s count=%d", p.Op, p.Count)
			}
		}
	}
}
