package live_test

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"osprof/internal/core"
	"osprof/internal/live"
)

func TestWrapReaderWriter(t *testing.T) {
	rec := live.New()
	var sink bytes.Buffer
	w := live.WrapWriter(rec, "file.write", &sink)
	for i := 0; i < 3; i++ {
		if _, err := w.Write([]byte("chunk")); err != nil {
			t.Fatal(err)
		}
	}
	r := live.WrapReader(rec, "file.read", strings.NewReader("0123456789"))
	if _, err := io.Copy(io.Discard, r); err != nil {
		t.Fatal(err)
	}
	set := rec.Snapshot("io")
	if n := set.Lookup("file.write").Count; n != 3 {
		t.Errorf("write count = %d", n)
	}
	// io.Copy reads until EOF, so at least one Read is recorded; the
	// final EOF-returning Read is recorded too (errors have latency).
	if n := set.Lookup("file.read").Count; n < 1 {
		t.Errorf("read count = %d", n)
	}
	if sink.String() != "chunkchunkchunk" {
		t.Errorf("payload corrupted: %q", sink.String())
	}
}

func TestWrapConn(t *testing.T) {
	rec := live.New()
	client, server := net.Pipe()
	defer server.Close()
	wrapped := live.WrapConn(rec, "conn", client)
	defer wrapped.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 5)
		io.ReadFull(server, buf)
		server.Write(buf) // echo
	}()
	if _, err := wrapped.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(wrapped, buf); err != nil {
		t.Fatal(err)
	}
	<-done

	set := rec.Snapshot("net")
	if set.Lookup("conn.write").Count != 1 || set.Lookup("conn.read").Count != 1 {
		t.Errorf("conn ops: %v", set.Ops())
	}
	if wrapped.LocalAddr() == nil {
		t.Error("net.Conn passthrough broken")
	}
}

// TestHandlerSerialBucketsExact drives the middleware serially with a
// scripted clock, so every request's latency — and therefore its
// bucket — is known in advance.
func TestHandlerSerialBucketsExact(t *testing.T) {
	lats := []uint64{100, 1 << 10, 1 << 10, 1 << 20}
	// Clock script: epoch, then (start, end) per request.
	script := []uint64{0}
	var at uint64
	for _, l := range lats {
		script = append(script, at, at+l)
		at += l
	}
	rec := live.New(live.WithClock(scriptClock(t, script...)))
	h := live.Handler(rec, "/items", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	for range lats {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/items", nil))
	}

	want := core.NewProfile("GET /items")
	for _, l := range lats {
		want.Record(l)
	}
	got := rec.Snapshot("s").Lookup("GET /items")
	if got == nil {
		t.Fatalf("route op missing; ops = %v", rec.Ops())
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("bucket totals diverge from serial expectation:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestHandlerConcurrentMatchesSerial hammers two wrapped routes from
// many goroutines (run under -race in CI) and asserts the per-route op
// names and bucket totals match a serially-computed expectation. A
// constant clock pins every latency to 0, making the expected bucket
// vector exact even under concurrency; Locked mode guarantees no
// update is lost.
func TestHandlerConcurrentMatchesSerial(t *testing.T) {
	constClock := func() uint64 { return 42 }
	build := func() (*live.Recorder, http.Handler) {
		rec := live.New(live.WithLockingMode(core.Locked), live.WithClock(constClock))
		mux := http.NewServeMux()
		mux.Handle("/a", live.Handler(rec, "/a", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
		mux.Handle("/b", live.Handler(rec, "/b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))
		return rec, mux
	}

	// The request mix: workers×perWorker GETs to /a, half as many
	// POSTs to /b.
	const workers, perWorker = 8, 500
	requests := func(h http.Handler, serve func(func())) {
		for w := 0; w < workers; w++ {
			serve(func() {
				for i := 0; i < perWorker; i++ {
					h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/a", nil))
					if i%2 == 0 {
						h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/b", nil))
					}
				}
			})
		}
	}

	// Concurrent run.
	recC, muxC := build()
	var wg sync.WaitGroup
	requests(muxC, func(f func()) {
		wg.Add(1)
		go func() { defer wg.Done(); f() }()
	})
	wg.Wait()

	// Serially-computed expectation: the same mix, one goroutine.
	recS, muxS := build()
	requests(muxS, func(f func()) { f() })

	got, want := recC.Snapshot("concurrent"), recS.Snapshot("serial")
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	wantOps := want.Ops()
	if !reflect.DeepEqual(got.Ops(), wantOps) ||
		!reflect.DeepEqual(wantOps, []string{"GET /a", "POST /b"}) {
		t.Fatalf("per-route op names: got %v, want %v", got.Ops(), wantOps)
	}
	for _, op := range wantOps {
		g, w := got.Lookup(op), want.Lookup(op)
		if g.Count != w.Count {
			t.Errorf("%s: count %d, serial expectation %d", op, g.Count, w.Count)
		}
		if !reflect.DeepEqual(g.Buckets, w.Buckets) {
			t.Errorf("%s: bucket totals diverge from serial expectation", op)
		}
	}
	if lost := recC.Profile("GET /a").Lost(); lost != 0 {
		t.Errorf("locked mode lost %d updates", lost)
	}
}

func TestHandlerUncommonMethod(t *testing.T) {
	rec := live.New()
	h := live.Handler(rec, "/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("PROPFIND", "/x", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("PROPFIND", "/x", nil))
	if n := rec.Snapshot("s").Lookup("PROPFIND /x").Count; n != 2 {
		t.Errorf("uncommon method op count = %d", n)
	}
}
