package live_test

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"osprof/internal/core"
	"osprof/internal/live"
	"osprof/internal/store"
)

// scriptClock returns a clock that replays values in order; it fails
// the test if called more often than scripted. New() consumes the
// first value for the sampling epoch.
func scriptClock(t *testing.T, values ...uint64) func() uint64 {
	t.Helper()
	i := 0
	return func() uint64 {
		if i >= len(values) {
			t.Fatalf("clock called %d times, scripted %d", i+1, len(values))
		}
		v := values[i]
		i++
		return v
	}
}

func TestRecorderDefaults(t *testing.T) {
	rec := live.New()
	if rec.Resolution() != 1 || rec.Mode() != core.Unsync || rec.Shards() != 1 {
		t.Errorf("defaults: r=%d mode=%v shards=%d", rec.Resolution(), rec.Mode(), rec.Shards())
	}
	if rec.SamplingInterval() != 0 {
		t.Errorf("sampling on by default")
	}
	if rec.Profile("nope") != nil || rec.Timeline("nope") != nil {
		t.Errorf("unknown op not nil")
	}
}

func TestRecordDerivesLatencyFromClock(t *testing.T) {
	// epoch=0, then one clock read per Record.
	rec := live.New(live.WithClock(scriptClock(t, 0, 100, 1<<20, 50)))
	rec.Record("read", 0)   // now=100   -> latency 100
	rec.Record("read", 0)   // now=1<<20 -> latency 1<<20
	rec.Record("read", 100) // now=50    -> clock regressed: clamp to 0
	p := rec.Snapshot("s").Lookup("read")
	if p == nil || p.Count != 3 {
		t.Fatalf("profile: %+v", p)
	}
	for _, want := range []uint64{100, 1 << 20, 0} {
		if p.Buckets[core.BucketFor(want, 1)] == 0 {
			t.Errorf("latency %d not bucketed", want)
		}
	}
	if p.Total != 100+1<<20 {
		t.Errorf("total = %d", p.Total)
	}
}

func TestSpanRecordsOnEnd(t *testing.T) {
	// epoch, Start, End's Record.
	rec := live.New(live.WithClock(scriptClock(t, 0, 10, 1034)))
	span := rec.Start("op")
	span.End() // latency 1024 -> bucket 10
	p := rec.Snapshot("s").Lookup("op")
	if p == nil || p.Buckets[10] != 1 {
		t.Fatalf("span not recorded: %+v", p)
	}
	// A zero Span must be safe to End.
	live.Span{}.End()
}

func TestResolutionOption(t *testing.T) {
	rec := live.New(live.WithResolution(2))
	rec.Observe("op", 5_000)
	set := rec.Snapshot("s")
	if set.R != 2 {
		t.Fatalf("set resolution = %d", set.R)
	}
	p := set.Lookup("op")
	if p.R != 2 || p.Buckets[core.BucketFor(5_000, 2)] != 1 {
		t.Errorf("resolution-2 bucketing broken: %+v", p)
	}
}

func TestShardedModeExactWithDistinctShards(t *testing.T) {
	const workers, per = 8, 5_000
	rec := live.New(live.WithLockingMode(core.Sharded), live.WithShards(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec.ObserveShard(w, "op", uint64(i+1))
			}
		}()
	}
	wg.Wait()
	if lost := rec.Profile("op").Lost(); lost != 0 {
		t.Errorf("sharded recorder lost %d updates", lost)
	}
	if n := rec.Snapshot("s").Lookup("op").Count; n != workers*per {
		t.Errorf("count = %d, want %d", n, workers*per)
	}
}

func TestSnapshotWhileRecording(t *testing.T) {
	rec := live.New(live.WithLockingMode(core.Locked))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				rec.Observe("op", uint64(i%512+1))
			}
		}()
	}
	var last uint64
	for i := 0; i < 50; i++ {
		set := rec.Snapshot("mid")
		if err := set.Validate(); err != nil {
			t.Fatalf("mid-write snapshot: %v", err)
		}
		if p := set.Lookup("op"); p != nil {
			if p.Count < last {
				t.Fatalf("count went backwards: %d -> %d", last, p.Count)
			}
			last = p.Count
		}
	}
	wg.Wait()
	if n := rec.Snapshot("final").Lookup("op").Count; n != 40_000 {
		t.Errorf("final count = %d", n)
	}
}

func TestSamplingTimeline(t *testing.T) {
	// epoch=0; sampling on, so every Observe reads the clock once.
	rec := live.New(
		live.WithSampling(1_000),
		live.WithClock(scriptClock(t, 0, 100, 2_500, 2_600)),
	)
	rec.Observe("op", 7) // now=100   -> segment 0
	rec.Observe("op", 7) // now=2500  -> segment 2
	rec.Observe("op", 7) // now=2600  -> segment 2
	tl := rec.Timeline("op")
	if tl == nil || tl.Len() != 3 {
		t.Fatalf("timeline: %+v", tl)
	}
	if tl.Segment(0).Count != 1 || tl.Segment(2).Count != 2 {
		t.Errorf("segment counts: %d/%d", tl.Segment(0).Count, tl.Segment(2).Count)
	}
	// The returned timeline is a copy: mutating it must not touch the
	// recorder's state.
	tl.Record(100, 7)
	if rec.Timeline("op").Segment(0).Count != 1 {
		t.Error("Timeline returned live internal state, want a copy")
	}
}

func TestRecorderHotPathDoesNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name string
		rec  *live.Recorder
	}{
		{"unsync", live.New()},
		{"sharded", live.New(live.WithLockingMode(core.Sharded), live.WithShards(4))},
		{"locked", live.New(live.WithLockingMode(core.Locked))},
	} {
		tc.rec.Record("op", 0) // create the collector outside the measurement
		if allocs := testing.AllocsPerRun(100, func() {
			tc.rec.Record("op", 0)
		}); allocs != 0 {
			t.Errorf("%s: Record allocates %v objects/op, want 0", tc.name, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			tc.rec.Start("op").End()
		}); allocs != 0 {
			t.Errorf("%s: Span allocates %v objects/op, want 0", tc.name, allocs)
		}
	}
}

func TestCollectorHandleSharesState(t *testing.T) {
	rec := live.New(live.WithLockingMode(core.Locked))
	prof := rec.Collector("op")
	if prof == nil || prof.Mode != core.Locked {
		t.Fatalf("collector handle: %+v", prof)
	}
	prof.Record(0, 1_000)  // direct, lock-free-path update
	rec.Observe("op", 500) // recorder-path update
	if rec.Collector("op") != prof {
		t.Error("second Collector call returned a different histogram")
	}
	if n := rec.Snapshot("s").Lookup("op").Count; n != 2 {
		t.Errorf("updates split across histograms: count = %d", n)
	}
}

func TestSessionContextCancel(t *testing.T) {
	rec := live.New()
	ctx, cancel := context.WithCancel(context.Background())
	s := rec.Session(ctx, "app")
	if !s.Active() || s.Name() != "app" || s.Recorder() != rec {
		t.Fatalf("fresh session state wrong")
	}
	s.Record("op", 0)
	s.Start("op").End()
	cancel()
	<-s.Done()
	if s.Active() {
		t.Error("session still active after context cancel")
	}
	s.Record("op", 0)   // dropped
	s.Start("op").End() // no-op span
	if n := s.Snapshot().Lookup("op").Count; n != 2 {
		t.Errorf("post-cancel records not dropped: count = %d", n)
	}
	s.Close() // idempotent
}

func TestSessionExportDeterministicRoundTrip(t *testing.T) {
	rec := live.New()
	s := rec.Session(nil, "myapp")
	s.SetMeta("service", "api")
	rec.Observe("read", 100)
	rec.Observe("read", 90_000)
	rec.Observe("write", 3_000)

	var a, b bytes.Buffer
	if err := s.Export(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.Export(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same state differ: envelope not deterministic")
	}

	run, err := core.ReadRun(&a)
	if err != nil {
		t.Fatal(err)
	}
	if run.Fingerprint != s.Fingerprint() || run.Fingerprint == "" {
		t.Errorf("fingerprint mismatch: %q vs %q", run.Fingerprint, s.Fingerprint())
	}
	if run.Meta["collector"] != "live" || run.Meta["service"] != "api" ||
		run.Meta["mode"] != "unsync" {
		t.Errorf("meta: %v", run.Meta)
	}
	if run.Name() != "myapp" || run.Set.Lookup("read").Count != 2 {
		t.Errorf("set content: name=%q", run.Name())
	}
	if !reflect.DeepEqual(run.Set.Ops(), []string{"read", "write"}) {
		t.Errorf("ops: %v", run.Set.Ops())
	}
}

func TestSessionFingerprintTracksConfig(t *testing.T) {
	fp := func(name string, opts ...live.Option) string {
		return live.New(opts...).Session(nil, name).Fingerprint()
	}
	base := fp("app")
	for desc, other := range map[string]string{
		"name":       fp("other"),
		"resolution": fp("app", live.WithResolution(2)),
		// Locked keeps the default shard count, so this case isolates
		// the mode field alone.
		"mode":     fp("app", live.WithLockingMode(core.Locked)),
		"shards":   fp("app", live.WithLockingMode(core.Sharded), live.WithShards(4)),
		"sampling": fp("app", live.WithSampling(1_000)),
	} {
		if other == base {
			t.Errorf("fingerprint ignores %s", desc)
		}
	}
	if fp("app") != base {
		t.Error("fingerprint not deterministic")
	}
}

func TestSessionCommitToArchive(t *testing.T) {
	arch, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := live.New()
	s := rec.Session(nil, "app")
	rec.Observe("op", 1_000)

	id, created, err := s.Commit(arch)
	if err != nil || !created || id == "" {
		t.Fatalf("first commit: id=%q created=%v err=%v", id, created, err)
	}
	// Same state committed again dedups by content address.
	id2, created2, err := s.Commit(arch)
	if err != nil || created2 || id2 != id {
		t.Fatalf("second commit: id=%q created=%v err=%v", id2, created2, err)
	}
	e, ok, err := arch.Latest(s.Fingerprint())
	if err != nil || !ok || e.ID != id || e.Name != "app" {
		t.Fatalf("archive lookup: %+v ok=%v err=%v", e, ok, err)
	}
}
