package live

import (
	"io"
	"net"
	"net/http"
)

// This file instruments stdlib boundaries: every Read, Write, or HTTP
// request becomes one recorded operation, the way the paper's FSprof
// instruments every VFS entry point (§3.1, Figure 2). Wrapping at the
// boundary means the profiled program needs no structural changes —
// the "negligible overhead, no source changes" deployment story.

// wrappedReader profiles each Read call.
type wrappedReader struct {
	rec *Recorder
	op  string
	r   io.Reader
}

// WrapReader returns a reader that records the latency of every Read
// into op's profile. Only io.Reader is forwarded; wrap closers and
// seekers at a different op granularity if needed.
func WrapReader(rec *Recorder, op string, r io.Reader) io.Reader {
	return &wrappedReader{rec: rec, op: op, r: r}
}

func (w *wrappedReader) Read(p []byte) (int, error) {
	start := w.rec.Now()
	n, err := w.r.Read(p)
	w.rec.Record(w.op, start)
	return n, err
}

// wrappedWriter profiles each Write call.
type wrappedWriter struct {
	rec *Recorder
	op  string
	w   io.Writer
}

// WrapWriter returns a writer that records the latency of every Write
// into op's profile.
func WrapWriter(rec *Recorder, op string, w io.Writer) io.Writer {
	return &wrappedWriter{rec: rec, op: op, w: w}
}

func (w *wrappedWriter) Write(p []byte) (int, error) {
	start := w.rec.Now()
	n, err := w.w.Write(p)
	w.rec.Record(w.op, start)
	return n, err
}

// wrappedConn profiles each Read and Write on a net.Conn.
type wrappedConn struct {
	net.Conn
	rec     *Recorder
	opRead  string
	opWrite string
}

// WrapConn returns a connection that records every Read into
// "<prefix>.read" and every Write into "<prefix>.write" — the network
// I/O classes whose latency peaks identify round trips and delayed
// acknowledgments (§6.4). All other net.Conn methods pass through.
func WrapConn(rec *Recorder, prefix string, c net.Conn) net.Conn {
	return &wrappedConn{
		Conn:    c,
		rec:     rec,
		opRead:  prefix + ".read",
		opWrite: prefix + ".write",
	}
}

func (w *wrappedConn) Read(p []byte) (int, error) {
	start := w.rec.Now()
	n, err := w.Conn.Read(p)
	w.rec.Record(w.opRead, start)
	return n, err
}

func (w *wrappedConn) Write(p []byte) (int, error) {
	start := w.rec.Now()
	n, err := w.Conn.Write(p)
	w.rec.Record(w.opWrite, start)
	return n, err
}

// httpHandler is the per-route profiling middleware.
type httpHandler struct {
	rec   *Recorder
	route string
	next  http.Handler

	// ops maps method -> "METHOD route" op name. Fully built at
	// construction and immutable afterwards, so the serving path reads
	// it with no synchronization at all.
	ops map[string]string
}

// Handler wraps next so every request's latency is bucketed into a
// per-route, per-method operation named "<METHOD> <route>" (e.g.
// "GET /api/users"). Wrap each route separately so a slow route's
// latency modes are not averaged away by a fast one — the multi-modal
// analysis the method is built on. Requests are recorded into shard 0;
// serving handlers concurrently calls Record from many goroutines, so
// use Locked mode (or accept Unsync's bounded losses, §3.4).
func Handler(rec *Recorder, route string, next http.Handler) http.Handler {
	h := &httpHandler{rec: rec, route: route, next: next, ops: make(map[string]string)}
	// Pre-build the op names for the standard methods; anything
	// exotic (PROPFIND, ...) concatenates on the fly — one small
	// allocation on a rare path buys a synchronization-free hot path.
	for _, m := range []string{
		http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete,
		http.MethodHead, http.MethodPatch, http.MethodOptions,
		http.MethodConnect, http.MethodTrace,
	} {
		h.ops[m] = m + " " + route
	}
	return h
}

func (h *httpHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	op, ok := h.ops[r.Method]
	if !ok {
		op = r.Method + " " + h.route
	}
	start := h.rec.Now()
	h.next.ServeHTTP(w, r)
	h.rec.Record(op, start)
}
