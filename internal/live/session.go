package live

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"osprof/internal/core"
)

// Sink persists run envelopes; *store.Archive satisfies it, so a
// Session attaches directly to the on-disk profile archive.
type Sink interface {
	Put(run *core.Run) (id string, created bool, err error)
}

// Session is one named collection window over a Recorder: it labels
// the profile set, carries deterministic run metadata, and is the
// export point into the archive/diff machinery. A Session is
// context-aware: when its context is canceled (or Close is called),
// session-scoped recording stops, while snapshots and exports keep
// working on the data collected so far.
type Session struct {
	rec    *Recorder
	name   string
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	meta map[string]string

	// exportMu serializes incremental exports: the delta chain is
	// ordered by construction, so two concurrent ExportDelta calls
	// must not interleave their snapshot/advance steps.
	exportMu sync.Mutex
	lastRun  *core.Run // state as of the previous ExportDelta
	deltaSeq int       // chain position of the previous ExportDelta
}

// Session opens a collection window named name (the exported set
// name). ctx scopes the session: canceling it deactivates
// session-scoped recording. A nil ctx means the session only ends on
// Close.
func (rec *Recorder) Session(ctx context.Context, name string) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	return &Session{rec: rec, name: name, ctx: cctx, cancel: cancel}
}

// Name returns the session's set name.
func (s *Session) Name() string { return s.name }

// Recorder returns the underlying recorder.
func (s *Session) Recorder() *Recorder { return s.rec }

// Done is closed when the session ends (context canceled or Close).
func (s *Session) Done() <-chan struct{} { return s.ctx.Done() }

// Active reports whether the session is still collecting.
func (s *Session) Active() bool { return s.ctx.Err() == nil }

// Close ends the session. Idempotent; the collected data stays
// available for Snapshot/Export.
func (s *Session) Close() { s.cancel() }

// Record is the recorder's hot path scoped to the session: after the
// session ends it drops the observation instead of recording it.
func (s *Session) Record(op string, start uint64) {
	if s.ctx.Err() != nil {
		return
	}
	s.rec.Record(op, start)
}

// Start opens a span scoped to the session; after the session ends it
// returns a zero Span whose End is a no-op.
func (s *Session) Start(op string) Span {
	if s.ctx.Err() != nil {
		return Span{}
	}
	return s.rec.Start(op)
}

// SetMeta attaches one deterministic metadata pair to the exported run
// envelope. Values must not contain wall-clock or other
// run-to-run-varying data: exporting the same collected state twice
// must marshal to identical bytes so the content-addressed archive can
// deduplicate.
func (s *Session) SetMeta(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		s.meta = make(map[string]string)
	}
	s.meta[key] = value
}

// Fingerprint is the canonical identity of this live configuration:
// the recorder options plus the session name, hashed the same way
// scenario.Spec fingerprints the simulated worlds. It keys latest- and
// baseline-lookups in the archive, so successive exports of the same
// instrumented program line up for differential analysis.
func (s *Session) Fingerprint() string {
	canonical := fmt.Sprintf("osprof-live v1\nname=%q\nr=%d\nmode=%s\nshards=%d\nsample=%d\n",
		s.name, s.rec.res, s.rec.mode, s.rec.shards, s.rec.sample)
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:])
}

// Snapshot captures the current profile set (safe while recording
// continues).
func (s *Session) Snapshot() *core.Set { return s.rec.Snapshot(s.name) }

// Run wraps the current snapshot in a versioned run envelope:
// fingerprint, the session metadata plus the collector configuration,
// and the set.
func (s *Session) Run() *core.Run {
	meta := map[string]string{
		"collector":  "live",
		"mode":       s.rec.mode.String(),
		"shards":     fmt.Sprint(s.rec.shards),
		"resolution": fmt.Sprint(s.rec.res),
	}
	s.mu.Lock()
	for k, v := range s.meta {
		meta[k] = v
	}
	s.mu.Unlock()
	return &core.Run{Fingerprint: s.Fingerprint(), Meta: meta, Set: s.Snapshot()}
}

// Export writes the current state as a versioned run envelope, the
// exchange format `osprof serve` ingests and `osprof diff` compares.
func (s *Session) Export(w io.Writer) error { return core.WriteRun(w, s.Run()) }

// Commit archives the current state into sink (typically a
// *store.Archive) and returns the run's content address; created is
// false when an identical envelope was already archived.
func (s *Session) Commit(sink Sink) (id string, created bool, err error) {
	return sink.Put(s.Run())
}

// DeltaRun advances the session's delta chain and returns the next
// incremental envelope: only the buckets that changed since the
// previous ExportDelta/DeltaRun call (the whole state on the first
// call). A long-lived recorder that reports every interval ships
// O(new counts) per report instead of O(history); replaying the chain
// in order rebuilds the full envelope byte-identically (core.Delta).
// A window with no activity yields a valid zero-op delta.
func (s *Session) DeltaRun() (*core.Delta, error) {
	s.exportMu.Lock()
	defer s.exportMu.Unlock()
	cur := s.Run()
	d, err := core.DeltaOf(s.lastRun, cur, s.deltaSeq+1)
	if err != nil {
		return nil, err
	}
	s.lastRun, s.deltaSeq = cur, s.deltaSeq+1
	return d, nil
}

// ExportDelta writes the next incremental envelope of the session's
// delta chain to w, the wire format the batched /v1/ingest endpoint
// coalesces server-side. The chain only advances when the write
// succeeds, so a failed ship can simply be retried.
func (s *Session) ExportDelta(w io.Writer) error {
	s.exportMu.Lock()
	defer s.exportMu.Unlock()
	cur := s.Run()
	d, err := core.DeltaOf(s.lastRun, cur, s.deltaSeq+1)
	if err != nil {
		return err
	}
	if err := core.WriteDelta(w, d); err != nil {
		return err
	}
	s.lastRun, s.deltaSeq = cur, s.deltaSeq+1
	return nil
}
