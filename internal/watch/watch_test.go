package watch_test

import (
	"encoding/json"
	"strings"
	"testing"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/live"
	"osprof/internal/watch"
)

// mkRun builds a run from explicit per-op latencies via the live
// recorder (the same path real producers use).
func mkRun(name string, ops map[string][]uint64) *core.Run {
	rec := live.New()
	for op, lats := range ops {
		for _, l := range lats {
			rec.Observe(op, l)
		}
	}
	return rec.Session(nil, name).Run()
}

// labeled wraps a run as a corpus member.
func labeled(label string, ops map[string][]uint64) *core.Run {
	run := mkRun(label, ops)
	run.Meta = map[string]string{classify.LabelMetaKey: label}
	return run
}

// healthyOps is a bimodal read profile (cache hits + media reads).
func healthyOps() map[string][]uint64 {
	ops := map[string][]uint64{}
	for i := 0; i < 200; i++ {
		ops["read"] = append(ops["read"], 100+uint64(i%3))
	}
	for i := 0; i < 40; i++ {
		ops["read"] = append(ops["read"], 1<<13+uint64(i))
	}
	return ops
}

// flakyOps shifts the media-read mass up by rotations: the disk-flaky
// signature.
func flakyOps() map[string][]uint64 {
	ops := map[string][]uint64{}
	for i := 0; i < 200; i++ {
		ops["read"] = append(ops["read"], 100+uint64(i%3))
	}
	for i := 0; i < 40; i++ {
		ops["read"] = append(ops["read"], 1<<19+uint64(i))
	}
	return ops
}

// corpus holds one degraded label matching flakyOps.
func corpus(t *testing.T) *classify.Corpus {
	t.Helper()
	c, err := classify.BuildCorpus([]*core.Run{labeled("app-disk-flaky", flakyOps())})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestVerdictOK(t *testing.T) {
	e := watch.New()
	rep := e.Evaluate(mkRun("app", healthyOps()), mkRun("app", healthyOps()), corpus(t))
	if rep.Verdict != watch.OK {
		t.Fatalf("verdict %q (%s), want ok", rep.Verdict, rep.Detail)
	}
	if rep.Schema != watch.Schema || rep.Name != "app" {
		t.Errorf("report identity = %q %q", rep.Schema, rep.Name)
	}
	if rep.Identify != nil {
		t.Error("ok verdict ran the classifier")
	}
	if rep.Diff == nil || rep.Diff.Regression() {
		t.Error("ok verdict without a clean diff")
	}
}

func TestVerdictDegradedNamesTheLabel(t *testing.T) {
	e := watch.New()
	rep := e.Evaluate(mkRun("app", healthyOps()), mkRun("app", flakyOps()), corpus(t))
	if rep.Verdict != watch.Degraded {
		t.Fatalf("verdict %q (%s), want degraded", rep.Verdict, rep.Detail)
	}
	if rep.Label != "app-disk-flaky" {
		t.Errorf("label %q, want app-disk-flaky", rep.Label)
	}
	if rep.Identify == nil || !rep.Identify.Matched {
		t.Error("degraded verdict without a classifier match")
	}
	if len(rep.Diff.ChangedOps()) == 0 {
		t.Error("degraded verdict without per-op evidence")
	}
}

func TestVerdictAnomalyWhenUnattributable(t *testing.T) {
	e := watch.New()
	// A drift that matches nothing: all mass in a latency class the
	// corpus's only label never occupies.
	weird := map[string][]uint64{"read": make([]uint64, 100)}
	for i := range weird["read"] {
		weird["read"][i] = 1 << 28
	}
	rep := e.Evaluate(mkRun("app", healthyOps()), mkRun("app", weird), corpus(t))
	if rep.Verdict != watch.Anomaly {
		t.Fatalf("verdict %q (%s), want anomaly", rep.Verdict, rep.Detail)
	}
	if rep.Label != "" {
		t.Errorf("anomaly carries a label %q", rep.Label)
	}
	if rep.Identify == nil || rep.Identify.Matched {
		t.Error("anomaly should record the classifier's abstention")
	}
}

func TestVerdictAnomalyWithoutCorpus(t *testing.T) {
	e := watch.New()
	for _, c := range []*classify.Corpus{nil, {}} {
		rep := e.Evaluate(mkRun("app", healthyOps()), mkRun("app", flakyOps()), c)
		if rep.Verdict != watch.Anomaly {
			t.Fatalf("verdict %q (%s), want anomaly without a corpus", rep.Verdict, rep.Detail)
		}
		if rep.Identify != nil {
			t.Error("no corpus, but an identification was recorded")
		}
	}
}

// Every report shape must marshal to JSON: the serve layer embeds
// them in API responses unconditionally.
func TestReportsMarshal(t *testing.T) {
	e := watch.New()
	reports := []*watch.Report{
		e.Evaluate(mkRun("app", healthyOps()), mkRun("app", healthyOps()), corpus(t)),
		e.Evaluate(mkRun("app", healthyOps()), mkRun("app", flakyOps()), corpus(t)),
		e.Evaluate(mkRun("app", healthyOps()), mkRun("app", flakyOps()), nil),
		e.Evaluate(mkRun("", map[string][]uint64{}), mkRun("", map[string][]uint64{}), nil),
	}
	for i, rep := range reports {
		b, err := json.Marshal(rep)
		if err != nil {
			t.Errorf("report %d: %v", i, err)
			continue
		}
		var back watch.Report
		if err := json.Unmarshal(b, &back); err != nil {
			t.Errorf("report %d round trip: %v", i, err)
		}
		if back.Verdict != rep.Verdict || back.Detail != rep.Detail {
			t.Errorf("report %d round trip lost the verdict", i)
		}
	}
}

// A drifted load-profiled run carries the band evidence: the report
// names the load band the top attribution moved at, alongside the
// detail line.
func TestLoadBandEvidence(t *testing.T) {
	mk := func(contended bool) map[string][]uint64 {
		ops := map[string][]uint64{}
		for i := 0; i < 200; i++ {
			ops["read"] = append(ops["read"], 100+uint64(i%3))
			if contended {
				ops["read@load:5+"] = append(ops["read@load:5+"], 1<<15+uint64(i))
			} else {
				ops["read@load:5+"] = append(ops["read@load:5+"], 1<<8+uint64(i%7))
			}
		}
		return ops
	}
	rep := watch.New().Evaluate(mkRun("app", mk(false)), mkRun("app", mk(true)), nil)
	if rep.Verdict == watch.OK {
		t.Fatalf("contention drift not flagged: %s", rep.Detail)
	}
	if rep.LoadBand != "5+" {
		t.Errorf("load band evidence = %q, want 5+ (%s)", rep.LoadBand, rep.Detail)
	}
	if !strings.Contains(rep.Detail, "load:5+") {
		t.Errorf("detail misses the band: %s", rep.Detail)
	}

	// Unconditioned drift keeps the pre-load report shape.
	plain := watch.New().Evaluate(mkRun("app", healthyOps()), mkRun("app", flakyOps()), nil)
	if plain.LoadBand != "" {
		t.Errorf("unconditioned drift grew load evidence: %q", plain.LoadBand)
	}
}
