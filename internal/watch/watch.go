// Package watch turns the pairwise differential analysis into a
// continuous verdict: given a blessed baseline for a run name and a
// freshly recorded run, it answers "is this system still healthy, and
// if not, what does the degradation look like?".
//
// The verdict ladder composes the two analyses the repository already
// trusts:
//
//  1. diff (internal/diff): the run is compared against its baseline
//     with the paper's differential peak analysis. No flagged
//     operation means the system behaves as blessed — verdict ok.
//  2. identify (internal/classify): a flagged run is classified
//     against the labeled corpus, which includes the fault-injected
//     degraded members (scenario degradedCells). A confident match
//     names the failure mode — verdict degraded with the matched
//     label ("ext2-preempt-c256-disk-flaky": looks like a flaky
//     disk). An abstention means the profile changed into something
//     the corpus has never seen — verdict anomaly, the strongest
//     signal to go look.
//
// The paper's §1 motivation is exactly this loop: profiles are cheap
// enough to collect always, so degradations surface as profile drift
// long before they surface as failures.
package watch

import (
	"fmt"

	"osprof/internal/classify"
	"osprof/internal/core"
	"osprof/internal/diff"
)

// Schema versions the JSON shape of Report.
const Schema = "osprof-watch/v1"

// Verdict is the watch's top-level answer.
type Verdict string

const (
	// OK: the run matches its baseline across every operation.
	OK Verdict = "ok"

	// Degraded: the run drifted from its baseline AND the classifier
	// confidently matched a labeled (typically fault-injected) corpus
	// member — the failure mode has a name.
	Degraded Verdict = "degraded"

	// Anomaly: the run drifted from its baseline and matches nothing
	// in the corpus — an unknown degradation.
	Anomaly Verdict = "anomaly"
)

// Report is one watch evaluation.
type Report struct {
	Schema string `json:"schema"`

	// Name is the watched run name; BaselineID the archived run the
	// evaluation compared against.
	Name       string `json:"name"`
	BaselineID string `json:"baseline_id,omitempty"`

	Verdict Verdict `json:"verdict"`

	// Label names the matched degraded configuration (Degraded only).
	Label string `json:"label,omitempty"`

	// Layer names the layer the top drifted traced operation moved in
	// (the diff's layer attribution). Empty for untraced runs, whose
	// reports keep the pre-trace shape.
	Layer string `json:"layer,omitempty"`

	// LoadBand names the load band the top drifted load-profiled
	// operation moved at (the diff's load attribution). Empty for
	// unconditioned runs, whose reports keep the pre-load shape.
	LoadBand string `json:"load_band,omitempty"`

	// Detail is the one-line human-readable explanation.
	Detail string `json:"detail"`

	// Diff is the per-operation evidence against the baseline.
	Diff *diff.Report `json:"diff,omitempty"`

	// Identify is the classifier's attribution attempt (only present
	// when the diff flagged a drift and a corpus was available).
	Identify *classify.Report `json:"identify,omitempty"`
}

// Engine evaluates watches. Like diff.Engine it carries reusable
// scratch state: create one per goroutine.
type Engine struct {
	Diff       *diff.Engine
	Classifier *classify.Classifier
}

// New returns an engine with the repository's default differential
// selector and classifier calibration.
func New() *Engine {
	return &Engine{Diff: diff.New(), Classifier: classify.New()}
}

// Evaluate compares run against its baseline and, when drifted,
// attributes the drift against the labeled corpus. corpus may be nil
// (or empty): drift then verdicts as anomaly without attribution. It
// never fails; malformed inputs surface in the verdict's Detail.
func (e *Engine) Evaluate(baseline, run *core.Run, corpus *classify.Corpus) *Report {
	rep := &Report{Schema: Schema, Name: run.Name()}
	d := e.Diff.Runs(baseline, run)
	rep.Diff = d
	if !d.Regression() {
		rep.Verdict = OK
		rep.Detail = fmt.Sprintf("matches baseline across %d operations", len(d.Ops))
		return rep
	}
	drift := driftSummary(d)
	if len(d.Layers) > 0 {
		mv := d.Layers[0]
		rep.Layer = mv.Layer
		drift += fmt.Sprintf("; %s moved in the %s layer", mv.Op, mv.Layer)
	}
	if len(d.Loads) > 0 {
		mv := d.Loads[0]
		rep.LoadBand = mv.Band
		drift += fmt.Sprintf("; %s moved at load:%s", mv.Op, mv.Band)
	}
	if corpus != nil && len(corpus.Centroids) > 0 {
		id := e.Classifier.Identify(corpus, run)
		rep.Identify = id
		if id.Matched {
			rep.Verdict = Degraded
			rep.Label = id.Label
			rep.Detail = fmt.Sprintf("%s; looks like %q (distance %.4g, margin %.2g)",
				drift, id.Label, id.Distance, id.Margin)
			return rep
		}
		rep.Verdict = Anomaly
		rep.Detail = fmt.Sprintf("%s; matches no corpus label (%s)", drift, id.Reason)
		return rep
	}
	rep.Verdict = Anomaly
	rep.Detail = drift + "; no labeled corpus to attribute against"
	return rep
}

// driftSummary names the worst flagged operation: "3 operations
// drifted, worst read (shifted-peak, score 0.41)".
func driftSummary(d *diff.Report) string {
	changed := d.ChangedOps()
	if len(changed) == 0 {
		return "no operations drifted"
	}
	worst := changed[0]
	noun := "operations"
	if len(changed) == 1 {
		noun = "operation"
	}
	return fmt.Sprintf("%d %s drifted from baseline, worst %s (%s, score %.2g)",
		len(changed), noun, worst.Op, worst.Verdict, worst.Score)
}
