package fault

import (
	"strings"
	"testing"

	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
)

func TestCanonicalPresenceEncoding(t *testing.T) {
	var nilSpec *Spec
	if got := nilSpec.Canonical(); got != "" {
		t.Errorf("nil spec canonical = %q, want empty", got)
	}
	if got := (&Spec{}).Canonical(); got != "" {
		t.Errorf("empty spec canonical = %q, want empty", got)
	}
	if !nilSpec.Empty() || !(&Spec{}).Empty() {
		t.Error("nil/zero specs must report Empty")
	}
	full := &Spec{
		Disk:   &DiskFaults{ReadErrorEvery: 3, ErrorRetries: 4, SpikeRate: 0.25},
		Thrash: &CacheThrash{Interval: 1 << 19},
		Hog:    &HogDaemon{Busy: 1 << 16, LockPath: "zero"},
	}
	if full.Empty() {
		t.Error("configured spec must not report Empty")
	}
	c := full.Canonical()
	for _, want := range []string{"inject disk ", "inject thrash ", "inject hog ", "errrate=0", "spikerate=0.25", `lock="zero"`} {
		if !strings.Contains(c, want) {
			t.Errorf("canonical missing %q:\n%s", want, c)
		}
	}
	// Each configured source changes the encoding (fingerprints must
	// move with any knob).
	if (&Spec{Disk: &DiskFaults{ReadErrorEvery: 4, ErrorRetries: 4, SpikeRate: 0.25}}).Canonical() ==
		(&Spec{Disk: &DiskFaults{ReadErrorEvery: 3, ErrorRetries: 4, SpikeRate: 0.25}}).Canonical() {
		t.Error("knob change did not change the canonical encoding")
	}
}

func TestPresets(t *testing.T) {
	names := PresetNames()
	if len(names) < 3 {
		t.Fatalf("want >= 3 presets, got %v", names)
	}
	for _, name := range names {
		spec, ok := Preset(name)
		if !ok || spec.Empty() {
			t.Errorf("preset %q missing or empty", name)
		}
		if spec.Canonical() == "" {
			t.Errorf("preset %q encodes to nothing", name)
		}
	}
	// Copies are fresh: mutating one lookup must not leak into the next.
	a, _ := Preset("disk-flaky")
	a.Disk.ReadErrorEvery = 999
	b, _ := Preset("disk-flaky")
	if b.Disk.ReadErrorEvery == 999 {
		t.Error("Preset returned a shared copy")
	}
	if _, ok := Preset("no-such-preset"); ok {
		t.Error("unknown preset resolved")
	}
}

// The periodic triggers fire on exact counts: no RNG, no variance.
func TestDiskInjectorPeriodic(t *testing.T) {
	inj := NewDiskInjector(DiskFaults{ReadErrorEvery: 2, ErrorRetries: 3, SpikeEvery: 3, SpikeCycles: 100, WriteFactor: 4}, 1000, 1)
	read := &disk.Request{Blocks: 1}
	write := &disk.Request{Blocks: 1, Write: true}

	if got := inj.Perturb(read, 500, false); got != 0 {
		t.Errorf("cache hit perturbed by %d cycles", got)
	}
	// Media reads 1..4: errors on 2 and 4 (3 rotations each); media
	// accesses 3 and 6 spike.
	var total uint64
	for i := 0; i < 4; i++ {
		total += inj.Perturb(read, 500, true)
	}
	want := uint64(2*3*1000 + 100)
	if total != want {
		t.Errorf("4 media reads injected %d cycles, want %d", total, want)
	}
	// Write: factor 4 means base*3 extra; access #5 doesn't spike.
	if got := inj.Perturb(write, 500, true); got != 3*500 {
		t.Errorf("slow write injected %d, want %d", got, 3*500)
	}
	st := inj.Stats()
	if st.RecoveredErrors != 2 || st.Spikes != 1 || st.SlowWrites != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ExtraCycles != total+3*500 {
		t.Errorf("ExtraCycles = %d, want %d", st.ExtraCycles, total+3*500)
	}
}

// Rate-based triggers draw from the injector's own seeded RNG: the
// same seed replays the same faults, a different seed does not.
func TestDiskInjectorRateDeterminism(t *testing.T) {
	run := func(seed int64) []uint64 {
		inj := NewDiskInjector(DiskFaults{ReadErrorRate: 0.3, SpikeRate: 0.2, SpikeCycles: 7}, 1000, seed)
		out := make([]uint64, 200)
		r := &disk.Request{Blocks: 1}
		for i := range out {
			out[i] = inj.Perturb(r, 500, true)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sequences")
	}
	var fired int
	for _, x := range a {
		if x != 0 {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("rate faults fired on %d/%d requests", fired, len(a))
	}
}

// The thrash daemon forcibly evicts clean idle pages on schedule.
func TestStartThrash(t *testing.T) {
	k := sim.New(sim.Config{})
	cache := mem.NewCache(k, 0)
	for i := uint64(0); i < 10; i++ {
		pg, _ := cache.GetOrCreate(mem.Key{Ino: 1, Index: i})
		cache.MarkUptodate(pg)
	}
	dirty, _ := cache.GetOrCreate(mem.Key{Ino: 2, Index: 0})
	cache.MarkUptodate(dirty)
	cache.MarkDirty(dirty, 0)

	StartThrash(k, cache, CacheThrash{Interval: 1000})
	k.Spawn("app", func(p *sim.Proc) { p.Sleep(5_000) })
	k.Run()

	if cache.Len() != 1 {
		t.Errorf("thrash left %d pages resident, want 1 (the dirty page)", cache.Len())
	}
	if got := cache.Stats().ForcedEvictions; got != 10 {
		t.Errorf("ForcedEvictions = %d, want 10", got)
	}
	if cache.Peek(mem.Key{Ino: 2, Index: 0}) == nil {
		t.Error("thrash evicted a dirty page")
	}
}

// The hog daemon's kernel-mode bursts stall a co-scheduled process on
// a single CPU; the same workload alone finishes sooner.
func TestStartHogStallsVictims(t *testing.T) {
	elapsed := func(withHog bool) uint64 {
		k := sim.New(sim.Config{NumCPUs: 1, Preemptive: true, Quantum: 1 << 14})
		if withHog {
			StartHog(k, nil, HogDaemon{Busy: 1 << 16, Sleep: 1 << 16})
		}
		k.Spawn("victim", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				p.ExecUser(1 << 12)
				p.Sleep(1 << 12)
			}
		})
		k.Run()
		return k.Now()
	}
	alone, hogged := elapsed(false), elapsed(true)
	if hogged <= alone {
		t.Errorf("hogged run finished in %d cycles, alone %d: the hog stole no time", hogged, alone)
	}
}
