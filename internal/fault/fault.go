// Package fault is the deterministic fault-injection layer: it turns a
// healthy simulated stack into a reproducibly degraded one. The paper's
// §5 workflow is comparative — profiles pay off when a latency shift
// can be attributed to a cause — and fault injection supplies the
// causes: a drive that suffers recovered read errors and positioning
// spikes, writes that crawl, a page cache forcibly thrashed empty, and
// a misbehaving daemon that hogs the CPU or camps on an inode lock.
//
// A Spec is declarative and canonically encodable, so it participates
// in scenario fingerprints (scenario.Spec.Injections): the same healthy
// configuration with and without an injection program is two different
// worlds with two different content addresses, while the scenario name
// stays the same — which is exactly what lets the anomaly watcher
// (internal/watch) compare a degraded ingest against the healthy
// baseline recorded under the same name.
//
// Every fault source is deterministic. Period-based triggers (Every)
// fire on exact request counts and have zero cross-seed variance, so
// the degraded corpus cells built from them classify as tightly as
// healthy ones. Probability-based triggers (Rate) draw from their own
// rand.Rand seeded from the kernel seed, so an injected run remains
// byte-reproducible: same seed, same injection spec, same envelope.
package fault

import (
	"fmt"
	"math/rand"
	"strings"

	"osprof/internal/disk"
	"osprof/internal/mem"
	"osprof/internal/sim"
	"osprof/internal/vfs"
)

// Spec declares the complete fault program of one scenario. All fields
// are optional; the zero Spec injects nothing.
type Spec struct {
	// Disk perturbs the drive's request service times.
	Disk *DiskFaults

	// Thrash runs a forced-eviction daemon against the page cache.
	Thrash *CacheThrash

	// Hog runs a misbehaving daemon that burns CPU in bursts and may
	// hold an inode lock across each burst.
	Hog *HogDaemon
}

// DiskFaults perturbs the simulated drive below the file system: the
// injector hooks disk.Disk's service-time computation (disk.Injector)
// and stretches individual requests. Triggers come in two flavors per
// fault: Every fires deterministically on each Nth event, Rate fires on
// a seeded coin flip per event; both may be combined.
type DiskFaults struct {
	// ReadErrorEvery injects a recovered read error on every Nth media
	// read (0 disables): the drive re-reads the sector for ErrorRetries
	// full platter rotations before succeeding, the classic
	// dying-disk signature of retry storms that still return data.
	ReadErrorEvery int

	// ReadErrorRate is the per-media-read probability of a recovered
	// error (0 disables), driven by the injector's seeded RNG.
	ReadErrorRate float64

	// ErrorRetries is the number of full-rotation retries per recovered
	// error (default 4).
	ErrorRetries int

	// SpikeEvery injects a positioning-latency spike of SpikeCycles on
	// every Nth media access (0 disables) — aging servo/vibration
	// behavior where seeks intermittently overshoot.
	SpikeEvery int

	// SpikeRate is the per-media-access spike probability (0 disables).
	SpikeRate float64

	// SpikeCycles is the added latency per spike (default one full
	// rotation).
	SpikeCycles uint64

	// WriteFactor multiplies the media service time of writes
	// (slow/torn writes: the drive's write path degrades while reads
	// stay healthy). Values <= 1 disable.
	WriteFactor uint64
}

// CacheThrash configures the forced-eviction daemon: every Interval it
// evicts up to Pages clean idle pages (oldest first; 0 means all),
// turning cache-hit peaks into media-read peaks regardless of the
// configured cache size.
type CacheThrash struct {
	// Interval is the daemon's wakeup period in cycles.
	Interval uint64

	// Pages bounds evictions per wakeup (0 = every clean idle page).
	Pages int
}

// HogDaemon configures the misbehaving daemon: it loops Busy cycles of
// CPU burn followed by Sleep cycles of idling. In kernel mode (User
// false) a non-preemptive kernel cannot take the CPU back mid-burst,
// so victim latencies stretch by the full burst — the hog's profile
// signature itself encodes the kernel's preemption build.
type HogDaemon struct {
	// Busy and Sleep shape the burst pattern in cycles.
	Busy, Sleep uint64

	// User runs the burst in user mode (preemptible on any kernel
	// build at quantum boundaries).
	User bool

	// LockPath, when set, names a file whose inode semaphore (i_sem)
	// the daemon holds across each burst, serializing every metadata
	// operation on that inode behind the hog.
	LockPath string
}

// Canonical returns the deterministic text encoding of the Spec for
// scenario fingerprinting, one "inject ..." line per configured fault
// source. The nil/empty Spec encodes to "" so healthy specs keep their
// pre-fault fingerprints (the same conditional-presence idiom as
// scenario.Spec.Label).
func (s *Spec) Canonical() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if d := s.Disk; d != nil {
		fmt.Fprintf(&b, "inject disk errevery=%d errrate=%g retries=%d spikeevery=%d spikerate=%g spikecycles=%d writefactor=%d\n",
			d.ReadErrorEvery, d.ReadErrorRate, d.ErrorRetries,
			d.SpikeEvery, d.SpikeRate, d.SpikeCycles, d.WriteFactor)
	}
	if t := s.Thrash; t != nil {
		fmt.Fprintf(&b, "inject thrash interval=%d pages=%d\n", t.Interval, t.Pages)
	}
	if h := s.Hog; h != nil {
		fmt.Fprintf(&b, "inject hog busy=%d sleep=%d user=%t lock=%q\n",
			h.Busy, h.Sleep, h.User, h.LockPath)
	}
	return b.String()
}

// Empty reports whether the Spec injects nothing.
func (s *Spec) Empty() bool {
	return s == nil || (s.Disk == nil && s.Thrash == nil && s.Hog == nil)
}

// DiskStats aggregates what the disk injector did.
type DiskStats struct {
	// RecoveredErrors counts injected read-error retry sequences.
	RecoveredErrors uint64

	// Spikes counts injected positioning spikes.
	Spikes uint64

	// SlowWrites counts writes stretched by WriteFactor.
	SlowWrites uint64

	// ExtraCycles totals the injected service time.
	ExtraCycles uint64
}

// DiskInjector implements disk.Injector for a DiskFaults program. One
// injector serves one drive; its RNG is derived from the scenario's
// kernel seed, so the injected world is as deterministic as the
// healthy one.
type DiskInjector struct {
	cfg      DiskFaults
	rotation uint64 // full-rotation cycles, the retry unit
	rng      *rand.Rand

	mediaReads  uint64 // media reads observed (error trigger base)
	mediaAccess uint64 // media reads+writes observed (spike base)
	stats       DiskStats
}

// NewDiskInjector builds the injector for cfg against a drive whose
// full rotation takes rotation cycles. seed derives the fault RNG
// (offset so it never mirrors the kernel's own stream).
func NewDiskInjector(cfg DiskFaults, rotation uint64, seed int64) *DiskInjector {
	if cfg.ErrorRetries == 0 {
		cfg.ErrorRetries = 4
	}
	if cfg.SpikeCycles == 0 {
		cfg.SpikeCycles = rotation
	}
	return &DiskInjector{
		cfg:      cfg,
		rotation: rotation,
		rng:      rand.New(rand.NewSource(seed ^ 0x6f737072_6f662d66)), // "osprof-f"
	}
}

// Stats returns what the injector has done so far.
func (i *DiskInjector) Stats() DiskStats { return i.stats }

// Perturb implements disk.Injector: called in kernel-event context as a
// request enters service, after the healthy service time base was
// computed; media reports a media access (cache hits are never
// perturbed — the faults model mechanics, not electronics). The return
// value is added to the request's service time.
func (i *DiskInjector) Perturb(r *disk.Request, base uint64, media bool) uint64 {
	if !media {
		return 0
	}
	var extra uint64
	c := &i.cfg
	i.mediaAccess++
	if !r.Write {
		i.mediaReads++
		fire := c.ReadErrorEvery > 0 && i.mediaReads%uint64(c.ReadErrorEvery) == 0
		if !fire && c.ReadErrorRate > 0 && i.rng.Float64() < c.ReadErrorRate {
			fire = true
		}
		if fire {
			extra += uint64(c.ErrorRetries) * i.rotation
			i.stats.RecoveredErrors++
		}
	}
	spike := c.SpikeEvery > 0 && i.mediaAccess%uint64(c.SpikeEvery) == 0
	if !spike && c.SpikeRate > 0 && i.rng.Float64() < c.SpikeRate {
		spike = true
	}
	if spike {
		extra += c.SpikeCycles
		i.stats.Spikes++
	}
	if r.Write && c.WriteFactor > 1 {
		extra += base * (c.WriteFactor - 1)
		i.stats.SlowWrites++
	}
	i.stats.ExtraCycles += extra
	return extra
}

// StartThrash spawns the forced-eviction daemon against cache c.
func StartThrash(k *sim.Kernel, c *mem.Cache, cfg CacheThrash) {
	interval := cfg.Interval
	if interval == 0 {
		interval = 1 << 20
	}
	k.SpawnDaemon("fault-thrash", func(p *sim.Proc) {
		for {
			p.Sleep(interval)
			c.EvictClean(cfg.Pages)
		}
	})
}

// StartHog spawns the misbehaving daemon. sys is the raw system-call
// surface used to resolve LockPath (nil is fine when LockPath is
// empty); the hog opens the file once, inside the simulation, before
// its first burst — a rogue daemon pays for its own open.
func StartHog(k *sim.Kernel, sys vfs.Syscalls, cfg HogDaemon) {
	busy := cfg.Busy
	if busy == 0 {
		busy = 1 << 16
	}
	sleep := cfg.Sleep
	if sleep == 0 {
		sleep = 4 * busy
	}
	k.SpawnDaemon("fault-hog", func(p *sim.Proc) {
		var sem *sim.Semaphore
		if cfg.LockPath != "" && sys != nil {
			if f, err := sys.Open(p, cfg.LockPath, false); err == nil {
				sem = f.Inode.Sem
			}
		}
		for {
			p.Sleep(sleep)
			if sem != nil {
				sem.Down(p)
			}
			if cfg.User {
				p.ExecUser(busy)
			} else {
				p.Exec(busy)
			}
			if sem != nil {
				sem.Up(p)
			}
		}
	})
}
