package fault

import (
	"sort"

	"osprof/internal/cycles"
)

// presets are the named degraded configurations shared by the degraded
// corpus cells (scenario.Variants), the CLI's `record -inject`, and the
// docs. Each one is a recognizable failure mode with a distinctive
// latency signature, so `osprof identify` can attribute a degraded run
// to its cause:
//
//   - disk-flaky: a dying drive. Every third media read suffers a
//     recovered error (four full-rotation retries) and every seventh
//     media access takes a two-rotation positioning spike. Media-read
//     peaks shift up by whole rotations; cache-hit peaks stay put.
//   - cache-thrash: memory pressure or a rogue page scanner. A daemon
//     forcibly evicts every clean idle page twice per simulated
//     millisecond, so reads that should hit the page cache go back to
//     the platters no matter how large the cache is.
//   - cpu-hog: a misbehaving daemon burning the CPU in kernel mode,
//     eight scheduling quanta per burst at a ~20% duty cycle. On a
//     non-preemptive kernel each burst runs to completion and every
//     victim operation issued meanwhile absorbs it whole; a
//     preemptive kernel clips the damage at quantum granularity — the
//     same fault, two distinguishable signatures.
//   - flusher-lock: the §4.3 pathology — a daemon that camps on
//     /bigfile's inode semaphore (i_sem) across each CPU burst, at a
//     ~50% duty cycle, serializing every direct I/O and metadata
//     operation on that inode behind it. Victims block inside the
//     file system, so a traced run attributes the damage to the fs
//     layer — unlike cpu-hog, which inflates every layer it preempts.
var presets = map[string]func() *Spec{
	"disk-flaky": func() *Spec {
		return &Spec{Disk: &DiskFaults{
			ReadErrorEvery: 3,
			ErrorRetries:   4,
			SpikeEvery:     7,
			SpikeCycles:    2 * cycles.FullRotation,
		}}
	},
	"cache-thrash": func() *Spec {
		return &Spec{Thrash: &CacheThrash{
			Interval: 1 << 19, // ~0.3 ms: well under one media read
			Pages:    0,       // evict every clean idle page
		}}
	},
	"cpu-hog": func() *Spec {
		return &Spec{Hog: &HogDaemon{
			Busy:  1 << 17, // 8 corpus quanta per burst
			Sleep: 1 << 19, // ~20% duty cycle
		}}
	},
	"flusher-lock": func() *Spec {
		return &Spec{Hog: &HogDaemon{
			Busy:     1 << 20, // ~a quarter media read per hold
			Sleep:    1 << 18, // ~80% duty cycle: the lock is the story
			LockPath: "/bigfile",
		}}
	},
}

// Preset returns a fresh copy of the named injection preset.
func Preset(name string) (*Spec, bool) {
	mk, ok := presets[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// PresetNames lists the preset names in sorted order.
func PresetNames() []string {
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
