package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestListPageLabelPaging pins the label filter's interaction with the
// Seq cursor: the cursor pages the *filtered* sequence, so resuming
// with the last returned entry's Seq never skips or repeats a matching
// run, whatever unlabeled (or differently labeled) entries sit between
// them.
func TestListPageLabelPaging(t *testing.T) {
	a := open(t)
	put := func(i int, label string) {
		t.Helper()
		run := testRun("fp", "s", uint64(100+i))
		if label != "" {
			run.Meta[LabelMetaKey] = label
		}
		if _, _, err := a.Put(run); err != nil {
			t.Fatal(err)
		}
	}
	// Seqs 1..9: "cell" on the odd seqs, "other" on 4 and 6, the rest
	// unlabeled — so every filtered page has gaps to step over.
	labels := []string{"cell", "", "cell", "other", "cell", "other", "cell", "", "cell"}
	for i, l := range labels {
		put(i, l)
	}

	// Walk label "cell" with limit 2: pages [1 3] [5 7] [9], each
	// resumed from the previous page's last Seq.
	var got []int
	after, pages := 0, 0
	for {
		entries, more, aware, err := a.ListPageLabel("cell", after, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !aware {
			t.Fatal("fresh archive is not label-aware")
		}
		pages++
		for _, e := range entries {
			if e.Label != "cell" {
				t.Fatalf("filtered page leaked label %q (seq %d)", e.Label, e.Seq)
			}
			got = append(got, e.Seq)
		}
		if !more {
			break
		}
		if len(entries) == 0 {
			t.Fatal("more=true with an empty page cannot make progress")
		}
		after = entries[len(entries)-1].Seq
	}
	want := []int{1, 3, 5, 7, 9}
	if pages != 3 || len(got) != len(want) {
		t.Fatalf("walk: %d pages, seqs %v, want 3 pages of %v", pages, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order: %v, want %v", got, want)
		}
	}

	// A label whose matches exactly fill the limit reports more=false:
	// the scan runs past the page to prove nothing follows.
	entries, more, _, err := a.ListPageLabel("other", 0, 2)
	if err != nil || len(entries) != 2 || more {
		t.Fatalf("exact-fit page: entries=%d more=%v err=%v", len(entries), more, err)
	}

	// Unknown labels page to nothing, without error.
	if entries, more, _, err = a.ListPageLabel("ghost", 0, 2); err != nil || len(entries) != 0 || more {
		t.Fatalf("unknown label: entries=%d more=%v err=%v", len(entries), more, err)
	}

	// An empty label is plain ListPage — same entries, same cursor.
	labeled, lmore, _, err := a.ListPageLabel("", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	plain, pmore, err := a.ListPage(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(labeled) != len(plain) || lmore != pmore {
		t.Fatalf("empty-label passthrough: %d/%v vs %d/%v", len(labeled), lmore, len(plain), pmore)
	}
	for i := range plain {
		if labeled[i].Seq != plain[i].Seq {
			t.Fatalf("empty-label page diverges at %d: %+v vs %+v", i, labeled[i], plain[i])
		}
	}
}

// A legacy v1 index has no label column: ListPageLabel must report
// labelAware=false so callers can refuse instead of returning a
// misleading empty page.
func TestListPageLabelLegacyIndex(t *testing.T) {
	a := open(t)
	id, _, err := a.Put(testRun("fp1", "ext2/grep", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(a.Dir(), "index.d")); err != nil {
		t.Fatal(err)
	}
	old := "osprof-index v1\nrun 1 " + id + " fp1 \"ext2/grep\"\n"
	if err := os.WriteFile(a.indexPath(), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	legacy, err := Open(a.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, aware, err := legacy.ListPageLabel("cell", 0, 2); err != nil || aware {
		t.Errorf("v1 index reported label-aware (err=%v)", err)
	}
	// The empty-label passthrough carries the same flag.
	if _, _, aware, _ := legacy.ListPageLabel("", 0, 2); aware {
		t.Error("v1 index reported label-aware on passthrough")
	}
}
