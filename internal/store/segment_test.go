package store

import (
	"fmt"
	"sync"
	"testing"

	"osprof/internal/core"
)

// PutBatch must behave exactly like the equivalent serial Puts: same
// results, same entries, same dedup — including dedup against earlier
// runs of the same batch.
func TestPutBatchMatchesSerialPuts(t *testing.T) {
	batch := []*core.Run{
		testRun("fp1", "s", 100),
		testRun("fp2", "o", 200),
		testRun("fp1", "s", 100),      // identical to [0]: dedup within the batch
		testRun("fp1", "s", 100, 300), // different content: appends
	}

	serial := open(t)
	var want []PutResult
	for _, r := range batch {
		id, created, err := serial.Put(r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, PutResult{ID: id, Created: created})
	}

	batched := open(t)
	got, err := batched.PutBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("results: %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	se, _ := serial.List()
	be, _ := batched.List()
	if len(se) != len(be) {
		t.Fatalf("entry counts diverge: serial %d, batched %d", len(se), len(be))
	}
	for i := range se {
		if se[i] != be[i] {
			t.Errorf("entry %d: serial %+v, batched %+v", i, se[i], be[i])
		}
	}
}

func TestPutBatchEmpty(t *testing.T) {
	a := open(t)
	res, err := a.PutBatch(nil)
	if err != nil || res != nil {
		t.Errorf("PutBatch(nil) = %v, %v", res, err)
	}
}

func TestListPage(t *testing.T) {
	a := open(t)
	var ids []string
	for i := 0; i < 7; i++ {
		id, _, err := a.Put(testRun(fmt.Sprintf("fp%d", i), "s", uint64(100+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var got []string
	after, pages := 0, 0
	for {
		page, more, err := a.ListPage(after, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page {
			got = append(got, e.ID)
		}
		pages++
		if !more {
			break
		}
		after = page[len(page)-1].Seq
	}
	if pages != 3 {
		t.Errorf("paged through in %d pages, want 3", pages)
	}
	if len(got) != len(ids) {
		t.Fatalf("paged %d ids, want %d", len(got), len(ids))
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Errorf("page order: entry %d = %s, want %s", i, short(got[i]), short(ids[i]))
		}
	}
	// Cursor past the end: empty page, no more.
	if page, more, _ := a.ListPage(1_000_000, 3); len(page) != 0 || more {
		t.Errorf("past-the-end page: %v more=%v", page, more)
	}
	// limit <= 0 means everything.
	if page, more, _ := a.ListPage(0, 0); len(page) != 7 || more {
		t.Errorf("unlimited page: %d entries more=%v", len(page), more)
	}
}

// Filling segments past the rotation threshold must seal and start new
// ones transparently: everything stays listable, across reopen, and
// Compact folds the history back into one segment per shard.
func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.segLimit = 4 // force rotation quickly
	const n = 20
	var ids []string
	for i := 0; i < n; i++ {
		id, created, err := a.Put(testRun("fp-rot", "s", uint64(100+i)))
		if err != nil || !created {
			t.Fatalf("Put %d: created=%v err=%v", i, created, err)
		}
		ids = append(ids, id)
	}
	if err := a.SetBaseline("fp-rot", ids[n-1]); err != nil {
		t.Fatal(err)
	}
	if segs := segmentFiles(t, dir); len(segs) < 2 {
		t.Fatalf("%d segment files after %d appends with limit 4, want rotation", len(segs), n+1)
	}
	check := func(b *Archive, stage string) {
		t.Helper()
		entries, err := b.List()
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if len(entries) != n {
			t.Fatalf("%s: %d entries, want %d", stage, len(entries), n)
		}
		for i, e := range entries {
			if e.ID != ids[i] {
				t.Fatalf("%s: entry %d = %s, want %s", stage, i, short(e.ID), short(ids[i]))
			}
		}
		if e, ok, _ := b.Baseline("fp-rot"); !ok || e.ID != ids[n-1] {
			t.Fatalf("%s: baseline %+v ok=%v", stage, e, ok)
		}
	}
	check(a, "after rotation")

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(reopened, "after reopen")

	if err := reopened.Compact(); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	perShard := map[string]int{}
	for _, p := range segs {
		perShard[p[:len(p)-len("/seg-00000000")]]++
	}
	for sh, c := range perShard {
		if c != 1 {
			t.Errorf("shard %s holds %d segments after Compact, want 1", sh, c)
		}
	}
	check(reopened, "after compact")

	final, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(final, "after compact reopen")
}

// Readers are lock-free snapshot loads: listings, lookups, and pages
// must stay consistent while a writer storm is appending (exercised
// hardest under -race).
func TestConcurrentReadersDuringWrites(t *testing.T) {
	a := open(t)
	if _, _, err := a.Put(testRun("fp-seed", "seed", 1)); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				entries, err := a.List()
				if err != nil || len(entries) == 0 {
					t.Errorf("List during writes: %d entries, %v", len(entries), err)
					return
				}
				last := 0
				for _, e := range entries {
					if e.Seq <= last {
						t.Errorf("snapshot out of order: seq %d after %d", e.Seq, last)
						return
					}
					last = e.Seq
				}
				if _, _, err := a.ListPage(entries[0].Seq, 5); err != nil {
					t.Errorf("ListPage during writes: %v", err)
					return
				}
				if _, ok, _ := a.Latest("fp-seed"); !ok {
					t.Error("seed entry vanished mid-write")
					return
				}
			}
		}()
	}
	var werr error
	var wmu sync.Mutex
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 25; i++ {
				if _, _, err := a.Put(testRun(fmt.Sprintf("fp-w%d", w), "s", uint64(1000*w+i))); err != nil {
					wmu.Lock()
					werr = err
					wmu.Unlock()
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(done)
	wg.Wait()
	if werr != nil {
		t.Fatal(werr)
	}
	entries, _ := a.List()
	if len(entries) != 1+4*25 {
		t.Errorf("%d entries after storm, want %d", len(entries), 1+4*25)
	}
}
