// Package store is the persistent profile archive: a content-addressed
// on-disk library of recorded runs (core.Run envelopes). OSprof's
// method is comparative — profiles only pay off when a run can be held
// against another OS version, kernel configuration, or a blessed
// baseline (paper §3.2, §5) — so runs must outlive the process that
// collected them. The archive makes a run a durable, addressable
// artifact:
//
//   - objects/<id[:2]>/<id[2:]> holds the serialized run, named by the
//     sha256 of its bytes. Recording the same deterministic world twice
//     produces byte-identical envelopes and therefore the same object:
//     reruns deduplicate for free, and any bit rot is detectable.
//   - index is a small line-oriented file (same idiom as the osprof-set
//     exchange format) listing every recorded run in sequence order
//     with its fingerprint and set name, plus one baseline pointer per
//     fingerprint. It is rewritten atomically (temp file + rename), as
//     are the objects, so a crashed or concurrent writer never leaves a
//     torn archive.
//
// Lookups answer the questions differential analysis asks: the latest
// run of a fingerprint or scenario name, the baseline it should be
// judged against, and the full listing. GC trims history per
// fingerprint while pinning baselines.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"osprof/internal/core"
)

// The index header is versioned: v2 mirrors each run's label into its
// entry (an optional trailing quoted field). v1 indexes are still
// read; any rewrite saves them as v2. The version lets ListLabeled
// callers distinguish "no labeled runs" (v2, trustworthy) from "labels
// not mirrored" (v1, inconclusive without loading the envelopes).
const (
	indexHeader   = "osprof-index v2"
	indexHeaderV1 = "osprof-index v1"
)

// Archive is an opened on-disk run archive. It is safe for concurrent
// use by multiple goroutines (the parallel runner archives jobs from
// its workers); cross-process writers are serialized only by the
// atomicity of rename, so concurrent processes may lose index entries
// to each other but can never corrupt the archive.
type Archive struct {
	dir string
	mu  sync.Mutex

	// warning notes the most recent index-recovery action (empty when
	// the last load was clean); see Warning.
	warning string
}

// Entry describes one recorded run in the index.
type Entry struct {
	// Seq is the record sequence number (monotonic per archive).
	Seq int

	// ID is the content address: sha256 hex of the serialized run.
	ID string

	// Fingerprint keys the producing configuration
	// (scenario.Spec.Fingerprint); may be empty for ad-hoc runs.
	Fingerprint string

	// Name is the run's profile-set name (the scenario name).
	Name string

	// Label is the run's LabelMetaKey metadata (empty for unlabeled
	// runs). Indexed so corpus construction can find the labeled
	// reference runs without loading every archived object.
	Label string
}

// LabelMetaKey is the run-envelope metadata key that marks a run as a
// labeled reference-corpus member; Put mirrors it into the index.
const LabelMetaKey = "label"

// index is the parsed index file.
type index struct {
	entries   []Entry
	baselines map[string]string // fingerprint -> run ID

	// labelAware is false for a v1 index, whose entries predate label
	// mirroring (their Label fields read empty regardless of envelope
	// metadata).
	labelAware bool
}

// Open opens (creating if needed) the archive rooted at dir.
func Open(dir string) (*Archive, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Archive{dir: dir}, nil
}

// Dir returns the archive's root directory.
func (a *Archive) Dir() string { return a.dir }

func (a *Archive) indexPath() string { return filepath.Join(a.dir, "index") }

func (a *Archive) objectPath(id string) string {
	return filepath.Join(a.dir, "objects", id[:2], id[2:])
}

// Put archives the run and returns its content address. created is
// false when an identical run (same bytes, hence same ID) was already
// recorded for this fingerprint — the deduplicated rerun case.
func (a *Archive) Put(run *core.Run) (id string, created bool, err error) {
	var buf bytes.Buffer
	if err := core.WriteRun(&buf, run); err != nil {
		return "", false, fmt.Errorf("store: serialize: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	id = hex.EncodeToString(sum[:])

	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.writeObject(id, buf.Bytes()); err != nil {
		return "", false, err
	}
	idx, err := a.load()
	if err != nil {
		return "", false, err
	}
	// The latest identical run of this fingerprint collapses: a rerun
	// of the same deterministic world is the same artifact.
	if latest, ok := latestOf(idx.entries, func(e Entry) bool { return e.Fingerprint == run.Fingerprint }); ok && latest.ID == id {
		return id, false, nil
	}
	seq := 1
	if n := len(idx.entries); n > 0 {
		seq = idx.entries[n-1].Seq + 1
	}
	idx.entries = append(idx.entries, Entry{
		Seq: seq, ID: id, Fingerprint: run.Fingerprint, Name: run.Name(),
		Label: run.Meta[LabelMetaKey],
	})
	return id, true, a.save(idx)
}

// writeObject atomically writes the object file unless it already
// exists (content addressing makes overwrites no-ops by definition).
func (a *Archive) writeObject(id string, data []byte) error {
	path := a.objectPath(id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return atomicWrite(path, data)
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Get loads a run by content address; ref may be a unique ID prefix.
func (a *Archive) Get(ref string) (*core.Run, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	id, err := a.resolveLocked(ref)
	if err != nil {
		return nil, err
	}
	return a.getLocked(id)
}

func (a *Archive) getLocked(id string) (*core.Run, error) {
	f, err := os.Open(a.objectPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", short(id), err)
	}
	defer f.Close()
	run, err := core.ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", short(id), err)
	}
	return run, nil
}

// Resolve expands a (possibly abbreviated) run ID to the full content
// address recorded in the index.
func (a *Archive) Resolve(ref string) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.resolveLocked(ref)
}

// ResolveRef expands any run reference to the full content address:
// "latest:<name>" (the most recent run of a set name),
// "baseline:<name>" (the blessed baseline of a set name), or a
// (possibly abbreviated) run ID. The one resolver shared by the CLI
// and the HTTP service, so reference forms cannot diverge between
// them.
func (a *Archive) ResolveRef(ref string) (string, error) {
	switch {
	case strings.HasPrefix(ref, "latest:"):
		name := strings.TrimPrefix(ref, "latest:")
		e, ok, err := a.LatestByName(name)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("store: no recorded run named %q", name)
		}
		return e.ID, nil
	case strings.HasPrefix(ref, "baseline:"):
		name := strings.TrimPrefix(ref, "baseline:")
		e, ok, err := a.BaselineByName(name)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("store: no baseline named %q", name)
		}
		return e.ID, nil
	default:
		return a.Resolve(ref)
	}
}

func (a *Archive) resolveLocked(ref string) (string, error) {
	if len(ref) == 2*sha256.Size {
		return ref, nil
	}
	idx, err := a.load()
	if err != nil {
		return "", err
	}
	var match string
	for _, e := range idx.entries {
		if strings.HasPrefix(e.ID, ref) {
			if match != "" && match != e.ID {
				return "", fmt.Errorf("store: ambiguous run prefix %q", ref)
			}
			match = e.ID
		}
	}
	if match == "" {
		return "", fmt.Errorf("store: no run matches %q", ref)
	}
	return match, nil
}

// List returns every index entry in record order.
func (a *Archive) List() ([]Entry, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return nil, err
	}
	return idx.entries, nil
}

// ListLabeled returns the labeled index entries plus whether the index
// mirrors labels at all (a v2 index). A false second value means the
// index predates label mirroring: an empty result is then inconclusive
// and the caller must inspect the archived envelopes themselves.
func (a *Archive) ListLabeled() ([]Entry, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return nil, false, err
	}
	var out []Entry
	for _, e := range idx.entries {
		if e.Label != "" {
			out = append(out, e)
		}
	}
	return out, idx.labelAware, nil
}

// Latest returns the most recent entry recorded for fingerprint.
func (a *Archive) Latest(fingerprint string) (Entry, bool, error) {
	return a.latest(func(e Entry) bool { return e.Fingerprint == fingerprint })
}

// LatestByName returns the most recent entry whose set name matches
// (the scenario name, across fingerprints — seeds and config tweaks
// change the fingerprint but keep the name).
func (a *Archive) LatestByName(name string) (Entry, bool, error) {
	return a.latest(func(e Entry) bool { return e.Name == name })
}

func (a *Archive) latest(match func(Entry) bool) (Entry, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return Entry{}, false, err
	}
	e, ok := latestOf(idx.entries, match)
	return e, ok, nil
}

func latestOf(entries []Entry, match func(Entry) bool) (Entry, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		if match(entries[i]) {
			return entries[i], true
		}
	}
	return Entry{}, false
}

// SetBaseline marks the run (ID or unique prefix) as the baseline for
// fingerprint: the reference `osprof diff` judges later runs against.
func (a *Archive) SetBaseline(fingerprint, ref string) error {
	if fingerprint == "" {
		return fmt.Errorf("store: baseline needs a fingerprint")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	id, err := a.resolveLocked(ref)
	if err != nil {
		return err
	}
	idx, err := a.load()
	if err != nil {
		return err
	}
	if _, ok := latestOf(idx.entries, func(e Entry) bool { return e.ID == id }); !ok {
		return fmt.Errorf("store: baseline %s not in the index", short(id))
	}
	idx.baselines[fingerprint] = id
	return a.save(idx)
}

// Baseline returns the baseline entry for fingerprint.
func (a *Archive) Baseline(fingerprint string) (Entry, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return Entry{}, false, err
	}
	id, ok := idx.baselines[fingerprint]
	if !ok {
		return Entry{}, false, nil
	}
	e, ok := latestOf(idx.entries, func(e Entry) bool { return e.ID == id })
	return e, ok, nil
}

// BaselineByName returns the most recently blessed baseline among runs
// whose set name matches, regardless of fingerprint: a scenario
// re-recorded under a new seed or config must not make its previously
// blessed baseline unreachable by name.
func (a *Archive) BaselineByName(name string) (Entry, bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return Entry{}, false, err
	}
	blessed := make(map[string]bool, len(idx.baselines))
	for _, id := range idx.baselines {
		blessed[id] = true
	}
	e, ok := latestOf(idx.entries, func(e Entry) bool {
		return e.Name == name && blessed[e.ID] && idx.baselines[e.Fingerprint] == e.ID
	})
	return e, ok, nil
}

// Baselines returns the fingerprint -> run ID baseline map.
func (a *Archive) Baselines() (map[string]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(idx.baselines))
	for k, v := range idx.baselines {
		out[k] = v
	}
	return out, nil
}

// GC keeps the newest keep entries per fingerprint (plus every
// baseline), drops the rest from the index, and deletes objects no
// remaining entry references. It returns the removed run IDs.
func (a *Archive) GC(keep int) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	idx, err := a.load()
	if err != nil {
		return nil, err
	}
	pinned := make(map[string]bool, len(idx.baselines))
	for _, id := range idx.baselines {
		pinned[id] = true
	}
	seen := make(map[string]int) // fingerprint -> kept count
	var kept []Entry
	for i := len(idx.entries) - 1; i >= 0; i-- {
		e := idx.entries[i]
		if seen[e.Fingerprint] < keep || pinned[e.ID] {
			seen[e.Fingerprint]++
			kept = append(kept, e)
		}
	}
	// kept was gathered newest-first; restore record order.
	sort.Slice(kept, func(i, j int) bool { return kept[i].Seq < kept[j].Seq })

	live := make(map[string]bool, len(kept))
	for _, e := range kept {
		live[e.ID] = true
	}
	var removed []string
	for _, e := range idx.entries {
		if !live[e.ID] {
			live[e.ID] = true // dedup: the same object may back several entries
			removed = append(removed, e.ID)
			if err := os.Remove(a.objectPath(e.ID)); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("store: gc: %w", err)
			}
		}
	}
	idx.entries = kept
	return removed, a.save(idx)
}

// short abbreviates a run ID for messages.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Warning returns the note recorded by the most recent index load when
// it had to recover from damage (empty after a clean load): a
// truncated trailing line — the torn tail a crashed or interrupted
// writer leaves — is dropped rather than bricking the archive. The
// next save rewrites a clean index, so the warning clears itself once
// anything is recorded.
func (a *Archive) Warning() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.warning
}

// load parses the index file; a missing file is an empty archive. A
// malformed FINAL line is skipped (recorded via Warning): only the
// last line can be a torn partial write, since every earlier line was
// once the validated tail of a complete atomic rewrite. Malformed
// lines anywhere else mean real corruption and still fail loudly.
func (a *Archive) load() (*index, error) {
	a.warning = ""
	idx := &index{baselines: make(map[string]string), labelAware: true}
	data, err := os.ReadFile(a.indexPath())
	if os.IsNotExist(err) {
		return idx, nil // empty archive: trivially label-aware
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("store: bad index header")
	}
	switch strings.TrimSpace(lines[0]) {
	case indexHeader:
	case indexHeaderV1:
		idx.labelAware = false
	default:
		return nil, fmt.Errorf("store: bad index header")
	}
	body := lines[1:]
	last := len(body) - 1
	for last >= 0 && strings.TrimSpace(body[last]) == "" {
		last--
	}
	for n, line := range body {
		if err := parseIndexLine(idx, line); err != nil {
			if n == last {
				a.warning = fmt.Sprintf("store: index: dropped truncated trailing line %d: %v", n+2, err)
				break
			}
			return nil, fmt.Errorf("store: index line %d: %w", n+2, err)
		}
	}
	return idx, nil
}

// parseIndexLine parses one index body line into idx (blank lines are
// no-ops).
func parseIndexLine(idx *index, line string) error {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 0:
		return nil
	case fields[0] == "run":
		// The trailing name is %q-quoted and may contain spaces,
		// optionally followed by a %q-quoted label: split off the
		// four fixed fields, then peel quoted strings off the rest.
		// Pre-label index lines simply have no label field.
		parts := strings.SplitN(line, " ", 5)
		if len(parts) != 5 {
			return fmt.Errorf("malformed run entry %q", line)
		}
		seq, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		nameQ, err := strconv.QuotedPrefix(parts[4])
		if err != nil {
			return fmt.Errorf("name: %w", err)
		}
		name, err := strconv.Unquote(nameQ)
		if err != nil {
			return fmt.Errorf("name: %w", err)
		}
		label := ""
		if tail := strings.TrimSpace(parts[4][len(nameQ):]); tail != "" {
			label, err = strconv.Unquote(tail)
			if err != nil {
				return fmt.Errorf("label: %w", err)
			}
		}
		fp := parts[3]
		if fp == "-" {
			fp = ""
		}
		idx.entries = append(idx.entries, Entry{
			Seq: seq, ID: parts[2], Fingerprint: fp, Name: name, Label: label,
		})
		return nil
	case fields[0] == "baseline" && len(fields) == 3:
		idx.baselines[fields[1]] = fields[2]
		return nil
	default:
		return fmt.Errorf("unrecognized %q", line)
	}
}

// save atomically rewrites the index file.
func (a *Archive) save(idx *index) error {
	var b strings.Builder
	b.WriteString(indexHeader + "\n")
	for _, e := range idx.entries {
		if e.Label != "" {
			fmt.Fprintf(&b, "run %d %s %s %q %q\n", e.Seq, e.ID, orDash(e.Fingerprint), e.Name, e.Label)
		} else {
			fmt.Fprintf(&b, "run %d %s %s %q\n", e.Seq, e.ID, orDash(e.Fingerprint), e.Name)
		}
	}
	fps := make([]string, 0, len(idx.baselines))
	for fp := range idx.baselines {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		fmt.Fprintf(&b, "baseline %s %s\n", fp, idx.baselines[fp])
	}
	return atomicWrite(a.indexPath(), []byte(b.String()))
}

// orDash substitutes "-" for an empty fingerprint so the index stays
// whitespace-splittable.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
