// Package store is the persistent profile archive: a content-addressed
// on-disk library of recorded runs (core.Run envelopes). OSprof's
// method is comparative — profiles only pay off when a run can be held
// against another OS version, kernel configuration, or a blessed
// baseline (paper §3.2, §5) — so runs must outlive the process that
// collected them. The archive makes a run a durable, addressable
// artifact:
//
//   - objects/<id[:2]>/<id[2:]> holds the serialized run, named by the
//     sha256 of its bytes. Recording the same deterministic world twice
//     produces byte-identical envelopes and therefore the same object:
//     reruns deduplicate for free, and any bit rot is detectable.
//   - index.d/shard-<k>/seg-<n> is the segmented run index: every
//     recorded run is ONE appended line in its fingerprint's shard
//     (plus one baseline pointer line per blessing). Appends are O(1)
//     — the archive no longer rewrites the whole index per Put — and
//     full segments are sealed and later folded together by
//     compaction (GC). See segment.go for the on-disk details,
//     including how a torn trailing line self-heals.
//
// Concurrency: the entire index lives in memory as an immutable
// snapshot behind an atomic pointer. Readers (List, Latest, Resolve,
// ...) never take a lock and never touch disk — they load the current
// snapshot — so lookups stay wait-free under a heavy ingest load.
// Writers serialize per shard (one appender per shard; writers to
// different shards proceed in parallel) and publish a new snapshot
// after the disk append lands.
//
// Lookups answer the questions differential analysis asks: the latest
// run of a fingerprint or scenario name, the baseline it should be
// judged against, and the full or paged listing. GC trims history per
// fingerprint while pinning baselines, then compacts every shard.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"osprof/internal/core"
)

// numShards fixes how many index shards an archive writes. Fingerprints
// route to shards by hash, so the constant must not change for existing
// archives (reads would still work — every shard directory present is
// loaded — but same-fingerprint dedup relies on stable routing).
const numShards = 4

// Archive is an opened on-disk run archive. It is safe for concurrent
// use by multiple goroutines (the ingest service archives batches while
// listings stream). An Archive serves reads from its own in-memory
// index, loaded at Open: writes by another process (or another handle
// on the same directory) are not visible until the archive is
// reopened, and concurrent cross-process writers may lose index
// entries to each other — though objects, being content addressed, can
// never corrupt.
type Archive struct {
	dir      string
	shards   [numShards]*shard
	segLimit int // lines per segment before rotation (tests shrink it)

	// pubMu guards sequence-number allocation and snapshot
	// publication; it is never held across disk IO.
	pubMu   sync.Mutex
	nextSeq int
	snap    atomic.Pointer[snapshot]

	// migMu guards the one-shot migration of a legacy single-file
	// index into the segmented layout (performed by the first write).
	migMu  sync.Mutex
	legacy bool

	warnMu  sync.Mutex
	warning string
}

// snapshot is the immutable in-memory index image readers operate on.
// entries is ascending by Seq; a published snapshot is never mutated
// (appends build a new one, sharing the backing array where safe).
type snapshot struct {
	entries    []Entry
	baselines  map[string]string // fingerprint -> run ID
	labelAware bool
}

// Entry describes one recorded run in the index.
type Entry struct {
	// Seq is the record sequence number (monotonic per archive).
	Seq int

	// ID is the content address: sha256 hex of the serialized run.
	ID string

	// Fingerprint keys the producing configuration
	// (scenario.Spec.Fingerprint); may be empty for ad-hoc runs.
	Fingerprint string

	// Name is the run's profile-set name (the scenario name).
	Name string

	// Label is the run's LabelMetaKey metadata (empty for unlabeled
	// runs). Indexed so corpus construction can find the labeled
	// reference runs without loading every archived object.
	Label string
}

// LabelMetaKey is the run-envelope metadata key that marks a run as a
// labeled reference-corpus member; Put mirrors it into the index.
const LabelMetaKey = "label"

// PutResult reports one run of a PutBatch: its content address and
// whether a new index entry was created (false for the deduplicated
// rerun case).
type PutResult struct {
	ID      string
	Created bool
}

// Open opens (creating if needed) the archive rooted at dir, loading
// the full index into memory. A torn trailing line in a shard's active
// segment — the mark of a crashed appender — is healed here (truncated
// away) and reported via Warning; real corruption fails Open loudly.
func Open(dir string) (*Archive, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	a := &Archive{dir: dir, segLimit: maxSegmentLines}
	for i := range a.shards {
		a.shards[i] = &shard{id: i, dir: filepath.Join(dir, "index.d", fmt.Sprintf("shard-%d", i))}
	}
	if err := a.loadState(); err != nil {
		return nil, err
	}
	return a, nil
}

// loadState reads the on-disk index (segmented layout, or the legacy
// single file pending migration) into the first snapshot.
func (a *Archive) loadState() error {
	snap := &snapshot{baselines: make(map[string]string), labelAware: true}
	var warnings []string

	if _, err := os.Stat(filepath.Join(a.dir, "index.d")); err == nil {
		var all []Entry
		for _, sh := range a.shards {
			sl, err := loadShard(sh.dir)
			if err != nil {
				return err
			}
			sh.activeSeg, sh.activeLines = sl.activeSeg, sl.activeLines
			if sl.healLen >= 0 {
				// Heal the torn tail now: truncating the partial line
				// keeps the invariant that every stored line is whole,
				// so the next Open comes back clean.
				if err := os.Truncate(sh.segPath(sh.activeSeg), sl.healLen); err != nil {
					return fmt.Errorf("store: heal shard-%d: %w", sh.id, err)
				}
				warnings = append(warnings, sl.warning)
			} else if sl.needsNewline {
				// The final line parsed but its newline is missing (a
				// tear on a field boundary): terminate it so an append
				// cannot glue onto it.
				f, err := os.OpenFile(sh.segPath(sh.activeSeg), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return fmt.Errorf("store: heal shard-%d: %w", sh.id, err)
				}
				_, werr := f.WriteString("\n")
				if cerr := f.Close(); werr == nil {
					werr = cerr
				}
				if werr != nil {
					return fmt.Errorf("store: heal shard-%d: %w", sh.id, werr)
				}
			}
			all = append(all, sl.entries...)
			for fp, id := range sl.baselines {
				snap.baselines[fp] = id
			}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
		// An interrupted compaction can leave a shard's old segments
		// beside their replacement: identical entries, deduplicated by
		// sequence number.
		for _, e := range all {
			if n := len(snap.entries); n > 0 && snap.entries[n-1].Seq == e.Seq {
				continue
			}
			snap.entries = append(snap.entries, e)
		}
	} else if _, err := os.Stat(a.indexPath()); err == nil {
		idx, warn, err := loadLegacy(a.indexPath())
		if err != nil {
			return err
		}
		a.legacy = true
		snap.entries, snap.baselines, snap.labelAware = idx.entries, idx.baselines, idx.labelAware
		if warn != "" {
			warnings = append(warnings, warn)
		}
	}

	a.nextSeq = 1
	if n := len(snap.entries); n > 0 {
		a.nextSeq = snap.entries[n-1].Seq + 1
	}
	a.snap.Store(snap)
	a.warning = strings.Join(warnings, "; ")
	return nil
}

// ensureMigrated folds a legacy single-file index into the segmented
// layout. Every writer calls it first; reads never trigger migration,
// so read-only workflows keep working on legacy archives untouched.
// Like the legacy save path it replaces, migration upgrades the index
// to the label-aware format.
func (a *Archive) ensureMigrated() error {
	a.migMu.Lock()
	defer a.migMu.Unlock()
	if !a.legacy {
		return nil
	}
	snap := a.snap.Load()
	var perEntries [numShards][]Entry
	var perBase [numShards]map[string]string
	for i := range perBase {
		perBase[i] = make(map[string]string)
	}
	for _, e := range snap.entries {
		k := shardFor(e.Fingerprint, numShards)
		perEntries[k] = append(perEntries[k], e)
	}
	for fp, id := range snap.baselines {
		perBase[shardFor(fp, numShards)][fp] = id
	}
	for i, sh := range a.shards {
		sh.mu.Lock()
		err := sh.compact(perEntries[i], perBase[i])
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if err := os.Remove(a.indexPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	a.pubMu.Lock()
	a.snap.Store(&snapshot{entries: snap.entries, baselines: snap.baselines, labelAware: true})
	a.pubMu.Unlock()
	a.legacy = false
	a.warnMu.Lock()
	a.warning = ""
	a.warnMu.Unlock()
	return nil
}

// Dir returns the archive's root directory.
func (a *Archive) Dir() string { return a.dir }

// indexPath is the legacy single-file index location (read for
// migration only).
func (a *Archive) indexPath() string { return filepath.Join(a.dir, "index") }

func (a *Archive) objectPath(id string) string {
	return filepath.Join(a.dir, "objects", id[:2], id[2:])
}

// Put archives the run and returns its content address. created is
// false when an identical run (same bytes, hence same ID) was already
// recorded as the latest of this fingerprint — the deduplicated rerun
// case.
func (a *Archive) Put(run *core.Run) (id string, created bool, err error) {
	res, err := a.PutBatch([]*core.Run{run})
	if err != nil {
		return "", false, err
	}
	return res[0].ID, res[0].Created, nil
}

// PutBatch archives many runs with one index append per shard and one
// snapshot publication: the batched ingest path amortizes the per-Put
// disk and publication cost across the whole flush. Results align with
// the input; dedup considers earlier runs of the same batch.
func (a *Archive) PutBatch(runs []*core.Run) ([]PutResult, error) {
	if len(runs) == 0 {
		return nil, nil
	}
	if err := a.ensureMigrated(); err != nil {
		return nil, err
	}

	// Serialize and write objects before taking any lock: content
	// addressing makes object writes conflict-free.
	results := make([]PutResult, len(runs))
	for i, run := range runs {
		var buf bytes.Buffer
		if err := core.WriteRun(&buf, run); err != nil {
			return nil, fmt.Errorf("store: serialize: %w", err)
		}
		sum := sha256.Sum256(buf.Bytes())
		results[i].ID = hex.EncodeToString(sum[:])
		if err := a.writeObject(results[i].ID, buf.Bytes()); err != nil {
			return nil, err
		}
	}

	// Lock the involved shards in ascending order (deadlock-free with
	// concurrent batches and with GC, which locks all of them).
	var involved [numShards]bool
	for _, run := range runs {
		involved[shardFor(run.Fingerprint, numShards)] = true
	}
	for k, in := range involved {
		if in {
			a.shards[k].mu.Lock()
			defer a.shards[k].mu.Unlock()
		}
	}

	// Allocate sequence numbers and decide dedup against the latest
	// published snapshot: same-fingerprint writers are excluded by the
	// shard lock, so the snapshot view of "latest of fingerprint" is
	// stable here.
	snap := a.snap.Load()
	lastID := make(map[string]string) // fingerprint -> latest ID, batch-local
	var newEntries []Entry
	var lines [numShards][]string
	a.pubMu.Lock()
	for i, run := range runs {
		fp := run.Fingerprint
		latest, ok := lastID[fp]
		if !ok {
			if e, found := latestOf(snap.entries, func(e Entry) bool { return e.Fingerprint == fp }); found {
				latest = e.ID
			}
		}
		if latest == results[i].ID {
			lastID[fp] = latest
			continue // rerun of the same deterministic world: same artifact
		}
		e := Entry{
			Seq: a.nextSeq, ID: results[i].ID, Fingerprint: fp, Name: run.Name(),
			Label: run.Meta[LabelMetaKey],
		}
		a.nextSeq++
		results[i].Created = true
		lastID[fp] = e.ID
		newEntries = append(newEntries, e)
		var b strings.Builder
		formatEntry(&b, e)
		lines[shardFor(fp, numShards)] = append(lines[shardFor(fp, numShards)], b.String())
	}
	a.pubMu.Unlock()

	// One disk append per involved shard, then one publication.
	for k, ls := range lines {
		if len(ls) == 0 {
			continue
		}
		if err := a.shards[k].appendLines(ls, a.segLimit); err != nil {
			return nil, err
		}
	}
	a.publishEntries(newEntries)
	return results, nil
}

// publishEntries installs a new snapshot containing the appended
// entries. The common in-order case extends the current backing array
// in place — safe because readers are bounded by their own slice
// length and pubMu ensures a single extender — while out-of-order
// publication (concurrent writers on different shards racing their
// sequence numbers) falls back to a copy-and-insert.
func (a *Archive) publishEntries(es []Entry) {
	if len(es) == 0 {
		return
	}
	a.pubMu.Lock()
	defer a.pubMu.Unlock()
	cur := a.snap.Load()
	entries := cur.entries
	for _, e := range es {
		if n := len(entries); n == 0 || entries[n-1].Seq < e.Seq {
			entries = append(entries, e)
			continue
		}
		i := sort.Search(len(entries), func(i int) bool { return entries[i].Seq > e.Seq })
		merged := make([]Entry, 0, len(entries)+1)
		merged = append(merged, entries[:i]...)
		merged = append(merged, e)
		merged = append(merged, entries[i:]...)
		entries = merged
	}
	a.snap.Store(&snapshot{entries: entries, baselines: cur.baselines, labelAware: cur.labelAware})
}

// writeObject atomically writes the object file unless it already
// exists (content addressing makes overwrites no-ops by definition).
func (a *Archive) writeObject(id string, data []byte) error {
	path := a.objectPath(id)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return atomicWrite(path, data)
}

// Get loads a run by content address; ref may be a unique ID prefix.
func (a *Archive) Get(ref string) (*core.Run, error) {
	id, err := a.Resolve(ref)
	if err != nil {
		return nil, err
	}
	return a.getByID(id)
}

func (a *Archive) getByID(id string) (*core.Run, error) {
	f, err := os.Open(a.objectPath(id))
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", short(id), err)
	}
	defer f.Close()
	run, err := core.ReadRun(f)
	if err != nil {
		return nil, fmt.Errorf("store: run %s: %w", short(id), err)
	}
	return run, nil
}

// Resolve expands a (possibly abbreviated) run ID to the full content
// address recorded in the index.
func (a *Archive) Resolve(ref string) (string, error) {
	if len(ref) == 2*sha256.Size {
		return ref, nil
	}
	snap := a.snap.Load()
	var match string
	for _, e := range snap.entries {
		if strings.HasPrefix(e.ID, ref) {
			if match != "" && match != e.ID {
				return "", fmt.Errorf("store: ambiguous run prefix %q", ref)
			}
			match = e.ID
		}
	}
	if match == "" {
		return "", fmt.Errorf("store: no run matches %q", ref)
	}
	return match, nil
}

// ResolveRef expands any run reference to the full content address:
// "latest:<name>" (the most recent run of a set name),
// "baseline:<name>" (the blessed baseline of a set name), or a
// (possibly abbreviated) run ID. The one resolver shared by the CLI
// and the HTTP service, so reference forms cannot diverge between
// them.
func (a *Archive) ResolveRef(ref string) (string, error) {
	switch {
	case strings.HasPrefix(ref, "latest:"):
		name := strings.TrimPrefix(ref, "latest:")
		e, ok, err := a.LatestByName(name)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("store: no recorded run named %q", name)
		}
		return e.ID, nil
	case strings.HasPrefix(ref, "baseline:"):
		name := strings.TrimPrefix(ref, "baseline:")
		e, ok, err := a.BaselineByName(name)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("store: no baseline named %q", name)
		}
		return e.ID, nil
	default:
		return a.Resolve(ref)
	}
}

// List returns every index entry in record order.
func (a *Archive) List() ([]Entry, error) {
	snap := a.snap.Load()
	out := make([]Entry, len(snap.entries))
	copy(out, snap.entries)
	return out, nil
}

// ListPage returns up to limit entries with sequence numbers strictly
// greater than after, in record order, plus whether more remain. The
// cursor is the last returned entry's Seq: paging a listing is O(page),
// not O(archive), and a concurrent append never shifts earlier pages.
// limit <= 0 means no limit.
func (a *Archive) ListPage(after, limit int) ([]Entry, bool, error) {
	snap := a.snap.Load()
	es := snap.entries
	start := sort.Search(len(es), func(i int) bool { return es[i].Seq > after })
	rest := es[start:]
	if limit <= 0 || limit >= len(rest) {
		out := make([]Entry, len(rest))
		copy(out, rest)
		return out, false, nil
	}
	out := make([]Entry, limit)
	copy(out, rest[:limit])
	return out, true, nil
}

// ListPageLabel is ListPage restricted to entries carrying the given
// label (every entry when label is empty). The Seq cursor pages the
// filtered sequence exactly as ListPage pages the full one: after is
// the last returned entry's Seq, a concurrent append never shifts
// earlier pages, and more reports whether further matching entries
// remain. labelAware is false when the index predates label mirroring
// (a legacy v1 index): an empty filtered page is then inconclusive,
// the same contract as ListLabeled.
func (a *Archive) ListPageLabel(label string, after, limit int) (entries []Entry, more, labelAware bool, err error) {
	snap := a.snap.Load()
	if label == "" {
		es, m, err := a.ListPage(after, limit)
		return es, m, snap.labelAware, err
	}
	es := snap.entries
	start := sort.Search(len(es), func(i int) bool { return es[i].Seq > after })
	out := []Entry{}
	for _, e := range es[start:] {
		if e.Label != label {
			continue
		}
		if limit > 0 && len(out) == limit {
			return out, true, snap.labelAware, nil
		}
		out = append(out, e)
	}
	return out, false, snap.labelAware, nil
}

// ListLabeled returns the labeled index entries plus whether the index
// mirrors labels at all. A false second value means the index predates
// label mirroring (a legacy v1 index not yet rewritten): an empty
// result is then inconclusive and the caller must inspect the archived
// envelopes themselves.
func (a *Archive) ListLabeled() ([]Entry, bool, error) {
	snap := a.snap.Load()
	var out []Entry
	for _, e := range snap.entries {
		if e.Label != "" {
			out = append(out, e)
		}
	}
	return out, snap.labelAware, nil
}

// Latest returns the most recent entry recorded for fingerprint.
func (a *Archive) Latest(fingerprint string) (Entry, bool, error) {
	snap := a.snap.Load()
	e, ok := latestOf(snap.entries, func(e Entry) bool { return e.Fingerprint == fingerprint })
	return e, ok, nil
}

// LatestByName returns the most recent entry whose set name matches
// (the scenario name, across fingerprints — seeds and config tweaks
// change the fingerprint but keep the name).
func (a *Archive) LatestByName(name string) (Entry, bool, error) {
	snap := a.snap.Load()
	e, ok := latestOf(snap.entries, func(e Entry) bool { return e.Name == name })
	return e, ok, nil
}

func latestOf(entries []Entry, match func(Entry) bool) (Entry, bool) {
	for i := len(entries) - 1; i >= 0; i-- {
		if match(entries[i]) {
			return entries[i], true
		}
	}
	return Entry{}, false
}

// SetBaseline marks the run (ID or unique prefix) as the baseline for
// fingerprint: the reference `osprof diff` judges later runs against.
func (a *Archive) SetBaseline(fingerprint, ref string) error {
	if fingerprint == "" {
		return fmt.Errorf("store: baseline needs a fingerprint")
	}
	if err := a.ensureMigrated(); err != nil {
		return err
	}
	id, err := a.Resolve(ref)
	if err != nil {
		return err
	}
	sh := a.shards[shardFor(fingerprint, numShards)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	snap := a.snap.Load()
	if _, ok := latestOf(snap.entries, func(e Entry) bool { return e.ID == id }); !ok {
		return fmt.Errorf("store: baseline %s not in the index", short(id))
	}
	if err := sh.appendLines([]string{fmt.Sprintf("baseline %s %s\n", fingerprint, id)}, a.segLimit); err != nil {
		return err
	}
	a.pubMu.Lock()
	cur := a.snap.Load()
	baselines := make(map[string]string, len(cur.baselines)+1)
	for k, v := range cur.baselines {
		baselines[k] = v
	}
	baselines[fingerprint] = id
	a.snap.Store(&snapshot{entries: cur.entries, baselines: baselines, labelAware: cur.labelAware})
	a.pubMu.Unlock()
	return nil
}

// Baseline returns the baseline entry for fingerprint.
func (a *Archive) Baseline(fingerprint string) (Entry, bool, error) {
	snap := a.snap.Load()
	id, ok := snap.baselines[fingerprint]
	if !ok {
		return Entry{}, false, nil
	}
	e, ok := latestOf(snap.entries, func(e Entry) bool { return e.ID == id })
	return e, ok, nil
}

// BaselineByName returns the most recently blessed baseline among runs
// whose set name matches, regardless of fingerprint: a scenario
// re-recorded under a new seed or config must not make its previously
// blessed baseline unreachable by name.
func (a *Archive) BaselineByName(name string) (Entry, bool, error) {
	snap := a.snap.Load()
	blessed := make(map[string]bool, len(snap.baselines))
	for _, id := range snap.baselines {
		blessed[id] = true
	}
	e, ok := latestOf(snap.entries, func(e Entry) bool {
		return e.Name == name && blessed[e.ID] && snap.baselines[e.Fingerprint] == e.ID
	})
	return e, ok, nil
}

// Baselines returns the fingerprint -> run ID baseline map.
func (a *Archive) Baselines() (map[string]string, error) {
	snap := a.snap.Load()
	out := make(map[string]string, len(snap.baselines))
	for k, v := range snap.baselines {
		out[k] = v
	}
	return out, nil
}

// GC keeps the newest keep entries per fingerprint (plus every
// baseline), drops the rest from the index, and deletes objects no
// remaining entry references. It returns the removed run IDs. Every
// shard is compacted to a single fresh segment in the process.
func (a *Archive) GC(keep int) ([]string, error) {
	if keep < 1 {
		keep = 1
	}
	if err := a.ensureMigrated(); err != nil {
		return nil, err
	}
	// All shard locks, ascending: no appender can be in flight, so the
	// published snapshot is the complete, stable index.
	for _, sh := range a.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	snap := a.snap.Load()
	pinned := make(map[string]bool, len(snap.baselines))
	for _, id := range snap.baselines {
		pinned[id] = true
	}
	seen := make(map[string]int) // fingerprint -> kept count
	var kept []Entry
	for i := len(snap.entries) - 1; i >= 0; i-- {
		e := snap.entries[i]
		if seen[e.Fingerprint] < keep || pinned[e.ID] {
			seen[e.Fingerprint]++
			kept = append(kept, e)
		}
	}
	// kept was gathered newest-first; restore record order.
	sort.Slice(kept, func(i, j int) bool { return kept[i].Seq < kept[j].Seq })

	live := make(map[string]bool, len(kept))
	for _, e := range kept {
		live[e.ID] = true
	}
	var removed []string
	for _, e := range snap.entries {
		if !live[e.ID] {
			live[e.ID] = true // dedup: the same object may back several entries
			removed = append(removed, e.ID)
			if err := os.Remove(a.objectPath(e.ID)); err != nil && !os.IsNotExist(err) {
				return nil, fmt.Errorf("store: gc: %w", err)
			}
		}
	}
	if err := a.compactLocked(kept, snap.baselines, snap.labelAware); err != nil {
		return nil, err
	}
	return removed, nil
}

// Compact rewrites every shard to a single fresh segment holding the
// current index — the maintenance pass that folds a long append
// history (and any sealed segments) back into minimal files.
func (a *Archive) Compact() error {
	if err := a.ensureMigrated(); err != nil {
		return err
	}
	for _, sh := range a.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	snap := a.snap.Load()
	return a.compactLocked(snap.entries, snap.baselines, snap.labelAware)
}

// compactLocked rewrites all shards to hold exactly entries/baselines
// and publishes the matching snapshot. Caller holds every shard lock.
func (a *Archive) compactLocked(entries []Entry, baselines map[string]string, labelAware bool) error {
	var perEntries [numShards][]Entry
	var perBase [numShards]map[string]string
	for i := range perBase {
		perBase[i] = make(map[string]string)
	}
	for _, e := range entries {
		k := shardFor(e.Fingerprint, numShards)
		perEntries[k] = append(perEntries[k], e)
	}
	for fp, id := range baselines {
		perBase[shardFor(fp, numShards)][fp] = id
	}
	for i, sh := range a.shards {
		if err := sh.compact(perEntries[i], perBase[i]); err != nil {
			return err
		}
	}
	a.pubMu.Lock()
	fresh := make([]Entry, len(entries))
	copy(fresh, entries)
	a.snap.Store(&snapshot{entries: fresh, baselines: baselines, labelAware: labelAware})
	a.pubMu.Unlock()
	return nil
}

// short abbreviates a run ID for messages.
func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Warning returns the note recorded when Open had to recover from
// damage (empty after a clean load): a truncated trailing line in a
// shard's active segment — the torn tail a crashed appender leaves —
// is dropped and truncated away rather than bricking the archive, so
// a subsequent Open comes back clean. For a legacy single-file index
// the warning persists until the first write migrates (and thereby
// rewrites) the index.
func (a *Archive) Warning() string {
	a.warnMu.Lock()
	defer a.warnMu.Unlock()
	return a.warning
}
