package store

import (
	"os"
	"strings"
	"testing"
)

// seedArchive records three runs (one labeled, one blessed) and
// returns the archive plus its index contents.
func seedArchive(t *testing.T) (*Archive, string, []byte) {
	t.Helper()
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Put(testRun("fp1", "ext2/grep", 100, 5000)); err != nil {
		t.Fatal(err)
	}
	labeled := testRun("fp2", "corpus/cell", 200, 300)
	labeled.Meta[LabelMetaKey] = "cell-label"
	if _, _, err := a.Put(labeled); err != nil {
		t.Fatal(err)
	}
	id, _, err := a.Put(testRun("fp3", "reiser/walk", 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetBaseline("fp3", id); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(a.indexPath())
	if err != nil {
		t.Fatal(err)
	}
	return a, dir, data
}

// A crashed writer can leave the index with a torn final line. The
// archive must open anyway — dropping at most that one line — at EVERY
// byte offset the tear could land on, and the next save must heal the
// damage.
func TestLoadSurvivesTruncatedTrailingLine(t *testing.T) {
	_, dir, data := seedArchive(t)
	text := strings.TrimSuffix(string(data), "\n")
	lastStart := strings.LastIndex(text, "\n") + 1
	full := len(data)

	for cut := lastStart; cut < full; cut++ {
		a, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(a.indexPath(), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		entries, err := a.List()
		if err != nil {
			t.Fatalf("cut at byte %d of %d: List: %v", cut, full, err)
		}
		// Every complete line survives; the torn line is either dropped
		// or (when the tear lands on a field boundary) still parses.
		if len(entries) != 3 {
			t.Fatalf("cut at byte %d: %d entries survived, want all 3 runs", cut, len(entries))
		}
		for i, want := range []string{"ext2/grep", "corpus/cell", "reiser/walk"} {
			if entries[i].Name != want {
				t.Fatalf("cut at byte %d: entry %d = %q, want %q", cut, i, entries[i].Name, want)
			}
		}
		if entries[1].Label != "cell-label" {
			t.Errorf("cut at byte %d: labeled entry lost its label", cut)
		}

		// A mid-line tear must be noticed (warning set). A tear exactly
		// at the line start removes the line without a trace — that
		// index is indistinguishable from one saved before the blessing,
		// so no warning is possible there.
		warned := a.Warning() != ""
		if baselines, err := a.Baselines(); err != nil {
			t.Fatalf("cut at byte %d: Baselines: %v", cut, err)
		} else if _, ok := baselines["fp3"]; !ok && !warned && cut > lastStart {
			t.Errorf("cut at byte %d: baseline silently lost without a warning", cut)
		}

		// Recording anything rewrites the index: the archive self-heals,
		// and the next load comes back clean.
		if _, _, err := a.Put(testRun("fp4", "heal/run", 700)); err != nil {
			t.Fatalf("cut at byte %d: Put after recovery: %v", cut, err)
		}
		if _, err := a.List(); err != nil {
			t.Fatalf("cut at byte %d: List after healing save: %v", cut, err)
		}
		if a.Warning() != "" {
			t.Errorf("cut at byte %d: warning survived the healing save: %q", cut, a.Warning())
		}
		healed, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := healed.List(); err != nil || healed.Warning() != "" {
			t.Fatalf("cut at byte %d: healed index: err=%v warning=%q", cut, err, healed.Warning())
		}
	}
}

// The same tolerance must NOT extend to earlier lines: every line but
// the last was once the validated tail of an atomic rewrite, so damage
// there is real corruption, not a torn write.
func TestLoadRejectsMidFileCorruption(t *testing.T) {
	_, dir, data := seedArchive(t)
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i := 1; i < len(lines)-1; i++ { // skip header; last line is tolerated
		mangled := append([]string{}, lines...)
		mangled[i] = mangled[i][:len(mangled[i])/2]
		a, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(a.indexPath(), []byte(strings.Join(mangled, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := a.List(); err == nil {
			t.Errorf("truncating line %d (%q) loaded silently", i+1, lines[i])
		}
	}
}

// An unreadable header still fails loudly: tail tolerance must not
// turn a wrong-format file into an empty archive.
func TestLoadRejectsBadHeader(t *testing.T) {
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(a.indexPath(), []byte("osprof-index v99\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := a.List(); err == nil {
		t.Error("unknown index version loaded silently")
	}
}
