package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedArchive records three runs (one labeled, one blessed) into dir
// and returns the path and contents of the segment file that ends with
// the baseline line — the shard a crashed appender would have torn.
func seedArchive(t *testing.T) (dir, segPath string, segData []byte) {
	t.Helper()
	dir = t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Put(testRun("fp1", "ext2/grep", 100, 5000)); err != nil {
		t.Fatal(err)
	}
	labeled := testRun("fp2", "corpus/cell", 200, 300)
	labeled.Meta[LabelMetaKey] = "cell-label"
	if _, _, err := a.Put(labeled); err != nil {
		t.Fatal(err)
	}
	id, _, err := a.Put(testRun("fp3", "reiser/walk", 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetBaseline("fp3", id); err != nil {
		t.Fatal(err)
	}
	for _, p := range segmentFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "baseline fp3 ") {
			return dir, p, data
		}
	}
	t.Fatal("no segment holds the baseline line")
	return "", "", nil
}

// segmentFiles lists every segment file under dir's index.d.
func segmentFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.Walk(filepath.Join(dir, "index.d"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), "seg-") {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// snapshotSegments captures every segment file's bytes so a test can
// restore the archive between corruption experiments.
func snapshotSegments(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, p := range segmentFiles(t, dir) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[p] = data
	}
	return out
}

func restoreSegments(t *testing.T, dir string, snap map[string][]byte) {
	t.Helper()
	if err := os.RemoveAll(filepath.Join(dir, "index.d")); err != nil {
		t.Fatal(err)
	}
	for p, data := range snap {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A crashed appender can leave a shard's active segment with a torn
// final line. The archive must open anyway — dropping at most that one
// line — at EVERY byte offset the tear could land on; Open truncates
// the tear away (self-heal), so the next Open comes back clean and
// appends keep working.
func TestLoadSurvivesTruncatedTrailingLine(t *testing.T) {
	dir, seg, data := seedArchive(t)
	pristine := snapshotSegments(t, dir)
	text := strings.TrimSuffix(string(data), "\n")
	lastStart := strings.LastIndex(text, "\n") + 1
	full := len(data)

	for cut := lastStart; cut < full; cut++ {
		restoreSegments(t, dir, pristine)
		if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		a, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d of %d: Open: %v", cut, full, err)
		}
		entries, err := a.List()
		if err != nil {
			t.Fatalf("cut at byte %d: List: %v", cut, err)
		}
		// Every complete line survives; the torn line is either dropped
		// or (when the tear lands on a field boundary) still parses.
		if len(entries) != 3 {
			t.Fatalf("cut at byte %d: %d entries survived, want all 3 runs", cut, len(entries))
		}
		for i, want := range []string{"ext2/grep", "corpus/cell", "reiser/walk"} {
			if entries[i].Name != want {
				t.Fatalf("cut at byte %d: entry %d = %q, want %q", cut, i, entries[i].Name, want)
			}
		}
		if entries[1].Label != "cell-label" {
			t.Errorf("cut at byte %d: labeled entry lost its label", cut)
		}

		// A mid-line tear must be noticed (warning set). A tear exactly
		// at the line start removes the line without a trace — that
		// segment is indistinguishable from one written before the
		// blessing, so no warning is possible there.
		warned := a.Warning() != ""
		if baselines, err := a.Baselines(); err != nil {
			t.Fatalf("cut at byte %d: Baselines: %v", cut, err)
		} else if _, ok := baselines["fp3"]; !ok && !warned && cut > lastStart {
			t.Errorf("cut at byte %d: baseline silently lost without a warning", cut)
		}

		// Open already truncated the tear: a fresh Open is clean.
		healed, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := healed.List(); err != nil || healed.Warning() != "" {
			t.Fatalf("cut at byte %d: healed archive: err=%v warning=%q", cut, err, healed.Warning())
		}
		// And the healed shard accepts appends again.
		if _, _, err := healed.Put(testRun("fp3", "reiser/walk", uint64(700+cut))); err != nil {
			t.Fatalf("cut at byte %d: Put after heal: %v", cut, err)
		}
		reopened, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at byte %d: post-append reopen: %v", cut, err)
		}
		if reopened.Warning() != "" {
			t.Fatalf("cut at byte %d: post-append reopen warning: %q", cut, reopened.Warning())
		}
	}
}

// The same tolerance must NOT extend to earlier lines: every line but
// the active segment's last was once followed by a validated append,
// so damage there is real corruption, not a torn write.
func TestLoadRejectsMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same fingerprint: all four lines land in one shard's segment.
	var last string
	for i := 0; i < 3; i++ {
		last, _, err = a.Put(testRun("fpX", "ext2/grep", uint64(100*(i+1))))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := a.SetBaseline("fpX", last); err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, p := range segmentFiles(t, dir) {
		data, _ := os.ReadFile(p)
		if strings.Contains(string(data), "fpX") {
			seg = p
		}
	}
	if seg == "" {
		t.Fatal("fpX shard segment not found")
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i := 1; i < len(lines)-1; i++ { // skip header; last line is tolerated
		mangled := append([]string{}, lines...)
		mangled[i] = mangled[i][:len(mangled[i])/2]
		if err := os.WriteFile(seg, []byte(strings.Join(mangled, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Errorf("truncating line %d (%q) loaded silently", i+1, lines[i])
		}
	}
}

// An unreadable segment header still fails loudly: tail tolerance must
// not turn a wrong-format file into an empty shard.
func TestLoadRejectsBadSegmentHeader(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Put(testRun("fp", "s", 100)); err != nil {
		t.Fatal(err)
	}
	segs := segmentFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	mangled := strings.Replace(string(data), segmentHeader, "osprof-index-seg v99", 1)
	if err := os.WriteFile(segs[0], []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("unknown segment version loaded silently")
	}
}

// A legacy single-file index with a torn trailing line opens with a
// warning (entries intact), and the first write migrates it to the
// segmented layout, healing the damage for good.
func TestLegacyTornTailMigratesClean(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := a.Put(testRun("fp1", "ext2/grep", 100))
	if err != nil {
		t.Fatal(err)
	}
	id2, _, err := a.Put(testRun("fp2", "reiser/walk", 200))
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the archive as a legacy single-file one, with the
	// baseline line torn mid-write.
	if err := os.RemoveAll(filepath.Join(dir, "index.d")); err != nil {
		t.Fatal(err)
	}
	legacy := indexHeader + "\n" +
		"run 1 " + id1 + " fp1 \"ext2/grep\"\n" +
		"run 2 " + id2 + " fp2 \"reiser/walk\"\n" +
		"baseline fp" // torn mid-fingerprint: cannot parse as any line
	if err := os.WriteFile(filepath.Join(dir, "index"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Warning() == "" {
		t.Error("torn legacy tail raised no warning")
	}
	if entries, err := b.List(); err != nil || len(entries) != 2 {
		t.Fatalf("legacy entries: %v err=%v", entries, err)
	}
	// First write migrates: the legacy file is gone, segments exist,
	// and a fresh Open is clean.
	if _, _, err := b.Put(testRun("fp3", "heal/run", 300)); err != nil {
		t.Fatal(err)
	}
	if b.Warning() != "" {
		t.Errorf("warning survived migration: %q", b.Warning())
	}
	if _, err := os.Stat(filepath.Join(dir, "index")); !os.IsNotExist(err) {
		t.Error("legacy index file survived migration")
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if entries, err := c.List(); err != nil || len(entries) != 3 || c.Warning() != "" {
		t.Fatalf("migrated archive: %d entries err=%v warning=%q", len(entries), err, c.Warning())
	}
}
