package store

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"osprof/internal/core"
)

func testRun(fp, name string, latencies ...uint64) *core.Run {
	s := core.NewSet(name)
	for _, l := range latencies {
		s.Record("read", l)
	}
	return &core.Run{
		Fingerprint: fp,
		Meta:        map[string]string{"scenario": name},
		Set:         s,
	}
}

func open(t *testing.T) *Archive {
	t.Helper()
	a, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPutGetRoundTrip(t *testing.T) {
	a := open(t)
	id, created, err := a.Put(testRun("fp1", "ext2/grep", 100, 5000))
	if err != nil || !created {
		t.Fatalf("Put: id=%s created=%v err=%v", id, created, err)
	}
	if len(id) != 64 {
		t.Fatalf("id %q is not a sha256 hex", id)
	}
	got, err := a.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != "fp1" || got.Name() != "ext2/grep" || got.Set.TotalOps() != 2 {
		t.Errorf("round trip mangled: %+v", got)
	}
	if got.Meta["scenario"] != "ext2/grep" {
		t.Errorf("meta lost: %v", got.Meta)
	}
}

// Identical runs are content-addressed into the same object: rerunning
// a deterministic world deduplicates instead of growing the archive.
func TestPutDeduplicatesIdenticalRuns(t *testing.T) {
	a := open(t)
	id1, created1, _ := a.Put(testRun("fp1", "s", 100))
	id2, created2, err := a.Put(testRun("fp1", "s", 100))
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Errorf("identical runs got different ids: %s vs %s", id1, id2)
	}
	if !created1 || created2 {
		t.Errorf("created flags: %v %v, want true false", created1, created2)
	}
	entries, _ := a.List()
	if len(entries) != 1 {
		t.Errorf("index grew on dedup: %d entries", len(entries))
	}
	// A different run of the same fingerprint appends.
	id3, created3, _ := a.Put(testRun("fp1", "s", 100, 200))
	if id3 == id1 || !created3 {
		t.Errorf("different content must create: id=%s created=%v", id3, created3)
	}
	entries, _ = a.List()
	if len(entries) != 2 || entries[0].Seq >= entries[1].Seq {
		t.Errorf("bad entries: %+v", entries)
	}
}

func TestLatestAndLatestByName(t *testing.T) {
	a := open(t)
	a.Put(testRun("fp1", "s", 100))
	id2, _, _ := a.Put(testRun("fp1", "s", 200))
	id3, _, _ := a.Put(testRun("fp2", "other", 300))

	e, ok, err := a.Latest("fp1")
	if err != nil || !ok || e.ID != id2 {
		t.Errorf("Latest(fp1) = %+v ok=%v err=%v, want %s", e, ok, err, id2)
	}
	e, ok, _ = a.LatestByName("other")
	if !ok || e.ID != id3 || e.Fingerprint != "fp2" {
		t.Errorf("LatestByName = %+v ok=%v", e, ok)
	}
	if _, ok, _ := a.Latest("nope"); ok {
		t.Error("Latest found a ghost fingerprint")
	}
}

func TestGetByUniquePrefix(t *testing.T) {
	a := open(t)
	id, _, _ := a.Put(testRun("fp1", "s", 100))
	got, err := a.Get(id[:10])
	if err != nil || got.Set.TotalOps() != 1 {
		t.Fatalf("prefix get: %v", err)
	}
	if _, err := a.Get("zzzz"); err == nil {
		t.Error("Get accepted an unknown prefix")
	}
}

func TestBaselines(t *testing.T) {
	a := open(t)
	id1, _, _ := a.Put(testRun("fp1", "s", 100))
	id2, _, _ := a.Put(testRun("fp1", "s", 200))

	if err := a.SetBaseline("fp1", id1[:12]); err != nil {
		t.Fatal(err)
	}
	e, ok, err := a.Baseline("fp1")
	if err != nil || !ok || e.ID != id1 {
		t.Errorf("Baseline = %+v ok=%v err=%v, want %s", e, ok, err, id1)
	}
	// Latest is unaffected by blessing.
	if e, _, _ := a.Latest("fp1"); e.ID != id2 {
		t.Errorf("Latest moved to the baseline: %s", e.ID)
	}
	if _, ok, _ := a.Baseline("fp2"); ok {
		t.Error("baseline for unknown fingerprint")
	}
	if err := a.SetBaseline("fp1", "deadbeef"); err == nil {
		t.Error("SetBaseline accepted an unknown run")
	}
	if err := a.SetBaseline("", id1); err == nil {
		t.Error("SetBaseline accepted an empty fingerprint")
	}
	bl, _ := a.Baselines()
	if bl["fp1"] != id1 {
		t.Errorf("Baselines() = %v", bl)
	}
}

// A blessed baseline stays reachable by scenario name even after the
// scenario is re-recorded under a different fingerprint (new seed or
// config): BaselineByName scans blessed runs, not the latest run's
// fingerprint.
func TestBaselineByNameSurvivesReRecord(t *testing.T) {
	a := open(t)
	id1, _, _ := a.Put(testRun("fp-seed1", "s", 100))
	if err := a.SetBaseline("fp-seed1", id1); err != nil {
		t.Fatal(err)
	}
	// Re-record the same scenario name under a different fingerprint.
	a.Put(testRun("fp-seed2", "s", 200))

	e, ok, err := a.BaselineByName("s")
	if err != nil || !ok || e.ID != id1 || e.Fingerprint != "fp-seed1" {
		t.Errorf("BaselineByName = %+v ok=%v err=%v, want %s", e, ok, err, id1)
	}
	// A newer blessing wins.
	id3, _, _ := a.Put(testRun("fp-seed2", "s", 300))
	if err := a.SetBaseline("fp-seed2", id3); err != nil {
		t.Fatal(err)
	}
	if e, _, _ := a.BaselineByName("s"); e.ID != id3 {
		t.Errorf("newest blessing not returned: %s, want %s", e.ID, id3)
	}
	if _, ok, _ := a.BaselineByName("ghost"); ok {
		t.Error("baseline for unknown name")
	}
}

func TestGCKeepsLatestAndBaselines(t *testing.T) {
	a := open(t)
	idOld, _, _ := a.Put(testRun("fp1", "s", 100))
	idMid, _, _ := a.Put(testRun("fp1", "s", 200))
	idNew, _, _ := a.Put(testRun("fp1", "s", 300))
	idOther, _, _ := a.Put(testRun("fp2", "o", 400))
	if err := a.SetBaseline("fp1", idOld); err != nil {
		t.Fatal(err)
	}

	removed, err := a.GC(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != idMid {
		t.Errorf("removed %v, want [%s]", removed, idMid)
	}
	for _, id := range []string{idOld, idNew, idOther} {
		if _, err := a.Get(id); err != nil {
			t.Errorf("GC dropped a live run %s: %v", id[:12], err)
		}
	}
	if _, err := a.Get(idMid); err == nil {
		t.Error("GC kept the pruned run readable via the index")
	}
	if _, err := os.Stat(a.objectPath(idMid)); !os.IsNotExist(err) {
		t.Error("GC left the pruned object on disk")
	}
	// Entries stay in record order after GC.
	entries, _ := a.List()
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Seq >= entries[i].Seq {
			t.Errorf("entries out of order after GC: %+v", entries)
		}
	}
}

// The parallel runner archives from worker goroutines; concurrent Puts
// must never lose entries or corrupt the index.
func TestConcurrentPuts(t *testing.T) {
	a := open(t)
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := a.Put(testRun("fp", "s", uint64(100+i))); err != nil {
				t.Errorf("Put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	entries, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != n {
		t.Errorf("%d entries, want %d", len(entries), n)
	}
	seen := map[int]bool{}
	for _, e := range entries {
		if seen[e.Seq] {
			t.Errorf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// Set names may contain spaces (core imposes no restrictions); the
// quoted index field must survive them — a space once permanently
// corrupted the index because load split on whitespace.
func TestNamesWithSpacesSurviveIndexRoundTrip(t *testing.T) {
	a := open(t)
	id, _, err := a.Put(testRun("fp1", `name with "quotes" and spaces`, 100))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := a.List()
	if err != nil {
		t.Fatalf("index unreadable after spaced name: %v", err)
	}
	if len(entries) != 1 || entries[0].Name != `name with "quotes" and spaces` {
		t.Errorf("entries: %+v", entries)
	}
	if e, ok, err := a.LatestByName(`name with "quotes" and spaces`); err != nil || !ok || e.ID != id {
		t.Errorf("LatestByName: %+v ok=%v err=%v", e, ok, err)
	}
	// The archive keeps working (further writes load the index).
	if _, _, err := a.Put(testRun("fp2", "plain", 200)); err != nil {
		t.Errorf("archive wedged after spaced name: %v", err)
	}
}

// Put mirrors the run's label metadata into the index entry, and the
// label survives the index save/load round trip (GC rewrites the
// index, so losing it there would silently shrink the corpus).
func TestLabelIndexedAndRoundTrips(t *testing.T) {
	a := open(t)
	labeled := testRun("fpL", "corpus/ext2 preempt", 100)
	labeled.Meta[LabelMetaKey] = "ext2-preempt c256" // spaces must survive
	if _, _, err := a.Put(labeled); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Put(testRun("fpU", "ext2/grep", 200)); err != nil {
		t.Fatal(err)
	}
	entries, err := a.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}
	if entries[0].Label != "ext2-preempt c256" {
		t.Errorf("labeled entry Label = %q", entries[0].Label)
	}
	if entries[1].Label != "" {
		t.Errorf("unlabeled entry Label = %q", entries[1].Label)
	}
	indexed, aware, err := a.ListLabeled()
	if err != nil {
		t.Fatal(err)
	}
	if !aware {
		t.Error("freshly written index is not label-aware")
	}
	if len(indexed) != 1 || indexed[0].Label != "ext2-preempt c256" {
		t.Errorf("ListLabeled = %+v", indexed)
	}
	// The label survives the on-disk round trip: a fresh Open rebuilds
	// the index from the segment files alone.
	reopened, err := Open(a.Dir())
	if err != nil {
		t.Fatal(err)
	}
	indexed, aware, err = reopened.ListLabeled()
	if err != nil {
		t.Fatal(err)
	}
	if !aware {
		t.Error("reopened archive is not label-aware")
	}
	if len(indexed) != 1 || indexed[0].Label != "ext2-preempt c256" {
		t.Errorf("reopened ListLabeled = %+v", indexed)
	}
}

// Legacy index lines written before the label field (run SEQ ID FP
// "name") still parse, reading as unlabeled entries; the first write
// migrates the archive to the segmented label-aware layout.
func TestPreLabelIndexLinesParse(t *testing.T) {
	a := open(t)
	id, _, err := a.Put(testRun("fp1", "ext2/grep", 100))
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct the archive as a legacy v1 one: no segmented index,
	// just the pre-label single file.
	if err := os.RemoveAll(filepath.Join(a.Dir(), "index.d")); err != nil {
		t.Fatal(err)
	}
	old := "osprof-index v1\nrun 1 " + id + " fp1 \"ext2/grep\"\n"
	if err := os.WriteFile(a.indexPath(), []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	legacy, err := Open(a.Dir())
	if err != nil {
		t.Fatalf("pre-label index unreadable: %v", err)
	}
	entries, err := legacy.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != id || entries[0].Label != "" {
		t.Errorf("entries = %+v", entries)
	}
	if _, aware, err := legacy.ListLabeled(); err != nil || aware {
		t.Errorf("v1 index reported label-aware (err=%v)", err)
	}
	// The first write migrates the index, upgrading it to label-aware
	// (the legacy rewrite path did the same).
	if _, _, err := legacy.Put(testRun("fp2", "plain", 200)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(legacy.indexPath()); !os.IsNotExist(err) {
		t.Error("legacy index file survived migration")
	}
	if _, aware, _ := legacy.ListLabeled(); !aware {
		t.Error("migrated index still reports label-unaware")
	}
	reopened, err := Open(a.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if entries, _ := reopened.List(); len(entries) != 2 {
		t.Errorf("migrated archive lists %d entries, want 2", len(entries))
	}
}

func TestCorruptIndexRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index"), []byte("not an index\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "index") {
		t.Errorf("corrupt index not detected: %v", err)
	}
}

// No temp droppings survive a Put (atomic-write hygiene).
func TestNoTempFilesLeft(t *testing.T) {
	a := open(t)
	a.Put(testRun("fp", "s", 100))
	var stray []string
	filepath.Walk(a.Dir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasPrefix(filepath.Base(path), ".tmp-") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

// ResolveRef's error paths, table-driven: every reference form that
// cannot resolve must fail with a message naming the problem (the CLI
// and the HTTP service both surface these verbatim), and resolvable
// forms must keep working against the same populated archive.
func TestResolveRefErrorPaths(t *testing.T) {
	populated := open(t)
	idA, _, err := populated.Put(testRun("fp-a", "ext2/grep", 100))
	if err != nil {
		t.Fatal(err)
	}
	idB, _, err := populated.Put(testRun("fp-b", "ext2/walk", 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := populated.SetBaseline("fp-a", idA); err != nil {
		t.Fatal(err)
	}
	// Build a genuinely ambiguous reference: keep archiving distinct
	// runs until two content addresses share a first hex digit (at most
	// 17 runs by pigeonhole), then refer by that digit.
	firstDigit := map[byte]bool{idA[0]: true, idB[0]: true}
	ambiguous := ""
	if idA[0] == idB[0] {
		ambiguous = string(idA[0])
	}
	for i := 0; ambiguous == "" && i < 32; i++ {
		id, _, err := populated.Put(testRun("fp-x", "x/run", uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		if firstDigit[id[0]] {
			ambiguous = string(id[0])
		}
		firstDigit[id[0]] = true
	}
	if ambiguous == "" {
		t.Fatal("could not construct an ambiguous prefix")
	}

	empty := open(t)

	cases := []struct {
		name    string
		arch    *Archive
		ref     string
		wantErr string
	}{
		{"missing latest name", populated, "latest:no/such/scenario", "no recorded run named"},
		{"missing baseline name", populated, "baseline:ext2/walk", "no baseline named"},
		{"baseline on empty archive", empty, "baseline:ext2/grep", "no baseline named"},
		{"latest on empty archive", empty, "latest:ext2/grep", "no recorded run named"},
		{"unknown prefix", populated, "ffffff", "no run matches"},
		{"prefix on empty archive", empty, "abcdef", "no run matches"},
		{"empty ref", empty, "", "no run matches"},
		{"ambiguous prefix", populated, ambiguous, "ambiguous run prefix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, err := tc.arch.ResolveRef(tc.ref)
			if err == nil {
				t.Fatalf("ResolveRef(%q) resolved to %s, want error", tc.ref, id)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ResolveRef(%q) error %q does not mention %q", tc.ref, err, tc.wantErr)
			}
		})
	}

	// The happy forms still resolve against the same archive.
	for ref, want := range map[string]string{
		"latest:ext2/grep":   idA,
		"baseline:ext2/grep": idA,
		idB[:12]:             idB,
		idA:                  idA,
	} {
		got, err := populated.ResolveRef(ref)
		if err != nil || got != want {
			t.Errorf("ResolveRef(%q) = %q, %v; want %q", ref, got, err, want)
		}
	}
}
