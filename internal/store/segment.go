package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file implements the on-disk half of the segmented index: per-
// shard directories of append-only segment files, the legacy
// single-file index loader (and its migration), and compaction.
//
// Layout:
//
//	<dir>/index.d/shard-<k>/seg-<nnnnnnnn>
//	<dir>/index.d/unlabeled            (marker: migrated from a v1
//	                                    index whose entries never
//	                                    mirrored labels)
//
// Every segment starts with a header line and then holds the same
// line grammar as the legacy index (`run ...` / `baseline ...`).
// Segments are append-only: recording a run appends ONE line to the
// owning shard's active (highest-numbered) segment — O(1), where the
// legacy index rewrote every line on every Put — and a segment that
// reaches maxSegmentLines is sealed by simply starting the next one.
// Sealed segments are immutable; compaction (GC) replaces a shard's
// segments with one freshly written file.
//
// Crash safety inverts the legacy scheme: appends are not atomic, so
// the LAST line of a shard's ACTIVE segment may be torn — load drops
// it, records a warning, and the next append truncates the tear away
// before writing (the self-heal). Sealed segments were never appended
// to after their last validated load, so damage there — like damage
// mid-file — is real corruption and still fails loudly. Compaction
// writes its replacement segment atomically (temp + rename) before
// deleting the old ones; a crash in between leaves duplicate entries,
// which the loader deduplicates by sequence number.

const (
	segmentHeader = "osprof-index-seg v1"

	// maxSegmentLines seals a segment once it holds this many body
	// lines; Archive copies it into segLimit so tests can shrink it.
	maxSegmentLines = 4096
)

// Legacy single-file index headers (read for migration; never written
// anymore).
const (
	indexHeader   = "osprof-index v2"
	indexHeaderV1 = "osprof-index v1"
)

// shard is one index shard's writer state. Fields are guarded by mu;
// readers never touch shards (they read the published snapshot).
type shard struct {
	id  int
	dir string

	mu          sync.Mutex
	activeSeg   int // highest segment number (0 = none yet)
	activeLines int // body lines in the active segment
}

func (s *shard) segPath(n int) string {
	return filepath.Join(s.dir, fmt.Sprintf("seg-%08d", n))
}

// shardFor routes a fingerprint (or any key) to its shard.
func shardFor(key string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32()) % n
}

// shardLoad is the parsed state of one shard's segment files.
type shardLoad struct {
	entries     []Entry
	baselines   map[string]string
	activeSeg   int
	activeLines int
	healLen     int64
	warning     string

	// needsNewline is set when the active segment's final line parsed
	// but the file does not end in '\n' (a tear that happened to land
	// on a field boundary). Open terminates the line so the next
	// append cannot glue onto it.
	needsNewline bool
}

// loadShard reads and parses every segment of one shard directory.
func loadShard(dir string) (*shardLoad, error) {
	sl := &shardLoad{baselines: make(map[string]string), healLen: -1}
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return sl, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var segs []int
	for _, de := range names {
		n, ok := parseSegName(de.Name())
		if !ok {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	for i, n := range segs {
		active := i == len(segs)-1
		if err := sl.readSegment(filepath.Join(dir, fmt.Sprintf("seg-%08d", n)), active); err != nil {
			return nil, err
		}
		if active {
			sl.activeSeg = n
		}
	}
	return sl, nil
}

// parseSegName extracts the number from a seg-<n> file name.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(name, "seg-"))
	if err != nil || n < 1 {
		return 0, false
	}
	return n, true
}

// readSegment parses one segment file into sl. Only the active
// segment's trailing line may be torn; there it is dropped, the file
// length to truncate to is recorded, and a warning is noted.
func (sl *shardLoad) readSegment(path string, active bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != segmentHeader {
		return fmt.Errorf("store: %s: bad segment header", filepath.Base(path))
	}
	body := lines[1:]
	last := len(body) - 1
	for last >= 0 && strings.TrimSpace(body[last]) == "" {
		last--
	}
	offset := int64(len(lines[0]) + 1) // header line + newline
	idx := &index{baselines: sl.baselines}
	count := 0
	for n, line := range body {
		if err := parseIndexLine(idx, line); err != nil {
			if active && n == last {
				sl.warning = fmt.Sprintf("store: %s: dropped truncated trailing line %d: %v",
					filepath.Base(path), n+2, err)
				sl.healLen = offset
				break
			}
			return fmt.Errorf("store: %s line %d: %w", filepath.Base(path), n+2, err)
		}
		if strings.TrimSpace(line) != "" {
			count++
		}
		offset += int64(len(line)) + 1
	}
	sl.entries = append(sl.entries, idx.entries...)
	if active {
		sl.activeLines = count
		if sl.healLen < 0 && len(data) > 0 && data[len(data)-1] != '\n' {
			sl.needsNewline = true
		}
	}
	return nil
}

// index is the transient parse target shared with the legacy loader.
type index struct {
	entries    []Entry
	baselines  map[string]string
	labelAware bool
}

// parseIndexLine parses one index body line (blank lines are no-ops).
// The grammar is shared by legacy index files and segment files.
func parseIndexLine(idx *index, line string) error {
	fields := strings.Fields(line)
	switch {
	case len(fields) == 0:
		return nil
	case fields[0] == "run":
		// The trailing name is %q-quoted and may contain spaces,
		// optionally followed by a %q-quoted label: split off the
		// four fixed fields, then peel quoted strings off the rest.
		// Pre-label index lines simply have no label field.
		parts := strings.SplitN(line, " ", 5)
		if len(parts) != 5 {
			return fmt.Errorf("malformed run entry %q", line)
		}
		seq, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		nameQ, err := strconv.QuotedPrefix(parts[4])
		if err != nil {
			return fmt.Errorf("name: %w", err)
		}
		name, err := strconv.Unquote(nameQ)
		if err != nil {
			return fmt.Errorf("name: %w", err)
		}
		label := ""
		if tail := strings.TrimSpace(parts[4][len(nameQ):]); tail != "" {
			label, err = strconv.Unquote(tail)
			if err != nil {
				return fmt.Errorf("label: %w", err)
			}
		}
		fp := parts[3]
		if fp == "-" {
			fp = ""
		}
		idx.entries = append(idx.entries, Entry{
			Seq: seq, ID: parts[2], Fingerprint: fp, Name: name, Label: label,
		})
		return nil
	case fields[0] == "baseline" && len(fields) == 3:
		idx.baselines[fields[1]] = fields[2]
		return nil
	default:
		return fmt.Errorf("unrecognized %q", line)
	}
}

// formatEntry renders one run line of the shared index grammar.
func formatEntry(b *strings.Builder, e Entry) {
	if e.Label != "" {
		fmt.Fprintf(b, "run %d %s %s %q %q\n", e.Seq, e.ID, orDash(e.Fingerprint), e.Name, e.Label)
	} else {
		fmt.Fprintf(b, "run %d %s %s %q\n", e.Seq, e.ID, orDash(e.Fingerprint), e.Name)
	}
}

// appendLines appends pre-rendered body lines to the shard's active
// segment, healing a recorded torn tail first and rotating to a new
// segment whenever the active one is full. Caller holds s.mu.
func (s *shard) appendLines(lines []string, segLimit int) error {
	for len(lines) > 0 {
		if s.activeSeg == 0 || s.activeLines >= segLimit {
			if err := s.rotate(); err != nil {
				return err
			}
		}
		n := segLimit - s.activeLines
		if n > len(lines) {
			n = len(lines)
		}
		if err := s.appendToActive(lines[:n]); err != nil {
			return err
		}
		lines = lines[n:]
	}
	return nil
}

// rotate seals the active segment by starting the next one.
func (s *shard) rotate() error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	next := s.activeSeg + 1
	if err := os.WriteFile(s.segPath(next), []byte(segmentHeader+"\n"), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.activeSeg, s.activeLines = next, 0
	return nil
}

// appendToActive writes lines to the active segment. Torn tails were
// already truncated away when the archive was opened, so the append
// always lands after a whole line.
func (s *shard) appendToActive(lines []string) error {
	path := s.segPath(s.activeSeg)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
	}
	if _, err := f.WriteString(b.String()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.activeLines += len(lines)
	return nil
}

// compact atomically replaces the shard's segments with one fresh
// segment holding exactly the given entries and baselines. Caller
// holds s.mu. The replacement lands (rename) before the old segments
// are removed, so a crash leaves duplicates, never losses.
func (s *shard) compact(entries []Entry, baselines map[string]string) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	old, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	next := s.activeSeg + 1
	var b strings.Builder
	b.WriteString(segmentHeader + "\n")
	for _, e := range entries {
		formatEntry(&b, e)
	}
	fps := make([]string, 0, len(baselines))
	for fp := range baselines {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	for _, fp := range fps {
		fmt.Fprintf(&b, "baseline %s %s\n", fp, baselines[fp])
	}
	if err := atomicWrite(s.segPath(next), []byte(b.String())); err != nil {
		return err
	}
	for _, de := range old {
		if n, ok := parseSegName(de.Name()); ok && n < next {
			if err := os.Remove(filepath.Join(s.dir, de.Name())); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
	}
	s.activeSeg = next
	s.activeLines = len(entries) + len(baselines)
	return nil
}

// loadLegacy parses the legacy single-file index; a malformed FINAL
// line is skipped (warning) — only the last line can be a torn partial
// write under the old atomic-rewrite scheme — while malformed lines
// anywhere else fail loudly.
func loadLegacy(path string) (*index, string, error) {
	idx := &index{baselines: make(map[string]string), labelAware: true}
	warning := ""
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("store: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	switch strings.TrimSpace(lines[0]) {
	case indexHeader:
	case indexHeaderV1:
		idx.labelAware = false
	default:
		return nil, "", fmt.Errorf("store: bad index header")
	}
	body := lines[1:]
	last := len(body) - 1
	for last >= 0 && strings.TrimSpace(body[last]) == "" {
		last--
	}
	for n, line := range body {
		if err := parseIndexLine(idx, line); err != nil {
			if n == last {
				warning = fmt.Sprintf("store: index: dropped truncated trailing line %d: %v", n+2, err)
				break
			}
			return nil, "", fmt.Errorf("store: index line %d: %w", n+2, err)
		}
	}
	return idx, warning, nil
}

// orDash substitutes "-" for an empty fingerprint so the index stays
// whitespace-splittable.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// atomicWrite writes data to path via a temp file and rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
