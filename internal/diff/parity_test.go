package diff_test

import (
	"fmt"
	"testing"

	"osprof/internal/core"
	"osprof/internal/diff"
	"osprof/internal/experiments"
	"osprof/internal/fault"
	"osprof/internal/scenario"
	"osprof/internal/summary"
)

// This file is the parity gate for the summary-first fast path: across
// the whole scenario matrix — healthy runs, cross-seed reruns, the
// kernel-config variants, and fault-injected twins — the guard-band
// engine (NewSummaryFirst) must produce verdicts bit-identical to the
// always-full-EMD engine (New). It also pins the escalation-soundness
// invariant from the other side: every operation the full analysis
// flags must itself cross the summary guard band, so the calibrated
// DefaultGuard can never hide a regression.

// recordSets runs every spec and returns the profile sets by name.
func recordSets(t *testing.T, specs []scenario.Spec) map[string]*core.Set {
	t.Helper()
	out := make(map[string]*core.Set, len(specs))
	for _, spec := range specs {
		r := experiments.RecordScenario(spec)
		if r.Err != nil {
			t.Fatalf("record %s: %v", spec.Name, r.Err)
		}
		out[spec.Name] = r.Stack.Set
	}
	return out
}

// parityPair holds one comparison of the scenario-pair corpus.
type parityPair struct {
	kind string
	a, b *core.Set
}

// parityCorpus builds the pair corpus: identical self-pairs, same-
// scenario cross-seed pairs, healthy-vs-fault-injected twins, and
// cross-scenario pairs (guaranteed regressions).
func parityCorpus(t *testing.T) []parityPair {
	t.Helper()
	specs1 := append(scenario.Matrix(1), scenario.Variants(1)...)
	specs2 := append(scenario.Matrix(2), scenario.Variants(2)...)
	setsA := recordSets(t, specs1)
	setsB := recordSets(t, specs2)

	var pairs []parityPair
	names := make([]string, 0, len(specs1))
	for _, spec := range specs1 {
		names = append(names, spec.Name)
	}
	for i, name := range names {
		pairs = append(pairs,
			parityPair{"self/" + name, setsA[name], setsA[name]},
			parityPair{"seed/" + name, setsA[name], setsB[name]},
		)
		if next := names[(i+1)%len(names)]; next != name {
			pairs = append(pairs, parityPair{"cross/" + name, setsA[name], setsA[next]})
		}
	}
	// Fault-injected twins of the matrix scenarios: the degraded-state
	// corpus the watch layer verdicts against.
	for _, preset := range []string{"disk-flaky", "cache-thrash"} {
		for _, spec := range scenario.Matrix(1) {
			spec := spec
			var ok bool
			spec.Injections, ok = fault.Preset(preset)
			if !ok {
				t.Fatalf("unknown fault preset %q", preset)
			}
			r := experiments.RecordScenario(spec)
			if r.Err != nil {
				t.Fatalf("record %s+%s: %v", spec.Name, preset, r.Err)
			}
			pairs = append(pairs, parityPair{
				fmt.Sprintf("fault/%s/%s", preset, spec.Name),
				setsA[spec.Name], r.Stack.Set,
			})
		}
	}
	return pairs
}

func TestSummaryFirstVerdictParity(t *testing.T) {
	if testing.Short() {
		t.Skip("records the scenario matrix at two seeds plus fault twins")
	}
	full := diff.New()
	fast := diff.NewSummaryFirst()
	pairs := parityCorpus(t)
	if len(pairs) < 40 {
		t.Fatalf("pair corpus too small: %d", len(pairs))
	}
	flagged := 0
	for _, pr := range pairs {
		want := full.Sets(pr.a, pr.b)
		got := fast.Sets(pr.a, pr.b)
		flagged += want.Changed
		if got.Changed != want.Changed {
			t.Errorf("%s: fast Changed=%d, full Changed=%d", pr.kind, got.Changed, want.Changed)
		}
		wantV := make(map[string]diff.Verdict, len(want.Ops))
		for _, d := range want.Ops {
			wantV[d.Op] = d.Verdict
		}
		if len(got.Ops) != len(want.Ops) {
			t.Errorf("%s: fast covers %d ops, full %d", pr.kind, len(got.Ops), len(want.Ops))
			continue
		}
		for _, d := range got.Ops {
			if v, ok := wantV[d.Op]; !ok || v != d.Verdict {
				t.Errorf("%s/%s: fast verdict %q, full verdict %q", pr.kind, d.Op, d.Verdict, v)
			}
		}
	}
	// The corpus must genuinely exercise both directions: plenty of
	// flagged regressions (fault twins, cross-scenario pairs) and
	// plenty of clean pairs (self and cross-seed).
	if flagged == 0 {
		t.Fatal("pair corpus flagged nothing: parity gate is vacuous")
	}
}

func TestEscalationSoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("records the scenario matrix at two seeds plus fault twins")
	}
	full := diff.New()
	for _, pr := range parityCorpus(t) {
		rep := full.Sets(pr.a, pr.b)
		for _, d := range rep.Ops {
			if !d.Verdict.Changed() {
				continue
			}
			sa := summary.Of(pr.a.Lookup(d.Op))
			sb := summary.Of(pr.b.Lookup(d.Op))
			if summary.WithinGuard(sa, sb, summary.DefaultGuard) {
				t.Errorf("%s/%s: flagged %q but summaries sit inside the guard band",
					pr.kind, d.Op, d.Verdict)
			}
		}
	}
}

func TestSummaryFastPathTaken(t *testing.T) {
	// The fast path must actually fire for identical sets: an engine
	// with an impossible selector would loop forever... instead prove
	// it cheaply: the fast report carries the fast-path detail string.
	set := experiments.RecordScenario(scenario.Matrix(1)[0]).Stack.Set
	rep := diff.NewSummaryFirst().Sets(set, set)
	if rep.Changed != 0 || len(rep.Ops) == 0 {
		t.Fatalf("self-diff: %+v", rep)
	}
	for _, d := range rep.Ops {
		if d.Detail != "summaries within guard band" {
			t.Fatalf("op %s took the slow path: %q", d.Op, d.Detail)
		}
	}
	// The default engine must NOT take it (goldens elsewhere pin the
	// full path's details).
	rep = diff.New().Sets(set, set)
	for _, d := range rep.Ops {
		if d.Detail == "summaries within guard band" {
			t.Fatalf("default engine took the fast path on op %s", d.Op)
		}
	}
}
