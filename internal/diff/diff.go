// Package diff is the differential analysis engine: it turns the
// paper's interactive workflow — render two profiles, eyeball which
// peaks moved (§3.2, §5) — into machine-checkable verdicts over
// archived runs. Built on analysis.Selector (three-phase selection,
// peak structure, Earth Mover's Distance), it classifies every
// operation of two runs as unchanged, shifted-peak, new-peak,
// lost-peak, reshaped, new-op, or missing-op, so a CI gate can assert
// "this kernel-config change shifted nothing" the way the paper's
// authors compared OS versions by hand.
package diff

import (
	"fmt"
	"sort"

	"osprof/internal/analysis"
	"osprof/internal/core"
)

// Schema versions the JSON shape of Report and MatrixReport so
// downstream tooling can rely on it.
const Schema = "osprof-diff/v1"

// Verdict classifies one operation's change between two runs.
type Verdict string

const (
	// Unchanged: the pair was either filtered in phase 1 (small share
	// or similar totals with identical peak structure) or scored below
	// the selector threshold with no structural change.
	Unchanged Verdict = "unchanged"

	// ShiftedPeak: a matched peak's mode bucket moved — the §5
	// "operation got slower/faster by a latency class" signature.
	ShiftedPeak Verdict = "shifted-peak"

	// NewPeak: run B shows more peaks than run A (a new latency mode
	// appeared, e.g. preemption or lock contention).
	NewPeak Verdict = "new-peak"

	// LostPeak: run B shows fewer peaks than run A (a latency mode
	// disappeared, e.g. a fixed contention source).
	LostPeak Verdict = "lost-peak"

	// Reshaped: same peak structure but the distribution's mass moved
	// enough to score over the selector threshold.
	Reshaped Verdict = "reshaped"

	// NewOp: the operation appears only in run B.
	NewOp Verdict = "new-op"

	// MissingOp: the operation appears only in run A.
	MissingOp Verdict = "missing-op"
)

// Changed reports whether the verdict flags a difference.
func (v Verdict) Changed() bool { return v != Unchanged }

// OpDiff is the differential verdict for one operation.
type OpDiff struct {
	Op      string  `json:"op"`
	Verdict Verdict `json:"verdict"`

	// Score is the selector's phase-3 rating (EMD by default); for
	// one-sided operations it is computed against an empty profile
	// (EMD's maximal 1).
	Score float64 `json:"score"`

	CountA uint64 `json:"count_a"`
	CountB uint64 `json:"count_b"`
	TotalA uint64 `json:"total_a"`
	TotalB uint64 `json:"total_b"`
	PeaksA int    `json:"peaks_a"`
	PeaksB int    `json:"peaks_b"`

	// ModeShifts lists per-matched-peak mode-bucket movement (B - A).
	ModeShifts []int `json:"mode_shifts,omitempty"`

	// Detail is a human-readable explanation of the verdict.
	Detail string `json:"detail,omitempty"`
}

// Report is the pairwise differential analysis of two runs.
type Report struct {
	Schema string `json:"schema"`

	NameA string `json:"a"`
	NameB string `json:"b"`

	FingerprintA string `json:"fingerprint_a,omitempty"`
	FingerprintB string `json:"fingerprint_b,omitempty"`

	// Ops holds one verdict per operation in the union of the two
	// runs, most severe (highest score) first, unchanged last.
	Ops []OpDiff `json:"ops"`

	// Changed counts the operations whose verdict flags a difference.
	Changed int `json:"changed"`
}

// Regression reports whether any operation changed.
func (r *Report) Regression() bool { return r.Changed > 0 }

// ChangedOps returns the flagged operations.
func (r *Report) ChangedOps() []OpDiff {
	var out []OpDiff
	for _, d := range r.Ops {
		if d.Verdict.Changed() {
			out = append(out, d)
		}
	}
	return out
}

// Engine performs differential analyses. It carries a Selector (with
// its reusable comparison scratch), so create one and reuse it; an
// Engine must not be used from multiple goroutines concurrently.
type Engine struct {
	// Selector is the three-phase pair analysis configuration.
	Selector *analysis.Selector
}

// New returns an engine with the repository's default selector (EMD,
// the paper's recommended metric).
func New() *Engine {
	return &Engine{Selector: analysis.DefaultSelector()}
}

// Sets runs the differential analysis over two profile sets.
func (e *Engine) Sets(a, b *core.Set) *Report {
	rep := &Report{Schema: Schema, NameA: a.Name, NameB: b.Name}
	for _, pr := range e.Selector.Compare(a, b) {
		d := e.classify(pr)
		rep.Ops = append(rep.Ops, d)
		if d.Verdict.Changed() {
			rep.Changed++
		}
	}
	// Re-rank after classification: one-sided ops enter the selector's
	// ordering as phase-1 skips (score 0) but classify rewrites their
	// score and verdict, so the selector's sort no longer holds.
	sort.SliceStable(rep.Ops, func(i, j int) bool {
		x, y := rep.Ops[i], rep.Ops[j]
		if x.Verdict.Changed() != y.Verdict.Changed() {
			return x.Verdict.Changed()
		}
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.Op < y.Op
	})
	return rep
}

// Runs is Sets over archived run envelopes, carrying the fingerprints
// into the report so a reader can tell which configurations were
// compared.
func (e *Engine) Runs(a, b *core.Run) *Report {
	rep := e.Sets(a.Set, b.Set)
	rep.FingerprintA = a.Fingerprint
	rep.FingerprintB = b.Fingerprint
	return rep
}

// classify converts one selector pair report into a verdict. The
// analysis.PairReport is backed by the Selector's scratch buffers, so
// everything retained (ModeShifts) is copied out.
func (e *Engine) classify(r analysis.PairReport) OpDiff {
	d := OpDiff{
		Op:     r.Op,
		Score:  r.Score,
		CountA: r.A.Count, CountB: r.B.Count,
		TotalA: r.A.Total, TotalB: r.B.Total,
		PeaksA: len(r.PeaksA), PeaksB: len(r.PeaksB),
	}
	switch {
	case r.A.Count == 0 && r.B.Count > 0:
		d.Verdict = NewOp
		d.Score = analysis.Score(e.Selector.Method, r.A, r.B)
		d.Detail = fmt.Sprintf("only in B (%d ops)", r.B.Count)
	case r.B.Count == 0 && r.A.Count > 0:
		d.Verdict = MissingOp
		d.Score = analysis.Score(e.Selector.Method, r.A, r.B)
		d.Detail = fmt.Sprintf("only in A (%d ops)", r.A.Count)
	case r.Skipped || !r.Interesting:
		d.Verdict = Unchanged
		d.Detail = r.Reason
	case moved(r.Diff.Moved):
		d.Verdict = ShiftedPeak
		d.ModeShifts = append([]int(nil), r.Diff.Moved...)
		d.Detail = fmt.Sprintf("mode shifts %v", d.ModeShifts)
	case r.Diff.NewPeaks > 0:
		d.Verdict = NewPeak
		d.Detail = fmt.Sprintf("+%d peaks", r.Diff.NewPeaks)
	case r.Diff.LostPeaks > 0:
		d.Verdict = LostPeak
		d.Detail = fmt.Sprintf("-%d peaks", r.Diff.LostPeaks)
	default:
		d.Verdict = Reshaped
		d.Detail = fmt.Sprintf("score %.3g over threshold", r.Score)
	}
	return d
}

func moved(shifts []int) bool {
	for _, m := range shifts {
		if m != 0 {
			return true
		}
	}
	return false
}

// Pair names one matched run pair of a matrix diff.
type Pair struct {
	Name string `json:"name"`
	*Report
}

// MatrixReport is the matrix-wide differential analysis: every run of
// side A held against the like-named run of side B (the paper's table
// of OS-version comparisons across a whole scenario matrix).
type MatrixReport struct {
	Schema string `json:"schema"`

	// Pairs holds one pairwise report per matched run name, in side-A
	// order.
	Pairs []Pair `json:"pairs"`

	// OnlyA and OnlyB list run names present on a single side.
	OnlyA []string `json:"only_a,omitempty"`
	OnlyB []string `json:"only_b,omitempty"`

	// Changed counts changed operations across all matched pairs;
	// unmatched runs count as one change each.
	Changed int `json:"changed"`
}

// Regression reports whether anything changed anywhere in the matrix.
func (m *MatrixReport) Regression() bool { return m.Changed > 0 }

// Matrix diffs two run slices pairwise, matching runs by set name.
func (e *Engine) Matrix(as, bs []*core.Run) *MatrixReport {
	m := &MatrixReport{Schema: Schema}
	byName := make(map[string]*core.Run, len(bs))
	for _, b := range bs {
		byName[b.Name()] = b
	}
	matched := make(map[string]bool, len(as))
	for _, a := range as {
		b, ok := byName[a.Name()]
		if !ok {
			m.OnlyA = append(m.OnlyA, a.Name())
			m.Changed++
			continue
		}
		matched[a.Name()] = true
		rep := e.Runs(a, b)
		m.Pairs = append(m.Pairs, Pair{Name: a.Name(), Report: rep})
		m.Changed += rep.Changed
	}
	for _, b := range bs {
		if !matched[b.Name()] {
			m.OnlyB = append(m.OnlyB, b.Name())
			m.Changed++
		}
	}
	return m
}
